package tbaa_test

import (
	"strings"
	"testing"

	"tbaa"
)

// The edit-path tests pin the public incremental contract: an applied
// edit answers exactly like a from-scratch Analyzer of the edited
// source, and ill-formed edits are rejected with check errors while the
// analyzer keeps answering on its current program.

const editBase = `
MODULE EditT;
TYPE
  T = OBJECT f, g: INTEGER; END;
  S = OBJECT h: INTEGER; END;
VAR t: T; s: S; x: INTEGER;
PROCEDURE Touch() =
BEGIN
  x := t.f;
END Touch;
PROCEDURE Other() =
BEGIN
  s.h := 2;
END Other;
BEGIN
  Touch();
  Other();
END EditT.
`

// editedTouch rewrites Touch to reference t.g instead of t.f.
const editedTouch = `PROCEDURE Touch() =
BEGIN
  x := t.g;
END Touch;`

func editedModuleSource() string {
	return strings.Replace(editBase, "x := t.f;", "x := t.g;", 1)
}

func TestEditProcMatchesScratch(t *testing.T) {
	for _, level := range []tbaa.Level{tbaa.TypeDecl, tbaa.SMFieldTypeRefs, tbaa.FSTypeRefs, tbaa.IPTypeRefs} {
		a, err := tbaa.New("edit.m3", editBase, tbaa.WithLevel(level))
		if err != nil {
			t.Fatal(err)
		}
		// Warm the snapshot so the edit exercises the swap path.
		if _, err := a.MayAlias("t.f", "t.f"); err != nil {
			t.Fatal(err)
		}
		e, err := a.EditProc(editedTouch)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		if e.Proc() != "Touch" {
			t.Fatalf("edit names %q", e.Proc())
		}
		scratch, err := tbaa.New("edit.m3", editedModuleSource(), tbaa.WithLevel(level))
		if err != nil {
			t.Fatal(err)
		}
		paths := a.Paths()
		want := scratch.Paths()
		if len(paths) != len(want) {
			t.Fatalf("%v: paths %v, scratch %v", level, paths, want)
		}
		for _, p := range paths {
			for _, q := range paths {
				got, err := a.MayAlias(p, q)
				if err != nil {
					t.Fatal(err)
				}
				exp, err := scratch.MayAlias(p, q)
				if err != nil {
					t.Fatal(err)
				}
				if got != exp {
					t.Fatalf("%v: MayAlias(%s,%s) edited=%v scratch=%v", level, p, q, got, exp)
				}
			}
		}
		if got, want := a.CountPairs(), scratch.CountPairs(); got != want {
			t.Fatalf("%v: CountPairs edited=%+v scratch=%+v", level, got, want)
		}
	}
}

func TestEditProcSharedModule(t *testing.T) {
	mod, err := tbaa.Compile("edit.m3", editBase)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := mod.NewAnalyzer(tbaa.WithLevel(tbaa.SMFieldTypeRefs))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := mod.NewAnalyzer(tbaa.WithLevel(tbaa.FSTypeRefs))
	if err != nil {
		t.Fatal(err)
	}
	e, err := mod.EditProc(editedTouch)
	if err != nil {
		t.Fatal(err)
	}
	// a1 has not applied the edit: it still sees the old body's paths
	// (t.g exists only in the edited body).
	if _, err := a1.MayAlias("t.f", "t.f"); err != nil {
		t.Fatalf("pre-apply analyzer lost its program: %v", err)
	}
	if _, err := a1.MayAlias("t.g", "t.g"); err == nil {
		t.Fatal("pre-apply analyzer already sees the edited body")
	}
	if err := a1.ApplyEdit(e); err != nil {
		t.Fatal(err)
	}
	if err := a2.ApplyEdit(e); err != nil {
		t.Fatal(err)
	}
	// An analyzer lowered after the edit agrees with the applied ones.
	a3, err := mod.NewAnalyzer(tbaa.WithLevel(tbaa.SMFieldTypeRefs))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []*tbaa.Analyzer{a1, a2, a3} {
		got, err := a.MayAlias("t.g", "t.g")
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Fatal("edited body's reference missing")
		}
	}
}

func TestEditProcRejections(t *testing.T) {
	mod, err := tbaa.Compile("edit.m3", editBase)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, src, want string
	}{
		{"unknown proc", "PROCEDURE Nope() =\nBEGIN\nEND Nope;", "no procedure"},
		{"signature change", "PROCEDURE Touch(n: INTEGER) =\nBEGIN\nEND Touch;", "parameters"},
		{"composite type", "PROCEDURE Touch() =\nVAR a: REF INTEGER;\nBEGIN\nEND Touch;", "declared type names"},
		{"type error", "PROCEDURE Touch() =\nBEGIN\n  x := NoSuchVar;\nEND Touch;", "NoSuchVar"},
		{"not a proc", "VAR y: INTEGER;", "exactly one PROCEDURE"},
		{"syntax", "PROCEDURE Touch() = BEGIN x := ; END Touch;", ""},
	}
	for _, tc := range cases {
		_, err := mod.EditProc(tc.src)
		if err == nil {
			t.Fatalf("%s: edit accepted", tc.name)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Rejected edits leave the module answering as before.
	a, err := mod.NewAnalyzer()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.MayAlias("t.f", "t.f"); err != nil {
		t.Fatal(err)
	}
}
