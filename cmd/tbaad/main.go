// Command tbaad is the long-lived analysis server: a daemon that
// accepts MiniM3 module uploads over HTTP/JSON (compiled once, cached
// by source content hash), holds many live Analyzers, and serves
// may-alias queries to any number of concurrent clients.
//
// Usage:
//
//	tbaad [flags]
//
//	-addr ADDR          listen address (default 127.0.0.1:8347; use
//	                    host:0 for a kernel-assigned port)
//	-portfile FILE      write the bound address to FILE once listening
//	                    (how scripts find a :0 port)
//	-max-modules N      resident-module cap, LRU-evicted (default 16)
//	-max-batch N        pair cap per mayalias-batch request (default 65536)
//	-max-inflight N     concurrently served /v1 requests (default 128)
//	-timeout D          per-request query timeout (default 30s)
//	-drain D            graceful-shutdown deadline on SIGINT/SIGTERM
//	                    (default 10s)
//	-cache-dir DIR      persist analysis artifacts in DIR; a restarted
//	                    daemon warm-starts resident analyzers from them
//	                    instead of re-analyzing (default off)
//	-mem-limit BYTES    memory watermark ("512M", "8G", plain bytes);
//	                    over it, uploads are shed with 503 and LRU
//	                    modules evicted until the heap drops to 80% of
//	                    the limit. Default: inherit GOMEMLIMIT when
//	                    set; "off" (or 0) disables the watermark
//	-mem-check D        watermark sampling interval (default 1s)
//	-quarantine-after N panics one (module, level, open) configuration
//	                    survives before being quarantined (default 3)
//	-faults SPEC        arm deterministic fault injection, e.g.
//	                    "artifact/read/bitflip:p=0.5,analyzer/build/panic:count=3"
//	                    (default off; every injection point is inert)
//	-fault-seed N       seed for the -faults randomness (default 1)
//
// Endpoints (see internal/server for the wire types):
//
//	POST /v1/modules                        upload source, get its hash
//	GET  /v1/modules                        list resident modules
//	POST /v1/modules/{hash}/mayalias        one query
//	POST /v1/modules/{hash}/mayalias-batch  a vector of queries
//	POST /v1/modules/{hash}/countpairs      Table 5 static pair metrics
//	GET  /metrics                           Prometheus text format
//	GET  /healthz                           liveness probe
//	GET  /readyz                            readiness probe: 503 while
//	                                        draining or over the memory
//	                                        watermark
//
// On SIGINT/SIGTERM the daemon marks /readyz unready, stops accepting
// connections, lets in-flight requests finish (up to -drain), then
// exits 0 — an in-flight edit publishes its generation before the
// process goes away. cmd/tbaactl is the matching client.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tbaa/internal/fault"
	"tbaa/internal/server"
)

// parseBytes parses a byte count with an optional K/M/G suffix
// (binary: K = 1024). "" and "off" and "0" mean disabled (0).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	if s == "" || s == "OFF" {
		return 0, nil
	}
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte count %q", s)
	}
	return n * mult, nil
}

// memLimitDefault resolves the -mem-limit default: inherit the
// process's GOMEMLIMIT when one is set, else no watermark.
func memLimitDefault() int64 {
	if lim := debug.SetMemoryLimit(-1); lim < math.MaxInt64 {
		return lim
	}
	return 0
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "listen `address`")
	portFile := flag.String("portfile", "", "write the bound address to `file` once listening")
	maxModules := flag.Int("max-modules", server.DefaultMaxModules, "resident-module cap (LRU eviction)")
	maxBatch := flag.Int("max-batch", server.DefaultMaxBatch, "pair cap per mayalias-batch request")
	maxInflight := flag.Int("max-inflight", server.DefaultMaxInflight, "concurrently served /v1 requests")
	timeout := flag.Duration("timeout", server.DefaultRequestTimeout, "per-request query timeout")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline")
	cacheDir := flag.String("cache-dir", "", "persist analysis artifacts in `dir` for warm restarts")
	memLimit := flag.String("mem-limit", "", "memory watermark in `bytes` (K/M/G suffixes; default GOMEMLIMIT; \"off\" disables)")
	memCheck := flag.Duration("mem-check", server.DefaultMemCheckInterval, "memory watermark sampling interval")
	quarAfter := flag.Int("quarantine-after", server.DefaultQuarantineAfter, "panics per analyzer configuration before quarantine")
	faults := flag.String("faults", "", "fault-injection `spec` (point[:p=F][:after=N][:count=N][:sleep=D], comma-separated)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for -faults randomness")
	flag.Parse()

	log.SetPrefix("tbaad: ")
	log.SetFlags(log.LstdFlags)

	limit, err := parseBytes(*memLimit)
	if err != nil {
		log.Fatalf("-mem-limit: %v", err)
	}
	if *memLimit == "" {
		limit = memLimitDefault()
	}
	if *faults != "" {
		in, err := fault.ParseSpec(*faults, *faultSeed)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
		fault.Configure(in)
		log.Printf("fault injection armed: %s (seed %d)", in, *faultSeed)
	}

	s := server.New(server.Config{
		MaxModules:       *maxModules,
		MaxBatch:         *maxBatch,
		MaxInflight:      *maxInflight,
		RequestTimeout:   *timeout,
		CacheDir:         *cacheDir,
		MemLimit:         limit,
		MemCheckInterval: *memCheck,
		QuarantineAfter:  *quarAfter,
	})
	if *cacheDir != "" {
		log.Printf("artifact cache at %s", *cacheDir)
	}
	if limit > 0 {
		log.Printf("memory watermark at %d bytes (check every %s)", limit, *memCheck)
	}

	// Listen before daemonizing concerns: with -addr host:0 the kernel
	// picks the port, and -portfile is how a harness learns it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	log.Printf("listening on %s (modules<=%d batch<=%d inflight<=%d timeout=%s)",
		bound, *maxModules, *maxBatch, *maxInflight, *timeout)
	if *portFile != "" {
		// Owner-only: the file points at a live local service, and the
		// daemon has no authentication — don't advertise the port to
		// other users on the machine.
		if err := os.WriteFile(*portFile, []byte(bound+"\n"), 0o600); err != nil {
			log.Fatal(err)
		}
	}

	// The full timeout ladder: headers promptly, whole request bodies
	// within a minute, responses within the query timeout plus slack
	// (so the server's own 504 wins the race against the socket
	// deadline), and idle keep-alive connections reaped.
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      *timeout + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go s.WatchMemory(ctx)
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()

	// Graceful drain: flip /readyz so load balancers stop routing here,
	// stop accepting, let in-flight requests finish, give up after
	// -drain so a wedged client cannot hold the process.
	s.BeginDrain()
	log.Printf("draining (deadline %s)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Fatalf("drain failed: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// The port file names a listener that no longer exists; leaving it
	// behind would point the next script at a dead (or, worse, someone
	// else's) port.
	if *portFile != "" {
		if err := os.Remove(*portFile); err != nil {
			log.Printf("removing port file: %v", err)
		}
	}
	fmt.Fprintln(os.Stderr, "tbaad: drained cleanly")
}
