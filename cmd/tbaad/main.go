// Command tbaad is the long-lived analysis server: a daemon that
// accepts MiniM3 module uploads over HTTP/JSON (compiled once, cached
// by source content hash), holds many live Analyzers, and serves
// may-alias queries to any number of concurrent clients.
//
// Usage:
//
//	tbaad [flags]
//
//	-addr ADDR          listen address (default 127.0.0.1:8347; use
//	                    host:0 for a kernel-assigned port)
//	-portfile FILE      write the bound address to FILE once listening
//	                    (how scripts find a :0 port)
//	-max-modules N      resident-module cap, LRU-evicted (default 16)
//	-max-batch N        pair cap per mayalias-batch request (default 65536)
//	-max-inflight N     concurrently served /v1 requests (default 128)
//	-timeout D          per-request query timeout (default 30s)
//	-drain D            graceful-shutdown deadline on SIGINT/SIGTERM
//	                    (default 10s)
//	-cache-dir DIR      persist analysis artifacts in DIR; a restarted
//	                    daemon warm-starts resident analyzers from them
//	                    instead of re-analyzing (default off)
//
// Endpoints (see internal/server for the wire types):
//
//	POST /v1/modules                        upload source, get its hash
//	GET  /v1/modules                        list resident modules
//	POST /v1/modules/{hash}/mayalias        one query
//	POST /v1/modules/{hash}/mayalias-batch  a vector of queries
//	POST /v1/modules/{hash}/countpairs      Table 5 static pair metrics
//	GET  /metrics                           Prometheus text format
//	GET  /healthz                           liveness probe
//
// On SIGINT/SIGTERM the daemon stops accepting connections, lets
// in-flight requests finish (up to -drain), then exits 0. cmd/tbaactl
// is the matching client.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tbaa/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "listen `address`")
	portFile := flag.String("portfile", "", "write the bound address to `file` once listening")
	maxModules := flag.Int("max-modules", server.DefaultMaxModules, "resident-module cap (LRU eviction)")
	maxBatch := flag.Int("max-batch", server.DefaultMaxBatch, "pair cap per mayalias-batch request")
	maxInflight := flag.Int("max-inflight", server.DefaultMaxInflight, "concurrently served /v1 requests")
	timeout := flag.Duration("timeout", server.DefaultRequestTimeout, "per-request query timeout")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline")
	cacheDir := flag.String("cache-dir", "", "persist analysis artifacts in `dir` for warm restarts")
	flag.Parse()

	log.SetPrefix("tbaad: ")
	log.SetFlags(log.LstdFlags)

	s := server.New(server.Config{
		MaxModules:     *maxModules,
		MaxBatch:       *maxBatch,
		MaxInflight:    *maxInflight,
		RequestTimeout: *timeout,
		CacheDir:       *cacheDir,
	})
	if *cacheDir != "" {
		log.Printf("artifact cache at %s", *cacheDir)
	}

	// Listen before daemonizing concerns: with -addr host:0 the kernel
	// picks the port, and -portfile is how a harness learns it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	log.Printf("listening on %s (modules<=%d batch<=%d inflight<=%d timeout=%s)",
		bound, *maxModules, *maxBatch, *maxInflight, *timeout)
	if *portFile != "" {
		// Owner-only: the file points at a live local service, and the
		// daemon has no authentication — don't advertise the port to
		// other users on the machine.
		if err := os.WriteFile(*portFile, []byte(bound+"\n"), 0o600); err != nil {
			log.Fatal(err)
		}
	}

	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()

	// Graceful drain: stop accepting, let in-flight requests finish,
	// give up after -drain so a wedged client cannot hold the process.
	log.Printf("draining (deadline %s)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Fatalf("drain failed: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// The port file names a listener that no longer exists; leaving it
	// behind would point the next script at a dead (or, worse, someone
	// else's) port.
	if *portFile != "" {
		if err := os.Remove(*portFile); err != nil {
			log.Printf("removing port file: %v", err)
		}
	}
	fmt.Fprintln(os.Stderr, "tbaad: drained cleanly")
}
