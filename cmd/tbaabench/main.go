// Command tbaabench regenerates every table and figure from the paper's
// evaluation section (Tables 4-6, Figures 8-12).
//
// Usage:
//
//	tbaabench              # everything
//	tbaabench -table 5     # one table
//	tbaabench -figure 10   # one figure
package main

import (
	"flag"
	"fmt"
	"os"

	"tbaa/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (4, 5, or 6)")
	figure := flag.Int("figure", 0, "regenerate one figure (8..12)")
	flag.Parse()

	all := *table == 0 && *figure == 0
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tbaabench:", err)
		os.Exit(1)
	}
	out := os.Stdout

	if all || *table == 4 {
		rows, err := bench.Table4()
		if err != nil {
			fail(err)
		}
		bench.FprintTable4(out, rows)
		fmt.Fprintln(out)
	}
	if all || *table == 5 {
		rows, err := bench.Table5()
		if err != nil {
			fail(err)
		}
		bench.FprintTable5(out, rows)
		fmt.Fprintln(out)
	}
	if all || *table == 6 {
		rows, err := bench.Table6()
		if err != nil {
			fail(err)
		}
		bench.FprintTable6(out, rows)
		fmt.Fprintln(out)
	}
	if all || *figure == 8 {
		rows, err := bench.Figure8()
		if err != nil {
			fail(err)
		}
		bench.FprintFigure8(out, rows)
		fmt.Fprintln(out)
	}
	if all || *figure == 9 {
		rows, err := bench.Figure9()
		if err != nil {
			fail(err)
		}
		bench.FprintFigure9(out, rows)
		fmt.Fprintln(out)
	}
	if all || *figure == 10 {
		rows, err := bench.Figure10()
		if err != nil {
			fail(err)
		}
		bench.FprintFigure10(out, rows)
		fmt.Fprintln(out)
	}
	if all || *figure == 11 {
		rows, err := bench.Figure11()
		if err != nil {
			fail(err)
		}
		bench.FprintFigure11(out, rows)
		fmt.Fprintln(out)
	}
	if all || *figure == 12 {
		rows, err := bench.Figure12()
		if err != nil {
			fail(err)
		}
		bench.FprintFigure12(out, rows)
		fmt.Fprintln(out)
	}
}
