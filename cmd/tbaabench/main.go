// Command tbaabench regenerates every table and figure from the paper's
// evaluation section (Tables 4-6, Figures 8-12) plus the extension
// tables (Table FS, Table IP) through the public tbaa package's Runner.
//
// Usage:
//
//	tbaabench                    # everything, GOMAXPROCS workers
//	tbaabench -table 5           # one table
//	tbaabench -table fs          # the flow-sensitive extension table
//	tbaabench -table ip          # the interprocedural extension table
//	tbaabench -figure 10         # one figure
//	tbaabench -parallel 1        # force the sequential path
//	tbaabench -fsjson BENCH_fs.json  # write the Table FS JSON artifact
//	tbaabench -ipjson BENCH_ip.json  # write the Table IP JSON artifact
//	tbaabench -perfjson BENCH_perf.json  # measure and write the query-perf artifact
//	tbaabench -scalejson BENCH_scale.json            # trimmed scale sweep (two sizes)
//	tbaabench -scalejson BENCH_scale.json -scalesweep full  # nightly full sweep
//	tbaabench -cpuprofile cpu.out -table 5  # pprof evidence for perf PRs
//
// Output is byte-identical for every worker count: configurations are
// fanned out as independent cells and reassembled in paper order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"

	"tbaa"
)

func main() {
	table := flag.String("table", "", "regenerate one table (4, 5, 6, fs, or ip)")
	figure := flag.Int("figure", 0, "regenerate one figure (8..12)")
	parallel := flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS, 1 = sequential)")
	fsJSON := flag.String("fsjson", "", "write the Table FS metrics as JSON to `file` (- for stdout)")
	ipJSON := flag.String("ipjson", "", "write the Table IP metrics as JSON to `file` (- for stdout)")
	perfJSON := flag.String("perfjson", "", "measure query perf (MayAlias, MayAliasBatch, CountPairs per level) and write JSON to `file` (- for stdout)")
	scaleJSON := flag.String("scalejson", "", "run the scale corpus sweep (generated 10k-100k-line modules × levels) and write JSON to `file` (- for stdout)")
	scaleSweep := flag.String("scalesweep", "trim", "scale sweep size: trim (per-PR, two sizes) or full (nightly, three sizes)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to `file`")
	memProfile := flag.String("memprofile", "", "write an allocation profile at exit to `file`")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle live-object stats before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	// Batch tool: the compile cache keeps every benchmark's checked
	// module live while the simulators churn allocations, so trade heap
	// headroom for fewer collections (GOGC still overrides).
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(300)
	}

	r := tbaa.NewRunner(*parallel)

	tableIdx := 0
	switch strings.ToLower(*table) {
	case "", "0":
	case "fs":
		tableIdx = tbaa.TableFSIndex
	case "ip":
		tableIdx = tbaa.TableIPIndex
	default:
		n, err := strconv.Atoi(*table)
		if err != nil || n < 4 || n > 6 {
			fatal(fmt.Errorf("invalid -table %q (want 4, 5, 6, fs, or ip)", *table))
		}
		tableIdx = n
	}

	if *scaleJSON != "" {
		full := false
		switch *scaleSweep {
		case "trim":
		case "full":
			full = true
		default:
			fatal(fmt.Errorf("invalid -scalesweep %q (want trim or full)", *scaleSweep))
		}
		rows, err := tbaa.MeasureScale(full)
		if err != nil {
			fatal(err)
		}
		if err := writeJSONArtifact(*scaleJSON, rows, tbaa.WriteScaleJSON); err != nil {
			fatal(err)
		}
		if *scaleJSON != "-" {
			tbaa.FprintScale(os.Stdout, rows)
		}
		if tableIdx == 0 && *figure == 0 && *fsJSON == "" && *ipJSON == "" && *perfJSON == "" {
			return
		}
	}

	if *perfJSON != "" {
		rows, err := tbaa.MeasurePerf()
		if err != nil {
			fatal(err)
		}
		if err := writeJSONArtifact(*perfJSON, rows, tbaa.WritePerfJSON); err != nil {
			fatal(err)
		}
		if *perfJSON != "-" {
			tbaa.FprintPerf(os.Stdout, rows)
		}
		if tableIdx == 0 && *figure == 0 && *fsJSON == "" && *ipJSON == "" {
			return
		}
	}

	if *fsJSON != "" {
		rows, err := r.TableFS()
		if err != nil {
			fatal(err)
		}
		if err := writeJSONArtifact(*fsJSON, rows, tbaa.WriteFSJSON); err != nil {
			fatal(err)
		}
		// Table FS was just computed; render it from the same rows
		// instead of re-deriving every cell.
		if tableIdx == tbaa.TableFSIndex {
			tbaa.FprintTableFS(os.Stdout, rows)
			fmt.Println()
			tableIdx = 0
		}
		if tableIdx == 0 && *figure == 0 && *ipJSON == "" {
			return
		}
	}

	if *ipJSON != "" {
		rows, err := r.TableIP()
		if err != nil {
			fatal(err)
		}
		if err := writeJSONArtifact(*ipJSON, rows, tbaa.WriteIPJSON); err != nil {
			fatal(err)
		}
		// Table IP was just computed; render it from the same rows
		// instead of re-deriving every cell.
		if tableIdx == tbaa.TableIPIndex {
			tbaa.FprintTableIP(os.Stdout, rows)
			fmt.Println()
			tableIdx = 0
		}
		if tableIdx == 0 && *figure == 0 {
			return
		}
	}

	if err := r.WriteArtifacts(os.Stdout, tableIdx, *figure); err != nil {
		fatal(err)
	}
}

// writeJSONArtifact writes rows as JSON to path ("-" for stdout),
// never shipping a truncated artifact on a failed final flush.
func writeJSONArtifact[T any](path string, rows []T, write func(io.Writer, []T) error) error {
	if path == "-" {
		return write(os.Stdout, rows)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f, rows)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tbaabench:", err)
	os.Exit(1)
}
