// Command tbaabench regenerates every table and figure from the paper's
// evaluation section (Tables 4-6, Figures 8-12).
//
// Usage:
//
//	tbaabench              # everything, GOMAXPROCS workers
//	tbaabench -table 5     # one table
//	tbaabench -figure 10   # one figure
//	tbaabench -parallel 1  # force the sequential path
//
// Output is byte-identical for every worker count: configurations are
// fanned out as independent cells and reassembled in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"

	"tbaa/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (4, 5, or 6)")
	figure := flag.Int("figure", 0, "regenerate one figure (8..12)")
	parallel := flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	// Batch tool: the compile cache keeps every benchmark's checked
	// module live while the simulators churn allocations, so trade heap
	// headroom for fewer collections (GOGC still overrides).
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(300)
	}

	r := bench.NewRunner(*parallel)

	all := *table == 0 && *figure == 0
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tbaabench:", err)
		os.Exit(1)
	}
	out := os.Stdout

	if all || *table == 4 {
		rows, err := r.Table4()
		if err != nil {
			fail(err)
		}
		bench.FprintTable4(out, rows)
		fmt.Fprintln(out)
	}
	if all || *table == 5 {
		rows, err := r.Table5()
		if err != nil {
			fail(err)
		}
		bench.FprintTable5(out, rows)
		fmt.Fprintln(out)
	}
	if all || *table == 6 {
		rows, err := r.Table6()
		if err != nil {
			fail(err)
		}
		bench.FprintTable6(out, rows)
		fmt.Fprintln(out)
	}
	if all || *figure == 8 {
		rows, err := r.Figure8()
		if err != nil {
			fail(err)
		}
		bench.FprintFigure8(out, rows)
		fmt.Fprintln(out)
	}
	if all || *figure == 9 {
		rows, err := r.Figure9()
		if err != nil {
			fail(err)
		}
		bench.FprintFigure9(out, rows)
		fmt.Fprintln(out)
	}
	if all || *figure == 10 {
		rows, err := r.Figure10()
		if err != nil {
			fail(err)
		}
		bench.FprintFigure10(out, rows)
		fmt.Fprintln(out)
	}
	if all || *figure == 11 {
		rows, err := r.Figure11()
		if err != nil {
			fail(err)
		}
		bench.FprintFigure11(out, rows)
		fmt.Fprintln(out)
	}
	if all || *figure == 12 {
		rows, err := r.Figure12()
		if err != nil {
			fail(err)
		}
		bench.FprintFigure12(out, rows)
		fmt.Fprintln(out)
	}
}
