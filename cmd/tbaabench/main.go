// Command tbaabench regenerates every table and figure from the paper's
// evaluation section (Tables 4-6, Figures 8-12) plus the flow-sensitive
// extension table (Table FS) through the public tbaa package's Runner.
//
// Usage:
//
//	tbaabench                    # everything, GOMAXPROCS workers
//	tbaabench -table 5           # one table
//	tbaabench -table fs          # the flow-sensitive extension table
//	tbaabench -figure 10         # one figure
//	tbaabench -parallel 1        # force the sequential path
//	tbaabench -fsjson BENCH_fs.json  # write the Table FS JSON artifact
//
// Output is byte-identical for every worker count: configurations are
// fanned out as independent cells and reassembled in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"

	"tbaa"
)

func main() {
	table := flag.String("table", "", "regenerate one table (4, 5, 6, or fs)")
	figure := flag.Int("figure", 0, "regenerate one figure (8..12)")
	parallel := flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS, 1 = sequential)")
	fsJSON := flag.String("fsjson", "", "write the Table FS metrics as JSON to `file` (- for stdout)")
	flag.Parse()

	// Batch tool: the compile cache keeps every benchmark's checked
	// module live while the simulators churn allocations, so trade heap
	// headroom for fewer collections (GOGC still overrides).
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(300)
	}

	r := tbaa.NewRunner(*parallel)

	tableIdx := 0
	switch strings.ToLower(*table) {
	case "", "0":
	case "fs":
		tableIdx = tbaa.TableFSIndex
	default:
		n, err := strconv.Atoi(*table)
		if err != nil || n < 4 || n > 6 {
			fatal(fmt.Errorf("invalid -table %q (want 4, 5, 6, or fs)", *table))
		}
		tableIdx = n
	}

	if *fsJSON != "" {
		rows, err := r.TableFS()
		if err != nil {
			fatal(err)
		}
		if *fsJSON == "-" {
			if err := tbaa.WriteFSJSON(os.Stdout, rows); err != nil {
				fatal(err)
			}
		} else {
			f, err := os.Create(*fsJSON)
			if err != nil {
				fatal(err)
			}
			err = tbaa.WriteFSJSON(f, rows)
			if cerr := f.Close(); err == nil {
				err = cerr // a failed final flush must not ship a truncated artifact
			}
			if err != nil {
				fatal(err)
			}
		}
		// Table FS was just computed; render it from the same rows
		// instead of re-deriving every cell.
		if tableIdx == tbaa.TableFSIndex {
			tbaa.FprintTableFS(os.Stdout, rows)
			fmt.Println()
			tableIdx = 0
			if *figure == 0 {
				return
			}
		}
		if tableIdx == 0 && *figure == 0 {
			return
		}
	}

	if err := r.WriteArtifacts(os.Stdout, tableIdx, *figure); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tbaabench:", err)
	os.Exit(1)
}
