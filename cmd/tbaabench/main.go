// Command tbaabench regenerates every table and figure from the paper's
// evaluation section (Tables 4-6, Figures 8-12) through the public tbaa
// package's Runner.
//
// Usage:
//
//	tbaabench              # everything, GOMAXPROCS workers
//	tbaabench -table 5     # one table
//	tbaabench -figure 10   # one figure
//	tbaabench -parallel 1  # force the sequential path
//
// Output is byte-identical for every worker count: configurations are
// fanned out as independent cells and reassembled in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"

	"tbaa"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (4, 5, or 6)")
	figure := flag.Int("figure", 0, "regenerate one figure (8..12)")
	parallel := flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	// Batch tool: the compile cache keeps every benchmark's checked
	// module live while the simulators churn allocations, so trade heap
	// headroom for fewer collections (GOGC still overrides).
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(300)
	}

	r := tbaa.NewRunner(*parallel)
	if err := r.WriteArtifacts(os.Stdout, *table, *figure); err != nil {
		fmt.Fprintln(os.Stderr, "tbaabench:", err)
		os.Exit(1)
	}
}
