// Command benchguard compares two `go test -bench` output files and
// fails when any tracked benchmark regressed beyond a threshold. It is
// the enforcement half of the bench-perf CI job: benchstat renders the
// human-readable comparison, benchguard turns ">20% slower than the
// committed baseline" into a non-zero exit.
//
// Usage:
//
//	benchguard -baseline testdata/bench_perf_baseline.txt -current out.txt \
//	    -threshold 0.20 -match BenchmarkMayAlias,BenchmarkCountPairs
//
// Benchmarks are matched by name prefix after stripping the -N
// GOMAXPROCS suffix; of the repeated measurements of one benchmark
// (-count=5) the minimum is compared — the noise-robust estimator of a
// benchmark's true cost, since scheduling interference only ever adds
// time. A benchmark present in the baseline
// but missing from the current run is an error (a silently deleted
// benchmark must not pass the gate); new benchmarks absent from the
// baseline pass with a note.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	baseline := flag.String("baseline", "", "baseline `file` (committed go test -bench output)")
	current := flag.String("current", "", "current `file` (fresh go test -bench output)")
	threshold := flag.Float64("threshold", 0.20, "maximum allowed ns/op regression (0.20 = +20%)")
	match := flag.String("match", "BenchmarkMayAlias,BenchmarkCountPairs", "comma-separated benchmark name prefixes to gate")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline and -current are required")
		os.Exit(2)
	}
	base, err := parseBench(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := parseBench(*current)
	if err != nil {
		fatal(err)
	}
	prefixes := strings.Split(*match, ",")
	tracked := func(name string) bool {
		for _, p := range prefixes {
			if p != "" && strings.HasPrefix(name, strings.TrimSpace(p)) {
				return true
			}
		}
		return false
	}
	names := make([]string, 0, len(base))
	for name := range base {
		if tracked(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fatal(fmt.Errorf("no tracked benchmarks in %s (match %q)", *baseline, *match))
	}
	failed := false
	for _, name := range names {
		b := minOf(base[name])
		c, ok := cur[name]
		if !ok {
			fmt.Printf("FAIL %-44s missing from current run\n", name)
			failed = true
			continue
		}
		cm := minOf(c)
		delta := (cm - b) / b
		status := "ok  "
		if delta > *threshold {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-44s %10.1f ns/op -> %10.1f ns/op  (%+.1f%%, limit +%.0f%%)\n",
			status, name, b, cm, 100*delta, 100**threshold)
	}
	for name := range cur {
		if tracked(name) {
			if _, ok := base[name]; !ok {
				fmt.Printf("note %-44s new benchmark (no baseline)\n", name)
			}
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchguard: tracked benchmarks regressed beyond the threshold")
		fmt.Fprintln(os.Stderr, "benchguard: if the change is intentional, refresh the baseline with 'make bench-baseline' and commit it")
		os.Exit(1)
	}
}

// parseBench extracts ns/op samples per benchmark name from a go test
// -bench output file, stripping the -N GOMAXPROCS suffix.
func parseBench(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad ns/op in %q", path, sc.Text())
				}
				out[name] = append(out[name], v)
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
