// Command benchguard is the enforcement half of the perf CI jobs. It
// has two modes, both built on the testable internal/guard package:
//
// Classic (default): compare two `go test -bench` output files and
// fail when any tracked benchmark regressed beyond a threshold.
// benchstat renders the human-readable comparison; benchguard turns
// ">20% slower than the committed baseline" into a non-zero exit.
//
//	benchguard -baseline testdata/bench_perf_baseline.txt -current out.txt \
//	    -threshold 0.20 -match BenchmarkMayAlias,BenchmarkCountPairs,BenchmarkRebuildOneProc
//
// Scale (-scale): compare two BENCH_scale.json sweep artifacts by
// growth exponent — the log-log slope of each (level, op) cost against
// module size — and fail when per-query cost stops being ~flat in
// module size or a build stage goes superlinear past the committed
// baseline. Exponents are machine-independent, so the committed
// baseline gates runs on any hardware.
//
//	benchguard -scale -baseline testdata/bench_scale_baseline.json \
//	    -current BENCH_scale.json
//
// A missing or malformed baseline is a readable failure (exit 2), not
// a panic and never a silent pass; refresh baselines with
// `make bench-baseline` / `make bench-scale-baseline`.
package main

import (
	"flag"
	"fmt"
	"os"

	"tbaa/internal/guard"
)

func main() {
	baseline := flag.String("baseline", "", "baseline `file` (committed artifact)")
	current := flag.String("current", "", "current `file` (fresh run output)")
	threshold := flag.Float64("threshold", 0.20, "classic mode: maximum allowed ns/op regression (0.20 = +20%)")
	match := flag.String("match", "BenchmarkMayAlias,BenchmarkCountPairs,BenchmarkRebuildOneProc", "classic mode: comma-separated benchmark name prefixes to gate")
	scale := flag.Bool("scale", false, "scale mode: gate BENCH_scale.json growth exponents instead of go test -bench output")
	margin := flag.Float64("margin", guard.DefaultScalePolicy().Margin, "scale mode: allowed exponent increase over the committed baseline")
	flag.Parse()
	if *current == "" {
		usageError("-current is required")
	}
	if *baseline == "" {
		usageError("-baseline is required")
	}
	if *scale {
		runScale(*baseline, *current, *margin)
		return
	}
	runClassic(*baseline, *current, *match, *threshold)
}

func runClassic(baseline, current, match string, threshold float64) {
	base := parseBenchFile(baseline, "baseline")
	cur := parseBenchFile(current, "current")
	rep, err := guard.CompareBench(base, cur, splitList(match), threshold)
	if err != nil {
		fatal(err)
	}
	rep.Fprint(os.Stdout)
	if rep.Failed {
		fmt.Fprintln(os.Stderr, "benchguard: tracked benchmarks regressed beyond the threshold")
		fmt.Fprintln(os.Stderr, "benchguard: if the change is intentional, refresh the baseline with 'make bench-baseline' and commit it")
		os.Exit(1)
	}
}

func runScale(baseline, current string, margin float64) {
	base := parseScaleFile(baseline, "baseline", "make bench-scale-baseline")
	cur := parseScaleFile(current, "current", "make bench-scale")
	pol := guard.DefaultScalePolicy()
	pol.Margin = margin
	rep, err := guard.CompareScale(cur, base, pol)
	if err != nil {
		fatal(err)
	}
	rep.Fprint(os.Stdout)
	if rep.Failed {
		fmt.Fprintln(os.Stderr, "benchguard: scale-sweep growth exponents exceed the gate")
		fmt.Fprintln(os.Stderr, "benchguard: if the scaling change is intentional, refresh the baseline with 'make bench-scale-baseline' and commit it")
		os.Exit(1)
	}
}

func parseBenchFile(path, role string) map[string][]float64 {
	f, err := os.Open(path)
	if err != nil {
		usageError(fmt.Sprintf("cannot read %s file: %v", role, err))
	}
	defer f.Close()
	out, err := guard.ParseBench(f, path)
	if err != nil {
		usageError(err.Error())
	}
	return out
}

func parseScaleFile(path, role, refreshHint string) []guard.ScaleRow {
	f, err := os.Open(path)
	if err != nil {
		usageError(fmt.Sprintf("cannot read %s scale artifact: %v (regenerate with '%s')", role, err, refreshHint))
	}
	defer f.Close()
	rows, err := guard.ParseScale(f, path)
	if err != nil {
		usageError(fmt.Sprintf("%v (regenerate with '%s')", err, refreshHint))
	}
	return rows
}

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

// usageError reports a setup problem (missing flag, unreadable or
// malformed input) distinctly from a gate failure: exit 2, never a
// panic, never a silent pass.
func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "benchguard:", msg)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
