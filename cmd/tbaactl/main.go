// Command tbaactl is the client for the tbaad analysis server: it
// uploads modules and issues may-alias queries over the same JSON wire
// types the server defines (internal/server), so the two cannot drift.
//
// Usage:
//
//	tbaactl [-addr host:port] COMMAND [args]
//
//	tbaactl upload file.m3             upload a module, print its hash
//	tbaactl upload -bench m3cg         upload a stock benchmark
//	                                   (-force recompiles a resident hash)
//	tbaactl edit HASH proc.m3          replace one procedure (or - for stdin)
//	tbaactl modules                    list resident modules
//	tbaactl mayalias HASH P Q          one query (flags: -level, -open)
//	tbaactl batch HASH                 pairs "P Q" per line on stdin
//	tbaactl countpairs HASH            Table 5 static pair metrics
//	tbaactl metrics                    dump /metrics (Prometheus text)
//	tbaactl health                     liveness probe
//	tbaactl ready                      readiness probe (/readyz)
//
// Transient failures — connection errors and 429/503/504 answers — are
// retried with exponential backoff and jitter, honoring the server's
// Retry-After header, for idempotent requests only (-retries bounds
// the attempts, -max-wait each individual backoff). An edit is never
// retried: the client cannot know whether the server applied it before
// the connection died. Uploads are content-addressed, so re-sending
// one is safe by construction.
//
// -timeout bounds one HTTP attempt end to end and should stay above
// the server's own -timeout: then a long batch is answered by the
// server's structured 504 (which the retry policy understands) rather
// than a client-side abort.
//
// Exit status is 0 on success, 1 on any server or transport error.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"tbaa"
	"tbaa/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "tbaad `address`")
	timeout := flag.Duration("timeout", 60*time.Second, "per-attempt HTTP timeout (keep above the server's -timeout)")
	retries := flag.Int("retries", 4, "retry budget for idempotent requests on connection errors and 429/503/504")
	maxWait := flag.Duration("max-wait", 15*time.Second, "cap on one backoff sleep between retries")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	c := &client{
		base:    "http://" + *addr,
		hc:      &http.Client{Timeout: *timeout},
		retries: *retries,
		maxWait: *maxWait,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "upload":
		err = c.upload(args)
	case "edit":
		err = c.edit(args)
	case "modules":
		err = c.modules()
	case "mayalias":
		err = c.mayAlias(args)
	case "batch":
		err = c.batch(args)
	case "countpairs":
		err = c.countPairs(args)
	case "metrics":
		err = c.text("/metrics")
	case "health":
		err = c.text("/healthz")
	case "ready":
		err = c.text("/readyz")
	default:
		fmt.Fprintf(os.Stderr, "tbaactl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tbaactl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tbaactl [-addr host:port] COMMAND [args]

commands:
  upload file.m3 | upload -bench NAME   upload a module, print its hash
  edit HASH proc.m3 | edit HASH -       replace one procedure incrementally
  modules                               list resident modules
  mayalias HASH P Q [-level L] [-open]  one may-alias query
  batch HASH [-level L] [-open]         pairs "P Q" per line on stdin
  countpairs HASH [-level L] [-open]    static pair metrics
  metrics                               dump Prometheus metrics
  health                                liveness probe
  ready                                 readiness probe (503 while
                                        draining or under memory pressure)

flags: -addr, -timeout (per attempt), -retries, -max-wait`)
}

type client struct {
	base string
	hc   *http.Client

	// Retry policy for idempotent requests; the zero values (no
	// retries, no jitter source, real sleep) are valid, so tests that
	// construct a bare client get exactly one attempt.
	retries int
	maxWait time.Duration
	sleep   func(time.Duration)
	rng     *rand.Rand
}

// retryableStatus reports whether a response status is worth retrying:
// the server shed load (429, 503) or timed a request out (504).
// Everything else — including a 500 panic answer and a 422 quarantine —
// is a deterministic verdict a retry would only repeat.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// retryAfter parses a Retry-After header: integer seconds or an HTTP
// date. 0 means absent or unparseable.
func retryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	h := resp.Header.Get("Retry-After")
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// backoff computes the sleep before retry number attempt (0-based):
// exponential from 200ms with ±50% jitter, raised to the server's
// Retry-After when it asks for longer, capped at maxWait.
func (c *client) backoff(attempt int, resp *http.Response) time.Duration {
	d := 200 * time.Millisecond << uint(attempt)
	if c.rng != nil {
		d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	}
	if ra := retryAfter(resp); ra > d {
		d = ra
	}
	if c.maxWait > 0 && d > c.maxWait {
		d = c.maxWait
	}
	return d
}

// send issues the request built by mk, retrying connection errors and
// retryable statuses for idempotent requests until the retry budget is
// spent. mk is called per attempt (a *http.Request body cannot be
// replayed). The last response or error is returned for the caller's
// normal handling, so an exhausted budget surfaces the server's own
// final answer.
func (c *client) send(idempotent bool, mk func() (*http.Request, error)) (*http.Response, error) {
	doSleep := c.sleep
	if doSleep == nil {
		doSleep = time.Sleep
	}
	for attempt := 0; ; attempt++ {
		req, err := mk()
		if err != nil {
			return nil, err
		}
		resp, err := c.hc.Do(req)
		if err == nil && !retryableStatus(resp.StatusCode) {
			return resp, nil
		}
		if !idempotent || attempt >= c.retries {
			return resp, err
		}
		d := c.backoff(attempt, resp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tbaactl: %v; retrying in %s (%d/%d)\n", err, d, attempt+1, c.retries)
		} else {
			fmt.Fprintf(os.Stderr, "tbaactl: server answered %s; retrying in %s (%d/%d)\n", resp.Status, d, attempt+1, c.retries)
			// Drain so the connection can be reused for the retry.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
		}
		doSleep(d)
	}
}

// httpError turns a non-2xx response into the error main prints on
// stderr, always carrying the server's own words: the ErrorResponse
// message when the body parses (diagnostics are printed to stderr
// directly), the raw body otherwise. A 429's advice or a 503's
// Retry-After story must reach the operator, not be swallowed into a
// bare status line.
func (c *client) httpError(method, path string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var e server.ErrorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		for _, d := range e.Diagnostics {
			fmt.Fprintln(os.Stderr, " ", d)
		}
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, e.Error)
	}
	if msg := strings.TrimSpace(string(body)); msg != "" {
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, msg)
	}
	return fmt.Errorf("%s %s: %s", method, path, resp.Status)
}

// post sends a JSON body and decodes the JSON answer into out,
// surfacing the server's error body on any non-2xx status. idempotent
// gates the retry policy: an upload is content-addressed (re-sending
// the same bytes lands the same module) and queries are pure reads, so
// both retry; an edit must not (see postOnce).
func (c *client) post(path string, in, out any, idempotent bool) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.send(idempotent, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return c.httpError("POST", path, resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *client) get(path string, out any) error {
	resp, err := c.send(true, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+path, nil)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return c.httpError("GET", path, resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *client) text(path string) error {
	resp, err := c.send(true, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+path, nil)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return c.httpError("GET", path, resp)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func (c *client) upload(args []string) error {
	fs := flag.NewFlagSet("upload", flag.ExitOnError)
	benchName := fs.String("bench", "", "upload a stock benchmark instead of a file")
	force := fs.Bool("force", false, "recompile and swap in a fresh generation even if the hash is resident")
	fs.Parse(args)
	var file, src string
	switch {
	case *benchName != "":
		b, ok := tbaa.BenchmarkByName(*benchName)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", *benchName)
		}
		file, src = b.Name+".m3", b.Source
	case fs.NArg() == 1:
		file = fs.Arg(0)
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		src = string(data)
	default:
		return fmt.Errorf("upload wants one file argument or -bench NAME")
	}
	var resp server.UploadResponse
	if err := c.post("/v1/modules", server.UploadRequest{File: file, Source: src, Force: *force}, &resp, true); err != nil {
		return err
	}
	state := "compiled"
	if resp.Cached {
		state = "cached"
	}
	fmt.Printf("%s %s generation=%d resident=%d (%s)\n", resp.Hash, state, resp.Generation, resp.Resident, resp.File)
	return nil
}

// edit posts a single-procedure replacement: the resident module keeps
// its hash and compiled form, only the named procedure is re-checked,
// re-lowered, and incrementally re-analyzed server-side.
func (c *client) edit(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("edit wants HASH and a procedure file (or - for stdin)")
	}
	hash, file := args[0], args[1]
	var data []byte
	var err error
	if file == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(file)
	}
	if err != nil {
		return err
	}
	var resp server.EditResponse
	// Never retried: if the connection dies mid-edit the client cannot
	// know whether the generation advanced, and a blind replay could
	// apply the edit twice (observable in the generation counter).
	if err := c.post("/v1/modules/"+hash+"/edit", server.EditRequest{Source: string(data)}, &resp, false); err != nil {
		return err
	}
	fmt.Printf("%s edited proc=%s generation=%d reanalyzed=%d\n", resp.Hash, resp.Proc, resp.Generation, resp.Reanalyzed)
	return nil
}

func (c *client) modules() error {
	var resp server.ModulesResponse
	if err := c.get("/v1/modules", &resp); err != nil {
		return err
	}
	for _, m := range resp.Modules {
		fmt.Printf("%s gen=%d queries=%d batches=%d %s\n", m.Hash, m.Generation, m.Queries, m.Batches, m.File)
	}
	return nil
}

// levelFlags parses the shared -level/-open selection after the
// positional arguments of a query command.
func levelFlags(name string, args []string, positional int) (server.LevelRequest, []string, error) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	level := fs.String("level", "", "analysis level (typedecl..iptyperefs; default smfieldtyperefs)")
	open := fs.Bool("open", false, "open-world assumption")
	var pos []string
	rest := args
	for len(pos) < positional && len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		pos, rest = append(pos, rest[0]), rest[1:]
	}
	fs.Parse(rest)
	pos = append(pos, fs.Args()...)
	if len(pos) != positional {
		return server.LevelRequest{}, nil, fmt.Errorf("%s wants %d arguments", name, positional)
	}
	return server.LevelRequest{Level: *level, Open: *open}, pos, nil
}

func (c *client) mayAlias(args []string) error {
	lv, pos, err := levelFlags("mayalias", args, 3)
	if err != nil {
		return err
	}
	var resp server.QueryResponse
	req := server.QueryRequest{LevelRequest: lv, P: pos[1], Q: pos[2]}
	if err := c.post("/v1/modules/"+pos[0]+"/mayalias", req, &resp, true); err != nil {
		return err
	}
	fmt.Printf("%s ~ %s: may-alias=%v generation=%d\n", pos[1], pos[2], resp.MayAlias, resp.Generation)
	return nil
}

func (c *client) batch(args []string) error {
	lv, pos, err := levelFlags("batch", args, 1)
	if err != nil {
		return err
	}
	req := server.BatchRequest{LevelRequest: lv}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) == 0 {
			continue
		}
		if len(f) != 2 {
			return fmt.Errorf("batch line %q: want two access paths per line", sc.Text())
		}
		req.Pairs = append(req.Pairs, server.PairJSON{P: f[0], Q: f[1]})
	}
	if err := sc.Err(); err != nil {
		return err
	}
	var resp server.BatchResponse
	if err := c.post("/v1/modules/"+pos[0]+"/mayalias-batch", req, &resp, true); err != nil {
		return err
	}
	for _, v := range resp.Verdicts {
		if v.Error != "" {
			fmt.Printf("%s ~ %s: error: %s\n", v.P, v.Q, v.Error)
			continue
		}
		fmt.Printf("%s ~ %s: may-alias=%v\n", v.P, v.Q, v.MayAlias)
	}
	fmt.Printf("generation=%d session queries=%d aliased=%d batches=%d\n",
		resp.Generation, resp.Stats.Queries, resp.Stats.Aliased, resp.Stats.Batches)
	return nil
}

func (c *client) countPairs(args []string) error {
	lv, pos, err := levelFlags("countpairs", args, 1)
	if err != nil {
		return err
	}
	var resp server.CountPairsResponse
	if err := c.post("/v1/modules/"+pos[0]+"/countpairs", lv, &resp, true); err != nil {
		return err
	}
	fmt.Printf("references=%d local-pairs=%d global-pairs=%d generation=%d\n",
		resp.References, resp.Local, resp.Global, resp.Generation)
	return nil
}
