package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tbaa/internal/server"
)

// TestErrorBodiesSurfaced pins that every response path — the
// JSON-decoding POST and GET helpers and the raw-text GET — carries
// the server's error body into the error main prints, for both the
// structured ErrorResponse shape and opaque bodies (a proxy's plain
// text, or nothing at all). A shed or timed-out request must tell the
// operator why, not just that it failed.
func TestErrorBodiesSurfaced(t *testing.T) {
	cases := []struct {
		name   string
		status int
		body   string
		want   string // substring the returned error must carry
	}{
		{"shed batch 429", http.StatusTooManyRequests,
			`{"error":"batch of 70000 pairs exceeds the 65536-pair limit; split it"}`, "split it"},
		{"at capacity 503", http.StatusServiceUnavailable,
			`{"error":"server at capacity"}`, "server at capacity"},
		{"timeout 504", http.StatusGatewayTimeout,
			`{"error":"batch exceeded the 30s request timeout"}`, "request timeout"},
		{"non-JSON body", http.StatusServiceUnavailable,
			"upstream proxy says no", "upstream proxy says no"},
		{"empty body", http.StatusGatewayTimeout, "", "504"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(tc.status)
				io.WriteString(w, tc.body)
			}))
			defer ts.Close()
			c := &client{base: ts.URL, hc: &http.Client{Timeout: 5 * time.Second}}
			for name, err := range map[string]error{
				"post": c.post("/v1/modules/x/mayalias-batch", server.BatchRequest{}, &server.BatchResponse{}),
				"get":  c.get("/v1/modules", &server.ModulesResponse{}),
				"text": c.text("/metrics"),
			} {
				if err == nil {
					t.Fatalf("%s: non-2xx status answered a nil error", name)
				}
				if !strings.Contains(err.Error(), tc.want) {
					t.Errorf("%s: error %q does not surface %q", name, err, tc.want)
				}
			}
		})
	}
}

// TestSubcommandErrorsSurface drives the same contract through the
// subcommand entry points scripts actually call.
func TestSubcommandErrorsSurface(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"server at capacity"}`)
	}))
	defer ts.Close()
	c := &client{base: ts.URL, hc: &http.Client{Timeout: 5 * time.Second}}
	for name, err := range map[string]error{
		"mayalias":   c.mayAlias([]string{"deadbeef", "x.i", "y.j"}),
		"countpairs": c.countPairs([]string{"deadbeef"}),
		"modules":    c.modules(),
		"metrics":    c.text("/metrics"),
	} {
		if err == nil {
			t.Fatalf("%s: 503 answered a nil error", name)
		}
		if !strings.Contains(err.Error(), "server at capacity") {
			t.Errorf("%s: error %q swallowed the server's body", name, err)
		}
	}
}
