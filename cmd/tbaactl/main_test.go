package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tbaa/internal/server"
)

// TestErrorBodiesSurfaced pins that every response path — the
// JSON-decoding POST and GET helpers and the raw-text GET — carries
// the server's error body into the error main prints, for both the
// structured ErrorResponse shape and opaque bodies (a proxy's plain
// text, or nothing at all). A shed or timed-out request must tell the
// operator why, not just that it failed.
func TestErrorBodiesSurfaced(t *testing.T) {
	cases := []struct {
		name   string
		status int
		body   string
		want   string // substring the returned error must carry
	}{
		{"shed batch 429", http.StatusTooManyRequests,
			`{"error":"batch of 70000 pairs exceeds the 65536-pair limit; split it"}`, "split it"},
		{"at capacity 503", http.StatusServiceUnavailable,
			`{"error":"server at capacity"}`, "server at capacity"},
		{"timeout 504", http.StatusGatewayTimeout,
			`{"error":"batch exceeded the 30s request timeout"}`, "request timeout"},
		{"non-JSON body", http.StatusServiceUnavailable,
			"upstream proxy says no", "upstream proxy says no"},
		{"empty body", http.StatusGatewayTimeout, "", "504"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(tc.status)
				io.WriteString(w, tc.body)
			}))
			defer ts.Close()
			c := &client{base: ts.URL, hc: &http.Client{Timeout: 5 * time.Second}}
			for name, err := range map[string]error{
				"post": c.post("/v1/modules/x/mayalias-batch", server.BatchRequest{}, &server.BatchResponse{}, true),
				"get":  c.get("/v1/modules", &server.ModulesResponse{}),
				"text": c.text("/metrics"),
			} {
				if err == nil {
					t.Fatalf("%s: non-2xx status answered a nil error", name)
				}
				if !strings.Contains(err.Error(), tc.want) {
					t.Errorf("%s: error %q does not surface %q", name, err, tc.want)
				}
			}
		})
	}
}

// retryClient builds a client with the retry policy armed and a
// recording fake sleeper, so tests observe every backoff without
// waiting it out.
func retryClient(base string, retries int) (*client, *[]time.Duration) {
	var slept []time.Duration
	c := &client{
		base:    base,
		hc:      &http.Client{Timeout: 5 * time.Second},
		retries: retries,
		maxWait: 15 * time.Second,
		sleep:   func(d time.Duration) { slept = append(slept, d) },
	}
	return c, &slept
}

// TestRetryPolicy pins the happy retry path: two 503s with Retry-After
// then success means three attempts, two sleeps each at least the
// server's Retry-After, and a nil error.
func TestRetryPolicy(t *testing.T) {
	var attempts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts <= 2 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":"server over its memory watermark"}`)
			return
		}
		io.WriteString(w, `{"modules":[]}`)
	}))
	defer ts.Close()
	c, slept := retryClient(ts.URL, 4)
	if err := c.get("/v1/modules", &server.ModulesResponse{}); err != nil {
		t.Fatalf("retries did not recover: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if len(*slept) != 2 {
		t.Fatalf("sleeps = %d, want 2", len(*slept))
	}
	for i, d := range *slept {
		if d < 2*time.Second {
			t.Errorf("sleep %d = %s, shorter than the server's Retry-After of 2s", i, d)
		}
	}
}

// TestRetryNonIdempotent pins that an edit is sent exactly once no
// matter the answer: the client cannot know whether a failed edit
// applied, so replaying it risks a double generation bump.
func TestRetryNonIdempotent(t *testing.T) {
	var attempts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"server at capacity"}`)
	}))
	defer ts.Close()
	c, slept := retryClient(ts.URL, 4)
	err := c.post("/v1/modules/x/edit", server.EditRequest{Source: "PROCEDURE P() = BEGIN END P;"}, &server.EditResponse{}, false)
	if err == nil {
		t.Fatal("failed edit answered a nil error")
	}
	if attempts != 1 {
		t.Fatalf("edit attempts = %d, want exactly 1", attempts)
	}
	if len(*slept) != 0 {
		t.Fatalf("edit slept %d times, want 0", len(*slept))
	}
}

// TestRetryConnError pins that connection failures retry too — the
// server being down is the textbook transient — and that the final
// error still surfaces after the budget is spent.
func TestRetryConnError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing listens: every attempt is a connection error
	c, slept := retryClient(ts.URL, 2)
	if err := c.get("/v1/modules", &server.ModulesResponse{}); err == nil {
		t.Fatal("dead server answered a nil error")
	}
	if len(*slept) != 2 {
		t.Fatalf("sleeps = %d, want 2 (the full budget)", len(*slept))
	}
	// Exponential: the second backoff's floor (400ms/2) exceeds the
	// first's ceiling only in expectation, but both respect their band.
	if (*slept)[0] < 100*time.Millisecond || (*slept)[0] > 200*time.Millisecond {
		t.Errorf("backoff 0 = %s, want within [100ms, 200ms]", (*slept)[0])
	}
	if (*slept)[1] < 200*time.Millisecond || (*slept)[1] > 400*time.Millisecond {
		t.Errorf("backoff 1 = %s, want within [200ms, 400ms]", (*slept)[1])
	}
}

// TestRetryExhausted pins that a persistent 503 spends the whole budget
// and then surfaces the server's final body — the operator sees why the
// request kept being refused, not a bare "gave up".
func TestRetryExhausted(t *testing.T) {
	var attempts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"server over its memory watermark; retry after evictions"}`)
	}))
	defer ts.Close()
	c, _ := retryClient(ts.URL, 3)
	err := c.get("/v1/modules", &server.ModulesResponse{})
	if err == nil {
		t.Fatal("persistent 503 answered a nil error")
	}
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4 (1 + 3 retries)", attempts)
	}
	if !strings.Contains(err.Error(), "memory watermark") {
		t.Errorf("exhausted error %q swallowed the final body", err)
	}
}

// TestRetryNotOnDeterministicStatus pins the other half of the retry
// matrix: 500 (a recovered panic) and 422 (quarantine, compile errors)
// are deterministic verdicts, retried zero times.
func TestRetryNotOnDeterministicStatus(t *testing.T) {
	for _, status := range []int{http.StatusInternalServerError, http.StatusUnprocessableEntity, http.StatusNotFound} {
		var attempts int
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			attempts++
			w.WriteHeader(status)
			io.WriteString(w, `{"error":"deterministic answer"}`)
		}))
		c, slept := retryClient(ts.URL, 4)
		if err := c.get("/v1/modules", &server.ModulesResponse{}); err == nil {
			t.Fatalf("status %d answered a nil error", status)
		}
		if attempts != 1 || len(*slept) != 0 {
			t.Errorf("status %d: attempts=%d sleeps=%d, want 1 and 0", status, attempts, len(*slept))
		}
		ts.Close()
	}
}

// TestSubcommandErrorsSurface drives the same contract through the
// subcommand entry points scripts actually call.
func TestSubcommandErrorsSurface(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"server at capacity"}`)
	}))
	defer ts.Close()
	c := &client{base: ts.URL, hc: &http.Client{Timeout: 5 * time.Second}}
	for name, err := range map[string]error{
		"mayalias":   c.mayAlias([]string{"deadbeef", "x.i", "y.j"}),
		"countpairs": c.countPairs([]string{"deadbeef"}),
		"modules":    c.modules(),
		"metrics":    c.text("/metrics"),
	} {
		if err == nil {
			t.Fatalf("%s: 503 answered a nil error", name)
		}
		if !strings.Contains(err.Error(), "server at capacity") {
			t.Errorf("%s: error %q swallowed the server's body", name, err)
		}
	}
}
