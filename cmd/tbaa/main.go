// Command tbaa compiles a MiniM3 module and exposes the analyses and
// optimizations of the library through the public tbaa package.
//
// Usage:
//
//	tbaa [flags] file.m3
//
//	-dump-ast        print the parsed module
//	-dump-ir         print the lowered IR (after optimization, if any)
//	-alias LEVEL     typedecl | fieldtypedecl | smfieldtyperefs (default)
//	                 | fstyperefs (flow-sensitive refinement)
//	                 | iptyperefs (interprocedural mod-ref)
//	-open            use the open-world (incomplete program) assumption
//	-pairs           print static alias-pair counts (Table 5 metrics)
//	-typerefs        print the SMTypeRefs TypeRefsTable
//
// Reports (-pairs, -typerefs, -dump-ir) describe the program the
// analyzer holds, i.e. after any passes requested with -rle/-pre/-minv
// have run.
//
//	-rle             run redundant load elimination
//	-pre             run partial redundancy elimination after RLE
//	-minv            devirtualize + inline before RLE
//	-run             execute the program and print its output and stats
//	-sim             execute under the cache timing model
//	-limit           run the dynamic redundant-load limit study
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"tbaa"
)

func main() {
	dumpAST := flag.Bool("dump-ast", false, "print the parsed module")
	dumpIR := flag.Bool("dump-ir", false, "print the lowered IR")
	level := tbaa.SMFieldTypeRefs
	flag.Var(&level, "alias", "alias analysis `level`: typedecl, fieldtypedecl, smfieldtyperefs, fstyperefs, or iptyperefs")
	open := flag.Bool("open", false, "open-world assumption")
	pairs := flag.Bool("pairs", false, "print alias-pair counts")
	typeRefs := flag.Bool("typerefs", false, "print the TypeRefsTable")
	rle := flag.Bool("rle", false, "run redundant load elimination")
	pre := flag.Bool("pre", false, "run partial redundancy elimination after RLE")
	minv := flag.Bool("minv", false, "devirtualize and inline first")
	run := flag.Bool("run", false, "execute the program")
	simulate := flag.Bool("sim", false, "execute under the timing model")
	limitStudy := flag.Bool("limit", false, "run the limit study")
	benchName := flag.String("bench", "", "use a built-in benchmark instead of a file")
	flag.Parse()

	var file, src string
	switch {
	case *benchName != "":
		b, ok := tbaa.BenchmarkByName(*benchName)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *benchName))
		}
		file, src = b.Name+".m3", b.Source
	case flag.NArg() == 1:
		file = flag.Arg(0)
		data, err := os.ReadFile(file)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: tbaa [flags] file.m3 (or -bench NAME)")
		flag.PrintDefaults()
		os.Exit(2)
	}

	if *dumpAST {
		// Parse-only, so the AST prints even for modules that would
		// fail type-checking.
		out, err := tbaa.ParseAST(file, src)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		if !*dumpIR && !*run && !*pairs {
			return
		}
	}

	mod, err := tbaa.Compile(file, src)
	if err != nil {
		fatal(err)
	}

	var passes []tbaa.Pass
	if *minv {
		passes = append(passes, tbaa.MinvInline())
	}
	if *rle || *pre {
		passes = append(passes, tbaa.RLE())
	}
	if *pre {
		passes = append(passes, tbaa.PRE())
	}

	a, err := mod.NewAnalyzer(
		tbaa.WithLevel(level),
		tbaa.WithOpenWorld(*open),
		tbaa.WithPasses(passes...),
	)
	if err != nil {
		fatal(err)
	}

	if *typeRefs {
		printTypeRefs(a)
	}
	if *pairs {
		pc := a.CountPairs()
		fmt.Printf("%s: references=%d local-pairs=%d global-pairs=%d\n",
			a.Name(), pc.References, pc.Local, pc.Global)
	}
	for _, res := range a.PassResults() {
		switch res.Pass {
		case "minv+inline":
			fmt.Printf("devirtualized %d calls, inlined %d sites\n", res.Devirtualized, res.Inlined)
		case "rle":
			fmt.Printf("RLE (%s): hoisted=%d eliminated=%d\n", a.Name(), res.Hoisted, res.Eliminated)
			if len(res.PerProc) > 0 {
				var names []string
				for n := range res.PerProc {
					names = append(names, n)
				}
				sort.Strings(names)
				for _, n := range names {
					fmt.Printf("  %-20s %d\n", n, res.PerProc[n])
				}
			}
		case "pre":
			fmt.Printf("PRE: inserted=%d eliminated=%d\n", res.Inserted, res.Eliminated)
		}
	}
	if *dumpIR {
		fmt.Print(a.IR())
	}
	if *run {
		out, st, err := a.Run()
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		fmt.Printf("[%d instructions, %d heap loads (%d dope), %d other loads, %d allocs]\n",
			st.Instructions, st.HeapLoads, st.DopeLoads, st.OtherLoads, st.Allocs)
	}
	if *simulate {
		r, out, err := a.Simulate()
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		fmt.Printf("[%d cycles, %d instructions, %d loads (%.1f%% miss)]\n",
			r.Cycles, r.Instructions, r.Loads, 100*r.MissRate())
	}
	if *limitStudy {
		rep, out, err := a.LimitStudy()
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		fmt.Printf("[%d heap loads, %d redundant]\n", rep.HeapLoads, rep.Redundant)
		for _, c := range rep.Categories {
			fmt.Printf("  %-14s %d\n", c.Name, c.Loads)
		}
	}
}

func printTypeRefs(a *tbaa.Analyzer) {
	refs := a.TypeRefs()
	fmt.Println("TypeRefsTable:")
	for _, name := range a.ReferenceTypes() {
		names, ok := refs[name]
		if !ok {
			fmt.Printf("  %-20s (level has no table; Subtypes used)\n", name)
			continue
		}
		fmt.Printf("  %-20s {%s}\n", name, strings.Join(names, ", "))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tbaa:", err)
	os.Exit(1)
}
