// Command tbaa compiles a MiniM3 module and exposes the analyses and
// optimizations of the library.
//
// Usage:
//
//	tbaa [flags] file.m3
//
//	-dump-ast        print the parsed module
//	-dump-ir         print the lowered IR (after optimization, if any)
//	-alias LEVEL     typedecl | fieldtypedecl | smfieldtyperefs (default)
//	-open            use the open-world (incomplete program) assumption
//	-pairs           print static alias-pair counts (Table 5 metrics)
//	-typerefs        print the SMTypeRefs TypeRefsTable
//	-rle             run redundant load elimination
//	-pre             run partial redundancy elimination after RLE
//	-minv            devirtualize + inline before RLE
//	-run             execute the program and print its output and stats
//	-sim             execute under the cache timing model
//	-limit           run the dynamic redundant-load limit study
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"tbaa/internal/alias"
	"tbaa/internal/ast"
	"tbaa/internal/bench"
	"tbaa/internal/driver"
	"tbaa/internal/interp"
	"tbaa/internal/ir"
	"tbaa/internal/limit"
	"tbaa/internal/modref"
	"tbaa/internal/opt"
	"tbaa/internal/parser"
	"tbaa/internal/sim"
	"tbaa/internal/types"
)

func main() {
	dumpAST := flag.Bool("dump-ast", false, "print the parsed module")
	dumpIR := flag.Bool("dump-ir", false, "print the lowered IR")
	aliasLevel := flag.String("alias", "smfieldtyperefs", "alias analysis level")
	open := flag.Bool("open", false, "open-world assumption")
	pairs := flag.Bool("pairs", false, "print alias-pair counts")
	typeRefs := flag.Bool("typerefs", false, "print the TypeRefsTable")
	rle := flag.Bool("rle", false, "run redundant load elimination")
	pre := flag.Bool("pre", false, "run partial redundancy elimination after RLE")
	minv := flag.Bool("minv", false, "devirtualize and inline first")
	run := flag.Bool("run", false, "execute the program")
	simulate := flag.Bool("sim", false, "execute under the timing model")
	limitStudy := flag.Bool("limit", false, "run the limit study")
	benchName := flag.String("bench", "", "use a built-in benchmark instead of a file")
	flag.Parse()

	var file, src string
	switch {
	case *benchName != "":
		b, ok := bench.ByName(*benchName)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *benchName))
		}
		file, src = b.Name+".m3", b.Source
	case flag.NArg() == 1:
		file = flag.Arg(0)
		data, err := os.ReadFile(file)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: tbaa [flags] file.m3 (or -bench NAME)")
		flag.PrintDefaults()
		os.Exit(2)
	}

	if *dumpAST {
		m, err := parser.Parse(file, src)
		if err != nil {
			fatal(err)
		}
		fmt.Print(ast.Print(m))
		if !*dumpIR && !*run && !*pairs {
			return
		}
	}

	prog, _, err := driver.Compile(file, src)
	if err != nil {
		fatal(err)
	}

	level := parseLevel(*aliasLevel)
	a := alias.New(prog, alias.Options{Level: level, OpenWorld: *open})

	if *typeRefs {
		printTypeRefs(prog, a)
	}
	if *pairs {
		pc := alias.CountPairs(prog, a)
		fmt.Printf("%s: references=%d local-pairs=%d global-pairs=%d\n",
			a.Name(), pc.References, pc.Local, pc.Global)
	}
	if *minv {
		refine := func(o *types.Object) []int {
			refs := a.TypeRefs(o)
			if refs == nil {
				return nil
			}
			return refs.IDs()
		}
		nd := opt.Devirtualize(prog, refine)
		ni := opt.Inline(prog)
		fmt.Printf("devirtualized %d calls, inlined %d sites\n", nd, ni)
		a = alias.New(prog, alias.Options{Level: level, OpenWorld: *open})
	}
	if *rle || *pre {
		mr := modref.Compute(prog)
		res := opt.RLE(prog, a, mr)
		fmt.Printf("RLE (%s): hoisted=%d eliminated=%d\n", a.Name(), res.Hoisted, res.Eliminated)
		if *pre {
			pr := opt.PRE(prog, a, mr)
			fmt.Printf("PRE: inserted=%d eliminated=%d\n", pr.Inserted, pr.Eliminated)
		}
		if len(res.PerProc) > 0 {
			var names []string
			for n := range res.PerProc {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				fmt.Printf("  %-20s %d\n", n, res.PerProc[n])
			}
		}
	}
	if *dumpIR {
		fmt.Print(prog.String())
	}
	if *run {
		in := interp.New(prog)
		out, err := in.Run()
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		st := in.Stats()
		fmt.Printf("[%d instructions, %d heap loads (%d dope), %d other loads, %d allocs]\n",
			st.Instructions, st.HeapLoads, st.DopeLoads, st.OtherLoads, st.Allocs)
	}
	if *simulate {
		r, out, err := sim.Run(prog, sim.DefaultConfig())
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		fmt.Printf("[%d cycles, %d instructions, %d loads (%.1f%% miss)]\n",
			r.Cycles, r.Instructions, r.Loads, 100*r.MissRate())
	}
	if *limitStudy {
		mr := modref.Compute(prog)
		rep, out, err := limit.Measure(prog, a, mr)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		fmt.Printf("[%d heap loads, %d redundant]\n", rep.HeapLoads, rep.Redundant)
		for c := limit.CatEncapsulated; c <= limit.CatRest; c++ {
			fmt.Printf("  %-14s %d\n", c, rep.ByCategory[c])
		}
	}
}

func parseLevel(s string) alias.Level {
	switch strings.ToLower(s) {
	case "typedecl":
		return alias.LevelTypeDecl
	case "fieldtypedecl":
		return alias.LevelFieldTypeDecl
	case "smfieldtyperefs", "tbaa":
		return alias.LevelSMFieldTypeRefs
	default:
		fatal(fmt.Errorf("unknown alias level %q", s))
		return 0
	}
}

func printTypeRefs(prog *ir.Program, a *alias.Analysis) {
	fmt.Println("TypeRefsTable:")
	for _, t := range prog.Universe.ReferenceTypes() {
		refs := a.TypeRefs(t)
		if refs == nil {
			fmt.Printf("  %-20s (level has no table; Subtypes used)\n", t)
			continue
		}
		var names []string
		for _, id := range refs.IDs() {
			names = append(names, prog.Universe.ByID(id).String())
		}
		sort.Strings(names)
		fmt.Printf("  %-20s {%s}\n", t, strings.Join(names, ", "))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tbaa:", err)
	os.Exit(1)
}
