package tbaa

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"tbaa/internal/metrics"
)

// This file implements the tracked query-performance report behind
// `tbaabench -perfjson` (CI stores it as BENCH_perf.json): ns/op and
// allocs/op for the public query entry points — MayAlias,
// MayAliasBatch, and CountPairs — plus the one-procedure incremental
// rebuild (RebuildOneProc), at every analysis level, measured on the
// largest stock benchmark. Together with the bench-perf CI job (which
// gates BenchmarkMayAlias / BenchmarkCountPairs /
// BenchmarkRebuildOneProc against the committed baseline) it makes the
// query path's perf trajectory visible per PR.

// PerfBenchmarkName is the stock benchmark the perf report measures:
// the one with the most static heap references.
const PerfBenchmarkName = "m3cg"

// perfBatchPairs is the MayAliasBatch vector size the report measures;
// large enough to engage the batch's worker sharding.
const perfBatchPairs = 4096

// perfEditProc is the one-procedure edit the RebuildOneProc op applies:
// a verbatim copy of m3cg's Annotate. Re-installing the same body
// leaves every verdict and every append-only fact table unchanged, so
// each iteration measures a true one-procedure delta — check, re-lower,
// incremental invalidation, snapshot republish — never cumulative
// drift.
const perfEditProc = `PROCEDURE Annotate(line, op: INTEGER) =
VAR a: Annot;
BEGIN
  a := NEW(Annot);
  a.line := line;
  a.op := op;
  a.anext := annots;
  annots := a;
END Annotate;`

// PerfRow is one measured configuration of the perf report.
type PerfRow struct {
	// Benchmark is the stock program measured (PerfBenchmarkName).
	Benchmark string `json:"benchmark"`
	// Level is the analysis level's name.
	Level string `json:"level"`
	// Op identifies the query entry point: "MayAlias" (one context-free
	// query), "MayAliasBatch" (one batch of batch_pairs pairs),
	// "CountPairs" (one full Table 5 sweep), or "RebuildOneProc" (one
	// single-procedure edit applied through Analyzer.EditProc — check,
	// re-lower, delta-invalidate, republish the snapshot). The names are
	// the shared internal/metrics vocabulary, so the rows here and the
	// analysis server's /metrics latency summaries label the same ops
	// identically and can never drift.
	Op string `json:"op"`
	// BatchPairs is the vector size for the MayAliasBatch op, 0 otherwise.
	BatchPairs int `json:"batch_pairs,omitempty"`
	// NsPerOp and AllocsPerOp are the measured cost of one op.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// perfLevels is the level sweep the perf report covers: the paper's
// three plus both extensions.
func perfLevels() []Level {
	return []Level{TypeDecl, FieldTypeDecl, SMFieldTypeRefs, FSTypeRefs, IPTypeRefs}
}

// MeasurePerf measures the query entry points at every level on the
// largest stock benchmark and returns one row per (level × op). It
// drives testing.Benchmark, so a full run takes on the order of a
// second per row.
func MeasurePerf() ([]PerfRow, error) {
	var bm Benchmark
	found := false
	for _, b := range Benchmarks() {
		if b.Name == PerfBenchmarkName {
			bm, found = b, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("tbaa: stock benchmark %q not registered", PerfBenchmarkName)
	}
	mod, err := Compile(bm.Name+".m3", bm.Source)
	if err != nil {
		return nil, err
	}
	var rows []PerfRow
	for _, lvl := range perfLevels() {
		a, err := mod.NewAnalyzer(WithLevel(lvl))
		if err != nil {
			return nil, err
		}
		names := a.Paths()
		if len(names) < 2 {
			return nil, fmt.Errorf("tbaa: %s has too few access paths to measure", bm.Name)
		}
		pairs := make([]Pair, 0, perfBatchPairs)
		for i := 0; len(pairs) < cap(pairs); i++ {
			pairs = append(pairs, Pair{P: names[i%len(names)], Q: names[(i*7+1)%len(names)]})
		}
		// Warm the lazily built state (snapshot, partition matrix, flow
		// facts) so every op measures steady state.
		if _, err := a.MayAlias(pairs[0].P, pairs[0].Q); err != nil {
			return nil, err
		}
		a.CountPairs()
		row := func(op string, batch int, r testing.BenchmarkResult) PerfRow {
			return PerfRow{
				Benchmark:   bm.Name,
				Level:       lvl.String(),
				Op:          op,
				BatchPairs:  batch,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
		}
		rows = append(rows, row(metrics.OpMayAlias, 0, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pr := pairs[i%len(pairs)]
				if _, err := a.MayAlias(pr.P, pr.Q); err != nil {
					b.Fatal(err)
				}
			}
		})))
		ctx := context.Background()
		rows = append(rows, row(metrics.OpMayAliasBatch, perfBatchPairs, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a.MayAliasBatch(ctx, pairs)
			}
		})))
		rows = append(rows, row(metrics.OpCountPairs, 0, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a.CountPairs()
			}
		})))
		rows = append(rows, row(metrics.OpRebuildOneProc, 0, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := a.EditProc(perfEditProc); err != nil {
					b.Fatal(err)
				}
			}
		})))
	}
	return rows, nil
}

// WritePerfJSON writes the perf report as indented JSON — the per-PR
// query-performance artifact CI stores as BENCH_perf.json.
func WritePerfJSON(w io.Writer, rows []PerfRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// FprintPerf renders the perf report as a table.
func FprintPerf(w io.Writer, rows []PerfRow) {
	fmt.Fprintf(w, "Perf: query cost on %s (ns/op, allocs/op)\n", PerfBenchmarkName)
	fmt.Fprintf(w, "%-16s %-14s %12s %10s %10s\n", "Level", "Op", "ns/op", "allocs/op", "B/op")
	for _, r := range rows {
		op := r.Op
		if r.BatchPairs > 0 {
			op = fmt.Sprintf("%s[%d]", r.Op, r.BatchPairs)
		}
		fmt.Fprintf(w, "%-16s %-14s %12.1f %10d %10d\n", r.Level, op, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
}
