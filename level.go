package tbaa

import (
	"fmt"
	"strings"

	"tbaa/internal/alias"
)

// Level selects one of the paper's three alias analyses or the
// flow-sensitive extension, in increasing precision. The zero value is
// TypeDecl; Analyzers default to SMFieldTypeRefs unless WithLevel says
// otherwise.
type Level int

// The analysis levels (Sections 2.2-2.4 of the paper, plus the
// flow-sensitive extension).
const (
	// TypeDecl: two access paths may alias iff the subtype sets of their
	// declared types intersect.
	TypeDecl = Level(alias.LevelTypeDecl)
	// FieldTypeDecl: the seven-case refinement using field names and the
	// AddressTaken predicate (Table 2).
	FieldTypeDecl = Level(alias.LevelFieldTypeDecl)
	// SMFieldTypeRefs: FieldTypeDecl with selective type merging over
	// the program's pointer assignments (Figure 2).
	SMFieldTypeRefs = Level(alias.LevelSMFieldTypeRefs)
	// FSTypeRefs: SMFieldTypeRefs refined by an intraprocedural
	// flow-sensitive reaching-stores analysis. Per statement it narrows
	// the set of allocated types each pointer variable may reference
	// (NEW generates exact types; calls and stores through locations
	// kill), so passes and pair counts prove no-alias where the
	// flow-insensitive verdict is may-alias. Context-free MayAlias
	// queries are identical to SMFieldTypeRefs; the refinement applies
	// to statement-anchored facts (CountPairs, RLE and PRE kill
	// decisions). Equivalent to WithFlowSensitive(true).
	FSTypeRefs = Level(alias.LevelFSTypeRefs)
	// IPTypeRefs: FSTypeRefs extended with interprocedural mod-ref
	// summaries over a Rapid Type Analysis call graph. Method calls
	// dispatch only to implementations selectable by instantiated
	// receiver types (narrowed further by the TypeRefsTable), each
	// procedure gets a transitive summary of the access-path classes
	// and globals its callees may modify (computed bottom-up over
	// call-graph SCCs, with a sound top for recursion and open-world
	// escapes), and every call kill — in the flow-sensitive fact layer
	// and in the RLE/PRE availability dataflows — consults the call's
	// summary instead of killing everything. Equivalent to
	// WithInterprocedural(true).
	IPTypeRefs = Level(alias.LevelIPTypeRefs)
)

// Levels returns the paper's three analysis levels in ascending
// precision — the column order in Tables 5 and 6. FSTypeRefs is not
// included: the paper's artifacts stay three-column, and the
// flow-sensitive extension is evaluated by Table FS instead.
func Levels() []Level { return []Level{TypeDecl, FieldTypeDecl, SMFieldTypeRefs} }

func (l Level) String() string {
	if l.validate() != nil {
		return fmt.Sprintf("Level(%d)", int(l))
	}
	return alias.Level(l).String()
}

func (l Level) validate() error {
	return alias.Options{Level: alias.Level(l)}.Validate()
}

// ParseLevel maps a level name to a Level: "typedecl", "fieldtypedecl",
// "smfieldtyperefs", "fstyperefs", "iptyperefs" (or the shorthands
// "tbaa" for the paper's most precise level, "fs" for the
// flow-sensitive extension, and "ip" for the interprocedural
// extension). Matching is case-insensitive. This is the one
// level-selection helper shared by cmd/tbaa and cmd/tbaabench.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "typedecl":
		return TypeDecl, nil
	case "fieldtypedecl":
		return FieldTypeDecl, nil
	case "smfieldtyperefs", "tbaa":
		return SMFieldTypeRefs, nil
	case "fstyperefs", "fs":
		return FSTypeRefs, nil
	case "iptyperefs", "ip":
		return IPTypeRefs, nil
	}
	return 0, fmt.Errorf("tbaa: unknown alias level %q (want typedecl, fieldtypedecl, smfieldtyperefs, fstyperefs, or iptyperefs)", s)
}

// Set implements flag.Value via ParseLevel, so a *Level registers
// directly with flag.Var as a command-line level selector.
func (l *Level) Set(s string) error {
	v, err := ParseLevel(s)
	if err != nil {
		return err
	}
	*l = v
	return nil
}
