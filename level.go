package tbaa

import (
	"fmt"
	"strings"

	"tbaa/internal/alias"
)

// Level selects one of the paper's three alias analyses, in increasing
// precision. The zero value is TypeDecl; Analyzers default to
// SMFieldTypeRefs unless WithLevel says otherwise.
type Level int

// The analysis levels (Sections 2.2-2.4 of the paper).
const (
	// TypeDecl: two access paths may alias iff the subtype sets of their
	// declared types intersect.
	TypeDecl = Level(alias.LevelTypeDecl)
	// FieldTypeDecl: the seven-case refinement using field names and the
	// AddressTaken predicate (Table 2).
	FieldTypeDecl = Level(alias.LevelFieldTypeDecl)
	// SMFieldTypeRefs: FieldTypeDecl with selective type merging over
	// the program's pointer assignments (Figure 2).
	SMFieldTypeRefs = Level(alias.LevelSMFieldTypeRefs)
)

// Levels returns the three analysis levels in ascending precision —
// the paper's column order in Tables 5 and 6.
func Levels() []Level { return []Level{TypeDecl, FieldTypeDecl, SMFieldTypeRefs} }

func (l Level) String() string {
	if l.validate() != nil {
		return fmt.Sprintf("Level(%d)", int(l))
	}
	return alias.Level(l).String()
}

func (l Level) validate() error {
	return alias.Options{Level: alias.Level(l)}.Validate()
}

// ParseLevel maps a level name to a Level: "typedecl", "fieldtypedecl",
// "smfieldtyperefs", or the shorthand "tbaa" for the most precise
// level. Matching is case-insensitive. This is the one level-selection
// helper shared by cmd/tbaa and cmd/tbaabench.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "typedecl":
		return TypeDecl, nil
	case "fieldtypedecl":
		return FieldTypeDecl, nil
	case "smfieldtyperefs", "tbaa":
		return SMFieldTypeRefs, nil
	}
	return 0, fmt.Errorf("tbaa: unknown alias level %q (want typedecl, fieldtypedecl, or smfieldtyperefs)", s)
}

// Set implements flag.Value via ParseLevel, so a *Level registers
// directly with flag.Var as a command-line level selector.
func (l *Level) Set(s string) error {
	v, err := ParseLevel(s)
	if err != nil {
		return err
	}
	*l = v
	return nil
}
