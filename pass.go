package tbaa

import "tbaa/internal/driver"

// Pass is one step of the optimization pipeline an Analyzer runs over
// its lowered program at construction (see WithPasses). The interface
// is sealed: RLE, PRE, Devirt, and MinvInline construct the only
// implementations, and the pass manager handles rebuilding analysis
// facts when a structural pass (devirtualization, inlining)
// invalidates them.
type Pass interface {
	// Name identifies the pass in PassResults.
	Name() string
	pass() driver.Pass
}

type builtinPass struct{ p driver.Pass }

func (b builtinPass) Name() string      { return b.p.Name() }
func (b builtinPass) pass() driver.Pass { return b.p }

// RLE returns the redundant load elimination pass (Section 3.4.1):
// loop-invariant load motion plus available-load CSE, with kills
// decided by the analyzer's alias oracle and mod-ref summaries.
func RLE() Pass { return builtinPass{driver.RLEPass{}} }

// PRE returns the partial redundancy elimination pass (the paper's
// future work): compensation loads make partially redundant loads fully
// redundant, then CSE removes them. Normally scheduled after RLE.
func PRE() Pass { return builtinPass{driver.PREPass{}} }

// Devirt returns the standalone method invocation resolution pass:
// devirtualization refined by the TypeRefsTable (Section 3.7), without
// inlining. Its work is reported separately in Devirtualized.
func Devirt() Pass { return builtinPass{driver.DevirtPass{}} }

// MinvInline returns the fused method invocation resolution pipeline
// (Section 3.7): devirtualization refined by the TypeRefsTable,
// followed by inlining of small procedures. Use Devirt to run (and
// count) resolution alone.
func MinvInline() Pass { return builtinPass{driver.MinvInlinePass{}} }

// PassResult reports what one pass did; fields irrelevant to a pass
// stay zero.
type PassResult struct {
	// Pass is the Name() of the pass that produced this result.
	Pass string
	// Devirtualized counts resolved method invocations (Devirt's work,
	// and the resolution half of MinvInline's); Inlined counts expanded
	// call sites (MinvInline only).
	Devirtualized int
	Inlined       int
	// Hoisted counts loop-invariant loads moved to preheaders;
	// Eliminated counts loads replaced by register references.
	Hoisted    int
	Eliminated int
	// Inserted counts PRE compensation loads.
	Inserted int
	// PerProc breaks load removals down by procedure name.
	PerProc map[string]int
}

// Removed returns the total number of statically removed loads (the
// paper's Table 6 metric).
func (r PassResult) Removed() int { return r.Hoisted + r.Eliminated }

func fromDriverResult(r driver.PassResult) PassResult {
	return PassResult{
		Pass:          r.Pass,
		Devirtualized: r.Devirtualized,
		Inlined:       r.Inlined,
		Hoisted:       r.Hoisted,
		Eliminated:    r.Eliminated,
		Inserted:      r.Inserted,
		PerProc:       r.PerProc,
	}
}
