package tbaa_test

import (
	"strings"
	"testing"

	"tbaa"
	"tbaa/internal/bench"
	"tbaa/internal/driver"
	"tbaa/internal/interp"
)

// These tests encode the paper's qualitative claims (the "shapes" of its
// tables and figures) as assertions over the regenerated artifacts.

func TestTable4Shape(t *testing.T) {
	rows, err := tbaa.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("Table 4 must list all 10 programs, got %d", len(rows))
	}
	interactive := 0
	for _, r := range rows {
		if r.Lines < 100 {
			t.Errorf("%s: suspiciously small (%d lines)", r.Name, r.Lines)
		}
		if r.Interactive {
			interactive++
			continue
		}
		// Paper band: heap loads 8-27%; ours 10-30%.
		if r.HeapLoadPct < 8 || r.HeapLoadPct > 35 {
			t.Errorf("%s: heap load pct %.1f out of the paper's band", r.Name, r.HeapLoadPct)
		}
	}
	if interactive != 2 {
		t.Errorf("expected 2 interactive programs, got %d", interactive)
	}
	var sb strings.Builder
	tbaa.FprintTable4(&sb, rows)
	if !strings.Contains(sb.String(), "dom") || !strings.Contains(sb.String(), "-") {
		t.Error("rendered table must include interactive rows with dashes")
	}
}

func TestTable5Shape(t *testing.T) {
	rows, err := tbaa.Table5()
	if err != nil {
		t.Fatal(err)
	}
	var smWinsGlobal bool
	for _, r := range rows {
		// Monotone precision: TypeDecl ≥ FieldTypeDecl ≥ SMFieldTypeRefs.
		if r.Local[1] > r.Local[0] || r.Local[2] > r.Local[1] {
			t.Errorf("%s: local pairs not monotone: %v", r.Name, r.Local)
		}
		if r.Global[1] > r.Global[0] || r.Global[2] > r.Global[1] {
			t.Errorf("%s: global pairs not monotone: %v", r.Name, r.Global)
		}
		// Paper: global (interprocedural) pairs greatly exceed local ones.
		if r.Global[0] < r.Local[0] {
			t.Errorf("%s: global pairs below local pairs", r.Name)
		}
		// Paper: TypeDecl performs "a lot worse" than FieldTypeDecl.
		if r.Local[0] > 0 && r.Local[1] == r.Local[0] {
			t.Errorf("%s: FieldTypeDecl should improve on TypeDecl", r.Name)
		}
		if r.Global[2] < r.Global[1] {
			smWinsGlobal = true
		}
	}
	// Paper: SMFieldTypeRefs improves global pairs only on m3cg (and
	// postcard); at least one program must show the effect.
	if !smWinsGlobal {
		t.Error("expected SMFieldTypeRefs to win global pairs somewhere (paper: m3cg)")
	}
}

func TestTable6Shape(t *testing.T) {
	rows, err := tbaa.Table6()
	if err != nil {
		t.Fatal(err)
	}
	var ftdWins, smAdds int
	var total int
	for _, r := range rows {
		if r.Removed[1] < r.Removed[0] {
			t.Errorf("%s: FieldTypeDecl removed fewer loads than TypeDecl", r.Name)
		}
		if r.Removed[1] > r.Removed[0] {
			ftdWins++
		}
		if r.Removed[2] != r.Removed[1] {
			smAdds++
		}
		total += r.Removed[2]
	}
	if ftdWins == 0 {
		t.Error("FieldTypeDecl should expose more RLE opportunities somewhere")
	}
	// Paper: "the reductions ... between FieldTypeDecl and SMFieldTypeRefs
	// does not change the number of redundant loads found by RLE."
	if smAdds != 0 {
		t.Errorf("SMFieldTypeRefs changed RLE counts on %d programs; paper says none", smAdds)
	}
	if total == 0 {
		t.Error("RLE should remove something")
	}
}

func TestTableFSShape(t *testing.T) {
	rows, err := tbaa.TableFS()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(tbaa.Benchmarks()) {
		t.Fatalf("TableFS rows = %d, want one per benchmark", len(rows))
	}
	totalDisambiguated := 0
	for _, r := range rows {
		// The refinement only removes pairs and only removes kills.
		if r.GlobalFS > r.GlobalSM || r.LocalFS > r.LocalSM {
			t.Errorf("%s: FSTypeRefs counted more pairs than SMFieldTypeRefs: %+v", r.Name, r)
		}
		if r.Disambiguated != r.GlobalSM-r.GlobalFS {
			t.Errorf("%s: Disambiguated = %d, want GlobalSM-GlobalFS = %d",
				r.Name, r.Disambiguated, r.GlobalSM-r.GlobalFS)
		}
		if r.RemovedFS < r.RemovedSM {
			t.Errorf("%s: FS-driven RLE removed %d < SM's %d", r.Name, r.RemovedFS, r.RemovedSM)
		}
		totalDisambiguated += r.Disambiguated
	}
	if totalDisambiguated == 0 {
		t.Error("the refinement should disambiguate pairs somewhere in the suite")
	}
}

func TestTableIPShape(t *testing.T) {
	rows, err := tbaa.TableIP()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(tbaa.Benchmarks()) {
		t.Fatalf("TableIP rows = %d, want one per benchmark", len(rows))
	}
	ipRLEWins := 0
	for _, r := range rows {
		// Each layer only removes pairs and only removes kills.
		if r.GlobalFS > r.GlobalSM || r.GlobalIP > r.GlobalFS {
			t.Errorf("%s: pair counts must be monotone SM >= FS >= IP: %+v", r.Name, r)
		}
		if r.Disambiguated != r.GlobalFS-r.GlobalIP {
			t.Errorf("%s: Disambiguated = %d, want GlobalFS-GlobalIP = %d",
				r.Name, r.Disambiguated, r.GlobalFS-r.GlobalIP)
		}
		if r.RemovedFS < r.RemovedSM || r.RemovedIP < r.RemovedFS {
			t.Errorf("%s: RLE removals must be monotone SM <= FS <= IP: %+v", r.Name, r)
		}
		if r.RemovedIP > r.RemovedFS {
			ipRLEWins++
		}
	}
	// The acceptance bar for the interprocedural layer: at least one
	// stock benchmark must see strictly more RLE removals than under
	// FSTypeRefs (k-tree and pp do, via invocation-fresh summaries of
	// their recursive constructors).
	if ipRLEWins == 0 {
		t.Error("the interprocedural layer should strictly improve RLE on some stock benchmark")
	}
}

func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := tbaa.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	var improvements int
	for _, r := range rows {
		for i, pct := range r.Pct {
			if pct > 100.5 {
				t.Errorf("%s level %d: optimization slowed the program (%.1f%%)", r.Name, i, pct)
			}
			// Paper band: 92-100% of base.
			if pct < 70 {
				t.Errorf("%s level %d: implausibly large speedup (%.1f%%)", r.Name, i, pct)
			}
		}
		if r.Pct[2] < 99.5 {
			improvements++
		}
		// More precise analysis can not be slower.
		if r.Pct[1] > r.Pct[0]+0.5 || r.Pct[2] > r.Pct[1]+0.5 {
			t.Errorf("%s: precision should not hurt: %v", r.Name, r.Pct)
		}
	}
	if improvements < 4 {
		t.Errorf("RLE should improve at least half the suite, improved %d", improvements)
	}
}

func TestFigure9And10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows9, err := tbaa.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows9 {
		if r.Optimized > r.Original+1e-9 {
			t.Errorf("%s: optimization increased dynamic redundancy (%.3f -> %.3f)",
				r.Name, r.Original, r.Optimized)
		}
		if r.Original < 0 || r.Original > 1 {
			t.Errorf("%s: fraction out of range: %f", r.Name, r.Original)
		}
	}
	rows10, err := tbaa.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	var encTotal, aliasFailTotal float64
	for _, r := range rows10 {
		encTotal += r.Fractions[0]
		aliasFailTotal += r.Fractions[3]
	}
	// Paper's central finding: alias failures are essentially absent
	// (< 2.5% of remaining loads; here as fraction of all heap loads).
	if aliasFailTotal/float64(len(rows10)) > 0.01 {
		t.Errorf("average AliasFailure fraction %.4f too high; paper reports ~0",
			aliasFailTotal/float64(len(rows10)))
	}
	if encTotal == 0 {
		t.Error("Encapsulation (dope vectors) should dominate the remaining redundancy")
	}
}

func TestFigure12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := tbaa.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Paper: "the open-world assumption has an insignificant impact".
		if r.Open-r.Closed > 2.0 {
			t.Errorf("%s: open world much slower than closed (%.1f vs %.1f)",
				r.Name, r.Open, r.Closed)
		}
		if r.Open < r.Closed-0.5 {
			t.Errorf("%s: open world cannot beat closed world", r.Name)
		}
	}
}

func TestSourceLines(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"", 0},
		{"a\nb\n", 2},
		{"a\n\n\nb", 2},
		{"(* comment *)\ncode\n", 1},
		{"code (* trailing *)\n", 1},
		{"(* multi\nline\ncomment *)\nx\n", 1},
		{"(* nested (* inner *) still *)\ny\n", 1},
	}
	for _, c := range cases {
		if got := bench.SourceLines(c.src); got != c.want {
			t.Errorf("SourceLines(%q) = %d want %d", c.src, got, c.want)
		}
	}
}

func TestBenchmarksDeterministic(t *testing.T) {
	// Two fresh runs of a benchmark give identical output — required for
	// all differential comparisons in the harness.
	b, _ := tbaa.BenchmarkByName("write-pickle")
	out1 := runBench(t, b)
	out2 := runBench(t, b)
	if out1 != out2 {
		t.Fatalf("non-deterministic benchmark output:\n%q\n%q", out1, out2)
	}
}

func runBench(t *testing.T, b tbaa.Benchmark) string {
	t.Helper()
	out, _, err := driverRun(b)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func driverRun(b tbaa.Benchmark) (string, int, error) {
	prog, _, err := driver.Compile(b.Name+".m3", b.Source)
	if err != nil {
		return "", 0, err
	}
	in := interp.New(prog)
	in.MaxSteps = 80_000_000
	out, err := in.Run()
	return out, int(in.Stats().Instructions), err
}
