package tbaa

import (
	"sync"
	"sync/atomic"

	"tbaa/internal/ast"
	"tbaa/internal/driver"
	"tbaa/internal/ir"
	"tbaa/internal/parser"
	"tbaa/internal/sema"
)

// ParseAST parses a module without type-checking it and renders the
// AST as source-shaped text — the parse-only view behind cmd/tbaa's
// -dump-ast, usable even when the module would fail checking. Syntax
// errors are reported as *ParseError.
func ParseAST(file, src string) (string, error) {
	m, err := parser.Parse(file, src)
	if err != nil {
		return "", newParseError(file, err)
	}
	return ast.Print(m), nil
}

// Module is a parsed, type-checked MiniM3 module whose lowering can be
// replayed cheaply: one frontend, many lowered programs. Its type
// universe is fully precomputed, so any number of Analyzers may be
// built from it concurrently, each over its own private lowering. The
// one mutation a Module admits after Compile is EditProc, which
// replaces a single procedure's checked body under the module lock;
// lowering and edits are serialized against each other, so edits are
// safe concurrently with analyzer construction and queries.
type Module struct {
	c    *driver.Compiled
	hash string

	// mu serializes EditProc (writer) against lowering and AST
	// rendering (readers). Queries never touch it — they run over each
	// Analyzer's private program and published snapshots.
	mu sync.RWMutex

	// edited latches once EditProc succeeds: the module's semantics
	// have diverged from the source its content hash names, so the
	// artifact cache (keyed by that hash) must be bypassed for both
	// reads and writes. Pristine modules of the same source stay
	// cacheable — the flag is per-Module, never persisted.
	edited atomic.Bool
}

// Compile parses and type-checks a MiniM3 module and precomputes the
// type-universe caches. Failures are reported as *ParseError or
// *CheckError carrying file/line diagnostics.
func Compile(file, src string) (*Module, error) {
	c, err := driver.Frontend(file, src)
	if err != nil {
		switch err := err.(type) {
		case parser.ErrorList:
			return nil, newParseError(file, err)
		case sema.ErrorList:
			return nil, newCheckError(file, err)
		}
		return nil, err
	}
	return &Module{c: c, hash: ModuleHash(src)}, nil
}

// New is the one-call form of Compile followed by Module.NewAnalyzer.
func New(file, src string, options ...Option) (*Analyzer, error) {
	mod, err := Compile(file, src)
	if err != nil {
		return nil, err
	}
	return mod.NewAnalyzer(options...)
}

// File returns the name the module was compiled under.
func (m *Module) File() string { return m.c.File }

// AST renders the parsed module as source-shaped text.
func (m *Module) AST() string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return ast.Print(m.c.Sema.Module)
}

// lower produces a private program from the module under the read half
// of the edit lock.
func (m *Module) lower() *ir.Program {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.c.Lower()
}
