package tbaa_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"tbaa"
)

// fsSrc allocates two sibling subtypes into supertype-declared
// variables and has a loop where a store through one of them would —
// flow-insensitively — kill the other's loads.
const fsSrc = `
MODULE FS;
TYPE
  T  = OBJECT i: INTEGER; END;
  S1 = T OBJECT a: INTEGER; END;
  S2 = T OBJECT b: INTEGER; END;
VAR
  x, y: T;
  sum: INTEGER;
BEGIN
  x := NEW(S1);
  y := NEW(S2);
  x.i := 7;
  FOR k := 1 TO 10 DO
    y.i := k;
    sum := sum + x.i;
  END;
  PutInt(sum); PutLn();
END FS.
`

// TestFSTypeRefsLevel pins the public surface of the new level: the
// name, parsing, both option spellings, and the validation of the
// FlowSensitive/level interplay.
func TestFSTypeRefsLevel(t *testing.T) {
	if got := tbaa.FSTypeRefs.String(); got != "FSTypeRefs" {
		t.Errorf("FSTypeRefs.String() = %q", got)
	}
	for _, s := range []string{"fstyperefs", "FSTypeRefs", "fs"} {
		lvl, err := tbaa.ParseLevel(s)
		if err != nil || lvl != tbaa.FSTypeRefs {
			t.Errorf("ParseLevel(%q) = %v, %v; want FSTypeRefs", s, lvl, err)
		}
	}
	a, err := tbaa.New("fs.m3", fsSrc, tbaa.WithLevel(tbaa.FSTypeRefs))
	if err != nil {
		t.Fatal(err)
	}
	if a.Level() != tbaa.FSTypeRefs || a.Name() != "FSTypeRefs" {
		t.Errorf("Level() = %v, Name() = %q", a.Level(), a.Name())
	}
	// WithFlowSensitive on the default level is the same configuration.
	b, err := tbaa.New("fs.m3", fsSrc, tbaa.WithFlowSensitive(true))
	if err != nil {
		t.Fatal(err)
	}
	if b.Level() != tbaa.FSTypeRefs {
		t.Errorf("WithFlowSensitive(true) level = %v, want FSTypeRefs", b.Level())
	}
	// The refinement needs a TypeRefsTable: lower levels are rejected.
	_, err = tbaa.New("fs.m3", fsSrc, tbaa.WithLevel(tbaa.TypeDecl), tbaa.WithFlowSensitive(true))
	if err == nil || !strings.Contains(err.Error(), "flow-sensitive") {
		t.Errorf("TypeDecl + WithFlowSensitive(true) = %v, want a descriptive error", err)
	}
}

// TestFSTypeRefsRefinesPairsAndRLE: on fsSrc the refinement must count
// strictly fewer may-alias pairs than SMFieldTypeRefs and let RLE treat
// x.i as loop-invariant despite the y.i store.
func TestFSTypeRefsRefinesPairsAndRLE(t *testing.T) {
	sm, err := tbaa.New("fs.m3", fsSrc, tbaa.WithLevel(tbaa.SMFieldTypeRefs))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := tbaa.New("fs.m3", fsSrc, tbaa.WithLevel(tbaa.FSTypeRefs))
	if err != nil {
		t.Fatal(err)
	}
	smPC, fsPC := sm.CountPairs(), fs.CountPairs()
	if fsPC.Global >= smPC.Global {
		t.Errorf("FS global pairs = %d, want < SM's %d", fsPC.Global, smPC.Global)
	}
	if fsPC.References != smPC.References {
		t.Errorf("reference counts diverged: FS %d, SM %d", fsPC.References, smPC.References)
	}

	removed := func(lvl tbaa.Level) int {
		t.Helper()
		a, err := tbaa.New("fs.m3", fsSrc, tbaa.WithLevel(lvl), tbaa.WithPasses(tbaa.RLE()))
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := a.Run()
		if err != nil {
			t.Fatal(err)
		}
		if out != "70\n" {
			t.Fatalf("level %v: optimized output %q, want \"70\\n\"", lvl, out)
		}
		return a.PassResults()[0].Removed()
	}
	smRemoved, fsRemoved := removed(tbaa.SMFieldTypeRefs), removed(tbaa.FSTypeRefs)
	if fsRemoved <= smRemoved {
		t.Errorf("FS-driven RLE removed %d loads, want more than SM's %d (x.i should hoist)", fsRemoved, smRemoved)
	}
}

// TestConcurrentFSAnalyzer drives one FSTypeRefs Analyzer from 8
// goroutines mixing the site-refined pair counter with the query
// surface — the flow facts build lazily under the analyzer's lock, so
// this is the race test for the new level (run under -race in CI).
func TestConcurrentFSAnalyzer(t *testing.T) {
	a, err := tbaa.New("fs.m3", fsSrc, tbaa.WithLevel(tbaa.FSTypeRefs))
	if err != nil {
		t.Fatal(err)
	}
	wantPC := a.CountPairs()
	pairs := []tbaa.Pair{{P: "x.i", Q: "y.i"}, {P: "x.i", Q: "x.i"}}
	want := a.MayAliasBatch(context.Background(), pairs)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if pc := a.CountPairs(); pc != wantPC {
					t.Errorf("concurrent CountPairs drifted: %+v != %+v", pc, wantPC)
					return
				}
				got := a.MayAliasBatch(context.Background(), pairs)
				for j := range got {
					if got[j].Err != nil || got[j].MayAlias != want[j].MayAlias {
						t.Errorf("concurrent verdict %v drifted from %v", got[j], want[j])
						return
					}
				}
				for v := range a.Queries(context.Background(), pairs) {
					if v.Err != nil {
						t.Errorf("Queries verdict error: %v", v.Err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestDevirtPassPublic: the standalone resolution pass is part of the
// sealed pipeline surface and reports its counter separately from the
// fused MinvInline.
func TestDevirtPassPublic(t *testing.T) {
	src := `
MODULE D;
TYPE T = OBJECT f: INTEGER; METHODS get(): INTEGER := TGet; END;
VAR t: T; r: INTEGER;
PROCEDURE TGet(self: T): INTEGER =
BEGIN
  RETURN self.f;
END TGet;
BEGIN
  t := NEW(T);
  t.f := 5;
  r := t.get();
  PutInt(r); PutLn();
END D.
`
	a, err := tbaa.New("d.m3", src, tbaa.WithPasses(tbaa.Devirt()))
	if err != nil {
		t.Fatal(err)
	}
	res := a.PassResults()
	if len(res) != 1 || res[0].Pass != "devirt" {
		t.Fatalf("PassResults = %+v, want one devirt result", res)
	}
	if res[0].Devirtualized == 0 {
		t.Error("the monomorphic t.get() call should devirtualize")
	}
	if res[0].Inlined != 0 {
		t.Errorf("Devirt must not inline (got %d)", res[0].Inlined)
	}
	if out, _, err := a.Run(); err != nil || out != "5\n" {
		t.Errorf("devirtualized program ran (%q, %v), want \"5\\n\"", out, err)
	}
}

// TestQueriesReentrant is the regression test for the iterator's
// locking discipline: a consumer that calls MayAlias, AddressTaken, or
// a nested Queries from inside the loop must not self-deadlock, and the
// interleaved answers must match the batch verdicts.
func TestQueriesReentrant(t *testing.T) {
	a := mustAnalyzer(t)
	pairs := []tbaa.Pair{
		{P: "t.f", Q: "s.f"},
		{P: "t.f", Q: "u.f"},
		{P: "t.f", Q: "t.g"},
	}
	want := a.MayAliasBatch(context.Background(), pairs)
	i := 0
	for v := range a.Queries(context.Background(), pairs) {
		if v.Err != nil || v.MayAlias != want[i].MayAlias {
			t.Fatalf("verdict %d = %+v, want %+v", i, v, want[i])
		}
		// Re-enter the analyzer while the iteration is live.
		if ok, err := a.MayAlias(v.Pair.P, v.Pair.Q); err != nil || ok != v.MayAlias {
			t.Fatalf("MayAlias inside Queries loop = %v, %v; want %v", ok, err, v.MayAlias)
		}
		if _, err := a.AddressTaken(v.Pair.P); err != nil {
			t.Fatalf("AddressTaken inside Queries loop: %v", err)
		}
		for nested := range a.Queries(context.Background(), pairs[:1]) {
			if nested.Err != nil {
				t.Fatalf("nested Queries: %v", nested.Err)
			}
		}
		i++
	}
	if i != len(pairs) {
		t.Fatalf("iterated %d verdicts, want %d", i, len(pairs))
	}
	// Unknown paths still surface per-pair errors lazily.
	bad := []tbaa.Pair{{P: "t.f", Q: "nosuch.path"}, {P: "t.f", Q: "s.f"}}
	var errs, oks int
	for v := range a.Queries(context.Background(), bad) {
		if v.Err != nil {
			errs++
		} else {
			oks++
		}
	}
	if errs != 1 || oks != 1 {
		t.Errorf("bad-path iteration: %d errors, %d verdicts; want 1 and 1", errs, oks)
	}
}
