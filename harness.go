package tbaa

import (
	"encoding/json"
	"fmt"
	"io"

	"tbaa/internal/bench"
	"tbaa/internal/limit"
)

// paperLevels is the level sweep used by the harness fan-outs.
var paperLevels = Levels()

// sequential is the runner behind the package-level Table/Figure
// functions. One worker reproduces the historical strictly-sequential
// evaluation order; the frontend cache still persists across calls.
var sequential = NewRunner(1)

// ---------------------------------------------------------------------------
// Table 4 — benchmark descriptions

// Table4Row describes one benchmark (paper Table 4).
type Table4Row struct {
	Name         string
	Lines        int
	Instructions uint64
	HeapLoadPct  float64
	OtherLoadPct float64
	Description  string
	Interactive  bool
}

// Table4 runs every benchmark unoptimized and reports its profile.
// Interactive programs get only their static size, as in the paper.
func Table4() ([]Table4Row, error) { return sequential.Table4() }

// Table4 implements the package-level Table4 on this runner's pool:
// one cell per benchmark.
func (r *Runner) Table4() ([]Table4Row, error) {
	bs := Benchmarks()
	rows := make([]Table4Row, len(bs))
	err := r.run(len(bs), func(i int) error {
		b := bs[i]
		row := Table4Row{
			Name:        b.Name,
			Lines:       bench.SourceLines(b.Source),
			Description: b.Description,
			Interactive: b.Interactive,
		}
		if !b.Interactive {
			a, err := r.analyzer(b)
			if err != nil {
				return err
			}
			_, st, err := a.Run()
			if err != nil {
				return fmt.Errorf("%s: %w", b.Name, err)
			}
			row.Instructions = st.Instructions
			row.HeapLoadPct = 100 * float64(st.HeapLoads) / float64(st.Instructions)
			row.OtherLoadPct = 100 * float64(st.OtherLoads) / float64(st.Instructions)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FprintTable4 renders Table 4.
func FprintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "Table 4: Description of Benchmark Programs\n")
	fmt.Fprintf(w, "%-14s %6s %14s %12s %13s\n", "Name", "Lines", "Instructions", "% Heap loads", "% Other loads")
	for _, r := range rows {
		if r.Interactive {
			fmt.Fprintf(w, "%-14s %6d %14s %12s %13s\n", r.Name, r.Lines, "-", "-", "-")
			continue
		}
		fmt.Fprintf(w, "%-14s %6d %14d %12.0f %13.0f\n",
			r.Name, r.Lines, r.Instructions, r.HeapLoadPct, r.OtherLoadPct)
	}
}

// ---------------------------------------------------------------------------
// Table 5 — static alias pairs

// Table5Row holds local/global alias pairs per analysis (paper Table 5).
type Table5Row struct {
	Name       string
	References int
	Local      [3]int
	Global     [3]int
}

// Table5 counts may-alias pairs under the three analyses.
func Table5() ([]Table5Row, error) { return sequential.Table5() }

// Table5 fans out one cell per (benchmark × level).
func (r *Runner) Table5() ([]Table5Row, error) {
	bs := Benchmarks()
	counts := make([]PairCounts, len(bs)*len(paperLevels))
	err := r.run(len(counts), func(ci int) error {
		b, lvl := bs[ci/len(paperLevels)], paperLevels[ci%len(paperLevels)]
		a, err := r.analyzer(b, WithLevel(lvl))
		if err != nil {
			return err
		}
		counts[ci] = a.CountPairs()
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Table5Row, len(bs))
	for i, b := range bs {
		row := Table5Row{Name: b.Name}
		for li := range paperLevels {
			pc := counts[i*len(paperLevels)+li]
			row.References = pc.References
			row.Local[li] = pc.Local
			row.Global[li] = pc.Global
		}
		rows[i] = row
	}
	return rows, nil
}

// FprintTable5 renders Table 5.
func FprintTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintf(w, "Table 5: Alias Pairs\n")
	fmt.Fprintf(w, "%-14s %5s | %9s %9s | %9s %9s | %9s %9s\n",
		"", "", "TypeDecl", "", "FieldTD", "", "SMFieldTR", "")
	fmt.Fprintf(w, "%-14s %5s | %9s %9s | %9s %9s | %9s %9s\n",
		"Program", "Refs", "L Alias", "G Alias", "L Alias", "G Alias", "L Alias", "G Alias")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %5d | %9d %9d | %9d %9d | %9d %9d\n",
			r.Name, r.References,
			r.Local[0], r.Global[0], r.Local[1], r.Global[1], r.Local[2], r.Global[2])
	}
}

// ---------------------------------------------------------------------------
// Table 6 — redundant loads removed statically

// Table6Row reports static RLE removals per analysis (paper Table 6).
type Table6Row struct {
	Name    string
	Removed [3]int
}

// Table6 runs RLE per level and counts removed loads.
func Table6() ([]Table6Row, error) { return sequential.Table6() }

// Table6 fans out one cell per (benchmark × level); every cell gets a
// fresh Analyzer because RLE mutates the lowered program.
func (r *Runner) Table6() ([]Table6Row, error) {
	bs := MeasuredBenchmarks()
	removed := make([]int, len(bs)*len(paperLevels))
	err := r.run(len(removed), func(ci int) error {
		b, lvl := bs[ci/len(paperLevels)], paperLevels[ci%len(paperLevels)]
		a, err := r.analyzer(b, WithLevel(lvl), WithPasses(RLE()))
		if err != nil {
			return err
		}
		removed[ci] = a.PassResults()[0].Removed()
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Table6Row, len(bs))
	for i, b := range bs {
		rows[i].Name = b.Name
		for li := range paperLevels {
			rows[i].Removed[li] = removed[i*len(paperLevels)+li]
		}
	}
	return rows, nil
}

// FprintTable6 renders Table 6.
func FprintTable6(w io.Writer, rows []Table6Row) {
	fmt.Fprintf(w, "Table 6: Number of Redundant Loads Removed Statically\n")
	fmt.Fprintf(w, "%-14s %9s %14s %16s\n", "Program", "TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %9d %14d %16d\n", r.Name, r.Removed[0], r.Removed[1], r.Removed[2])
	}
}

// ---------------------------------------------------------------------------
// Table FS — the flow-sensitive refinement vs SMFieldTypeRefs
// (an extension table; not in the paper)

// TableFSRow compares SMFieldTypeRefs with its flow-sensitive
// refinement FSTypeRefs on one benchmark: the Table 5 pair metrics
// under both analyses, the pairs the refinement disambiguates, and the
// loads RLE removes statically under each.
type TableFSRow struct {
	Name       string
	References int
	// GlobalSM/GlobalFS and LocalSM/LocalFS are may-alias pair counts
	// under the two analyses (site-anchored for FSTypeRefs).
	GlobalSM, GlobalFS int
	LocalSM, LocalFS   int
	// Disambiguated is GlobalSM - GlobalFS: pairs the refinement proves
	// non-aliased.
	Disambiguated int
	// RemovedSM/RemovedFS count loads removed statically by RLE.
	// RemovedFS >= RemovedSM always: the refinement only removes kills.
	RemovedSM, RemovedFS int
}

// TableFS evaluates the flow-sensitive refinement on every benchmark.
func TableFS() ([]TableFSRow, error) { return sequential.TableFS() }

// TableFS fans out one cell per benchmark × {pairs@SM, pairs@FS,
// RLE@SM, RLE@FS}; the pair metrics and RLE counts are static, so the
// interactive programs are measured too.
func (r *Runner) TableFS() ([]TableFSRow, error) {
	bs := Benchmarks()
	const stride = 4
	pairCells := make([]PairCounts, len(bs)*2)
	removedCells := make([]int, len(bs)*2)
	err := r.run(len(bs)*stride, func(ci int) error {
		b, j := bs[ci/stride], ci%stride
		lvl := SMFieldTypeRefs
		if j%2 == 1 {
			lvl = FSTypeRefs
		}
		if j < 2 {
			a, err := r.analyzer(b, WithLevel(lvl))
			if err != nil {
				return err
			}
			pairCells[(ci/stride)*2+j] = a.CountPairs()
			return nil
		}
		a, err := r.analyzer(b, WithLevel(lvl), WithPasses(RLE()))
		if err != nil {
			return err
		}
		removedCells[(ci/stride)*2+j-2] = a.PassResults()[0].Removed()
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]TableFSRow, len(bs))
	for i, b := range bs {
		sm, fs := pairCells[2*i], pairCells[2*i+1]
		rows[i] = TableFSRow{
			Name:          b.Name,
			References:    sm.References,
			GlobalSM:      sm.Global,
			GlobalFS:      fs.Global,
			LocalSM:       sm.Local,
			LocalFS:       fs.Local,
			Disambiguated: sm.Global - fs.Global,
			RemovedSM:     removedCells[2*i],
			RemovedFS:     removedCells[2*i+1],
		}
	}
	return rows, nil
}

// FprintTableFS renders Table FS.
func FprintTableFS(w io.Writer, rows []TableFSRow) {
	fmt.Fprintf(w, "Table FS: Flow-Sensitive Refinement (FSTypeRefs vs SMFieldTypeRefs)\n")
	fmt.Fprintf(w, "%-14s %5s | %7s %7s | %7s %7s | %8s | %6s %6s\n",
		"Program", "Refs", "G SM", "G FS", "L SM", "L FS", "Disambig", "RLE SM", "RLE FS")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %5d | %7d %7d | %7d %7d | %8d | %6d %6d\n",
			r.Name, r.References, r.GlobalSM, r.GlobalFS, r.LocalSM, r.LocalFS,
			r.Disambiguated, r.RemovedSM, r.RemovedFS)
	}
}

// WriteFSJSON writes Table FS as a JSON array — one object per
// benchmark with the pairs-disambiguated and loads-removed metrics —
// the per-PR precision-trajectory artifact CI stores as BENCH_fs.json.
func WriteFSJSON(w io.Writer, rows []TableFSRow) error {
	type obj struct {
		Benchmark     string `json:"benchmark"`
		References    int    `json:"references"`
		GlobalSM      int    `json:"global_pairs_smfieldtyperefs"`
		GlobalFS      int    `json:"global_pairs_fstyperefs"`
		LocalSM       int    `json:"local_pairs_smfieldtyperefs"`
		LocalFS       int    `json:"local_pairs_fstyperefs"`
		Disambiguated int    `json:"pairs_disambiguated"`
		RemovedSM     int    `json:"loads_removed_smfieldtyperefs"`
		RemovedFS     int    `json:"loads_removed_fstyperefs"`
	}
	out := make([]obj, len(rows))
	for i, r := range rows {
		out[i] = obj{
			Benchmark:     r.Name,
			References:    r.References,
			GlobalSM:      r.GlobalSM,
			GlobalFS:      r.GlobalFS,
			LocalSM:       r.LocalSM,
			LocalFS:       r.LocalFS,
			Disambiguated: r.Disambiguated,
			RemovedSM:     r.RemovedSM,
			RemovedFS:     r.RemovedFS,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ---------------------------------------------------------------------------
// Table IP — the interprocedural layer vs FSTypeRefs vs SMFieldTypeRefs
// (an extension table; not in the paper)

// TableIPRow compares SMFieldTypeRefs, FSTypeRefs, and IPTypeRefs on
// one benchmark: global may-alias pairs under the three analyses
// (site-anchored for FS and IP), the additional pairs the
// interprocedural layer disambiguates beyond FS, and the loads RLE
// removes statically under each.
type TableIPRow struct {
	Name       string
	References int
	// GlobalSM/GlobalFS/GlobalIP are global may-alias pair counts.
	// GlobalIP <= GlobalFS <= GlobalSM always: each layer only removes
	// pairs.
	GlobalSM, GlobalFS, GlobalIP int
	// Disambiguated is GlobalFS - GlobalIP: pairs only the
	// interprocedural summaries prove non-aliased.
	Disambiguated int
	// RemovedSM/RemovedFS/RemovedIP count loads removed statically by
	// RLE. RemovedIP >= RemovedFS >= RemovedSM always: the layers only
	// remove kills.
	RemovedSM, RemovedFS, RemovedIP int
}

// TableIP evaluates the interprocedural layer on every benchmark.
func TableIP() ([]TableIPRow, error) { return sequential.TableIP() }

// TableIP fans out one cell per benchmark × {pairs, RLE} × {SM, FS,
// IP}; the metrics are static, so the interactive programs are
// measured too.
func (r *Runner) TableIP() ([]TableIPRow, error) {
	bs := Benchmarks()
	levels := []Level{SMFieldTypeRefs, FSTypeRefs, IPTypeRefs}
	stride := 2 * len(levels)
	pairCells := make([]PairCounts, len(bs)*len(levels))
	removedCells := make([]int, len(bs)*len(levels))
	err := r.run(len(bs)*stride, func(ci int) error {
		b, j := bs[ci/stride], ci%stride
		lvl := levels[j%len(levels)]
		if j < len(levels) {
			a, err := r.analyzer(b, WithLevel(lvl))
			if err != nil {
				return err
			}
			pairCells[(ci/stride)*len(levels)+j] = a.CountPairs()
			return nil
		}
		a, err := r.analyzer(b, WithLevel(lvl), WithPasses(RLE()))
		if err != nil {
			return err
		}
		removedCells[(ci/stride)*len(levels)+j-len(levels)] = a.PassResults()[0].Removed()
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]TableIPRow, len(bs))
	for i, b := range bs {
		sm, fs, ip := pairCells[3*i], pairCells[3*i+1], pairCells[3*i+2]
		rows[i] = TableIPRow{
			Name:          b.Name,
			References:    sm.References,
			GlobalSM:      sm.Global,
			GlobalFS:      fs.Global,
			GlobalIP:      ip.Global,
			Disambiguated: fs.Global - ip.Global,
			RemovedSM:     removedCells[3*i],
			RemovedFS:     removedCells[3*i+1],
			RemovedIP:     removedCells[3*i+2],
		}
	}
	return rows, nil
}

// FprintTableIP renders Table IP.
func FprintTableIP(w io.Writer, rows []TableIPRow) {
	fmt.Fprintf(w, "Table IP: Interprocedural Mod-Ref (IPTypeRefs vs FSTypeRefs vs SMFieldTypeRefs)\n")
	fmt.Fprintf(w, "%-14s %5s | %7s %7s %7s | %8s | %6s %6s %6s\n",
		"Program", "Refs", "G SM", "G FS", "G IP", "Disambig", "RLE SM", "RLE FS", "RLE IP")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %5d | %7d %7d %7d | %8d | %6d %6d %6d\n",
			r.Name, r.References, r.GlobalSM, r.GlobalFS, r.GlobalIP,
			r.Disambiguated, r.RemovedSM, r.RemovedFS, r.RemovedIP)
	}
}

// WriteIPJSON writes Table IP as a JSON array — one object per
// benchmark with the pairs-disambiguated and loads-removed metrics —
// the per-PR precision-trajectory artifact CI stores as BENCH_ip.json.
func WriteIPJSON(w io.Writer, rows []TableIPRow) error {
	type obj struct {
		Benchmark     string `json:"benchmark"`
		References    int    `json:"references"`
		GlobalSM      int    `json:"global_pairs_smfieldtyperefs"`
		GlobalFS      int    `json:"global_pairs_fstyperefs"`
		GlobalIP      int    `json:"global_pairs_iptyperefs"`
		Disambiguated int    `json:"pairs_disambiguated_vs_fs"`
		RemovedSM     int    `json:"loads_removed_smfieldtyperefs"`
		RemovedFS     int    `json:"loads_removed_fstyperefs"`
		RemovedIP     int    `json:"loads_removed_iptyperefs"`
	}
	out := make([]obj, len(rows))
	for i, r := range rows {
		out[i] = obj{
			Benchmark:     r.Name,
			References:    r.References,
			GlobalSM:      r.GlobalSM,
			GlobalFS:      r.GlobalFS,
			GlobalIP:      r.GlobalIP,
			Disambiguated: r.Disambiguated,
			RemovedSM:     r.RemovedSM,
			RemovedFS:     r.RemovedFS,
			RemovedIP:     r.RemovedIP,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ---------------------------------------------------------------------------
// Figure 8 — simulated execution time of RLE per analysis

// Figure8Row reports percent-of-base simulated time per level.
type Figure8Row struct {
	Name       string
	BaseCycles uint64
	Pct        [3]float64 // TypeDecl, FieldTypeDecl, SMFieldTypeRefs
}

// simCell is one simulated configuration: cycle count plus program
// output, kept so optimized runs can be checked against the base.
type simCell struct {
	cycles uint64
	out    string
}

// Figure8 simulates every benchmark unoptimized and under RLE at each
// analysis level.
func Figure8() ([]Figure8Row, error) { return sequential.Figure8() }

// Figure8 fans out one cell per benchmark × {base, TypeDecl,
// FieldTypeDecl, SMFieldTypeRefs}.
func (r *Runner) Figure8() ([]Figure8Row, error) {
	bs := MeasuredBenchmarks()
	stride := 1 + len(paperLevels)
	cells := make([]simCell, len(bs)*stride)
	err := r.run(len(cells), func(ci int) error {
		b, j := bs[ci/stride], ci%stride
		var options []Option
		if j > 0 {
			options = []Option{WithLevel(paperLevels[j-1]), WithPasses(RLE())}
		}
		a, err := r.analyzer(b, options...)
		if err != nil {
			return err
		}
		res, out, err := a.Simulate()
		if err != nil {
			if j == 0 {
				return fmt.Errorf("%s: %w", b.Name, err)
			}
			return fmt.Errorf("%s (%v): %w", b.Name, paperLevels[j-1], err)
		}
		cells[ci] = simCell{res.Cycles, out}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Figure8Row, len(bs))
	for i, b := range bs {
		base := cells[i*stride]
		row := Figure8Row{Name: b.Name, BaseCycles: base.cycles}
		for li, lvl := range paperLevels {
			c := cells[i*stride+1+li]
			if c.out != base.out {
				return nil, fmt.Errorf("%s (%v): output changed by optimization", b.Name, lvl)
			}
			row.Pct[li] = 100 * float64(c.cycles) / float64(base.cycles)
		}
		rows[i] = row
	}
	return rows, nil
}

// FprintFigure8 renders Figure 8.
func FprintFigure8(w io.Writer, rows []Figure8Row) {
	fmt.Fprintf(w, "Figure 8: Impact of RLE (percent of original running time)\n")
	fmt.Fprintf(w, "%-14s %5s %10s %13s %16s\n", "Program", "Base", "TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %5d %10.0f %13.0f %16.0f\n",
			r.Name, 100, r.Pct[0], r.Pct[1], r.Pct[2])
	}
}

// ---------------------------------------------------------------------------
// Figure 9 — dynamically redundant loads before/after TBAA+RLE

// Figure9Row reports redundant-load fractions of original heap loads.
type Figure9Row struct {
	Name      string
	Original  float64 // fraction redundant in the unoptimized program
	Optimized float64 // fraction remaining after TBAA+RLE
}

// limitCells runs the limit study per benchmark on the unoptimized
// program (cell 0) and on the TBAA+RLE-optimized program (cell 1) —
// the shared fan-out behind Figures 9 and 10.
func (r *Runner) limitCells(bs []Benchmark) ([]limit.Report, error) {
	reps := make([]limit.Report, 2*len(bs))
	err := r.run(len(reps), func(ci int) error {
		b, optimized := bs[ci/2], ci%2 == 1
		var rep limit.Report
		var err error
		if optimized {
			var a *Analyzer
			a, err = r.analyzer(b, WithPasses(RLE()))
			if err != nil {
				return err
			}
			rep, _, err = a.limitReport()
		} else {
			var prog, perr = r.compile(b)
			if perr != nil {
				return perr
			}
			rep, _, err = limit.Measure(prog, nil, nil)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		reps[ci] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reps, nil
}

// Figure9 runs the limit study on original and optimized programs.
func Figure9() ([]Figure9Row, error) { return sequential.Figure9() }

// Figure9 fans out one cell per benchmark × {original, optimized}.
func (r *Runner) Figure9() ([]Figure9Row, error) {
	bs := MeasuredBenchmarks()
	reps, err := r.limitCells(bs)
	if err != nil {
		return nil, err
	}
	rows := make([]Figure9Row, len(bs))
	for i, b := range bs {
		repBase, repOpt := reps[2*i], reps[2*i+1]
		rows[i] = Figure9Row{
			Name:      b.Name,
			Original:  repBase.Fraction(repBase.HeapLoads),
			Optimized: repOpt.Fraction(repBase.HeapLoads),
		}
	}
	return rows, nil
}

// FprintFigure9 renders Figure 9.
func FprintFigure9(w io.Writer, rows []Figure9Row) {
	fmt.Fprintf(w, "Figure 9: Comparing TBAA to an Upper Bound\n")
	fmt.Fprintf(w, "(fraction of original heap references that are dynamically redundant)\n")
	fmt.Fprintf(w, "%-14s %22s %22s\n", "Program", "Redundant originally", "Redundant after opts")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %22.2f %22.2f\n", r.Name, r.Original, r.Optimized)
	}
}

// ---------------------------------------------------------------------------
// Figure 10 — classification of remaining redundant loads

// Figure10Row splits remaining redundancy into the paper's categories,
// as fractions of the original program's heap loads.
type Figure10Row struct {
	Name      string
	Fractions [5]float64 // Encapsulated, Conditional, Breakup, AliasFailure, Rest
}

// Figure10 classifies the redundant loads remaining after TBAA+RLE.
func Figure10() ([]Figure10Row, error) { return sequential.Figure10() }

// Figure10 fans out one cell per benchmark × {original, optimized}.
func (r *Runner) Figure10() ([]Figure10Row, error) {
	bs := MeasuredBenchmarks()
	reps, err := r.limitCells(bs)
	if err != nil {
		return nil, err
	}
	rows := make([]Figure10Row, len(bs))
	for i, b := range bs {
		repBase, rep := reps[2*i], reps[2*i+1]
		row := Figure10Row{Name: b.Name}
		den := float64(repBase.HeapLoads)
		if den > 0 {
			for c := 0; c < 5; c++ {
				row.Fractions[c] = float64(rep.ByCategory[c]) / den
			}
		}
		rows[i] = row
	}
	return rows, nil
}

// FprintFigure10 renders Figure 10.
func FprintFigure10(w io.Writer, rows []Figure10Row) {
	fmt.Fprintf(w, "Figure 10: Source of Redundant Loads after Optimizations\n")
	fmt.Fprintf(w, "(fraction of original heap references)\n")
	fmt.Fprintf(w, "%-14s %13s %12s %9s %13s %7s\n",
		"Program", "Encapsulated", "Conditional", "Breakup", "AliasFailure", "Rest")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %13.3f %12.3f %9.3f %13.3f %7.3f\n",
			r.Name, r.Fractions[0], r.Fractions[1], r.Fractions[2], r.Fractions[3], r.Fractions[4])
	}
}

// ---------------------------------------------------------------------------
// Figure 11 — cumulative impact of RLE and Minv+Inlining

// Figure11Row reports percent-of-base time for the three configurations.
type Figure11Row struct {
	Name       string
	RLE        float64
	MinvInline float64
	Both       float64
}

// Figure11 measures RLE, devirt+inline, and their combination.
func Figure11() ([]Figure11Row, error) { return sequential.Figure11() }

// Figure11 fans out one cell per benchmark × {base, RLE, Minv+Inline,
// both}.
func (r *Runner) Figure11() ([]Figure11Row, error) {
	bs := MeasuredBenchmarks()
	configs := [][]Option{
		nil, // base
		{WithPasses(RLE())},
		{WithPasses(MinvInline())},
		{WithPasses(MinvInline(), RLE())},
	}
	stride := len(configs)
	cells := make([]simCell, len(bs)*stride)
	err := r.run(len(cells), func(ci int) error {
		b, options := bs[ci/stride], configs[ci%stride]
		a, err := r.analyzer(b, options...)
		if err != nil {
			return err
		}
		res, out, err := a.Simulate()
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		cells[ci] = simCell{res.Cycles, out}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Figure11Row, len(bs))
	for i, b := range bs {
		base := cells[i*stride]
		for j := 1; j < stride; j++ {
			if cells[i*stride+j].out != base.out {
				return nil, fmt.Errorf("%s: output changed", b.Name)
			}
		}
		pct := func(j int) float64 {
			return 100 * float64(cells[i*stride+j].cycles) / float64(base.cycles)
		}
		rows[i] = Figure11Row{Name: b.Name, RLE: pct(1), MinvInline: pct(2), Both: pct(3)}
	}
	return rows, nil
}

// FprintFigure11 renders Figure 11.
func FprintFigure11(w io.Writer, rows []Figure11Row) {
	fmt.Fprintf(w, "Figure 11: Cumulative Impact of Optimizations (percent of original time)\n")
	fmt.Fprintf(w, "%-14s %5s %6s %14s %18s\n", "Program", "Base", "RLE", "Minv+Inlining", "RLE+Minv+Inlining")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %5d %6.0f %14.0f %18.0f\n", r.Name, 100, r.RLE, r.MinvInline, r.Both)
	}
}

// ---------------------------------------------------------------------------
// Figure 12 — open vs closed world

// Figure12Row reports percent-of-base time for closed- and open-world TBAA.
type Figure12Row struct {
	Name   string
	Closed float64
	Open   float64
}

// Figure12 compares RLE under the closed- and open-world assumptions.
func Figure12() ([]Figure12Row, error) { return sequential.Figure12() }

// Figure12 fans out one cell per benchmark × {base, closed, open}.
func (r *Runner) Figure12() ([]Figure12Row, error) {
	bs := MeasuredBenchmarks()
	const stride = 3
	cells := make([]simCell, len(bs)*stride)
	err := r.run(len(cells), func(ci int) error {
		b, j := bs[ci/stride], ci%stride
		var options []Option
		if j > 0 {
			options = []Option{WithOpenWorld(j == 2), WithPasses(RLE())}
		}
		a, err := r.analyzer(b, options...)
		if err != nil {
			return err
		}
		res, out, err := a.Simulate()
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		cells[ci] = simCell{res.Cycles, out}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Figure12Row, len(bs))
	for i, b := range bs {
		base := cells[i*stride]
		for j := 1; j < stride; j++ {
			if cells[i*stride+j].out != base.out {
				return nil, fmt.Errorf("%s: output changed by optimization", b.Name)
			}
		}
		rows[i] = Figure12Row{
			Name:   b.Name,
			Closed: 100 * float64(cells[i*stride+1].cycles) / float64(base.cycles),
			Open:   100 * float64(cells[i*stride+2].cycles) / float64(base.cycles),
		}
	}
	return rows, nil
}

// FprintFigure12 renders Figure 12.
func FprintFigure12(w io.Writer, rows []Figure12Row) {
	fmt.Fprintf(w, "Figure 12: Open and Closed World Assumptions (percent of original time)\n")
	fmt.Fprintf(w, "%-14s %12s %12s\n", "Program", "RLE", "RLE Open")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %12.0f %12.0f\n", r.Name, r.Closed, r.Open)
	}
}

// ---------------------------------------------------------------------------
// Artifact dispatch

// TableFSIndex selects Table FS (the flow-sensitive extension table)
// in WriteArtifacts' table parameter; the paper's own tables keep their
// numbers 4-6.
const TableFSIndex = 7

// TableIPIndex selects Table IP (the interprocedural extension table)
// in WriteArtifacts' table parameter.
const TableIPIndex = 8

// WriteArtifacts regenerates the selected artifacts and renders them to
// w in paper order, each followed by a blank separator line. table
// selects one table (4-6, TableFSIndex for the flow-sensitive
// extension table, or TableIPIndex for the interprocedural one) and
// figure one figure (8-12); when both are zero, every artifact is
// produced, with Tables FS and IP after Table 6. This is the engine
// behind cmd/tbaabench.
func (r *Runner) WriteArtifacts(w io.Writer, table, figure int) error {
	all := table == 0 && figure == 0
	if all || table == 4 {
		rows, err := r.Table4()
		if err != nil {
			return err
		}
		FprintTable4(w, rows)
		fmt.Fprintln(w)
	}
	if all || table == 5 {
		rows, err := r.Table5()
		if err != nil {
			return err
		}
		FprintTable5(w, rows)
		fmt.Fprintln(w)
	}
	if all || table == 6 {
		rows, err := r.Table6()
		if err != nil {
			return err
		}
		FprintTable6(w, rows)
		fmt.Fprintln(w)
	}
	if all || table == TableFSIndex {
		rows, err := r.TableFS()
		if err != nil {
			return err
		}
		FprintTableFS(w, rows)
		fmt.Fprintln(w)
	}
	if all || table == TableIPIndex {
		rows, err := r.TableIP()
		if err != nil {
			return err
		}
		FprintTableIP(w, rows)
		fmt.Fprintln(w)
	}
	if all || figure == 8 {
		rows, err := r.Figure8()
		if err != nil {
			return err
		}
		FprintFigure8(w, rows)
		fmt.Fprintln(w)
	}
	if all || figure == 9 {
		rows, err := r.Figure9()
		if err != nil {
			return err
		}
		FprintFigure9(w, rows)
		fmt.Fprintln(w)
	}
	if all || figure == 10 {
		rows, err := r.Figure10()
		if err != nil {
			return err
		}
		FprintFigure10(w, rows)
		fmt.Fprintln(w)
	}
	if all || figure == 11 {
		rows, err := r.Figure11()
		if err != nil {
			return err
		}
		FprintFigure11(w, rows)
		fmt.Fprintln(w)
	}
	if all || figure == 12 {
		rows, err := r.Figure12()
		if err != nil {
			return err
		}
		FprintFigure12(w, rows)
		fmt.Fprintln(w)
	}
	return nil
}
