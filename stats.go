package tbaa

import "sync/atomic"

// Stats counts may-alias queries across the Analyzers it is attached to
// with WithStats. All methods are safe for concurrent use; one Stats
// may be shared by many Analyzers to aggregate fleet-wide counters.
type Stats struct {
	queries atomic.Uint64
	aliased atomic.Uint64
	batches atomic.Uint64
}

// Queries returns the number of may-alias verdicts produced.
func (s *Stats) Queries() uint64 { return s.queries.Load() }

// Aliased returns how many verdicts answered "may alias".
func (s *Stats) Aliased() uint64 { return s.aliased.Load() }

// Batches returns the number of MayAliasBatch calls.
func (s *Stats) Batches() uint64 { return s.batches.Load() }
