package tbaa_test

import (
	"context"
	"fmt"
	"log"

	"tbaa"
)

const exampleSrc = `
MODULE Quick;
TYPE
  T = OBJECT f, g: T; END;
  S1 = T OBJECT a: INTEGER; END;
  S2 = T OBJECT b: INTEGER; END;
VAR
  t: T;
  s: S1;
  u: S2;
  sink: T;
BEGIN
  t := NEW(T);
  s := NEW(S1);
  u := NEW(S2);
  t := s;          (* the only merge: T may now reference S1 objects *)
  sink := t.f;
  sink := s.f;
  sink := u.f;
  sink := t.g;
END Quick.
`

// New compiles and analyzes in one call; MayAlias answers a single
// query by access-path name.
func ExampleNew() {
	a, err := tbaa.New("quick.m3", exampleSrc)
	if err != nil {
		log.Fatal(err)
	}
	merged, _ := a.MayAlias("t.f", "s.f")   // S1 was assigned into T
	unmerged, _ := a.MayAlias("t.f", "u.f") // S2 never was
	fmt.Printf("%s: t.f~s.f=%v t.f~u.f=%v\n", a.Name(), merged, unmerged)
	// Output:
	// SMFieldTypeRefs: t.f~s.f=true t.f~u.f=false
}

// A Module is one frontend shared by many Analyzers: each NewAnalyzer
// call lowers a private program, so levels and passes never interfere.
func ExampleModule_NewAnalyzer() {
	mod, err := tbaa.Compile("quick.m3", exampleSrc)
	if err != nil {
		log.Fatal(err)
	}
	for _, lvl := range tbaa.Levels() {
		a, err := mod.NewAnalyzer(tbaa.WithLevel(lvl))
		if err != nil {
			log.Fatal(err)
		}
		siblings, _ := a.MayAlias("s.f", "u.f")
		fmt.Printf("%-15s s.f~u.f=%v\n", a.Name(), siblings)
	}
	// Output:
	// TypeDecl        s.f~u.f=true
	// FieldTypeDecl   s.f~u.f=false
	// SMFieldTypeRefs s.f~u.f=false
}

// MayAliasBatch amortizes lock and memo traffic over many queries and
// honors context cancellation between pairs.
func ExampleAnalyzer_MayAliasBatch() {
	a, err := tbaa.New("quick.m3", exampleSrc, tbaa.WithLevel(tbaa.SMFieldTypeRefs))
	if err != nil {
		log.Fatal(err)
	}
	pairs := []tbaa.Pair{
		{P: "t.f", Q: "s.f"},
		{P: "t.f", Q: "u.f"},
		{P: "t.f", Q: "t.g"},
	}
	for _, v := range a.MayAliasBatch(context.Background(), pairs) {
		if v.Err != nil {
			log.Fatal(v.Err)
		}
		fmt.Printf("MayAlias(%s, %s) = %v\n", v.Pair.P, v.Pair.Q, v.MayAlias)
	}
	// Output:
	// MayAlias(t.f, s.f) = true
	// MayAlias(t.f, u.f) = false
	// MayAlias(t.f, t.g) = false
}

// Queries is the iterator form of MayAliasBatch: verdicts are produced
// lazily as the range loop pulls them.
func ExampleAnalyzer_Queries() {
	a, err := tbaa.New("quick.m3", exampleSrc)
	if err != nil {
		log.Fatal(err)
	}
	pairs := []tbaa.Pair{{P: "t.f", Q: "s.f"}, {P: "s.f", Q: "u.f"}}
	for v := range a.Queries(context.Background(), pairs) {
		fmt.Printf("%s ~ %s: %v\n", v.Pair.P, v.Pair.Q, v.MayAlias)
	}
	// Output:
	// t.f ~ s.f: true
	// s.f ~ u.f: false
}

// WithPasses runs an optimization pipeline over the lowered program at
// construction; PassResults reports what each pass did.
func ExampleWithPasses() {
	const loopSrc = `
MODULE Demo;
TYPE
  Inner = REF INTEGER;
  Outer = OBJECT b: Inner; END;
VAR
  a: Outer;
  i, x: INTEGER;
BEGIN
  a := NEW(Outer);
  a.b := NEW(Inner);
  a.b^ := 5;
  x := 0;
  FOR i := 1 TO 1000 DO
    x := x + a.b^;    (* loop-invariant: hoistable *)
  END;
  PutInt(x); PutLn();
END Demo.
`
	a, err := tbaa.New("demo.m3", loopSrc, tbaa.WithPasses(tbaa.RLE()))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range a.PassResults() {
		fmt.Printf("%s: hoisted %d, eliminated %d\n", r.Pass, r.Hoisted, r.Eliminated)
	}
	out, stats, err := a.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output %sheap loads after RLE: %d\n", out, stats.HeapLoads)
	// Output:
	// rle: hoisted 2, eliminated 3
	// output 5000
	// heap loads after RLE: 0
}

// ModuleHash is the content-addressed cache key the analysis server
// (cmd/tbaad) stores compiled modules under: a stable function of the
// source bytes alone.
func ExampleModuleHash() {
	mod, err := tbaa.Compile("quick.m3", exampleSrc)
	if err != nil {
		log.Fatal(err)
	}
	// The module's hash is the hash of its source — the file name does
	// not participate, so any client computes the same key.
	fmt.Println(mod.Hash() == tbaa.ModuleHash(exampleSrc))
	fmt.Println(len(mod.Hash()))
	// Output:
	// true
	// 64
}
