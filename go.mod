module tbaa

go 1.24
