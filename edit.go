package tbaa

import (
	"fmt"

	"tbaa/internal/ast"
	"tbaa/internal/lower"
	"tbaa/internal/parser"
	"tbaa/internal/sema"
)

// ProcEdit is a checked single-procedure replacement produced by
// Module.EditProc. One ProcEdit can be applied to any number of
// Analyzers of the same module (each maintains a private lowering), and
// edits must be applied in the order they were made.
type ProcEdit struct {
	mod  *Module
	proc *sema.Procedure
}

// Proc returns the name of the procedure the edit replaces.
func (e *ProcEdit) Proc() string { return e.proc.Name }

// EditProc type-checks src — a single PROCEDURE declaration — as a
// replacement for the module procedure of the same name and installs it
// in the module's checked form. Analyzers built after EditProc returns
// lower the edited body; Analyzers already built keep answering from
// their current program until the edit is applied to them with
// Analyzer.ApplyEdit.
//
// The edit is checked against the frozen module: every type written in
// the declaration must be a declared type name, and the signature must
// match the replaced procedure exactly, so every call site, method
// binding, and precomputed type-universe cache stays valid without
// re-checking the rest of the module. Violations, like ordinary type
// errors in the body, are reported as a *CheckError; syntax errors as a
// *ParseError.
func (m *Module) EditProc(src string) (*ProcEdit, error) {
	decl, err := parseProcDecl(m.c.File, src)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	proc, err := m.c.Sema.ReplaceProc(decl)
	if err != nil {
		if el, ok := err.(sema.ErrorList); ok {
			return nil, newCheckError(m.c.File, el)
		}
		return nil, err
	}
	// The module no longer matches the source its hash names; persisted
	// artifacts keyed by that hash must not serve or record it.
	m.edited.Store(true)
	return &ProcEdit{mod: m, proc: proc}, nil
}

// ApplyEdit re-lowers the edited procedure into this Analyzer's private
// program and incrementally rebuilds the analyses: only the edited
// procedure's access paths are re-interned and re-partitioned, only its
// flow facts are dropped, and only its SCC and the SCCs that reach it
// are re-summarized (with a full rebuild as the automatic fallback when
// the edit changed a program-wide fact table). The refreshed snapshot
// is published atomically exactly as Invalidate does: queries in flight
// finish on the snapshot they started with, and queries that begin
// after ApplyEdit returns see only the edited program.
//
// Configured optimization passes are not re-run: the replacement body
// is analyzed as lowered. Analyzers built without passes — the serving
// configuration — answer exactly as a from-scratch Analyzer of the
// edited module would.
func (a *Analyzer) ApplyEdit(e *ProcEdit) error {
	if e.mod != a.mod {
		return fmt.Errorf("tbaa: edit of module %s applied to an analyzer of %s",
			e.mod.File(), a.mod.File())
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.prog.ProcByName[e.proc.Name] == nil {
		return fmt.Errorf("tbaa: program has no procedure %s", e.proc.Name)
	}
	a.mod.mu.RLock()
	lower.LowerProcInto(a.prog, a.mod.c.Sema, e.proc)
	a.mod.mu.RUnlock()
	a.env.Invalidate()
	if a.snap.Load() != nil {
		a.snap.Store(a.buildSnapshotLocked())
	}
	return nil
}

// EditProc is the one-analyzer convenience: Module.EditProc followed by
// ApplyEdit on this Analyzer.
func (a *Analyzer) EditProc(src string) (*ProcEdit, error) {
	e, err := a.mod.EditProc(src)
	if err != nil {
		return nil, err
	}
	return e, a.ApplyEdit(e)
}

// parseProcDecl parses src, which must consist of exactly one procedure
// declaration, by checking it as the body of a synthetic wrapper
// module. The wrapper prefix shares the declaration's first line, so
// diagnostic line numbers match the edit source.
func parseProcDecl(file string, src string) (*ast.ProcDecl, error) {
	m, err := parser.Parse(file, "MODULE EditM3; "+src+" BEGIN END EditM3.")
	if err != nil {
		return nil, newParseError(file, err)
	}
	var pd *ast.ProcDecl
	for _, d := range m.Decls {
		q, ok := d.(*ast.ProcDecl)
		if !ok || pd != nil {
			return nil, fmt.Errorf("tbaa: edit source must be exactly one PROCEDURE declaration")
		}
		pd = q
	}
	if pd == nil {
		return nil, fmt.Errorf("tbaa: edit source must be exactly one PROCEDURE declaration")
	}
	return pd, nil
}
