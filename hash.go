package tbaa

import (
	"crypto/sha256"
	"encoding/hex"
)

// ModuleHash returns a stable content hash of MiniM3 source text: 64
// lowercase hex digits of the SHA-256 of the bytes. The hash depends
// only on the source — not on the file name a module is compiled
// under, the analysis configuration, or anything about the process —
// so it is usable as a cross-process cache key: two uploads of the
// same bytes name the same compiled Module wherever they happen. The
// analysis server (cmd/tbaad) keys its resident-module cache on it.
func ModuleHash(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// Hash returns the module's content hash: ModuleHash of the source it
// was compiled from.
func (m *Module) Hash() string { return m.hash }
