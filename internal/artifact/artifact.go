// Package artifact implements the persistent analysis-artifact cache: a
// versioned, self-describing binary encoding of the per-(level, open)
// analysis snapshot — the lowered program, the interned canonical
// access-path table, the alias-class partition with its class × class
// compatibility bitmatrix, the TypeRefsTable rows, and (at the
// interprocedural level) the per-SCC mod-ref and freshness summaries —
// written and loaded atomically, keyed by (module hash, level, open,
// format version, build fingerprint).
//
// The cache can only ever cost performance, never soundness: Load
// validates the header against the requested key, the payload against a
// CRC-32C checksum, every decoded index against its bounds, and the
// re-interned access-path table against a recorded digest; any mismatch,
// truncation, or decode error surfaces as an error and the caller falls
// back to a from-scratch build, overwriting the bad artifact. A cache
// hit is exact by construction — the decoded program reproduces the
// fresh lowering's pointer topology, so re-interning reproduces the
// identities the persisted partition is indexed by — and the repo's
// round-trip differential test pins deserialized verdicts byte-equal to
// freshly built ones.
package artifact

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"tbaa/internal/alias"
	"tbaa/internal/fault"
	"tbaa/internal/ir"
	"tbaa/internal/modref"
	"tbaa/internal/types"
)

// FormatVersion is the artifact encoding version. Bump it whenever the
// payload layout — or anything the decode-determinism argument depends
// on, such as ir.InternAPs' numbering order — changes; stale versions
// are rejected at load and rebuilt.
const FormatVersion = 1

// magic identifies an artifact file. The trailing newline makes an
// accidental text file fail fast.
var magic = [8]byte{'T', 'B', 'A', 'A', 'A', 'R', 'T', '\n'}

// crcTable selects CRC-32C (Castagnoli) for the payload checksum — the
// storage-integrity polynomial with hardware support on every modern
// CPU. The cache defends against corruption, not adversaries: the
// decoder bounds-checks every count, index, and identity regardless,
// so a stronger digest would buy nothing but latency on the warm path.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// BuildFingerprint identifies the producing toolchain; artifacts from a
// different build are rejected (Go version changes can change map
// iteration, struct layout assumptions, or library behavior the
// encoding does not otherwise witness).
func BuildFingerprint() string { return runtime.Version() }

// Key identifies one artifact: the module's content hash and the
// analysis configuration (the normalized level and the open-world
// flag). Format version and build fingerprint are implicit — Load
// rejects artifacts from other versions or builds.
type Key struct {
	ModuleHash string
	Level      int
	Open       bool
}

// Path returns the artifact file path for a key within dir.
func Path(dir string, key Key) string {
	world := "closed"
	if key.Open {
		world = "open"
	}
	return filepath.Join(dir, fmt.Sprintf("%s-l%d-%s.art", key.ModuleHash, key.Level, world))
}

// Remove deletes every artifact of the given module hash in dir — all
// levels and worlds. The server calls it before publishing an edited
// generation, so a stale snapshot of the pre-edit program can never
// warm-start a later analyzer. Missing files are not an error.
func Remove(dir, hash string) error {
	matches, err := filepath.Glob(filepath.Join(dir, hash+"-l*.art"))
	if err != nil {
		return err
	}
	var first error
	for _, m := range matches {
		if err := os.Remove(m); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Snapshot is a decoded artifact: the reconstructed program, its
// re-interned (and digest-validated) access-path index, and the
// analysis snapshots to seed from.
type Snapshot struct {
	Prog *ir.Program
	// APList is the program's distinct instruction access paths in
	// Procs → Blocks → Instrs first-visit order — exactly the paths (and
	// the ordering) a walk over the decoded program's instructions
	// yields, precollected so a warm start can build its query
	// vocabulary without re-walking every instruction.
	APList []*ir.AP
	Index  *ir.APIndex
	Alias  *alias.Snapshot
	ModRef *modref.Snapshot // nil below the interprocedural level
}

// Write encodes and atomically installs the artifact for key in dir
// (temp file + rename, so a concurrent Load never sees a torn file).
// idx must be a dense index of prog — every identity resolvable, fresh
// numbering — which is exactly what a from-scratch build over an
// unedited lowering produces; anything else is refused, since a decoded
// program could not reproduce sparse numbering. mrSnap may be nil.
func Write(dir string, key Key, prog *ir.Program, idx *ir.APIndex, aliasSnap *alias.Snapshot, mrSnap *modref.Snapshot) error {
	if aliasSnap == nil {
		return fmt.Errorf("artifact: nil alias snapshot")
	}
	for i := 0; i < idx.Len(); i++ {
		ap := idx.ByID(int32(i + 1))
		if ap == nil {
			return fmt.Errorf("artifact: sparse index (identity %d is a hole); not persistable", i+1)
		}
	}
	payload, err := encodePayload(prog, idx, aliasSnap, mrSnap)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.Write(magic[:])
	var v4 [4]byte
	binary.LittleEndian.PutUint32(v4[:], FormatVersion)
	buf.Write(v4[:])
	writeHeaderString(&buf, BuildFingerprint())
	writeHeaderString(&buf, key.ModuleHash)
	buf.WriteByte(byte(key.Level))
	if key.Open {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	var n8 [8]byte
	binary.LittleEndian.PutUint64(n8[:], uint64(len(payload)))
	buf.Write(n8[:])
	var c4 [4]byte
	binary.LittleEndian.PutUint32(c4[:], crc32.Checksum(payload, crcTable))
	buf.Write(c4[:])
	buf.Write(payload)

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".art-*")
	if err != nil {
		return err
	}
	out := buf.Bytes()
	// Chaos: a crash mid-write leaves only a prefix in the temp file,
	// and the rename still lands — the installed artifact is torn, and
	// the next Load must detect it (truncated header, short payload, or
	// checksum mismatch) and rebuild.
	if n, ok := fault.HitN(fault.ArtifactShortWrite, len(out)); ok {
		out = out[:n]
	}
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Chaos: the install itself can fail (full disk, permission flap);
	// callers treat a failed Write as "no warm start next time", never
	// as fatal.
	if fault.Hit(fault.ArtifactRenameFail) {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: injected rename failure (%s)", fault.ArtifactRenameFail)
	}
	if err := os.Rename(tmp.Name(), Path(dir, key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ballast is a pointer-free heap anchor sized to the expected in-memory
// expansion of the largest artifact decoded so far (roughly thirtyfold
// the payload). Decoding materializes a pointer-dense program graph in
// one burst; on a quiesced heap that ramp re-triggers the collector
// every doubling, and each cycle re-marks everything decoded so far —
// on a small machine that costs more than the decode itself. Keeping
// the ballast live raises the pacer's goal past the whole ramp, so a
// load completes within about one collection. The bytes are never
// written: fresh spans stay untouched zero pages (no resident memory),
// and marking a pointer-free object is O(1).
var (
	ballastMu sync.Mutex
	ballast   []byte
)

func ensureBallast(n int) {
	ballastMu.Lock()
	if len(ballast) < n {
		ballast = nil
		ballast = make([]byte, n)
	}
	ballastMu.Unlock()
}

// Load reads, validates, and decodes the artifact for key in dir. The
// universe must come from a frontend of the identical source the
// artifact was built from (the module hash in the key pins that).
//
// A missing artifact reports an error satisfying
// errors.Is(err, fs.ErrNotExist) — a cache miss; every other failure
// (version skew, foreign build, wrong key, truncation, checksum or
// digest mismatch, malformed payload) is an invalid artifact the caller
// should overwrite after rebuilding from scratch. Load never panics on
// hostile bytes: every count, index, and identity is bounds-checked.
func Load(dir string, key Key, u *types.Universe) (*Snapshot, error) {
	data, err := os.ReadFile(Path(dir, key))
	if err != nil {
		return nil, err
	}
	// Chaos: a degraded disk stalls the read; a dying one corrupts it.
	// CRC-32C detects every single-bit error, and the header fields are
	// individually validated, so any injected flip must surface as an
	// invalid artifact — never as a wrong verdict.
	fault.Sleep(fault.ArtifactSlowRead)
	if i, ok := fault.HitN(fault.ArtifactBitFlip, len(data)*8); ok {
		data[i>>3] ^= 1 << (i & 7)
	}
	payload, err := checkHeader(data, key)
	if err != nil {
		return nil, err
	}
	ensureBallast(min(32*len(payload), 1<<30))
	snap, apCount, apDigest, err := decodePayload(payload, u)
	if err != nil {
		return nil, err
	}
	// decodePayload re-interned the decoded access-path table; pin the
	// numbering to what the encoder saw: the alias and mod-ref sections
	// index paths by these identities, so any drift invalidates the
	// artifact.
	if snap.Index.Len() != apCount {
		return nil, fmt.Errorf("artifact: re-interning yields %d identities, artifact recorded %d", snap.Index.Len(), apCount)
	}
	if got := indexDigest(snap.Index); got != apDigest {
		return nil, fmt.Errorf("artifact: intern-table digest mismatch (got %#x, recorded %#x)", got, apDigest)
	}
	return snap, nil
}

// checkHeader validates everything before the payload and returns the
// checksummed payload bytes.
func checkHeader(data []byte, key Key) ([]byte, error) {
	r := bytes.NewReader(data)
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil || m != magic {
		return nil, fmt.Errorf("artifact: bad magic")
	}
	var v4 [4]byte
	if _, err := io.ReadFull(r, v4[:]); err != nil {
		return nil, fmt.Errorf("artifact: truncated header")
	}
	if v := binary.LittleEndian.Uint32(v4[:]); v != FormatVersion {
		return nil, fmt.Errorf("artifact: format version %d, want %d", v, FormatVersion)
	}
	fp, err := readHeaderString(r)
	if err != nil {
		return nil, err
	}
	if fp != BuildFingerprint() {
		return nil, fmt.Errorf("artifact: built by %q, this binary is %q", fp, BuildFingerprint())
	}
	hash, err := readHeaderString(r)
	if err != nil {
		return nil, err
	}
	if hash != key.ModuleHash {
		return nil, fmt.Errorf("artifact: keyed to module %s, want %s", hash, key.ModuleHash)
	}
	lv, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("artifact: truncated header")
	}
	open, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("artifact: truncated header")
	}
	if int(lv) != key.Level || (open != 0) != key.Open {
		return nil, fmt.Errorf("artifact: keyed to level %d open=%v, want level %d open=%v", lv, open != 0, key.Level, key.Open)
	}
	var n8 [8]byte
	if _, err := io.ReadFull(r, n8[:]); err != nil {
		return nil, fmt.Errorf("artifact: truncated header")
	}
	plen := binary.LittleEndian.Uint64(n8[:])
	var c4 [4]byte
	if _, err := io.ReadFull(r, c4[:]); err != nil {
		return nil, fmt.Errorf("artifact: truncated header")
	}
	payload := data[len(data)-r.Len():]
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("artifact: payload is %d bytes, header says %d", len(payload), plen)
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(c4[:]) {
		return nil, fmt.Errorf("artifact: payload checksum mismatch")
	}
	return payload, nil
}

func writeHeaderString(buf *bytes.Buffer, s string) {
	var n [binary.MaxVarintLen64]byte
	buf.Write(n[:binary.PutUvarint(n[:], uint64(len(s)))])
	buf.WriteString(s)
}

func readHeaderString(r *bytes.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil || n > uint64(r.Len()) {
		return "", fmt.Errorf("artifact: truncated header")
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("artifact: truncated header")
	}
	return string(b), nil
}

// indexDigest fingerprints the interned access-path table: slot order,
// hole positions, and each path's root, selectors, subscripts, and
// types. Encode records it from the fresh build's index; Load recomputes
// it from the re-interned decoded program. Equality means the persisted
// partition's identity-indexed tables line up with the decoded index.
func indexDigest(idx *ir.APIndex) uint64 {
	h := fnv.New64a()
	var b [8]byte
	word := func(v int64) {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	tid := func(t types.Type) int64 {
		if t == nil {
			return -1
		}
		return int64(t.ID())
	}
	for i := 0; i < idx.Len(); i++ {
		ap := idx.ByID(int32(i + 1))
		if ap == nil {
			h.Write([]byte{0xff})
			continue
		}
		io.WriteString(h, ap.Root.Name)
		word(int64(ap.Root.Kind))
		word(int64(ap.Root.Slot))
		word(tid(ap.Root.Type))
		word(int64(len(ap.Sels)))
		for si := range ap.Sels {
			s := &ap.Sels[si]
			word(int64(s.Kind))
			io.WriteString(h, s.Field)
			word(tid(s.Type))
			word(int64(s.Index.Kind))
			switch s.Index.Kind {
			case ir.RegOp:
				word(int64(s.Index.Reg))
			case ir.VarOp:
				io.WriteString(h, s.Index.Var.Name)
				word(int64(s.Index.Var.Slot))
			case ir.ConstOp:
				word(int64(s.Index.Const.Kind))
				word(s.Index.Const.Int)
				io.WriteString(h, s.Index.Const.Text)
			}
		}
	}
	return h.Sum64()
}
