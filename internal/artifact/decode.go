package artifact

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tbaa/internal/alias"
	"tbaa/internal/ir"
	"tbaa/internal/modref"
	"tbaa/internal/types"
)

// dec is a sticky-error payload reader: after the first failure every
// read returns a zero value, so decode logic can run straight-line and
// check err once per section. Every count is bounded by the bytes that
// remain (each element costs at least one byte), so hostile lengths
// cannot drive allocations past the file's own size.
type dec struct {
	data []byte
	pos  int
	strs []string
	err  error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("artifact: "+format, args...)
	}
}

func (d *dec) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail("truncated or malformed varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *dec) i() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.fail("truncated or malformed varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *dec) b() bool {
	if d.err != nil {
		return false
	}
	if d.pos >= len(d.data) {
		d.fail("truncated payload")
		return false
	}
	v := d.data[d.pos]
	d.pos++
	if v > 1 {
		d.fail("malformed bool %d at offset %d", v, d.pos-1)
		return false
	}
	return v == 1
}

// count reads a length and bounds it against the remaining bytes.
func (d *dec) count(what string) int {
	n := d.u()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.data)-d.pos) {
		d.fail("%s count %d exceeds remaining payload", what, n)
		return 0
	}
	return int(n)
}

func (d *dec) str() string {
	ix := d.u()
	if d.err != nil {
		return ""
	}
	if ix >= uint64(len(d.strs)) {
		d.fail("string reference %d out of range", ix)
		return ""
	}
	return d.strs[ix]
}

func (d *dec) int32s(what string) []int32 {
	n := d.count(what)
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		v := d.i()
		if v < -1<<31 || v >= 1<<31 {
			d.fail("%s entry %d overflows int32", what, i)
			return nil
		}
		out[i] = int32(v)
	}
	return out
}

func (d *dec) words(what string) []uint64 {
	n := d.count(what)
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.u()
	}
	return out
}

func decodePayload(payload []byte, u *types.Universe) (*Snapshot, int, uint64, error) {
	d := &dec{data: payload}
	nStrs := d.count("string table")
	d.strs = make([]string, 0, nStrs)
	for i := 0; i < nStrs; i++ {
		n := d.count("string")
		if d.err != nil {
			break
		}
		d.strs = append(d.strs, string(d.data[d.pos:d.pos+n]))
		d.pos += n
	}
	p := &progDec{dec: d, u: u}
	prog, join := p.program()
	aliasSnap, apCount, apDigest := p.aliasSection()
	mrSnap := p.modrefSection()
	// Re-intern while the body workers are still decoding: the index is
	// a function of the AP table alone (see ir.InternAPList), so it
	// never reads an instruction.
	var idx *ir.APIndex
	if d.err == nil {
		idx = ir.InternAPList(p.aps)
	}
	if err := join(); err != nil && d.err == nil {
		d.err = err
	}
	if d.err != nil {
		return nil, 0, 0, d.err
	}
	if d.pos != len(d.data) {
		return nil, 0, 0, fmt.Errorf("artifact: %d trailing bytes after payload", len(d.data)-d.pos)
	}
	for _, proc := range p.procs {
		prog.ProcByName[proc.Name] = proc
	}
	return &Snapshot{Prog: prog, APList: p.aps, Index: idx, Alias: aliasSnap, ModRef: mrSnap}, apCount, apDigest, nil
}

type progDec struct {
	*dec
	u     *types.Universe
	vars  []*ir.Var
	aps   []*ir.AP
	procs []*ir.Proc
	// ops is the body decoder's operand slab: one allocation per
	// procedure, carved into each instruction's Args slice. nil outside
	// a body chunk (the mask rejects Args there anyway).
	ops []ir.Operand
}

// typ resolves a shifted type ID. Universe.ByID indexes without a
// bounds check, so every ID is validated here before it gets near it.
func (p *progDec) typ() types.Type {
	id := p.dec.u()
	if p.err != nil || id == 0 {
		return nil
	}
	if id-1 >= uint64(p.u.NumTypes()) {
		p.fail("type ID %d out of range (universe has %d types)", id-1, p.u.NumTypes())
		return nil
	}
	return p.u.ByID(int(id - 1))
}

func (p *progDec) obj() *types.Object {
	t := p.typ()
	if t == nil {
		return nil
	}
	o, ok := t.(*types.Object)
	if !ok {
		p.fail("type %s referenced where an object type is required", t)
		return nil
	}
	return o
}

func (p *progDec) varRef() *ir.Var {
	ix := p.dec.u()
	if p.err != nil || ix == 0 {
		return nil
	}
	if ix-1 >= uint64(len(p.vars)) {
		p.fail("variable reference %d out of range", ix-1)
		return nil
	}
	return p.vars[ix-1]
}

// varDef decodes one variable definition into v, a slot of its table's
// preallocated slab (one allocation per table instead of one per
// variable; the slab slots keep the distinct pointer identities the
// program graph needs).
func (p *progDec) varDef(v *ir.Var, kind ir.VarKind) *ir.Var {
	v.Name = p.str()
	v.Type = p.typ()
	v.Kind = kind
	k := p.dec.u()
	if ir.VarKind(k) != kind {
		p.fail("variable %s declared as kind %d in a kind-%d table", v.Name, k, kind)
	}
	v.ByRef = p.b()
	v.Slot = int(p.i())
	p.vars = append(p.vars, v)
	return v
}

func (p *progDec) operand() ir.Operand {
	var op ir.Operand
	op.Kind = ir.OperandKind(p.dec.u())
	switch op.Kind {
	case ir.NoOperand:
	case ir.ConstOp:
		op.Const.Kind = ir.ConstKind(p.dec.u())
		op.Const.Int = p.i()
		op.Const.Text = p.str()
	case ir.RegOp:
		op.Reg = ir.Reg(p.i())
	case ir.VarOp:
		op.Var = p.varRef()
	default:
		p.fail("unknown operand kind %d", op.Kind)
	}
	return op
}

// program decodes the program section. The returned join function
// completes the concurrent instruction-body decode (a no-op closure
// when the section failed before the bodies); the caller must invoke
// it — and check its error — before using any procedure's blocks.
func (p *progDec) program() (*ir.Program, func() error) {
	noBodies := func() error { return nil }
	if nt := p.dec.u(); nt != uint64(p.u.NumTypes()) {
		p.fail("program was lowered against %d types, universe has %d", nt, p.u.NumTypes())
	}
	prog := &ir.Program{
		Name:               p.str(),
		Universe:           p.u,
		ProcByName:         make(map[string]*ir.Proc),
		AddressTakenFields: make(map[ir.FieldKey]bool),
		AddressTakenElems:  make(map[int]bool),
		AddressTakenVars:   make(map[*ir.Var]bool),
		ByRefFormalTypes:   make(map[int]bool),
	}
	nGlobals := p.count("global")
	gslab := make([]ir.Var, nGlobals)
	p.vars = make([]*ir.Var, 0, nGlobals+1024)
	for i := 0; i < nGlobals; i++ {
		prog.Globals = append(prog.Globals, p.varDef(&gslab[i], ir.GlobalVar))
	}
	nProcs := p.count("procedure")
	p.procs = make([]*ir.Proc, 0, nProcs)
	pslab := make([]ir.Proc, nProcs)
	for i := 0; i < nProcs; i++ {
		proc := &pslab[i]
		proc.Name = p.str()
		proc.MethodOf = p.obj()
		proc.Result = p.typ()
		proc.NumRegs = int(p.i())
		nParams := p.count("parameter")
		vslab := make([]ir.Var, nParams)
		for j := 0; j < nParams; j++ {
			proc.Params = append(proc.Params, p.varDef(&vslab[j], ir.ParamVar))
		}
		nLocals := p.count("local")
		vslab = make([]ir.Var, nLocals)
		for j := 0; j < nLocals; j++ {
			proc.Locals = append(proc.Locals, p.varDef(&vslab[j], ir.LocalVar))
		}
		p.procs = append(p.procs, proc)
		if p.err != nil {
			return prog, noBodies
		}
	}
	prog.Procs = p.procs

	nAPs := p.count("access path")
	p.aps = make([]*ir.AP, 0, nAPs)
	apslab := make([]ir.AP, nAPs)
	for i := 0; i < nAPs; i++ {
		ap := &apslab[i]
		ap.Root = p.varRef()
		if ap.Root == nil && p.err == nil {
			p.fail("access path %d has no root", i)
		}
		nSels := p.count("selector")
		if nSels > 0 {
			ap.Sels = make([]ir.APSel, nSels)
			for j := range ap.Sels {
				ap.Sels[j] = ir.APSel{
					Kind:  ir.SelKind(p.dec.u()),
					Field: p.str(),
					Index: p.operand(),
					Type:  p.typ(),
				}
			}
		}
		p.aps = append(p.aps, ap)
		if p.err != nil {
			return prog, noBodies
		}
	}

	// Bodies: slice each procedure's length-prefixed chunk, then decode
	// the chunks concurrently. Every table a body references (strings,
	// variables, access paths, the universe) is complete and read-only
	// by now, and each worker writes only its own procedure, so the
	// result is identical whatever the worker count. The remaining
	// sections sit after the chunks, so the caller keeps decoding them
	// (and re-interns the AP table) while the workers run; join settles
	// the bodies.
	chunks := make([][]byte, len(p.procs))
	for i := range p.procs {
		n := p.count("procedure body")
		if p.err != nil {
			return prog, noBodies
		}
		chunks[i] = p.data[p.pos : p.pos+n]
		p.pos += n
	}
	errs := make([]error, len(p.procs))
	// Leave one P for the caller, which decodes the remaining sections
	// and re-interns the path table while the workers run; a full
	// complement would starve it and serialize the overlap away.
	workers := runtime.GOMAXPROCS(0) - 1
	if workers > len(p.procs) {
		workers = len(p.procs)
	}
	var wg sync.WaitGroup
	if workers <= 1 {
		for i, proc := range p.procs {
			errs[i] = decodeBody(chunks[i], p.strs, p.u, p.vars, p.aps, proc)
		}
	} else {
		var next atomic.Int64
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(p.procs) {
						return
					}
					errs[i] = decodeBody(chunks[i], p.strs, p.u, p.vars, p.aps, p.procs[i])
				}
			}()
		}
	}
	join := func() error {
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	if mi := p.dec.u(); mi != 0 {
		if mi-1 >= uint64(len(p.procs)) {
			p.fail("main procedure index %d out of range", mi-1)
		} else {
			prog.Main = p.procs[mi-1]
		}
	}

	nFields := p.count("address-taken field")
	for i := 0; i < nFields; i++ {
		tid := p.dec.u()
		field := p.str()
		if tid >= uint64(p.u.NumTypes()) {
			p.fail("address-taken field owner type %d out of range", tid)
			break
		}
		prog.AddressTakenFields[ir.FieldKey{TypeID: int(tid), Field: field}] = true
	}
	nElems := p.count("address-taken element type")
	for i := 0; i < nElems; i++ {
		tid := p.dec.u()
		if tid >= uint64(p.u.NumTypes()) {
			p.fail("address-taken element type %d out of range", tid)
			break
		}
		prog.AddressTakenElems[int(tid)] = true
	}
	nVars := p.count("address-taken variable")
	for i := 0; i < nVars; i++ {
		ix := p.dec.u()
		if ix >= uint64(len(p.vars)) {
			p.fail("address-taken variable %d out of range", ix)
			break
		}
		prog.AddressTakenVars[p.vars[ix]] = true
	}
	nMerges := p.count("merge")
	for i := 0; i < nMerges; i++ {
		prog.Merges = append(prog.Merges, ir.Merge{Dst: p.typ(), Src: p.typ()})
	}
	nByRef := p.count("by-ref formal type")
	for i := 0; i < nByRef; i++ {
		tid := p.dec.u()
		if tid >= uint64(p.u.NumTypes()) {
			p.fail("by-ref formal type %d out of range", tid)
			break
		}
		prog.ByRefFormalTypes[int(tid)] = true
	}
	return prog, join
}

// decodeBody decodes one procedure's body chunk into proc: blocks,
// instructions, and the entry reference. The shared tables are read
// only; the chunk must be consumed exactly.
func decodeBody(chunk []byte, strs []string, u *types.Universe, vars []*ir.Var, aps []*ir.AP, proc *ir.Proc) error {
	w := &progDec{
		dec:  &dec{data: chunk, strs: strs},
		u:    u,
		vars: vars,
		aps:  aps,
	}
	nInstrs := w.count("instruction total")
	nOps := w.count("operand total")
	islab := make([]ir.Instr, nInstrs)
	w.ops = make([]ir.Operand, nOps)
	nBlocks := w.count("block")
	bslab := make([]ir.Block, nBlocks)
	for j := 0; j < nBlocks; j++ {
		bslab[j].ID = int(w.i())
		bslab[j].Name = w.str()
		proc.Blocks = append(proc.Blocks, &bslab[j])
	}
	for _, b := range proc.Blocks {
		n := w.count("instruction")
		if w.err != nil {
			return w.err
		}
		if n > len(islab) {
			w.fail("procedure %s blocks carry more instructions than the declared total", proc.Name)
			return w.err
		}
		// Full slice expressions: an append through one block's slice
		// must never bleed into its neighbor's slab region.
		b.Instrs, islab = islab[:n:n], islab[n:]
		for k := range b.Instrs {
			w.instr(&b.Instrs[k], proc.Blocks)
		}
	}
	if ei := w.dec.u(); ei != 0 {
		if ei-1 >= uint64(len(proc.Blocks)) {
			w.fail("procedure %s entry block %d out of range", proc.Name, ei-1)
		} else {
			proc.Entry = proc.Blocks[ei-1]
		}
	}
	if w.err == nil && w.pos != len(w.data) {
		w.fail("%d trailing bytes in procedure %s body", len(w.data)-w.pos, proc.Name)
	}
	if w.err != nil {
		return w.err
	}
	proc.ComputeCFGEdges()
	return nil
}

func (p *progDec) blockRef(blocks []*ir.Block) *ir.Block {
	ix := p.dec.u()
	if p.err != nil || ix == 0 {
		return nil
	}
	if ix-1 >= uint64(len(blocks)) {
		p.fail("block reference %d out of range", ix-1)
		return nil
	}
	return blocks[ix-1]
}

// instr decodes one instruction: the opcode, the field-presence mask,
// then only the fields the mask declares. The caller's zeroed
// instruction slab already holds every absent field's value.
func (p *progDec) instr(in *ir.Instr, blocks []*ir.Block) {
	in.Op = ir.Op(p.dec.u())
	mask := p.dec.u()
	if mask&^uint64(imAll) != 0 {
		p.fail("unknown instruction field mask %#x", mask)
		return
	}
	if mask&imPos != 0 {
		in.Pos.File = p.str()
		in.Pos.Line = int(p.dec.u())
		in.Pos.Col = int(p.dec.u())
	}
	if mask&imDst != 0 {
		in.Dst = ir.Reg(p.i())
	}
	if mask&imArgs != 0 {
		nArgs := p.count("argument")
		if nArgs > len(p.ops) {
			p.fail("instruction arguments exceed the procedure's declared operand total")
			return
		}
		if nArgs > 0 {
			in.Args, p.ops = p.ops[:nArgs:nArgs], p.ops[nArgs:]
			for i := range in.Args {
				in.Args[i] = p.operand()
			}
		}
	}
	if mask&imBinOp != 0 {
		in.BinOp = ir.BinOp(p.dec.u())
	}
	if mask&imUnOp != 0 {
		in.UnOp = ir.UnOp(p.dec.u())
	}
	if mask&imVar != 0 {
		in.Var = p.varRef()
	}
	if mask&imField != 0 {
		in.Field = p.str()
	}
	if mask&imBase != 0 {
		in.Base = p.operand()
	}
	if mask&imSel != 0 {
		in.Sel.Kind = ir.SelKind(p.dec.u())
		in.Sel.Field = p.str()
		in.Sel.Index = p.operand()
	}
	if mask&imAP != 0 {
		if ix := p.dec.u(); ix != 0 {
			if ix-1 >= uint64(len(p.aps)) {
				p.fail("access-path reference %d out of range", ix-1)
			} else {
				in.AP = p.aps[ix-1]
			}
		}
	}
	if mask&imType != 0 {
		in.Type = p.typ()
	}
	if mask&imCallee != 0 {
		in.Callee = p.str()
	}
	if mask&imMethod != 0 {
		in.Method = p.str()
	}
	if mask&imRecvType != 0 {
		in.RecvType = p.obj()
	}
	if mask&imByRef != 0 {
		nByRef := p.count("by-ref flag")
		if nByRef > 0 {
			in.ByRef = make([]bool, nByRef)
			for i := range in.ByRef {
				in.ByRef[i] = p.b()
			}
		}
	}
	if mask&imBuiltin != 0 {
		in.Builtin = ir.Builtin(p.dec.u())
	}
	if mask&imSpeculative != 0 {
		in.Speculative = p.b()
	}
	if mask&imTarget != 0 {
		in.Target = p.blockRef(blocks)
	}
	if mask&imThen != 0 {
		in.Then = p.blockRef(blocks)
	}
	if mask&imElse != 0 {
		in.Else = p.blockRef(blocks)
	}
}

func (p *progDec) aliasSection() (*alias.Snapshot, int, uint64) {
	apCount := int(p.dec.u())
	if p.err == nil && p.pos+8 > len(p.data) {
		p.fail("truncated intern-table digest")
	}
	var digest uint64
	if p.err == nil {
		digest = binary.LittleEndian.Uint64(p.data[p.pos:])
		p.pos += 8
	}
	snap := &alias.Snapshot{}
	nRows := p.count("TypeRefs row")
	if nRows > 0 {
		snap.TypeRefs = make([]types.Bitset, nRows)
		for i := range snap.TypeRefs {
			if p.b() {
				snap.TypeRefs[i] = types.Bitset(p.words("TypeRefs word"))
				if snap.TypeRefs[i] == nil {
					snap.TypeRefs[i] = types.Bitset{}
				}
			}
		}
	}
	snap.Cls = p.int32s("class table")
	nCompat := p.count("compat row")
	if nCompat > 0 {
		snap.Compat = make([]types.Bitset, nCompat)
		for i := range snap.Compat {
			snap.Compat[i] = types.Bitset(p.words("compat word"))
		}
	}
	snap.RepIIDs = p.int32s("class representative")
	return snap, apCount, digest
}

func (p *progDec) modrefSection() *modref.Snapshot {
	if !p.b() {
		return nil
	}
	snap := &modref.Snapshot{
		RTA:       p.b(),
		OpenWorld: p.b(),
		ShapeIIDs: p.int32s("shape"),
	}
	nEffects := p.count("summary")
	if nEffects > 0 {
		snap.Effects = make([]modref.EffectsSnap, nEffects)
		for i := range snap.Effects {
			snap.Effects[i] = modref.EffectsSnap{
				Mods:              p.int32s("mod shape"),
				Refs:              p.int32s("ref shape"),
				ModGlobals:        p.int32s("rebound global"),
				WritesThroughLocs: p.b(),
				Top:               p.b(),
			}
		}
	}
	snap.ByProc = p.int32s("summary binding")
	nCallees := p.count("callee list")
	if nCallees > 0 {
		snap.Callees = make([][]int32, nCallees)
		for i := range snap.Callees {
			snap.Callees[i] = p.int32s("callee")
		}
	}
	snap.HasInst = p.b()
	if snap.HasInst {
		snap.Inst = p.words("instantiated-set word")
	}
	snap.HasReachable = p.b()
	if snap.HasReachable {
		snap.Reachable = p.int32s("reachable procedure")
	}
	snap.HasReturnsFresh = p.b()
	if snap.HasReturnsFresh {
		snap.ReturnsFresh = p.int32s("fresh-returning procedure")
	}
	return snap
}

// Sort helpers shared with the encoder.

func sortFieldKeys(keys []ir.FieldKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].TypeID != keys[j].TypeID {
			return keys[i].TypeID < keys[j].TypeID
		}
		return keys[i].Field < keys[j].Field
	})
}

func sortedIntKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k, v := range m {
		if v {
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}

func sortUint64s(v []uint64) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}
