package artifact

import (
	"errors"
	"io/fs"
	"os"
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/driver"
	"tbaa/internal/fault"
	"tbaa/internal/randprog"
)

// TestInjectedWriteFaults pins the two write-side failure modes: a
// rename failure surfaces as a Write error with nothing installed, and
// a short write installs a torn artifact that Load detects and reports
// as invalid (not as a miss, and never as a wrong decode).
func TestInjectedWriteFaults(t *testing.T) {
	src := randprog.Generate(71100, randprog.DefaultConfig())
	opts := alias.Options{Level: alias.LevelSMFieldTypeRefs}
	key := Key{ModuleHash: "h", Level: int(opts.Level)}

	t.Run("rename failure", func(t *testing.T) {
		dir := t.TempDir()
		in, err := fault.NewInjector(1, fault.Rule{Point: fault.ArtifactRenameFail, Count: 1})
		if err != nil {
			t.Fatal(err)
		}
		prev := fault.Configure(in)
		defer fault.Configure(prev)
		prog, _, err := driver.Compile("m.m3", src)
		if err != nil {
			t.Fatal(err)
		}
		a := alias.New(prog, opts)
		if err := Write(dir, key, prog, a.Index(), a.Snapshot(), nil); err == nil {
			t.Fatal("injected rename failure did not surface from Write")
		}
		if _, err := Load(dir, key, prog.Universe); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("failed install left something loadable: %v", err)
		}
		// The temp file must not linger either.
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 0 {
			t.Fatalf("failed install left %d files behind", len(ents))
		}
		// With the budget spent, the same Write succeeds.
		if err := Write(dir, key, prog, a.Index(), a.Snapshot(), nil); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir, key, prog.Universe); err != nil {
			t.Fatalf("post-fault write did not load: %v", err)
		}
	})

	t.Run("short write", func(t *testing.T) {
		dir := t.TempDir()
		in, err := fault.NewInjector(2, fault.Rule{Point: fault.ArtifactShortWrite, Count: 1})
		if err != nil {
			t.Fatal(err)
		}
		prev := fault.Configure(in)
		defer fault.Configure(prev)
		buildAndWrite(t, dir, src, opts, key)
		if got := fault.Fires(fault.ArtifactShortWrite); got != 1 {
			t.Fatalf("short-write point fired %d times, want 1", got)
		}
		prog, _, err := driver.Compile("m.m3", src)
		if err != nil {
			t.Fatal(err)
		}
		_, err = Load(dir, key, prog.Universe)
		if err == nil {
			t.Fatal("torn artifact loaded cleanly")
		}
		if errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("torn artifact reported as a miss: %v", err)
		}
	})
}

// TestInjectedBitFlips flips one deterministic-random bit per load over
// many loads and requires every corrupted read to surface as an invalid
// artifact: CRC-32C catches all single-bit payload errors, and each
// header field is validated individually.
func TestInjectedBitFlips(t *testing.T) {
	dir := t.TempDir()
	src := randprog.Generate(71101, randprog.DefaultConfig())
	opts := alias.Options{Level: alias.LevelSMFieldTypeRefs}
	key := Key{ModuleHash: "h", Level: int(opts.Level)}
	buildAndWrite(t, dir, src, opts, key)
	prog, _, err := driver.Compile("m.m3", src)
	if err != nil {
		t.Fatal(err)
	}

	in, err := fault.NewInjector(3, fault.Rule{Point: fault.ArtifactBitFlip})
	if err != nil {
		t.Fatal(err)
	}
	prev := fault.Configure(in)
	defer fault.Configure(prev)
	for i := 0; i < 64; i++ {
		if _, err := Load(dir, key, prog.Universe); err == nil {
			t.Fatalf("load %d: single-bit flip went undetected", i)
		} else if errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("load %d: corruption reported as a miss: %v", i, err)
		}
	}
	// Disarmed, the untouched on-disk artifact still loads: the flips
	// were applied to the read buffer, never written back.
	fault.Configure(nil)
	if _, err := Load(dir, key, prog.Universe); err != nil {
		t.Fatalf("artifact corrupted on disk by read-side flips: %v", err)
	}
}
