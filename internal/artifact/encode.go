package artifact

import (
	"encoding/binary"
	"fmt"

	"tbaa/internal/alias"
	"tbaa/internal/ir"
	"tbaa/internal/modref"
	"tbaa/internal/token"
	"tbaa/internal/types"
)

// The payload is a string intern table followed by three sections:
// program, alias, mod-ref (optional). Integers are uvarints (zigzag for
// signed), strings are table references, types are universe IDs shifted
// by one so 0 means nil, variables are positions in one flat table
// (globals, then each procedure's params and locals in program order),
// access paths are positions in one pointer-deduplicated table built in
// the same Procs → Blocks → Instrs first-visit order the decoder
// replays — so decoding reproduces the exact sharing structure, which
// is what makes re-interning reproduce the identities.
//
// Instructions carry a field-presence mask: a bit is set iff the field
// deviates from its zero value, and only set fields are encoded. A
// typical instruction populates a handful of ir.Instr's ~20 fields, so
// the mask cuts both the payload size and the decode work severalfold —
// the decoder's zeroed instruction slab already holds every absent
// field's value.

// Instruction field-presence bits, in ir.Instr field order (Op is
// unconditional and precedes the mask).
const (
	imPos uint64 = 1 << iota
	imDst
	imArgs
	imBinOp
	imUnOp
	imVar
	imField
	imBase
	imSel
	imAP
	imType
	imCallee
	imMethod
	imRecvType
	imByRef
	imBuiltin
	imSpeculative
	imTarget
	imThen
	imElse

	imAll = 1<<iota - 1
)

type enc struct {
	buf     []byte
	strIdx  map[string]uint64
	strs    []string
	varIdx  map[*ir.Var]uint64
	apIdx   map[*ir.AP]uint64
	apList  []*ir.AP
	procIdx map[*ir.Proc]uint64
	err     error
}

func (e *enc) u(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *enc) i(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

func (e *enc) b(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

func (e *enc) str(s string) {
	ix, ok := e.strIdx[s]
	if !ok {
		ix = uint64(len(e.strs))
		e.strIdx[s] = ix
		e.strs = append(e.strs, s)
	}
	e.u(ix)
}

func (e *enc) typ(t types.Type) {
	if t == nil {
		e.u(0)
		return
	}
	e.u(uint64(t.ID()) + 1)
}

func (e *enc) obj(o *types.Object) {
	if o == nil {
		e.u(0)
		return
	}
	e.u(uint64(o.ID()) + 1)
}

func (e *enc) varRef(v *ir.Var) {
	if v == nil {
		e.u(0)
		return
	}
	ix, ok := e.varIdx[v]
	if !ok {
		e.fail("variable %s is not in the program's variable tables", v.Name)
		return
	}
	e.u(ix + 1)
}

func (e *enc) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("artifact: "+format, args...)
	}
}

func encodePayload(prog *ir.Program, idx *ir.APIndex, aliasSnap *alias.Snapshot, mrSnap *modref.Snapshot) ([]byte, error) {
	e := &enc{
		strIdx:  make(map[string]uint64),
		varIdx:  make(map[*ir.Var]uint64),
		apIdx:   make(map[*ir.AP]uint64),
		procIdx: make(map[*ir.Proc]uint64),
	}
	e.encodeProgram(prog)
	e.encodeAlias(idx, aliasSnap)
	e.encodeModRef(mrSnap)
	if e.err != nil {
		return nil, e.err
	}
	body := e.buf
	// String table first so the decoder can resolve references in one
	// pass, then the sections.
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(e.strs)))
	for _, s := range e.strs {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	out = append(out, body...)
	return out, nil
}

// encodeProgram emits the program section into e.buf. Side effect:
// fills varIdx, apIdx, procIdx for later sections.
func (e *enc) encodeProgram(prog *ir.Program) {
	e.u(uint64(prog.Universe.NumTypes()))
	e.str(prog.Name)

	// Signatures first: this walk defines the flat variable index.
	e.u(uint64(len(prog.Globals)))
	for _, v := range prog.Globals {
		e.varDef(v)
	}
	e.u(uint64(len(prog.Procs)))
	for i, p := range prog.Procs {
		e.procIdx[p] = uint64(i)
		e.str(p.Name)
		e.obj(p.MethodOf)
		e.typ(p.Result)
		e.i(int64(p.NumRegs))
		e.u(uint64(len(p.Params)))
		for _, v := range p.Params {
			e.varDef(v)
		}
		e.u(uint64(len(p.Locals)))
		for _, v := range p.Locals {
			e.varDef(v)
		}
	}

	// The access-path table, deduplicated by pointer in first-visit
	// order. Content-equal but pointer-distinct paths stay distinct:
	// intern() hands them distinct identities, and the decoded program
	// must reproduce that.
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			for ii := range b.Instrs {
				if ap := b.Instrs[ii].AP; ap != nil {
					if _, ok := e.apIdx[ap]; !ok {
						e.apIdx[ap] = uint64(len(e.apList))
						e.apList = append(e.apList, ap)
					}
				}
			}
		}
	}
	e.u(uint64(len(e.apList)))
	for _, ap := range e.apList {
		e.varRef(ap.Root)
		e.u(uint64(len(ap.Sels)))
		for si := range ap.Sels {
			s := &ap.Sels[si]
			e.u(uint64(s.Kind))
			e.str(s.Field)
			e.operand(s.Index)
			e.typ(s.Type)
		}
	}

	// Bodies, one length-prefixed chunk per procedure. A body references
	// only tables that precede it (strings, variables, access paths), so
	// the decoder fans the chunks out across workers — instruction
	// bodies are the bulk of a large artifact, and their decode wall
	// time is most of what a warm start costs.
	var scratch []byte
	for _, p := range prog.Procs {
		saved := e.buf
		e.buf = scratch[:0]
		e.procBody(p)
		body := e.buf
		e.buf = saved
		e.u(uint64(len(body)))
		e.buf = append(e.buf, body...)
		scratch = body
	}
	if prog.Main == nil {
		e.u(0)
	} else if mi, ok := e.procIdx[prog.Main]; ok {
		e.u(mi + 1)
	} else {
		e.fail("main procedure %s is not in the procedure list", prog.Main.Name)
	}

	// Whole-program fact tables, in deterministic order.
	fields := make([]ir.FieldKey, 0, len(prog.AddressTakenFields))
	for k, v := range prog.AddressTakenFields {
		if v {
			fields = append(fields, k)
		}
	}
	sortFieldKeys(fields)
	e.u(uint64(len(fields)))
	for _, k := range fields {
		e.u(uint64(k.TypeID))
		e.str(k.Field)
	}
	elems := sortedIntKeys(prog.AddressTakenElems)
	e.u(uint64(len(elems)))
	for _, id := range elems {
		e.u(uint64(id))
	}
	atVars := make([]uint64, 0, len(prog.AddressTakenVars))
	for v, taken := range prog.AddressTakenVars {
		if !taken {
			continue
		}
		ix, ok := e.varIdx[v]
		if !ok {
			e.fail("address-taken variable %s is not in the program's variable tables", v.Name)
			continue
		}
		atVars = append(atVars, ix)
	}
	sortUint64s(atVars)
	e.u(uint64(len(atVars)))
	for _, ix := range atVars {
		e.u(ix)
	}
	e.u(uint64(len(prog.Merges)))
	for _, m := range prog.Merges {
		e.typ(m.Dst)
		e.typ(m.Src)
	}
	byRef := sortedIntKeys(prog.ByRefFormalTypes)
	e.u(uint64(len(byRef)))
	for _, id := range byRef {
		e.u(uint64(id))
	}
}

// procBody emits one procedure's blocks, instructions, and entry
// reference — the per-procedure chunk the decoder can process
// independently of every other body.
func (e *enc) procBody(p *ir.Proc) {
	// Totals first, so the decoder can carve the procedure's
	// instructions and operands out of two slab allocations instead of
	// one per block and one per call.
	var nInstrs, nOps uint64
	for _, b := range p.Blocks {
		nInstrs += uint64(len(b.Instrs))
		for ii := range b.Instrs {
			nOps += uint64(len(b.Instrs[ii].Args))
		}
	}
	e.u(nInstrs)
	e.u(nOps)
	e.u(uint64(len(p.Blocks)))
	blockIdx := make(map[*ir.Block]uint64, len(p.Blocks))
	for bi, b := range p.Blocks {
		blockIdx[b] = uint64(bi)
		e.i(int64(b.ID))
		e.str(b.Name)
	}
	for _, b := range p.Blocks {
		e.u(uint64(len(b.Instrs)))
		for ii := range b.Instrs {
			e.instr(&b.Instrs[ii], blockIdx)
		}
	}
	entry, ok := blockIdx[p.Entry]
	if p.Entry != nil && !ok {
		e.fail("procedure %s has an entry block outside its block list", p.Name)
	}
	if p.Entry == nil {
		e.u(0)
	} else {
		e.u(entry + 1)
	}
}

func (e *enc) varDef(v *ir.Var) {
	if _, dup := e.varIdx[v]; dup {
		e.fail("variable %s appears in two variable tables", v.Name)
	}
	e.varIdx[v] = uint64(len(e.varIdx))
	e.str(v.Name)
	e.typ(v.Type)
	e.u(uint64(v.Kind))
	e.b(v.ByRef)
	e.i(int64(v.Slot))
}

func (e *enc) operand(op ir.Operand) {
	e.u(uint64(op.Kind))
	switch op.Kind {
	case ir.NoOperand:
	case ir.ConstOp:
		e.u(uint64(op.Const.Kind))
		e.i(op.Const.Int)
		e.str(op.Const.Text)
	case ir.RegOp:
		e.i(int64(op.Reg))
	case ir.VarOp:
		e.varRef(op.Var)
	default:
		e.fail("unknown operand kind %d", op.Kind)
	}
}

func (e *enc) blockRef(b *ir.Block, blockIdx map[*ir.Block]uint64) {
	if b == nil {
		e.u(0)
		return
	}
	ix, ok := blockIdx[b]
	if !ok {
		e.fail("branch targets a block outside its procedure")
		return
	}
	e.u(ix + 1)
}

func (e *enc) instr(in *ir.Instr, blockIdx map[*ir.Block]uint64) {
	var mask uint64
	if in.Pos != (token.Pos{}) {
		mask |= imPos
	}
	if in.Dst != 0 {
		mask |= imDst
	}
	if len(in.Args) > 0 {
		mask |= imArgs
	}
	if in.BinOp != 0 {
		mask |= imBinOp
	}
	if in.UnOp != 0 {
		mask |= imUnOp
	}
	if in.Var != nil {
		mask |= imVar
	}
	if in.Field != "" {
		mask |= imField
	}
	if in.Base != (ir.Operand{}) {
		mask |= imBase
	}
	if in.Sel != (ir.Sel{}) {
		mask |= imSel
	}
	if in.AP != nil {
		mask |= imAP
	}
	if in.Type != nil {
		mask |= imType
	}
	if in.Callee != "" {
		mask |= imCallee
	}
	if in.Method != "" {
		mask |= imMethod
	}
	if in.RecvType != nil {
		mask |= imRecvType
	}
	if len(in.ByRef) > 0 {
		mask |= imByRef
	}
	if in.Builtin != 0 {
		mask |= imBuiltin
	}
	if in.Speculative {
		mask |= imSpeculative
	}
	if in.Target != nil {
		mask |= imTarget
	}
	if in.Then != nil {
		mask |= imThen
	}
	if in.Else != nil {
		mask |= imElse
	}
	e.u(uint64(in.Op))
	e.u(mask)
	if mask&imPos != 0 {
		e.str(in.Pos.File)
		e.u(uint64(in.Pos.Line))
		e.u(uint64(in.Pos.Col))
	}
	if mask&imDst != 0 {
		e.i(int64(in.Dst))
	}
	if mask&imArgs != 0 {
		e.u(uint64(len(in.Args)))
		for _, a := range in.Args {
			e.operand(a)
		}
	}
	if mask&imBinOp != 0 {
		e.u(uint64(in.BinOp))
	}
	if mask&imUnOp != 0 {
		e.u(uint64(in.UnOp))
	}
	if mask&imVar != 0 {
		e.varRef(in.Var)
	}
	if mask&imField != 0 {
		e.str(in.Field)
	}
	if mask&imBase != 0 {
		e.operand(in.Base)
	}
	if mask&imSel != 0 {
		e.u(uint64(in.Sel.Kind))
		e.str(in.Sel.Field)
		e.operand(in.Sel.Index)
	}
	if mask&imAP != 0 {
		if ix, ok := e.apIdx[in.AP]; ok {
			e.u(ix + 1)
		} else {
			e.fail("instruction access path missing from the path table")
		}
	}
	if mask&imType != 0 {
		e.typ(in.Type)
	}
	if mask&imCallee != 0 {
		e.str(in.Callee)
	}
	if mask&imMethod != 0 {
		e.str(in.Method)
	}
	if mask&imRecvType != 0 {
		e.obj(in.RecvType)
	}
	if mask&imByRef != 0 {
		e.u(uint64(len(in.ByRef)))
		for _, br := range in.ByRef {
			e.b(br)
		}
	}
	if mask&imBuiltin != 0 {
		e.u(uint64(in.Builtin))
	}
	if mask&imSpeculative != 0 {
		e.b(in.Speculative)
	}
	if mask&imTarget != 0 {
		e.blockRef(in.Target, blockIdx)
	}
	if mask&imThen != 0 {
		e.blockRef(in.Then, blockIdx)
	}
	if mask&imElse != 0 {
		e.blockRef(in.Else, blockIdx)
	}
}

func (e *enc) encodeAlias(idx *ir.APIndex, snap *alias.Snapshot) {
	e.u(uint64(idx.Len()))
	var d8 [8]byte
	binary.LittleEndian.PutUint64(d8[:], indexDigest(idx))
	e.buf = append(e.buf, d8[:]...)
	e.u(uint64(len(snap.TypeRefs)))
	for _, row := range snap.TypeRefs {
		if row == nil {
			e.b(false)
			continue
		}
		e.b(true)
		e.bitset(row)
	}
	e.u(uint64(len(snap.Cls)))
	for _, c := range snap.Cls {
		e.i(int64(c))
	}
	e.u(uint64(len(snap.Compat)))
	for _, row := range snap.Compat {
		e.bitset(row)
	}
	e.int32s(snap.RepIIDs)
}

func (e *enc) bitset(bs types.Bitset) {
	e.u(uint64(len(bs)))
	for _, w := range bs {
		e.u(w)
	}
}

func (e *enc) encodeModRef(snap *modref.Snapshot) {
	if snap == nil {
		e.b(false)
		return
	}
	e.b(true)
	e.b(snap.RTA)
	e.b(snap.OpenWorld)
	e.int32s(snap.ShapeIIDs)
	e.u(uint64(len(snap.Effects)))
	for i := range snap.Effects {
		es := &snap.Effects[i]
		e.int32s(es.Mods)
		e.int32s(es.Refs)
		e.int32s(es.ModGlobals)
		e.b(es.WritesThroughLocs)
		e.b(es.Top)
	}
	e.int32s(snap.ByProc)
	e.u(uint64(len(snap.Callees)))
	for _, cs := range snap.Callees {
		e.int32s(cs)
	}
	e.b(snap.HasInst)
	if snap.HasInst {
		e.u(uint64(len(snap.Inst)))
		for _, w := range snap.Inst {
			e.u(w)
		}
	}
	e.b(snap.HasReachable)
	if snap.HasReachable {
		e.int32s(snap.Reachable)
	}
	e.b(snap.HasReturnsFresh)
	if snap.HasReturnsFresh {
		e.int32s(snap.ReturnsFresh)
	}
}

func (e *enc) int32s(v []int32) {
	e.u(uint64(len(v)))
	for _, x := range v {
		e.i(int64(x))
	}
}
