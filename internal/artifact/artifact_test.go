package artifact

import (
	"errors"
	"io/fs"
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/driver"
	"tbaa/internal/ir"
	"tbaa/internal/modref"
	"tbaa/internal/randprog"
)

// buildAndWrite lowers src fresh, builds the analyses for opts, writes
// the artifact, and returns the pieces for comparison.
func buildAndWrite(t *testing.T, dir string, src string, opts alias.Options, key Key) (*ir.Program, *alias.Analysis) {
	t.Helper()
	prog, _, err := driver.Compile("m.m3", src)
	if err != nil {
		t.Fatal(err)
	}
	a := alias.New(prog, opts)
	snap := a.Snapshot()
	if snap == nil {
		t.Fatal("analysis refused to snapshot")
	}
	var mrSnap *modref.Snapshot
	if opts.Normalize().Interprocedural {
		mr := modref.ComputeWith(prog, modref.Config{RTA: true, OpenWorld: opts.OpenWorld})
		if mrSnap = mr.Snapshot(); mrSnap == nil {
			t.Fatal("summaries refused to snapshot")
		}
	}
	if err := Write(dir, key, prog, a.Index(), snap, mrSnap); err != nil {
		t.Fatal(err)
	}
	return prog, a
}

// TestRoundTripBasic pins the low-level encode/decode invariants the
// package-level differential tests build on: the decoded program
// re-interns to the recorded table, the decoded snapshot passes the
// alias constructor's validation, and verdicts agree path by path.
func TestRoundTripBasic(t *testing.T) {
	for seed := int64(71000); seed < 71006; seed++ {
		src := randprog.Generate(seed, randprog.DefaultConfig())
		for _, opts := range []alias.Options{
			{Level: alias.LevelTypeDecl},
			{Level: alias.LevelSMFieldTypeRefs, OpenWorld: true},
			{Level: alias.LevelIPTypeRefs},
		} {
			dir := t.TempDir()
			key := Key{ModuleHash: "h", Level: int(opts.Level), Open: opts.OpenWorld}
			prog, a := buildAndWrite(t, dir, src, opts, key)

			prog2, _, err := driver.Compile("m.m3", src)
			if err != nil {
				t.Fatal(err)
			}
			snap, err := Load(dir, key, prog2.Universe)
			if err != nil {
				t.Fatalf("seed %d opts %+v: load: %v", seed, opts, err)
			}
			b, err := alias.NewFromSnapshot(snap.Prog, opts, snap.Index, snap.Alias)
			if err != nil {
				t.Fatalf("seed %d opts %+v: rebuild: %v", seed, opts, err)
			}
			refs := alias.References(prog)
			refs2 := alias.References(snap.Prog)
			if len(refs) != len(refs2) {
				t.Fatalf("seed %d: %d references decoded as %d", seed, len(refs), len(refs2))
			}
			n := len(refs)
			if n > 60 {
				n = 60
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if w, g := a.MayAlias(refs[i].AP, refs[j].AP), b.MayAlias(refs2[i].AP, refs2[j].AP); w != g {
						t.Fatalf("seed %d opts %+v: verdict (%s, %s): fresh %v, decoded %v",
							seed, opts, refs[i].AP, refs[j].AP, w, g)
					}
				}
			}
			if opts.Normalize().Interprocedural {
				if snap.ModRef == nil {
					t.Fatalf("seed %d: interprocedural artifact lost its mod-ref section", seed)
				}
				if _, err := modref.FromSnapshot(snap.Prog, modref.Config{RTA: true, OpenWorld: opts.OpenWorld}, snap.Index, snap.ModRef); err != nil {
					t.Fatalf("seed %d: mod-ref rebuild: %v", seed, err)
				}
			}
		}
	}
}

// TestLoadMissIsNotExist pins the miss/invalid split Load's callers
// dispatch on.
func TestLoadMissIsNotExist(t *testing.T) {
	prog, _, err := driver.Compile("m.m3", randprog.Generate(1, randprog.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(t.TempDir(), Key{ModuleHash: "absent"}, prog.Universe)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing artifact: %v, want fs.ErrNotExist", err)
	}
}
