package sema

import (
	"fmt"

	"tbaa/internal/ast"
	"tbaa/internal/token"
	"tbaa/internal/types"
)

// Check type-checks a parsed module.
func Check(m *ast.Module) (*Program, error) {
	c := newChecker(m)
	c.collectTypes()
	c.collectGlobals()
	c.pushScope() // global scope, never popped
	for _, g := range c.prog.Globals {
		c.declare(g, m.NamePos)
	}
	c.collectProcs()
	c.bindMethods()
	c.checkProcBodies()
	c.checkModuleBody()
	if len(c.errs) > 0 {
		return c.prog, c.errs
	}
	return c.prog, nil
}

type checker struct {
	prog *checkerProg
	errs ErrorList

	u         *types.Universe
	typeNames map[string]types.Type
	consts    map[string]*ConstSym
	scopes    []map[string]*VarSym
	curProc   *Procedure
	loopDepth int
}

// checkerProg aliases Program to keep field access short.
type checkerProg = Program

func newChecker(m *ast.Module) *checker {
	u := types.NewUniverse()
	p := &Program{
		Module:     m,
		Universe:   u,
		ProcByName: make(map[string]*Procedure),
		TypeOf:     make(map[ast.Expr]types.Type),
		SymOf:      make(map[*ast.Ident]*VarSym),
		ConstOf:    make(map[*ast.Ident]*ConstSym),
		Calls:      make(map[*ast.CallExpr]*CallInfo),
		ForSyms:    make(map[*ast.ForStmt]*VarSym),
		WithSyms:   make(map[*ast.WithStmt]*VarSym),
		typeNames:  make(map[string]types.Type),
	}
	c := &checker{prog: p, u: u, typeNames: p.typeNames,
		consts: make(map[string]*ConstSym)}
	c.typeNames["INTEGER"] = u.IntT
	c.typeNames["BOOLEAN"] = u.BoolT
	c.typeNames["CHAR"] = u.CharT
	c.typeNames["TEXT"] = u.TextT
	return c
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	if len(c.errs) < 50 {
		c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

// ---------------------------------------------------------------------------
// Declaration collection

// collectTypes resolves all TYPE declarations. Object types may refer to
// themselves and to later declarations, so we pre-declare object names,
// then resolve bodies.
func (c *checker) collectTypes() {
	// Pass 1: create Object shells for object-typed declarations so that
	// recursive references (e.g. T = OBJECT next: T END) resolve.
	for _, d := range c.prog.Module.Decls {
		td, ok := d.(*ast.TypeDecl)
		if !ok {
			continue
		}
		if _, exists := c.typeNames[td.Name]; exists {
			c.errorf(td.NamePos, "type %s redeclared", td.Name)
			continue
		}
		if ot, ok := td.Type.(*ast.ObjectType); ok {
			obj := c.u.NewObject(td.Name, nil, ot.Branded, ot.Brand)
			c.typeNames[td.Name] = obj
		}
	}
	// Pass 2: resolve everything (supertypes, fields, non-object types).
	for _, d := range c.prog.Module.Decls {
		td, ok := d.(*ast.TypeDecl)
		if !ok {
			continue
		}
		if ot, ok := td.Type.(*ast.ObjectType); ok {
			obj, _ := c.typeNames[td.Name].(*types.Object)
			if obj == nil {
				continue
			}
			c.resolveObject(obj, ot)
			continue
		}
		t := c.resolveType(td.Type)
		if prev, exists := c.typeNames[td.Name]; exists && prev != t {
			continue // redeclaration already reported
		}
		// Propagate the declared name onto anonymous types for diagnostics.
		switch t := t.(type) {
		case *types.Array:
			if t.Name == "" {
				t.Name = td.Name
			}
		case *types.Ref:
			if t.Name == "" {
				t.Name = td.Name
			}
		case *types.Record:
			if t.Name == "" {
				t.Name = td.Name
			}
		}
		c.typeNames[td.Name] = t
	}
	// Pass 3: detect supertype cycles.
	for _, o := range c.u.ObjectTypes() {
		seen := map[*types.Object]bool{}
		for t := o; t != nil; t = t.Super {
			if seen[t] {
				c.errorf(token.Pos{Line: 1, Col: 1}, "object type cycle through %s", o.Name)
				o.Super = nil
				break
			}
			seen[t] = true
		}
	}
}

func (c *checker) resolveObject(obj *types.Object, ot *ast.ObjectType) {
	if ot.Super != "" {
		st, ok := c.typeNames[ot.Super]
		if !ok {
			c.errorf(ot.ObjPos, "undefined supertype %s", ot.Super)
		} else if so, ok := st.(*types.Object); ok {
			obj.Super = so
			// Re-register the child edge: NewObject ran before Super was known.
			c.u.AddChild(so, obj)
		} else {
			c.errorf(ot.ObjPos, "supertype %s is not an object type", ot.Super)
		}
	}
	for _, f := range ot.Fields {
		ft := c.resolveType(f.Type)
		if _, isRec := ft.(*types.Record); isRec {
			c.errorf(f.NamePos, "record-typed fields must be behind REF in MiniM3")
		}
		for _, name := range f.Names {
			if obj.FieldNamed(name) != nil {
				c.errorf(f.NamePos, "field %s redeclared in %s", name, obj.Name)
				continue
			}
			obj.Fields = append(obj.Fields, &types.Field{Name: name, Type: ft})
		}
	}
	for _, m := range ot.Methods {
		var params []types.Type
		var modes []types.ParamMode
		for _, pr := range m.Params {
			pt := c.resolveType(pr.Type)
			for range pr.Names {
				params = append(params, pt)
				modes = append(modes, paramMode(pr.Mode))
			}
		}
		result := types.Type(c.u.VoidT)
		if m.Result != nil {
			result = c.resolveType(m.Result)
		}
		obj.Methods = append(obj.Methods, &types.Method{
			Name: m.Name, Params: params, Modes: modes, Result: result,
			Default: m.Default,
		})
	}
	for _, o := range ot.Overrides {
		if obj.MethodNamed(o.Name) == nil {
			c.errorf(o.NamePos, "override of undeclared method %s in %s", o.Name, obj.Name)
			continue
		}
		obj.Overrides[o.Name] = o.Proc
	}
}

func paramMode(m ast.ParamMode) types.ParamMode {
	switch m {
	case ast.VarParam:
		return types.VarMode
	case ast.ReadonlyParam:
		return types.ReadonlyMode
	default:
		return types.ValueMode
	}
}

func (c *checker) resolveType(t ast.TypeExpr) types.Type {
	switch t := t.(type) {
	case *ast.NamedType:
		if rt, ok := c.typeNames[t.Name]; ok {
			return rt
		}
		c.errorf(t.NamePos, "undefined type %s", t.Name)
		return c.u.IntT
	case *ast.ArrayType:
		et := c.resolveType(t.Elem)
		if _, isRec := et.(*types.Record); isRec {
			c.errorf(t.ArrPos, "record array elements must be behind REF in MiniM3")
		}
		return c.u.NewArray("", et)
	case *ast.RefType:
		return c.u.NewRef("", c.resolveType(t.Elem))
	case *ast.RecordType:
		var fields []*types.Field
		for _, f := range t.Fields {
			ft := c.resolveType(f.Type)
			if _, isRec := ft.(*types.Record); isRec {
				c.errorf(f.NamePos, "record-typed fields must be behind REF in MiniM3")
			}
			for _, name := range f.Names {
				fields = append(fields, &types.Field{Name: name, Type: ft})
			}
		}
		return c.u.NewRecord("", fields)
	case *ast.ObjectType:
		// Anonymous object type (not at a TYPE decl): give it a fresh name.
		obj := c.u.NewObject(fmt.Sprintf("OBJECT@%s", t.ObjPos), nil, t.Branded, t.Brand)
		c.resolveObject(obj, t)
		return obj
	}
	return c.u.IntT
}

func (c *checker) collectGlobals() {
	for _, d := range c.prog.Module.Decls {
		switch d := d.(type) {
		case *ast.ConstDecl:
			c.declareConst(d)
		case *ast.VarDecl:
			t := c.resolveType(d.Type)
			for _, name := range d.Names {
				v := &VarSym{Name: name, Type: t, Kind: GlobalVar}
				c.prog.Globals = append(c.prog.Globals, v)
				if d.Init != nil {
					c.prog.GlobalInits = append(c.prog.GlobalInits, GlobalInit{Var: v, Expr: d.Init})
				}
			}
		}
	}
}

func (c *checker) declareConst(d *ast.ConstDecl) {
	cs := &ConstSym{Name: d.Name}
	switch v := d.Value.(type) {
	case *ast.IntLit:
		cs.Type = c.u.IntT
		cs.Int = v.Value
	case *ast.BoolLit:
		cs.Type = c.u.BoolT
		cs.Bool = v.Value
	case *ast.CharLit:
		cs.Type = c.u.CharT
		cs.Char = v.Value
	case *ast.TextLit:
		cs.Type = c.u.TextT
		cs.Text = v.Value
	case *ast.UnaryExpr:
		if il, ok := v.X.(*ast.IntLit); ok && v.Op == token.MINUS {
			cs.Type = c.u.IntT
			cs.Int = -il.Value
		} else {
			c.errorf(d.NamePos, "constant %s must be a literal", d.Name)
			cs.Type = c.u.IntT
		}
	default:
		c.errorf(d.NamePos, "constant %s must be a literal", d.Name)
		cs.Type = c.u.IntT
	}
	c.consts[d.Name] = cs
}

func (c *checker) collectProcs() {
	for _, d := range c.prog.Module.Decls {
		pd, ok := d.(*ast.ProcDecl)
		if !ok {
			continue
		}
		if c.prog.ProcByName[pd.Name] != nil {
			c.errorf(pd.NamePos, "procedure %s redeclared", pd.Name)
			continue
		}
		proc := &Procedure{Name: pd.Name, Decl: pd, Result: c.u.VoidT}
		if pd.Result != nil {
			proc.Result = c.resolveType(pd.Result)
			if _, isRec := proc.Result.(*types.Record); isRec {
				c.errorf(pd.NamePos, "record results are not supported; return REF RECORD")
			}
		}
		var sigParams []types.Type
		var sigModes []types.ParamMode
		for _, pr := range pd.Params {
			pt := c.resolveType(pr.Type)
			if _, isRec := pt.(*types.Record); isRec && pr.Mode != ast.VarParam {
				c.errorf(pr.NamePos, "record parameters must be VAR in MiniM3")
			}
			for _, name := range pr.Names {
				v := &VarSym{Name: name, Type: pt, Kind: ParamVar,
					Mode: paramMode(pr.Mode), Proc: proc}
				proc.Params = append(proc.Params, v)
				sigParams = append(sigParams, pt)
				sigModes = append(sigModes, paramMode(pr.Mode))
			}
		}
		proc.Sig = c.u.NewProc(sigParams, sigModes, proc.Result)
		proc.Body = pd.Body
		c.prog.Procs = append(c.prog.Procs, proc)
		c.prog.ProcByName[pd.Name] = proc
	}
}

// bindMethods links procedures named in METHODS/OVERRIDES sections to
// their object types and checks receiver compatibility.
func (c *checker) bindMethods() {
	for _, o := range c.u.ObjectTypes() {
		for _, m := range o.Methods {
			if m.Default != "" {
				c.bindOne(o, m.Name, m.Default)
			}
		}
		for name, procName := range o.Overrides {
			c.bindOne(o, name, procName)
		}
	}
}

func (c *checker) bindOne(o *types.Object, method, procName string) {
	proc := c.prog.ProcByName[procName]
	if proc == nil {
		c.errorf(token.Pos{Line: 1, Col: 1},
			"method %s.%s bound to undefined procedure %s", o.Name, method, procName)
		return
	}
	if proc.MethodOf == nil {
		proc.MethodOf = o
	}
	if len(proc.Params) == 0 {
		c.errorf(proc.Decl.NamePos,
			"procedure %s implements method %s.%s but has no receiver parameter",
			procName, o.Name, method)
		return
	}
	recv := proc.Params[0].Type
	ro, ok := recv.(*types.Object)
	if !ok || !o.IsSubtypeOf(ro) {
		c.errorf(proc.Decl.NamePos,
			"procedure %s receiver type %s does not accept %s",
			procName, recv, o.Name)
	}
}

// ---------------------------------------------------------------------------
// Scopes

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*VarSym{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(v *VarSym, pos token.Pos) {
	top := c.scopes[len(c.scopes)-1]
	if _, exists := top[v.Name]; exists {
		c.errorf(pos, "%s redeclared", v.Name)
	}
	top[v.Name] = v
}

func (c *checker) lookupVar(name string) *VarSym {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Bodies

func (c *checker) checkProcBodies() {
	for _, proc := range c.prog.Procs {
		c.curProc = proc
		c.pushScope()
		for _, p := range proc.Params {
			c.declare(p, proc.Decl.NamePos)
		}
		for _, d := range proc.Decl.Locals {
			switch d := d.(type) {
			case *ast.VarDecl:
				t := c.resolveType(d.Type)
				for _, name := range d.Names {
					v := &VarSym{Name: name, Type: t, Kind: LocalVar, Proc: proc}
					proc.Locals = append(proc.Locals, v)
					c.declare(v, d.NamePos)
				}
				if d.Init != nil {
					it := c.expr(d.Init)
					if !c.u.AssignableTo(it, t) {
						c.errorf(d.NamePos, "cannot initialize %s with %s", t, it)
					}
				}
			case *ast.ConstDecl:
				c.declareConst(d)
			default:
				c.errorf(d.Pos(), "unsupported local declaration")
			}
		}
		c.stmts(proc.Body)
		c.popScope()
		c.curProc = nil
	}
}

func (c *checker) checkModuleBody() {
	c.pushScope()
	for _, gi := range c.prog.GlobalInits {
		it := c.expr(gi.Expr)
		if !c.u.AssignableTo(it, gi.Var.Type) {
			c.errorf(gi.Expr.Pos(), "cannot initialize %s (%s) with %s",
				gi.Var.Name, gi.Var.Type, it)
		}
	}
	c.stmts(c.prog.Module.Body)
	c.popScope()
}

func (c *checker) stmts(ss []ast.Stmt) {
	for _, s := range ss {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		lt := c.designator(s.LHS, true)
		rt := c.expr(s.RHS)
		if lt != nil && rt != nil && !c.u.AssignableTo(rt, lt) {
			c.errorf(s.Pos(), "cannot assign %s to %s", rt, lt)
		}
	case *ast.CallStmt:
		c.call(s.Call, true)
	case *ast.IfStmt:
		c.cond(s.Cond)
		c.stmts(s.Then)
		c.stmts(s.Else)
	case *ast.WhileStmt:
		c.cond(s.Cond)
		c.loopDepth++
		c.stmts(s.Body)
		c.loopDepth--
	case *ast.RepeatStmt:
		c.loopDepth++
		c.stmts(s.Body)
		c.loopDepth--
		c.cond(s.Cond)
	case *ast.LoopStmt:
		c.loopDepth++
		c.stmts(s.Body)
		c.loopDepth--
	case *ast.ExitStmt:
		if c.loopDepth == 0 {
			c.errorf(s.Pos(), "EXIT outside loop")
		}
	case *ast.ForStmt:
		lo, hi := c.expr(s.Lo), c.expr(s.Hi)
		if !isInt(lo) || !isInt(hi) {
			c.errorf(s.Pos(), "FOR bounds must be INTEGER")
		}
		if s.Step != nil {
			if st := c.expr(s.Step); !isInt(st) {
				c.errorf(s.Pos(), "FOR step must be INTEGER")
			}
		}
		v := &VarSym{Name: s.Var, Type: c.u.IntT, Kind: ForVar, Proc: c.curProc}
		c.prog.ForSyms[s] = v
		c.pushScope()
		c.declare(v, s.ForPos)
		c.loopDepth++
		c.stmts(s.Body)
		c.loopDepth--
		c.popScope()
	case *ast.ReturnStmt:
		want := types.Type(c.u.VoidT)
		if c.curProc != nil {
			want = c.curProc.Result
		}
		if s.Value == nil {
			if !isVoid(want) {
				c.errorf(s.Pos(), "RETURN without value in function procedure")
			}
			return
		}
		got := c.expr(s.Value)
		if isVoid(want) {
			c.errorf(s.Pos(), "RETURN with value in proper procedure")
		} else if got != nil && !c.u.AssignableTo(got, want) {
			c.errorf(s.Pos(), "cannot return %s as %s", got, want)
		}
	case *ast.WithStmt:
		t := c.expr(s.Expr)
		v := &VarSym{Name: s.Name, Type: t, Kind: WithVar, Proc: c.curProc}
		if ast.IsDesignator(s.Expr) {
			v.WithExpr = s.Expr
		}
		c.prog.WithSyms[s] = v
		c.pushScope()
		c.declare(v, s.WithPos)
		c.stmts(s.Body)
		c.popScope()
	}
}

func (c *checker) cond(e ast.Expr) {
	t := c.expr(e)
	if t != nil && !isBool(t) {
		c.errorf(e.Pos(), "condition must be BOOLEAN, got %s", t)
	}
}

func isInt(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind == types.Integer
}

func isBool(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind == types.Boolean
}

func isChar(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind == types.Char
}

func isText(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind == types.Text
}

func isVoid(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind == types.Void
}

// ---------------------------------------------------------------------------
// Expressions

func (c *checker) expr(e ast.Expr) types.Type {
	t := c.exprNoMemo(e)
	if t != nil {
		c.prog.TypeOf[e] = t
	}
	return t
}

func (c *checker) exprNoMemo(e ast.Expr) types.Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return c.u.IntT
	case *ast.BoolLit:
		return c.u.BoolT
	case *ast.CharLit:
		return c.u.CharT
	case *ast.TextLit:
		return c.u.TextT
	case *ast.NilLit:
		return c.u.NullT
	case *ast.Ident, *ast.QualifyExpr, *ast.DerefExpr, *ast.SubscriptExpr:
		return c.designator(e, false)
	case *ast.UnaryExpr:
		xt := c.expr(e.X)
		if xt == nil {
			return nil
		}
		switch e.Op {
		case token.MINUS:
			if !isInt(xt) {
				c.errorf(e.Pos(), "unary - requires INTEGER, got %s", xt)
			}
			return c.u.IntT
		case token.NOT:
			if !isBool(xt) {
				c.errorf(e.Pos(), "NOT requires BOOLEAN, got %s", xt)
			}
			return c.u.BoolT
		}
		return nil
	case *ast.BinaryExpr:
		return c.binary(e)
	case *ast.CallExpr:
		return c.call(e, false)
	case *ast.NewExpr:
		return c.newExpr(e)
	}
	c.errorf(e.Pos(), "unsupported expression")
	return nil
}

func (c *checker) binary(e *ast.BinaryExpr) types.Type {
	lt, rt := c.expr(e.L), c.expr(e.R)
	if lt == nil || rt == nil {
		return nil
	}
	switch e.Op {
	case token.PLUS, token.MINUS, token.STAR, token.DIV, token.MOD:
		if !isInt(lt) || !isInt(rt) {
			c.errorf(e.Pos(), "arithmetic requires INTEGER operands, got %s and %s", lt, rt)
		}
		return c.u.IntT
	case token.AMP:
		if !isText(lt) || !isText(rt) {
			c.errorf(e.Pos(), "& requires TEXT operands, got %s and %s", lt, rt)
		}
		return c.u.TextT
	case token.AND, token.OR:
		if !isBool(lt) || !isBool(rt) {
			c.errorf(e.Pos(), "%s requires BOOLEAN operands", e.Op)
		}
		return c.u.BoolT
	case token.EQ, token.NEQ:
		ok := c.u.Comparable(lt, rt) ||
			(isInt(lt) && isInt(rt)) || (isBool(lt) && isBool(rt)) ||
			(isChar(lt) && isChar(rt)) || (isText(lt) && isText(rt))
		if !ok {
			c.errorf(e.Pos(), "cannot compare %s and %s", lt, rt)
		}
		return c.u.BoolT
	case token.LT, token.GT, token.LE, token.GE:
		ok := (isInt(lt) && isInt(rt)) || (isChar(lt) && isChar(rt))
		if !ok {
			c.errorf(e.Pos(), "ordering requires INTEGER or CHAR operands, got %s and %s", lt, rt)
		}
		return c.u.BoolT
	}
	c.errorf(e.Pos(), "unsupported operator %s", e.Op)
	return nil
}

func (c *checker) newExpr(e *ast.NewExpr) types.Type {
	t, ok := c.typeNames[e.TypeName]
	if !ok {
		c.errorf(e.Pos(), "NEW of undefined type %s", e.TypeName)
		return nil
	}
	switch t := t.(type) {
	case *types.Object:
		if e.Len != nil {
			c.errorf(e.Pos(), "NEW of object type %s takes no length", t.Name)
		}
		return t
	case *types.Array:
		if e.Len == nil {
			c.errorf(e.Pos(), "NEW of open array %s requires a length", t)
		} else if lt := c.expr(e.Len); lt != nil && !isInt(lt) {
			c.errorf(e.Pos(), "array length must be INTEGER, got %s", lt)
		}
		return t
	case *types.Ref:
		if e.Len != nil {
			c.errorf(e.Pos(), "NEW of %s takes no length", t)
		}
		return t
	default:
		c.errorf(e.Pos(), "cannot NEW %s", t)
		return nil
	}
}

// designator checks a location expression. When lvalue is set the
// designator must denote an assignable location.
func (c *checker) designator(e ast.Expr, lvalue bool) types.Type {
	t := c.designatorInner(e, lvalue)
	if t != nil {
		c.prog.TypeOf[e] = t
	}
	return t
}

func (c *checker) designatorInner(e ast.Expr, lvalue bool) types.Type {
	switch e := e.(type) {
	case *ast.Ident:
		if v := c.lookupVar(e.Name); v != nil {
			c.prog.SymOf[e] = v
			if lvalue && v.Kind == ForVar {
				c.errorf(e.Pos(), "cannot assign to FOR index %s", e.Name)
			}
			if lvalue && v.Kind == WithVar && v.WithExpr == nil {
				c.errorf(e.Pos(), "cannot assign to value WITH binding %s", e.Name)
			}
			return v.Type
		}
		if cs, ok := c.consts[e.Name]; ok {
			if lvalue {
				c.errorf(e.Pos(), "cannot assign to constant %s", e.Name)
			}
			c.prog.ConstOf[e] = cs
			return cs.Type
		}
		c.errorf(e.Pos(), "undefined: %s", e.Name)
		return nil
	case *ast.QualifyExpr:
		xt := c.expr(e.X)
		if xt == nil {
			return nil
		}
		// Implicit dereference: REF RECORD auto-derefs on qualification.
		if rt, ok := xt.(*types.Ref); ok {
			xt = rt.Elem
		}
		switch xt := xt.(type) {
		case *types.Object:
			f := xt.FieldNamed(e.Field)
			if f == nil {
				c.errorf(e.Pos(), "type %s has no field %s", xt, e.Field)
				return nil
			}
			return f.Type
		case *types.Record:
			f := xt.FieldNamed(e.Field)
			if f == nil {
				c.errorf(e.Pos(), "record has no field %s", e.Field)
				return nil
			}
			return f.Type
		default:
			c.errorf(e.Pos(), "cannot qualify %s with .%s", xt, e.Field)
			return nil
		}
	case *ast.DerefExpr:
		xt := c.expr(e.X)
		if xt == nil {
			return nil
		}
		if rt, ok := xt.(*types.Ref); ok {
			return rt.Elem
		}
		c.errorf(e.Pos(), "cannot dereference %s", xt)
		return nil
	case *ast.SubscriptExpr:
		xt := c.expr(e.X)
		it := c.expr(e.Index)
		if it != nil && !isInt(it) {
			c.errorf(e.Pos(), "subscript must be INTEGER, got %s", it)
		}
		if xt == nil {
			return nil
		}
		if at, ok := xt.(*types.Array); ok {
			return at.Elem
		}
		c.errorf(e.Pos(), "cannot subscript %s", xt)
		return nil
	default:
		if lvalue {
			c.errorf(e.Pos(), "expression is not assignable")
			return c.expr(e)
		}
		return c.expr(e)
	}
}

// call resolves a call expression: builtin, method call, or procedure call.
func (c *checker) call(e *ast.CallExpr, asStmt bool) types.Type {
	// Method call: receiver.m(args) where receiver has object type.
	if q, ok := e.Fun.(*ast.QualifyExpr); ok {
		if rt := c.tryReceiver(q.X); rt != nil {
			if m := rt.MethodNamed(q.Field); m != nil {
				return c.methodCall(e, q, rt, m, asStmt)
			}
			// Fall through: might be a field holding nothing callable.
		}
	}
	id, ok := e.Fun.(*ast.Ident)
	if !ok {
		c.errorf(e.Pos(), "called expression is not a procedure")
		return nil
	}
	if bk, isBuiltin := builtinNames[id.Name]; isBuiltin {
		return c.builtinCall(e, bk, asStmt)
	}
	proc := c.prog.ProcByName[id.Name]
	if proc == nil {
		c.errorf(e.Pos(), "undefined procedure %s", id.Name)
		for _, a := range e.Args {
			c.expr(a)
		}
		return nil
	}
	c.prog.Calls[e] = &CallInfo{Kind: ProcCall, Proc: proc}
	c.checkArgs(e, proc.Params, e.Args)
	if asStmt && !isVoid(proc.Result) {
		// Modula-3 would require EVAL; MiniM3 tolerates discarding results.
		_ = asStmt
	}
	return proc.Result
}

// tryReceiver types an expression quietly and returns its object type, or
// nil if it is not object-typed or fails to type.
func (c *checker) tryReceiver(x ast.Expr) *types.Object {
	saved := len(c.errs)
	t := c.expr(x)
	if len(c.errs) > saved {
		c.errs = c.errs[:saved]
		return nil
	}
	o, _ := t.(*types.Object)
	return o
}

func (c *checker) methodCall(e *ast.CallExpr, q *ast.QualifyExpr, recv *types.Object, m *types.Method, asStmt bool) types.Type {
	if len(e.Args) != len(m.Params) {
		c.errorf(e.Pos(), "method %s.%s expects %d arguments, got %d",
			recv, m.Name, len(m.Params), len(e.Args))
	}
	n := len(e.Args)
	if len(m.Params) < n {
		n = len(m.Params)
	}
	for i := 0; i < n; i++ {
		at := c.expr(e.Args[i])
		if at == nil {
			continue
		}
		if m.Modes[i] == types.VarMode {
			if !ast.IsDesignator(e.Args[i]) {
				c.errorf(e.Args[i].Pos(), "VAR argument must be a designator")
			}
			if at.ID() != m.Params[i].ID() {
				c.errorf(e.Args[i].Pos(), "VAR argument type %s must equal formal type %s",
					at, m.Params[i])
			}
		} else if !c.u.AssignableTo(at, m.Params[i]) {
			c.errorf(e.Args[i].Pos(), "cannot pass %s as %s", at, m.Params[i])
		}
	}
	c.prog.Calls[e] = &CallInfo{Kind: MethodCall, Recv: q.X, Method: m, RecvType: recv}
	return m.Result
}

func (c *checker) checkArgs(e *ast.CallExpr, params []*VarSym, args []ast.Expr) {
	if len(args) != len(params) {
		c.errorf(e.Pos(), "call expects %d arguments, got %d", len(params), len(args))
	}
	n := len(args)
	if len(params) < n {
		n = len(params)
	}
	for i := 0; i < n; i++ {
		at := c.expr(args[i])
		if at == nil {
			continue
		}
		p := params[i]
		if p.Mode == types.VarMode {
			if !ast.IsDesignator(args[i]) {
				c.errorf(args[i].Pos(), "VAR argument must be a designator")
			}
			// Modula-3 requires identical types for VAR actuals; this is
			// what lets open-world AddressTaken check type equality only.
			if at.ID() != p.Type.ID() {
				c.errorf(args[i].Pos(), "VAR argument type %s must equal formal type %s", at, p.Type)
			}
		} else if !c.u.AssignableTo(at, p.Type) {
			c.errorf(args[i].Pos(), "cannot pass %s as %s (parameter %s)", at, p.Type, p.Name)
		}
	}
	// Type remaining args for error recovery.
	for i := n; i < len(args); i++ {
		c.expr(args[i])
	}
}

func (c *checker) builtinCall(e *ast.CallExpr, bk BuiltinKind, asStmt bool) types.Type {
	c.prog.Calls[e] = &CallInfo{Kind: BuiltinCall, Builtin: bk}
	argTypes := make([]types.Type, len(e.Args))
	for i, a := range e.Args {
		argTypes[i] = c.expr(a)
	}
	need := func(n int) bool {
		if len(e.Args) != n {
			c.errorf(e.Pos(), "builtin expects %d argument(s), got %d", n, len(e.Args))
			return false
		}
		for _, t := range argTypes {
			if t == nil {
				return false
			}
		}
		return true
	}
	switch bk {
	case BuiltinNumber:
		if need(1) {
			if _, ok := argTypes[0].(*types.Array); !ok {
				c.errorf(e.Pos(), "NUMBER requires an open array, got %s", argTypes[0])
			}
		}
		return c.u.IntT
	case BuiltinAbs:
		if need(1) && !isInt(argTypes[0]) {
			c.errorf(e.Pos(), "ABS requires INTEGER")
		}
		return c.u.IntT
	case BuiltinMin, BuiltinMax:
		if need(2) && (!isInt(argTypes[0]) || !isInt(argTypes[1])) {
			c.errorf(e.Pos(), "MIN/MAX require INTEGER operands")
		}
		return c.u.IntT
	case BuiltinOrd:
		if need(1) && !isChar(argTypes[0]) {
			c.errorf(e.Pos(), "ORD requires CHAR")
		}
		return c.u.IntT
	case BuiltinChr:
		if need(1) && !isInt(argTypes[0]) {
			c.errorf(e.Pos(), "CHR requires INTEGER")
		}
		return c.u.CharT
	case BuiltinInc, BuiltinDec:
		if len(e.Args) != 1 && len(e.Args) != 2 {
			c.errorf(e.Pos(), "INC/DEC expect 1 or 2 arguments")
			return c.u.VoidT
		}
		if !ast.IsDesignator(e.Args[0]) {
			c.errorf(e.Args[0].Pos(), "INC/DEC require a designator")
		}
		if argTypes[0] != nil && !isInt(argTypes[0]) {
			c.errorf(e.Pos(), "INC/DEC require INTEGER designator")
		}
		if len(e.Args) == 2 && argTypes[1] != nil && !isInt(argTypes[1]) {
			c.errorf(e.Pos(), "INC/DEC step must be INTEGER")
		}
		return c.u.VoidT
	case BuiltinPutInt:
		if need(1) && !isInt(argTypes[0]) {
			c.errorf(e.Pos(), "PutInt requires INTEGER")
		}
		return c.u.VoidT
	case BuiltinPutChar:
		if need(1) && !isChar(argTypes[0]) {
			c.errorf(e.Pos(), "PutChar requires CHAR")
		}
		return c.u.VoidT
	case BuiltinPutText:
		if need(1) && !isText(argTypes[0]) {
			c.errorf(e.Pos(), "PutText requires TEXT")
		}
		return c.u.VoidT
	case BuiltinPutLn:
		need(0)
		return c.u.VoidT
	case BuiltinAssert:
		if need(1) && !isBool(argTypes[0]) {
			c.errorf(e.Pos(), "Assert requires BOOLEAN")
		}
		return c.u.VoidT
	case BuiltinTextLen:
		if need(1) && !isText(argTypes[0]) {
			c.errorf(e.Pos(), "TextLen requires TEXT")
		}
		return c.u.IntT
	case BuiltinTextChar:
		if need(2) {
			if !isText(argTypes[0]) || !isInt(argTypes[1]) {
				c.errorf(e.Pos(), "TextChar requires (TEXT, INTEGER)")
			}
		}
		return c.u.CharT
	case BuiltinIntToText:
		if need(1) && !isInt(argTypes[0]) {
			c.errorf(e.Pos(), "IntToText requires INTEGER")
		}
		return c.u.TextT
	case BuiltinHalt:
		need(0)
		return c.u.VoidT
	}
	return c.u.VoidT
}
