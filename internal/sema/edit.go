package sema

import (
	"fmt"

	"tbaa/internal/ast"
	"tbaa/internal/token"
	"tbaa/internal/types"
)

// ReplaceProc type-checks a replacement declaration for an existing
// procedure against the already-checked module and installs it in
// Procs/ProcByName, returning the new Procedure. It is the sema half of
// the incremental edit path: nothing outside the one procedure is
// re-checked, and the type universe stays frozen — Precompute'd caches,
// type IDs, and every other procedure's symbols remain valid, which is
// what lets the analyses above rebuild from a one-procedure dirty set.
//
// Freezing the universe imposes two restrictions on the edited
// declaration, both reported as ordinary check errors: every type
// expression must be a declared type name (composite type expressions
// would mint new universe types), and the signature must match the
// replaced procedure's exactly (procedure types are interned in the
// universe, and call sites are not re-checked).
//
// ReplaceProc mutates the Program's side tables (TypeOf, Calls, …) for
// the new declaration's AST nodes; callers must not run it concurrently
// with anything reading the Program.
func (p *Program) ReplaceProc(decl *ast.ProcDecl) (*Procedure, error) {
	old := p.ProcByName[decl.Name]
	if old == nil {
		return nil, ErrorList{&Error{Pos: decl.NamePos,
			Msg: fmt.Sprintf("edit: module %s declares no procedure %s", p.Module.Name, decl.Name)}}
	}
	c := &checker{prog: p, u: p.Universe, typeNames: p.typeNames,
		consts: make(map[string]*ConstSym)}
	// Module-level constants live in checker state that Check discarded;
	// rebuild them so the edited body can reference them. The module
	// already checked, so re-declaring them reports nothing new.
	for _, d := range p.Module.Decls {
		if cd, ok := d.(*ast.ConstDecl); ok {
			c.declareConst(cd)
		}
	}

	// Signature: same arity, parameter types, modes, and result as the
	// procedure being replaced, so the interned Proc type is reused and
	// existing call sites (and method bindings) stay well-typed.
	proc := &Procedure{Name: decl.Name, Decl: decl, Body: decl.Body,
		Result: old.Result, Sig: old.Sig, MethodOf: old.MethodOf}
	result := types.Type(c.u.VoidT)
	if decl.Result != nil {
		result = c.frozenType(decl.Result, decl.NamePos)
	}
	if result != old.Result {
		c.errorf(decl.NamePos, "edit: %s result type %s does not match the declared %s",
			decl.Name, result, old.Result)
	}
	for _, pr := range decl.Params {
		pt := c.frozenType(pr.Type, pr.NamePos)
		for _, name := range pr.Names {
			v := &VarSym{Name: name, Type: pt, Kind: ParamVar,
				Mode: paramMode(pr.Mode), Proc: proc}
			proc.Params = append(proc.Params, v)
		}
	}
	if len(proc.Params) != len(old.Params) {
		c.errorf(decl.NamePos, "edit: %s declares %d parameters, the module declares %d",
			decl.Name, len(proc.Params), len(old.Params))
	} else {
		for i, prm := range proc.Params {
			if prm.Type != old.Params[i].Type || prm.Mode != old.Params[i].Mode {
				c.errorf(decl.NamePos, "edit: parameter %s of %s does not match the declared signature",
					prm.Name, decl.Name)
			}
		}
	}
	if len(c.errs) > 0 {
		return nil, c.errs
	}

	// Check the body exactly as checkProcBodies does, under a scope stack
	// of globals then params/locals.
	c.pushScope()
	for _, g := range p.Globals {
		c.declare(g, decl.NamePos)
	}
	c.curProc = proc
	c.pushScope()
	for _, prm := range proc.Params {
		c.declare(prm, decl.NamePos)
	}
	for _, d := range decl.Locals {
		switch d := d.(type) {
		case *ast.VarDecl:
			t := c.frozenType(d.Type, d.NamePos)
			for _, name := range d.Names {
				v := &VarSym{Name: name, Type: t, Kind: LocalVar, Proc: proc}
				proc.Locals = append(proc.Locals, v)
				c.declare(v, d.NamePos)
			}
			if d.Init != nil {
				it := c.expr(d.Init)
				if !c.u.AssignableTo(it, t) {
					c.errorf(d.NamePos, "cannot initialize %s with %s", t, it)
				}
			}
		case *ast.ConstDecl:
			c.declareConst(d)
		default:
			c.errorf(d.Pos(), "unsupported local declaration")
		}
	}
	c.stmts(decl.Body)
	c.popScope()
	c.curProc = nil
	if len(c.errs) > 0 {
		return nil, c.errs
	}

	for i, q := range p.Procs {
		if q == old {
			p.Procs[i] = proc
		}
	}
	p.ProcByName[decl.Name] = proc
	return proc, nil
}

// frozenType resolves a type expression under the frozen universe:
// only declared type names are admitted, because the composite forms
// (ARRAY/REF/RECORD/OBJECT) would create new universe types and
// invalidate the precomputed subtype caches every analysis generation
// shares.
func (c *checker) frozenType(t ast.TypeExpr, pos token.Pos) types.Type {
	nt, ok := t.(*ast.NamedType)
	if !ok {
		c.errorf(pos, "edit: only declared type names may appear in an edited procedure; declare the type in the module and re-upload")
		return c.u.IntT
	}
	return c.resolveType(nt)
}
