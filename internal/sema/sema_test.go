package sema

import (
	"strings"
	"testing"

	"tbaa/internal/ast"
	"tbaa/internal/parser"
	"tbaa/internal/types"
)

func mustCheck(t *testing.T, src string) *Program {
	t.Helper()
	m, err := parser.Parse("test.m3", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Check(m)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func checkErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	m, err := parser.Parse("test.m3", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Check(m)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		// Look through the whole list.
		if el, ok := err.(ErrorList); ok {
			for _, e := range el {
				if strings.Contains(e.Msg, wantSubstr) {
					return
				}
			}
		}
		t.Fatalf("error %q does not contain %q", err, wantSubstr)
	}
}

const hierarchySrc = `
MODULE H;
TYPE
  T = OBJECT f, g: T; END;
  S1 = T OBJECT a: INTEGER; END;
  S2 = T OBJECT b: INTEGER; END;
  S3 = T OBJECT c: INTEGER; END;
VAR
  t: T;
  s: S1;
  u: S2;
BEGIN
  t := NEW(T);
  s := NEW(S1);
  t := s;
END H.
`

func TestHierarchy(t *testing.T) {
	p := mustCheck(t, hierarchySrc)
	u := p.Universe
	tt := p.TypeNamed("T").(*types.Object)
	s1 := p.TypeNamed("S1").(*types.Object)
	s2 := p.TypeNamed("S2").(*types.Object)
	if !s1.IsSubtypeOf(tt) || !s2.IsSubtypeOf(tt) {
		t.Fatal("subtype relation broken")
	}
	if s1.IsSubtypeOf(s2) || s2.IsSubtypeOf(s1) {
		t.Fatal("siblings should not be subtypes")
	}
	// Subtypes(T) = {T, S1, S2, S3}
	if got := len(u.Subtypes(tt)); got != 4 {
		t.Errorf("len(Subtypes(T)) = %d, want 4", got)
	}
	if got := len(u.Subtypes(s1)); got != 1 {
		t.Errorf("len(Subtypes(S1)) = %d, want 1", got)
	}
	if !u.SubtypesIntersect(tt, s1) {
		t.Error("T and S1 should intersect")
	}
	if u.SubtypesIntersect(s1, s2) {
		t.Error("S1 and S2 should not intersect")
	}
	// Inherited field lookup.
	if s1.FieldNamed("f") == nil {
		t.Error("S1 should inherit field f")
	}
	if len(s1.AllFields()) != 3 {
		t.Errorf("S1 fields: %d, want 3", len(s1.AllFields()))
	}
}

func TestAssignability(t *testing.T) {
	p := mustCheck(t, hierarchySrc)
	u := p.Universe
	tt := p.TypeNamed("T")
	s1 := p.TypeNamed("S1")
	if !u.AssignableTo(s1, tt) {
		t.Error("S1 assignable to T")
	}
	if u.AssignableTo(tt, s1) {
		t.Error("T should not be assignable to S1 (no NARROW in MiniM3)")
	}
	if !u.AssignableTo(u.NullT, tt) {
		t.Error("NIL assignable to object type")
	}
	if u.AssignableTo(u.NullT, u.IntT) {
		t.Error("NIL not assignable to INTEGER")
	}
}

func TestStructuralCanonicalization(t *testing.T) {
	p := mustCheck(t, `
MODULE M;
TYPE
  A1 = ARRAY OF INTEGER;
  A2 = ARRAY OF INTEGER;
  R1 = REF INTEGER;
  R2 = REF INTEGER;
  RC = REF CHAR;
VAR a: A1; b: A2;
BEGIN
  a := b;
END M.
`)
	if p.TypeNamed("A1").ID() != p.TypeNamed("A2").ID() {
		t.Error("ARRAY OF INTEGER should canonicalize")
	}
	if p.TypeNamed("R1").ID() != p.TypeNamed("R2").ID() {
		t.Error("REF INTEGER should canonicalize")
	}
	if p.TypeNamed("R1").ID() == p.TypeNamed("RC").ID() {
		t.Error("REF INTEGER and REF CHAR must differ")
	}
}

func TestMethodBinding(t *testing.T) {
	p := mustCheck(t, `
MODULE M;
TYPE
  Shape = OBJECT id: INTEGER; METHODS area(): INTEGER := ShapeArea; END;
  Circle = Shape OBJECT r: INTEGER; OVERRIDES area := CircleArea; END;
PROCEDURE ShapeArea(self: Shape): INTEGER = BEGIN RETURN 0; END ShapeArea;
PROCEDURE CircleArea(self: Circle): INTEGER = BEGIN RETURN self.r; END CircleArea;
VAR c: Circle;
BEGIN
  c := NEW(Circle);
  PutInt(c.area());
END M.
`)
	sh := p.TypeNamed("Shape").(*types.Object)
	ci := p.TypeNamed("Circle").(*types.Object)
	if got := sh.Implementation("area"); got != "ShapeArea" {
		t.Errorf("Shape.area impl: %q", got)
	}
	if got := ci.Implementation("area"); got != "CircleArea" {
		t.Errorf("Circle.area impl: %q", got)
	}
	// The call in the body resolves as a method call.
	var found bool
	for _, ci := range p.Calls {
		if ci.Kind == MethodCall && ci.Method.Name == "area" {
			found = true
		}
	}
	if !found {
		t.Error("method call not resolved")
	}
}

func TestAutoDeref(t *testing.T) {
	p := mustCheck(t, `
MODULE M;
TYPE
  R = RECORD a: INTEGER; END;
  PR = REF R;
VAR pr: PR;
BEGIN
  pr := NEW(PR);
  pr.a := 5;
  pr^.a := 6;
END M.
`)
	_ = p
}

func TestTypeErrors(t *testing.T) {
	checkErr(t, `MODULE M; VAR x: INTEGER; BEGIN x := TRUE; END M.`, "cannot assign")
	checkErr(t, `MODULE M; BEGIN y := 1; END M.`, "undefined")
	checkErr(t, `MODULE M; VAR x: Undefined; BEGIN END M.`, "undefined type")
	checkErr(t, `MODULE M; TYPE T = OBJECT END; VAR t: T; BEGIN t.nope := 1; END M.`, "no field")
	checkErr(t, `MODULE M; VAR x: INTEGER; BEGIN IF x THEN END; END M.`, "BOOLEAN")
	checkErr(t, `MODULE M; BEGIN EXIT; END M.`, "EXIT outside loop")
	checkErr(t, `MODULE M; VAR x: INTEGER; BEGIN x := x[0]; END M.`, "cannot subscript")
	checkErr(t, `MODULE M; VAR x: INTEGER; BEGIN x^ := 1; END M.`, "cannot dereference")
	checkErr(t, `
MODULE M;
TYPE T = OBJECT END; S = T OBJECT END;
VAR t: T; s: S;
BEGIN s := t; END M.`, "cannot assign")
	checkErr(t, `
MODULE M;
PROCEDURE P(VAR x: INTEGER) = BEGIN x := 1; END P;
BEGIN P(3); END M.`, "VAR argument must be a designator")
	checkErr(t, `
MODULE M;
TYPE A = ARRAY OF INTEGER;
VAR a: A;
BEGIN a := NEW(A); END M.`, "requires a length")
	checkErr(t, `
MODULE M;
PROCEDURE F(): INTEGER = BEGIN RETURN; END F;
BEGIN END M.`, "RETURN without value")
}

func TestVarParamTypeEquality(t *testing.T) {
	// VAR actuals must have the identical type (Modula-3 rule that
	// open-world AddressTaken relies on).
	checkErr(t, `
MODULE M;
TYPE T = OBJECT END; S = T OBJECT END;
PROCEDURE P(VAR x: T) = BEGIN END P;
VAR s: S;
BEGIN P(s); END M.`, "must equal formal type")
}

func TestForLoopIndexImmutable(t *testing.T) {
	checkErr(t, `
MODULE M;
PROCEDURE P() =
BEGIN
  FOR i := 0 TO 10 DO i := 5; END;
END P;
END M.`, "cannot assign to FOR index")
}

func TestWithBinding(t *testing.T) {
	p := mustCheck(t, `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
VAR t: T;
BEGIN
  t := NEW(T);
  WITH x = t.f DO x := 3; END;
  WITH v = 1 + 2 DO t.f := v; END;
END M.
`)
	var aliasCount, valueCount int
	for _, v := range p.WithSyms {
		if v.WithExpr != nil {
			aliasCount++
		} else {
			valueCount++
		}
	}
	if aliasCount != 1 || valueCount != 1 {
		t.Errorf("with bindings: alias=%d value=%d", aliasCount, valueCount)
	}
	// Assigning through a value WITH binding is an error.
	checkErr(t, `
MODULE M;
BEGIN
  WITH v = 1 + 2 DO v := 3; END;
END M.`, "cannot assign to value WITH binding")
}

func TestBuiltins(t *testing.T) {
	mustCheck(t, `
MODULE M;
TYPE A = ARRAY OF INTEGER;
VAR a: A; n: INTEGER; c: CHAR; s: TEXT;
BEGIN
  a := NEW(A, 10);
  n := NUMBER(a);
  n := ABS(-3) + MIN(1, 2) + MAX(3, 4) + ORD('x');
  c := CHR(65);
  INC(n); DEC(n, 2);
  s := IntToText(n) & "!";
  PutInt(TextLen(s)); PutChar(TextChar(s, 0)); PutText(s); PutLn();
  Assert(n >= 0);
END M.
`)
	checkErr(t, `MODULE M; VAR n: INTEGER; BEGIN n := NUMBER(n); END M.`, "NUMBER requires an open array")
	checkErr(t, `MODULE M; BEGIN INC(5); END M.`, "INC/DEC require a designator")
}

func TestBrandedRecorded(t *testing.T) {
	p := mustCheck(t, `
MODULE M;
TYPE
  B = BRANDED "x" OBJECT v: INTEGER; END;
  U = OBJECT v: INTEGER; END;
BEGIN END M.
`)
	b := p.TypeNamed("B").(*types.Object)
	u := p.TypeNamed("U").(*types.Object)
	if !b.Branded || b.Brand != "x" {
		t.Error("B should be branded")
	}
	if u.Branded {
		t.Error("U should not be branded")
	}
}

func TestRecursiveTypes(t *testing.T) {
	p := mustCheck(t, `
MODULE M;
TYPE
  List = OBJECT head: INTEGER; tail: List; END;
VAR l: List;
BEGIN
  l := NEW(List);
  l.tail := NEW(List);
  l.tail.head := 4;
END M.
`)
	lt := p.TypeNamed("List").(*types.Object)
	if lt.FieldNamed("tail").Type != lt {
		t.Error("recursive field should close the loop")
	}
}

func TestProcedureCalls(t *testing.T) {
	p := mustCheck(t, `
MODULE M;
PROCEDURE Add(a, b: INTEGER): INTEGER = BEGIN RETURN a + b; END Add;
PROCEDURE Swap(VAR a, b: INTEGER) =
VAR t: INTEGER;
BEGIN
  t := a; a := b; b := t;
END Swap;
VAR x, y: INTEGER;
BEGIN
  x := Add(1, 2);
  Swap(x, y);
END M.
`)
	if len(p.Procs) != 2 {
		t.Fatalf("procs: %d", len(p.Procs))
	}
	add := p.ProcByName["Add"]
	if add == nil || len(add.Params) != 2 || isVoidT(add.Result) {
		t.Errorf("Add signature wrong: %+v", add)
	}
	swap := p.ProcByName["Swap"]
	if !swap.Params[0].ByRef() || !swap.Params[1].ByRef() {
		t.Error("Swap params should be by-ref")
	}
}

func isVoidT(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind == types.Void
}

func TestHierarchyExampleFromPaper(t *testing.T) {
	// Figure 1 of the paper.
	p := mustCheck(t, `
MODULE Fig1;
TYPE
  T = OBJECT f, g: T; END;
  S1 = T OBJECT a: INTEGER; END;
  S2 = T OBJECT b: INTEGER; END;
  S3 = T OBJECT c: INTEGER; END;
VAR
  t: T;
  s: S1;
  u: S2;
BEGIN
  t := NEW(T); s := NEW(S1); u := NEW(S2);
END Fig1.
`)
	u := p.Universe
	tT := p.TypeNamed("T")
	tS1 := p.TypeNamed("S1")
	tS2 := p.TypeNamed("S2")
	// Paper Section 2.2: t~s and t~u may alias; s~u may not.
	if !u.SubtypesIntersect(tT, tS1) {
		t.Error("Subtypes(T) ∩ Subtypes(S1) should be non-empty")
	}
	if !u.SubtypesIntersect(tT, tS2) {
		t.Error("Subtypes(T) ∩ Subtypes(S2) should be non-empty")
	}
	if u.SubtypesIntersect(tS1, tS2) {
		t.Error("Subtypes(S1) ∩ Subtypes(S2) should be empty")
	}
}

func TestModuleBodyChecked(t *testing.T) {
	if _, err := parser.Parse("x", "MODULE M; BEGIN x := 1; END M."); err != nil {
		t.Skip("parse failed unexpectedly")
	}
	checkErr(t, "MODULE M; BEGIN x := 1; END M.", "undefined")
}

func TestPrintedProgramChecks(t *testing.T) {
	m, err := parser.Parse("h.m3", hierarchySrc)
	if err != nil {
		t.Fatal(err)
	}
	printed := ast.Print(m)
	m2, err := parser.Parse("h2.m3", printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if _, err := Check(m2); err != nil {
		t.Fatalf("recheck: %v", err)
	}
}
