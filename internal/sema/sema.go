// Package sema type-checks MiniM3 modules and produces the symbol and type
// information that lowering, alias analysis, and the optimizer consume.
package sema

import (
	"fmt"

	"tbaa/internal/ast"
	"tbaa/internal/token"
	"tbaa/internal/types"
)

// Error is a semantic error.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a list of semantic errors; it implements error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	s := l[0].Error()
	if len(l) > 1 {
		s += fmt.Sprintf(" (and %d more)", len(l)-1)
	}
	return s
}

// VarKind classifies a variable symbol.
type VarKind int

// Variable kinds.
const (
	GlobalVar VarKind = iota
	LocalVar
	ParamVar
	ForVar  // FOR loop index (implicitly declared INTEGER)
	WithVar // WITH alias binding
)

// VarSym is a variable (or alias) symbol.
type VarSym struct {
	Name string
	Type types.Type
	Kind VarKind
	Mode types.ParamMode // for ParamVar
	Proc *Procedure      // owning procedure; nil for globals
	// WithExpr is the aliased designator for WithVar bindings when the
	// WITH right-hand side denotes a location; nil when it was a value.
	WithExpr ast.Expr
}

// ByRef reports whether the variable is a pass-by-reference formal.
func (v *VarSym) ByRef() bool { return v.Kind == ParamVar && v.Mode == types.VarMode }

// ConstSym is a named compile-time constant.
type ConstSym struct {
	Name string
	Type types.Type
	Int  int64
	Bool bool
	Text string
	Char byte
}

// Procedure is a checked procedure.
type Procedure struct {
	Name   string
	Params []*VarSym
	Result types.Type // Void for proper procedures
	Locals []*VarSym  // declared locals (not params)
	Body   []ast.Stmt
	Decl   *ast.ProcDecl
	Sig    *types.Proc
	// MethodOf is non-nil when the procedure implements a method; it is
	// the object type whose METHODS/OVERRIDES section named it.
	MethodOf *types.Object
}

// BuiltinKind identifies a builtin operation.
type BuiltinKind int

// Builtin operations.
const (
	NotBuiltin BuiltinKind = iota
	BuiltinNumber
	BuiltinAbs
	BuiltinMin
	BuiltinMax
	BuiltinOrd
	BuiltinChr
	BuiltinInc
	BuiltinDec
	BuiltinPutInt
	BuiltinPutChar
	BuiltinPutText
	BuiltinPutLn
	BuiltinAssert
	BuiltinTextLen
	BuiltinTextChar
	BuiltinIntToText
	BuiltinHalt
)

var builtinNames = map[string]BuiltinKind{
	"NUMBER": BuiltinNumber, "ABS": BuiltinAbs, "MIN": BuiltinMin,
	"MAX": BuiltinMax, "ORD": BuiltinOrd, "CHR": BuiltinChr,
	"INC": BuiltinInc, "DEC": BuiltinDec,
	"PutInt": BuiltinPutInt, "PutChar": BuiltinPutChar,
	"PutText": BuiltinPutText, "PutLn": BuiltinPutLn,
	"Assert": BuiltinAssert, "TextLen": BuiltinTextLen,
	"TextChar": BuiltinTextChar, "IntToText": BuiltinIntToText,
	"Halt": BuiltinHalt,
}

// CallKind classifies a call expression.
type CallKind int

// Call kinds.
const (
	ProcCall CallKind = iota
	MethodCall
	BuiltinCall
)

// CallInfo is sema's resolution of a CallExpr.
type CallInfo struct {
	Kind    CallKind
	Proc    *Procedure    // for ProcCall
	Builtin BuiltinKind   // for BuiltinCall
	Recv    ast.Expr      // for MethodCall: receiver designator
	Method  *types.Method // for MethodCall
	// RecvType is the static type of the receiver (for devirtualization).
	RecvType *types.Object
}

// Program is a fully checked module.
type Program struct {
	Module     *ast.Module
	Universe   *types.Universe
	Globals    []*VarSym
	Procs      []*Procedure
	ProcByName map[string]*Procedure

	// TypeOf records the type of every expression.
	TypeOf map[ast.Expr]types.Type
	// SymOf records identifier resolution for variable references.
	SymOf map[*ast.Ident]*VarSym
	// ConstOf records identifier resolution for constant references.
	ConstOf map[*ast.Ident]*ConstSym
	// Calls records resolution of every call expression.
	Calls map[*ast.CallExpr]*CallInfo
	// ForSyms records the implicitly declared index variable of FOR loops.
	ForSyms map[*ast.ForStmt]*VarSym
	// WithSyms records the alias binding of WITH statements.
	WithSyms map[*ast.WithStmt]*VarSym
	// GlobalInits records initializers for globals, in declaration order.
	GlobalInits []GlobalInit

	typeNames map[string]types.Type
}

// GlobalInit pairs a global with its initializer expression.
type GlobalInit struct {
	Var  *VarSym
	Expr ast.Expr
}

// TypeNamed resolves a declared or builtin type name, or nil.
func (p *Program) TypeNamed(name string) types.Type { return p.typeNames[name] }
