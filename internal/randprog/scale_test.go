package randprog_test

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/driver"
	"tbaa/internal/interp"
	"tbaa/internal/randprog"
)

// countLines counts source lines the way the generator budgets them.
func countLines(src string) int {
	return strings.Count(src, "\n")
}

// TestScaleDeterministic pins the at-scale generator's contract: the
// same (seed, config) always yields byte-identical source, and
// different seeds yield different programs.
func TestScaleDeterministic(t *testing.T) {
	cfg := randprog.ScaleConfigForLines(10_000)
	a := randprog.GenerateScale(7, cfg)
	b := randprog.GenerateScale(7, cfg)
	if a != b {
		t.Fatal("GenerateScale is not deterministic for a fixed seed")
	}
	if c := randprog.GenerateScale(8, cfg); c == a {
		t.Fatal("different seeds produced identical programs")
	}
}

// TestScaleSizeBand checks generated modules land in the advertised
// 10k–100k-line band, close to the requested target.
func TestScaleSizeBand(t *testing.T) {
	targets := []int{10_000, 32_000, 100_000}
	if testing.Short() {
		targets = targets[:1]
	}
	for _, n := range targets {
		for seed := int64(0); seed < 3; seed++ {
			src := randprog.GenerateScale(seed, randprog.ScaleConfigForLines(n))
			got := countLines(src)
			if got < n*9/10 || got > n*11/10 {
				t.Errorf("target %d seed %d: %d lines, outside ±10%%", n, seed, got)
			}
			if got < 9_000 || got > 110_000 {
				t.Errorf("target %d seed %d: %d lines, outside the 10k–100k band", n, seed, got)
			}
		}
	}
}

// TestScaleCompilesAndRuns checks the generated modules are valid
// MiniM3 that compiles and terminates without trapping — at-scale
// programs must be real workloads, not fuzz noise.
func TestScaleCompilesAndRuns(t *testing.T) {
	n := 12_000
	seeds := int64(4)
	if testing.Short() {
		seeds = 1
	}
	for seed := int64(0); seed < seeds; seed++ {
		src := randprog.GenerateScale(seed, randprog.ScaleConfigForLines(n))
		prog, _, err := driver.Compile("scale.m3", src)
		if err != nil {
			t.Fatalf("seed %d does not compile: %v", seed, err)
		}
		in := interp.New(prog)
		in.MaxSteps = 50_000_000
		if _, err := in.Run(); err != nil {
			t.Fatalf("seed %d trapped: %v", seed, err)
		}
	}
}

// TestScalePipelineDifferential is the at-scale differential: on
// sampled large modules, the full pass pipeline must preserve
// interpreter output byte-for-byte at every analysis level.
func TestScalePipelineDifferential(t *testing.T) {
	configs := []alias.Options{
		{Level: alias.LevelTypeDecl},
		{Level: alias.LevelSMFieldTypeRefs},
		{Level: alias.LevelFSTypeRefs},
		{Level: alias.LevelIPTypeRefs},
		{Level: alias.LevelIPTypeRefs, OpenWorld: true},
	}
	seeds := int64(3)
	if testing.Short() {
		seeds = 1
		configs = []alias.Options{{Level: alias.LevelIPTypeRefs}}
	}
	cfg := randprog.ScaleConfigForLines(10_000)
	for seed := int64(0); seed < seeds; seed++ {
		src := randprog.GenerateScale(seed, cfg)
		plainProg, _, err := driver.Compile("scale.m3", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		in := interp.New(plainProg)
		in.MaxSteps = 50_000_000
		want, err := in.Run()
		if err != nil {
			t.Fatalf("seed %d: baseline trapped: %v", seed, err)
		}
		for _, opts := range configs {
			prog, _, err := driver.Compile("scale.m3", src)
			if err != nil {
				t.Fatal(err)
			}
			env, err := driver.NewPassEnv(prog, opts)
			if err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, opts, err)
			}
			if _, err := driver.RunPasses(env,
				driver.DevirtPass{}, driver.MinvInlinePass{}, driver.RLEPass{}, driver.PREPass{}); err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, opts, err)
			}
			in2 := interp.New(prog)
			in2.MaxSteps = 50_000_000
			got, err := in2.Run()
			if err != nil {
				t.Fatalf("seed %d opts %+v: pipeline trapped: %v", seed, opts, err)
			}
			if got != want {
				t.Fatalf("seed %d opts %+v: pipeline diverged\nwant %d bytes\ngot  %d bytes",
					seed, opts, len(want), len(got))
			}
		}
	}
}

// TestLongDifferentialFuzz is the nightly extended fuzz: it runs the
// full-pipeline differential on RANDPROG_SEEDS random small programs at
// every level (the nightly workflow sets it to thousands). Without the
// variable it covers a token handful so the harness itself stays
// exercised in regular runs.
func TestLongDifferentialFuzz(t *testing.T) {
	seeds := 5
	if v := os.Getenv("RANDPROG_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("invalid RANDPROG_SEEDS=%q", v)
		}
		seeds = n
	} else if testing.Short() {
		t.Skip("set RANDPROG_SEEDS for the long fuzz")
	}
	configs := []alias.Options{
		{Level: alias.LevelTypeDecl},
		{Level: alias.LevelFieldTypeDecl},
		{Level: alias.LevelSMFieldTypeRefs},
		{Level: alias.LevelFSTypeRefs},
		{Level: alias.LevelIPTypeRefs},
		{Level: alias.LevelIPTypeRefs, OpenWorld: true},
	}
	ran := 0
	for seed := int64(100_000); seed < int64(100_000+seeds); seed++ {
		src := randprog.Generate(seed, randprog.DefaultConfig())
		plainProg, _, err := driver.Compile("rand.m3", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		in := interp.New(plainProg)
		in.MaxSteps = 2_000_000
		want, err := in.Run()
		if err != nil {
			continue // trapping program: optimization contracts don't apply
		}
		ran++
		for _, opts := range configs {
			prog, _, err := driver.Compile("rand.m3", src)
			if err != nil {
				t.Fatal(err)
			}
			env, err := driver.NewPassEnv(prog, opts)
			if err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, opts, err)
			}
			if _, err := driver.RunPasses(env,
				driver.DevirtPass{}, driver.MinvInlinePass{}, driver.RLEPass{}, driver.PREPass{}); err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, opts, err)
			}
			in2 := interp.New(prog)
			in2.MaxSteps = 8_000_000
			got, err := in2.Run()
			if err != nil {
				t.Fatalf("seed %d opts %+v: pipeline trapped: %v\n%s", seed, opts, err, src)
			}
			if got != want {
				t.Fatalf("seed %d opts %+v: pipeline diverged\nwant %q\ngot  %q\n%s",
					seed, opts, want, got, src)
			}
		}
	}
	t.Logf("long fuzz ran %d/%d seeds", ran, seeds)
	if ran < seeds/2 {
		t.Errorf("too many trapping seeds: only %d of %d ran", ran, seeds)
	}
}
