package randprog

// Scale mode: GenerateScale emits coherent 10k-100k-line MiniM3 modules
// that exercise the analysis at sizes where the stock suite (whose
// largest member measures in microseconds) never goes: deep type
// hierarchies with field-dense object declarations, wide virtual
// dispatch cones, hot mutually-recursive procedure clusters, and
// thousands of worker procedures with bounded per-procedure working
// sets. Programs are deterministic per (seed, config), always
// terminate, and run in the differential interpreter within a few
// hundred thousand steps: the module body drives only a sampled subset
// of the workers at small call depths, so module *size* scales two
// orders of magnitude while *execution* stays test-suite friendly.

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// ScaleConfig bounds one generated at-scale module. The zero value of
// any field is replaced by a derived default; most callers should use
// ScaleConfigForLines and only adjust TargetLines.
type ScaleConfig struct {
	// TargetLines is the module size the generator aims for, in emitted
	// source lines. The generator tops up worker procedures until it is
	// within a few percent below the target, so the result lands in
	// [0.95*TargetLines, 1.05*TargetLines] for targets in the advertised
	// 10k-100k band.
	TargetLines int
	// Types is the number of object types (all transitively rooted at
	// T0). Grows ~sqrt(TargetLines) by default so alias-class diversity
	// rises without making the class-pair arithmetic quadratic in lines.
	Types int
	// IntFieldsPer / RefFieldsPer bound the extra fields each type
	// declares on top of the inherited ones (field-dense structs).
	IntFieldsPer int
	RefFieldsPer int
	// Pools is the number of global object variables the workers share.
	Pools int
	// Clusters is the number of mutually recursive procedure clusters
	// (each a call-graph SCC of 2-4 procedures).
	Clusters int
	// StmtsPer is the statement budget of one worker procedure body.
	StmtsPer int
	// SampleCalls bounds how many workers the module body invokes (the
	// interpreter cost knob; module size is unaffected).
	SampleCalls int
}

// ScaleConfigForLines derives a coherent configuration for a module of
// roughly n lines. Callers commonly pass one of the sweep sizes
// (10_000 .. 100_000).
func ScaleConfigForLines(n int) ScaleConfig {
	if n < 1000 {
		n = 1000
	}
	sq := int(math.Sqrt(float64(n)))
	return ScaleConfig{
		TargetLines:  n,
		Types:        clampInt(16, 160, sq/2),
		IntFieldsPer: 5,
		RefFieldsPer: 2,
		Pools:        clampInt(16, 96, sq/3),
		Clusters:     clampInt(2, 24, n/4000),
		StmtsPer:     24,
		SampleCalls:  120,
	}
}

func clampInt(lo, hi, v int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// fill replaces zero fields with the derived defaults for TargetLines.
func (c ScaleConfig) fill() ScaleConfig {
	d := ScaleConfigForLines(c.TargetLines)
	if c.Types == 0 {
		c.Types = d.Types
	}
	if c.IntFieldsPer == 0 {
		c.IntFieldsPer = d.IntFieldsPer
	}
	if c.RefFieldsPer == 0 {
		c.RefFieldsPer = d.RefFieldsPer
	}
	if c.Pools == 0 {
		c.Pools = d.Pools
	}
	if c.Clusters == 0 {
		c.Clusters = d.Clusters
	}
	if c.StmtsPer == 0 {
		c.StmtsPer = d.StmtsPer
	}
	if c.SampleCalls == 0 {
		c.SampleCalls = d.SampleCalls
	}
	c.TargetLines = d.TargetLines
	return c
}

// GenerateScale produces a deterministic at-scale program for a seed.
func GenerateScale(seed int64, cfg ScaleConfig) string {
	cfg = cfg.fill()
	g := &sgen{rng: rand.New(rand.NewSource(seed ^ 0x5ca1ab1e)), cfg: cfg}
	g.program()
	return g.b.String()
}

// sgen is the at-scale generator. Unlike gen it tracks emitted lines so
// the worker loop can top up to the configured size, and it gives every
// worker a small fixed working set of pools (realistic locality, and
// bounded per-procedure reference counts).
type sgen struct {
	rng   *rand.Rand
	cfg   ScaleConfig
	b     strings.Builder
	lines int

	supers    []int  // direct supertype (-1 for T0)
	overrides []bool // type overrides the virtual get
	// intFields[t] / refFields[t] name the fields T<t> itself declares;
	// refTarget[f] is the declared type of ref field f (indexed by the
	// global ref-field counter that names it).
	intFields [][]string
	refFields [][]string
	refTarget map[string]int

	poolType []int // static type of pool global p<k>

	nWorkers  int
	nClusters int
}

func (g *sgen) pick(n int) int { return g.rng.Intn(n) }

func (g *sgen) printf(format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	g.lines += strings.Count(s, "\n")
	g.b.WriteString(s)
}

// isSub reports whether T<a> is T<b> or a transitive subtype of it.
func (g *sgen) isSub(a, b int) bool {
	for t := a; t != -1; t = g.supers[t] {
		if t == b {
			return true
		}
	}
	return false
}

// subtypeOf picks a random subtype of T<t> (possibly t itself).
func (g *sgen) subtypeOf(t int) int {
	var subs []int
	for u := range g.supers {
		if g.isSub(u, t) {
			subs = append(subs, u)
		}
	}
	return subs[g.pick(len(subs))]
}

func (g *sgen) program() {
	g.types()
	g.globals()
	g.methods()
	g.constructors()
	g.clusters()
	g.workers()
	g.main()
}

// types emits the hierarchy: T0 is the root with the virtual get; every
// later type extends its predecessor with probability ~1/2 (deep
// chains) or a random earlier type (bushy cones), declaring a dense
// block of integer fields and a couple of typed reference fields.
func (g *sgen) types() {
	n := g.cfg.Types
	g.printf("MODULE Scale;\n\nTYPE\n")
	g.printf("  T0 = OBJECT i0: INTEGER; r0: T0; METHODS get(): INTEGER := M0; END;\n")
	g.supers = []int{-1}
	g.overrides = []bool{true}
	g.intFields = [][]string{{"i0"}}
	g.refFields = [][]string{{"r0"}}
	g.refTarget = map[string]int{"r0": 0}
	for t := 1; t < n; t++ {
		super := t - 1
		if g.pick(2) == 0 {
			super = g.pick(t)
		}
		g.supers = append(g.supers, super)
		ovr := g.pick(3) != 0
		g.overrides = append(g.overrides, ovr)
		nInt := 2 + g.pick(g.cfg.IntFieldsPer)
		nRef := 1 + g.pick(g.cfg.RefFieldsPer)
		var ints, refs []string
		g.printf("  T%d = T%d OBJECT", t, super)
		for j := 0; j < nInt; j++ {
			f := fmt.Sprintf("f%dx%d", t, j)
			ints = append(ints, f)
			g.printf(" %s: INTEGER;", f)
		}
		for j := 0; j < nRef; j++ {
			f := fmt.Sprintf("r%dx%d", t, j)
			tgt := g.pick(t) // any earlier type
			refs = append(refs, f)
			g.refTarget[f] = tgt
			g.printf(" %s: T%d;", f, tgt)
		}
		if ovr {
			g.printf(" OVERRIDES get := M%d;", t)
		}
		g.printf(" END;\n")
		g.intFields = append(g.intFields, ints)
		g.refFields = append(g.refFields, refs)
	}
	g.printf("  Arr = ARRAY OF INTEGER;\n")
}

func (g *sgen) globals() {
	g.printf("\nVAR\n")
	for k := 0; k < 8; k++ {
		g.printf("  gi%d: INTEGER;\n", k)
	}
	for k := 0; k < 4; k++ {
		g.printf("  ga%d: Arr;\n", k)
	}
	g.poolType = make([]int, g.cfg.Pools)
	for k := 0; k < g.cfg.Pools; k++ {
		t := g.pick(g.cfg.Types)
		g.poolType[k] = t
		g.printf("  p%d: T%d;\n", k, t)
	}
}

// ownIntField picks an integer field visible on T<t> (its own chain).
func (g *sgen) ownIntField(t int) string {
	// Walk the chain collecting candidates; i0 is always there.
	var fs []string
	for a := t; a != -1; a = g.supers[a] {
		fs = append(fs, g.intFields[a]...)
	}
	return fs[g.pick(len(fs))]
}

// methods emits one get override body per overriding type: pure
// arithmetic, receiver mutation, or a global write, so dispatch targets
// have observably different mod-ref behavior.
func (g *sgen) methods() {
	for t := 0; t < g.cfg.Types; t++ {
		if !g.overrides[t] {
			continue
		}
		g.printf("\nPROCEDURE M%d(self: T%d): INTEGER =\nBEGIN\n", t, t)
		f := g.ownIntField(t)
		switch g.pick(3) {
		case 0:
			g.printf("  RETURN self.%s * 2 + %d;\n", f, t)
		case 1:
			g.printf("  self.%s := self.%s + 1;\n  RETURN self.%s;\n", f, f, f)
		default:
			g.printf("  gi%d := gi%d + %d;\n  RETURN self.%s;\n", t%8, t%8, t+1, f)
		}
		g.printf("END M%d;\n", t)
	}
}

// constructors emits Mk<t> for every type: a fresh node with its own
// integer fields seeded and r0 allocated (so depth-2 reads through r0
// are guarded-safe), occasionally wiring a pre-existing pool object
// into a declared ref field (invocation-freshness stress).
func (g *sgen) constructors() {
	for t := 0; t < g.cfg.Types; t++ {
		g.printf("\nPROCEDURE Mk%d(v: INTEGER): T%d =\nVAR n: T%d;\nBEGIN\n", t, t, t)
		g.printf("  n := NEW(T%d);\n  n.i0 := v;\n  n.r0 := NEW(T0);\n", t)
		for _, f := range g.intFields[t] {
			if f == "i0" {
				continue
			}
			g.printf("  n.%s := v + %d;\n", f, g.pick(50))
		}
		for _, f := range g.refFields[t] {
			if f == "r0" {
				continue
			}
			tgt := g.refTarget[f]
			if g.pick(4) == 0 {
				if k := g.poolOf(tgt); k >= 0 {
					// Store an old object into the fresh node: the target
					// stays invocation-fresh, the value is not.
					g.printf("  IF v > 40 THEN n.%s := p%d; END;\n", f, k)
					continue
				}
			}
			g.printf("  n.%s := NEW(T%d);\n", f, g.subtypeOf(tgt))
		}
		g.printf("  RETURN n;\nEND Mk%d;\n", t)
	}
}

// poolOf returns a pool global assignable to T<want>, or -1.
func (g *sgen) poolOf(want int) int {
	for tries := 0; tries < 12; tries++ {
		k := g.pick(len(g.poolType))
		if g.isSub(g.poolType[k], want) {
			return k
		}
	}
	for k, t := range g.poolType {
		if g.isSub(t, want) {
			return k
		}
	}
	return -1
}

// clusters emits the mutually recursive procedure clusters: K<c>x<i>
// calls K<c>x<i+1 mod size> with a decremented depth, each member
// touching a distinct slice of the pools, so every cluster is a hot
// call-graph SCC with its own mod-ref footprint.
func (g *sgen) clusters() {
	g.nClusters = g.cfg.Clusters
	for c := 0; c < g.nClusters; c++ {
		size := 2 + g.pick(3)
		for i := 0; i < size; i++ {
			g.printf("\nPROCEDURE K%dx%d(d: INTEGER): INTEGER =\nBEGIN\n", c, i)
			g.printf("  IF d <= 0 THEN RETURN %d; END;\n", c+i)
			k := g.pick(len(g.poolType))
			g.printf("  p%d.i0 := p%d.i0 + d;\n", k, k)
			if g.pick(2) == 0 {
				g.printf("  gi%d := gi%d + %d;\n", c%8, c%8, i+1)
			}
			g.printf("  RETURN K%dx%d(d - 1) + %d;\nEND K%dx%d;\n", c, (i+1)%size, i, c, i)
		}
	}
}

// workers emits W<p> procedures until the module reaches its line
// budget. Each worker owns a small working set of pools and may call
// strictly earlier workers (fuel-guarded), cluster entries, virtual
// methods, and constructors.
func (g *sgen) workers() {
	// Reserve room for the module body: pool/array/int initialization,
	// the sampled calls, and the observable-state dump.
	reserve := 3*len(g.poolType) + 8 + 4 + g.cfg.SampleCalls + g.nClusters +
		len(g.poolType) + 8 + 4 + 16
	budget := g.cfg.TargetLines - reserve
	for g.lines < budget {
		g.worker(g.nWorkers)
		g.nWorkers++
	}
}

func (g *sgen) worker(idx int) {
	g.printf("\nPROCEDURE W%d(d: INTEGER; a: INTEGER): INTEGER =\nVAR li: INTEGER; lj: INTEGER;\nBEGIN\n", idx)
	g.printf("  li := a;\n  lj := d;\n")
	// The worker's working set: a few pools it keeps coming back to.
	ws := make([]int, 3+g.pick(4))
	for i := range ws {
		ws[i] = g.pick(len(g.poolType))
	}
	for s := 0; s < g.cfg.StmtsPer; s++ {
		g.workerStmt(idx, ws)
	}
	g.printf("  RETURN li + lj;\nEND W%d;\n", idx)
}

// wsPool picks a pool from the worker's working set.
func wsPick(g *sgen, ws []int) int { return ws[g.pick(len(ws))] }

// workerStmt emits one statement of a worker body. All heap loads
// through ref fields are NIL-guarded; calls to other workers pass d-1
// behind a fuel guard, so the dynamic call tree is bounded even though
// the static call graph is wide.
func (g *sgen) workerStmt(idx int, ws []int) {
	k := wsPick(g, ws)
	t := g.poolType[k]
	switch g.pick(12) {
	case 0: // dense field load
		g.printf("  li := li + p%d.%s;\n", k, g.ownIntField(t))
	case 1: // dense field store
		g.printf("  p%d.%s := li + %d;\n", k, g.ownIntField(t), g.pick(100))
	case 2: // depth-2 guarded read through r0
		g.printf("  IF p%d.r0 # NIL THEN lj := lj + p%d.r0.i0; END;\n", k, k)
	case 3: // depth-2 guarded store through r0 (prefix-kill stress)
		k2 := wsPick(g, ws)
		g.printf("  IF p%d.r0 # NIL THEN p%d.r0.r0 := p%d.r0; END;\n", k, k, k2)
	case 4: // pointer shuffle within the cone
		k2 := g.poolOf(t)
		if k2 >= 0 {
			g.printf("  p%d := p%d;\n", k, k2)
		} else {
			g.printf("  p%d := NEW(T%d);\n", k, g.subtypeOf(t))
		}
	case 5: // fresh allocation (subtype: widens the row, narrows the fact)
		g.printf("  p%d := Mk%d(li MOD 97);\n", k, g.subtypeOf(t))
	case 6: // virtual dispatch
		g.printf("  li := li + p%d.get();\n", k)
	case 7: // array traffic
		a := g.pick(4)
		g.printf("  ga%d[ABS(li) MOD NUMBER(ga%d)] := lj;\n", a, a)
	case 8: // call an earlier worker, fuel-guarded
		if idx > 0 {
			g.printf("  IF d > 0 THEN lj := lj + W%d(d - 1, li MOD 53); END;\n", g.pick(idx))
		} else {
			g.printf("  INC(li, %d);\n", 1+g.pick(9))
		}
	case 9: // enter a recursive cluster at a small depth
		c := g.pick(g.nClusters)
		g.printf("  lj := lj + K%dx0(%d);\n", c, 2+g.pick(4))
	case 10: // a small bounded loop of arithmetic
		iv := g.pick(100)
		g.printf("  FOR it%d := 0 TO %d DO li := (li * 3 + it%d + gi%d) MOD 99991; END;\n",
			iv, 1+g.pick(6), iv, g.pick(8))
	default:
		g.printf("  gi%d := (gi%d + li) MOD 99991;\n", g.pick(8), g.pick(8))
	}
}

// main emits the module body: deterministic initialization of every
// global, a sampled sweep of worker calls at small fuel, one entry into
// each cluster, and an observable-state dump (ints, array edges, and a
// folded checksum of every pool's i0).
func (g *sgen) main() {
	g.printf("\nBEGIN\n")
	for k := 0; k < 8; k++ {
		g.printf("  gi%d := %d;\n", k, k*7+1)
	}
	for k := 0; k < 4; k++ {
		g.printf("  ga%d := NEW(Arr, %d);\n", k, 8+k)
	}
	for k, t := range g.poolType {
		g.printf("  p%d := NEW(T%d);\n", k, g.subtypeOf(t))
		g.printf("  p%d.i0 := %d;\n", k, g.pick(100))
		g.printf("  p%d.r0 := NEW(T0);\n", k)
	}
	for c := 0; c < g.nClusters; c++ {
		g.printf("  gi0 := gi0 + K%dx0(%d);\n", c, 4+g.pick(5))
	}
	// Sampled worker calls: every stride-th worker, bounded by
	// SampleCalls, each with a tiny fuel so the dynamic tree stays small.
	stride := 1
	if g.nWorkers > g.cfg.SampleCalls {
		stride = (g.nWorkers + g.cfg.SampleCalls - 1) / g.cfg.SampleCalls
	}
	for w := 0; w < g.nWorkers; w += stride {
		g.printf("  gi%d := (gi%d + W%d(2, %d)) MOD 99991;\n", w%8, w%8, w, g.pick(100))
	}
	for k := 0; k < 8; k++ {
		g.printf("  PutInt(gi%d); PutChar(' ');\n", k)
	}
	for k := 0; k < 4; k++ {
		g.printf("  PutInt(ga%d[0] + ga%d[NUMBER(ga%d) - 1]); PutChar(' ');\n", k, k, k)
	}
	// Fold the pools into one checksum line instead of thousands of
	// PutInt lines: reuse gi0 as the accumulator.
	for k := range g.poolType {
		g.printf("  gi0 := (gi0 * 31 + p%d.i0) MOD 99991;\n", k)
	}
	g.printf("  PutInt(gi0); PutLn();\nEND Scale.\n")
}
