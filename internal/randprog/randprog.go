// Package randprog generates random, well-typed, terminating MiniM3
// programs for differential testing: an optimized program must produce
// byte-identical output to the unoptimized one.
package randprog

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated program.
type Config struct {
	Types    int // number of object types (≥2)
	Globals  int // number of global variables
	Procs    int // number of procedures
	StmtsPer int // statements per body
	MaxDepth int // statement nesting depth
}

// DefaultConfig returns a moderate program shape.
func DefaultConfig() Config {
	return Config{Types: 4, Globals: 6, Procs: 3, StmtsPer: 8, MaxDepth: 2}
}

// Generate produces a random program from a seed.
func Generate(seed int64, cfg Config) string {
	g := &gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg, readOnly: map[string]bool{}}
	return g.program()
}

type gen struct {
	rng *rand.Rand
	cfg Config
	b   strings.Builder
	// intVars / objVars[t] name globals and in-scope locals by type.
	intVars []string
	objVars map[int][]string // type index -> var names
	arrVars []string
	// readOnly marks names that cannot be assigned (FOR indices).
	readOnly map[string]bool
	nTypes   int
	// supers[t] is T<t>'s direct supertype index (-1 for the root T0).
	supers []int
	// overrides[t] reports whether T<t> overrides the get method, so
	// virtual dispatch has a type-dependent target set.
	overrides []bool
	procs     []procSig
	// callable bounds which procedures may be called from the current
	// body (only earlier ones, keeping the call graph acyclic). The
	// call-heavy preamble (constructors, the recursive pair, the by-ref
	// escape) is callable from everywhere.
	callable int
	depth    int
}

// mutableInt picks an assignable integer variable.
func (g *gen) mutableInt() string {
	for tries := 0; tries < 20; tries++ {
		v := g.intVars[g.pick(len(g.intVars))]
		if !g.readOnly[v] {
			return v
		}
	}
	for _, v := range g.intVars {
		if !g.readOnly[v] {
			return v
		}
	}
	return g.intVars[0]
}

type procSig struct {
	name    string
	nInt    int
	hasVar  bool
	returns bool
}

func (g *gen) pick(n int) int { return g.rng.Intn(n) }

func (g *gen) printf(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
}

func (g *gen) program() string {
	g.nTypes = g.cfg.Types
	g.objVars = make(map[int][]string)
	g.printf("MODULE Rand;\n\nTYPE\n")
	// T0 is the root and declares a virtual method; subtypes of a
	// random earlier type override it with probability 1/2, so dispatch
	// sets vary with the receiver cone and the instantiated types.
	g.printf("  T0 = OBJECT i0: INTEGER; r0: T0; METHODS get(): INTEGER := M0; END;\n")
	g.supers = []int{-1}
	g.overrides = []bool{true}
	for t := 1; t < g.nTypes; t++ {
		super := g.pick(t)
		g.supers = append(g.supers, super)
		ovr := g.pick(2) == 0
		g.overrides = append(g.overrides, ovr)
		g.printf("  T%d = T%d OBJECT i%d: INTEGER; r%d: T%d;", t, super, t, t, g.pick(t+1))
		if ovr {
			g.printf(" OVERRIDES get := M%d;", t)
		}
		g.printf(" END;\n")
	}
	g.printf("  Arr = ARRAY OF INTEGER;\n")
	g.printf("\nVAR\n")
	for v := 0; v < g.cfg.Globals; v++ {
		switch g.pick(3) {
		case 0:
			name := fmt.Sprintf("gi%d", v)
			g.printf("  %s: INTEGER;\n", name)
			g.intVars = append(g.intVars, name)
		case 1:
			t := g.pick(g.nTypes)
			name := fmt.Sprintf("go%d", v)
			g.printf("  %s: T%d;\n", name, t)
			g.objVars[t] = append(g.objVars[t], name)
		case 2:
			name := fmt.Sprintf("ga%d", v)
			g.printf("  %s: Arr;\n", name)
			g.arrVars = append(g.arrVars, name)
		}
	}
	if len(g.intVars) == 0 {
		g.printf("  gi: INTEGER;\n")
		g.intVars = append(g.intVars, "gi")
	}
	if len(g.objVars[0]) == 0 {
		g.printf("  gr: T0;\n")
		g.objVars[0] = append(g.objVars[0], "gr")
	}
	if len(g.arrVars) == 0 {
		g.printf("  gar: Arr;\n")
		g.arrVars = append(g.arrVars, "gar")
	}
	// The call-heavy preamble, then the random procedures.
	g.preamble()
	for p := 0; p < g.cfg.Procs; p++ {
		g.proc(p)
	}
	g.callable = len(g.procs)
	// Main body: initialize everything, run statements, dump state.
	g.printf("\nBEGIN\n")
	g.initAll()
	g.depth = 0
	for s := 0; s < g.cfg.StmtsPer; s++ {
		g.stmt(1)
	}
	// Dump observable state so optimizations that corrupt anything show.
	for _, v := range g.intVars {
		g.printf("  PutInt(%s); PutChar(' ');\n", v)
	}
	for t := 0; t < g.nTypes; t++ {
		for _, v := range g.objVars[t] {
			g.printf("  IF %s # NIL THEN PutInt(%s.i0); PutChar(' '); END;\n", v, v)
		}
	}
	for _, v := range g.arrVars {
		g.printf("  PutInt(%s[0] + %s[NUMBER(%s) - 1]); PutChar(' ');\n", v, v, v)
	}
	g.printf("  PutLn();\nEND Rand.\n")
	return g.b.String()
}

// initAll allocates every reference global and seeds integers, so most
// random programs run without NIL traps.
func (g *gen) initAll() {
	for i, v := range g.intVars {
		g.printf("  %s := %d;\n", v, i*3+1)
	}
	for t := 0; t < g.nTypes; t++ {
		for _, v := range g.objVars[t] {
			g.printf("  %s := NEW(T%d);\n", v, t)
			g.printf("  %s.r0 := NEW(T0);\n", v)
			g.printf("  %s.i0 := %d;\n", v, g.pick(100))
		}
	}
	for i, v := range g.arrVars {
		g.printf("  %s := NEW(Arr, %d);\n", v, 4+i)
	}
}

// preamble emits the call-heavy fixture procedures: one get
// implementation per overriding type (pure, receiver-mutating, or
// global-writing, so mod-ref summaries differ per dispatch target), a
// constructor per type (exercising invocation-freshness, with
// occasional stores of pre-existing objects into the fresh node and
// occasional non-fresh returns), a mutually recursive pair (a
// call-graph SCC), and a by-ref rebinder (an address-taken escape).
func (g *gen) preamble() {
	for t := 0; t < g.nTypes; t++ {
		if !g.overrides[t] {
			continue
		}
		g.printf("\nPROCEDURE M%d(self: T%d): INTEGER =\nBEGIN\n", t, t)
		switch g.pick(3) {
		case 0: // pure
			g.printf("  RETURN self.i0 * 2 + %d;\n", t)
		case 1: // mutates the receiver
			g.printf("  self.i0 := self.i0 + 1;\n  RETURN self.i0;\n")
		default: // reassigns a global
			g.printf("  %s := %s + %d;\n  RETURN self.i0;\n", g.intVars[0], g.intVars[0], t+1)
		}
		g.printf("END M%d;\n", t)
	}
	for t := 0; t < g.nTypes; t++ {
		g.printf("\nPROCEDURE Mk%d(v: INTEGER): T%d =\nVAR n: T%d;\nBEGIN\n", t, t, t)
		g.printf("  n := NEW(T%d);\n  n.i0 := v;\n  n.r0 := NEW(T0);\n", t)
		if g.pick(3) == 0 {
			// A pre-existing object stored into the fresh node: the
			// store target stays invocation-fresh, the value is old.
			g.printf("  IF v > 40 THEN n.r0 := %s; END;\n", g.objVars[0][0])
		}
		if g.pick(4) == 0 && len(g.objVars[t]) > 0 {
			// A pre-existing object returned instead: the constructor
			// must then not count as fresh-returning.
			g.printf("  IF v > 45 THEN RETURN %s; END;\n", g.objVars[t][0])
		}
		g.printf("  RETURN n;\nEND Mk%d;\n", t)
	}
	g.printf("\nPROCEDURE RecA(d: INTEGER): INTEGER =\nBEGIN\n")
	g.printf("  IF d <= 0 THEN RETURN 0; END;\n")
	g.printf("  %s.i0 := %s.i0 + d;\n", g.objVars[0][0], g.objVars[0][0])
	g.printf("  RETURN RecB(d - 1) + 1;\nEND RecA;\n")
	g.printf("\nPROCEDURE RecB(d: INTEGER): INTEGER =\nBEGIN\n")
	g.printf("  IF d <= 0 THEN RETURN 1; END;\n")
	g.printf("  RETURN RecA(d - 1) + 2;\nEND RecB;\n")
	g.printf("\nPROCEDURE Esc(VAR o: T0; v: INTEGER) =\nBEGIN\n")
	g.printf("  IF v MOD 2 = 0 THEN o := NEW(T0); END;\n")
	g.printf("END Esc;\n")
}

func (g *gen) proc(idx int) {
	sig := procSig{
		name:    fmt.Sprintf("P%d", idx),
		nInt:    1 + g.pick(2),
		hasVar:  g.pick(2) == 0,
		returns: g.pick(2) == 0,
	}
	g.procs = append(g.procs, sig)
	g.callable = idx // procedures may only call earlier ones
	g.printf("\nPROCEDURE %s(", sig.name)
	for i := 0; i < sig.nInt; i++ {
		if i > 0 {
			g.printf("; ")
		}
		g.printf("a%d: INTEGER", i)
	}
	if sig.hasVar {
		g.printf("; VAR out: INTEGER")
	}
	g.printf(")")
	if sig.returns {
		g.printf(": INTEGER")
	}
	g.printf(" =\nVAR li: INTEGER;\nBEGIN\n")
	// Save outer scope; params become in-scope ints.
	savedInts := g.intVars
	g.intVars = append([]string{"li"}, g.intVars...)
	for i := 0; i < sig.nInt; i++ {
		g.intVars = append(g.intVars, fmt.Sprintf("a%d", i))
	}
	if sig.hasVar {
		g.intVars = append(g.intVars, "out")
	}
	g.printf("  li := a0;\n")
	nStmts := 2 + g.pick(g.cfg.StmtsPer/2+1)
	for s := 0; s < nStmts; s++ {
		g.stmt(1)
	}
	if sig.hasVar {
		g.printf("  out := li;\n")
	}
	if sig.returns {
		g.printf("  RETURN li;\n")
	}
	g.printf("END %s;\n", sig.name)
	g.intVars = savedInts
}

// intExpr produces a random INTEGER expression.
func (g *gen) intExpr(depth int) string {
	if depth <= 0 || g.pick(3) == 0 {
		switch g.pick(4) {
		case 0:
			return fmt.Sprintf("%d", g.pick(50))
		case 1:
			return g.intVars[g.pick(len(g.intVars))]
		case 2:
			// Heap read: object field.
			t, v := g.someObj()
			return fmt.Sprintf("%s.i%d", v, g.fieldFor(t))
		default:
			v := g.arrVars[g.pick(len(g.arrVars))]
			return fmt.Sprintf("%s[%s MOD NUMBER(%s)]", v, g.smallIndex(), v)
		}
	}
	op := []string{"+", "-", "*"}[g.pick(3)]
	return fmt.Sprintf("(%s %s %s)", g.intExpr(depth-1), op, g.intExpr(depth-1))
}

// smallIndex yields a non-negative index expression.
func (g *gen) smallIndex() string {
	switch g.pick(3) {
	case 0:
		return fmt.Sprintf("%d", g.pick(4))
	case 1:
		return fmt.Sprintf("ABS(%s)", g.intVars[g.pick(len(g.intVars))])
	default:
		return fmt.Sprintf("ABS(%s)", g.intExpr(1))
	}
}

// subtypeOf picks a random type index whose supertype chain reaches t
// (possibly t itself).
func (g *gen) subtypeOf(t int) int {
	var subs []int
	for u := 0; u < g.nTypes; u++ {
		for a := u; a != -1; a = g.supers[a] {
			if a == t {
				subs = append(subs, u)
				break
			}
		}
	}
	return subs[g.pick(len(subs))]
}

// someObj picks an object-typed variable; returns (type index, name).
func (g *gen) someObj() (int, string) {
	for tries := 0; tries < 10; tries++ {
		t := g.pick(g.nTypes)
		if vs := g.objVars[t]; len(vs) > 0 {
			return t, vs[g.pick(len(vs))]
		}
	}
	return 0, g.objVars[0][0]
}

// fieldFor picks an integer field visible on type t (own or inherited
// from T0, which always has i0).
func (g *gen) fieldFor(t int) int {
	if g.pick(2) == 0 {
		return 0
	}
	return 0 // i0 is always safe; own fields need supertype knowledge
}

func (g *gen) boolExpr() string {
	op := []string{"<", ">", "<=", ">=", "=", "#"}[g.pick(6)]
	return fmt.Sprintf("%s %s %s", g.intExpr(1), op, g.intExpr(1))
}

func (g *gen) indent() string { return strings.Repeat("  ", g.depth+1) }

func (g *gen) stmt(depth int) {
	if depth > g.cfg.MaxDepth {
		g.simpleStmt()
		return
	}
	switch g.pick(8) {
	case 0:
		g.printf("%sIF %s THEN\n", g.indent(), g.boolExpr())
		g.depth++
		g.stmt(depth + 1)
		g.depth--
		if g.pick(2) == 0 {
			g.printf("%sELSE\n", g.indent())
			g.depth++
			g.stmt(depth + 1)
			g.depth--
		}
		g.printf("%sEND;\n", g.indent())
	case 1:
		iv := fmt.Sprintf("fi%d%d", depth, g.pick(100))
		g.printf("%sFOR %s := 0 TO %d DO\n", g.indent(), iv, 1+g.pick(6))
		g.depth++
		g.intVars = append(g.intVars, iv)
		g.readOnly[iv] = true
		g.stmt(depth + 1)
		g.simpleStmt()
		g.intVars = g.intVars[:len(g.intVars)-1]
		delete(g.readOnly, iv)
		g.depth--
		g.printf("%sEND;\n", g.indent())
	default:
		g.simpleStmt()
	}
}

func (g *gen) simpleStmt() {
	ind := g.indent()
	switch g.pick(11) {
	case 8: // virtual dispatch (receivers are always allocated)
		_, v := g.someObj()
		g.printf("%s%s := %s.get();\n", ind, g.mutableInt(), v)
	case 9: // constructor call: a fresh (usually) subtype object
		u, v := g.someObj()
		g.printf("%s%s := Mk%d(%s);\n", ind, v, g.subtypeOf(u), g.intExpr(1))
	case 10: // recursion or a by-ref escape
		if g.pick(2) == 0 {
			g.printf("%s%s := RecA(%d);\n", ind, g.mutableInt(), 2+g.pick(5))
		} else {
			g.printf("%sEsc(%s, %s);\n", ind, g.objVars[0][g.pick(len(g.objVars[0]))], g.intExpr(1))
		}
	case 0: // integer variable assignment
		g.printf("%s%s := %s;\n", ind, g.mutableInt(), g.intExpr(2))
	case 1: // heap field store
		t, v := g.someObj()
		g.printf("%s%s.i%d := %s;\n", ind, v, g.fieldFor(t), g.intExpr(2))
	case 2: // array store
		v := g.arrVars[g.pick(len(g.arrVars))]
		g.printf("%s%s[%s MOD NUMBER(%s)] := %s;\n", ind, v, g.smallIndex(), v, g.intExpr(2))
	case 3: // pointer shuffle: assign object var from compatible var or NEW
		t, v := g.someObj()
		switch g.pick(3) {
		case 0:
			g.printf("%s%s := NEW(T%d);\n", ind, v, t)
			g.printf("%s%s.r0 := NEW(T0);\n", ind, v)
		case 1:
			// Allocate a random subtype: the assignment widens the
			// declared type's TypeRefsTable row (a merge) while the
			// variable's value stays exactly the subtype — what the
			// flow-sensitive refinement narrows on.
			g.printf("%s%s := NEW(T%d);\n", ind, v, g.subtypeOf(t))
			g.printf("%s%s.r0 := NEW(T0);\n", ind, v)
		default:
			// Assign from a variable of the same type (always safe).
			vs := g.objVars[t]
			g.printf("%s%s := %s;\n", ind, v, vs[g.pick(len(vs))])
		}
	case 4: // link objects through r0
		_, v1 := g.someObj()
		_, v2 := g.someObj()
		if g.pick(3) == 0 {
			// Depth-2 pointer store: generates a reaching-store fact for
			// v1.r0.r0 whose prefix (v1.r0) later stores must kill — the
			// class of staleness the prefix-store miscompile hid in.
			g.printf("%sIF %s.r0 # NIL THEN %s.r0.r0 := %s.r0; END;\n", ind, v1, v1, v2)
		} else {
			g.printf("%s%s.r0 := %s.r0;\n", ind, v1, v2)
		}
	case 5: // call a procedure if any are callable
		if g.callable == 0 {
			g.printf("%sINC(%s);\n", ind, g.mutableInt())
			return
		}
		sig := g.procs[g.pick(g.callable)]
		var args []string
		for i := 0; i < sig.nInt; i++ {
			args = append(args, g.intExpr(1))
		}
		if sig.hasVar {
			args = append(args, g.mutableInt())
		}
		call := fmt.Sprintf("%s(%s)", sig.name, strings.Join(args, ", "))
		if sig.returns && g.pick(2) == 0 {
			g.printf("%s%s := %s;\n", ind, g.mutableInt(), call)
		} else {
			g.printf("%s%s;\n", ind, call)
		}
	case 6: // read through a field chain (may be NIL at depth 2: guard)
		_, v := g.someObj()
		tgt := g.mutableInt()
		g.printf("%sIF %s.r0 # NIL THEN %s := %s.r0.i0; END;\n", ind, v, tgt, v)
	default:
		g.printf("%sINC(%s, %s);\n", ind, g.mutableInt(), g.intExpr(1))
	}
}
