package randprog_test

import (
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/driver"
	"tbaa/internal/interp"
	"tbaa/internal/modref"
	"tbaa/internal/opt"
	"tbaa/internal/randprog"
	"tbaa/internal/types"
)

// TestGeneratedProgramsCompile checks the generator emits valid MiniM3.
func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		src := randprog.Generate(seed, randprog.DefaultConfig())
		if _, _, err := driver.Compile("rand.m3", src); err != nil {
			t.Fatalf("seed %d does not compile: %v\n%s", seed, err, src)
		}
	}
}

// TestRLEPreservesSemantics is the core differential test: for many random
// programs, RLE under every analysis level must preserve output exactly.
func TestRLEPreservesSemantics(t *testing.T) {
	levels := []alias.Level{alias.LevelTypeDecl, alias.LevelFieldTypeDecl, alias.LevelSMFieldTypeRefs}
	seeds := 120
	if testing.Short() {
		seeds = 25
	}
	ran := 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := randprog.Generate(seed, randprog.DefaultConfig())
		plainProg, _, err := driver.Compile("rand.m3", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		in := interp.New(plainProg)
		in.MaxSteps = 2_000_000
		want, err := in.Run()
		if err != nil {
			continue // trapping program: optimization contracts don't apply
		}
		ran++
		for _, lvl := range levels {
			prog, _, err := driver.Compile("rand.m3", src)
			if err != nil {
				t.Fatal(err)
			}
			o := alias.New(prog, alias.Options{Level: lvl})
			mr := modref.Compute(prog)
			res := opt.RLE(prog, o, mr)
			in2 := interp.New(prog)
			in2.MaxSteps = 4_000_000
			got, err := in2.Run()
			if err != nil {
				t.Fatalf("seed %d level %v: optimized program trapped: %v\n%s", seed, lvl, err, src)
			}
			if got != want {
				t.Fatalf("seed %d level %v (removed %d): output diverged\nwant %q\ngot  %q\n%s",
					seed, lvl, res.Removed(), want, got, src)
			}
		}
	}
	if ran < seeds/2 {
		t.Errorf("too many trapping seeds: only %d of %d ran", ran, seeds)
	}
}

// TestFullPipelinePreservesSemantics adds devirt + inline + open-world RLE.
func TestFullPipelinePreservesSemantics(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 15
	}
	for seed := int64(1000); seed < int64(1000+seeds); seed++ {
		src := randprog.Generate(seed, randprog.DefaultConfig())
		plainProg, _, err := driver.Compile("rand.m3", src)
		if err != nil {
			t.Fatal(err)
		}
		in := interp.New(plainProg)
		in.MaxSteps = 2_000_000
		want, err := in.Run()
		if err != nil {
			continue
		}
		prog, _, err := driver.Compile("rand.m3", src)
		if err != nil {
			t.Fatal(err)
		}
		a := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs, OpenWorld: true})
		refine := func(o *types.Object) []int {
			refs := a.TypeRefs(o)
			if refs == nil {
				return nil
			}
			ids := make([]int, 0, len(refs))
			for id := range refs {
				ids = append(ids, id)
			}
			return ids
		}
		opt.Devirtualize(prog, refine)
		opt.Inline(prog)
		mr := modref.Compute(prog)
		opt.RLE(prog, a, mr)
		in2 := interp.New(prog)
		in2.MaxSteps = 4_000_000
		got, err := in2.Run()
		if err != nil {
			t.Fatalf("seed %d: pipeline trapped: %v\n%s", seed, err, src)
		}
		if got != want {
			t.Fatalf("seed %d: pipeline diverged\nwant %q\ngot  %q\n%s", seed, want, got, src)
		}
	}
}

// TestPerTypeGroupsSemantics exercises the SMTypeRefs ablation variant.
func TestPerTypeGroupsSemantics(t *testing.T) {
	for seed := int64(2000); seed < 2030; seed++ {
		src := randprog.Generate(seed, randprog.DefaultConfig())
		plainProg, _, err := driver.Compile("rand.m3", src)
		if err != nil {
			t.Fatal(err)
		}
		in := interp.New(plainProg)
		in.MaxSteps = 2_000_000
		want, err := in.Run()
		if err != nil {
			continue
		}
		prog, _, err := driver.Compile("rand.m3", src)
		if err != nil {
			t.Fatal(err)
		}
		o := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs, PerTypeGroups: true})
		mr := modref.Compute(prog)
		opt.RLE(prog, o, mr)
		in2 := interp.New(prog)
		in2.MaxSteps = 4_000_000
		got, err := in2.Run()
		if err != nil {
			t.Fatalf("seed %d: trapped: %v", seed, err)
		}
		if got != want {
			t.Fatalf("seed %d: diverged\nwant %q\ngot %q\n%s", seed, want, got, src)
		}
	}
}
