package randprog_test

import (
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/driver"
	"tbaa/internal/interp"
	"tbaa/internal/modref"
	"tbaa/internal/opt"
	"tbaa/internal/randprog"
	"tbaa/internal/types"
)

// TestGeneratedProgramsCompile checks the generator emits valid MiniM3.
func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		src := randprog.Generate(seed, randprog.DefaultConfig())
		if _, _, err := driver.Compile("rand.m3", src); err != nil {
			t.Fatalf("seed %d does not compile: %v\n%s", seed, err, src)
		}
	}
}

// TestRLEPreservesSemantics is the core differential test: for many random
// programs, RLE under every analysis level — including the flow-sensitive
// refinement — must preserve output exactly.
func TestRLEPreservesSemantics(t *testing.T) {
	levels := []alias.Level{alias.LevelTypeDecl, alias.LevelFieldTypeDecl, alias.LevelSMFieldTypeRefs, alias.LevelFSTypeRefs}
	seeds := 120
	if testing.Short() {
		seeds = 25
	}
	ran := 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := randprog.Generate(seed, randprog.DefaultConfig())
		plainProg, _, err := driver.Compile("rand.m3", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		in := interp.New(plainProg)
		in.MaxSteps = 2_000_000
		want, err := in.Run()
		if err != nil {
			continue // trapping program: optimization contracts don't apply
		}
		ran++
		for _, lvl := range levels {
			prog, _, err := driver.Compile("rand.m3", src)
			if err != nil {
				t.Fatal(err)
			}
			o := alias.New(prog, alias.Options{Level: lvl})
			mr := modref.Compute(prog)
			res := opt.RLE(prog, o, mr)
			in2 := interp.New(prog)
			in2.MaxSteps = 4_000_000
			got, err := in2.Run()
			if err != nil {
				t.Fatalf("seed %d level %v: optimized program trapped: %v\n%s", seed, lvl, err, src)
			}
			if got != want {
				t.Fatalf("seed %d level %v (removed %d): output diverged\nwant %q\ngot  %q\n%s",
					seed, lvl, res.Removed(), want, got, src)
			}
		}
	}
	if ran < seeds/2 {
		t.Errorf("too many trapping seeds: only %d of %d ran", ran, seeds)
	}
}

// TestFullPipelinePreservesSemantics adds devirt + inline + open-world RLE.
func TestFullPipelinePreservesSemantics(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 15
	}
	for seed := int64(1000); seed < int64(1000+seeds); seed++ {
		src := randprog.Generate(seed, randprog.DefaultConfig())
		plainProg, _, err := driver.Compile("rand.m3", src)
		if err != nil {
			t.Fatal(err)
		}
		in := interp.New(plainProg)
		in.MaxSteps = 2_000_000
		want, err := in.Run()
		if err != nil {
			continue
		}
		prog, _, err := driver.Compile("rand.m3", src)
		if err != nil {
			t.Fatal(err)
		}
		a := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs, OpenWorld: true})
		refine := func(o *types.Object) []int {
			refs := a.TypeRefs(o)
			if refs == nil {
				return nil
			}
			return refs.IDs()
		}
		opt.Devirtualize(prog, refine)
		opt.Inline(prog)
		mr := modref.Compute(prog)
		opt.RLE(prog, a, mr)
		in2 := interp.New(prog)
		in2.MaxSteps = 4_000_000
		got, err := in2.Run()
		if err != nil {
			t.Fatalf("seed %d: pipeline trapped: %v\n%s", seed, err, src)
		}
		if got != want {
			t.Fatalf("seed %d: pipeline diverged\nwant %q\ngot  %q\n%s", seed, want, got, src)
		}
	}
}

// TestPerTypeGroupsSemantics exercises the SMTypeRefs ablation variant.
func TestPerTypeGroupsSemantics(t *testing.T) {
	for seed := int64(2000); seed < 2030; seed++ {
		src := randprog.Generate(seed, randprog.DefaultConfig())
		plainProg, _, err := driver.Compile("rand.m3", src)
		if err != nil {
			t.Fatal(err)
		}
		in := interp.New(plainProg)
		in.MaxSteps = 2_000_000
		want, err := in.Run()
		if err != nil {
			continue
		}
		prog, _, err := driver.Compile("rand.m3", src)
		if err != nil {
			t.Fatal(err)
		}
		o := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs, PerTypeGroups: true})
		mr := modref.Compute(prog)
		opt.RLE(prog, o, mr)
		in2 := interp.New(prog)
		in2.MaxSteps = 4_000_000
		got, err := in2.Run()
		if err != nil {
			t.Fatalf("seed %d: trapped: %v", seed, err)
		}
		if got != want {
			t.Fatalf("seed %d: diverged\nwant %q\ngot %q\n%s", seed, want, got, src)
		}
	}
}

// TestInterproceduralPipelineDifferential is the differential harness
// for the interprocedural layer: on call-heavy random programs
// (virtual dispatch, mutual recursion, constructors, by-ref escapes),
// the full pass pipeline — Devirt, MinvInline, RLE, PRE — must produce
// byte-identical interpreter output at every level × WithInterprocedural
// setting, and the interprocedural oracle must disambiguate a superset
// of the flow-sensitive oracle's pairs while RLE removes at least as
// many loads in every procedure.
func TestInterproceduralPipelineDifferential(t *testing.T) {
	configs := []alias.Options{
		{Level: alias.LevelTypeDecl},
		{Level: alias.LevelFieldTypeDecl},
		{Level: alias.LevelSMFieldTypeRefs},
		{Level: alias.LevelFSTypeRefs},
		{Level: alias.LevelSMFieldTypeRefs, Interprocedural: true},
		{Level: alias.LevelIPTypeRefs},
		{Level: alias.LevelIPTypeRefs, OpenWorld: true},
	}
	seeds := 80
	if testing.Short() {
		seeds = 20
	}
	ran, disambiguated, improvedRLE := 0, 0, 0
	for seed := int64(5000); seed < int64(5000+seeds); seed++ {
		src := randprog.Generate(seed, randprog.DefaultConfig())
		plainProg, _, err := driver.Compile("rand.m3", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		in := interp.New(plainProg)
		in.MaxSteps = 2_000_000
		want, err := in.Run()
		if err != nil {
			continue // trapping program: optimization contracts don't apply
		}
		ran++
		// Property 1: the full pipeline preserves output under every
		// configuration.
		for _, opts := range configs {
			prog, _, err := driver.Compile("rand.m3", src)
			if err != nil {
				t.Fatal(err)
			}
			env, err := driver.NewPassEnv(prog, opts)
			if err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, opts, err)
			}
			if _, err := driver.RunPasses(env,
				driver.DevirtPass{}, driver.MinvInlinePass{}, driver.RLEPass{}, driver.PREPass{}); err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, opts, err)
			}
			in2 := interp.New(prog)
			in2.MaxSteps = 8_000_000
			got, err := in2.Run()
			if err != nil {
				t.Fatalf("seed %d opts %+v: pipeline trapped: %v\n%s", seed, opts, err, src)
			}
			if got != want {
				t.Fatalf("seed %d opts %+v: pipeline diverged\nwant %q\ngot  %q\n%s",
					seed, opts, want, got, src)
			}
		}
		// Property 2 (monotonicity): IP never answers may-alias where FS
		// answers no-alias — the interprocedural no-alias set is a
		// superset — and its pair counts never exceed FS's.
		prog, _, err := driver.Compile("rand.m3", src)
		if err != nil {
			t.Fatal(err)
		}
		fsEnv, err := driver.NewPassEnv(prog, alias.Options{Level: alias.LevelFSTypeRefs})
		if err != nil {
			t.Fatal(err)
		}
		ipEnv, err := driver.NewPassEnv(prog, alias.Options{Level: alias.LevelIPTypeRefs})
		if err != nil {
			t.Fatal(err)
		}
		fs, ip := fsEnv.Oracle(), ipEnv.Oracle()
		refs := alias.References(prog)
		for i := 0; i < len(refs); i++ {
			for j := i; j < len(refs); j++ {
				si := alias.Site{Proc: refs[i].Proc, Instr: refs[i].Instr}
				sj := alias.Site{Proc: refs[j].Proc, Instr: refs[j].Instr}
				if ip.MayAliasAt(refs[i].AP, si, refs[j].AP, sj) && !fs.MayAliasAt(refs[i].AP, si, refs[j].AP, sj) {
					t.Fatalf("seed %d: IP may-alias where FS says no: %s vs %s\n%s",
						seed, refs[i].AP, refs[j].AP, src)
				}
			}
		}
		fsPC, ipPC := alias.CountPairs(prog, fs), alias.CountPairs(prog, ip)
		if ipPC.Global > fsPC.Global || ipPC.Local > fsPC.Local {
			t.Fatalf("seed %d: IP pair counts exceed FS: IP=%+v FS=%+v", seed, ipPC, fsPC)
		}
		if ipPC.Global < fsPC.Global {
			disambiguated++
		}
		// Property 3: IP-driven RLE removes at least as many loads per
		// procedure as FS-driven RLE.
		removals := func(lvl alias.Level) opt.RLEResult {
			p2, _, err := driver.Compile("rand.m3", src)
			if err != nil {
				t.Fatal(err)
			}
			env, err := driver.NewPassEnv(p2, alias.Options{Level: lvl})
			if err != nil {
				t.Fatal(err)
			}
			return opt.RLE(p2, env.Oracle(), env.ModRef())
		}
		fsRes, ipRes := removals(alias.LevelFSTypeRefs), removals(alias.LevelIPTypeRefs)
		if ipRes.Removed() < fsRes.Removed() {
			t.Fatalf("seed %d: IP-driven RLE removed %d < FS's %d\n%s", seed, ipRes.Removed(), fsRes.Removed(), src)
		}
		for proc, n := range fsRes.PerProc {
			if ipRes.PerProc[proc] < n {
				t.Fatalf("seed %d: IP-driven RLE removed %d < FS's %d in %s\n%s",
					seed, ipRes.PerProc[proc], n, proc, src)
			}
		}
		if ipRes.Removed() > fsRes.Removed() {
			improvedRLE++
		}
	}
	t.Logf("ran %d/%d seeds; IP disambiguated pairs on %d, improved RLE on %d",
		ran, seeds, disambiguated, improvedRLE)
	if ran < seeds/2 {
		t.Errorf("too many trapping seeds: only %d of %d ran", ran, seeds)
	}
	if disambiguated == 0 && improvedRLE == 0 {
		t.Error("the interprocedural layer never fired across all seeds — it is inert on call-heavy programs")
	}
}

// TestFSTypeRefsIsSoundRefinement pins the two refinement properties on
// random programs: (1) FSTypeRefs' no-alias set is a superset of
// SMFieldTypeRefs' — it never answers may-alias where the
// flow-insensitive analysis answers no-alias, and its site-anchored
// pair counts never exceed the flow-insensitive ones; (2) RLE driven by
// the refinement removes at least as many loads at every procedure and
// leaves interpreter output unchanged.
func TestFSTypeRefsIsSoundRefinement(t *testing.T) {
	seeds := 80
	if testing.Short() {
		seeds = 20
	}
	disambiguated, improvedRLE := 0, 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := randprog.Generate(seed, randprog.DefaultConfig())
		plainProg, _, err := driver.Compile("rand.m3", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		in := interp.New(plainProg)
		in.MaxSteps = 2_000_000
		want, err := in.Run()
		if err != nil {
			continue // trapping program: optimization contracts don't apply
		}
		// Property 1: refinement only removes pairs.
		prog, _, err := driver.Compile("rand.m3", src)
		if err != nil {
			t.Fatal(err)
		}
		sm := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
		fs := alias.New(prog, alias.Options{Level: alias.LevelFSTypeRefs})
		refs := alias.References(prog)
		for i := 0; i < len(refs); i++ {
			for j := i; j < len(refs); j++ {
				si := alias.Site{Proc: refs[i].Proc, Instr: refs[i].Instr}
				sj := alias.Site{Proc: refs[j].Proc, Instr: refs[j].Instr}
				if fs.MayAliasAt(refs[i].AP, si, refs[j].AP, sj) && !sm.MayAlias(refs[i].AP, refs[j].AP) {
					t.Fatalf("seed %d: FS may-alias where SM says no: %s vs %s\n%s",
						seed, refs[i].AP, refs[j].AP, src)
				}
			}
		}
		smPC, fsPC := alias.CountPairs(prog, sm), alias.CountPairs(prog, fs)
		if fsPC.Global > smPC.Global || fsPC.Local > smPC.Local {
			t.Fatalf("seed %d: FS pair counts exceed SM: FS=%+v SM=%+v", seed, fsPC, smPC)
		}
		if fsPC.Global < smPC.Global {
			disambiguated++
		}
		// Property 2: FS-driven RLE removes >= loads per procedure and
		// preserves semantics.
		smProg, _, err := driver.Compile("rand.m3", src)
		if err != nil {
			t.Fatal(err)
		}
		smRes := opt.RLE(smProg, alias.New(smProg, alias.Options{Level: alias.LevelSMFieldTypeRefs}), modref.Compute(smProg))
		fsProg, _, err := driver.Compile("rand.m3", src)
		if err != nil {
			t.Fatal(err)
		}
		fsRes := opt.RLE(fsProg, alias.New(fsProg, alias.Options{Level: alias.LevelFSTypeRefs}), modref.Compute(fsProg))
		if fsRes.Removed() < smRes.Removed() {
			t.Fatalf("seed %d: FS-driven RLE removed %d < SM's %d\n%s", seed, fsRes.Removed(), smRes.Removed(), src)
		}
		for proc, n := range smRes.PerProc {
			if fsRes.PerProc[proc] < n {
				t.Fatalf("seed %d: FS-driven RLE removed %d < SM's %d in %s\n%s",
					seed, fsRes.PerProc[proc], n, proc, src)
			}
		}
		if fsRes.Removed() > smRes.Removed() {
			improvedRLE++
		}
		in2 := interp.New(fsProg)
		in2.MaxSteps = 4_000_000
		got, err := in2.Run()
		if err != nil {
			t.Fatalf("seed %d: FS-optimized program trapped: %v\n%s", seed, err, src)
		}
		if got != want {
			t.Fatalf("seed %d: FS-driven RLE diverged\nwant %q\ngot  %q\n%s", seed, want, got, src)
		}
	}
	t.Logf("refinement disambiguated pairs on %d seeds, improved RLE on %d", disambiguated, improvedRLE)
	if disambiguated == 0 {
		t.Error("the refinement never fired across all seeds — it is inert on allocation-heavy programs")
	}
}
