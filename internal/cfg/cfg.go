// Package cfg provides control-flow-graph analyses over IR procedures:
// reverse postorder, dominators, and natural loop detection with
// preheader insertion. The redundant load eliminator builds on these.
package cfg

import (
	"tbaa/internal/ir"
)

// ReversePostorder returns the blocks reachable from entry in reverse
// postorder.
func ReversePostorder(p *ir.Proc) []*ir.Block {
	seen := make(map[*ir.Block]bool, len(p.Blocks))
	var order []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		order = append(order, b)
	}
	dfs(p.Entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// ForwardSolve runs an iterative forward dataflow analysis to fixpoint
// and returns the state at the entry of every reachable block.
//
// transfer maps a block's entry state to its exit state (it must not
// mutate its input), join folds the exit states of a block's already-
// visited predecessors (called with a non-empty slice), entry supplies
// the state at the procedure entry, and equal decides convergence.
// Blocks are visited in reverse postorder; predecessors that have no
// computed exit state yet (back edges on the first sweep, unreachable
// blocks forever) are skipped by the join, which yields the optimistic
// least fixpoint for monotone transfer functions.
func ForwardSolve[S any](p *ir.Proc, entry func() S, join func(preds []S) S, transfer func(b *ir.Block, in S) S, equal func(a, b S) bool) map[*ir.Block]S {
	rpo := ReversePostorder(p)
	ins := make(map[*ir.Block]S, len(rpo))
	outs := make(map[*ir.Block]S, len(rpo))
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			var in S
			if b == p.Entry {
				in = entry()
			} else {
				var preds []S
				for _, pred := range b.Preds {
					if po, ok := outs[pred]; ok {
						preds = append(preds, po)
					}
				}
				if len(preds) == 0 {
					continue // no computed predecessor yet
				}
				in = join(preds)
			}
			ins[b] = in
			out := transfer(b, in)
			old, ok := outs[b]
			if !ok || !equal(old, out) {
				outs[b] = out
				changed = true
			}
		}
	}
	return ins
}

// Dominators holds immediate-dominator information for a procedure.
type Dominators struct {
	idom  map[*ir.Block]*ir.Block
	order map[*ir.Block]int // reverse postorder index
}

// ComputeDominators runs the Cooper-Harvey-Kennedy iterative algorithm.
func ComputeDominators(p *ir.Proc) *Dominators {
	rpo := ReversePostorder(p)
	d := &Dominators{
		idom:  make(map[*ir.Block]*ir.Block, len(rpo)),
		order: make(map[*ir.Block]int, len(rpo)),
	}
	for i, b := range rpo {
		d.order[b] = i
	}
	d.idom[p.Entry] = p.Entry
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == p.Entry {
				continue
			}
			var newIdom *ir.Block
			for _, pred := range b.Preds {
				if d.idom[pred] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = pred
				} else {
					newIdom = d.intersect(pred, newIdom)
				}
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

func (d *Dominators) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for d.order[a] > d.order[b] {
			a = d.idom[a]
		}
		for d.order[b] > d.order[a] {
			b = d.idom[b]
		}
	}
	return a
}

// Idom returns the immediate dominator of b (entry's is itself).
func (d *Dominators) Idom(b *ir.Block) *ir.Block { return d.idom[b] }

// Dominates reports whether a dominates b (reflexive).
func (d *Dominators) Dominates(a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		next := d.idom[b]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// Loop is a natural loop.
type Loop struct {
	Header    *ir.Block
	Blocks    map[*ir.Block]bool
	Latches   []*ir.Block // blocks with back edges to Header
	Preheader *ir.Block   // nil until EnsurePreheader
	Depth     int         // nesting depth (1 = outermost)
	Parent    *Loop
}

// Contains reports whether b is in the loop body (including the header).
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// FindLoops detects natural loops from back edges (latch → header where
// header dominates latch). Loops sharing a header are merged.
func FindLoops(p *ir.Proc, dom *Dominators) []*Loop {
	byHeader := make(map[*ir.Block]*Loop)
	var loops []*Loop
	for _, b := range p.Blocks {
		for _, s := range b.Succs {
			if dom.Idom(b) == nil || dom.Idom(s) == nil {
				continue // unreachable
			}
			if !dom.Dominates(s, b) {
				continue
			}
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[*ir.Block]bool{s: true}}
				byHeader[s] = l
				loops = append(loops, l)
			}
			l.Latches = append(l.Latches, b)
			// Collect body: reverse reachability from the latch without
			// passing through the header.
			var stack []*ir.Block
			if !l.Blocks[b] {
				l.Blocks[b] = true
				stack = append(stack, b)
			}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, pred := range n.Preds {
					if !l.Blocks[pred] {
						l.Blocks[pred] = true
						stack = append(stack, pred)
					}
				}
			}
		}
	}
	// Nesting: loop A is inside B if A's header is in B's blocks (A != B).
	for _, a := range loops {
		for _, b := range loops {
			if a != b && b.Blocks[a.Header] {
				if a.Parent == nil || b.Blocks[a.Parent.Header] {
					a.Parent = b
				}
			}
		}
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	return loops
}

// EnsurePreheader guarantees the loop has a unique preheader block:
// a block outside the loop whose only successor is the header, and which
// is the only non-latch predecessor of the header. It rewrites edges and
// recomputes CFG edges if a new block is inserted.
func EnsurePreheader(p *ir.Proc, l *Loop) *ir.Block {
	if l.Preheader != nil {
		return l.Preheader
	}
	var outside []*ir.Block
	for _, pred := range l.Header.Preds {
		if !l.Blocks[pred] {
			outside = append(outside, pred)
		}
	}
	if len(outside) == 1 {
		b := outside[0]
		if len(b.Succs) == 1 && len(b.Instrs) > 0 {
			l.Preheader = b
			return b
		}
	}
	// Insert a fresh preheader.
	ph := &ir.Block{ID: len(p.Blocks), Name: "preheader"}
	p.Blocks = append(p.Blocks, ph)
	ph.Instrs = append(ph.Instrs, ir.Instr{Op: ir.OpJump, Target: l.Header})
	for _, pred := range outside {
		t := &pred.Instrs[len(pred.Instrs)-1]
		switch t.Op {
		case ir.OpJump:
			if t.Target == l.Header {
				t.Target = ph
			}
		case ir.OpBranch:
			if t.Then == l.Header {
				t.Then = ph
			}
			if t.Else == l.Header {
				t.Else = ph
			}
		}
	}
	if p.Entry == l.Header {
		p.Entry = ph
	}
	p.ComputeCFGEdges()
	l.Preheader = ph
	return ph
}

// ExitBlocks returns the blocks outside the loop that are successors of
// loop blocks.
func (l *Loop) ExitBlocks() []*ir.Block {
	var exits []*ir.Block
	seen := map[*ir.Block]bool{}
	for b := range l.Blocks {
		for _, s := range b.Succs {
			if !l.Blocks[s] && !seen[s] {
				seen[s] = true
				exits = append(exits, s)
			}
		}
	}
	return exits
}
