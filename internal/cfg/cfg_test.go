package cfg_test

import (
	"testing"

	"tbaa/internal/cfg"
	"tbaa/internal/driver"
	"tbaa/internal/ir"
)

func compileProc(t *testing.T, src, name string) *ir.Proc {
	t.Helper()
	prog, _, err := driver.Compile("t.m3", src)
	if err != nil {
		t.Fatal(err)
	}
	p := prog.ProcByName[name]
	if p == nil {
		t.Fatalf("no procedure %s", name)
	}
	p.ComputeCFGEdges()
	return p
}

const loopy = `
MODULE M;
PROCEDURE F(n: INTEGER): INTEGER =
VAR i, j, acc: INTEGER;
BEGIN
  acc := 0;
  FOR i := 1 TO n DO
    FOR j := 1 TO n DO
      acc := acc + i * j;
    END;
  END;
  WHILE acc > 100 DO
    acc := acc DIV 2;
  END;
  RETURN acc;
END F;
BEGIN
END M.
`

func TestReversePostorder(t *testing.T) {
	p := compileProc(t, loopy, "F")
	rpo := cfg.ReversePostorder(p)
	if len(rpo) == 0 || rpo[0] != p.Entry {
		t.Fatal("RPO must start at entry")
	}
	// Every reachable block appears exactly once.
	seen := map[*ir.Block]bool{}
	for _, b := range rpo {
		if seen[b] {
			t.Errorf("block b%d repeated", b.ID)
		}
		seen[b] = true
	}
	// RPO property: each block's index precedes its dominated successors.
	idx := map[*ir.Block]int{}
	for i, b := range rpo {
		idx[b] = i
	}
	dom := cfg.ComputeDominators(p)
	for _, b := range rpo {
		for _, s := range b.Succs {
			if dom.Dominates(b, s) && b != s && idx[s] < idx[b] {
				t.Errorf("dominator b%d ordered after dominated b%d", b.ID, s.ID)
			}
		}
	}
}

func TestDominators(t *testing.T) {
	p := compileProc(t, loopy, "F")
	dom := cfg.ComputeDominators(p)
	// Entry dominates everything reachable.
	for _, b := range cfg.ReversePostorder(p) {
		if !dom.Dominates(p.Entry, b) {
			t.Errorf("entry must dominate b%d", b.ID)
		}
		if !dom.Dominates(b, b) {
			t.Errorf("dominance must be reflexive (b%d)", b.ID)
		}
	}
	// Idom chain terminates at entry.
	for _, b := range cfg.ReversePostorder(p) {
		steps := 0
		for x := b; x != p.Entry; x = dom.Idom(x) {
			steps++
			if steps > len(p.Blocks) {
				t.Fatalf("idom chain from b%d does not reach entry", b.ID)
			}
		}
	}
}

func TestFindLoops(t *testing.T) {
	p := compileProc(t, loopy, "F")
	dom := cfg.ComputeDominators(p)
	loops := cfg.FindLoops(p, dom)
	if len(loops) != 3 {
		t.Fatalf("expected 3 loops (two nested FOR + one WHILE), got %d", len(loops))
	}
	var depth1, depth2 int
	for _, l := range loops {
		switch l.Depth {
		case 1:
			depth1++
		case 2:
			depth2++
		}
		// The header is in the loop; latches are in the loop.
		if !l.Contains(l.Header) {
			t.Error("loop must contain its header")
		}
		for _, latch := range l.Latches {
			if !l.Contains(latch) {
				t.Error("loop must contain its latches")
			}
			if !dom.Dominates(l.Header, latch) {
				t.Error("header must dominate latches")
			}
		}
	}
	if depth1 != 2 || depth2 != 1 {
		t.Errorf("nesting: depth1=%d depth2=%d, want 2 and 1", depth1, depth2)
	}
}

func TestLoopNesting(t *testing.T) {
	p := compileProc(t, loopy, "F")
	dom := cfg.ComputeDominators(p)
	loops := cfg.FindLoops(p, dom)
	var inner *cfg.Loop
	for _, l := range loops {
		if l.Depth == 2 {
			inner = l
		}
	}
	if inner == nil || inner.Parent == nil {
		t.Fatal("inner loop must have a parent")
	}
	if !inner.Parent.Blocks[inner.Header] {
		t.Error("parent must contain inner header")
	}
}

func TestEnsurePreheader(t *testing.T) {
	p := compileProc(t, loopy, "F")
	dom := cfg.ComputeDominators(p)
	loops := cfg.FindLoops(p, dom)
	for _, l := range loops {
		ph := cfg.EnsurePreheader(p, l)
		if ph == nil {
			t.Fatal("no preheader")
		}
		if l.Blocks[ph] {
			t.Error("preheader must be outside the loop")
		}
		if len(ph.Succs) != 1 || ph.Succs[0] != l.Header {
			t.Errorf("preheader must jump only to the header, got %d succs", len(ph.Succs))
		}
		// Idempotent.
		if again := cfg.EnsurePreheader(p, l); again != ph {
			t.Error("EnsurePreheader must be idempotent")
		}
	}
	// CFG still consistent: edges recomputed, entry reachable everything.
	dom2 := cfg.ComputeDominators(p)
	for _, b := range cfg.ReversePostorder(p) {
		if !dom2.Dominates(p.Entry, b) {
			t.Errorf("entry no longer dominates b%d after preheaders", b.ID)
		}
	}
}

func TestExitBlocks(t *testing.T) {
	p := compileProc(t, loopy, "F")
	dom := cfg.ComputeDominators(p)
	loops := cfg.FindLoops(p, dom)
	for _, l := range loops {
		exits := l.ExitBlocks()
		if len(exits) == 0 {
			t.Error("every loop here terminates: must have exits")
		}
		for _, e := range exits {
			if l.Blocks[e] {
				t.Error("exit block must be outside the loop")
			}
		}
	}
}

func TestIrreducibleSafe(t *testing.T) {
	// EXIT from nested LOOPs produces multi-exit shapes; make sure the
	// analyses stay consistent.
	p := compileProc(t, `
MODULE M;
PROCEDURE G(n: INTEGER): INTEGER =
VAR x: INTEGER;
BEGIN
  x := 0;
  LOOP
    INC(x);
    LOOP
      INC(x, 2);
      IF x > n THEN EXIT; END;
      IF x MOD 7 = 0 THEN EXIT; END;
    END;
    IF x > n THEN EXIT; END;
  END;
  RETURN x;
END G;
BEGIN
END M.
`, "G")
	dom := cfg.ComputeDominators(p)
	loops := cfg.FindLoops(p, dom)
	if len(loops) != 2 {
		t.Fatalf("expected 2 loops, got %d", len(loops))
	}
	for _, l := range loops {
		cfg.EnsurePreheader(p, l)
	}
	dom = cfg.ComputeDominators(p)
	for _, b := range cfg.ReversePostorder(p) {
		if !dom.Dominates(p.Entry, b) {
			t.Errorf("entry must dominate b%d", b.ID)
		}
	}
}

// TestForwardSolve runs a tiny forward dataflow — "number of blocks
// executed along the longest path so far" capped at a fixpoint — over
// the loopy procedure, checking the generic solver's contract: entry
// state at the entry block, joins over computed predecessors only, and
// convergence on cyclic CFGs.
func TestForwardSolve(t *testing.T) {
	p := compileProc(t, loopy, "F")
	const cap = 50
	ins := cfg.ForwardSolve(p,
		func() int { return 0 },
		func(preds []int) int {
			m := preds[0]
			for _, v := range preds[1:] {
				if v > m {
					m = v
				}
			}
			return m
		},
		func(b *ir.Block, in int) int {
			if in >= cap {
				return cap
			}
			return in + 1
		},
		func(a, b int) bool { return a == b },
	)
	if got := ins[p.Entry]; got != 0 {
		t.Errorf("entry in-state = %d, want 0", got)
	}
	rpo := cfg.ReversePostorder(p)
	if len(ins) != len(rpo) {
		t.Errorf("solved %d blocks, want every reachable block (%d)", len(ins), len(rpo))
	}
	// Loop headers sit on cycles, so their in-state must have climbed to
	// the cap — proof the solver iterated the back edges to fixpoint.
	dom := cfg.ComputeDominators(p)
	sawCap := false
	for _, l := range cfg.FindLoops(p, dom) {
		if ins[l.Header] == cap {
			sawCap = true
		}
	}
	if !sawCap {
		t.Error("no loop header reached the fixpoint cap; back edges not iterated")
	}
}
