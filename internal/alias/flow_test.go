package alias_test

import (
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/driver"
	"tbaa/internal/interp"
	"tbaa/internal/ir"
	"tbaa/internal/modref"
	"tbaa/internal/opt"
)

// flowSrc allocates two sibling subtypes into supertype-declared
// variables: flow-insensitively x.i and y.i may alias (both roots are
// declared T and the NEW merges keep S1 and S2 in T's cone), but at the
// statements below x can only hold an S1 and y an S2.
const flowSrc = `
MODULE Flow;
TYPE
  T  = OBJECT i: INTEGER; r: T; END;
  S1 = T OBJECT a: INTEGER; END;
  S2 = T OBJECT b: INTEGER; END;
VAR
  x, y, z: T;
  sink: INTEGER;
BEGIN
  x := NEW(S1);
  y := NEW(S2);
  z := NEW(T);
  x.i := 1;
  y.i := 2;
  z.i := 3;
  sink := x.i;
  sink := y.i;
  sink := z.i;
  PutInt(sink); PutLn();
END Flow.
`

// sites collects every (proc, instr) reference site whose AP renders to
// the given source path, in program order.
func sites(prog *ir.Program, path string) []alias.Site {
	var out []alias.Site
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.AP != nil && in.AP.String() == path {
					out = append(out, alias.Site{Proc: p, Instr: in})
				}
			}
		}
	}
	return out
}

func compileFlow(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, _, err := driver.Compile("flow.m3", src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestFlowNarrowsSiblingAllocations is the tentpole's core contract:
// after x := NEW(S1) and y := NEW(S2), the refinement proves x.i and
// y.i disjoint while the flow-insensitive verdict stays may-alias.
func TestFlowNarrowsSiblingAllocations(t *testing.T) {
	prog := compileFlow(t, flowSrc)
	fs := alias.New(prog, alias.Options{Level: alias.LevelFSTypeRefs})
	xi, yi, zi := sites(prog, "x.i"), sites(prog, "y.i"), sites(prog, "z.i")
	if len(xi) == 0 || len(yi) == 0 || len(zi) == 0 {
		t.Fatalf("reference sites missing: x.i=%d y.i=%d z.i=%d", len(xi), len(yi), len(zi))
	}
	apx, apy, apz := xi[0].Instr.AP, yi[0].Instr.AP, zi[0].Instr.AP

	if !fs.MayAlias(apx, apy) {
		t.Fatal("context-free MayAlias must stay flow-insensitive (may-alias)")
	}
	if fs.MayAliasAt(apx, xi[0], apy, yi[0]) {
		t.Error("x.i (=NEW(S1)) vs y.i (=NEW(S2)): refinement should prove no-alias")
	}
	// z holds exactly a T; S1 values are in T's row only via z's declared
	// cone — but z's narrowed set is {T} and x's is {S1}: disjoint.
	if fs.MayAliasAt(apx, xi[0], apz, zi[0]) {
		t.Error("x.i (=NEW(S1)) vs z.i (=NEW(T)): refinement should prove no-alias")
	}
	// Without statement context the refinement must not fire.
	if !fs.MayAliasAt(apx, alias.Site{}, apy, alias.Site{}) {
		t.Error("zero Sites must degrade to the flow-insensitive verdict")
	}
}

// TestFlowRefinementIsSoundRefinement checks FSTypeRefs never answers
// may-alias where SMFieldTypeRefs answers no-alias, and the pair counts
// shrink (never grow).
func TestFlowRefinementNeverAddsPairs(t *testing.T) {
	prog := compileFlow(t, flowSrc)
	sm := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
	fs := alias.New(prog, alias.Options{Level: alias.LevelFSTypeRefs})
	refs := alias.References(prog)
	for i := 0; i < len(refs); i++ {
		for j := i; j < len(refs); j++ {
			si := alias.Site{Proc: refs[i].Proc, Instr: refs[i].Instr}
			sj := alias.Site{Proc: refs[j].Proc, Instr: refs[j].Instr}
			fsV := fs.MayAliasAt(refs[i].AP, si, refs[j].AP, sj)
			smV := sm.MayAlias(refs[i].AP, refs[j].AP)
			if fsV && !smV {
				t.Fatalf("FS may-alias where SM says no: %s vs %s", refs[i].AP, refs[j].AP)
			}
		}
	}
	smPC := alias.CountPairs(prog, sm)
	fsPC := alias.CountPairs(prog, fs)
	if fsPC.Global > smPC.Global || fsPC.Local > smPC.Local {
		t.Fatalf("FS pair counts exceed SM: FS=%+v SM=%+v", fsPC, smPC)
	}
	if fsPC.Global >= smPC.Global {
		t.Errorf("expected strict refinement on flowSrc: FS global %d, SM global %d", fsPC.Global, smPC.Global)
	}
}

// TestFlowKillsAtCallsAndLocationStores pins the conservative kills: a
// call (which may reassign globals) drops a global's narrowing, so the
// refinement must not fire after it.
func TestFlowKillsAtCalls(t *testing.T) {
	src := `
MODULE FlowKill;
TYPE
  T  = OBJECT i: INTEGER; END;
  S1 = T OBJECT a: INTEGER; END;
  S2 = T OBJECT b: INTEGER; END;
VAR
  x, y: T;
  sink: INTEGER;

PROCEDURE Shuffle() =
BEGIN
  x := y;
END Shuffle;

BEGIN
  x := NEW(S1);
  y := NEW(S2);
  sink := x.i;   (* narrowed: x={S1}, y={S2} *)
  sink := y.i;
  Shuffle();
  sink := x.i;   (* x may now be y's S2 object *)
  sink := y.i;
  PutInt(sink); PutLn();
END FlowKill.
`
	prog := compileFlow(t, src)
	fs := alias.New(prog, alias.Options{Level: alias.LevelFSTypeRefs})
	xi, yi := sites(prog, "x.i"), sites(prog, "y.i")
	// Shuffle assigns whole variables, so every x.i / y.i site is in the
	// main body: program order gives the pre-call load then the post-call
	// load of each.
	if len(xi) != 2 || len(yi) != 2 {
		t.Fatalf("unexpected site counts: x.i=%d y.i=%d", len(xi), len(yi))
	}
	if fs.MayAliasAt(xi[0].Instr.AP, xi[0], yi[0].Instr.AP, yi[0]) {
		t.Error("before the call x={S1}, y={S2}: x.i vs y.i should be disjoint")
	}
	if !fs.MayAliasAt(xi[1].Instr.AP, xi[1], yi[1].Instr.AP, yi[1]) {
		t.Error("after the call the globals' narrowing must be killed: x.i vs y.i may alias")
	}
}

// TestFlowPrefixStoreKillsDeepFact is the regression test for a
// soundness hole the review's reproducer found: a store to a path's
// proper prefix (x.q := t) rewrites which object the deeper path
// (x.q.p) selects through, so its reaching-store fact must die even
// though the two locations themselves never alias (distinct final
// fields). With the stale fact alive, w below narrowed to {S1} while
// actually referencing s's S2 object, FS-driven RLE hoisted w.i past
// the s.i stores, and the program printed 0 instead of 6.
func TestFlowPrefixStoreKillsDeepFact(t *testing.T) {
	src := `
MODULE PrefixKill;
TYPE
  T  = OBJECT p, q: T; i: INTEGER; END;
  S1 = T OBJECT a: INTEGER; END;
  S2 = T OBJECT b: INTEGER; END;
VAR
  x, t, s, w: T;
  sum: INTEGER;
BEGIN
  s := NEW(S2);
  t := NEW(T);
  t.p := s;
  x := NEW(T);
  x.q := NEW(T);
  x.q.p := NEW(S1);
  x.q := t;
  w := x.q.p;
  w.i := 0;
  FOR k := 1 TO 3 DO
    s.i := k;
    sum := sum + w.i;
  END;
  PutInt(sum); PutLn();
END PrefixKill.
`
	prog := compileFlow(t, src)
	fs := alias.New(prog, alias.Options{Level: alias.LevelFSTypeRefs})
	wi, si := sites(prog, "w.i"), sites(prog, "s.i")
	if len(wi) == 0 || len(si) == 0 {
		t.Fatalf("sites missing: w.i=%d s.i=%d", len(wi), len(si))
	}
	// w references s's object here: the refinement must not separate them.
	last := func(ss []alias.Site) alias.Site { return ss[len(ss)-1] }
	if !fs.MayAliasAt(last(wi).Instr.AP, last(wi), last(si).Instr.AP, last(si)) {
		t.Error("stale x.q.p fact survived the prefix store x.q := t: w.i vs s.i answered no-alias")
	}
	// End to end: RLE must leave the loop's w.i load killed by the s.i
	// store, so the program still prints 6 — at every field-sensitive
	// level. The same hole existed flow-insensitively: cseLoads'
	// availability kill used plain MayAlias, which the prefix store
	// x.q := t does not trigger (modref.StoreKills now does).
	in := interp.New(prog)
	in.MaxSteps = 1_000_000
	want, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want != "6\n" {
		t.Fatalf("unoptimized output %q, want \"6\\n\"", want)
	}
	for _, lvl := range []alias.Level{alias.LevelFieldTypeDecl, alias.LevelSMFieldTypeRefs, alias.LevelFSTypeRefs} {
		optProg := compileFlow(t, src)
		o := alias.New(optProg, alias.Options{Level: lvl})
		opt.RLE(optProg, o, modref.Compute(optProg))
		in2 := interp.New(optProg)
		in2.MaxSteps = 1_000_000
		got, err := in2.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v-driven RLE miscompiled: want %q, got %q", lvl, want, got)
		}
	}
}
