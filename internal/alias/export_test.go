package alias

import "tbaa/internal/ir"

// NewCaseOnly builds an Analysis with the partition oracle disabled, so
// every query runs the original case analysis. The differential tests
// pin the partition oracle's answers to this reference implementation.
func NewCaseOnly(prog *ir.Program, opts Options) *Analysis {
	return newAnalysis(prog, opts, false)
}
