package alias

import (
	"strings"
	"testing"
)

// TestOptionsValidate pins the construction-time rejection of
// out-of-range levels: every valid level passes, everything else is
// refused with a message that names the valid range.
func TestOptionsValidate(t *testing.T) {
	for _, lvl := range []Level{LevelTypeDecl, LevelFieldTypeDecl, LevelSMFieldTypeRefs, LevelFSTypeRefs, LevelIPTypeRefs} {
		if err := (Options{Level: lvl}).Validate(); err != nil {
			t.Errorf("Options{Level: %v}.Validate() = %v, want nil", lvl, err)
		}
	}
	for _, lvl := range []Level{-1, 5, 42} {
		err := (Options{Level: lvl}).Validate()
		if err == nil {
			t.Errorf("Options{Level: %d}.Validate() = nil, want error", int(lvl))
			continue
		}
		for _, want := range []string{"out of range", "TypeDecl", "SMFieldTypeRefs"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("Validate error %q does not mention %q", err, want)
			}
		}
	}
	// The flow-sensitive refinement needs a TypeRefsTable to narrow.
	for _, lvl := range []Level{LevelTypeDecl, LevelFieldTypeDecl} {
		if err := (Options{Level: lvl, FlowSensitive: true}).Validate(); err == nil {
			t.Errorf("Options{Level: %v, FlowSensitive: true}.Validate() = nil, want error", lvl)
		}
	}
	for _, lvl := range []Level{LevelSMFieldTypeRefs, LevelFSTypeRefs, LevelIPTypeRefs} {
		if err := (Options{Level: lvl, FlowSensitive: true}).Validate(); err != nil {
			t.Errorf("Options{Level: %v, FlowSensitive: true}.Validate() = %v, want nil", lvl, err)
		}
	}
	// The interprocedural layer rides on the flow-sensitive refinement
	// and has the same level floor.
	for _, lvl := range []Level{LevelTypeDecl, LevelFieldTypeDecl} {
		if err := (Options{Level: lvl, Interprocedural: true}).Validate(); err == nil {
			t.Errorf("Options{Level: %v, Interprocedural: true}.Validate() = nil, want error", lvl)
		}
	}
	for _, lvl := range []Level{LevelSMFieldTypeRefs, LevelFSTypeRefs, LevelIPTypeRefs} {
		if err := (Options{Level: lvl, Interprocedural: true}).Validate(); err != nil {
			t.Errorf("Options{Level: %v, Interprocedural: true}.Validate() = %v, want nil", lvl, err)
		}
	}
}

// TestOptionsNormalize pins the two spellings of the flow-sensitive
// configuration onto one canonical form.
func TestOptionsNormalize(t *testing.T) {
	n := (Options{Level: LevelFSTypeRefs}).Normalize()
	if !n.FlowSensitive || n.Level != LevelFSTypeRefs {
		t.Errorf("Normalize(LevelFSTypeRefs) = %+v, want FlowSensitive at LevelFSTypeRefs", n)
	}
	n = (Options{Level: LevelSMFieldTypeRefs, FlowSensitive: true}).Normalize()
	if n.Level != LevelFSTypeRefs {
		t.Errorf("Normalize(SM + FlowSensitive) level = %v, want FSTypeRefs", n.Level)
	}
	n = (Options{Level: LevelSMFieldTypeRefs}).Normalize()
	if n.Level != LevelSMFieldTypeRefs || n.FlowSensitive {
		t.Errorf("Normalize(SM) = %+v, want unchanged", n)
	}
	// The interprocedural spellings fold the same way and imply the
	// flow-sensitive refinement.
	n = (Options{Level: LevelIPTypeRefs}).Normalize()
	if !n.Interprocedural || !n.FlowSensitive || n.Level != LevelIPTypeRefs {
		t.Errorf("Normalize(LevelIPTypeRefs) = %+v, want Interprocedural+FlowSensitive at LevelIPTypeRefs", n)
	}
	for _, lvl := range []Level{LevelSMFieldTypeRefs, LevelFSTypeRefs} {
		n = (Options{Level: lvl, Interprocedural: true}).Normalize()
		if n.Level != LevelIPTypeRefs || !n.FlowSensitive {
			t.Errorf("Normalize(%v + Interprocedural) = %+v, want LevelIPTypeRefs", lvl, n)
		}
	}
}

// TestNewRejectsInvalidLevel: New must not silently misbehave on an
// out-of-range level; it panics with the Validate error.
func TestNewRejectsInvalidLevel(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New with Level 42 did not panic")
		}
		err, ok := r.(error)
		if !ok || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("New panicked with %v, want the Validate error", r)
		}
	}()
	New(nil, Options{Level: 42})
}
