package alias

import (
	"testing"

	"tbaa/internal/ir"
	"tbaa/internal/lower"
	"tbaa/internal/parser"
	"tbaa/internal/sema"
)

// In-package tests pinning Update's reuse behavior: a delta rebuild
// must actually share the old generation's structures (or it silently
// degrades to the cost of a full rebuild, which the differential gate
// in internal/driver cannot see), and it must refuse to run when a
// global fact table grew.

const incrSrc = `
MODULE Incr;
TYPE
  T = OBJECT f, g: INTEGER; n: T; END;
  S = OBJECT h: INTEGER; END;
VAR t: T; s: S; x: INTEGER;
PROCEDURE A() =
BEGIN
  t.f := 1;
  x := t.g;
END A;
PROCEDURE B() =
BEGIN
  s.h := 2;
  x := t.f;
  x := t.n.f;
END B;
BEGIN
  A();
  B();
END Incr.
`

func compileIncr(t *testing.T) *ir.Program {
	t.Helper()
	m, err := parser.Parse("incr.m3", incrSrc)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sema.Check(m)
	if err != nil {
		t.Fatal(err)
	}
	sp.Universe.Precompute()
	return lower.Lower(sp)
}

func TestUpdateSharesUntouchedStructures(t *testing.T) {
	prog := compileIncr(t)
	old := New(prog, Options{Level: LevelFSTypeRefs})
	refs := References(prog)
	if len(refs) < 2 {
		t.Fatal("want at least two references")
	}
	// Force the partition and some flow facts on the old generation.
	for _, r := range refs {
		MayAliasAt(old, refs[0].AP, Site{Proc: refs[0].Proc, Instr: refs[0].Instr}, r.AP, Site{Proc: r.Proc, Instr: r.Instr})
	}
	dirty := prog.ProcByName["A"]
	clean := prog.ProcByName["B"]
	if dirty == nil || clean == nil {
		t.Fatal("procs not found")
	}
	prog.MarkMutated(dirty)

	a := Update(old, []*ir.Proc{dirty})
	if a == nil {
		t.Fatal("Update returned nil for a well-formed delta")
	}
	if a.memo != old.memo {
		t.Error("memo cache not shared")
	}
	if len(a.typeRefs) > 0 && &a.typeRefs[0] != &old.typeRefs[0] {
		t.Error("TypeRefsTable not shared")
	}
	op, np := old.part.Load(), a.part.Load()
	if op == nil || np == nil {
		t.Fatal("partition missing on a generation")
	}
	// No new access paths were introduced, so the compatibility matrix
	// must be shared outright, not recomputed.
	if len(np.compat) != len(op.compat) {
		t.Fatalf("compat grew from %d to %d classes without new paths", len(op.compat), len(np.compat))
	}
	if len(np.compat) > 0 && &np.compat[0][0] != &op.compat[0][0] {
		t.Error("compat matrix not shared for a no-new-class delta")
	}
	// Flow facts: the clean procedure's entry carries over by pointer;
	// the dirty procedure's entry is dropped.
	old.flow.mu.Lock()
	oe := old.flow.procs[clean]
	old.flow.mu.Unlock()
	a.flow.mu.Lock()
	ne, hasDirty := a.flow.procs[clean], a.flow.procs[dirty] != nil
	a.flow.mu.Unlock()
	if oe == nil || ne != oe {
		t.Error("clean procedure's flow entry not shared")
	}
	if hasDirty {
		t.Error("dirty procedure's flow entry survived")
	}
	// Verdicts match a from-scratch build.
	fresh := New(prog, Options{Level: LevelFSTypeRefs})
	for i := range refs {
		for j := range refs {
			si := Site{Proc: refs[i].Proc, Instr: refs[i].Instr}
			sj := Site{Proc: refs[j].Proc, Instr: refs[j].Instr}
			if got, want := MayAliasAt(a, refs[i].AP, si, refs[j].AP, sj), MayAliasAt(fresh, refs[i].AP, si, refs[j].AP, sj); got != want {
				t.Fatalf("MayAlias(%s, %s) delta=%v scratch=%v", refs[i].AP, refs[j].AP, got, want)
			}
		}
	}
}

func TestUpdateRefusesStaleFingerprint(t *testing.T) {
	prog := compileIncr(t)
	old := New(prog, Options{Level: LevelSMFieldTypeRefs})
	old.MayAlias(References(prog)[0].AP, References(prog)[0].AP)
	p := prog.ProcByName["A"]
	prog.MarkMutated(p)
	// A grown global fact table must force the full-rebuild fallback:
	// simulate what inlining an address-taking callee does.
	phantom := &ir.Var{Name: "phantom", Type: References(prog)[0].AP.Root.Type, Kind: ir.LocalVar}
	prog.AddressTakenVars[phantom] = true
	if Update(old, []*ir.Proc{p}) != nil {
		t.Fatal("Update accepted a delta across an AddressTakenVars change")
	}
}

func TestUpdateRefusesEmptyDirtySet(t *testing.T) {
	prog := compileIncr(t)
	old := New(prog, Options{Level: LevelSMFieldTypeRefs})
	if Update(old, nil) != nil {
		t.Fatal("Update accepted an empty dirty set")
	}
}
