package alias

import (
	"sync/atomic"

	"tbaa/internal/ir"
	"tbaa/internal/types"
)

// This file implements the partition oracle: a precomputed, immutable
// acceleration structure that answers context-free MayAlias in O(1).
//
// Every access path in the program is interned to a dense identity
// (ir.InternAPs). Paths are then grouped into alias classes by their
// case-analysis signature — the exact tuple of inputs Table 2's case
// analysis consults (selector rank, final field name, path type, prefix
// type, subscript types). Two paths with equal signatures are
// indistinguishable to the oracle: for any third path r,
// MayAlias(p, r) == MayAlias(q, r). One representative per class is
// therefore enough to precompute a class × class compatibility
// bitmatrix with the ordinary case analysis, after which MayAlias is
// two ID loads and a bitset test, and CountPairs at flow-insensitive
// levels collapses to class-size arithmetic (see pairs.go).
//
// The partition is built at most once per Analysis (interning happens
// in New's single-threaded construction window; the matrix on first
// use, guarded by a sync.Once) and never mutated afterwards, which is
// what makes the Analyzer's lock-free read path possible.

// apSig is the case-analysis signature of one access path. Type
// identities use -1 for "no type" (typeCompat treats nil as unknown and
// answers true; representatives reproduce that, since every member of
// the class has the same nil).
type apSig struct {
	kind      int8   // 0 bare variable, 1 field-like, 2 deref, 3 index
	field     string // fieldName of the final selector, field-like only
	typ       int32  // Type().ID()
	prefix    int32  // prefixType ID, field-like only
	subPrefix int32  // subscriptPrefixType ID, index only
	arr       int32  // subscriptArrayType ID, index only
}

func typeID(t types.Type) int32 {
	if t == nil {
		return -1
	}
	return int32(t.ID())
}

// signature computes p's apSig under the analysis level. LevelTypeDecl
// ignores selectors entirely (MayAlias is plain type compatibility), so
// its signature is the path type alone — maximal class merging.
func (a *Analysis) signature(p *ir.AP) apSig {
	if a.opts.Level == LevelTypeDecl {
		return apSig{typ: typeID(p.Type())}
	}
	last := p.Last()
	if last == nil {
		return apSig{kind: 0, typ: typeID(p.Type())}
	}
	switch rank(last.Kind) {
	case 0: // field-like (fields and the implicit dope selectors)
		return apSig{
			kind:   1,
			field:  fieldName(last),
			typ:    typeID(p.Type()),
			prefix: typeID(prefixType(p)),
		}
	case 1: // deref
		return apSig{kind: 2, typ: typeID(p.Type())}
	default: // index
		var arr int32 = -1
		if at := subscriptArrayType(p); at != nil {
			arr = int32(at.ID())
		}
		return apSig{
			kind:      3,
			typ:       typeID(p.Type()),
			subPrefix: typeID(subscriptPrefixType(p)),
			arr:       arr,
		}
	}
}

// partition is the immutable O(1) query structure.
type partition struct {
	idx *ir.APIndex
	// aps is idx's dense path table (aps[iid-1]); classOf validates an
	// IID against it before trusting the classification.
	aps []*ir.AP
	// cls maps intern IDs to class IDs; cls[0] is unused (IID 0 means
	// "not interned") and holes hold -1.
	cls []int32
	// compat is the symmetric class × class may-alias bitmatrix.
	compat []types.Bitset
	// reps holds one representative path per class.
	reps []*ir.AP
}

// newPartition interns (idempotently) and classifies every access path
// of the program, then fills the compatibility matrix by running the
// ordinary case analysis once per class pair.
func newPartition(a *Analysis) *partition {
	idx := a.apIdx
	part := &partition{idx: idx, aps: idx.APs, cls: make([]int32, idx.Len()+1)}
	classes := make(map[apSig]int32)
	for i, ap := range idx.APs {
		if ap == nil {
			// A hole: the identity belongs to a path an earlier build
			// interned but this program no longer carries.
			part.cls[i+1] = -1
			continue
		}
		sig := a.signature(ap)
		ci, ok := classes[sig]
		if !ok {
			ci = int32(len(part.reps))
			classes[sig] = ci
			part.reps = append(part.reps, ap)
		}
		part.cls[i+1] = ci
	}
	n := len(part.reps)
	part.compat = make([]types.Bitset, n)
	for i := range part.compat {
		part.compat[i] = types.NewBitset(n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if a.mayAliasCase(part.reps[i], part.reps[j]) {
				part.compat[i].Add(j)
				part.compat[j].Add(i)
			}
		}
	}
	return part
}

// classOf returns the class of an interned path, or -1 for paths this
// partition has never seen (the caller falls back to the case
// analysis, which is always correct). The IID is only trusted when
// this partition's own index maps it back to the same path: a rebuild
// over a mutated program numbers inserted paths, and an identity from
// another build generation must not be taken at face value.
func (p *partition) classOf(ap *ir.AP) int32 {
	iid := atomic.LoadInt32(&ap.IID)
	// uint32(iid)-1 folds the iid >= 1 and bounds checks into one
	// compare (0 wraps to MaxUint32); the pointer compare rejects
	// identities assigned by another build generation.
	if i := uint32(iid) - 1; int(i) < len(p.aps) && p.aps[i] == ap {
		return p.cls[iid]
	}
	return -1
}

// partition returns the query structure, building the class matrix on
// first use. The fast path is a single atomic load.
func (a *Analysis) partition() *partition {
	if p := a.part.Load(); p != nil {
		return p
	}
	a.partOnce.Do(func() {
		a.part.Store(newPartition(a))
	})
	return a.part.Load()
}
