package alias

import "tbaa/internal/ir"

// CallSummaries answers what a specific call instruction may do to the
// caller's memory, backed by interprocedural mod-ref summaries (package
// modref computes them over an RTA call graph; the pass environment
// adapts them to this interface, which exists so this package need not
// import its own client). Implementations must answer from
// flow-insensitive facts only: the flow layer queries them while its
// own dataflow is being solved, so a re-entrant site-aware query would
// not terminate.
type CallSummaries interface {
	// CallKillsPath reports whether the call may overwrite the location
	// denoted by ap, or rebind a variable ap depends on (its root or a
	// subscript), judged context-free.
	CallKillsPath(call *ir.Instr, ap *ir.AP) bool
	// CallMayRebind reports whether the call may reassign variable v —
	// v is a global some callee reassigns, or v's address escaped and
	// some callee stores through a location of v's type.
	CallMayRebind(call *ir.Instr, v *ir.Var) bool
}

// SetCallSummaries wires interprocedural call summaries into the
// flow-sensitive layer: with them, a call kills only the facts its
// possible callees may actually modify (the IPTypeRefs call-kill rule)
// instead of every fact. Any flow facts already computed under the
// kill-everything rule are dropped — they are sound but coarser, and
// per-site answers must not depend on query order. Passing nil
// restores the FSTypeRefs rule.
func (a *Analysis) SetCallSummaries(cs CallSummaries) {
	a.summaries = cs
	if a.flow != nil {
		a.flow.mu.Lock()
		clear(a.flow.procs)
		a.flow.mu.Unlock()
	}
}
