package alias_test

import (
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/bench"
	"tbaa/internal/driver"
	"tbaa/internal/ir"
	"tbaa/internal/randprog"
)

// partitionConfigs enumerates every analysis configuration the
// partition oracle must reproduce exactly: all five levels crossed with
// the open-world and per-type-groups switches.
func partitionConfigs() []alias.Options {
	var out []alias.Options
	for _, lvl := range []alias.Level{
		alias.LevelTypeDecl,
		alias.LevelFieldTypeDecl,
		alias.LevelSMFieldTypeRefs,
		alias.LevelFSTypeRefs,
		alias.LevelIPTypeRefs,
	} {
		for _, open := range []bool{false, true} {
			for _, perType := range []bool{false, true} {
				out = append(out, alias.Options{Level: lvl, OpenWorld: open, PerTypeGroups: perType})
			}
		}
	}
	return out
}

// TestPartitionMatchesCaseAnalysis is the exactness property behind
// the partition oracle: on randomly generated programs, at every level
// × OpenWorld × PerTypeGroups, the partitioned Analysis and a
// case-analysis-only Analysis (alias.NewCaseOnly) must return
// identical MayAlias verdicts for every reference pair — including the
// proper-prefix paths the store-kill rules query — and identical
// CountPairs metrics. Any divergence means an access-path signature is
// missing an input of Table 2's case analysis.
func TestPartitionMatchesCaseAnalysis(t *testing.T) {
	seeds := 500
	if testing.Short() {
		seeds = 60
	}
	cfg := randprog.Config{Types: 10, Globals: 6, Procs: 4, StmtsPer: 6, MaxDepth: 2}
	configs := partitionConfigs()
	for seed := int64(31000); seed < int64(31000)+int64(seeds); seed++ {
		src := randprog.Generate(seed, cfg)
		prog, _, err := driver.Compile("p.m3", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		refs := alias.References(prog)
		// The pair sweep is quadratic; bound the per-seed work while the
		// CountPairs comparison still covers every reference.
		sweep := refs
		if len(sweep) > 48 {
			sweep = sweep[:48]
		}
		for _, opts := range configs {
			part := alias.New(prog, opts)
			caseOnly := alias.NewCaseOnly(prog, opts)
			queryPaths := make([]*ir.AP, 0, 2*len(sweep))
			for i := range sweep {
				queryPaths = append(queryPaths, sweep[i].AP)
				// Deepest proper prefix: the path shape StoreKills walks.
				if n := len(sweep[i].AP.Sels); n >= 2 {
					queryPaths = append(queryPaths,
						&ir.AP{Root: sweep[i].AP.Root, Sels: sweep[i].AP.Sels[:n-1]})
				}
			}
			for i, p := range queryPaths {
				for j := i; j < len(queryPaths); j++ {
					q := queryPaths[j]
					got, want := part.MayAlias(p, q), caseOnly.MayAlias(p, q)
					if got != want {
						t.Fatalf("seed %d %v open=%v perType=%v: partition says %v, case analysis %v on %s ~ %s",
							seed, opts.Level, opts.OpenWorld, opts.PerTypeGroups, got, want, p, q)
					}
					// StoreKills walks the interned canonical prefix
					// chains, so this pins the partition's classification
					// of prefix paths too.
					gotK := part.StoreKills(p, alias.Site{}, q, alias.Site{})
					wantK := caseOnly.StoreKills(p, alias.Site{}, q, alias.Site{})
					if gotK != wantK {
						t.Fatalf("seed %d %v open=%v perType=%v: StoreKills diverged (%v vs %v) on %s killed by %s",
							seed, opts.Level, opts.OpenWorld, opts.PerTypeGroups, gotK, wantK, p, q)
					}
				}
			}
			gotPC := alias.CountPairs(prog, part)
			wantPC := alias.CountPairs(prog, caseOnly)
			if gotPC != wantPC {
				t.Fatalf("seed %d %v open=%v perType=%v: CountPairs %+v (partition) != %+v (case analysis)",
					seed, opts.Level, opts.OpenWorld, opts.PerTypeGroups, gotPC, wantPC)
			}
		}
	}
}

// TestPartitionAfterStructuralPasses pins the mutated-program rebuild
// path: devirtualization + inlining clone procedure bodies (fresh AP
// values) and invalidate, so the next oracle build re-interns a
// program that mixes surviving identities with new paths, and RLE then
// rewrites loads, orphaning identities. The rebuilt partition must
// agree with the case analysis on every reference pair — a duplicate
// or stale identity here once produced unsound no-alias verdicts (and
// nil holes crashed the builder) on the stock suite's Figure 11
// pipeline.
func TestPartitionAfterStructuralPasses(t *testing.T) {
	for _, bm := range bench.All() {
		prog, _, err := driver.Compile(bm.Name, bm.Source)
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		opts := alias.Options{Level: alias.LevelSMFieldTypeRefs}
		env, err := driver.NewPassEnv(prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := driver.RunPasses(env, driver.MinvInlinePass{}, driver.RLEPass{}, driver.PREPass{}); err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		// A fresh build over the now-mutated program: surviving APs keep
		// their identities, clones and PRE-inserted loads are new, and
		// RLE-removed loads left holes.
		env.Invalidate()
		part := env.Oracle()
		caseOnly := alias.NewCaseOnly(prog, opts)
		refs := alias.References(prog)
		for i := range refs {
			for j := i; j < len(refs); j++ {
				got := part.MayAlias(refs[i].AP, refs[j].AP)
				want := caseOnly.MayAlias(refs[i].AP, refs[j].AP)
				if got != want {
					t.Fatalf("%s: rebuilt partition says %v, case analysis %v on %s ~ %s",
						bm.Name, got, want, refs[i].AP, refs[j].AP)
				}
			}
		}
		if got, want := alias.CountPairs(prog, part), alias.CountPairs(prog, caseOnly); got != want {
			t.Fatalf("%s: rebuilt CountPairs %+v != %+v", bm.Name, got, want)
		}
	}
}

// TestPartitionStableAcrossRebuild pins rebuild determinism: a second
// Analysis over the same (already interned) program answers every
// reference pair identically — the property the Analyzer's Invalidate
// path depends on.
func TestPartitionStableAcrossRebuild(t *testing.T) {
	src := randprog.Generate(4242, randprog.DefaultConfig())
	prog, _, err := driver.Compile("p.m3", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range partitionConfigs() {
		a1 := alias.New(prog, opts)
		a2 := alias.New(prog, opts)
		refs := alias.References(prog)
		for i := range refs {
			for j := i; j < len(refs); j++ {
				if a1.MayAlias(refs[i].AP, refs[j].AP) != a2.MayAlias(refs[i].AP, refs[j].AP) {
					t.Fatalf("%v: rebuild changed the verdict on %s ~ %s",
						opts.Level, refs[i].AP, refs[j].AP)
				}
			}
		}
		if alias.CountPairs(prog, a1) != alias.CountPairs(prog, a2) {
			t.Fatalf("%v: rebuild changed CountPairs", opts.Level)
		}
	}
}
