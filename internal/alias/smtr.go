package alias

import (
	"tbaa/internal/ir"
	"tbaa/internal/types"
)

// buildTypeRefsUnionFind implements Figure 2 of the paper:
//
//	Step 1: put each (reference) type in its own set.
//	Step 2: for every pointer assignment a := b with Type(a) != Type(b),
//	        union their groups.
//	Step 3: TypeRefsTable(t) = group(t) ∩ Subtypes(t).
//
// Open-world mode additionally merges every non-branded object type with
// its non-branded supertype (Section 4: unavailable code can reconstruct
// any structural type and assign through it; branded types are immune).
func buildTypeRefsUnionFind(prog *ir.Program, openWorld bool) []types.Bitset {
	u := prog.Universe
	n := u.NumTypes()
	uf := newUnionFind(n)
	for _, m := range prog.Merges {
		uf.union(m.Dst.ID(), m.Src.ID())
	}
	if openWorld {
		for _, o := range u.ObjectTypes() {
			if o.Branded || o.Super == nil || o.Super.Branded {
				continue
			}
			uf.union(o.ID(), o.Super.ID())
		}
	}
	// Collect each equivalence class as a bitset.
	groups := make(map[int]*types.Bitset)
	for _, t := range u.ReferenceTypes() {
		r := uf.find(t.ID())
		g := groups[r]
		if g == nil {
			b := types.NewBitset(n)
			g = &b
			groups[r] = g
		}
		g.Add(t.ID())
	}
	// Step 3: filter by the subtype relation.
	table := make([]types.Bitset, n)
	for _, t := range u.ReferenceTypes() {
		refs := u.SubtypeBitset(t).Intersect(*groups[uf.find(t.ID())])
		refs.Add(t.ID())
		table[t.ID()] = refs
	}
	return table
}

// buildTypeRefsPerType implements the footnote-2 variant: a separate
// group per type with directed propagation. An assignment a := b makes
// everything b may reference also referenceable through a, but not vice
// versa. Iterates to a fixpoint, then applies the Step 3 subtype filter.
func buildTypeRefsPerType(prog *ir.Program, openWorld bool) []types.Bitset {
	u := prog.Universe
	n := u.NumTypes()
	group := make([]types.Bitset, n)
	for _, t := range u.ReferenceTypes() {
		b := types.NewBitset(n)
		b.Add(t.ID())
		group[t.ID()] = b
	}
	type edge struct{ dst, src int }
	var edges []edge
	for _, m := range prog.Merges {
		edges = append(edges, edge{m.Dst.ID(), m.Src.ID()})
		// Flow-insensitivity makes the reverse direction observable too
		// (a := b lets an AP of b's declared type reach objects stored
		// through a earlier in any execution order), but the directed
		// variant keeps only dst ⊇ src, which is what makes it more
		// precise than the equivalence-class formulation.
	}
	if openWorld {
		for _, o := range u.ObjectTypes() {
			if o.Branded || o.Super == nil || o.Super.Branded {
				continue
			}
			edges = append(edges, edge{o.Super.ID(), o.ID()}, edge{o.ID(), o.Super.ID()})
		}
	}
	changed := true
	for changed {
		changed = false
		for _, e := range edges {
			gd, gs := group[e.dst], group[e.src]
			if gd == nil || gs == nil {
				continue
			}
			before := gd.Count()
			gd.Union(gs)
			if gd.Count() != before {
				group[e.dst] = gd
				changed = true
			}
		}
	}
	table := make([]types.Bitset, n)
	for _, t := range u.ReferenceTypes() {
		refs := u.SubtypeBitset(t).Intersect(group[t.ID()])
		refs.Add(t.ID())
		table[t.ID()] = refs
	}
	return table
}

// TypeRefs exposes the TypeRefsTable row for a type (nil if the analysis
// level does not build one, or the type is not a reference type).
// Useful for reports, devirtualization refinement, and tests.
func (a *Analysis) TypeRefs(t types.Type) types.Bitset {
	if a.typeRefs == nil || t.ID() >= len(a.typeRefs) {
		return nil
	}
	return a.typeRefs[t.ID()]
}

// ---------------------------------------------------------------------------
// Union-find

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}
