package alias_test

import (
	"math/rand"
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/driver"
	"tbaa/internal/ir"
	"tbaa/internal/randprog"
)

// This file pins the bitset-backed TypeRefsTable to the original
// map-of-maps formulation: refTypeRefs* below are line-for-line ports of
// the pre-bitset builders, and the property tests check that the bitset
// oracle answers identically on randomly generated programs.

type refUnionFind struct {
	parent []int
}

func newRefUnionFind(n int) *refUnionFind {
	uf := &refUnionFind{parent: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *refUnionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *refUnionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra != rb {
		uf.parent[rb] = ra
	}
}

// refTypeRefsUnionFind is the old map-based Figure 2 builder.
func refTypeRefsUnionFind(prog *ir.Program, openWorld bool) map[int]map[int]bool {
	u := prog.Universe
	uf := newRefUnionFind(u.NumTypes())
	for _, m := range prog.Merges {
		uf.union(m.Dst.ID(), m.Src.ID())
	}
	if openWorld {
		for _, o := range u.ObjectTypes() {
			if o.Branded || o.Super == nil || o.Super.Branded {
				continue
			}
			uf.union(o.ID(), o.Super.ID())
		}
	}
	groups := make(map[int][]int)
	for _, t := range u.ReferenceTypes() {
		r := uf.find(t.ID())
		groups[r] = append(groups[r], t.ID())
	}
	table := make(map[int]map[int]bool)
	for _, t := range u.ReferenceTypes() {
		g := groups[uf.find(t.ID())]
		subSet := make(map[int]bool)
		for _, id := range u.Subtypes(t) {
			subSet[id] = true
		}
		refs := make(map[int]bool)
		for _, id := range g {
			if subSet[id] {
				refs[id] = true
			}
		}
		refs[t.ID()] = true
		table[t.ID()] = refs
	}
	return table
}

// refTypeRefsPerType is the old map-based footnote-2 builder.
func refTypeRefsPerType(prog *ir.Program, openWorld bool) map[int]map[int]bool {
	u := prog.Universe
	group := make(map[int]map[int]bool)
	for _, t := range u.ReferenceTypes() {
		group[t.ID()] = map[int]bool{t.ID(): true}
	}
	type edge struct{ dst, src int }
	var edges []edge
	for _, m := range prog.Merges {
		edges = append(edges, edge{m.Dst.ID(), m.Src.ID()})
	}
	if openWorld {
		for _, o := range u.ObjectTypes() {
			if o.Branded || o.Super == nil || o.Super.Branded {
				continue
			}
			edges = append(edges, edge{o.Super.ID(), o.ID()}, edge{o.ID(), o.Super.ID()})
		}
	}
	changed := true
	for changed {
		changed = false
		for _, e := range edges {
			gd, gs := group[e.dst], group[e.src]
			if gd == nil || gs == nil {
				continue
			}
			for id := range gs {
				if !gd[id] {
					gd[id] = true
					changed = true
				}
			}
		}
	}
	table := make(map[int]map[int]bool)
	for _, t := range u.ReferenceTypes() {
		subSet := make(map[int]bool)
		for _, id := range u.Subtypes(t) {
			subSet[id] = true
		}
		refs := make(map[int]bool)
		for id := range group[t.ID()] {
			if subSet[id] {
				refs[id] = true
			}
		}
		refs[t.ID()] = true
		table[t.ID()] = refs
	}
	return table
}

func mapsIntersect(a, b map[int]bool) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for id := range a {
		if b[id] {
			return true
		}
	}
	return false
}

// TestBitsetTypeRefsMatchesMapOracle checks, on randprog-generated
// programs, that every TypeRefsTable row and every row-intersection
// (the SMTypeRefs base relation) agrees between the bitset
// implementation and the original map-based one.
func TestBitsetTypeRefsMatchesMapOracle(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(21000); seed < int64(21000+seeds); seed++ {
		src := randprog.Generate(seed, randprog.DefaultConfig())
		prog, _, err := driver.Compile("r.m3", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		u := prog.Universe
		for _, openWorld := range []bool{false, true} {
			for _, perType := range []bool{false, true} {
				a := alias.New(prog, alias.Options{
					Level:         alias.LevelSMFieldTypeRefs,
					OpenWorld:     openWorld,
					PerTypeGroups: perType,
				})
				var want map[int]map[int]bool
				if perType {
					want = refTypeRefsPerType(prog, openWorld)
				} else {
					want = refTypeRefsUnionFind(prog, openWorld)
				}
				rts := u.ReferenceTypes()
				for _, t1 := range rts {
					got := a.TypeRefs(t1)
					w := want[t1.ID()]
					if got.Count() != len(w) {
						t.Fatalf("seed %d open=%v perType=%v: TypeRefs(%s) = %v, map oracle %v",
							seed, openWorld, perType, t1, got.IDs(), w)
					}
					for _, id := range got.IDs() {
						if !w[id] {
							t.Fatalf("seed %d: TypeRefs(%s) contains %d, map oracle does not",
								seed, t1, id)
						}
					}
					for _, t2 := range rts {
						g2 := a.TypeRefs(t2)
						if got.Intersects(g2) != mapsIntersect(w, want[t2.ID()]) {
							t.Fatalf("seed %d open=%v perType=%v: intersection of %s and %s disagrees",
								seed, openWorld, perType, t1, t2)
						}
					}
				}
			}
		}
	}
}

// TestMayAliasMemoStable checks that the memo cache never changes an
// answer: querying every pair twice (cold then warm), and querying a
// second independent analysis in a shuffled order, all agree.
func TestMayAliasMemoStable(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(31000); seed < int64(31000+seeds); seed++ {
		src := randprog.Generate(seed, randprog.DefaultConfig())
		prog, _, err := driver.Compile("r.m3", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, lvl := range []alias.Level{
			alias.LevelTypeDecl, alias.LevelFieldTypeDecl, alias.LevelSMFieldTypeRefs,
		} {
			a1 := alias.New(prog, alias.Options{Level: lvl})
			a2 := alias.New(prog, alias.Options{Level: lvl})
			refs := alias.References(prog)
			if len(refs) > 50 {
				refs = refs[:50]
			}
			type pair struct{ p, q *ir.AP }
			var pairs []pair
			cold := make(map[pair]bool)
			for i := range refs {
				for j := i; j < len(refs); j++ {
					pr := pair{refs[i].AP, refs[j].AP}
					pairs = append(pairs, pr)
					cold[pr] = a1.MayAlias(pr.p, pr.q)
				}
			}
			for _, pr := range pairs {
				if a1.MayAlias(pr.p, pr.q) != cold[pr] {
					t.Fatalf("seed %d %v: warm memo answer differs for %s ~ %s",
						seed, lvl, pr.p, pr.q)
				}
			}
			rng := rand.New(rand.NewSource(seed))
			rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
			for _, pr := range pairs {
				if a2.MayAlias(pr.q, pr.p) != cold[pr] {
					t.Fatalf("seed %d %v: shuffled/swapped query differs for %s ~ %s",
						seed, lvl, pr.p, pr.q)
				}
			}
		}
	}
}
