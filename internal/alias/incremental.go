package alias

import (
	"tbaa/internal/ir"
	"tbaa/internal/types"
)

// This file implements the incremental counterpart of New: rebuilding an
// Analysis after a known set of procedures was mutated, at a cost
// proportional to the mutated bodies instead of the module.
//
// The delta path is exact, not merely conservative: the differential
// gate demands that an incrementally rebuilt oracle answer byte-equal
// verdicts to a from-scratch build, so every reuse below is justified by
// an invariant, and anything the invariants cannot cover returns nil —
// the caller falls back to New, which is always exact. A dirty-set bug
// can therefore only cost performance (an unnecessary full rebuild or an
// unnecessarily large delta), never soundness.
//
// The reuse invariants:
//
//   - Context-free verdicts (the partition, the memo, typeCompat) depend
//     only on types and the program's global facts — Merges,
//     AddressTaken*, ByRefFormalTypes, the universe — never on which
//     instruction carries a path. All of those tables are append-only
//     under mutation, so equal lengths (the fingerprint) mean they are
//     identical, and every structure derived from them is reusable.
//   - Access-path identities are append-only (ir.ExtendAPs): surviving
//     paths keep their IID and class, fresh paths number strictly above
//     every old identity.
//   - Flow facts are per-procedure and intraprocedural; a solved
//     procFlow is immutable, so entries for untouched procedures carry
//     over by pointer. (Interprocedural staleness — facts that consulted
//     a callee summary that was since recomputed — is the caller's to
//     handle via InvalidateFlow; the pass environment invalidates every
//     procedure whose SCC was resummarized.)

// fingerprint is a cheap equality witness for the global facts the
// context-free analysis consults. Every component table is append-only
// during pass pipelines and server edits, so equal lengths imply
// identical contents.
type fingerprint struct {
	numTypes     int
	merges       int
	addrFields   int
	addrElems    int
	addrVars     int
	byRefFormals int
}

func fingerprintOf(prog *ir.Program) fingerprint {
	return fingerprint{
		numTypes:     prog.Universe.NumTypes(),
		merges:       len(prog.Merges),
		addrFields:   len(prog.AddressTakenFields),
		addrElems:    len(prog.AddressTakenElems),
		addrVars:     len(prog.AddressTakenVars),
		byRefFormals: len(prog.ByRefFormalTypes),
	}
}

// Update builds a new Analysis over old's program after the given
// procedures' bodies were mutated, reusing every structure the mutation
// cannot have changed: the TypeRefsTable, the AddressTaken indexes, the
// sharded memo, the interned identities and alias classes of every
// surviving path, the compatibility bitmatrix (extended in place with
// rows for new classes only), and the flow facts of untouched
// procedures. It returns nil when the delta preconditions do not hold —
// the dirty set is empty (an unstamped mutation may be hiding), or a
// global fact table grew (new merges or address-taken facts can flip
// verdicts module-wide) — and the caller must fall back to New.
//
// The returned Analysis is a distinct generation: old is never written
// (shared substructures are immutable or internally synchronized), so
// queries in flight against old remain correct. Same single-threaded
// construction contract as New.
func Update(old *Analysis, dirty []*ir.Proc) *Analysis {
	if old == nil || old.noPart || len(dirty) == 0 {
		return nil
	}
	if fingerprintOf(old.prog) != old.fp {
		return nil
	}
	a := &Analysis{
		prog:       old.prog,
		u:          old.u,
		opts:       old.opts,
		typeRefs:   old.typeRefs,
		addrFields: old.addrFields,
		addrElems:  old.addrElems,
		addrOwners: old.addrOwners,
		memo:       old.memo,
		fp:         old.fp,
	}
	a.apIdx = ir.ExtendAPs(old.prog, old.apIdx, dirty)
	if old.flow != nil {
		a.flow = newFlow(a)
		old.flow.mu.Lock()
		for p, e := range old.flow.procs {
			a.flow.procs[p] = e
		}
		old.flow.mu.Unlock()
		for _, p := range dirty {
			delete(a.flow.procs, p)
		}
	}
	// If old never built its partition there is nothing to extend; the
	// new generation builds lazily from the extended index as usual.
	if op := old.part.Load(); op != nil {
		a.part.Store(extendPartition(a, op))
	}
	return a
}

// extendPartition classifies the extended index against old's classes:
// surviving slots copy their classification verbatim, fresh paths join
// an existing class when their signature matches (two paths with equal
// signatures are indistinguishable to the case analysis, so the old
// representative answers for them) or found a new class. The
// compatibility matrix is shared outright when no class was added, and
// otherwise extended by running the case analysis only for pairs
// involving a new class — the O(C_new x C) sliver of the O(C^2) full
// build.
func extendPartition(a *Analysis, old *partition) *partition {
	idx := a.apIdx
	part := &partition{
		idx:  idx,
		aps:  idx.APs,
		cls:  make([]int32, idx.Len()+1),
		reps: append([]*ir.AP(nil), old.reps...),
	}
	classes := make(map[apSig]int32, len(old.reps))
	for ci, rep := range part.reps {
		classes[a.signature(rep)] = int32(ci)
	}
	oldN := len(old.aps)
	var fresh []int32
	for i, ap := range idx.APs {
		if ap == nil {
			part.cls[i+1] = -1
			continue
		}
		if i < oldN && old.aps[i] == ap {
			// Identities are append-only, so every old slot survives into
			// the extended table unchanged — including slots whose paths
			// the mutated bodies no longer carry (unreachable through any
			// current instruction; classOf validates pointers anyway).
			part.cls[i+1] = old.cls[i+1]
			continue
		}
		sig := a.signature(ap)
		ci, ok := classes[sig]
		if !ok {
			ci = int32(len(part.reps))
			classes[sig] = ci
			part.reps = append(part.reps, ap)
			fresh = append(fresh, ci)
		}
		part.cls[i+1] = ci
	}
	n := len(part.reps)
	if len(fresh) == 0 {
		part.compat = old.compat
		return part
	}
	part.compat = make([]types.Bitset, n)
	for i := range part.compat {
		b := types.NewBitset(n)
		if i < len(old.compat) {
			copy(b, old.compat[i])
		}
		part.compat[i] = b
	}
	for _, ci := range fresh {
		for j := int32(0); j < int32(n); j++ {
			if a.mayAliasCase(part.reps[ci], part.reps[j]) {
				part.compat[ci].Add(int(j))
				part.compat[j].Add(int(ci))
			}
		}
	}
	return part
}
