// Package alias implements the paper's three type-based alias analyses:
//
//   - TypeDecl: two access paths may alias iff the subtype sets of their
//     declared types intersect (Section 2.2).
//   - FieldTypeDecl: the seven-case refinement using field names and the
//     AddressTaken predicate (Table 2, Section 2.3).
//   - SMFieldTypeRefs: FieldTypeDecl with TypeDecl replaced by SMTypeRefs,
//     the flow-insensitive selective type merging over the program's
//     pointer assignments (Figure 2, Section 2.4).
//
// Section 4's open-world variants (incomplete programs) widen
// AddressTaken and the merge relation, and are selected by Options.
package alias

import (
	"tbaa/internal/ir"
	"tbaa/internal/types"
)

// Level selects one of the paper's analyses.
type Level int

// Analysis levels, in increasing precision.
const (
	// LevelTypeDecl uses type compatibility only.
	LevelTypeDecl Level = iota
	// LevelFieldTypeDecl adds field names and AddressTaken (Table 2).
	LevelFieldTypeDecl
	// LevelSMFieldTypeRefs adds flow-insensitive selective type merging.
	LevelSMFieldTypeRefs
)

func (l Level) String() string {
	switch l {
	case LevelTypeDecl:
		return "TypeDecl"
	case LevelFieldTypeDecl:
		return "FieldTypeDecl"
	case LevelSMFieldTypeRefs:
		return "SMFieldTypeRefs"
	}
	return "?"
}

// Options configures an analysis run.
type Options struct {
	Level Level
	// OpenWorld applies Section 4's conservative extensions for
	// incomplete programs: AddressTaken also holds for any path whose
	// type equals some pass-by-reference formal's type, and all
	// subtype-related non-branded object types are merged.
	OpenWorld bool
	// PerTypeGroups selects the paper's footnote-2 variant of SMTypeRefs
	// that maintains a separate group per type (directed propagation)
	// instead of union-find equivalence classes. More precise, slower.
	PerTypeGroups bool
}

// Oracle answers may-alias queries over symbolic access paths. All the
// clients (RLE, mod-ref) depend only on this interface.
type Oracle interface {
	// MayAlias reports whether the two access paths may denote the same
	// memory location.
	MayAlias(p, q *ir.AP) bool
	// Name identifies the oracle in reports.
	Name() string
}

// Analysis is a built TBAA instance for one program.
type Analysis struct {
	prog *ir.Program
	u    *types.Universe
	opts Options
	// typeRefs maps type ID -> set of type IDs an AP of that declared
	// type may reference (the TypeRefsTable). Nil for LevelTypeDecl and
	// LevelFieldTypeDecl, which use raw subtype sets.
	typeRefs map[int]map[int]bool
	// addrFields / addrElems are the AddressTaken facts.
	addrFields map[ir.FieldKey]bool
	addrElems  map[int]bool
}

// New builds a TBAA analysis over a lowered program.
func New(prog *ir.Program, opts Options) *Analysis {
	a := &Analysis{
		prog:       prog,
		u:          prog.Universe,
		opts:       opts,
		addrFields: prog.AddressTakenFields,
		addrElems:  prog.AddressTakenElems,
	}
	if opts.Level == LevelSMFieldTypeRefs {
		if opts.PerTypeGroups {
			a.typeRefs = buildTypeRefsPerType(prog, opts.OpenWorld)
		} else {
			a.typeRefs = buildTypeRefsUnionFind(prog, opts.OpenWorld)
		}
	}
	return a
}

// Name implements Oracle.
func (a *Analysis) Name() string {
	n := a.opts.Level.String()
	if a.opts.OpenWorld {
		n += "(open)"
	}
	return n
}

// MayAlias implements Oracle.
func (a *Analysis) MayAlias(p, q *ir.AP) bool {
	if a.opts.Level == LevelTypeDecl {
		return a.typeCompat(p.Type(), q.Type())
	}
	return a.fieldTypeDecl(p, q)
}

// typeCompat is the level-appropriate base relation: TypeDecl's subtype
// intersection, or SMTypeRefs' TypeRefsTable intersection.
func (a *Analysis) typeCompat(t1, t2 types.Type) bool {
	if t1 == nil || t2 == nil {
		return true // unknown: be conservative
	}
	if a.typeRefs != nil {
		s1, ok1 := a.typeRefs[t1.ID()]
		s2, ok2 := a.typeRefs[t2.ID()]
		if ok1 && ok2 {
			// Intersect the smaller against the larger.
			if len(s1) > len(s2) {
				s1, s2 = s2, s1
			}
			for id := range s1 {
				if s2[id] {
					return true
				}
			}
			return false
		}
		// Non-reference types fall through to subtype compatibility.
	}
	return a.u.SubtypesIntersect(t1, t2)
}

// AddressTaken reports whether the program may take the address of the
// location the path denotes (a qualified field or an array element).
// Open-world mode adds the paper's Section 4 clause: any path whose type
// equals a pass-by-reference formal's type may have been aliased by
// unavailable code.
func (a *Analysis) AddressTaken(p *ir.AP) bool {
	last := p.Last()
	if last == nil {
		return a.prog.AddressTakenVars[p.Root]
	}
	if a.opts.OpenWorld && a.prog.ByRefFormalTypes[p.Type().ID()] {
		return true
	}
	switch last.Kind {
	case ir.SelField:
		// The recorded key is the static type of the prefix (field owner).
		// Any owner type compatible with this path's prefix matches.
		pt := prefixOwnerType(p)
		for key := range a.addrFields {
			if key.Field != last.Field {
				continue
			}
			if a.typeCompat(a.u.ByID(key.TypeID), pt) {
				return true
			}
		}
		return false
	case ir.SelIndex:
		at := subscriptArrayType(p)
		if at == nil {
			return false
		}
		return a.addrElems[at.ID()]
	default:
		return false
	}
}

// prefixOwnerType returns the object/record type owning the final field
// selector of p.
func prefixOwnerType(p *ir.AP) types.Type {
	pre := p.Prefix()
	t := pre.Type()
	if rt, ok := t.(*types.Ref); ok {
		return rt.Elem
	}
	return t
}

// subscriptArrayType returns the array type subscripted by a path ending
// in [i] (its prefix ends with the implicit {elems} selector).
func subscriptArrayType(p *ir.AP) *types.Array {
	n := len(p.Sels)
	// Dope-expanded paths carry an explicit {elems} step before [i].
	if n >= 2 && p.Sels[n-2].Kind == ir.SelDopeElems {
		pre := &ir.AP{Root: p.Root, Sels: p.Sels[:n-2]}
		if at, ok := pre.Type().(*types.Array); ok {
			return at
		}
	}
	// Source-level paths subscript the array-typed prefix directly.
	if n >= 1 {
		pre := &ir.AP{Root: p.Root, Sels: p.Sels[:n-1]}
		if at, ok := pre.Type().(*types.Array); ok {
			return at
		}
	}
	return nil
}

// fieldTypeDecl implements Table 2 of the paper. The base relation
// (TypeDecl or SMTypeRefs) is a.typeCompat.
func (a *Analysis) fieldTypeDecl(p, q *ir.AP) bool {
	// Case 1: identical access paths always alias.
	if p.Equal(q) {
		return true
	}
	lp, lq := p.Last(), q.Last()
	// Case 7 for bare variables (paths with no selector): in the Table 2
	// recursion a bare variable stands for "the objects this variable may
	// reference", so the test is plain type compatibility. (Distinct
	// variable *slots* never alias; clients handle variable kills
	// separately — the oracle answers the points-to question.)
	if lp == nil || lq == nil {
		return a.typeCompat(p.Type(), q.Type())
	}
	k1, k2 := lp.Kind, lq.Kind
	// Normalize order so we only handle one triangle of the case matrix.
	if rank(k1) > rank(k2) {
		p, q = q, p
		lp, lq = lq, lp
		k1, k2 = k2, k1
	}
	switch {
	// Case 2: p.f vs q.g — includes the implicit dope "fields", whose
	// names ({len}, {elems}) never collide with source fields.
	case isFieldLike(k1) && isFieldLike(k2):
		if fieldName(lp) != fieldName(lq) {
			return false
		}
		return a.prefixesMayCoincide(p.Prefix(), q.Prefix())
	// Case 3: p.f vs q^.
	case isFieldLike(k1) && k2 == ir.SelDeref:
		return a.AddressTaken(p) && a.typeCompat(p.Type(), q.Type())
	// Case 5: p.f vs q[i] — never aliases in Modula-3.
	case isFieldLike(k1) && k2 == ir.SelIndex:
		return false
	// Case 7 (two dereferences): TypeDecl on the paths.
	case k1 == ir.SelDeref && k2 == ir.SelDeref:
		return a.typeCompat(p.Type(), q.Type())
	// Case 4: p^ vs q[i].
	case k1 == ir.SelDeref && k2 == ir.SelIndex:
		return a.AddressTaken(q) && a.typeCompat(p.Type(), q.Type())
	// Case 6: p[i] vs q[j] — ignore the subscripts, compare the arrays.
	case k1 == ir.SelIndex && k2 == ir.SelIndex:
		return a.prefixesMayCoincide(subscriptPrefix(p), subscriptPrefix(q))
	}
	// Case 7 fallback.
	return a.typeCompat(p.Type(), q.Type())
}

// prefixesMayCoincide reports whether the values of two prefix paths may
// refer to the same object.
//
// Table 2 of the paper recurses with FieldTypeDecl(p, q) here, which
// answers whether p and q are the same *location*. What case 2 actually
// needs is whether their *values* can be the same pointer — two distinct
// fields can hold the same object, making x.f.i and y.g.i the same
// location even though x.f and y.g are not. Recursion on field names is
// therefore unsound for paths of depth ≥ 2 (our dynamic soundness
// property test found the counterexample); the sound test is type-range
// intersection on the prefix value types, which keeps all of the paper's
// one-level precision (sibling-subtype and selective-merge pruning).
func (a *Analysis) prefixesMayCoincide(p, q *ir.AP) bool {
	return a.typeCompat(p.Type(), q.Type())
}

// rank orders selector kinds for the case normalization above:
// field-like < deref < index.
func rank(k ir.SelKind) int {
	switch k {
	case ir.SelField, ir.SelDopeLen, ir.SelDopeElems:
		return 0
	case ir.SelDeref:
		return 1
	default:
		return 2
	}
}

func isFieldLike(k ir.SelKind) bool {
	return k == ir.SelField || k == ir.SelDopeLen || k == ir.SelDopeElems
}

func fieldName(s *ir.APSel) string {
	switch s.Kind {
	case ir.SelDopeLen:
		return "{len}"
	case ir.SelDopeElems:
		return "{elems}"
	default:
		return s.Field
	}
}

// subscriptPrefix strips the trailing [i] and the implicit {elems} step,
// yielding the paper's "p" in p[i].
func subscriptPrefix(p *ir.AP) *ir.AP {
	n := len(p.Sels)
	if n >= 2 && p.Sels[n-2].Kind == ir.SelDopeElems {
		return &ir.AP{Root: p.Root, Sels: p.Sels[:n-2]}
	}
	return p.Prefix()
}

// ---------------------------------------------------------------------------
// Trivial oracles used as baselines and upper bounds

// AssumeAll is the trivial analysis: everything may alias. It is the
// paper's "no alias analysis" baseline.
type AssumeAll struct{}

// MayAlias implements Oracle.
func (AssumeAll) MayAlias(p, q *ir.AP) bool { return true }

// Name implements Oracle.
func (AssumeAll) Name() string { return "AssumeAll" }

// AssumeNone is the (unsound) perfect-analysis stand-in used for the
// upper-bound study: distinct syntactic paths never alias.
type AssumeNone struct{}

// MayAlias implements Oracle.
func (AssumeNone) MayAlias(p, q *ir.AP) bool { return p.Equal(q) }

// Name implements Oracle.
func (AssumeNone) Name() string { return "AssumeNone" }
