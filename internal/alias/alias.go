// Package alias implements the paper's three type-based alias analyses:
//
//   - TypeDecl: two access paths may alias iff the subtype sets of their
//     declared types intersect (Section 2.2).
//   - FieldTypeDecl: the seven-case refinement using field names and the
//     AddressTaken predicate (Table 2, Section 2.3).
//   - SMFieldTypeRefs: FieldTypeDecl with TypeDecl replaced by SMTypeRefs,
//     the flow-insensitive selective type merging over the program's
//     pointer assignments (Figure 2, Section 2.4).
//
// Section 4's open-world variants (incomplete programs) widen
// AddressTaken and the merge relation, and are selected by Options.
package alias

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tbaa/internal/ir"
	"tbaa/internal/types"
)

// Level selects one of the paper's analyses.
type Level int

// Analysis levels, in increasing precision.
const (
	// LevelTypeDecl uses type compatibility only.
	LevelTypeDecl Level = iota
	// LevelFieldTypeDecl adds field names and AddressTaken (Table 2).
	LevelFieldTypeDecl
	// LevelSMFieldTypeRefs adds flow-insensitive selective type merging.
	LevelSMFieldTypeRefs
	// LevelFSTypeRefs refines SMFieldTypeRefs with an intraprocedural
	// flow-sensitive reaching-facts analysis: per-statement kill/gen of
	// access-path facts narrows what each pointer variable may reference
	// at that statement, so site-aware queries (MayAliasAt) can prove
	// no-alias where the flow-insensitive verdict is may-alias. The
	// context-free MayAlias is identical to SMFieldTypeRefs.
	LevelFSTypeRefs
	// LevelIPTypeRefs extends FSTypeRefs interprocedurally: the
	// flow-sensitive call-kill rule consults per-procedure transitive
	// mod-ref summaries over an RTA call graph (wired in through
	// SetCallSummaries), so a call kills only the facts its possible
	// callees may actually modify instead of all of them. Context-free
	// MayAlias remains identical to SMFieldTypeRefs.
	LevelIPTypeRefs
)

func (l Level) String() string {
	switch l {
	case LevelTypeDecl:
		return "TypeDecl"
	case LevelFieldTypeDecl:
		return "FieldTypeDecl"
	case LevelSMFieldTypeRefs:
		return "SMFieldTypeRefs"
	case LevelFSTypeRefs:
		return "FSTypeRefs"
	case LevelIPTypeRefs:
		return "IPTypeRefs"
	}
	return "?"
}

// Options configures an analysis run.
type Options struct {
	Level Level
	// OpenWorld applies Section 4's conservative extensions for
	// incomplete programs: AddressTaken also holds for any path whose
	// type equals some pass-by-reference formal's type, and all
	// subtype-related non-branded object types are merged.
	OpenWorld bool
	// PerTypeGroups selects the paper's footnote-2 variant of SMTypeRefs
	// that maintains a separate group per type (directed propagation)
	// instead of union-find equivalence classes. More precise, slower.
	PerTypeGroups bool
	// FlowSensitive layers the intraprocedural flow-sensitive refinement
	// on top of SMFieldTypeRefs; setting it is equivalent to selecting
	// LevelFSTypeRefs. It requires Level >= LevelSMFieldTypeRefs (the
	// refinement narrows TypeRefsTable rows, which lower levels lack).
	FlowSensitive bool
	// Interprocedural layers RTA-call-graph mod-ref summaries on top of
	// the flow-sensitive refinement; setting it is equivalent to
	// selecting LevelIPTypeRefs (it implies FlowSensitive). Like
	// FlowSensitive it requires Level >= LevelSMFieldTypeRefs. The
	// summaries themselves are owned by the pass environment, which
	// wires them in through SetCallSummaries; until then the call-kill
	// rule stays the FSTypeRefs kill-everything rule.
	Interprocedural bool
}

// Validate reports whether the options describe a buildable analysis:
// the level must be in range (an out-of-range Level would otherwise
// silently degrade to FieldTypeDecl behavior in MayAlias), and the
// flow-sensitive refinement needs a TypeRefsTable to narrow.
func (o Options) Validate() error {
	if o.Level < LevelTypeDecl || o.Level > LevelIPTypeRefs {
		return fmt.Errorf("alias: level %d out of range (valid: %d=TypeDecl, %d=FieldTypeDecl, %d=SMFieldTypeRefs, %d=FSTypeRefs, %d=IPTypeRefs)",
			int(o.Level), int(LevelTypeDecl), int(LevelFieldTypeDecl), int(LevelSMFieldTypeRefs), int(LevelFSTypeRefs), int(LevelIPTypeRefs))
	}
	if o.FlowSensitive && o.Level < LevelSMFieldTypeRefs {
		return fmt.Errorf("alias: flow-sensitive refinement requires level %v or above, have %v",
			LevelSMFieldTypeRefs, o.Level)
	}
	if o.Interprocedural && o.Level < LevelSMFieldTypeRefs {
		return fmt.Errorf("alias: interprocedural mod-ref requires level %v or above, have %v",
			LevelSMFieldTypeRefs, o.Level)
	}
	return nil
}

// Normalize returns o with the spellings of the flow-sensitive and
// interprocedural configurations folded together: LevelFSTypeRefs
// implies FlowSensitive, LevelIPTypeRefs implies FlowSensitive and
// Interprocedural, and the flags on lower (but at least
// SMFieldTypeRefs) levels select the corresponding level.
func (o Options) Normalize() Options {
	switch o.Level {
	case LevelIPTypeRefs:
		o.FlowSensitive, o.Interprocedural = true, true
	case LevelFSTypeRefs:
		o.FlowSensitive = true
	}
	if o.Interprocedural && o.Level >= LevelSMFieldTypeRefs {
		o.Level, o.FlowSensitive = LevelIPTypeRefs, true
	} else if o.FlowSensitive && o.Level == LevelSMFieldTypeRefs {
		o.Level = LevelFSTypeRefs
	}
	return o
}

// Oracle answers may-alias queries over symbolic access paths. All the
// clients (RLE, mod-ref) depend only on this interface.
type Oracle interface {
	// MayAlias reports whether the two access paths may denote the same
	// memory location.
	MayAlias(p, q *ir.AP) bool
	// Name identifies the oracle in reports.
	Name() string
}

// Analysis is a built TBAA instance for one program. Once constructed
// it is safe for concurrent queries: the partition oracle and the
// AddressTaken tables are immutable, the MayAlias memo is a sharded
// cache, and the flow-sensitive layer builds per-procedure facts behind
// its own synchronization. Construction itself (New) interns access
// paths into the program and must not run concurrently with another New
// over the same Program.
type Analysis struct {
	prog *ir.Program
	u    *types.Universe
	opts Options
	// typeRefs is indexed by type ID and holds the set of type IDs an AP
	// of that declared type may reference (the TypeRefsTable). Nil rows
	// mark non-reference types; the whole slice is nil for LevelTypeDecl
	// and LevelFieldTypeDecl, which use raw subtype sets.
	typeRefs []types.Bitset
	// addrFields / addrElems are the AddressTaken facts.
	addrFields map[ir.FieldKey]bool
	addrElems  map[int]bool
	// addrOwners indexes addrFields by field name: the owner types whose
	// field of that name has its address taken. AddressTaken consults it
	// instead of scanning every recorded fact per query.
	addrOwners map[string][]types.Type
	// memo caches answers for the expensive MayAlias cases (the ones
	// that run AddressTaken), keyed by the AP pointer pair in the
	// orientation produced by fieldTypeDecl's rank normalization —
	// identical for both query orders, so one entry is order-insensitive.
	memo *memoCache
	// apIdx holds the program's interned access paths and canonical
	// prefix chains (built in New; see ir.InternAPs).
	apIdx *ir.APIndex
	// part is the partition oracle: alias classes over the interned
	// paths plus a class × class compatibility bitmatrix, making
	// context-free MayAlias two ID loads and a bitset test. Built on
	// first use (partOnce) and immutable afterwards; noPart disables it
	// for the differential tests that pin it to the case analysis.
	part     atomic.Pointer[partition]
	partOnce sync.Once
	noPart   bool
	// flow is the per-procedure flow-sensitive refinement layer, present
	// at LevelFSTypeRefs and above. Procedure facts are built lazily on
	// the first site-aware query and dropped by InvalidateFlow.
	flow *flow
	// summaries supplies interprocedural call effects to the flow
	// layer's call-kill rule (LevelIPTypeRefs; see SetCallSummaries).
	// While nil, calls kill every flow fact — the FSTypeRefs rule.
	summaries CallSummaries
	// prefixMu/prefixCache memoize StoreKills' proper-prefix APs for
	// paths the intern index has no canonical chain for (paths
	// materialized after construction); interned paths use apIdx.
	prefixMu    sync.RWMutex
	prefixCache map[*ir.AP][]*ir.AP
	// fp witnesses the global fact tables this build consumed; Update
	// compares it against the program's current tables to decide whether
	// the context-free structures are reusable (see incremental.go).
	fp fingerprint
}

// New builds a TBAA analysis over a lowered program. It panics if opts
// is invalid (see Options.Validate); callers constructing options from
// untrusted input should call Validate first and surface the error.
//
// New interns the program's access paths (ir.InternAPs) as part of
// construction: two New calls over one Program must not run
// concurrently, but rebuilding over an unchanged program writes
// nothing, so a rebuild may overlap queries against an earlier
// Analysis of the same program.
func New(prog *ir.Program, opts Options) *Analysis {
	return newAnalysis(prog, opts, true)
}

func newAnalysis(prog *ir.Program, opts Options, usePartition bool) *Analysis {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	opts = opts.Normalize()
	a := &Analysis{
		prog:       prog,
		u:          prog.Universe,
		opts:       opts,
		addrFields: prog.AddressTakenFields,
		addrElems:  prog.AddressTakenElems,
		addrOwners: make(map[string][]types.Type, len(prog.AddressTakenFields)),
		memo:       newMemoCache(),
		noPart:     !usePartition,
	}
	for key := range prog.AddressTakenFields {
		a.addrOwners[key.Field] = append(a.addrOwners[key.Field], prog.Universe.ByID(key.TypeID))
	}
	if opts.Level >= LevelSMFieldTypeRefs {
		if opts.PerTypeGroups {
			a.typeRefs = buildTypeRefsPerType(prog, opts.OpenWorld)
		} else {
			a.typeRefs = buildTypeRefsUnionFind(prog, opts.OpenWorld)
		}
	}
	if opts.Level >= LevelFSTypeRefs {
		a.flow = newFlow(a)
	}
	if usePartition {
		a.apIdx = ir.InternAPs(prog)
	}
	a.fp = fingerprintOf(prog)
	return a
}

// Name implements Oracle.
func (a *Analysis) Name() string {
	n := a.opts.Level.String()
	if a.opts.OpenWorld {
		n += "(open)"
	}
	return n
}

// MayAlias implements Oracle. Interned paths (everything occurring in
// the program, plus the canonical prefixes the kill rules walk) answer
// through the partition oracle — two ID loads and a bitset test. Paths
// the partition has never seen fall back to the case analysis, whose
// cheap cases (a type-set intersection or two) are recomputed every
// time while the Table 2 cases that run AddressTaken are memoized,
// because they walk owner-type lists and RLE re-asks them for the same
// AP pairs throughout its dataflow iteration.
func (a *Analysis) MayAlias(p, q *ir.AP) bool {
	if !a.noPart {
		part := a.partition()
		if ci := part.classOf(p); ci >= 0 {
			if cj := part.classOf(q); cj >= 0 {
				return part.compat[ci].Has(int(cj))
			}
		}
	}
	return a.mayAliasCase(p, q)
}

// mayAliasCase is the case-analysis verdict (the pre-partition
// MayAlias): the level's base relation for bare paths, Table 2
// otherwise. The partition builder calls it on class representatives;
// queries only reach it for paths materialized after the build.
func (a *Analysis) mayAliasCase(p, q *ir.AP) bool {
	if a.opts.Level == LevelTypeDecl {
		return a.typeCompat(p.Type(), q.Type())
	}
	return a.fieldTypeDecl(p, q)
}

// typeCompat is the level-appropriate base relation: TypeDecl's subtype
// intersection, or SMTypeRefs' TypeRefsTable intersection.
func (a *Analysis) typeCompat(t1, t2 types.Type) bool {
	if t1 == nil || t2 == nil {
		return true // unknown: be conservative
	}
	if a.typeRefs != nil {
		var s1, s2 types.Bitset
		if id := t1.ID(); id < len(a.typeRefs) {
			s1 = a.typeRefs[id]
		}
		if id := t2.ID(); id < len(a.typeRefs) {
			s2 = a.typeRefs[id]
		}
		if s1 != nil && s2 != nil {
			// Word-0 fast path: most universes have < 64 types. Rows are
			// built with NewBitset(NumTypes), so they are never 0 words.
			if s1[0]&s2[0] != 0 {
				return true
			}
			return s1.Intersects(s2)
		}
		// Non-reference types fall through to subtype compatibility.
	}
	return a.u.SubtypesIntersect(t1, t2)
}

// AddressTaken reports whether the program may take the address of the
// location the path denotes (a qualified field or an array element).
// Open-world mode adds the paper's Section 4 clause: any path whose type
// equals a pass-by-reference formal's type may have been aliased by
// unavailable code.
func (a *Analysis) AddressTaken(p *ir.AP) bool {
	last := p.Last()
	if last == nil {
		return a.prog.AddressTakenVars[p.Root]
	}
	if a.opts.OpenWorld && a.prog.ByRefFormalTypes[p.Type().ID()] {
		return true
	}
	switch last.Kind {
	case ir.SelField:
		// The recorded key is the static type of the prefix (field owner).
		// Any owner type compatible with this path's prefix matches.
		pt := prefixOwnerType(p)
		for _, owner := range a.addrOwners[last.Field] {
			if a.typeCompat(owner, pt) {
				return true
			}
		}
		return false
	case ir.SelIndex:
		at := subscriptArrayType(p)
		if at == nil {
			return false
		}
		return a.addrElems[at.ID()]
	default:
		return false
	}
}

// prefixType returns the static type of p with its final selector
// removed, without materializing the prefix path.
func prefixType(p *ir.AP) types.Type {
	if n := len(p.Sels); n >= 2 {
		return p.Sels[n-2].Type
	}
	return p.Root.Type
}

// prefixOwnerType returns the object/record type owning the final field
// selector of p.
func prefixOwnerType(p *ir.AP) types.Type {
	t := prefixType(p)
	if rt, ok := t.(*types.Ref); ok {
		return rt.Elem
	}
	return t
}

// subscriptPrefixType returns the static type of the paper's "p" in
// p[i], stripping the trailing [i] and the implicit {elems} step.
func subscriptPrefixType(p *ir.AP) types.Type {
	n := len(p.Sels)
	if n >= 2 && p.Sels[n-2].Kind == ir.SelDopeElems {
		if n >= 3 {
			return p.Sels[n-3].Type
		}
		return p.Root.Type
	}
	return prefixType(p)
}

// subscriptArrayType returns the array type subscripted by a path ending
// in [i] (its prefix ends with the implicit {elems} selector).
func subscriptArrayType(p *ir.AP) *types.Array {
	n := len(p.Sels)
	// Dope-expanded paths carry an explicit {elems} step before [i].
	if n >= 2 && p.Sels[n-2].Kind == ir.SelDopeElems {
		var t types.Type
		if n >= 3 {
			t = p.Sels[n-3].Type
		} else {
			t = p.Root.Type
		}
		if at, ok := t.(*types.Array); ok {
			return at
		}
	}
	// Source-level paths subscript the array-typed prefix directly.
	if n >= 1 {
		if at, ok := prefixType(p).(*types.Array); ok {
			return at
		}
	}
	return nil
}

// fieldTypeDecl implements Table 2 of the paper. The base relation
// (TypeDecl or SMTypeRefs) is a.typeCompat.
func (a *Analysis) fieldTypeDecl(p, q *ir.AP) bool {
	// Case 1 (identical access paths always alias) needs no explicit
	// test: syntactically equal paths share selector kinds, so they land
	// in a symmetric arm below, where the type test is reflexively true
	// (every type range contains itself). The property suite checks
	// reflexivity on every generated program.
	lp, lq := p.Last(), q.Last()
	// Case 7 for bare variables (paths with no selector): in the Table 2
	// recursion a bare variable stands for "the objects this variable may
	// reference", so the test is plain type compatibility. (Distinct
	// variable *slots* never alias; clients handle variable kills
	// separately — the oracle answers the points-to question.)
	if lp == nil || lq == nil {
		return a.typeCompat(p.Type(), q.Type())
	}
	r1, r2 := rank(lp.Kind), rank(lq.Kind)
	// Normalize order so we only handle one triangle of the case matrix.
	if r1 > r2 {
		p, q = q, p
		lp, lq = lq, lp
		r1, r2 = r2, r1
	}
	switch r1*3 + r2 {
	// Case 2: p.f vs q.g — includes the implicit dope "fields", whose
	// names ({len}, {elems}) never collide with source fields.
	//
	// Table 2 of the paper recurses with FieldTypeDecl on the prefixes
	// here, which answers whether they are the same *location*. What
	// case 2 actually needs is whether their *values* can be the same
	// pointer — two distinct fields can hold the same object, making
	// x.f.i and y.g.i the same location even though x.f and y.g are
	// not. Recursion on field names is therefore unsound for paths of
	// depth ≥ 2 (our dynamic soundness property test found the
	// counterexample); the sound test is type-range intersection on the
	// prefix value types, which keeps all of the paper's one-level
	// precision (sibling-subtype and selective-merge pruning).
	case 0: // field-like vs field-like
		if fieldName(lp) != fieldName(lq) {
			return false
		}
		return a.typeCompat(prefixType(p), prefixType(q))
	// Case 3: p.f vs q^ — memoized, AddressTaken is the expensive step.
	case 1: // field-like vs deref
		k := memoKey{p, q}
		if v, hit := a.memo.get(k); hit {
			return v
		}
		v := a.AddressTaken(p) && a.typeCompat(p.Type(), q.Type())
		a.memo.put(k, v)
		return v
	// Case 5: p.f vs q[i] — never aliases in Modula-3.
	case 2: // field-like vs index
		return false
	// Case 7 (two dereferences): TypeDecl on the paths.
	case 4: // deref vs deref
		return a.typeCompat(p.Type(), q.Type())
	// Case 4: p^ vs q[i] — memoized like case 3.
	case 5: // deref vs index
		k := memoKey{p, q}
		if v, hit := a.memo.get(k); hit {
			return v
		}
		v := a.AddressTaken(q) && a.typeCompat(p.Type(), q.Type())
		a.memo.put(k, v)
		return v
	// Case 6: p[i] vs q[j] — ignore the subscripts, compare the arrays.
	case 8: // index vs index
		return a.typeCompat(subscriptPrefixType(p), subscriptPrefixType(q))
	}
	// Case 7 fallback.
	return a.typeCompat(p.Type(), q.Type())
}

// rankTab orders selector kinds for the case normalization above:
// field-like < deref < index. Indexed by ir.SelKind.
var rankTab = [...]int8{
	ir.SelField:     0,
	ir.SelDeref:     1,
	ir.SelIndex:     2,
	ir.SelDopeLen:   0,
	ir.SelDopeElems: 0,
}

func rank(k ir.SelKind) int8 { return rankTab[k] }

func fieldName(s *ir.APSel) string {
	switch s.Kind {
	case ir.SelDopeLen:
		return "{len}"
	case ir.SelDopeElems:
		return "{elems}"
	default:
		return s.Field
	}
}

// ---------------------------------------------------------------------------
// Trivial oracles used as baselines and upper bounds

// AssumeAll is the trivial analysis: everything may alias. It is the
// paper's "no alias analysis" baseline.
type AssumeAll struct{}

// MayAlias implements Oracle.
func (AssumeAll) MayAlias(p, q *ir.AP) bool { return true }

// Name implements Oracle.
func (AssumeAll) Name() string { return "AssumeAll" }

// AssumeNone is the (unsound) perfect-analysis stand-in used for the
// upper-bound study: distinct syntactic paths never alias.
type AssumeNone struct{}

// MayAlias implements Oracle.
func (AssumeNone) MayAlias(p, q *ir.AP) bool { return p.Equal(q) }

// Name implements Oracle.
func (AssumeNone) Name() string { return "AssumeNone" }
