package alias

import (
	"runtime"
	"sync"
	"sync/atomic"

	"tbaa/internal/ir"
	"tbaa/internal/types"
)

// Ref is one static heap memory reference (a source-level load or store
// through a pointer).
type Ref struct {
	Proc  *ir.Proc
	Instr *ir.Instr
	AP    *ir.AP
}

// References collects every source-level heap memory reference in the
// program: loads and stores through pointers, excluding the implicit
// dope-vector accesses (which do not appear in the paper's AST-level
// representation) and excluding record-variable accesses (stack, not heap).
func References(prog *ir.Program) []Ref {
	var refs []Ref
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpLoad && in.Op != ir.OpStore {
					continue
				}
				if in.AP == nil || in.AP.IsDope() {
					continue
				}
				refs = append(refs, Ref{Proc: p, Instr: in, AP: in.AP})
			}
		}
	}
	return refs
}

// PairCounts are the Table 5 metrics.
type PairCounts struct {
	References int
	// Local counts intraprocedural may-alias pairs: pairs of distinct
	// references within the same procedure that may alias.
	Local int
	// Global counts may-alias pairs over all references in the program
	// (the paper's interprocedural "G Alias" column).
	Global int
}

// CountPairs computes the paper's static alias-pair metrics for an oracle.
// Each reference trivially aliases itself; self-pairs are excluded.
// Site-aware oracles (FSTypeRefs) are queried with each reference's own
// statement, so flow-sensitive narrowing shrinks the counts.
//
// An Analysis answers through its partition oracle: at flow-insensitive
// levels the quadratic sweep collapses to class-size arithmetic, and at
// the flow-sensitive levels the per-site refinement batches references
// per procedure and fans the work across a worker pool. Both produce
// exactly the counts the pairwise oracle sweep would.
func CountPairs(prog *ir.Program, o Oracle) PairCounts {
	if a, ok := o.(*Analysis); ok && !a.noPart {
		return a.countPairs(prog)
	}
	return countPairsGeneric(prog, o)
}

// countPairsGeneric is the reference implementation: one MayAliasAt
// query per pair of references.
func countPairsGeneric(prog *ir.Program, o Oracle) PairCounts {
	refs := References(prog)
	pc := PairCounts{References: len(refs)}
	for i := 0; i < len(refs); i++ {
		for j := i + 1; j < len(refs); j++ {
			if !MayAliasAt(o, refs[i].AP, Site{Proc: refs[i].Proc, Instr: refs[i].Instr},
				refs[j].AP, Site{Proc: refs[j].Proc, Instr: refs[j].Instr}) {
				continue
			}
			pc.Global++
			if refs[i].Proc == refs[j].Proc {
				pc.Local++
			}
		}
	}
	return pc
}

// countPairs is the partition-accelerated sweep.
func (a *Analysis) countPairs(prog *ir.Program) PairCounts {
	refs := References(prog)
	part := a.partition()
	cls := make([]int32, len(refs))
	for i := range refs {
		c := part.classOf(refs[i].AP)
		if c < 0 {
			// The program grew paths after this analysis was built (a
			// stale analysis over a mutated program); answer with the
			// reference sweep rather than a partial partition.
			return countPairsGeneric(prog, a)
		}
		cls[i] = c
	}
	if a.flow == nil {
		return countPairsArithmetic(refs, cls, part)
	}
	return a.countPairsFlow(refs, cls, part)
}

// countPairsArithmetic computes the flow-insensitive metrics without a
// single oracle query: references of one class are interchangeable, so
// the global count is a sum over compatible class pairs of the product
// of their populations, and the local count repeats that per procedure.
func countPairsArithmetic(refs []Ref, cls []int32, part *partition) PairCounts {
	pc := PairCounts{References: len(refs)}
	n := len(part.reps)
	cnt := make([]int, n)
	for _, c := range cls {
		cnt[c]++
	}
	for c1 := 0; c1 < n; c1++ {
		n1 := cnt[c1]
		if n1 == 0 {
			continue
		}
		if part.compat[c1].Has(c1) {
			pc.Global += n1 * (n1 - 1) / 2
		}
		for c2 := c1 + 1; c2 < n; c2++ {
			if cnt[c2] != 0 && part.compat[c1].Has(c2) {
				pc.Global += n1 * cnt[c2]
			}
		}
	}
	// Local pairs: the same arithmetic per procedure. References stay
	// grouped by procedure in program order, so each group is one
	// contiguous run of the refs slice.
	for lo := 0; lo < len(refs); {
		hi := lo + 1
		for hi < len(refs) && refs[hi].Proc == refs[lo].Proc {
			hi++
		}
		for i := lo; i < hi; i++ {
			row := part.compat[cls[i]]
			for j := i + 1; j < hi; j++ {
				if row.Has(int(cls[j])) {
					pc.Local++
				}
			}
		}
		lo = hi
	}
	return pc
}

// countPairsFlow computes the site-anchored metrics (FSTypeRefs and
// above): the partition answers the context-free half, and the
// flow-sensitive refinement is evaluated from per-reference narrowed
// sets. Two references with the same alias class and the same narrowed
// set are interchangeable in every pair predicate, so the global count
// collapses to arithmetic over (class, set) groups — the O(R²)
// all-references sweep this replaces dominated CountPairs on large
// modules. The local count stays a direct sweep per procedure, whose
// runs are small; partial sums of integers make the result identical
// for any worker count.
func (a *Analysis) countPairsFlow(refs []Ref, cls []int32, part *partition) PairCounts {
	pc := PairCounts{References: len(refs)}
	var procs []*ir.Proc
	seen := make(map[*ir.Proc]bool)
	for i := range refs {
		if p := refs[i].Proc; !seen[p] {
			seen[p] = true
			procs = append(procs, p)
		}
	}
	parallelDo(len(procs), func(i int) { a.flow.factsFor(procs[i]) })
	// sets[i] is the narrowed allocated-type set of refs[i]'s root at its
	// site, or nil when the refinement cannot speak for it — exactly the
	// inputs of flow.disjoint.
	sets := make([]types.Bitset, len(refs))
	for i := range refs {
		if rootOwned(refs[i].AP) {
			sets[i] = a.flow.valueSet(refs[i].AP.Root, Site{Proc: refs[i].Proc, Instr: refs[i].Instr})
		}
	}
	// Intern the distinct narrowed sets (hash, confirmed by Equal), then
	// group references by (class, set). An imperfect dedup only splits a
	// group in two — the arithmetic stays exact.
	setID := make([]int32, len(refs))
	var distinct []types.Bitset
	byHash := make(map[uint64][]int32)
	for i := range refs {
		s := sets[i]
		if s == nil {
			setID[i] = -1
			continue
		}
		h := hashBitset(s)
		id := int32(-1)
		for _, cand := range byHash[h] {
			if distinct[cand].Equal(s) {
				id = cand
				break
			}
		}
		if id < 0 {
			id = int32(len(distinct))
			distinct = append(distinct, s)
			byHash[h] = append(byHash[h], id)
		}
		setID[i] = id
	}
	type group struct {
		cls int32
		set types.Bitset // nil when the refinement cannot speak
		n   int
	}
	gIndex := make(map[[2]int32]int32)
	var groups []group
	for i := range refs {
		key := [2]int32{cls[i], setID[i]}
		gi, ok := gIndex[key]
		if !ok {
			gi = int32(len(groups))
			gIndex[key] = gi
			groups = append(groups, group{cls: cls[i], set: sets[i]})
		}
		groups[gi].n++
	}
	// The pair predicate on groups, mirroring the reference sweep: class
	// compatibility plus non-disjoint narrowed sets.
	pairOK := func(g1, g2 *group) bool {
		if !part.compat[g1.cls].Has(int(g2.cls)) {
			return false
		}
		return g1.set == nil || g2.set == nil || g1.set.Intersects(g2.set)
	}
	workers := 1
	if len(groups) >= 64 {
		workers = parallelWorkers(len(groups))
	}
	globals := make([]int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			global := 0
			for gi := w; gi < len(groups); gi += workers {
				g1 := &groups[gi]
				if pairOK(g1, g1) {
					global += g1.n * (g1.n - 1) / 2
				}
				for gj := gi + 1; gj < len(groups); gj++ {
					if g2 := &groups[gj]; pairOK(g1, g2) {
						global += g1.n * g2.n
					}
				}
			}
			globals[w] = global
		}(w)
	}
	wg.Wait()
	for _, g := range globals {
		pc.Global += g
	}
	// Local pairs: references stay grouped by procedure in program
	// order, so each procedure is one contiguous run; sweep the runs in
	// parallel.
	var runs [][2]int
	for lo := 0; lo < len(refs); {
		hi := lo + 1
		for hi < len(refs) && refs[hi].Proc == refs[lo].Proc {
			hi++
		}
		runs = append(runs, [2]int{lo, hi})
		lo = hi
	}
	locals := make([]int, len(runs))
	parallelDo(len(runs), func(k int) {
		lo, hi := runs[k][0], runs[k][1]
		local := 0
		for i := lo; i < hi; i++ {
			row := part.compat[cls[i]]
			si := sets[i]
			for j := i + 1; j < hi; j++ {
				if !row.Has(int(cls[j])) {
					continue
				}
				if si != nil && sets[j] != nil && !si.Intersects(sets[j]) {
					continue
				}
				local++
			}
		}
		locals[k] = local
	})
	for _, l := range locals {
		pc.Local += l
	}
	return pc
}

// hashBitset is an FNV-1a fold of the bitset's words, used only to
// bucket candidate duplicates for Equal confirmation.
func hashBitset(s types.Bitset) uint64 {
	h := uint64(1469598103934665603)
	for _, w := range s {
		h ^= w
		h *= 1099511628211
	}
	return h
}

// parallelWorkers caps a worker pool at GOMAXPROCS and the task count.
func parallelWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelDo runs fn(0..n-1) across a worker pool; with one worker (or
// one task) it degrades to a plain loop.
func parallelDo(n int, fn func(i int)) {
	workers := parallelWorkers(n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
