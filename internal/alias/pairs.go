package alias

import "tbaa/internal/ir"

// Ref is one static heap memory reference (a source-level load or store
// through a pointer).
type Ref struct {
	Proc  *ir.Proc
	Instr *ir.Instr
	AP    *ir.AP
}

// References collects every source-level heap memory reference in the
// program: loads and stores through pointers, excluding the implicit
// dope-vector accesses (which do not appear in the paper's AST-level
// representation) and excluding record-variable accesses (stack, not heap).
func References(prog *ir.Program) []Ref {
	var refs []Ref
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpLoad && in.Op != ir.OpStore {
					continue
				}
				if in.AP == nil || in.AP.IsDope() {
					continue
				}
				refs = append(refs, Ref{Proc: p, Instr: in, AP: in.AP})
			}
		}
	}
	return refs
}

// PairCounts are the Table 5 metrics.
type PairCounts struct {
	References int
	// Local counts intraprocedural may-alias pairs: pairs of distinct
	// references within the same procedure that may alias.
	Local int
	// Global counts may-alias pairs over all references in the program
	// (the paper's interprocedural "G Alias" column).
	Global int
}

// CountPairs computes the paper's static alias-pair metrics for an oracle.
// Each reference trivially aliases itself; self-pairs are excluded.
// Site-aware oracles (FSTypeRefs) are queried with each reference's own
// statement, so flow-sensitive narrowing shrinks the counts.
func CountPairs(prog *ir.Program, o Oracle) PairCounts {
	refs := References(prog)
	pc := PairCounts{References: len(refs)}
	for i := 0; i < len(refs); i++ {
		for j := i + 1; j < len(refs); j++ {
			if !MayAliasAt(o, refs[i].AP, Site{Proc: refs[i].Proc, Instr: refs[i].Instr},
				refs[j].AP, Site{Proc: refs[j].Proc, Instr: refs[j].Instr}) {
				continue
			}
			pc.Global++
			if refs[i].Proc == refs[j].Proc {
				pc.Local++
			}
		}
	}
	return pc
}
