package alias_test

import (
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/bench"
	"tbaa/internal/driver"
	"tbaa/internal/ir"
	"tbaa/internal/randprog"
)

// benchProgram compiles a fixed randprog module large enough to exercise
// the subtype/TypeRefs machinery — a universe in the size range of the
// paper's larger benchmarks (m3cg, m2tom3) — and returns its heap
// references.
func benchProgram(b *testing.B) (*ir.Program, []alias.Ref) {
	b.Helper()
	cfg := randprog.Config{Types: 48, Globals: 16, Procs: 8, StmtsPer: 10, MaxDepth: 2}
	src := randprog.Generate(77, cfg)
	prog, _, err := driver.Compile("bench.m3", src)
	if err != nil {
		b.Fatal(err)
	}
	refs := alias.References(prog)
	if len(refs) < 2 {
		b.Fatal("benchmark program has too few heap references")
	}
	return prog, refs
}

// benchMayAlias sweeps MayAlias over a fixed cycle of reference pairs,
// measuring the steady-state query cost — the regime RLE and the pair
// counters operate in. The pair schedule is precomputed so the loop
// measures only the oracle.
func benchMayAlias(b *testing.B, opts alias.Options) {
	prog, refs := benchProgram(b)
	a := alias.New(prog, opts)
	n := len(refs)
	type pair struct{ p, q *ir.AP }
	pairs := make([]pair, 0, 4096)
	for i := 0; len(pairs) < cap(pairs); i++ {
		pairs = append(pairs, pair{refs[i%n].AP, refs[(i*7+1)%n].AP})
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i += len(pairs) {
		for _, pr := range pairs {
			if a.MayAlias(pr.p, pr.q) {
				hits++
			}
		}
	}
	_ = hits
}

func BenchmarkMayAliasTypeDecl(b *testing.B) {
	benchMayAlias(b, alias.Options{Level: alias.LevelTypeDecl})
}

func BenchmarkMayAliasFieldTypeDecl(b *testing.B) {
	benchMayAlias(b, alias.Options{Level: alias.LevelFieldTypeDecl})
}

func BenchmarkMayAliasSMFieldTypeRefs(b *testing.B) {
	benchMayAlias(b, alias.Options{Level: alias.LevelSMFieldTypeRefs})
}

func BenchmarkMayAliasSMFieldTypeRefsOpen(b *testing.B) {
	benchMayAlias(b, alias.Options{Level: alias.LevelSMFieldTypeRefs, OpenWorld: true})
}

// BenchmarkMayAliasCountPairs measures a full cold CountPairs sweep —
// a fresh analysis each iteration, so builder cost and memo-cold
// queries are both in the loop. This is the Table 5 inner loop.
func BenchmarkMayAliasCountPairs(b *testing.B) {
	prog, _ := benchProgram(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
		alias.CountPairs(prog, a)
	}
}

// BenchmarkBuildSMTypeRefs measures TypeRefsTable construction alone.
func BenchmarkBuildSMTypeRefs(b *testing.B) {
	prog, _ := benchProgram(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
	}
}

// --- Tracked perf benchmarks (stock suite) --------------------------------
//
// BenchmarkMayAlias and BenchmarkCountPairs run on the largest stock
// benchmark (m3cg) and are the two benchmarks the bench-perf CI job
// tracks against testdata/bench_perf_baseline.txt. Keep their shapes
// stable: the regression gate compares ns/op by exact benchmark name.

// stockProgram compiles the named stock-suite benchmark.
func stockProgram(b *testing.B, name string) (*ir.Program, []alias.Ref) {
	b.Helper()
	bm, ok := bench.ByName(name)
	if !ok {
		b.Fatalf("no stock benchmark %q", name)
	}
	prog, _, err := driver.Compile(bm.Name, bm.Source)
	if err != nil {
		b.Fatal(err)
	}
	refs := alias.References(prog)
	if len(refs) < 2 {
		b.Fatal("stock program has too few heap references")
	}
	return prog, refs
}

// perfLevels are the level sweeps the tracked benchmarks cover.
var perfLevels = []alias.Level{
	alias.LevelTypeDecl,
	alias.LevelFieldTypeDecl,
	alias.LevelSMFieldTypeRefs,
	alias.LevelFSTypeRefs,
	alias.LevelIPTypeRefs,
}

// BenchmarkMayAlias measures the steady-state context-free query on
// m3cg, per level, over a fixed cycle of reference pairs. The pair
// schedule is precomputed so the loop measures only the oracle.
func BenchmarkMayAlias(b *testing.B) {
	prog, refs := stockProgram(b, "m3cg")
	for _, lvl := range perfLevels {
		b.Run(lvl.String(), func(b *testing.B) {
			a := alias.New(prog, alias.Options{Level: lvl})
			n := len(refs)
			type pair struct{ p, q *ir.AP }
			pairs := make([]pair, 0, 4096)
			for i := 0; len(pairs) < cap(pairs); i++ {
				pairs = append(pairs, pair{refs[i%n].AP, refs[(i*7+1)%n].AP})
			}
			a.MayAlias(pairs[0].p, pairs[0].q) // warm any lazily built tables
			b.ReportAllocs()
			b.ResetTimer()
			hits := 0
			for i := 0; i < b.N; i++ {
				pr := pairs[i%len(pairs)]
				if a.MayAlias(pr.p, pr.q) {
					hits++
				}
			}
			_ = hits
		})
	}
}

// BenchmarkRebuildOneProc measures the incremental rebuild after a
// one-procedure mutation on m3cg, per level — the alias.Update delta
// path behind PassEnv.Invalidate and the server's edit mode. The
// analysis is fully warmed (partition materialized, flow facts solved
// for every procedure) so each iteration pays the real delta: re-intern
// the dirty body's paths, extend the partition, carry over every
// untouched flow entry. Falling back to a full build fails the run —
// the gate exists precisely to catch delta invalidation regressing
// toward whole-module cost.
func BenchmarkRebuildOneProc(b *testing.B) {
	prog, refs := stockProgram(b, "m3cg")
	var dirty *ir.Proc
	for _, p := range prog.Procs {
		if p.Name == "Annotate" {
			dirty = p
		}
	}
	if dirty == nil {
		b.Fatal("m3cg has no procedure Annotate")
	}
	for _, lvl := range perfLevels {
		b.Run(lvl.String(), func(b *testing.B) {
			a := alias.New(prog, alias.Options{Level: lvl})
			a.MayAlias(refs[0].AP, refs[1].AP) // materialize the partition
			alias.CountPairs(prog, a)          // solve every flow entry
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prog.MarkMutated(dirty)
				if alias.Update(a, []*ir.Proc{dirty}) == nil {
					b.Fatal("delta rebuild fell back to a full build")
				}
			}
		})
	}
}

// BenchmarkCountPairs measures the Table 5 pair sweep on m3cg, per
// level, against a prebuilt analysis — the steady-state regime of the
// harness, where one oracle serves many CountPairs calls.
func BenchmarkCountPairs(b *testing.B) {
	prog, _ := stockProgram(b, "m3cg")
	for _, lvl := range perfLevels {
		b.Run(lvl.String(), func(b *testing.B) {
			a := alias.New(prog, alias.Options{Level: lvl})
			alias.CountPairs(prog, a) // warm flow facts and lazy tables
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				alias.CountPairs(prog, a)
			}
		})
	}
}
