package alias_test

import (
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/driver"
	"tbaa/internal/ir"
	"tbaa/internal/randprog"
)

// benchProgram compiles a fixed randprog module large enough to exercise
// the subtype/TypeRefs machinery — a universe in the size range of the
// paper's larger benchmarks (m3cg, m2tom3) — and returns its heap
// references.
func benchProgram(b *testing.B) (*ir.Program, []alias.Ref) {
	b.Helper()
	cfg := randprog.Config{Types: 48, Globals: 16, Procs: 8, StmtsPer: 10, MaxDepth: 2}
	src := randprog.Generate(77, cfg)
	prog, _, err := driver.Compile("bench.m3", src)
	if err != nil {
		b.Fatal(err)
	}
	refs := alias.References(prog)
	if len(refs) < 2 {
		b.Fatal("benchmark program has too few heap references")
	}
	return prog, refs
}

// benchMayAlias sweeps MayAlias over a fixed cycle of reference pairs,
// measuring the steady-state query cost — the regime RLE and the pair
// counters operate in. The pair schedule is precomputed so the loop
// measures only the oracle.
func benchMayAlias(b *testing.B, opts alias.Options) {
	prog, refs := benchProgram(b)
	a := alias.New(prog, opts)
	n := len(refs)
	type pair struct{ p, q *ir.AP }
	pairs := make([]pair, 0, 4096)
	for i := 0; len(pairs) < cap(pairs); i++ {
		pairs = append(pairs, pair{refs[i%n].AP, refs[(i*7+1)%n].AP})
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i += len(pairs) {
		for _, pr := range pairs {
			if a.MayAlias(pr.p, pr.q) {
				hits++
			}
		}
	}
	_ = hits
}

func BenchmarkMayAliasTypeDecl(b *testing.B) {
	benchMayAlias(b, alias.Options{Level: alias.LevelTypeDecl})
}

func BenchmarkMayAliasFieldTypeDecl(b *testing.B) {
	benchMayAlias(b, alias.Options{Level: alias.LevelFieldTypeDecl})
}

func BenchmarkMayAliasSMFieldTypeRefs(b *testing.B) {
	benchMayAlias(b, alias.Options{Level: alias.LevelSMFieldTypeRefs})
}

func BenchmarkMayAliasSMFieldTypeRefsOpen(b *testing.B) {
	benchMayAlias(b, alias.Options{Level: alias.LevelSMFieldTypeRefs, OpenWorld: true})
}

// BenchmarkMayAliasCountPairs measures a full cold CountPairs sweep —
// a fresh analysis each iteration, so builder cost and memo-cold
// queries are both in the loop. This is the Table 5 inner loop.
func BenchmarkMayAliasCountPairs(b *testing.B) {
	prog, _ := benchProgram(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
		alias.CountPairs(prog, a)
	}
}

// BenchmarkBuildSMTypeRefs measures TypeRefsTable construction alone.
func BenchmarkBuildSMTypeRefs(b *testing.B) {
	prog, _ := benchProgram(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
	}
}
