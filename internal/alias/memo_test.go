package alias

import (
	"fmt"
	"sync"
	"testing"

	"tbaa/internal/ir"
	"tbaa/internal/types"
)

// memoTestKeys fabricates n distinct memo keys. The APs carry just
// enough structure to be distinct pointers; the cache never inspects
// them.
func memoTestKeys(n int) []memoKey {
	root := &ir.Var{Name: "m"}
	keys := make([]memoKey, n)
	for i := range keys {
		t := types.Type(nil)
		_ = t
		p := &ir.AP{Root: root, Sels: []ir.APSel{{Kind: ir.SelField, Field: fmt.Sprintf("f%d", i)}}}
		q := &ir.AP{Root: root}
		keys[i] = memoKey{p, q}
	}
	return keys
}

// TestMemoHotVerdictSurvivesEviction pins the two-generation eviction
// scheme: a verdict that keeps being queried stays cached across
// capacity rotations, where the old wholesale clear() dropped it along
// with everything else.
func TestMemoHotVerdictSurvivesEviction(t *testing.T) {
	c := newMemoCache()
	hot := memoTestKeys(1)[0]
	c.put(hot, true)

	// Insert more entries than two full generations hold, touching the
	// hot key at least once per shard-rotation interval.
	cold := memoTestKeys(2*memoLimit + memoLimit/2)
	for i, k := range cold {
		c.put(k, false)
		if i%(memoShardLimit/2) == 0 {
			if v, ok := c.get(hot); !ok || !v {
				t.Fatalf("hot verdict lost after %d cold inserts", i+1)
			}
		}
	}
	if v, ok := c.get(hot); !ok || !v {
		t.Fatal("hot verdict evicted despite being queried every cycle")
	}

	// An entry nobody touched for two generations must be gone — the
	// cache is still bounded.
	evicted := 0
	for _, k := range cold[:memoShardLimit] {
		if _, ok := c.get(k); !ok {
			evicted++
		}
	}
	if evicted == 0 {
		t.Fatal("no cold entries were evicted; the cache is unbounded")
	}
}

// TestMemoBounded checks the per-shard two-generation capacity.
func TestMemoBounded(t *testing.T) {
	c := newMemoCache()
	for _, k := range memoTestKeys(2*memoLimit + memoLimit/2) {
		c.put(k, true)
	}
	for i := range c.shards {
		s := &c.shards[i]
		if n := len(s.cur) + len(s.prev); n > 2*memoShardLimit {
			t.Fatalf("shard %d holds %d entries, want <= %d", i, n, 2*memoShardLimit)
		}
	}
}

// TestMemoConcurrent hammers one cache from many goroutines under the
// race detector.
func TestMemoConcurrent(t *testing.T) {
	c := newMemoCache()
	keys := memoTestKeys(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				k := keys[(i*7+g)%len(keys)]
				if v, ok := c.get(k); ok && !v {
					t.Error("verdict flipped")
					return
				}
				c.put(k, true)
			}
		}(g)
	}
	wg.Wait()
}
