package alias_test

import (
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/driver"
	"tbaa/internal/ir"
)

// compile lowers a source module and returns the IR program.
func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, _, err := driver.Compile("test.m3", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// apOf finds the AP of the first load/store whose string form matches.
func apOf(t *testing.T, prog *ir.Program, s string) *ir.AP {
	t.Helper()
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.AP != nil && in.AP.String() == s {
					return in.AP
				}
			}
		}
	}
	t.Fatalf("no access path %q in program", s)
	return nil
}

const fig1 = `
MODULE Fig1;
TYPE
  T = OBJECT f, g: T; END;
  S1 = T OBJECT a: INTEGER; END;
  S2 = T OBJECT b: INTEGER; END;
  S3 = T OBJECT c: INTEGER; END;
VAR
  t: T;
  s: S1;
  u: S2;
  sink: T;
BEGIN
  t := NEW(T); s := NEW(S1); u := NEW(S2);
  sink := t.f;
  sink := s.f;
  sink := u.f;
  sink := t.g;
END Fig1.
`

func analyses(prog *ir.Program) (td, ftd, sm *alias.Analysis) {
	td = alias.New(prog, alias.Options{Level: alias.LevelTypeDecl})
	ftd = alias.New(prog, alias.Options{Level: alias.LevelFieldTypeDecl})
	sm = alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
	return
}

// varAP builds a bare-variable access path for a global.
func varAP(t *testing.T, prog *ir.Program, name string) *ir.AP {
	t.Helper()
	for _, g := range prog.Globals {
		if g.Name == name {
			return &ir.AP{Root: g}
		}
	}
	t.Fatalf("no global %q", name)
	return nil
}

func TestTypeDeclFig1(t *testing.T) {
	prog := compile(t, fig1)
	td, _, _ := analyses(prog)
	tv := varAP(t, prog, "t")
	sv := varAP(t, prog, "s")
	uv := varAP(t, prog, "u")
	// Section 2.2: t~s and t~u may reference the same location; s~u not.
	if !td.MayAlias(tv, sv) {
		t.Error("TypeDecl: t ~ s expected")
	}
	if !td.MayAlias(tv, uv) {
		t.Error("TypeDecl: t ~ u expected")
	}
	if td.MayAlias(sv, uv) {
		t.Error("TypeDecl: s ~ u must not alias (sibling subtypes)")
	}
	// TypeDecl ignores fields: t.f and t.g have compatible types (both T),
	// and even s.f vs u.f alias because both fields have type T.
	tf := apOf(t, prog, "t.f")
	tg := apOf(t, prog, "t.g")
	sf := apOf(t, prog, "s.f")
	uf := apOf(t, prog, "u.f")
	if !td.MayAlias(tf, tg) {
		t.Error("TypeDecl: t.f ~ t.g expected (same types)")
	}
	if !td.MayAlias(sf, uf) {
		t.Error("TypeDecl: s.f ~ u.f expected (both have type T)")
	}
	// FieldTypeDecl refines this through the prefix recursion: the f
	// fields of incompatible objects cannot be the same location.
	_, ftd, _ := analyses(prog)
	if ftd.MayAlias(sf, uf) {
		t.Error("FieldTypeDecl: s.f vs u.f must not alias (incompatible prefixes)")
	}
}

func TestFieldTypeDeclDistinguishesFields(t *testing.T) {
	prog := compile(t, fig1)
	_, ftd, _ := analyses(prog)
	tf := apOf(t, prog, "t.f")
	tg := apOf(t, prog, "t.g")
	sf := apOf(t, prog, "s.f")
	// Table 2 case 2: different field names never alias.
	if ftd.MayAlias(tf, tg) {
		t.Error("FieldTypeDecl: t.f vs t.g must not alias (distinct fields)")
	}
	// Same field, compatible prefixes: alias.
	if !ftd.MayAlias(tf, sf) {
		t.Error("FieldTypeDecl: t.f ~ s.f expected")
	}
	// Identical AP: case 1.
	if !ftd.MayAlias(tf, tf) {
		t.Error("FieldTypeDecl: identical APs must alias")
	}
}

// Figure 3 of the paper: selective merging.
const fig3 = `
MODULE Fig3;
TYPE
  T = OBJECT f, g: T; END;
  S1 = T OBJECT a: INTEGER; END;
  S2 = T OBJECT b: INTEGER; END;
  S3 = T OBJECT c: INTEGER; END;
VAR
  s1: S1;
  s2: S2;
  s3: S3;
  t: T;
  sink: T;
BEGIN
  s1 := NEW(S1);
  s2 := NEW(S2);
  s3 := NEW(S3);
  t := s1; (* Statement 1 *)
  t := s2; (* Statement 2 *)
  sink := t.f;
  sink := s1.f;
  sink := s2.f;
  sink := s3.f;
END Fig3.
`

func TestSMTypeRefsFig3(t *testing.T) {
	prog := compile(t, fig3)
	sm := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
	u := prog.Universe
	find := func(name string) int {
		for _, ot := range u.ObjectTypes() {
			if ot.Name == name {
				return ot.ID()
			}
		}
		t.Fatalf("type %s not found", name)
		return -1
	}
	tID, s1ID, s2ID, s3ID := find("T"), find("S1"), find("S2"), find("S3")
	refsT := sm.TypeRefs(u.ByID(tID))
	// Table 3 of the paper: TypeRefsTable(T) = {T, S1, S2}; S3 excluded.
	if !refsT.Has(tID) || !refsT.Has(s1ID) || !refsT.Has(s2ID) {
		t.Errorf("TypeRefsTable(T) = %v, want to include T, S1, S2", refsT.IDs())
	}
	if refsT.Has(s3ID) {
		t.Errorf("TypeRefsTable(T) includes S3; selective merging failed")
	}
	// Asymmetry (Step 3): S1 may only reference S1.
	refsS1 := sm.TypeRefs(u.ByID(s1ID))
	if refsS1.Count() != 1 || !refsS1.Has(s1ID) {
		t.Errorf("TypeRefsTable(S1) = %v, want {S1}", refsS1.IDs())
	}
	// Consequences for aliasing.
	tf := apOf(t, prog, "t.f")
	s3f := apOf(t, prog, "s3.f")
	s1f := apOf(t, prog, "s1.f")
	if sm.MayAlias(tf, s3f) {
		t.Error("SMFieldTypeRefs: t.f vs s3.f must not alias (no merge with S3)")
	}
	if !sm.MayAlias(tf, s1f) {
		t.Error("SMFieldTypeRefs: t.f ~ s1.f expected (merged)")
	}
}

func TestSMTypeRefsNoAssignments(t *testing.T) {
	// Section 2.4's motivating example: declared subtyping alone does not
	// make t and s alias when the program never assigns between them.
	prog := compile(t, `
MODULE M;
TYPE
  T = OBJECT f: T; END;
  S1 = T OBJECT a: INTEGER; END;
VAR
  t: T;
  s: S1;
  sink: T;
BEGIN
  t := NEW(T);
  s := NEW(S1);
  sink := t.f;
  sink := s.f;
END M.
`)
	td, _, sm := analyses(prog)
	tf := apOf(t, prog, "t.f")
	sf := apOf(t, prog, "s.f")
	if !td.MayAlias(tf, sf) {
		t.Error("TypeDecl must merge declared subtypes")
	}
	if sm.MayAlias(tf, sf) {
		t.Error("SMFieldTypeRefs: no assignment between T and S1, must not alias")
	}
}

func TestDerefAndAddressTaken(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE
  T = OBJECT f: INTEGER; g: INTEGER; END;
PROCEDURE P(VAR x: INTEGER): INTEGER =
BEGIN
  RETURN x;
END P;
VAR t: T; r: INTEGER;
BEGIN
  t := NEW(T);
  r := P(t.f);
  r := t.g;
END M.
`)
	_, ftd, _ := analyses(prog)
	// x^ inside P vs t.f: the program passes t.f by reference, so
	// AddressTaken(t.f) holds and the types match (INTEGER): may alias.
	xDeref := apOf(t, prog, "x^")
	tf := apOf(t, prog, "t.f")
	tg := apOf(t, prog, "t.g")
	if !ftd.MayAlias(xDeref, tf) {
		t.Error("x^ ~ t.f expected (address taken via VAR parameter)")
	}
	// t.g's address is never taken: x^ cannot alias it.
	if ftd.MayAlias(xDeref, tg) {
		t.Error("x^ vs t.g must not alias (address never taken)")
	}
}

func TestSubscriptCases(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE
  A = ARRAY OF INTEGER;
  B = ARRAY OF CHAR;
  T = OBJECT f: INTEGER; END;
PROCEDURE Q(VAR e: INTEGER) = BEGIN e := 1; END Q;
VAR a: A; b: B; t: T; i, j: INTEGER; c: CHAR;
BEGIN
  a := NEW(A, 4); b := NEW(B, 4); t := NEW(T);
  i := 0; j := 1;
  a[i] := 5;
  i := a[j];
  c := b[i];
  t.f := 1;
  Q(a[0]);
END M.
`)
	_, ftd, _ := analyses(prog)
	ai := apOf(t, prog, "a[i]")
	aj := apOf(t, prog, "a[j]")
	bi := apOf(t, prog, "b[i]")
	tf := apOf(t, prog, "t.f")
	// Case 6: same array, any subscripts: alias.
	if !ftd.MayAlias(ai, aj) {
		t.Error("a[i] ~ a[j] expected (case 6 ignores subscripts)")
	}
	// Different element types: arrays incompatible.
	if ftd.MayAlias(ai, bi) {
		t.Error("a[i] vs b[i] must not alias (INTEGER vs CHAR arrays)")
	}
	// Case 5: qualified vs subscripted never alias.
	if ftd.MayAlias(tf, ai) {
		t.Error("t.f vs a[i] must not alias (case 5)")
	}
	// Case 4: e^ vs a[i] with AddressTaken(a[0]) via Q(a[0]).
	eDeref := apOf(t, prog, "e^")
	if !ftd.MayAlias(eDeref, ai) {
		t.Error("e^ ~ a[i] expected (element address taken)")
	}
}

func TestSubscriptNoAddressTaken(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE A = ARRAY OF INTEGER;
PROCEDURE Q(VAR e: INTEGER) = BEGIN e := 1; END Q;
VAR a: A; x: INTEGER;
BEGIN
  a := NEW(A, 4);
  a[0] := 2;
  x := 5;
  Q(x);
END M.
`)
	_, ftd, _ := analyses(prog)
	eDeref := apOf(t, prog, "e^")
	a0 := apOf(t, prog, "a[0]")
	if ftd.MayAlias(eDeref, a0) {
		t.Error("e^ vs a[0] must not alias: no element address taken")
	}
}

func TestRefTypes(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE
  PI = REF INTEGER;
  PC = REF CHAR;
VAR p, q: PI; r: PC; x: INTEGER; c: CHAR;
BEGIN
  p := NEW(PI); q := NEW(PI); r := NEW(PC);
  p^ := 1;
  x := q^;
  c := r^;
END M.
`)
	_, ftd, _ := analyses(prog)
	pd := apOf(t, prog, "p^")
	qd := apOf(t, prog, "q^")
	rd := apOf(t, prog, "r^")
	// Two REF INTEGER derefs: may alias (case 7 → TypeDecl).
	if !ftd.MayAlias(pd, qd) {
		t.Error("p^ ~ q^ expected (same REF INTEGER)")
	}
	// REF INTEGER vs REF CHAR: targets have different types.
	if ftd.MayAlias(pd, rd) {
		t.Error("p^ vs r^ must not alias (different target types)")
	}
}

func TestDopeVectorNeverAliasesSource(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE A = ARRAY OF INTEGER;
VAR a: A; x: INTEGER;
BEGIN
  a := NEW(A, 3);
  a[0] := 1;
  x := NUMBER(a);
END M.
`)
	_, ftd, _ := analyses(prog)
	a0 := apOf(t, prog, "a[0]")
	alen := apOf(t, prog, "a{len}")
	if ftd.MayAlias(a0, alen) {
		t.Error("a[0] vs dope length must not alias")
	}
	if !ftd.MayAlias(alen, alen) {
		t.Error("identical dope paths alias")
	}
}

// TestPrecisionOrdering checks the paper's containment property over all
// reference pairs of a program exercising every AP form: may-alias sets
// satisfy SMFieldTypeRefs ⊆ FieldTypeDecl ⊆ TypeDecl.
func TestPrecisionOrdering(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE
  T = OBJECT f, g: T; END;
  S1 = T OBJECT a: INTEGER; END;
  S2 = T OBJECT b: INTEGER; END;
  A = ARRAY OF T;
  PI = REF INTEGER;
PROCEDURE P(VAR x: T; VAR y: INTEGER): T =
BEGIN
  y := 3;
  RETURN x;
END P;
VAR t: T; s: S1; u: S2; arr: A; p: PI; n: INTEGER; sink: T;
BEGIN
  t := NEW(T); s := NEW(S1); u := NEW(S2);
  arr := NEW(A, 3); p := NEW(PI);
  t := s;
  arr[0] := t;
  sink := t.f; sink := t.g; sink := s.f; sink := u.g;
  sink := arr[1];
  p^ := n;
  sink := P(t, n);
END M.
`)
	td, ftd, sm := analyses(prog)
	refs := alias.References(prog)
	if len(refs) < 8 {
		t.Fatalf("expected several references, got %d", len(refs))
	}
	for i := 0; i < len(refs); i++ {
		for j := i; j < len(refs); j++ {
			p, q := refs[i].AP, refs[j].AP
			smA := sm.MayAlias(p, q)
			ftdA := ftd.MayAlias(p, q)
			tdA := td.MayAlias(p, q)
			if smA && !ftdA {
				t.Errorf("%s ~ %s: SMFieldTypeRefs aliases but FieldTypeDecl does not", p, q)
			}
			if ftdA && !tdA {
				t.Errorf("%s ~ %s: FieldTypeDecl aliases but TypeDecl does not", p, q)
			}
			// Symmetry of each analysis.
			if sm.MayAlias(q, p) != smA || ftd.MayAlias(q, p) != ftdA || td.MayAlias(q, p) != tdA {
				t.Errorf("%s ~ %s: asymmetric answer", p, q)
			}
		}
	}
}

func TestPairCountsOrdering(t *testing.T) {
	prog := compile(t, fig3)
	td, ftd, sm := analyses(prog)
	cTD := alias.CountPairs(prog, td)
	cFTD := alias.CountPairs(prog, ftd)
	cSM := alias.CountPairs(prog, sm)
	if cTD.References != cFTD.References || cFTD.References != cSM.References {
		t.Fatal("reference counts must agree across analyses")
	}
	if cFTD.Local > cTD.Local || cFTD.Global > cTD.Global {
		t.Errorf("FieldTypeDecl pairs exceed TypeDecl: %+v vs %+v", cFTD, cTD)
	}
	if cSM.Local > cFTD.Local || cSM.Global > cFTD.Global {
		t.Errorf("SMFieldTypeRefs pairs exceed FieldTypeDecl: %+v vs %+v", cSM, cFTD)
	}
}

func TestOpenWorldWidening(t *testing.T) {
	prog := compile(t, fig3)
	closed := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
	open := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs, OpenWorld: true})
	tf := apOf(t, prog, "t.f")
	s3f := apOf(t, prog, "s3.f")
	// Closed world: no merge between T and S3.
	if closed.MayAlias(tf, s3f) {
		t.Error("closed world: t.f vs s3.f must not alias")
	}
	// Open world: unavailable code may assign S3 refs to T refs (both are
	// unbranded), so the analysis must be conservative.
	if !open.MayAlias(tf, s3f) {
		t.Error("open world: t.f ~ s3.f expected (unbranded types merge)")
	}
	// Open-world results must contain closed-world results.
	refs := alias.References(prog)
	for i := range refs {
		for j := range refs {
			if closed.MayAlias(refs[i].AP, refs[j].AP) && !open.MayAlias(refs[i].AP, refs[j].AP) {
				t.Errorf("open world dropped %s ~ %s", refs[i].AP, refs[j].AP)
			}
		}
	}
}

func TestOpenWorldBrandedImmune(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE
  T = BRANDED "T" OBJECT f: INTEGER; END;
  S = BRANDED "S" T OBJECT a: INTEGER; END;
VAR t: T; s: S; x: INTEGER;
BEGIN
  t := NEW(T); s := NEW(S);
  x := t.f;
  x := s.a;
END M.
`)
	open := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs, OpenWorld: true})
	u := prog.Universe
	var tID, sID int
	for _, o := range u.ObjectTypes() {
		switch o.Name {
		case "T":
			tID = o.ID()
		case "S":
			sID = o.ID()
		}
	}
	refs := open.TypeRefs(u.ByID(tID))
	if refs.Has(sID) {
		t.Error("branded types must not merge under the open-world assumption")
	}
}

func TestPerTypeGroupsAtLeastAsPrecise(t *testing.T) {
	prog := compile(t, fig3)
	uf := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
	pt := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs, PerTypeGroups: true})
	refs := alias.References(prog)
	for i := range refs {
		for j := range refs {
			if pt.MayAlias(refs[i].AP, refs[j].AP) && !uf.MayAlias(refs[i].AP, refs[j].AP) {
				t.Errorf("per-type groups less precise on %s ~ %s", refs[i].AP, refs[j].AP)
			}
		}
	}
}

func TestTrivialOracles(t *testing.T) {
	prog := compile(t, fig1)
	tf := apOf(t, prog, "t.f")
	sf := apOf(t, prog, "s.f")
	all := alias.AssumeAll{}
	none := alias.AssumeNone{}
	if !all.MayAlias(tf, sf) {
		t.Error("AssumeAll must alias everything")
	}
	if none.MayAlias(tf, sf) {
		t.Error("AssumeNone must only alias identical paths")
	}
	if !none.MayAlias(tf, tf) {
		t.Error("AssumeNone must alias identical paths")
	}
}

func TestWithAliasAddressTaken(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE T = OBJECT f: INTEGER; g: INTEGER; END;
VAR t: T; x: INTEGER;
BEGIN
  t := NEW(T);
  WITH w = t.f DO
    w := 5;
    x := t.g;
  END;
END M.
`)
	_, ftd, _ := analyses(prog)
	wDeref := apOf(t, prog, "w^")
	tg := apOf(t, prog, "t.g")
	if ftd.MayAlias(wDeref, tg) {
		t.Error("w^ vs t.g must not alias (only t.f's address taken)")
	}
}
