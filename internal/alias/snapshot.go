package alias

import (
	"fmt"
	"sync/atomic"

	"tbaa/internal/ir"
	"tbaa/internal/types"
)

// This file implements the serializable form of an Analysis' context-free
// query structures — the TypeRefsTable and the partition oracle — for the
// persistent artifact cache (internal/artifact). A Snapshot references
// paths only by their intern identity, never by pointer, so it survives a
// process boundary: re-interning a decoded program with the same pointer
// topology reproduces the identities (ir.InternAPs numbers paths in
// deterministic program order), and NewFromSnapshot resolves them against
// the fresh index.
//
// NewFromSnapshot validates structure (lengths, identity resolution,
// class bounds), not content: a corrupted-but-well-formed snapshot would
// answer wrong verdicts, which is why the artifact layer guards the
// payload with a checksum and the intern table with a digest before any
// snapshot reaches this constructor. Structural validation here only has
// to make a malformed snapshot impossible to crash on.

// Snapshot is the persistable form of one Analysis' context-free state.
// All slices are shared with the Analysis that produced it (or, after
// decoding, with the Analysis built from it); treat a Snapshot as
// immutable.
type Snapshot struct {
	// TypeRefs is the TypeRefsTable indexed by type ID (nil rows mark
	// non-reference types); nil below LevelSMFieldTypeRefs.
	TypeRefs []types.Bitset
	// Cls maps intern IDs to alias-class IDs; Cls[0] is unused and holes
	// hold -1 (see partition.cls).
	Cls []int32
	// Compat is the symmetric class × class may-alias bitmatrix.
	Compat []types.Bitset
	// RepIIDs holds the intern identity of each class representative.
	RepIIDs []int32
}

// Snapshot captures the analysis' context-free query structures, forcing
// the partition build if it has not happened yet. It returns nil when
// this Analysis maintains no partition (the differential-test
// configuration) or a representative cannot be named by intern identity
// — the caller then simply skips persisting.
func (a *Analysis) Snapshot() *Snapshot {
	if a.noPart {
		return nil
	}
	part := a.partition()
	snap := &Snapshot{
		TypeRefs: a.typeRefs,
		Cls:      part.cls,
		Compat:   part.compat,
		RepIIDs:  make([]int32, len(part.reps)),
	}
	for i, rep := range part.reps {
		iid := atomic.LoadInt32(&rep.IID)
		if part.idx.ByID(iid) != rep {
			return nil
		}
		snap.RepIIDs[i] = iid
	}
	return snap
}

// NewFromSnapshot builds an Analysis over prog from a decoded snapshot,
// skipping the TypeRefsTable construction and the partition build — the
// warm-start path of the artifact cache. idx must be the intern index of
// prog (ir.InternAPs over the decoded program); the snapshot's class
// table and representatives are resolved against it. The construction
// mirrors New in everything else (AddressTaken indexes, memo, flow
// layer), so the returned Analysis answers exactly as a from-scratch
// build over the same program would — the artifact layer's differential
// gate pins that equivalence.
func NewFromSnapshot(prog *ir.Program, opts Options, idx *ir.APIndex, snap *Snapshot) (*Analysis, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.Normalize()
	if snap == nil || idx == nil {
		return nil, fmt.Errorf("alias: nil snapshot or index")
	}
	if len(snap.Cls) != idx.Len()+1 {
		return nil, fmt.Errorf("alias: snapshot class table covers %d identities, index has %d", len(snap.Cls)-1, idx.Len())
	}
	nClasses := len(snap.RepIIDs)
	if len(snap.Compat) != nClasses {
		return nil, fmt.Errorf("alias: snapshot has %d compat rows for %d classes", len(snap.Compat), nClasses)
	}
	reps := make([]*ir.AP, nClasses)
	for i, iid := range snap.RepIIDs {
		ap := idx.ByID(iid)
		if ap == nil {
			return nil, fmt.Errorf("alias: snapshot representative %d names unknown identity %d", i, iid)
		}
		reps[i] = ap
	}
	for i, c := range snap.Cls[1:] {
		if c < -1 || int(c) >= nClasses {
			return nil, fmt.Errorf("alias: snapshot classifies identity %d into out-of-range class %d", i+1, c)
		}
	}
	numTypes := prog.Universe.NumTypes()
	if opts.Level >= LevelSMFieldTypeRefs {
		if len(snap.TypeRefs) != numTypes {
			return nil, fmt.Errorf("alias: snapshot TypeRefsTable has %d rows, universe has %d types", len(snap.TypeRefs), numTypes)
		}
		words := (numTypes + 63) / 64
		for id, row := range snap.TypeRefs {
			// typeCompat's word-0 fast path requires non-nil rows to have
			// the NewBitset(NumTypes) word length.
			if row != nil && len(row) != words {
				return nil, fmt.Errorf("alias: snapshot TypeRefsTable row %d has %d words, want %d", id, len(row), words)
			}
		}
	} else if len(snap.TypeRefs) != 0 {
		return nil, fmt.Errorf("alias: snapshot carries a TypeRefsTable below level %v", LevelSMFieldTypeRefs)
	}
	a := &Analysis{
		prog:       prog,
		u:          prog.Universe,
		opts:       opts,
		typeRefs:   snap.TypeRefs,
		addrFields: prog.AddressTakenFields,
		addrElems:  prog.AddressTakenElems,
		addrOwners: make(map[string][]types.Type, len(prog.AddressTakenFields)),
		memo:       newMemoCache(),
	}
	for key := range prog.AddressTakenFields {
		a.addrOwners[key.Field] = append(a.addrOwners[key.Field], prog.Universe.ByID(key.TypeID))
	}
	if opts.Level >= LevelFSTypeRefs {
		a.flow = newFlow(a)
	}
	a.apIdx = idx
	a.fp = fingerprintOf(prog)
	a.part.Store(&partition{idx: idx, aps: idx.APs, cls: snap.Cls, compat: snap.Compat, reps: reps})
	return a, nil
}

// Index returns the analysis' interned access-path index (the artifact
// encoder needs it to name paths by identity).
func (a *Analysis) Index() *ir.APIndex { return a.apIdx }
