package alias

import (
	"sync"

	"tbaa/internal/cfg"
	"tbaa/internal/ir"
	"tbaa/internal/types"
)

// This file implements the FSTypeRefs refinement: an intraprocedural
// flow-sensitive reaching-stores analysis layered on the
// SMFieldTypeRefs TypeRefsTable. Per statement it tracks
//
//   - for every pointer variable, the set of allocated types its value
//     may reference at that statement (NEW(T) generates exactly {T},
//     assignments copy sets, calls and stores through locations kill),
//   - for every stored-to access path, the set the stored value may
//     reference (killed by any may-aliasing store, call, or write to a
//     variable the path mentions), so a later load of the same path
//     re-narrows the destination — value flow through the heap.
//
// Site-aware queries (MayAliasAt) then prove two access paths
// non-aliased when the objects they select through are of provably
// disjoint allocated types, even though the flow-insensitive
// declared-type rows intersect.

// Site identifies the statement a flow-sensitive query refers to. The
// zero Site means "no statement context": the query degrades to the
// variable's declared-type row, i.e. the flow-insensitive answer.
type Site struct {
	Proc  *ir.Proc
	Instr *ir.Instr
}

// SiteOracle extends Oracle with statement-aware refinement. Oracles
// without flow information implement it by ignoring the sites.
type SiteOracle interface {
	Oracle
	// MayAliasAt reports whether p evaluated at ps and q evaluated at qs
	// may denote the same memory location. It never answers true where
	// MayAlias answers false: the refinement only removes pairs.
	MayAliasAt(p *ir.AP, ps Site, q *ir.AP, qs Site) bool
}

// MayAliasAt dispatches to o's site-aware refinement when it has one,
// and falls back to the context-free MayAlias otherwise. This is the
// one query entry point the optimizer's kill logic uses.
func MayAliasAt(o Oracle, p *ir.AP, ps Site, q *ir.AP, qs Site) bool {
	if so, ok := o.(SiteOracle); ok {
		return so.MayAliasAt(p, ps, q, qs)
	}
	return o.MayAlias(p, q)
}

// FlowInvalidator is implemented by oracles holding per-procedure flow
// facts that must be dropped after the procedure's code is rewritten.
type FlowInvalidator interface {
	InvalidateFlow(procs ...*ir.Proc)
}

// InvalidateFlow tells o (if it holds flow facts) that the given
// procedures were structurally modified; their facts rebuild on the
// next site-aware query. Passes call this after every mutation.
func InvalidateFlow(o Oracle, procs ...*ir.Proc) {
	if fi, ok := o.(FlowInvalidator); ok {
		fi.InvalidateFlow(procs...)
	}
}

// MayAliasAt implements SiteOracle: the context-free verdict, refined
// at LevelFSTypeRefs by the reaching-stores narrowing at the two sites.
func (a *Analysis) MayAliasAt(p *ir.AP, ps Site, q *ir.AP, qs Site) bool {
	if !a.MayAlias(p, q) {
		return false
	}
	if a.flow == nil {
		return true
	}
	return !a.flow.disjoint(p, ps, q, qs)
}

// StoreKills reports whether a store to dst invalidates the value of
// access path p: the store may overwrite the location p denotes (a
// content change), or the location of one of p's proper prefixes —
// rewriting which object the deeper path selects through, so p no
// longer names the location a cached value came from (a denotation
// change). The depth-0 prefix is p's root variable, which heap stores
// cannot touch (the optimizer's variable-write kills handle it). This
// is the one prefix-aware kill rule; the optimizer reaches it through
// modref.StoreKills and the flow layer's path-fact kills use it
// directly.
func (a *Analysis) StoreKills(p *ir.AP, ps Site, dst *ir.AP, qs Site) bool {
	if a.MayAliasAt(p, ps, dst, qs) {
		return true
	}
	for _, prefix := range a.prefixes(p) {
		if a.MayAliasAt(prefix, ps, dst, qs) {
			return true
		}
	}
	return false
}

// prefixes returns p's proper prefixes of selector length >= 1. Paths
// interned at construction answer from the index's canonical chains
// (shared, pointer-stable, and themselves interned, so the partition
// oracle serves the kill queries against them); anything else is built
// on demand behind a lock and cached per path pointer.
func (a *Analysis) prefixes(p *ir.AP) []*ir.AP {
	if len(p.Sels) < 2 {
		return nil
	}
	if a.apIdx != nil {
		if pre := a.apIdx.Prefixes(p); pre != nil {
			return pre
		}
	}
	a.prefixMu.RLock()
	pre, ok := a.prefixCache[p]
	a.prefixMu.RUnlock()
	if ok {
		return pre
	}
	for k := 1; k < len(p.Sels); k++ {
		pre = append(pre, &ir.AP{Root: p.Root, Sels: p.Sels[:k]})
	}
	a.prefixMu.Lock()
	if a.prefixCache == nil {
		a.prefixCache = make(map[*ir.AP][]*ir.AP)
	}
	a.prefixCache[p] = pre
	a.prefixMu.Unlock()
	return pre
}

// StoreKiller is the optional oracle extension modref.StoreKills
// dispatches to; Analysis implements it with prefix caching.
type StoreKiller interface {
	StoreKills(p *ir.AP, ps Site, dst *ir.AP, qs Site) bool
}

// InvalidateFlow implements FlowInvalidator.
func (a *Analysis) InvalidateFlow(procs ...*ir.Proc) {
	if a.flow == nil {
		return
	}
	a.flow.mu.Lock()
	for _, p := range procs {
		delete(a.flow.procs, p)
	}
	a.flow.mu.Unlock()
}

// ---------------------------------------------------------------------------
// The reaching-stores dataflow

// pathFact narrows the value last stored to one access path.
type pathFact struct {
	ap  *ir.AP
	set types.Bitset
}

// flowState is the per-program-point lattice element. vars maps tracked
// variables to the set of allocated types their current value may
// reference; paths maps stored-to access paths (keyed by their source
// rendering) to the same for their current content. Absent entries are
// top. A present empty set means "NIL on every path here". Bitsets are
// immutable once stored: transfer and join always install fresh sets.
type flowState struct {
	vars  map[*ir.Var]types.Bitset
	paths map[string]pathFact
}

// procFlow is the per-procedure result: for every memory-touching or
// call statement, the narrowed variable facts in force when it
// executes. Path facts are consumed during the dataflow (they feed
// loads) and are not needed at query time.
type procFlow struct {
	at map[*ir.Instr]map[*ir.Var]types.Bitset
}

type flow struct {
	a *Analysis
	// mu guards the procs map only; each entry's once serializes that
	// procedure's solve, so distinct procedures solve concurrently (the
	// parallel CountPairs prebuild fans them across a worker pool).
	mu    sync.Mutex
	procs map[*ir.Proc]*procEntry
}

// procEntry builds one procedure's facts at most once per program shape.
type procEntry struct {
	once sync.Once
	pf   *procFlow
}

func newFlow(a *Analysis) *flow {
	return &flow{a: a, procs: make(map[*ir.Proc]*procEntry)}
}

// tracked reports whether the dataflow follows v's value: reference-
// typed with a TypeRefsTable row, and not a location slot (by-ref
// formals and WITH aliases hold locations — possibly interior pointers
// into other objects — so allocated-type reasoning does not apply).
func (f *flow) tracked(v *ir.Var) bool {
	return v != nil && !v.ByRef && f.row(v.Type) != nil
}

// row returns the TypeRefsTable row for t, or nil for non-reference
// types (and types registered after the table was built).
func (f *flow) row(t types.Type) types.Bitset {
	if t == nil {
		return nil
	}
	if id := t.ID(); id < len(f.a.typeRefs) {
		return f.a.typeRefs[id]
	}
	return nil
}

// disjoint reports whether the refinement proves p at ps and q at qs
// denote locations in distinct heap objects. Only the first-level
// object — the root variable's own value — is tracked, so the proof
// applies exactly when both paths select directly through their roots;
// deeper prefixes travel through the heap, where two syntactically
// different paths can reach the same object.
func (f *flow) disjoint(p *ir.AP, ps Site, q *ir.AP, qs Site) bool {
	if !rootOwned(p) || !rootOwned(q) {
		return false
	}
	sp := f.valueSet(p.Root, ps)
	sq := f.valueSet(q.Root, qs)
	if sp == nil || sq == nil {
		return false
	}
	return !sp.Intersects(sq)
}

// rootOwned reports whether the location ap denotes lies inside the
// object its root variable references directly: a bare variable (the
// points-to question about its value), one selector applied to the
// root, or the dope-expanded element access root{elems}[i] (an open
// array's elements block belongs to the array object).
func rootOwned(ap *ir.AP) bool {
	switch len(ap.Sels) {
	case 0, 1:
		return true
	case 2:
		return ap.Sels[0].Kind == ir.SelDopeElems && ap.Sels[1].Kind == ir.SelIndex
	}
	return false
}

// valueSet returns the set of allocated types root's value may
// reference at the site, or nil when the refinement cannot speak for it
// (untracked variable). Unknown sites and unnarrowed variables yield
// the declared-type row — the flow-insensitive answer.
func (f *flow) valueSet(root *ir.Var, s Site) types.Bitset {
	if !f.tracked(root) {
		return nil
	}
	if s.Proc != nil && s.Instr != nil {
		if narrowed, ok := f.factsFor(s.Proc).at[s.Instr][root]; ok {
			return narrowed
		}
	}
	return f.row(root.Type)
}

// factsFor returns (building on first use) the per-statement facts for
// a procedure in its current shape. Safe for concurrent callers.
func (f *flow) factsFor(p *ir.Proc) *procFlow {
	f.mu.Lock()
	e := f.procs[p]
	if e == nil {
		e = &procEntry{}
		f.procs[p] = e
	}
	f.mu.Unlock()
	e.once.Do(func() { e.pf = f.solve(p) })
	return e.pf
}

// querySite reports whether facts are snapshotted at this instruction:
// every statement the optimizer or the pair counter may name as a Site.
func querySite(op ir.Op) bool {
	switch op {
	case ir.OpLoad, ir.OpStore, ir.OpLoadVarField, ir.OpStoreVarField,
		ir.OpCall, ir.OpMethodCall:
		return true
	}
	return false
}

// solve runs the forward dataflow over p and snapshots the narrowed
// variable facts in force at every query site.
func (f *flow) solve(p *ir.Proc) *procFlow {
	pf := &procFlow{at: make(map[*ir.Instr]map[*ir.Var]types.Bitset)}
	entry := func() flowState { return f.entryState(p) }
	transfer := func(b *ir.Block, in flowState) flowState {
		st := in.clone()
		f.transferBlock(b, st, nil)
		return st
	}
	ins := cfg.ForwardSolve(p, entry, joinStates, transfer, statesEqual)
	// Final sweep: replay each block's transfer, recording the variable
	// facts in force just before every query site executes.
	for _, b := range p.Blocks {
		in, ok := ins[b]
		if !ok {
			continue // unreachable: queries fall back to declared rows
		}
		st := in.clone()
		f.transferBlock(b, st, pf.at)
	}
	return pf
}

// entryState seeds the dataflow. Locals are zero-initialized by the
// machine, so every tracked local starts NIL (the empty set); so do the
// globals when p is the module body, which runs first and is never
// called. Parameters and (elsewhere) globals start at top.
func (f *flow) entryState(p *ir.Proc) flowState {
	st := flowState{vars: map[*ir.Var]types.Bitset{}, paths: map[string]pathFact{}}
	for _, v := range p.Locals {
		if f.tracked(v) {
			st.vars[v] = types.Bitset{}
		}
	}
	if p == f.a.prog.Main {
		for _, v := range f.a.prog.Globals {
			if f.tracked(v) {
				st.vars[v] = types.Bitset{}
			}
		}
	}
	return st
}

func (st flowState) clone() flowState {
	out := flowState{
		vars:  make(map[*ir.Var]types.Bitset, len(st.vars)),
		paths: make(map[string]pathFact, len(st.paths)),
	}
	for v, s := range st.vars {
		out.vars[v] = s
	}
	for k, fct := range st.paths {
		out.paths[k] = fct
	}
	return out
}

// joinStates meets predecessor exit states: an entry survives only when
// present on every incoming path, with the union of its per-path sets.
func joinStates(preds []flowState) flowState {
	out := flowState{vars: map[*ir.Var]types.Bitset{}, paths: map[string]pathFact{}}
	for v, s := range preds[0].vars {
		merged := s.Clone()
		ok := true
		for _, ps := range preds[1:] {
			other, has := ps.vars[v]
			if !has {
				ok = false
				break
			}
			merged.Union(other)
		}
		if ok {
			out.vars[v] = merged
		}
	}
	for k, fct := range preds[0].paths {
		merged := fct.set.Clone()
		ok := true
		for _, ps := range preds[1:] {
			other, has := ps.paths[k]
			if !has || !other.ap.Equal(fct.ap) {
				ok = false
				break
			}
			merged.Union(other.set)
		}
		if ok {
			out.paths[k] = pathFact{ap: fct.ap, set: merged}
		}
	}
	return out
}

func statesEqual(a, b flowState) bool {
	if len(a.vars) != len(b.vars) || len(a.paths) != len(b.paths) {
		return false
	}
	for v, s := range a.vars {
		o, ok := b.vars[v]
		if !ok || !s.Equal(o) {
			return false
		}
	}
	for k, fct := range a.paths {
		o, ok := b.paths[k]
		if !ok || !fct.set.Equal(o.set) {
			return false
		}
	}
	return true
}

// transferBlock applies every instruction of b to st in place. When
// snap is non-nil, the pre-instruction variable facts of each query
// site are recorded into it; consecutive sites share one snapshot map
// until an instruction touches a variable fact (snapshots are never
// mutated after capture, so sharing is safe). Register facts are
// tracked per block only: a register defined in an earlier block
// contributes no narrowing, which is sound (absent means top) —
// lowered code materializes cross-block values in variables and access
// paths, both tracked.
func (f *flow) transferBlock(b *ir.Block, st flowState, snap map[*ir.Instr]map[*ir.Var]types.Bitset) {
	regs := make(map[ir.Reg]types.Bitset)
	var shared map[*ir.Var]types.Bitset
	for i := range b.Instrs {
		in := &b.Instrs[i]
		if snap != nil && querySite(in.Op) && len(st.vars) > 0 {
			if shared == nil {
				shared = make(map[*ir.Var]types.Bitset, len(st.vars))
				for v, s := range st.vars {
					shared[v] = s
				}
			}
			snap[in] = shared
		}
		if f.transferInstr(in, st, regs) {
			shared = nil
		}
	}
}

// transferInstr applies one instruction to the state and reports
// whether it may have changed a variable fact (invalidating any shared
// snapshot of st.vars).
func (f *flow) transferInstr(in *ir.Instr, st flowState, regs map[ir.Reg]types.Bitset) bool {
	switch in.Op {
	case ir.OpNew, ir.OpNewArray:
		// NEW(T) references an object of exactly the allocation type.
		if f.row(in.Type) != nil {
			s := types.NewBitset(in.Type.ID() + 1)
			s.Add(in.Type.ID())
			regs[in.Dst] = s
		}
	case ir.OpCopy:
		if s := f.operandSet(in.Args[0], st, regs); s != nil {
			regs[in.Dst] = s
		}
	case ir.OpLoad, ir.OpLoadVarField:
		// A load re-narrows to the reaching store's fact when one is in
		// force for the same path; otherwise a heap value of static type
		// T may reference anything in T's row.
		if in.AP != nil {
			if fct, ok := st.paths[in.AP.String()]; ok && fct.ap.Equal(in.AP) {
				regs[in.Dst] = fct.set
				return false
			}
		}
		if s := f.row(in.Type); s != nil {
			regs[in.Dst] = s
		}
	case ir.OpBuiltin:
		if s := f.row(in.Type); s != nil {
			regs[in.Dst] = s
		}
	case ir.OpSetVar:
		// Rewriting v changes what any path mentioning v denotes; if v's
		// slot address escaped, it can also be the target of a by-ref
		// path, whose facts are never tracked (see storeFact).
		killPathsUsing(st, in.Var)
		if f.tracked(in.Var) {
			if s := f.operandSet(in.Args[0], st, regs); s != nil {
				st.vars[in.Var] = s
			} else {
				delete(st.vars, in.Var)
			}
			return true
		}
	case ir.OpStore:
		if in.Sel.Kind == ir.SelDeref || in.AP == nil || in.AP.Root.ByRef {
			// A store through a location (a by-ref formal or WITH alias)
			// may rewrite any variable whose slot address escaped and any
			// heap location at all (locations can point into the heap).
			f.killAddressTaken(st)
			clear(st.paths)
			return true
		}
		f.storeFact(in, st, regs)
	case ir.OpStoreVarField:
		if in.AP != nil {
			f.storeFact(in, st, regs)
		} else {
			// A store with no recorded path could have written anything
			// a fact describes (the optimizer's kill logic treats this
			// case as kill-everything too).
			clear(st.paths)
		}
	case ir.OpCall, ir.OpMethodCall:
		// Without interprocedural summaries the callee may reassign
		// globals, write through locations reaching any address-taken
		// variable, and store anywhere in the heap — kill everything a
		// callee could touch. With summaries (LevelIPTypeRefs), kill
		// only the facts the call's possible callees may actually
		// modify. Returned references are bounded by the result type's
		// row either way (RETURN records a merge).
		if cs := f.a.summaries; cs != nil {
			f.killCallsSummarized(cs, in, st)
		} else {
			f.killCalls(st)
			clear(st.paths)
		}
		if s := f.row(in.Type); s != nil {
			regs[in.Dst] = s
		}
		return true
	}
	return false
}

// storeFact kills every path fact the store invalidates and, when the
// stored value's set is known and the path is re-loadable (non-by-ref
// root, no register subscripts), generates the new fact.
func (f *flow) storeFact(in *ir.Instr, st flowState, regs map[ir.Reg]types.Bitset) {
	for k, fct := range st.paths {
		// Zero Sites make StoreKills purely flow-insensitive here, which
		// avoids re-entering the per-proc fact builder mid-solve.
		if f.a.StoreKills(fct.ap, Site{}, in.AP, Site{}) {
			delete(st.paths, k)
		}
	}
	if in.AP.Root.ByRef {
		return
	}
	for i := range in.AP.Sels {
		if idx := in.AP.Sels[i].Index; idx.Kind == ir.RegOp {
			return // register subscripts cannot be tracked across kills
		}
	}
	if s := f.operandSet(in.Args[0], st, regs); s != nil {
		st.paths[in.AP.String()] = pathFact{ap: in.AP, set: s}
	}
}

// operandSet evaluates the set of allocated types an operand's value
// may reference, or nil for unknown (top).
func (f *flow) operandSet(o ir.Operand, st flowState, regs map[ir.Reg]types.Bitset) types.Bitset {
	switch o.Kind {
	case ir.VarOp:
		if !f.tracked(o.Var) {
			return nil
		}
		if s, ok := st.vars[o.Var]; ok {
			return s
		}
		return f.row(o.Var.Type)
	case ir.RegOp:
		return regs[o.Reg]
	case ir.ConstOp:
		if o.Const.Kind == ir.NilConst {
			// NIL references nothing: the non-nil empty set.
			return types.Bitset{}
		}
	}
	return nil
}

// killPathsUsing drops facts for paths that mention v as root or
// subscript: writing v changes which location they denote.
func killPathsUsing(st flowState, v *ir.Var) {
	if v == nil {
		return
	}
	for k, fct := range st.paths {
		if fct.ap.UsesVar(v) {
			delete(st.paths, k)
		}
	}
}

func (f *flow) killAddressTaken(st flowState) {
	at := f.a.prog.AddressTakenVars
	for v := range st.vars {
		if at[v] {
			delete(st.vars, v)
		}
	}
}

func (f *flow) killCalls(st flowState) {
	at := f.a.prog.AddressTakenVars
	for v := range st.vars {
		if v.Kind == ir.GlobalVar || at[v] {
			delete(st.vars, v)
		}
	}
}

// killCallsSummarized is the interprocedural call-kill rule: variable
// facts die only when the callees may rebind the variable (a global
// they reassign, or an escaped local they can reach through a
// location), and path facts only when the callees' summarized stores
// may overwrite the path or something it depends on. Locals whose
// address never escapes are beyond any callee's reach, exactly as in
// killCalls.
func (f *flow) killCallsSummarized(cs CallSummaries, in *ir.Instr, st flowState) {
	at := f.a.prog.AddressTakenVars
	for v := range st.vars {
		if (v.Kind == ir.GlobalVar || at[v]) && cs.CallMayRebind(in, v) {
			delete(st.vars, v)
		}
	}
	for k, fct := range st.paths {
		if cs.CallKillsPath(in, fct.ap) {
			delete(st.paths, k)
		}
	}
}
