package alias_test

import (
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/driver"
	"tbaa/internal/interp"
	"tbaa/internal/ir"
	"tbaa/internal/randprog"
)

// TestPrecisionLatticeOnRandomPrograms sweeps generated programs and
// checks, over every pair of heap references, the paper's precision
// containment (SMFieldTypeRefs ⊆ FieldTypeDecl ⊆ TypeDecl), symmetry,
// reflexivity, open-world ⊇ closed-world, and per-type-groups ⊆
// union-find.
func TestPrecisionLatticeOnRandomPrograms(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(9000); seed < int64(9000+seeds); seed++ {
		src := randprog.Generate(seed, randprog.DefaultConfig())
		prog, _, err := driver.Compile("r.m3", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		td := alias.New(prog, alias.Options{Level: alias.LevelTypeDecl})
		ftd := alias.New(prog, alias.Options{Level: alias.LevelFieldTypeDecl})
		sm := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
		smOpen := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs, OpenWorld: true})
		smPT := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs, PerTypeGroups: true})
		refs := alias.References(prog)
		if len(refs) > 60 {
			refs = refs[:60] // bound the quadratic sweep
		}
		for i := range refs {
			p := refs[i].AP
			if !td.MayAlias(p, p) || !ftd.MayAlias(p, p) || !sm.MayAlias(p, p) {
				t.Fatalf("seed %d: reflexivity broken on %s", seed, p)
			}
			for j := i + 1; j < len(refs); j++ {
				q := refs[j].AP
				a1, a2, a3 := td.MayAlias(p, q), ftd.MayAlias(p, q), sm.MayAlias(p, q)
				if a3 && !a2 || a2 && !a1 {
					t.Fatalf("seed %d: precision lattice violated on %s ~ %s (%v %v %v)",
						seed, p, q, a1, a2, a3)
				}
				if td.MayAlias(q, p) != a1 || ftd.MayAlias(q, p) != a2 || sm.MayAlias(q, p) != a3 {
					t.Fatalf("seed %d: asymmetry on %s ~ %s", seed, p, q)
				}
				if a3 && !smOpen.MayAlias(p, q) {
					t.Fatalf("seed %d: open world dropped %s ~ %s", seed, p, q)
				}
				if smPT.MayAlias(p, q) && !a3 {
					t.Fatalf("seed %d: per-type groups less precise than union-find on %s ~ %s",
						seed, p, q)
				}
			}
		}
	}
}

// TestDynamicSoundnessOfMayAlias is the deepest property: if two heap
// accesses ever touch the same address at run time, the analysis must
// say they may alias. We instrument an execution, record which
// instruction pairs dynamically collided, and check every collision
// against all three analyses.
func TestDynamicSoundnessOfMayAlias(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(11000); seed < int64(11000+seeds); seed++ {
		src := randprog.Generate(seed, randprog.DefaultConfig())
		prog, _, err := driver.Compile("r.m3", src)
		if err != nil {
			t.Fatal(err)
		}
		collisions := collectCollisions(t, prog)
		td := alias.New(prog, alias.Options{Level: alias.LevelTypeDecl})
		ftd := alias.New(prog, alias.Options{Level: alias.LevelFieldTypeDecl})
		sm := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
		for _, c := range collisions {
			if !td.MayAlias(c[0], c[1]) || !ftd.MayAlias(c[0], c[1]) || !sm.MayAlias(c[0], c[1]) {
				t.Fatalf("seed %d: unsound! %s and %s touched the same address but an analysis says no-alias\n%s",
					seed, c[0], c[1], src)
			}
		}
	}
}

// collectCollisions executes the program and returns pairs of access
// paths whose instructions dynamically touched the same heap address.
// The heap allocator never reuses addresses, so address equality means
// location identity.
func collectCollisions(t *testing.T, prog *ir.Program) [][2]*ir.AP {
	t.Helper()
	in := interp.New(prog)
	in.MaxSteps = 2_000_000
	type key struct{ a, b *ir.Instr }
	seenPair := map[key]bool{}
	lastTouch := map[uint64]*ir.Instr{}
	var out [][2]*ir.AP
	in.SetListener(interp.Listener{Mem: func(ev *interp.MemEvent) {
		if !ev.Heap || ev.Instr.AP == nil {
			return
		}
		if prev := lastTouch[ev.Addr]; prev != nil && prev != ev.Instr {
			k := key{prev, ev.Instr}
			if !seenPair[k] {
				seenPair[k] = true
				out = append(out, [2]*ir.AP{prev.AP, ev.Instr.AP})
			}
		}
		lastTouch[ev.Addr] = ev.Instr
	}})
	if _, err := in.Run(); err != nil {
		return nil // trapping programs yield whatever was collected
	}
	return out
}
