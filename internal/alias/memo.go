package alias

import (
	"hash/maphash"
	"sync"

	"tbaa/internal/ir"
)

// memoCache caches costly MayAlias verdicts (the Table 2 cases that run
// AddressTaken). It is sharded so concurrent queries on the Analyzer's
// lock-free read path do not contend on one mutex, and each shard keeps
// two generations so hitting the capacity limit no longer drops every
// cached verdict at once: filling the current generation demotes it to
// "previous" (dropping what was there), and a hit in the previous
// generation promotes the entry back into the current one. A verdict
// that is queried at least once per eviction cycle therefore survives
// indefinitely; only entries that went a whole generation unused are
// evicted.
type memoCache struct {
	seed   maphash.Seed
	shards [memoShards]memoShard
}

// memoKey is an AP pair in the orientation produced by the case
// analysis' rank normalization — identical for both query orders, so
// one entry is order-insensitive.
type memoKey [2]*ir.AP

const (
	// memoShards must be a power of two.
	memoShards = 16
	// memoLimit bounds the cache: at most two generations of
	// memoLimit/memoShards entries per shard.
	memoLimit      = 1 << 18
	memoShardLimit = memoLimit / memoShards
)

type memoShard struct {
	mu   sync.Mutex
	cur  map[memoKey]bool
	prev map[memoKey]bool
}

func newMemoCache() *memoCache {
	return &memoCache{seed: maphash.MakeSeed()}
}

func (c *memoCache) shard(k memoKey) *memoShard {
	return &c.shards[maphash.Comparable(c.seed, k)&(memoShards-1)]
}

// get returns the cached verdict for k. A hit in the previous
// generation re-inserts the entry into the current one.
func (c *memoCache) get(k memoKey) (v, ok bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.cur[k]; ok {
		return v, true
	}
	if v, ok := s.prev[k]; ok {
		s.putLocked(k, v)
		return v, true
	}
	return false, false
}

// put records a verdict.
func (c *memoCache) put(k memoKey, v bool) {
	s := c.shard(k)
	s.mu.Lock()
	s.putLocked(k, v)
	s.mu.Unlock()
}

func (s *memoShard) putLocked(k memoKey, v bool) {
	if len(s.cur) >= memoShardLimit {
		s.prev, s.cur = s.cur, nil
	}
	if s.cur == nil {
		s.cur = make(map[memoKey]bool)
	}
	s.cur[k] = v
}
