package server

import (
	"net/http"
	"path/filepath"
	"strings"
	"testing"
)

// The artifact-tier tests pin the server half of warm start: a second
// daemon over the same cache directory decodes persisted snapshots
// instead of re-analyzing, the /metrics endpoint reports the tier's
// traffic, and an edit invalidates the edited module's artifacts
// before its generation publishes.

// artifactFiles globs the on-disk artifacts for a module hash.
func artifactFiles(t *testing.T, dir, hash string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, hash+"-l*.art"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestServerArtifactWarmRestart simulates a daemon restart: a fresh
// Server over the same cache directory must serve its first analyzer
// build from the persisted artifact (a hit, no re-analysis) and answer
// identically.
func TestServerArtifactWarmRestart(t *testing.T) {
	dir := t.TempDir()
	file, src := srcModule(60)

	s1, ts1 := newTestServer(t, Config{CacheDir: dir})
	up := upload(t, ts1.URL, file, src)
	var cold QueryResponse
	if st := postJSON(t, ts1.URL+"/v1/modules/"+up.Hash+"/mayalias", QueryRequest{P: "x.i", Q: "y.j"}, &cold); st != http.StatusOK {
		t.Fatalf("cold query: status %d", st)
	}
	if m, h := s1.Metrics().ArtifactMisses.Load(), s1.Metrics().ArtifactHits.Load(); m != 1 || h != 0 {
		t.Fatalf("cold server: misses=%d hits=%d, want 1/0", m, h)
	}
	if got := artifactFiles(t, dir, up.Hash); len(got) != 1 {
		t.Fatalf("cold build persisted %d artifacts, want 1: %v", len(got), got)
	}

	// "Restart": a new server, same directory, same module.
	s2, ts2 := newTestServer(t, Config{CacheDir: dir})
	upload(t, ts2.URL, file, src)
	var warm QueryResponse
	if st := postJSON(t, ts2.URL+"/v1/modules/"+up.Hash+"/mayalias", QueryRequest{P: "x.i", Q: "y.j"}, &warm); st != http.StatusOK {
		t.Fatalf("warm query: status %d", st)
	}
	if warm.MayAlias != cold.MayAlias {
		t.Fatalf("warm verdict %v != cold verdict %v", warm.MayAlias, cold.MayAlias)
	}
	if h, m, inv := s2.Metrics().ArtifactHits.Load(), s2.Metrics().ArtifactMisses.Load(), s2.Metrics().ArtifactInvalid.Load(); h != 1 || m != 0 || inv != 0 {
		t.Fatalf("warm server: hits=%d misses=%d invalid=%d, want 1/0/0", h, m, inv)
	}

	// The tier's counters are scrape-visible.
	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := readAll(t, resp)
	for _, want := range []string{
		"tbaad_artifact_hits_total 1",
		"tbaad_artifact_misses_total 0",
		"tbaad_artifact_invalid_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestServerEditInvalidatesArtifacts pins the soundness edge of the
// disk tier: once a module is edited in place its hash no longer names
// its semantics, so the edit must delete the persisted artifacts and
// later builds of the edited module must neither read nor repopulate
// the tier — until a re-upload restores the pristine source.
func TestServerEditInvalidatesArtifacts(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{CacheDir: dir})
	up := upload(t, ts.URL, "editd.m3", editSrc)
	var q QueryResponse
	if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", QueryRequest{P: "t.f", Q: "t.f"}, &q); st != http.StatusOK {
		t.Fatalf("query: status %d", st)
	}
	if got := artifactFiles(t, dir, up.Hash); len(got) != 1 {
		t.Fatalf("build persisted %d artifacts, want 1", len(got))
	}

	if _, st := postEdit(t, ts.URL, up.Hash, editBody("P", "u.b")); st != http.StatusOK {
		t.Fatalf("edit: status %d", st)
	}
	if got := artifactFiles(t, dir, up.Hash); len(got) != 0 {
		t.Fatalf("edit left %d stale artifacts on disk: %v", len(got), got)
	}

	// A post-edit build (new level, not yet built) must bypass the tier:
	// no file appears, and the tier counters do not move.
	req := QueryRequest{LevelRequest: LevelRequest{Level: "typedecl"}, P: "t.f", Q: "t.f"}
	if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", req, &q); st != http.StatusOK {
		t.Fatalf("post-edit query: status %d", st)
	}
	if got := artifactFiles(t, dir, up.Hash); len(got) != 0 {
		t.Fatalf("edited module repopulated the tier: %v", got)
	}
	if m := s.Metrics().ArtifactMisses.Load(); m != 1 {
		t.Fatalf("artifact misses = %d after the dirty build, want 1 (pre-edit only)", m)
	}

	// Force re-upload: the resident module is again a pristine compile
	// of the hash's source, so the tier re-engages and repopulates.
	var re UploadResponse
	if st := postJSON(t, ts.URL+"/v1/modules", UploadRequest{File: "editd.m3", Source: editSrc, Force: true}, &re); st != http.StatusCreated {
		t.Fatalf("force re-upload: status %d", st)
	}
	if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", QueryRequest{P: "t.f", Q: "t.f"}, &q); st != http.StatusOK {
		t.Fatalf("post-reupload query: status %d", st)
	}
	if got := artifactFiles(t, dir, up.Hash); len(got) != 1 {
		t.Fatalf("pristine re-upload did not repopulate the tier: %v", got)
	}
	if m := s.Metrics().ArtifactMisses.Load(); m != 2 {
		t.Fatalf("artifact misses = %d after re-upload, want 2", m)
	}
}
