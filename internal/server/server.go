// Package server is the analysis daemon behind cmd/tbaad: a long-lived
// HTTP front over the tbaa package that accepts MiniM3 module uploads,
// compiles each source once (cached by content hash), lazily builds
// one Analyzer per requested (level, open-world) configuration, and
// serves may-alias queries to any number of concurrent clients.
//
// The server is production-shaped in the ways the ROADMAP's
// "millions of users" direction asks for:
//
//   - Bounded memory: at most MaxModules modules stay resident, evicted
//     least-recently-used; re-uploading an evicted hash recompiles.
//   - Load shedding: batches over MaxBatch pairs are rejected with 429
//     and requests beyond MaxInflight with 503 + Retry-After, so an
//     overloaded server answers cheaply instead of OOMing.
//   - Timeouts: every query request runs under RequestTimeout, enforced
//     mid-batch through tbaa.MayAliasBatch's context; expiry answers 504.
//   - Coherent re-upload: installing a hash that is already resident
//     atomically swaps in a fresh generation. Requests in flight keep
//     the generation they resolved, so a batch never mixes verdicts
//     from two generations.
//   - Observability: /metrics exposes the shared internal/metrics
//     vocabulary (the same op names BENCH_perf.json measures) in
//     Prometheus text format; /healthz answers liveness probes; every
//     module carries per-session tbaa.Stats reported in its responses.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"tbaa"
	"tbaa/internal/fault"
	"tbaa/internal/metrics"
)

// Config bounds one server instance. The zero value is usable:
// Defaults fills every unset limit.
type Config struct {
	// MaxModules caps resident modules; the least recently used is
	// evicted to admit a new hash. 0 means the default.
	MaxModules int
	// MaxBatch caps the pair count of one mayalias-batch request;
	// larger batches are shed with 429. 0 means the default.
	MaxBatch int
	// MaxInflight caps concurrently served /v1 requests; excess load is
	// shed with 503. 0 means the default.
	MaxInflight int
	// MaxSourceBytes caps an upload's source size. 0 means the default.
	MaxSourceBytes int64
	// RequestTimeout bounds one query request, enforced mid-batch via
	// context. 0 means the default.
	RequestTimeout time.Duration
	// CacheDir enables the disk-backed artifact tier: analyzer builds
	// persist their snapshots there and a restarted daemon warm-starts
	// from them instead of re-analyzing. "" (the default) disables it.
	// Artifacts of an edited module are invalidated before the edit's
	// generation is published, so the tier can only serve snapshots that
	// match their module's content hash.
	CacheDir string
	// MemLimit is the memory watermark in bytes: when the live heap
	// exceeds it the server sheds uploads with 503 + Retry-After and
	// evicts least-recently-used modules until the heap drops to 80% of
	// the limit. 0 (the default) disables the watermark.
	MemLimit int64
	// MemCheckInterval is how often WatchMemory samples the heap against
	// MemLimit. 0 means the default.
	MemCheckInterval time.Duration
	// QuarantineAfter is how many recovered panics one (module, level,
	// open-world) configuration survives before being quarantined (422
	// until a force re-upload). 0 means the default.
	QuarantineAfter int
}

// The default limits: small enough to demonstrate eviction and
// shedding in tests, large enough for real sessions.
const (
	DefaultMaxModules       = 16
	DefaultMaxBatch         = 1 << 16
	DefaultMaxInflight      = 128
	DefaultMaxSourceBytes   = 16 << 20
	DefaultRequestTimeout   = 30 * time.Second
	DefaultMemCheckInterval = time.Second
	DefaultQuarantineAfter  = 3
)

// Defaults returns the configuration with every unset field filled.
func (c Config) Defaults() Config {
	if c.MaxModules <= 0 {
		c.MaxModules = DefaultMaxModules
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = DefaultMaxSourceBytes
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.MemCheckInterval <= 0 {
		c.MemCheckInterval = DefaultMemCheckInterval
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = DefaultQuarantineAfter
	}
	return c
}

// Server holds the resident-module cache and serves the v1 API. Create
// with New; the methods of one Server are safe for any number of
// concurrent requests.
type Server struct {
	cfg      Config
	reg      *metrics.Registry
	cache    *moduleCache
	inflight chan struct{}
	mux      *http.ServeMux

	// draining latches when graceful shutdown begins (BeginDrain):
	// /readyz turns unready so load balancers stop routing new work,
	// while in-flight requests run to completion under http.Server's
	// Shutdown. pressure latches while the heap is over the memory
	// watermark (see CheckMemory): uploads are shed, queries still serve.
	draining atomic.Bool
	pressure atomic.Bool

	// sampleHeap reports live heap bytes; tests substitute a fake to
	// drive the watermark deterministically.
	sampleHeap func() int64
}

// New returns a Server with the given limits (zero fields take
// defaults).
func New(cfg Config) *Server {
	cfg = cfg.Defaults()
	reg := metrics.New()
	s := &Server{
		cfg:        cfg,
		reg:        reg,
		cache:      newModuleCache(cfg.MaxModules, cfg.CacheDir, cfg.QuarantineAfter, reg),
		inflight:   make(chan struct{}, cfg.MaxInflight),
		sampleHeap: heapBytes,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/modules", s.limited(s.handleUpload))
	mux.HandleFunc("GET /v1/modules", s.handleModules)
	mux.HandleFunc("POST /v1/modules/{hash}/edit", s.limited(s.handleEdit))
	mux.HandleFunc("POST /v1/modules/{hash}/mayalias", s.limited(s.handleMayAlias))
	mux.HandleFunc("POST /v1/modules/{hash}/mayalias-batch", s.limited(s.handleBatch))
	mux.HandleFunc("POST /v1/modules/{hash}/countpairs", s.limited(s.handleCountPairs))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux = mux
	return s
}

// Handler returns the root handler, ready for http.Server. The mux is
// wrapped in the last-resort panic barrier: analyzer panics are already
// recovered per configuration (guardConfig), but a panic anywhere else
// in a handler must cost that one request a 500, never the daemon.
func (s *Server) Handler() http.Handler { return s.recovered(s.mux) }

// BeginDrain marks the server draining: /readyz answers 503 so load
// balancers route new work elsewhere while in-flight requests finish.
// cmd/tbaad calls it on SIGTERM/SIGINT before http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// recovered converts a handler panic into a structured 500 and the
// tbaad_panics_total counter. If the handler already wrote a partial
// response the ResponseWriter is left as-is (the client sees a torn
// body, which its retry policy treats like any connection fault).
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.reg.Panics.Add(1)
				writeError(w, http.StatusInternalServerError,
					fmt.Sprintf("internal panic (request isolated): %v", p), nil)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// Metrics returns the server's counter registry (shared with the
// /metrics endpoint); tests and embedders read it directly.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// limited wraps a /v1 handler with the in-flight cap: when MaxInflight
// requests are already being served the request is shed immediately
// with 503 and a Retry-After hint, never queued.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			h(w, r)
		default:
			s.reg.ShedInflight.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "server at capacity", nil)
		}
	}
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	// Under memory pressure new state is the one thing the server cannot
	// afford: shed the upload cheaply and keep serving queries against
	// what is already resident.
	if s.pressure.Load() {
		s.reg.ShedMemory.Add(1)
		w.Header().Set("Retry-After", "2")
		writeError(w, http.StatusServiceUnavailable, "server over its memory watermark; retry after evictions", nil)
		return
	}
	var req UploadRequest
	if !decodeJSON(w, r, s.cfg.MaxSourceBytes, &req) {
		return
	}
	if req.File == "" {
		req.File = "module.m3"
	}
	hash := tbaa.ModuleHash(req.Source)
	// Fast path: the hash is already resident, so skip the compile
	// entirely — this is the cache the content hash exists for. Force
	// bypasses it to recompile and swap generations.
	if e := s.cache.lookup(hash); e != nil && !req.Force {
		s.reg.CacheHits.Add(1)
		writeJSON(w, http.StatusOK, UploadResponse{
			Hash:       hash,
			File:       e.gen.Load().file,
			Cached:     true,
			Generation: e.gen.Load().seq,
			Resident:   s.reg.Resident.Load(),
		})
		return
	}
	mod, err := tbaa.Compile(req.File, req.Source)
	if err != nil {
		writeCompileError(w, err)
		return
	}
	s.reg.CacheMisses.Add(1)
	// A concurrent upload of the same source may have installed the
	// hash while this one compiled; install then swaps generations,
	// which is harmless (same bytes, same verdicts).
	_, gen, swapped := s.cache.install(mod, req.File)
	writeJSON(w, http.StatusCreated, UploadResponse{
		Hash:       mod.Hash(),
		File:       req.File,
		Cached:     swapped,
		Generation: gen,
		Resident:   s.reg.Resident.Load(),
	})
}

// handleEdit is the "edit" upload mode: replace one procedure of a
// resident module by name and re-analyze incrementally, without
// recompiling the module. The observed latency (OpRebuildOneProc)
// covers checking the edit plus the incremental rebuild of every built
// analyzer configuration — the server-side cost a one-procedure edit
// actually pays, which the benchmark gates against from-scratch cost.
func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req EditRequest
	if !decodeJSON(w, r, s.cfg.MaxSourceBytes, &req) {
		return
	}
	fault.Sleep(fault.EditSlow)
	e := s.cache.lookup(r.PathValue("hash"))
	if e == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no module %q resident (upload it first)", r.PathValue("hash")), nil)
		return
	}
	gen, proc, reanalyzed, err := s.cache.edit(e, req.Source)
	if err != nil {
		// The module was evicted while the edit was in flight (or between
		// lookup and apply): same answer as an edit of an unknown hash.
		if errors.Is(err, errNotResident) {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no module %q resident (upload it first)", r.PathValue("hash")), nil)
			return
		}
		writeEditError(w, err)
		return
	}
	s.reg.Edits.Add(1)
	s.reg.Observe(metrics.OpRebuildOneProc, time.Since(start))
	writeJSON(w, http.StatusOK, EditResponse{
		Hash:       e.hash,
		Proc:       proc,
		Generation: gen,
		Reanalyzed: reanalyzed,
	})
}

func (s *Server) handleModules(w http.ResponseWriter, r *http.Request) {
	rows := s.cache.list()
	resp := ModulesResponse{Modules: make([]ModuleInfo, len(rows))}
	for i, m := range rows {
		resp.Modules[i] = ModuleInfo(m)
	}
	writeJSON(w, http.StatusOK, resp)
}

// resolve turns the request's {hash} and level selection into the
// entry, its current generation, and the generation's analyzer. A nil
// analyzer return means resolve already answered the request.
//
// The analyzer build (and the fault-injection panic points that stand
// in for analyzer bugs) runs under guardConfig: a panic is recovered
// into a 500 counted against the configuration's quarantine ledger,
// and a quarantined configuration is refused up front with 422 —
// other configurations of the same module keep answering.
func (s *Server) resolve(w http.ResponseWriter, r *http.Request, lv LevelRequest) (*entry, *generation, *tbaa.Analyzer) {
	e := s.cache.lookup(r.PathValue("hash"))
	if e == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no module %q resident (upload it first)", r.PathValue("hash")), nil)
		return nil, nil, nil
	}
	level := tbaa.SMFieldTypeRefs
	if lv.Level != "" {
		var err error
		if level, err = tbaa.ParseLevel(lv.Level); err != nil {
			writeError(w, http.StatusBadRequest, err.Error(), nil)
			return nil, nil, nil
		}
	}
	key := analyzerKey{level: level, open: lv.Open}
	if reason, ok := e.quar.blocked(key); ok {
		writeError(w, http.StatusUnprocessableEntity, reason, nil)
		return nil, nil, nil
	}
	// Load the generation pointer exactly once: everything below — the
	// lazily built analyzer and every verdict of the request — comes
	// from this one generation even if a re-upload swaps mid-request.
	g := e.gen.Load()
	var a *tbaa.Analyzer
	err := s.guardConfig(e, key, func() error {
		if fault.Hit(fault.BuildPanic) {
			panic("injected analyzer build panic (" + fault.BuildPanic + ")")
		}
		var err error
		a, err = g.analyzer(key, e.stats)
		if err != nil {
			return err
		}
		if fault.Hit(fault.QueryPanic) {
			panic("injected analyzer query panic (" + fault.QueryPanic + ")")
		}
		return nil
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), nil)
		return nil, nil, nil
	}
	return e, g, a
}

func (s *Server) handleMayAlias(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req QueryRequest
	if !decodeJSON(w, r, s.cfg.MaxSourceBytes, &req) {
		return
	}
	_, g, a := s.resolve(w, r, req.LevelRequest)
	if a == nil {
		return
	}
	may, err := a.MayAlias(req.P, req.Q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	s.reg.Queries.Add(1)
	if may {
		s.reg.Aliased.Add(1)
	}
	s.reg.Observe(metrics.OpMayAlias, time.Since(start))
	writeJSON(w, http.StatusOK, QueryResponse{MayAlias: may, Generation: g.seq})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req BatchRequest
	if !decodeJSON(w, r, s.cfg.MaxSourceBytes, &req) {
		return
	}
	if len(req.Pairs) > s.cfg.MaxBatch {
		s.reg.ShedBatch.Add(1)
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("batch of %d pairs exceeds the %d-pair limit; split it", len(req.Pairs), s.cfg.MaxBatch), nil)
		return
	}
	e, g, a := s.resolve(w, r, req.LevelRequest)
	if a == nil {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	pairs := make([]tbaa.Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		pairs[i] = tbaa.Pair{P: p.P, Q: p.Q}
	}
	verdicts := a.MayAliasBatch(ctx, pairs)
	resp := BatchResponse{
		Verdicts:   make([]VerdictJSON, len(verdicts)),
		Generation: g.seq,
	}
	var timedOut bool
	for i, v := range verdicts {
		vj := VerdictJSON{P: v.Pair.P, Q: v.Pair.Q, MayAlias: v.MayAlias}
		if v.Err != nil {
			vj.Error = v.Err.Error()
			vj.MayAlias = false
			if errors.Is(v.Err, context.DeadlineExceeded) {
				timedOut = true
			}
		} else {
			s.reg.Queries.Add(1)
			if v.MayAlias {
				s.reg.Aliased.Add(1)
			}
		}
		resp.Verdicts[i] = vj
	}
	if timedOut {
		writeError(w, http.StatusGatewayTimeout,
			fmt.Sprintf("batch exceeded the %s request timeout", s.cfg.RequestTimeout), nil)
		return
	}
	resp.Stats = SessionStats{
		Queries: e.stats.Queries(),
		Aliased: e.stats.Aliased(),
		Batches: e.stats.Batches(),
	}
	s.reg.Batches.Add(1)
	s.reg.Observe(metrics.OpMayAliasBatch, time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCountPairs(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req LevelRequest
	if !decodeJSON(w, r, s.cfg.MaxSourceBytes, &req) {
		return
	}
	_, g, a := s.resolve(w, r, req)
	if a == nil {
		return
	}
	pc := a.CountPairs()
	s.reg.Observe(metrics.OpCountPairs, time.Since(start))
	writeJSON(w, http.StatusOK, CountPairsResponse{
		References: pc.References,
		Local:      pc.Local,
		Global:     pc.Global,
		Generation: g.seq,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReadyz is the readiness probe: unlike /healthz (liveness — the
// process is up), /readyz answers 503 while the server should not
// receive new work: during graceful drain, and while the heap is over
// the memory watermark.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
	case s.pressure.Load():
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "memory pressure\n")
	default:
		io.WriteString(w, "ready\n")
	}
}

// ---------------------------------------------------------------------------
// JSON plumbing

// decodeJSON parses the request body into v, answering 400 itself on
// failure. The body is capped at limit bytes (the source-size bound is
// the largest legitimate body).
func decodeJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request body: "+err.Error(), nil)
		return false
	}
	return true
}

// writeEditError maps a rejected edit to 422 with diagnostics.
func writeEditError(w http.ResponseWriter, err error) {
	var diags []string
	var pe *tbaa.ParseError
	var ce *tbaa.CheckError
	switch {
	case errors.As(err, &pe):
		for _, d := range pe.Diagnostics {
			diags = append(diags, d.String())
		}
	case errors.As(err, &ce):
		for _, d := range ce.Diagnostics {
			diags = append(diags, d.String())
		}
	}
	writeError(w, http.StatusUnprocessableEntity, "edit rejected: "+err.Error(), diags)
}

// writeCompileError maps frontend failures to 422 with diagnostics.
func writeCompileError(w http.ResponseWriter, err error) {
	var diags []string
	var pe *tbaa.ParseError
	var ce *tbaa.CheckError
	switch {
	case errors.As(err, &pe):
		for _, d := range pe.Diagnostics {
			diags = append(diags, d.String())
		}
	case errors.As(err, &ce):
		for _, d := range ce.Diagnostics {
			diags = append(diags, d.String())
		}
	}
	writeError(w, http.StatusUnprocessableEntity, "module does not compile: "+err.Error(), diags)
}

func writeError(w http.ResponseWriter, status int, msg string, diags []string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Diagnostics: diags})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
