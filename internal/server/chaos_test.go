package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tbaa"
	"tbaa/internal/fault"
	"tbaa/internal/randprog"
)

// The chaos tests drive the full degradation ladder under injected
// faults: artifact corruption must never change a verdict, panics must
// cost one request (then one configuration) but never the daemon,
// memory pressure must shed uploads while queries keep answering, and
// a drain must let an in-flight edit publish before shutdown returns.

// armFaults installs an injector for the test and restores the previous
// global configuration on cleanup.
func armFaults(t *testing.T, seed int64, rules ...fault.Rule) *fault.Injector {
	t.Helper()
	in, err := fault.NewInjector(seed, rules...)
	if err != nil {
		t.Fatal(err)
	}
	prev := fault.Configure(in)
	t.Cleanup(func() { fault.Configure(prev) })
	return in
}

// groundTruth computes the in-process verdict vector for every pair at
// the level — the reference a fault-ridden server must still match.
func groundTruth(t *testing.T, file, src, level string, pairs []PairJSON) []bool {
	t.Helper()
	lv, err := tbaa.ParseLevel(level)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tbaa.New(file, src, tbaa.WithLevel(lv))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]bool, len(pairs))
	for i, p := range pairs {
		may, err := a.MayAlias(p.P, p.Q)
		if err != nil {
			t.Fatalf("ground truth %s ? %s: %v", p.P, p.Q, err)
		}
		out[i] = may
	}
	return out
}

// TestChaosCycles hammers the artifact tier with probabilistic
// corruption — bit flips on read, short writes, rename failures, slow
// reads — across repeated force-upload/query cycles, and requires every
// verdict at every level to stay byte-equal to the in-process answer.
// Corruption may cost rebuilds (tbaad_artifact_invalid_total), never
// soundness.
func TestChaosCycles(t *testing.T) {
	armFaults(t, 1337,
		fault.Rule{Point: fault.ArtifactBitFlip, P: 0.5},
		fault.Rule{Point: fault.ArtifactShortWrite, P: 0.4},
		fault.Rule{Point: fault.ArtifactRenameFail, P: 0.3},
		fault.Rule{Point: fault.ArtifactSlowRead, P: 0.2, Sleep: time.Millisecond},
	)
	_, ts := newTestServer(t, Config{CacheDir: t.TempDir()})

	const file = "chaos.m3"
	src := randprog.Generate(90210, randprog.DefaultConfig())
	_, names := analyzerPaths(t, file, src)
	if len(names) > 12 {
		names = names[:12]
	}
	pairs := allPairs(names)
	levels := []string{"typedecl", "smfieldtyperefs", "iptyperefs"}
	want := make(map[string][]bool, len(levels))
	for _, lvl := range levels {
		want[lvl] = groundTruth(t, file, src, lvl, pairs)
	}

	up := upload(t, ts.URL, file, src)
	for cycle := 0; cycle < 8; cycle++ {
		// Force re-upload: drops analyzer state, so every level rebuilds
		// through the (faulty) artifact tier next query.
		var fresh UploadResponse
		if st := postJSON(t, ts.URL+"/v1/modules", UploadRequest{File: file, Source: src, Force: true}, &fresh); st != http.StatusCreated {
			t.Fatalf("cycle %d: force upload status %d", cycle, st)
		}
		for _, lvl := range levels {
			var resp BatchResponse
			req := BatchRequest{LevelRequest: LevelRequest{Level: lvl}, Pairs: pairs}
			if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias-batch", req, &resp); st != http.StatusOK {
				t.Fatalf("cycle %d level %s: batch status %d", cycle, lvl, st)
			}
			for i, v := range resp.Verdicts {
				if v.Error != "" {
					t.Fatalf("cycle %d level %s pair %d: %s", cycle, lvl, i, v.Error)
				}
				if v.MayAlias != want[lvl][i] {
					t.Fatalf("cycle %d level %s: verdict %s ? %s = %v, in-process says %v — corruption changed an answer",
						cycle, lvl, v.P, v.Q, v.MayAlias, want[lvl][i])
				}
			}
		}
	}
}

// TestChaosPanicQuarantineRecover pins the panic-isolation ladder: each
// injected build panic costs its request a structured 500; at the
// quarantine threshold the configuration is refused with 422 while
// sibling configurations keep answering; a plain (cached) re-upload
// does not lift the quarantine, a force re-upload does.
func TestChaosPanicQuarantineRecover(t *testing.T) {
	armFaults(t, 7, fault.Rule{Point: fault.BuildPanic, Count: 2})
	s, ts := newTestServer(t, Config{QuarantineAfter: 2})
	file, src := srcModule(41)
	up := upload(t, ts.URL, file, src)
	_, names := analyzerPaths(t, file, src)
	q := QueryRequest{P: names[0], Q: names[1]}

	// Two injected panics: two isolated 500s carrying the panic message.
	for i := 1; i <= 2; i++ {
		var er ErrorResponse
		if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", q, &er); st != http.StatusInternalServerError {
			t.Fatalf("panic %d: status %d, want 500", i, st)
		} else if !strings.Contains(er.Error, "internal panic") {
			t.Fatalf("panic %d: error %q lacks panic marker", i, er.Error)
		}
	}
	// Threshold reached: the default configuration is quarantined.
	var er ErrorResponse
	if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", q, &er); st != http.StatusUnprocessableEntity {
		t.Fatalf("quarantined query: status %d, want 422", st)
	}
	if !strings.Contains(er.Error, "quarantined") {
		t.Fatalf("quarantine error %q lacks reason", er.Error)
	}
	// A different level of the same module still answers: quarantine is
	// per configuration, not per module.
	tq := QueryRequest{LevelRequest: LevelRequest{Level: "typedecl"}, P: names[0], Q: names[1]}
	if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", tq, nil); st != http.StatusOK {
		t.Fatalf("typedecl during quarantine: status %d, want 200", st)
	}
	// A plain upload is served from cache and clears nothing.
	if got := upload(t, ts.URL, file, src); !got.Cached {
		t.Fatal("plain re-upload was not served from cache")
	}
	if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", q, nil); st != http.StatusUnprocessableEntity {
		t.Fatalf("after cached upload: status %d, still want 422", st)
	}
	// Force re-upload swaps a pristine generation and lifts the
	// quarantine; the fault budget is spent, so the query now answers.
	if st := postJSON(t, ts.URL+"/v1/modules", UploadRequest{File: file, Source: src, Force: true}, nil); st != http.StatusCreated {
		t.Fatalf("force upload: status %d", st)
	}
	var qr QueryResponse
	if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", q, &qr); st != http.StatusOK {
		t.Fatalf("post-recovery query: status %d, want 200", st)
	}
	want := groundTruth(t, file, src, "smfieldtyperefs", []PairJSON{{P: q.P, Q: q.Q}})
	if qr.MayAlias != want[0] {
		t.Fatalf("post-recovery verdict %v, in-process says %v", qr.MayAlias, want[0])
	}
	if got := s.Metrics().Panics.Load(); got != 2 {
		t.Errorf("Panics = %d, want 2", got)
	}
	if got := s.Metrics().Quarantines.Load(); got != 1 {
		t.Errorf("Quarantines = %d, want 1", got)
	}
}

// TestHandlerPanicIsolated pins the outer barrier: a panic outside the
// guarded analyzer region (here, injected on the query path of a
// metrics-free probe via a poisoned handler) answers 500 on that one
// request and the next request is served normally.
func TestHandlerPanicIsolated(t *testing.T) {
	armFaults(t, 11, fault.Rule{Point: fault.QueryPanic, Count: 1})
	s, ts := newTestServer(t, Config{})
	file, src := srcModule(42)
	up := upload(t, ts.URL, file, src)
	_, names := analyzerPaths(t, file, src)
	q := QueryRequest{P: names[0], Q: names[1]}
	if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", q, nil); st != http.StatusInternalServerError {
		t.Fatalf("injected query panic: status %d, want 500", st)
	}
	if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", q, nil); st != http.StatusOK {
		t.Fatalf("request after panic: status %d, want 200", st)
	}
	if got := s.Metrics().Panics.Load(); got != 1 {
		t.Errorf("Panics = %d, want 1", got)
	}
}

// getStatus fetches a path and returns the status code and body.
func getStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, readAll(t, resp)
}

// TestMemoryWatermarkInjected drives one injected breach through
// CheckMemory: one LRU module is evicted, pressure turns on (readyz
// unready, uploads shed with Retry-After), queries keep answering, and
// the next un-injected check — observing the real, far-below-limit
// heap — clears the pressure.
func TestMemoryWatermarkInjected(t *testing.T) {
	armFaults(t, 5, fault.Rule{Point: fault.MemPressure, Count: 1})
	s, ts := newTestServer(t, Config{MemLimit: 1 << 50})
	f1, s1 := srcModule(51)
	up1 := upload(t, ts.URL, f1, s1)
	f2, s2 := srcModule(52)
	upload(t, ts.URL, f2, s2)
	_, names := analyzerPaths(t, f2, s2)

	s.CheckMemory()
	if !s.pressure.Load() {
		t.Fatal("injected breach did not set pressure")
	}
	if got := s.Metrics().MemoryEvictions.Load(); got != 1 {
		t.Fatalf("MemoryEvictions = %d, want 1", got)
	}
	if st, body := getStatus(t, ts.URL+"/readyz"); st != http.StatusServiceUnavailable || !strings.Contains(body, "memory pressure") {
		t.Fatalf("readyz under pressure: status %d body %q", st, body)
	}
	var er ErrorResponse
	if st := postJSON(t, ts.URL+"/v1/modules", UploadRequest{File: "new.m3", Source: s1}, &er); st != http.StatusServiceUnavailable {
		t.Fatalf("upload under pressure: status %d, want 503", st)
	}
	if got := s.Metrics().ShedMemory.Load(); got != 1 {
		t.Fatalf("ShedMemory = %d, want 1", got)
	}
	// Module 1 was the LRU victim; module 2 still answers queries.
	q := QueryRequest{P: names[0], Q: names[1]}
	if st := postJSON(t, ts.URL+"/v1/modules/"+tbaa.ModuleHash(s2)+"/mayalias", q, nil); st != http.StatusOK {
		t.Fatalf("query under pressure: status %d, want 200", st)
	}
	if st := postJSON(t, ts.URL+"/v1/modules/"+up1.Hash+"/mayalias", q, nil); st != http.StatusNotFound {
		t.Fatalf("evicted module query: status %d, want 404", st)
	}
	// Fault budget spent: the next check samples the real heap, which is
	// nowhere near 2^50, and pressure clears.
	s.CheckMemory()
	if s.pressure.Load() {
		t.Fatal("pressure did not clear once the heap was back under the low watermark")
	}
	if st, body := getStatus(t, ts.URL+"/readyz"); st != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz after recovery: status %d body %q", st, body)
	}
	if st := postJSON(t, ts.URL+"/v1/modules", UploadRequest{File: f1, Source: s1}, nil); st != http.StatusCreated {
		t.Fatalf("upload after recovery: status %d, want 201", st)
	}
}

// TestMemoryWatermarkRealHeap runs the un-injected path with an
// impossible 1-byte limit: the watermark evicts everything resident,
// stops when the cache is empty, and stays under pressure (the heap
// cannot shrink below 1 byte).
func TestMemoryWatermarkRealHeap(t *testing.T) {
	s, ts := newTestServer(t, Config{MemLimit: 1})
	for i := 60; i < 63; i++ {
		f, src := srcModule(i)
		upload(t, ts.URL, f, src)
	}
	s.CheckMemory()
	if !s.pressure.Load() {
		t.Fatal("1-byte limit did not set pressure")
	}
	if got := s.Metrics().Resident.Load(); got != 0 {
		t.Fatalf("Resident = %d after full eviction, want 0", got)
	}
	if got := s.Metrics().MemoryEvictions.Load(); got != 3 {
		t.Fatalf("MemoryEvictions = %d, want 3", got)
	}
	// Idempotent once empty: nothing left to evict, no counter drift.
	s.CheckMemory()
	if got := s.Metrics().MemoryEvictions.Load(); got != 3 {
		t.Fatalf("MemoryEvictions after empty check = %d, want 3", got)
	}
}

// TestReadyzDrain pins the readiness ladder: ready when idle, unready
// once BeginDrain is called (drain outranks pressure in the body).
func TestReadyzDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if st, body := getStatus(t, ts.URL+"/readyz"); st != http.StatusOK || body != "ready\n" {
		t.Fatalf("idle readyz: status %d body %q", st, body)
	}
	if st, body := getStatus(t, ts.URL+"/healthz"); st != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz: status %d body %q", st, body)
	}
	s.BeginDrain()
	if st, body := getStatus(t, ts.URL+"/readyz"); st != http.StatusServiceUnavailable || body != "draining\n" {
		t.Fatalf("draining readyz: status %d body %q", st, body)
	}
	// Liveness is unaffected by drain: the process is still up.
	if st, _ := getStatus(t, ts.URL+"/healthz"); st != http.StatusOK {
		t.Fatalf("healthz during drain: status %d", st)
	}
}

// TestDrainWithInflightEdit pins graceful shutdown around a slow edit:
// SIGTERM-equivalent (BeginDrain + http.Server.Shutdown) while an edit
// is mid-flight lets the edit publish its generation and answer 200
// before Shutdown returns — the client never loses an accepted write.
func TestDrainWithInflightEdit(t *testing.T) {
	armFaults(t, 13, fault.Rule{Point: fault.EditSlow, Count: 1, Sleep: 300 * time.Millisecond})
	s := New(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	up := upload(t, base, "editd.m3", editSrc)
	type editResult struct {
		resp   EditResponse
		status int
	}
	done := make(chan editResult, 1)
	go func() {
		var r editResult
		r.resp, r.status = postEdit(t, base, up.Hash, editBody("P", "u.b"))
		done <- r
	}()
	// The injected sleep fires once the edit handler has entered; only
	// then is the drain racing a genuinely in-flight request.
	deadline := time.Now().Add(5 * time.Second)
	for fault.Fires(fault.EditSlow) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("edit never reached the handler")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.BeginDrain()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: status %d, want 503", rec.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown did not wait out the in-flight edit: %v", err)
	}
	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("in-flight edit: status %d, want 200", r.status)
	}
	if r.resp.Generation != up.Generation+1 {
		t.Fatalf("in-flight edit published generation %d, want %d", r.resp.Generation, up.Generation+1)
	}
}

// TestFaultSpecRoundTrip keeps ParseSpec aligned with what the daemon
// flag accepts: the spec grammar used across the chaos harness.
func TestFaultSpecRoundTrip(t *testing.T) {
	spec := fmt.Sprintf("%s:p=0.5,%s:after=1:count=3:sleep=2ms", fault.ArtifactBitFlip, fault.BuildPanic)
	in, err := fault.ParseSpec(spec, 99)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.String(); !strings.Contains(got, fault.ArtifactBitFlip) || !strings.Contains(got, fault.BuildPanic) {
		t.Fatalf("injector description %q lost a point", got)
	}
}
