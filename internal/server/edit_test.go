package server

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"tbaa"
	"tbaa/internal/metrics"
)

// The edit-mode tests pin the server half of incremental re-analysis:
// the edit endpoint replaces one procedure without recompiling, bumps
// the generation, and re-analyzes; and under racing edits and query
// traffic every batch stays coherent on the generation it resolved.

// editSrc is a module whose procedures can be edited independently:
// the module body's references (t.f, t.next.f) are stable across every
// edit the tests apply, so their verdicts are constant ground truth.
const editSrc = `MODULE EditD;
TYPE
  T = OBJECT f, g: INTEGER; next: T END;
  U = OBJECT a, b: INTEGER END;
  V = OBJECT c, d: INTEGER END;
VAR t: T; u: U; v: V; x: INTEGER;
PROCEDURE P() =
BEGIN
  x := u.a
END P;
PROCEDURE Q() =
BEGIN
  x := v.c
END Q;
BEGIN
  t := NEW(T);
  x := t.f;
  x := t.next.f;
  P();
  Q()
END EditD.
`

// editBody renders a replacement body for proc reading the given path.
func editBody(proc, path string) string {
	return fmt.Sprintf("PROCEDURE %s() =\nBEGIN\n  x := %s\nEND %s;", proc, path, proc)
}

func postEdit(t *testing.T, base, hash, src string) (EditResponse, int) {
	t.Helper()
	var resp EditResponse
	status := postJSON(t, base+"/v1/modules/"+hash+"/edit", EditRequest{Source: src}, &resp)
	return resp, status
}

func TestEditEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	up := upload(t, ts.URL, "editd.m3", editSrc)

	// Build an analyzer and take a pre-edit verdict set.
	var pre CountPairsResponse
	if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/countpairs", LevelRequest{}, &pre); st != http.StatusOK {
		t.Fatalf("countpairs: status %d", st)
	}
	// u.b is not referenced pre-edit: a query for it fails.
	var q QueryResponse
	if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", QueryRequest{P: "u.b", Q: "u.b"}, &q); st != http.StatusBadRequest {
		t.Fatalf("pre-edit u.b query: status %d", st)
	}

	resp, status := postEdit(t, ts.URL, up.Hash, editBody("P", "u.b"))
	if status != http.StatusOK {
		t.Fatalf("edit: status %d", status)
	}
	if resp.Proc != "P" || resp.Generation != up.Generation+1 || resp.Reanalyzed != 1 {
		t.Fatalf("edit response %+v", resp)
	}

	// The edited body's reference is now queryable and the static pair
	// metrics changed with it, on the bumped generation.
	if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", QueryRequest{P: "u.b", Q: "u.b"}, &q); st != http.StatusOK {
		t.Fatalf("post-edit u.b query: status %d", st)
	}
	if !q.MayAlias || q.Generation != resp.Generation {
		t.Fatalf("post-edit verdict %+v", q)
	}
	var post CountPairsResponse
	if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/countpairs", LevelRequest{}, &post); st != http.StatusOK {
		t.Fatalf("countpairs: status %d", st)
	}
	if post == pre {
		t.Fatalf("pair metrics unchanged by the edit: %+v", post)
	}

	// The re-analysis latency metric recorded the edit.
	if got := s.Metrics().Edits.Load(); got != 1 {
		t.Fatalf("edits counter = %d", got)
	}
	if got := s.Metrics().Hist(metrics.OpRebuildOneProc).Count(); got != 1 {
		t.Fatalf("RebuildOneProc observations = %d", got)
	}

	// Rejections: unknown module, unknown procedure, signature change.
	if _, st := postEdit(t, ts.URL, "nosuchhash", editBody("P", "u.a")); st != http.StatusNotFound {
		t.Fatalf("edit of unknown hash: status %d", st)
	}
	if _, st := postEdit(t, ts.URL, up.Hash, editBody("Nope", "u.a")); st != http.StatusUnprocessableEntity {
		t.Fatalf("edit of unknown proc: status %d", st)
	}
	if _, st := postEdit(t, ts.URL, up.Hash, "PROCEDURE P(n: INTEGER) =\nBEGIN\nEND P;"); st != http.StatusUnprocessableEntity {
		t.Fatalf("signature-changing edit: status %d", st)
	}
	// Rejected edits did not advance the generation.
	if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", QueryRequest{P: "t.f", Q: "t.f"}, &q); st != http.StatusOK {
		t.Fatalf("query after rejections: status %d", st)
	}
	if q.Generation != resp.Generation {
		t.Fatalf("rejected edits moved the generation to %d", q.Generation)
	}
}

// TestEditGenerationSemantics is the issue's race gate for edits: 8
// client goroutines stream batches while two editors race edits to
// different procedures. Every batch must answer the stable pairs with
// their constant ground-truth verdicts (a drifting verdict means a
// torn or mixed snapshot), each client's observed generation must be
// monotone (a batch finishes on the generation it resolved; later
// requests never travel back), and after the dust settles the module
// answers for exactly the last body each editor installed.
func TestEditGenerationSemantics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := upload(t, ts.URL, "editd.m3", editSrc)

	// Ground truth for the stable pairs from the in-process analyzer.
	a, _ := analyzerPaths(t, "editd.m3", editSrc)
	stable := []PairJSON{
		{P: "t.f", Q: "t.f"},
		{P: "t.f", Q: "t.next.f"},
		{P: "t.next.f", Q: "t.next.f"},
	}
	want := make([]bool, len(stable))
	for i, p := range stable {
		v, err := a.MayAlias(p.P, p.Q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}

	const (
		clients          = 8
		batchesPerClient = 40
		editsPerEditor   = 20
	)
	var wg sync.WaitGroup
	errc := make(chan error, clients+2)

	// Editors: each owns one procedure and alternates its body between
	// two paths, recording the final one.
	finals := make([]string, 2)
	editor := func(slot int, proc string, paths [2]string) {
		defer wg.Done()
		for i := 0; i < editsPerEditor; i++ {
			path := paths[i%2]
			if _, st := postEdit(t, ts.URL, up.Hash, editBody(proc, path)); st != http.StatusOK {
				errc <- fmt.Errorf("edit %s -> %s: status %d", proc, path, st)
				return
			}
			finals[slot] = path
		}
	}
	wg.Add(2)
	go editor(0, "P", [2]string{"u.a", "u.b"})
	go editor(1, "Q", [2]string{"v.c", "v.d"})

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			for i := 0; i < batchesPerClient; i++ {
				var resp BatchResponse
				st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias-batch", BatchRequest{Pairs: stable}, &resp)
				if st != http.StatusOK {
					errc <- fmt.Errorf("batch: status %d", st)
					return
				}
				if resp.Generation < lastGen {
					errc <- fmt.Errorf("generation went backwards: %d after %d", resp.Generation, lastGen)
					return
				}
				lastGen = resp.Generation
				for j, v := range resp.Verdicts {
					if v.Error != "" || v.MayAlias != want[j] {
						errc <- fmt.Errorf("gen %d: stable pair (%s,%s) answered %v/%q, want %v",
							resp.Generation, v.P, v.Q, v.MayAlias, v.Error, want[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Convergence: the module answers for exactly the last installed
	// body of each procedure.
	last := map[string]string{"P": finals[0], "Q": finals[1]}
	gone := map[string]string{"u.a": "u.b", "u.b": "u.a", "v.c": "v.d", "v.d": "v.c"}
	var q QueryResponse
	for _, path := range []string{last["P"], last["Q"]} {
		if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", QueryRequest{P: path, Q: path}, &q); st != http.StatusOK {
			t.Fatalf("final body's path %s: status %d", path, st)
		}
		if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", QueryRequest{P: gone[path], Q: gone[path]}, &q); st != http.StatusBadRequest {
			t.Fatalf("replaced body's path %s still resolves (status %d)", gone[path], st)
		}
	}
	// The final generation reflects every applied edit.
	if st := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", QueryRequest{P: "t.f", Q: "t.f"}, &q); st != http.StatusOK {
		t.Fatalf("final query: status %d", st)
	}
	if wantGen := up.Generation + 2*editsPerEditor; q.Generation != wantGen {
		t.Fatalf("final generation %d, want %d", q.Generation, wantGen)
	}
}

// TestEditEvictedHash404 pins the status for an edit naming a hash the
// LRU already evicted: 404, exactly as for a hash never uploaded —
// never a panic or a 500.
func TestEditEvictedHash404(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxModules: 1})
	up := upload(t, ts.URL, "editd.m3", editSrc)
	file, src := srcModule(50)
	upload(t, ts.URL, file, src) // evicts editd.m3
	if _, st := postEdit(t, ts.URL, up.Hash, editBody("P", "u.b")); st != http.StatusNotFound {
		t.Fatalf("edit of evicted hash: status %d, want 404", st)
	}
}

// TestEditEvictionRaceNoPublish pins the narrower race: the edit has
// already resolved its entry when the eviction lands. Publishing would
// resurrect a module the cache dropped — a generation queryable by
// nothing yet pinned in memory — so the edit must fail with the same
// not-resident answer instead.
func TestEditEvictionRaceNoPublish(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxModules: 1})
	mod, err := tbaa.Compile("editd.m3", editSrc)
	if err != nil {
		t.Fatal(err)
	}
	e, gen, _ := s.cache.install(mod, "editd.m3")

	// The in-flight edit holds e; the eviction wins the race before the
	// edit publishes.
	file, src := srcModule(51)
	other, err := tbaa.Compile(file, src)
	if err != nil {
		t.Fatal(err)
	}
	s.cache.install(other, file)

	if _, _, _, err := s.cache.edit(e, editBody("P", "u.b")); !errors.Is(err, errNotResident) {
		t.Fatalf("edit after eviction: %v, want errNotResident", err)
	}
	if got := e.gen.Load().seq; got != gen {
		t.Fatalf("edit published generation %d for a non-resident module (installed %d)", got, gen)
	}
}
