package server

import (
	"context"
	"runtime"
	runtimemetrics "runtime/metrics"
	"time"

	"tbaa/internal/fault"
)

// heapBytes samples live heap usage via runtime/metrics. This is the
// number the memory watermark compares against MemLimit: bytes held by
// live and not-yet-swept heap objects, which is what resident modules
// and their analyzers actually cost.
func heapBytes() int64 {
	sample := []runtimemetrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	runtimemetrics.Read(sample)
	if sample[0].Value.Kind() != runtimemetrics.KindUint64 {
		return 0
	}
	return int64(sample[0].Value.Uint64())
}

// CheckMemory runs one watermark check: if the live heap exceeds
// MemLimit the server enters memory pressure — uploads are shed with
// 503 + Retry-After and /readyz answers unready — and least-recently-
// used modules are evicted until the heap drops to the low watermark
// (80% of the limit) or nothing is left to evict. The gap between the
// two watermarks is hysteresis: pressure clears only at the low mark,
// so the server does not flap between shedding and admitting while the
// heap hovers at the limit.
//
// Queries against resident modules keep answering throughout: shedding
// new state while serving existing state is the degradation contract.
//
// Tests call this directly; WatchMemory drives it on a ticker.
func (s *Server) CheckMemory() {
	if s.cfg.MemLimit <= 0 {
		return
	}
	limit := s.cfg.MemLimit
	low := limit * 4 / 5
	heap := s.sampleHeap()
	// An injected breach simulates crossing the limit without the cost
	// (and test flakiness) of actually allocating past it. The synthetic
	// heap cannot shrink through eviction, so the loop below evicts
	// exactly one module and leaves pressure set; the next un-injected
	// check observes the real heap and clears it. The injection budget
	// is consumed only while something is resident — a breach with
	// nothing to evict would demonstrate nothing, and harnesses arm the
	// fault before their upload lands.
	injected := s.reg.Resident.Load() > 0 && fault.Hit(fault.MemPressure)
	if injected && heap <= limit {
		heap = limit + 1
	}
	if heap <= low {
		s.pressure.Store(false)
		return
	}
	if heap <= limit {
		// Between the watermarks: keep whatever state pressure is in.
		return
	}
	s.pressure.Store(true)
	for heap > low {
		if !s.cache.evictLRU() {
			break
		}
		s.reg.MemoryEvictions.Add(1)
		if injected {
			break
		}
		runtime.GC()
		heap = s.sampleHeap()
	}
	if !injected && heap <= low {
		s.pressure.Store(false)
	}
}

// WatchMemory runs CheckMemory every MemCheckInterval until ctx is
// done. cmd/tbaad starts it alongside the HTTP listener when a memory
// limit is configured.
func (s *Server) WatchMemory(ctx context.Context) {
	if s.cfg.MemLimit <= 0 {
		return
	}
	t := time.NewTicker(s.cfg.MemCheckInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.CheckMemory()
		}
	}
}
