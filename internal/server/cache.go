package server

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"

	"tbaa"
	"tbaa/internal/artifact"
	"tbaa/internal/metrics"
)

// errNotResident reports that the module a request named was evicted
// (or never uploaded). handleEdit maps it to the same 404 resolve
// answers for an unknown hash.
var errNotResident = errors.New("module not resident")

// generation is one immutable compiled lifetime of an uploaded module:
// the Module itself plus the Analyzers lazily built from it, one per
// requested configuration. A re-upload of the same hash installs a
// fresh generation; requests that resolved the old one keep answering
// on it until they finish, so a batch never mixes state from two
// generations.
type generation struct {
	seq  uint64
	mod  *tbaa.Module
	file string

	// Artifact-cache plumbing, shared by every generation of an entry:
	// the disk tier's directory ("" disables it), the server counters,
	// and the entry's dirty latch — set once the module has been edited
	// in place, after which its on-disk key no longer describes its
	// semantics and the disk tier must be bypassed.
	cacheDir string
	reg      *metrics.Registry
	dirty    *atomic.Bool

	mu        sync.Mutex
	analyzers map[analyzerKey]*tbaa.Analyzer
}

// analyzerKey identifies one analyzer configuration within a
// generation. Every distinct (level, open-world) pair gets its own
// lazily built Analyzer.
type analyzerKey struct {
	level tbaa.Level
	open  bool
}

// analyzer returns the generation's Analyzer for the key, building and
// memoizing it on first use. Stats is attached to every analyzer of
// the entry so per-module counters aggregate across configurations.
//
// With a cache directory configured the build goes through the disk
// tier — a warm restart decodes the persisted snapshot instead of
// re-analyzing — unless the entry is dirty (edited since install):
// then the on-disk key names semantics the module no longer has, so
// the build is forced from scratch and nothing is written back.
func (g *generation) analyzer(key analyzerKey, stats *tbaa.Stats) (*tbaa.Analyzer, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if a, ok := g.analyzers[key]; ok {
		return a, nil
	}
	opts := []tbaa.Option{
		tbaa.WithLevel(key.level),
		tbaa.WithOpenWorld(key.open),
		tbaa.WithStats(stats),
	}
	if g.cacheDir != "" && !g.dirty.Load() {
		opts = append(opts, tbaa.WithArtifactCache(g.cacheDir))
	}
	a, err := g.mod.NewAnalyzer(opts...)
	if err != nil {
		return nil, err
	}
	switch a.ArtifactStatus() {
	case tbaa.ArtifactHit:
		g.reg.ArtifactHits.Add(1)
	case tbaa.ArtifactMiss:
		g.reg.ArtifactMisses.Add(1)
	case tbaa.ArtifactInvalid:
		g.reg.ArtifactInvalid.Add(1)
	}
	g.analyzers[key] = a
	return a, nil
}

// entry is one resident module: its content hash, the current
// generation behind an atomic pointer (readers load it once and stay
// on it), and the per-module session stats every generation's
// analyzers share.
type entry struct {
	hash  string
	gen   atomic.Pointer[generation]
	stats *tbaa.Stats

	// quar tracks recovered panics per analyzer configuration and
	// refuses quarantined ones; a force re-upload (install's swap path)
	// clears it along with the dirty latch.
	quar quarantine

	// dirty latches when an edit lands: the entry's semantics have
	// diverged from the source its hash names, so persisted artifacts
	// under that key must be neither served nor written. A re-upload
	// (install's swap path) replaces the module with a pristine compile
	// of the hash's source and clears the latch.
	dirty atomic.Bool

	// editMu serializes edits to this module: racing edits (to the
	// same or different procedures) apply one at a time, each
	// advancing the generation, so every analyzer sees the same edit
	// order and the module converges to the last write.
	editMu sync.Mutex
}

// edit applies a one-procedure replacement to the entry's current
// generation: the edit is checked once against the shared module, every
// analyzer configuration built so far is incrementally re-analyzed, and
// a successor generation is published. Configurations not yet built
// need no replay — they lower from the shared module, which already
// carries the edit. In-flight requests hold the generation pointer (and
// each analyzer's published snapshot) they resolved and are undisturbed.
//
// Before anything mutates, the entry is marked dirty and its persisted
// artifacts are invalidated on disk: from this point the hash's key
// names semantics the module no longer has, and a daemon restart must
// rebuild from source rather than decode a stale snapshot.
//
// The successor generation is published only if the entry is still
// resident — an LRU eviction racing the edit must not resurrect a
// module the cache already dropped. A lost race reports errNotResident
// (mapped to 404), exactly as if the eviction had won before the edit
// arrived.
func (c *moduleCache) edit(e *entry, src string) (gen uint64, proc string, reanalyzed int, err error) {
	e.editMu.Lock()
	defer e.editMu.Unlock()
	old := e.gen.Load()
	pe, err := old.mod.EditProc(src)
	if err != nil {
		return 0, "", 0, err
	}
	e.dirty.Store(true)
	if c.cacheDir != "" {
		// Best-effort: a leftover artifact is caught by the in-memory
		// dirty latch while this process lives, and a restart recompiles
		// the pristine source the artifact correctly describes.
		_ = artifact.Remove(c.cacheDir, e.hash)
	}
	old.mu.Lock()
	built := make(map[analyzerKey]*tbaa.Analyzer, len(old.analyzers))
	for k, a := range old.analyzers {
		built[k] = a
	}
	old.mu.Unlock()
	for _, a := range built {
		if err := a.ApplyEdit(pe); err != nil {
			return 0, "", 0, err
		}
	}
	next := &generation{
		seq: old.seq + 1, mod: old.mod, file: old.file,
		cacheDir: old.cacheDir, reg: old.reg, dirty: old.dirty,
		analyzers: built,
	}
	if !c.publish(e, next) {
		return 0, "", 0, errNotResident
	}
	return next.seq, pe.Proc(), len(built), nil
}

// publish stores next as e's current generation iff e is still the
// resident entry for its hash. The check and the store happen under
// the cache lock, so an eviction (or a swap-in of a different entry
// object under the same hash) can never interleave with a publish it
// should have suppressed.
func (c *moduleCache) publish(e *entry, next *generation) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[e.hash]
	if !ok || el.Value.(*entry) != e {
		return false
	}
	e.gen.Store(next)
	return true
}

// moduleCache is the LRU-bounded set of resident modules, keyed by
// content hash. The mutex guards only the map and recency list —
// compilation happens outside it, and query traffic touches it only
// for the O(1) lookup.
type moduleCache struct {
	reg *metrics.Registry

	// cacheDir is the disk-backed artifact tier shared by every entry;
	// "" keeps the cache purely in-memory.
	cacheDir string

	// quarAfter is the panic threshold each entry's quarantine inherits.
	quarAfter int

	mu      sync.Mutex
	max     int
	entries map[string]*list.Element // of *entry
	order   *list.List               // front = most recently used
}

func newModuleCache(max int, cacheDir string, quarAfter int, reg *metrics.Registry) *moduleCache {
	return &moduleCache{
		reg:       reg,
		cacheDir:  cacheDir,
		quarAfter: quarAfter,
		max:       max,
		entries:   make(map[string]*list.Element),
		order:     list.New(),
	}
}

// lookup returns the resident entry for hash, refreshing its recency,
// or nil.
func (c *moduleCache) lookup(hash string) *entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[hash]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry)
}

// install makes the compiled module resident under its hash. If the
// hash is already resident the new compilation is swapped in as the
// next generation (in-flight requests finish on the one they hold) and
// install reports swapped=true; otherwise a new entry is created,
// evicting the least-recently-used module when the cache is full.
func (c *moduleCache) install(mod *tbaa.Module, file string) (e *entry, gen uint64, swapped bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	hash := mod.Hash()
	if el, ok := c.entries[hash]; ok {
		e = el.Value.(*entry)
		old := e.gen.Load()
		next := &generation{
			seq:       old.seq + 1,
			mod:       mod,
			file:      file,
			cacheDir:  c.cacheDir,
			reg:       c.reg,
			dirty:     &e.dirty,
			analyzers: make(map[analyzerKey]*tbaa.Analyzer),
		}
		e.gen.Store(next)
		// The swap installed a pristine compile of exactly the source the
		// hash names, so the artifact key describes the module again —
		// and whatever was panicking deserves a retry against the fresh
		// state, so the quarantine ledger resets too.
		e.dirty.Store(false)
		e.quar.clear()
		c.order.MoveToFront(el)
		return e, next.seq, true
	}
	for c.max > 0 && c.order.Len() >= c.max {
		if !c.evictLRULocked() {
			break
		}
		c.reg.Evictions.Add(1)
	}
	e = &entry{hash: hash, stats: &tbaa.Stats{}, quar: quarantine{threshold: c.quarAfter}}
	first := &generation{
		seq: 1, mod: mod, file: file,
		cacheDir: c.cacheDir, reg: c.reg, dirty: &e.dirty,
		analyzers: make(map[analyzerKey]*tbaa.Analyzer),
	}
	e.gen.Store(first)
	c.entries[hash] = c.order.PushFront(e)
	c.reg.Resident.Add(1)
	return e, first.seq, false
}

// evictLRULocked drops the least-recently-used module, reporting false
// when nothing is resident. It decrements the resident gauge but not an
// eviction counter: the capacity path (install) and the memory
// watermark (CheckMemory) account their evictions separately —
// tbaad_evictions_total versus tbaad_memory_evictions_total.
func (c *moduleCache) evictLRULocked() bool {
	lru := c.order.Back()
	if lru == nil {
		return false
	}
	victim := lru.Value.(*entry)
	c.order.Remove(lru)
	delete(c.entries, victim.hash)
	c.reg.Resident.Add(-1)
	return true
}

// evictLRU is evictLRULocked under the cache lock, for callers outside
// the cache (the memory watermark).
func (c *moduleCache) evictLRU() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictLRULocked()
}

// moduleInfo is one row of the resident-module listing.
type moduleInfo struct {
	Hash       string `json:"hash"`
	File       string `json:"file"`
	Generation uint64 `json:"generation"`
	Queries    uint64 `json:"queries"`
	Batches    uint64 `json:"batches"`
}

// list returns the resident modules, most recently used first.
func (c *moduleCache) list() []moduleInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]moduleInfo, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		g := e.gen.Load()
		out = append(out, moduleInfo{
			Hash:       e.hash,
			File:       g.file,
			Generation: g.seq,
			Queries:    e.stats.Queries(),
			Batches:    e.stats.Batches(),
		})
	}
	return out
}
