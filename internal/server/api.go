package server

// The wire protocol: JSON request/response bodies for the v1
// endpoints. cmd/tbaactl marshals the same types, so client and
// server cannot disagree about field names.
//
//	POST /v1/modules                          UploadRequest  → UploadResponse
//	GET  /v1/modules                          —              → ModulesResponse
//	POST /v1/modules/{hash}/edit              EditRequest    → EditResponse
//	POST /v1/modules/{hash}/mayalias          QueryRequest   → QueryResponse
//	POST /v1/modules/{hash}/mayalias-batch    BatchRequest   → BatchResponse
//	POST /v1/modules/{hash}/countpairs        LevelRequest   → CountPairsResponse
//	GET  /metrics                             Prometheus text
//	GET  /healthz                             "ok"
//
// Errors are ErrorResponse with a matching HTTP status: 400 for a
// malformed body or unknown access path, 404 for an unknown module
// hash, 422 for a module that fails to compile (Diagnostics carries
// the frontend errors), 429 for an over-limit batch, 503 when the
// in-flight limit sheds the request, and 504 when the request timeout
// expires mid-batch.

// UploadRequest submits MiniM3 source for compilation. File is the
// name diagnostics are reported under; it does not affect the hash.
// Force skips the resident-cache fast path: the source is recompiled
// and, if its hash is already resident, atomically swapped in as the
// next generation — requests in flight finish on the generation they
// hold. (The bytes are the same, so verdicts never change; Force
// exists to drop a module's accumulated analyzer state.)
type UploadRequest struct {
	File   string `json:"file"`
	Source string `json:"source"`
	Force  bool   `json:"force,omitempty"`
}

// UploadResponse describes the now-resident module. Cached reports
// whether the hash was already resident (the upload was served from
// cache); Generation increments each time the same hash is
// re-uploaded and its compiled state swapped.
type UploadResponse struct {
	Hash       string `json:"hash"`
	File       string `json:"file"`
	Cached     bool   `json:"cached"`
	Generation uint64 `json:"generation"`
	Resident   int64  `json:"resident"`
}

// EditRequest is the "edit" upload mode: instead of re-uploading and
// recompiling the whole module, Source carries one PROCEDURE
// declaration that replaces the resident module's procedure of the
// same name. The edit is type-checked against the frozen module
// (declared type names only, signature unchanged) and every built
// analyzer re-analyzes incrementally from the one-procedure dirty set.
// An accepted edit advances the module's generation: requests in
// flight finish on the generation (and published snapshot) they
// resolved, requests arriving after the response see only edited
// verdicts. A rejected edit (422) leaves the module untouched.
type EditRequest struct {
	Source string `json:"source"`
}

// EditResponse describes an applied edit. Reanalyzed counts the
// already-built analyzer configurations that were incrementally
// rebuilt; configurations not yet built will lower the edited module
// on first use.
type EditResponse struct {
	Hash       string `json:"hash"`
	Proc       string `json:"proc"`
	Generation uint64 `json:"generation"`
	Reanalyzed int    `json:"reanalyzed"`
}

// ModulesResponse lists resident modules, most recently used first.
type ModulesResponse struct {
	Modules []ModuleInfo `json:"modules"`
}

// ModuleInfo is one resident module and its session counters.
type ModuleInfo struct {
	Hash       string `json:"hash"`
	File       string `json:"file"`
	Generation uint64 `json:"generation"`
	Queries    uint64 `json:"queries"`
	Batches    uint64 `json:"batches"`
}

// LevelRequest selects the analyzer configuration a query runs
// against. Level accepts the tbaa.ParseLevel names ("typedecl" …
// "iptyperefs"); empty means the default SMFieldTypeRefs.
type LevelRequest struct {
	Level string `json:"level,omitempty"`
	Open  bool   `json:"open,omitempty"`
}

// QueryRequest asks whether two named access paths may alias.
type QueryRequest struct {
	LevelRequest
	P string `json:"p"`
	Q string `json:"q"`
}

// QueryResponse answers one may-alias query. Generation identifies
// the module generation that produced the verdict.
type QueryResponse struct {
	MayAlias   bool   `json:"may_alias"`
	Generation uint64 `json:"generation"`
}

// BatchRequest asks for verdicts on a vector of pairs, answered
// against one consistent snapshot.
type BatchRequest struct {
	LevelRequest
	Pairs []PairJSON `json:"pairs"`
}

// PairJSON names two access paths.
type PairJSON struct {
	P string `json:"p"`
	Q string `json:"q"`
}

// VerdictJSON is one pair's answer. Error is the per-pair failure
// ("no access path …", or the context error if the batch timed out
// mid-flight); MayAlias is meaningful only when Error is empty.
type VerdictJSON struct {
	P        string `json:"p"`
	Q        string `json:"q"`
	MayAlias bool   `json:"may_alias"`
	Error    string `json:"error,omitempty"`
}

// BatchResponse carries the positional verdicts plus the generation
// and the module's session stats after the batch. Every verdict in
// one response comes from the same generation's snapshot.
type BatchResponse struct {
	Verdicts   []VerdictJSON `json:"verdicts"`
	Generation uint64        `json:"generation"`
	Stats      SessionStats  `json:"stats"`
}

// SessionStats snapshots a module's per-session counters (the
// tbaa.Stats attached to its analyzers).
type SessionStats struct {
	Queries uint64 `json:"queries"`
	Aliased uint64 `json:"aliased"`
	Batches uint64 `json:"batches"`
}

// CountPairsResponse carries the Table 5 static pair metrics.
type CountPairsResponse struct {
	References int    `json:"references"`
	Local      int    `json:"local"`
	Global     int    `json:"global"`
	Generation uint64 `json:"generation"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error       string   `json:"error"`
	Diagnostics []string `json:"diagnostics,omitempty"`
}
