package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tbaa"
	"tbaa/internal/metrics"
)

// srcModule builds a small distinct module per index: each has fields
// i and next on a two-type hierarchy, so it compiles, has access
// paths, and hashes uniquely.
func srcModule(i int) (file, src string) {
	name := fmt.Sprintf("M%d", i)
	return name + ".m3", fmt.Sprintf(`MODULE %s;
TYPE
  T = OBJECT i: INTEGER; next: T END;
  S = T OBJECT j: INTEGER END;
VAR x: T; y: S; sum: INTEGER;
BEGIN
  x := NEW(T);
  y := NEW(S);
  x.i := %d;
  y.j := 2;
  sum := x.i + y.j
END %s.
`, name, i, name)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts v and decodes the response body into out (when
// non-nil), returning the status code.
func postJSON(t *testing.T, url string, v, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response (status %d): %v", url, resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

func upload(t *testing.T, base, file, src string) UploadResponse {
	t.Helper()
	var resp UploadResponse
	status := postJSON(t, base+"/v1/modules", UploadRequest{File: file, Source: src}, &resp)
	if status != http.StatusCreated && status != http.StatusOK {
		t.Fatalf("upload %s: status %d", file, status)
	}
	return resp
}

// analyzerPaths returns some access-path names of a module via the
// in-process API, for building query vectors.
func analyzerPaths(t *testing.T, file, src string) (*tbaa.Analyzer, []string) {
	t.Helper()
	a, err := tbaa.New(file, src)
	if err != nil {
		t.Fatal(err)
	}
	names := a.Paths()
	if len(names) < 2 {
		t.Fatalf("%s: too few access paths (%d)", file, len(names))
	}
	return a, names
}

// allPairs builds every ordered pair over the names.
func allPairs(names []string) []PairJSON {
	var out []PairJSON
	for _, p := range names {
		for _, q := range names {
			out = append(out, PairJSON{P: p, Q: q})
		}
	}
	return out
}

// TestUploadQueryLifecycle drives the primary path: upload a module,
// query it singly and in batch, and check every verdict equals the
// in-process Analyzer's answer.
func TestUploadQueryLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	file, src := srcModule(1)
	up := upload(t, ts.URL, file, src)
	if up.Hash != tbaa.ModuleHash(src) {
		t.Fatalf("upload hash %s != ModuleHash %s", up.Hash, tbaa.ModuleHash(src))
	}
	if up.Cached || up.Generation != 1 || up.Resident != 1 {
		t.Fatalf("first upload: %+v", up)
	}

	a, names := analyzerPaths(t, file, src)
	pairs := allPairs(names)

	// Single queries.
	for _, p := range pairs[:4] {
		var qr QueryResponse
		status := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", QueryRequest{P: p.P, Q: p.Q}, &qr)
		if status != http.StatusOK {
			t.Fatalf("mayalias %v: status %d", p, status)
		}
		want, err := a.MayAlias(p.P, p.Q)
		if err != nil {
			t.Fatal(err)
		}
		if qr.MayAlias != want {
			t.Fatalf("mayalias(%s, %s) = %v, in-process says %v", p.P, p.Q, qr.MayAlias, want)
		}
	}

	// The whole cross product as one batch.
	var br BatchResponse
	status := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias-batch", BatchRequest{Pairs: pairs}, &br)
	if status != http.StatusOK {
		t.Fatalf("batch: status %d", status)
	}
	if len(br.Verdicts) != len(pairs) {
		t.Fatalf("batch returned %d verdicts for %d pairs", len(br.Verdicts), len(pairs))
	}
	for i, v := range br.Verdicts {
		if v.Error != "" {
			t.Fatalf("verdict %d (%s, %s): %s", i, v.P, v.Q, v.Error)
		}
		want, err := a.MayAlias(v.P, v.Q)
		if err != nil {
			t.Fatal(err)
		}
		if v.MayAlias != want {
			t.Fatalf("batch verdict (%s, %s) = %v, in-process says %v", v.P, v.Q, v.MayAlias, want)
		}
	}
	if br.Stats.Queries == 0 || br.Stats.Batches == 0 {
		t.Fatalf("session stats not attached: %+v", br.Stats)
	}

	// CountPairs matches the in-process sweep.
	var cp CountPairsResponse
	if status := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/countpairs", LevelRequest{}, &cp); status != http.StatusOK {
		t.Fatalf("countpairs: status %d", status)
	}
	want := a.CountPairs()
	if cp.References != want.References || cp.Local != want.Local || cp.Global != want.Global {
		t.Fatalf("countpairs = %+v, in-process says %+v", cp, want)
	}

	// Level selection: every parseable level answers.
	for _, lvl := range []string{"typedecl", "fieldtypedecl", "smfieldtyperefs", "fstyperefs", "iptyperefs"} {
		var qr QueryResponse
		req := QueryRequest{LevelRequest: LevelRequest{Level: lvl}, P: names[0], Q: names[1]}
		if status := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", req, &qr); status != http.StatusOK {
			t.Fatalf("mayalias at %s: status %d", lvl, status)
		}
	}

	// Counters moved.
	if s.Metrics().Queries.Load() == 0 || s.Metrics().Batches.Load() != 1 {
		t.Fatalf("registry counters: queries=%d batches=%d",
			s.Metrics().Queries.Load(), s.Metrics().Batches.Load())
	}
}

// TestUploadCachedAndReupload pins the cache-hit and generation-swap
// behavior: same bytes hit the cache, an explicit re-install bumps the
// generation.
func TestUploadCachedAndReupload(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	file, src := srcModule(2)
	up1 := upload(t, ts.URL, file, src)
	up2 := upload(t, ts.URL, file, src)
	if !up2.Cached || up2.Generation != up1.Generation {
		t.Fatalf("re-upload of same bytes should hit the cache: %+v", up2)
	}
	if got := s.Metrics().CacheHits.Load(); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
	// Different file name, same source: same hash, still cached.
	var resp UploadResponse
	postJSON(t, ts.URL+"/v1/modules", UploadRequest{File: "other.m3", Source: src}, &resp)
	if resp.Hash != up1.Hash || !resp.Cached {
		t.Fatalf("file name leaked into the cache key: %+v", resp)
	}
}

func TestUploadErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Syntax error → 422 with diagnostics.
	var er ErrorResponse
	status := postJSON(t, ts.URL+"/v1/modules", UploadRequest{File: "bad.m3", Source: "MODULE ???"}, &er)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("bad module: status %d, want 422", status)
	}
	if er.Error == "" || len(er.Diagnostics) == 0 {
		t.Fatalf("bad module: want diagnostics, got %+v", er)
	}
	// Malformed body → 400.
	resp, err := http.Post(ts.URL+"/v1/modules", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	file, src := srcModule(3)
	up := upload(t, ts.URL, file, src)

	// Unknown hash → 404.
	var er ErrorResponse
	if status := postJSON(t, ts.URL+"/v1/modules/deadbeef/mayalias", QueryRequest{P: "x.i", Q: "y.j"}, &er); status != http.StatusNotFound {
		t.Fatalf("unknown hash: status %d, want 404", status)
	}
	// Unknown access path → 400.
	if status := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", QueryRequest{P: "no.such", Q: "x.i"}, &er); status != http.StatusBadRequest {
		t.Fatalf("unknown path: status %d, want 400", status)
	}
	// Unknown level → 400.
	req := QueryRequest{LevelRequest: LevelRequest{Level: "bogus"}, P: "x.i", Q: "x.i"}
	if status := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", req, &er); status != http.StatusBadRequest {
		t.Fatalf("unknown level: status %d, want 400", status)
	}
	// Unknown path inside a batch: per-verdict error, 200 overall.
	var br BatchResponse
	breq := BatchRequest{Pairs: []PairJSON{{P: "no.such", Q: "x.i"}}}
	if status := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias-batch", breq, &br); status != http.StatusOK {
		t.Fatalf("batch with bad path: status %d, want 200", status)
	}
	if br.Verdicts[0].Error == "" {
		t.Fatal("batch verdict for unknown path should carry an error")
	}
}

// TestLRUEviction uploads more modules than fit and checks the
// least-recently-used is evicted, the survivors stay queryable, and
// the evicted hash answers 404 until re-uploaded.
func TestLRUEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxModules: 2})
	var ups []UploadResponse
	var srcs []string
	for i := 10; i < 13; i++ {
		file, src := srcModule(i)
		ups = append(ups, upload(t, ts.URL, file, src))
		srcs = append(srcs, src)
	}
	if got := s.Metrics().Evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := s.Metrics().Resident.Load(); got != 2 {
		t.Fatalf("resident = %d, want 2", got)
	}
	// The first (least recently used) module is gone.
	var er ErrorResponse
	if status := postJSON(t, ts.URL+"/v1/modules/"+ups[0].Hash+"/mayalias", QueryRequest{P: "x.i", Q: "x.i"}, &er); status != http.StatusNotFound {
		t.Fatalf("evicted module: status %d, want 404", status)
	}
	// The newer two still answer.
	for _, up := range ups[1:] {
		var qr QueryResponse
		if status := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", QueryRequest{P: "x.i", Q: "x.i"}, &qr); status != http.StatusOK {
			t.Fatalf("resident module %s: status %d", up.Hash, status)
		}
	}
	// Re-uploading the evicted source recompiles and evicts the next LRU.
	re := upload(t, ts.URL, "M10.m3", srcs[0])
	if re.Cached || re.Generation != 1 {
		t.Fatalf("re-upload after eviction should compile fresh: %+v", re)
	}
	if got := s.Metrics().Evictions.Load(); got != 2 {
		t.Fatalf("evictions = %d, want 2", got)
	}
	// Querying a module refreshes its recency: touch the oldest
	// resident, upload a new one, and the untouched module is the victim.
	rows := s.cache.list()
	oldest := rows[len(rows)-1].Hash
	var qr QueryResponse
	postJSON(t, ts.URL+"/v1/modules/"+oldest+"/mayalias", QueryRequest{P: "x.i", Q: "x.i"}, &qr)
	file, src := srcModule(14)
	upload(t, ts.URL, file, src)
	for _, m := range s.cache.list() {
		if m.Hash == oldest {
			return // survived, as recency demands
		}
	}
	t.Fatal("recently queried module was evicted instead of the stale one")
}

// TestBatchShedding pins the 429 on over-limit batches.
func TestBatchShedding(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxBatch: 4})
	file, src := srcModule(20)
	up := upload(t, ts.URL, file, src)
	big := BatchRequest{Pairs: make([]PairJSON, 5)}
	for i := range big.Pairs {
		big.Pairs[i] = PairJSON{P: "x.i", Q: "x.i"}
	}
	var er ErrorResponse
	if status := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias-batch", big, &er); status != http.StatusTooManyRequests {
		t.Fatalf("oversize batch: status %d, want 429", status)
	}
	if s.Metrics().ShedBatch.Load() != 1 {
		t.Fatalf("shed counter = %d, want 1", s.Metrics().ShedBatch.Load())
	}
	// At the limit exactly: served.
	ok := BatchRequest{Pairs: big.Pairs[:4]}
	var br BatchResponse
	if status := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias-batch", ok, &br); status != http.StatusOK {
		t.Fatalf("at-limit batch: status %d, want 200", status)
	}
}

// TestInflightShedding saturates the in-flight cap with slow uploads
// and checks the excess request is shed with 503 + Retry-After.
func TestInflightShedding(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1})
	// Hold the single slot with an upload whose body never finishes
	// arriving until we let it.
	pr, pw := newBlockedBody()
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequest("POST", ts.URL+"/v1/modules", pr)
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Wait until the slot is actually held.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.inflight) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never acquired the in-flight slot")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/v1/modules", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity request: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if s.Metrics().ShedInflight.Load() != 1 {
		t.Fatalf("inflight shed counter = %d, want 1", s.Metrics().ShedInflight.Load())
	}
	pw.release()
	<-done
}

// blockedBody is a request body that stalls until released, for
// holding a request slot open.
type blockedBody struct{ ch chan struct{} }

func newBlockedBody() (*blockedBody, *blockedBody) {
	b := &blockedBody{ch: make(chan struct{})}
	return b, b
}

func (b *blockedBody) Read(p []byte) (int, error) {
	<-b.ch
	return 0, context.Canceled
}
func (b *blockedBody) Close() error { return nil }
func (b *blockedBody) release()     { close(b.ch) }

// TestMetricsEndpoint scrapes /metrics after traffic and checks the
// shared-vocabulary series are present with moving values.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	file, src := srcModule(30)
	up := upload(t, ts.URL, file, src)
	var qr QueryResponse
	postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias", QueryRequest{P: "x.i", Q: "y.j"}, &qr)
	var br BatchResponse
	postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias-batch",
		BatchRequest{Pairs: []PairJSON{{P: "x.i", Q: "x.i"}}}, &br)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"tbaad_queries_total 2",
		"tbaad_modules_resident 1",
		"tbaad_cache_misses_total 1",
		fmt.Sprintf("tbaad_query_duration_ns_count{op=%q} 1", metrics.OpMayAlias),
		fmt.Sprintf("tbaad_query_duration_ns_count{op=%q} 1", metrics.OpMayAliasBatch),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
	// Health endpoint answers.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", hr.StatusCode)
	}
}

// TestRequestTimeout pins the 504 on a batch that cannot finish inside
// the request timeout. The timeout is enforced through context between
// pairs, so an absurdly small timeout with a large batch trips it.
func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	file, src := srcModule(31)
	up := upload(t, ts.URL, file, src)
	_, names := analyzerPaths(t, file, src)
	pairs := make([]PairJSON, 2048)
	for i := range pairs {
		pairs[i] = PairJSON{P: names[i%len(names)], Q: names[(i+1)%len(names)]}
	}
	var er ErrorResponse
	status := postJSON(t, ts.URL+"/v1/modules/"+up.Hash+"/mayalias-batch", BatchRequest{Pairs: pairs}, &er)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("timed-out batch: status %d, want 504", status)
	}
}

// TestModulesListing checks GET /v1/modules reflects recency order and
// session counters.
func TestModulesListing(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	fileA, srcA := srcModule(40)
	fileB, srcB := srcModule(41)
	upA := upload(t, ts.URL, fileA, srcA)
	upB := upload(t, ts.URL, fileB, srcB)
	var qr QueryResponse
	postJSON(t, ts.URL+"/v1/modules/"+upA.Hash+"/mayalias", QueryRequest{P: "x.i", Q: "x.i"}, &qr)

	var mr ModulesResponse
	resp, err := http.Get(ts.URL + "/v1/modules")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Modules) != 2 {
		t.Fatalf("listing has %d modules, want 2", len(mr.Modules))
	}
	// A was queried after B's upload, so A is most recent.
	if mr.Modules[0].Hash != upA.Hash || mr.Modules[1].Hash != upB.Hash {
		t.Fatalf("listing order %s, %s; want %s, %s",
			mr.Modules[0].Hash, mr.Modules[1].Hash, upA.Hash, upB.Hash)
	}
	if mr.Modules[0].Queries != 1 {
		t.Fatalf("module A session queries = %d, want 1", mr.Modules[0].Queries)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}
