package server

import (
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"tbaa"
)

// TestConcurrentBatchesDuringReupload is the issue's race gate: 8
// client goroutines issue MayAliasBatch requests against two resident
// modules while another goroutine re-uploads one of them in a loop,
// swapping generations mid-traffic. Every batch must come back
// internally coherent — one generation for all its verdicts, verdicts
// byte-equal to the in-process Analyzer's answers — and the whole
// dance must be clean under -race.
func TestConcurrentBatchesDuringReupload(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Two resident modules, queried concurrently.
	fileA, srcA := srcModule(50)
	fileB, srcB := srcModule(51)
	upA := upload(t, ts.URL, fileA, srcA)
	upB := upload(t, ts.URL, fileB, srcB)

	// In-process ground truth per module. The re-uploads swap in fresh
	// compilations of the same bytes, so the expected verdicts never
	// change — any drift is a mixed or torn snapshot.
	type truth struct {
		hash  string
		pairs []PairJSON
		want  []bool
	}
	groundTruth := func(up UploadResponse, file, src string) truth {
		a, names := analyzerPaths(t, file, src)
		pairs := allPairs(names)
		want := make([]bool, len(pairs))
		for i, p := range pairs {
			v, err := a.MayAlias(p.P, p.Q)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = v
		}
		return truth{hash: up.Hash, pairs: pairs, want: want}
	}
	truths := []truth{
		groundTruth(upA, fileA, srcA),
		groundTruth(upB, fileB, srcB),
	}

	const (
		clients          = 8
		batchesPerClient = 50
		reuploads        = 100
	)
	var wg sync.WaitGroup
	var maxGen atomic.Uint64

	// The writer: force-re-upload module A in a loop over plain HTTP.
	// Each POST recompiles the source and atomically swaps in the next
	// generation while the clients' batches are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reuploads; i++ {
			var resp UploadResponse
			status := postJSON(t, ts.URL+"/v1/modules",
				UploadRequest{File: fileA, Source: srcA, Force: true}, &resp)
			if status != http.StatusCreated {
				t.Errorf("forced re-upload %d: status %d", i, status)
				return
			}
			for {
				cur := maxGen.Load()
				if resp.Generation <= cur || maxGen.CompareAndSwap(cur, resp.Generation) {
					break
				}
			}
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tr := truths[c%len(truths)]
			for i := 0; i < batchesPerClient; i++ {
				var br BatchResponse
				status := postJSON(t, ts.URL+"/v1/modules/"+tr.hash+"/mayalias-batch",
					BatchRequest{Pairs: tr.pairs}, &br)
				if status != http.StatusOK {
					t.Errorf("client %d batch %d: status %d", c, i, status)
					return
				}
				if len(br.Verdicts) != len(tr.pairs) {
					t.Errorf("client %d: %d verdicts for %d pairs", c, len(br.Verdicts), len(tr.pairs))
					return
				}
				if br.Generation == 0 {
					t.Errorf("client %d: batch answered with no generation", c)
					return
				}
				for j, v := range br.Verdicts {
					if v.Error != "" {
						t.Errorf("client %d pair (%s,%s): %s", c, v.P, v.Q, v.Error)
						return
					}
					if v.MayAlias != tr.want[j] {
						t.Errorf("client %d pair (%s,%s): got %v, in-process says %v (generation %d)",
							c, v.P, v.Q, v.MayAlias, tr.want[j], br.Generation)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()

	// The swap actually happened under traffic: module A's final
	// generation moved past the initial upload.
	if got := maxGen.Load(); got < 2 {
		t.Fatalf("re-upload loop never swapped a generation (max seen %d)", got)
	}
	// And a fresh batch answers on the newest generation.
	var br BatchResponse
	postJSON(t, ts.URL+"/v1/modules/"+truths[0].hash+"/mayalias-batch",
		BatchRequest{Pairs: truths[0].pairs}, &br)
	if br.Generation < maxGen.Load() {
		t.Fatalf("post-swap batch answered on generation %d, want >= %d", br.Generation, maxGen.Load())
	}
}

// TestConcurrentUploadsSameHash races 8 goroutines uploading the same
// source: exactly one entry must become resident, and every response
// must name the same hash.
func TestConcurrentUploadsSameHash(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	file, src := srcModule(60)
	want := tbaa.ModuleHash(src)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp UploadResponse
			status := postJSON(t, ts.URL+"/v1/modules", UploadRequest{File: file, Source: src}, &resp)
			if status != http.StatusOK && status != http.StatusCreated {
				t.Errorf("upload status %d", status)
				return
			}
			if resp.Hash != want {
				t.Errorf("hash %s, want %s", resp.Hash, want)
			}
		}()
	}
	wg.Wait()
	if got := s.Metrics().Resident.Load(); got != 1 {
		t.Fatalf("resident = %d after racing identical uploads, want 1", got)
	}
}
