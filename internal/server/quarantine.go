package server

import (
	"fmt"
	"sync"
)

// quarantine isolates crash-looping analyzer configurations. Panics
// while building or querying one (module, level, open) configuration
// are recovered and counted per configuration; once the count reaches
// the threshold the configuration is quarantined — subsequent queries
// against it are refused up front with 422 and the quarantine reason
// instead of re-entering the panicking path. Other configurations of
// the same module, and every other module, keep answering: one bad
// (module, configuration) pair is expendable, the daemon is not.
//
// A force re-upload of the module clears its quarantine (install's
// swap path calls clear): the operator has declared the state worth
// rebuilding, and a pristine recompile is the cleanest slate there is.
type quarantine struct {
	// threshold is how many panics one configuration survives before
	// quarantining; immutable after the entry is created.
	threshold int

	mu      sync.Mutex
	panics  map[analyzerKey]int
	reasons map[analyzerKey]string
}

// record counts one recovered panic against the configuration,
// quarantining it when the count reaches the threshold. It returns the
// new count and whether this call crossed the threshold (the caller
// bumps the quarantine counter exactly once per quarantined config).
func (q *quarantine) record(key analyzerKey, p any) (count int, quarantined bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.panics == nil {
		q.panics = make(map[analyzerKey]int)
		q.reasons = make(map[analyzerKey]string)
	}
	q.panics[key]++
	count = q.panics[key]
	if count >= q.threshold {
		if _, already := q.reasons[key]; !already {
			q.reasons[key] = fmt.Sprintf(
				"configuration quarantined after %d panics (last: %v); re-upload with force to clear", count, p)
			quarantined = true
		}
	}
	return count, quarantined
}

// blocked reports whether the configuration is quarantined and why.
func (q *quarantine) blocked(key analyzerKey) (string, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	reason, ok := q.reasons[key]
	return reason, ok
}

// clear lifts every quarantine and forgets the panic counts: the
// module has been force re-uploaded and recompiled from pristine
// source.
func (q *quarantine) clear() {
	q.mu.Lock()
	q.panics, q.reasons = nil, nil
	q.mu.Unlock()
}

// panicError is what guardConfig turns a recovered panic into: the
// handler answers 500 with this message while the quarantine ledger
// decides whether the configuration has panicked once too often.
type panicError struct {
	val   any
	count int
	limit int
}

func (e *panicError) Error() string {
	return fmt.Sprintf("internal panic (%d of %d tolerated before quarantine): %v", e.count, e.limit, e.val)
}

// guardConfig runs fn with panic isolation scoped to one analyzer
// configuration: a panic is recovered, counted globally
// (tbaad_panics_total) and against the configuration's quarantine
// ledger, and returned as a *panicError for the handler to map to a
// structured 500. The daemon never sees the panic.
func (s *Server) guardConfig(e *entry, key analyzerKey, fn func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			s.reg.Panics.Add(1)
			n, quarantined := e.quar.record(key, p)
			if quarantined {
				s.reg.Quarantines.Add(1)
			}
			err = &panicError{val: p, count: n, limit: e.quar.threshold}
		}
	}()
	return fn()
}
