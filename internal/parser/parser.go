// Package parser implements a recursive-descent parser for MiniM3.
package parser

import (
	"fmt"
	"strconv"

	"tbaa/internal/ast"
	"tbaa/internal/lexer"
	"tbaa/internal/token"
)

// Error is a syntax error.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

// ErrorList is a list of syntax errors; it implements error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	s := l[0].Error()
	if len(l) > 1 {
		s += fmt.Sprintf(" (and %d more)", len(l)-1)
	}
	return s
}

// Parse parses a MiniM3 module from src. file is used in positions.
func Parse(file, src string) (*ast.Module, error) {
	l := lexer.New(file, src)
	toks := l.All()
	p := &parser{toks: toks}
	for _, le := range l.Errors() {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	m := p.module()
	if len(p.errs) > 0 {
		return m, p.errs
	}
	return m, nil
}

type parser struct {
	toks []token.Token
	pos  int
	errs ErrorList
}

func (p *parser) cur() token.Token { return p.toks[p.pos] }
func (p *parser) kind() token.Kind { return p.toks[p.pos].Kind }
func (p *parser) peek() token.Kind {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1].Kind
	}
	return token.EOF
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	if len(p.errs) < 50 {
		p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.kind() != k {
		p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
		return token.Token{Kind: k, Pos: p.cur().Pos}
	}
	return p.next()
}

func (p *parser) accept(k token.Kind) bool {
	if p.kind() == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) ident() (string, token.Pos) {
	t := p.expect(token.IDENT)
	return t.Lit, t.Pos
}

// module = MODULE Ident ";" {Decl} [BEGIN StmtList] END Ident "."
func (p *parser) module() *ast.Module {
	p.expect(token.MODULE)
	name, npos := p.ident()
	p.expect(token.SEMICOLON)
	m := &ast.Module{Name: name, NamePos: npos}
	m.Decls = p.decls()
	if p.accept(token.BEGIN) {
		m.Body = p.stmtList(token.END)
	}
	p.expect(token.END)
	endName, epos := p.ident()
	if endName != name {
		p.errorf(epos, "module %s ends with END %s", name, endName)
	}
	p.expect(token.DOT)
	return m
}

func (p *parser) decls() []ast.Decl {
	var ds []ast.Decl
	for {
		switch p.kind() {
		case token.TYPE:
			p.next()
			for p.kind() == token.IDENT {
				name, npos := p.ident()
				p.expect(token.EQ)
				t := p.typeExpr()
				p.expect(token.SEMICOLON)
				ds = append(ds, &ast.TypeDecl{Name: name, Type: t, NamePos: npos})
			}
		case token.CONST:
			p.next()
			for p.kind() == token.IDENT {
				name, npos := p.ident()
				p.expect(token.EQ)
				v := p.expr()
				p.expect(token.SEMICOLON)
				ds = append(ds, &ast.ConstDecl{Name: name, Value: v, NamePos: npos})
			}
		case token.VAR:
			p.next()
			for p.kind() == token.IDENT {
				ds = append(ds, p.varDecl())
			}
		case token.PROCEDURE:
			ds = append(ds, p.procDecl())
		default:
			return ds
		}
	}
}

// varDecl = IdentList ":" TypeExpr [":=" Expr] ";"
func (p *parser) varDecl() *ast.VarDecl {
	names, npos := p.identList()
	p.expect(token.COLON)
	t := p.typeExpr()
	var init ast.Expr
	if p.accept(token.ASSIGN) {
		init = p.expr()
	}
	p.expect(token.SEMICOLON)
	return &ast.VarDecl{Names: names, Type: t, Init: init, NamePos: npos}
}

func (p *parser) identList() ([]string, token.Pos) {
	name, npos := p.ident()
	names := []string{name}
	for p.accept(token.COMMA) {
		n, _ := p.ident()
		names = append(names, n)
	}
	return names, npos
}

// procDecl = PROCEDURE Ident Signature "=" {LocalDecl} BEGIN StmtList END Ident ";"
func (p *parser) procDecl() *ast.ProcDecl {
	p.expect(token.PROCEDURE)
	name, npos := p.ident()
	params, result := p.signature()
	p.expect(token.EQ)
	d := &ast.ProcDecl{Name: name, Params: params, Result: result, NamePos: npos}
	d.Locals = p.decls()
	p.expect(token.BEGIN)
	d.Body = p.stmtList(token.END)
	p.expect(token.END)
	endName, epos := p.ident()
	if endName != name {
		p.errorf(epos, "procedure %s ends with END %s", name, endName)
	}
	p.expect(token.SEMICOLON)
	return d
}

// signature = "(" [Param {";" Param}] ")" [":" TypeExpr]
func (p *parser) signature() ([]*ast.Param, ast.TypeExpr) {
	p.expect(token.LPAREN)
	var params []*ast.Param
	if p.kind() != token.RPAREN {
		params = append(params, p.param())
		for p.accept(token.SEMICOLON) {
			params = append(params, p.param())
		}
	}
	p.expect(token.RPAREN)
	var result ast.TypeExpr
	if p.accept(token.COLON) {
		result = p.typeExpr()
	}
	return params, result
}

func (p *parser) param() *ast.Param {
	mode := ast.ValueParam
	switch p.kind() {
	case token.VAR:
		p.next()
		mode = ast.VarParam
	case token.READONLY:
		p.next()
		mode = ast.ReadonlyParam
	}
	names, npos := p.identList()
	p.expect(token.COLON)
	t := p.typeExpr()
	return &ast.Param{Mode: mode, Names: names, Type: t, NamePos: npos}
}

// typeExpr parses a type expression.
func (p *parser) typeExpr() ast.TypeExpr {
	pos := p.cur().Pos
	switch p.kind() {
	case token.ARRAY:
		p.next()
		p.expect(token.OF)
		return &ast.ArrayType{Elem: p.typeExpr(), ArrPos: pos}
	case token.REF:
		p.next()
		return &ast.RefType{Elem: p.typeExpr(), RefPos: pos}
	case token.RECORD:
		p.next()
		fields := p.fieldDecls(token.END)
		p.expect(token.END)
		return &ast.RecordType{Fields: fields, RecPos: pos}
	case token.BRANDED:
		p.next()
		brand := ""
		if p.kind() == token.STRING {
			brand = p.next().Lit
		}
		t := p.typeExpr()
		if ot, ok := t.(*ast.ObjectType); ok {
			ot.Branded = true
			ot.Brand = brand
			return ot
		}
		p.errorf(pos, "BRANDED requires an object type")
		return t
	case token.OBJECT:
		return p.objectType("", pos)
	case token.IDENT:
		name, npos := p.ident()
		if p.kind() == token.OBJECT {
			return p.objectType(name, npos)
		}
		return &ast.NamedType{Name: name, NamePos: npos}
	default:
		p.errorf(pos, "expected type, found %s", p.cur())
		p.next()
		return &ast.NamedType{Name: "INTEGER", NamePos: pos}
	}
}

// objectType = [Super] OBJECT fields [METHODS methods] [OVERRIDES overrides] END
func (p *parser) objectType(super string, pos token.Pos) *ast.ObjectType {
	p.expect(token.OBJECT)
	t := &ast.ObjectType{Super: super, ObjPos: pos}
	t.Fields = p.fieldDecls(token.METHODS, token.OVERRIDES, token.END)
	if p.accept(token.METHODS) {
		for p.kind() == token.IDENT {
			name, npos := p.ident()
			params, result := p.signature()
			def := ""
			if p.accept(token.ASSIGN) {
				def, _ = p.ident()
			}
			p.expect(token.SEMICOLON)
			t.Methods = append(t.Methods, &ast.MethodDecl{
				Name: name, Params: params, Result: result, Default: def, NamePos: npos,
			})
		}
	}
	if p.accept(token.OVERRIDES) {
		for p.kind() == token.IDENT {
			name, npos := p.ident()
			p.expect(token.ASSIGN)
			proc, _ := p.ident()
			p.expect(token.SEMICOLON)
			t.Overrides = append(t.Overrides, &ast.OverrideDecl{Name: name, Proc: proc, NamePos: npos})
		}
	}
	p.expect(token.END)
	return t
}

func (p *parser) fieldDecls(stop ...token.Kind) []*ast.FieldDecl {
	var fields []*ast.FieldDecl
	for p.kind() == token.IDENT {
		names, npos := p.identList()
		p.expect(token.COLON)
		t := p.typeExpr()
		fields = append(fields, &ast.FieldDecl{Names: names, Type: t, NamePos: npos})
		if !p.accept(token.SEMICOLON) {
			break
		}
	}
	return fields
}

// stmtList parses statements until one of the terminator kinds. Statements
// are separated by semicolons; empty statements are permitted.
func (p *parser) stmtList(stop ...token.Kind) []ast.Stmt {
	isStop := func(k token.Kind) bool {
		if k == token.EOF || k == token.ELSE || k == token.ELSIF || k == token.UNTIL {
			return true
		}
		for _, s := range stop {
			if k == s {
				return true
			}
		}
		return false
	}
	var ss []ast.Stmt
	for {
		for p.accept(token.SEMICOLON) {
		}
		if isStop(p.kind()) {
			return ss
		}
		s := p.stmt()
		if s != nil {
			ss = append(ss, s)
		}
		if !p.accept(token.SEMICOLON) {
			for p.accept(token.SEMICOLON) {
			}
			if isStop(p.kind()) {
				return ss
			}
			// Tolerate a missing semicolon between statements.
		}
	}
}

func (p *parser) stmt() ast.Stmt {
	pos := p.cur().Pos
	switch p.kind() {
	case token.IF:
		return p.ifStmt()
	case token.WHILE:
		p.next()
		cond := p.expr()
		p.expect(token.DO)
		body := p.stmtList(token.END)
		p.expect(token.END)
		return &ast.WhileStmt{Cond: cond, Body: body, WhilePos: pos}
	case token.REPEAT:
		p.next()
		body := p.stmtList(token.UNTIL)
		p.expect(token.UNTIL)
		cond := p.expr()
		return &ast.RepeatStmt{Body: body, Cond: cond, RepeatPos: pos}
	case token.LOOP:
		p.next()
		body := p.stmtList(token.END)
		p.expect(token.END)
		return &ast.LoopStmt{Body: body, LoopPos: pos}
	case token.EXIT:
		p.next()
		return &ast.ExitStmt{ExitPos: pos}
	case token.FOR:
		p.next()
		v, _ := p.ident()
		p.expect(token.ASSIGN)
		lo := p.expr()
		p.expect(token.TO)
		hi := p.expr()
		var step ast.Expr
		if p.accept(token.BY) {
			step = p.expr()
		}
		p.expect(token.DO)
		body := p.stmtList(token.END)
		p.expect(token.END)
		return &ast.ForStmt{Var: v, Lo: lo, Hi: hi, Step: step, Body: body, ForPos: pos}
	case token.RETURN:
		p.next()
		var v ast.Expr
		if p.kind() != token.SEMICOLON && p.kind() != token.END &&
			p.kind() != token.ELSE && p.kind() != token.ELSIF && p.kind() != token.UNTIL {
			v = p.expr()
		}
		return &ast.ReturnStmt{Value: v, RetPos: pos}
	case token.WITH:
		p.next()
		name, _ := p.ident()
		p.expect(token.EQ)
		e := p.expr()
		p.expect(token.DO)
		body := p.stmtList(token.END)
		p.expect(token.END)
		return &ast.WithStmt{Name: name, Expr: e, Body: body, WithPos: pos}
	case token.IDENT:
		lhs := p.designatorOrCall()
		if p.accept(token.ASSIGN) {
			rhs := p.expr()
			return &ast.AssignStmt{LHS: lhs, RHS: rhs}
		}
		if call, ok := lhs.(*ast.CallExpr); ok {
			return &ast.CallStmt{Call: call}
		}
		p.errorf(pos, "expected := or call, found %s", p.cur())
		return &ast.CallStmt{Call: &ast.CallExpr{Fun: lhs}}
	default:
		p.errorf(pos, "expected statement, found %s", p.cur())
		p.next()
		return nil
	}
}

func (p *parser) ifStmt() ast.Stmt {
	pos := p.cur().Pos
	p.next() // IF or ELSIF
	cond := p.expr()
	p.expect(token.THEN)
	then := p.stmtList(token.END)
	s := &ast.IfStmt{Cond: cond, Then: then, IfPos: pos}
	switch p.kind() {
	case token.ELSIF:
		s.Else = []ast.Stmt{p.ifStmtTail()}
	case token.ELSE:
		p.next()
		s.Else = p.stmtList(token.END)
		p.expect(token.END)
	default:
		p.expect(token.END)
	}
	return s
}

// ifStmtTail handles ELSIF chains: it parses as a nested IfStmt and shares
// the final END with the enclosing IF.
func (p *parser) ifStmtTail() ast.Stmt {
	pos := p.cur().Pos
	p.expect(token.ELSIF)
	cond := p.expr()
	p.expect(token.THEN)
	then := p.stmtList(token.END)
	s := &ast.IfStmt{Cond: cond, Then: then, IfPos: pos}
	switch p.kind() {
	case token.ELSIF:
		s.Else = []ast.Stmt{p.ifStmtTail()}
	case token.ELSE:
		p.next()
		s.Else = p.stmtList(token.END)
		p.expect(token.END)
	default:
		p.expect(token.END)
	}
	return s
}

// ---------------------------------------------------------------------------
// Expressions

// expr = simpleExpr [relOp simpleExpr]
func (p *parser) expr() ast.Expr {
	l := p.simpleExpr()
	switch p.kind() {
	case token.EQ, token.NEQ, token.LT, token.GT, token.LE, token.GE:
		op := p.next().Kind
		r := p.simpleExpr()
		return &ast.BinaryExpr{Op: op, L: l, R: r}
	}
	return l
}

// simpleExpr = ["+"|"-"] term {("+"|"-"|OR|"&") term}
func (p *parser) simpleExpr() ast.Expr {
	var l ast.Expr
	if p.kind() == token.MINUS {
		pos := p.next().Pos
		l = &ast.UnaryExpr{Op: token.MINUS, X: p.term(), OpPos: pos}
	} else {
		p.accept(token.PLUS)
		l = p.term()
	}
	for {
		switch p.kind() {
		case token.PLUS, token.MINUS, token.OR, token.AMP:
			op := p.next().Kind
			l = &ast.BinaryExpr{Op: op, L: l, R: p.term()}
		default:
			return l
		}
	}
}

// term = factor {("*"|DIV|MOD|AND) factor}
func (p *parser) term() ast.Expr {
	l := p.factor()
	for {
		switch p.kind() {
		case token.STAR, token.DIV, token.MOD, token.AND:
			op := p.next().Kind
			l = &ast.BinaryExpr{Op: op, L: l, R: p.factor()}
		default:
			return l
		}
	}
}

func (p *parser) factor() ast.Expr {
	pos := p.cur().Pos
	switch p.kind() {
	case token.INT:
		t := p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{Value: v, LitPos: t.Pos}
	case token.CHARLIT:
		t := p.next()
		var c byte
		if len(t.Lit) > 0 {
			c = t.Lit[0]
		}
		return &ast.CharLit{Value: c, LitPos: t.Pos}
	case token.STRING:
		t := p.next()
		return &ast.TextLit{Value: t.Lit, LitPos: t.Pos}
	case token.TRUE:
		p.next()
		return &ast.BoolLit{Value: true, LitPos: pos}
	case token.FALSE:
		p.next()
		return &ast.BoolLit{Value: false, LitPos: pos}
	case token.NIL:
		p.next()
		return &ast.NilLit{LitPos: pos}
	case token.NOT:
		p.next()
		return &ast.UnaryExpr{Op: token.NOT, X: p.factor(), OpPos: pos}
	case token.LPAREN:
		p.next()
		e := p.expr()
		p.expect(token.RPAREN)
		return e
	case token.NEW:
		p.next()
		p.expect(token.LPAREN)
		name, _ := p.ident()
		var ln ast.Expr
		if p.accept(token.COMMA) {
			ln = p.expr()
		}
		p.expect(token.RPAREN)
		return &ast.NewExpr{TypeName: name, Len: ln, NewPos: pos}
	case token.IDENT:
		return p.designatorOrCall()
	default:
		p.errorf(pos, "expected expression, found %s", p.cur())
		p.next()
		return &ast.IntLit{Value: 0, LitPos: pos}
	}
}

// designatorOrCall = Ident { "." Ident | "[" Expr "]" | "^" | "(" args ")" }
func (p *parser) designatorOrCall() ast.Expr {
	name, npos := p.ident()
	var e ast.Expr = &ast.Ident{Name: name, NamePos: npos}
	for {
		switch p.kind() {
		case token.DOT:
			p.next()
			f, _ := p.ident()
			e = &ast.QualifyExpr{X: e, Field: f}
		case token.LBRACK:
			p.next()
			idx := p.expr()
			p.expect(token.RBRACK)
			e = &ast.SubscriptExpr{X: e, Index: idx}
		case token.CARET:
			p.next()
			e = &ast.DerefExpr{X: e}
		case token.LPAREN:
			p.next()
			var args []ast.Expr
			if p.kind() != token.RPAREN {
				args = append(args, p.expr())
				for p.accept(token.COMMA) {
					args = append(args, p.expr())
				}
			}
			p.expect(token.RPAREN)
			e = &ast.CallExpr{Fun: e, Args: args}
		default:
			return e
		}
	}
}
