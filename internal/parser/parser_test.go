package parser

import (
	"reflect"
	"testing"

	"tbaa/internal/ast"
)

const tinyModule = `
MODULE Tiny;

TYPE
  T = OBJECT f, g: T; END;
  S1 = T OBJECT x: INTEGER; END;
  IntArray = ARRAY OF INTEGER;
  R = RECORD a, b: INTEGER; END;
  PR = REF R;

VAR
  t: T;
  s: S1;

PROCEDURE Sum(a: IntArray; VAR out: INTEGER): INTEGER =
VAR i, acc: INTEGER;
BEGIN
  acc := 0;
  FOR i := 0 TO NUMBER(a) - 1 DO
    acc := acc + a[i];
  END;
  out := acc;
  RETURN acc;
END Sum;

BEGIN
  t := NEW(T);
  s := NEW(S1);
  t.f := s;
END Tiny.
`

func TestParseTiny(t *testing.T) {
	m, err := Parse("tiny.m3", tinyModule)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if m.Name != "Tiny" {
		t.Errorf("module name %q", m.Name)
	}
	var typeCount, varCount, procCount int
	for _, d := range m.Decls {
		switch d.(type) {
		case *ast.TypeDecl:
			typeCount++
		case *ast.VarDecl:
			varCount++
		case *ast.ProcDecl:
			procCount++
		}
	}
	if typeCount != 5 || varCount != 2 || procCount != 1 {
		t.Errorf("decl counts: types=%d vars=%d procs=%d", typeCount, varCount, procCount)
	}
	if len(m.Body) != 3 {
		t.Errorf("body statements: %d", len(m.Body))
	}
}

func TestParseObjectWithMethods(t *testing.T) {
	src := `
MODULE M;
TYPE
  Shape = OBJECT
    id: INTEGER;
  METHODS
    area(): INTEGER := ShapeArea;
    move(dx: INTEGER) := ShapeMove;
  END;
  Circle = Shape OBJECT
    r: INTEGER;
  OVERRIDES
    area := CircleArea;
  END;
PROCEDURE ShapeArea(self: Shape): INTEGER = BEGIN RETURN 0; END ShapeArea;
PROCEDURE ShapeMove(self: Shape; dx: INTEGER) = BEGIN self.id := dx; END ShapeMove;
PROCEDURE CircleArea(self: Circle): INTEGER = BEGIN RETURN 3 * self.r * self.r; END CircleArea;
END M.
`
	m, err := Parse("m.m3", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	td := m.Decls[0].(*ast.TypeDecl)
	ot := td.Type.(*ast.ObjectType)
	if len(ot.Methods) != 2 {
		t.Fatalf("methods: %d", len(ot.Methods))
	}
	if ot.Methods[0].Name != "area" || ot.Methods[0].Default != "ShapeArea" {
		t.Errorf("method 0: %+v", ot.Methods[0])
	}
	td2 := m.Decls[1].(*ast.TypeDecl)
	ot2 := td2.Type.(*ast.ObjectType)
	if ot2.Super != "Shape" {
		t.Errorf("super: %q", ot2.Super)
	}
	if len(ot2.Overrides) != 1 || ot2.Overrides[0].Proc != "CircleArea" {
		t.Errorf("overrides: %+v", ot2.Overrides)
	}
}

func TestParseBranded(t *testing.T) {
	src := `
MODULE M;
TYPE B = BRANDED "MyBrand" OBJECT v: INTEGER; END;
END M.
`
	m, err := Parse("m.m3", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ot := m.Decls[0].(*ast.TypeDecl).Type.(*ast.ObjectType)
	if !ot.Branded || ot.Brand != "MyBrand" {
		t.Errorf("branded: %+v", ot)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
MODULE M;
PROCEDURE P(n: INTEGER): INTEGER =
VAR x: INTEGER;
BEGIN
  x := 0;
  IF n > 10 THEN x := 1; ELSIF n > 5 THEN x := 2; ELSE x := 3; END;
  WHILE x < n DO INC(x); END;
  REPEAT DEC(x); UNTIL x <= 0;
  LOOP
    INC(x);
    IF x > 3 THEN EXIT; END;
  END;
  WITH y = x DO x := y + 1; END;
  RETURN x;
END P;
END M.
`
	m, err := Parse("m.m3", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pd := m.Decls[0].(*ast.ProcDecl)
	wantKinds := []string{"*ast.AssignStmt", "*ast.IfStmt", "*ast.WhileStmt",
		"*ast.RepeatStmt", "*ast.LoopStmt", "*ast.WithStmt", "*ast.ReturnStmt"}
	if len(pd.Body) != len(wantKinds) {
		t.Fatalf("body has %d statements", len(pd.Body))
	}
	for i, s := range pd.Body {
		if got := reflect.TypeOf(s).String(); got != wantKinds[i] {
			t.Errorf("stmt %d: got %s want %s", i, got, wantKinds[i])
		}
	}
	ifs := pd.Body[1].(*ast.IfStmt)
	if len(ifs.Else) != 1 {
		t.Fatalf("elsif chain not nested")
	}
	if _, ok := ifs.Else[0].(*ast.IfStmt); !ok {
		t.Fatalf("elsif not an IfStmt")
	}
}

func TestParseDesignators(t *testing.T) {
	src := `
MODULE M;
PROCEDURE P() =
BEGIN
  a.b^[i].c := p^.q[j + 1];
END P;
END M.
`
	m, err := Parse("m.m3", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	asg := m.Decls[0].(*ast.ProcDecl).Body[0].(*ast.AssignStmt)
	if got := ast.PathString(asg.LHS); got != "a.b^[i].c" {
		t.Errorf("LHS path: %q", got)
	}
	if got := ast.PathString(asg.RHS); got != "p^.q[?]" {
		t.Errorf("RHS path: %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"MODULE ; END X.",
		"MODULE M; TYPE T = ; END M.",
		"MODULE M; BEGIN x := END M.",
		"MODULE M; PROCEDURE P() = BEGIN END Q; END M.",
		"MODULE M; BEGIN END Wrong.",
	}
	for _, src := range cases {
		if _, err := Parse("bad.m3", src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{tinyModule}
	for _, src := range srcs {
		m1, err := Parse("a.m3", src)
		if err != nil {
			t.Fatalf("parse 1: %v", err)
		}
		printed := ast.Print(m1)
		m2, err := Parse("b.m3", printed)
		if err != nil {
			t.Fatalf("parse 2 (of printed source): %v\n%s", err, printed)
		}
		p2 := ast.Print(m2)
		if printed != p2 {
			t.Errorf("print not a fixed point:\n--- first\n%s\n--- second\n%s", printed, p2)
		}
	}
}

func TestParseCallStatementAndExpr(t *testing.T) {
	src := `
MODULE M;
PROCEDURE F(x: INTEGER): INTEGER = BEGIN RETURN x; END F;
PROCEDURE P() =
VAR v: INTEGER;
BEGIN
  P();
  v := F(F(1) + 2);
  obj.method(3, v);
END P;
END M.
`
	m, err := Parse("m.m3", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	body := m.Decls[1].(*ast.ProcDecl).Body
	if _, ok := body[0].(*ast.CallStmt); !ok {
		t.Errorf("stmt 0 not a call")
	}
	asg := body[1].(*ast.AssignStmt)
	call := asg.RHS.(*ast.CallExpr)
	if len(call.Args) != 1 {
		t.Errorf("outer call args: %d", len(call.Args))
	}
	mc := body[2].(*ast.CallStmt).Call
	q, ok := mc.Fun.(*ast.QualifyExpr)
	if !ok || q.Field != "method" {
		t.Errorf("method call fun: %#v", mc.Fun)
	}
}
