package parser_test

import (
	"testing"

	"tbaa/internal/ast"
	"tbaa/internal/bench"
	"tbaa/internal/driver"
	"tbaa/internal/interp"
	"tbaa/internal/parser"
)

// TestBenchmarkRoundTrip pretty-prints every benchmark program, reparses
// the output, and checks the reparsed program runs to identical output —
// the strongest printer/parser consistency check we have.
func TestBenchmarkRoundTrip(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			m1, err := parser.Parse(b.Name+".m3", b.Source)
			if err != nil {
				t.Fatalf("parse original: %v", err)
			}
			printed := ast.Print(m1)
			m2, err := parser.Parse(b.Name+"-printed.m3", printed)
			if err != nil {
				t.Fatalf("reparse printed source: %v", err)
			}
			// Printing must be a fixed point.
			if again := ast.Print(m2); again != printed {
				t.Fatal("printer is not a fixed point")
			}
			// The printed program must behave identically.
			run := func(src string) string {
				prog, _, err := driver.Compile(b.Name, src)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				in := interp.New(prog)
				in.MaxSteps = 80_000_000
				out, err := in.Run()
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				return out
			}
			if run(b.Source) != run(printed) {
				t.Fatal("printed program behaves differently")
			}
		})
	}
}
