// Package fault is a deterministic, seeded fault-injection framework
// for the serving stack. Code under test declares named injection
// points (Hit, HitN, Sleep) at the places real failures strike — a
// torn artifact write, a flipped bit on a read, a panicking analyzer
// build, a heap sample over the memory watermark — and a chaos harness
// arms them with per-point rules: a fire probability, a number of hits
// to skip first, a fire budget, a sleep duration. The same seed and
// the same call sequence reproduce the same faults, so a chaos failure
// replays.
//
// Injection is off by default and costs one atomic load per point when
// off — nothing allocates, nothing locks, no timer runs — so the hooks
// stay compiled into production binaries and the perf gates cannot see
// them. Configure installs a process-global Injector (tbaad's -faults
// flag parses one from a spec string); Configure(nil) disarms it.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The named injection points. Each names the failure it simulates, not
// the code that hosts it, so a spec reads as a failure scenario.
const (
	// ArtifactShortWrite truncates the artifact temp file before the
	// rename: a crash mid-write leaves a torn artifact installed.
	ArtifactShortWrite = "artifact/write/short"
	// ArtifactRenameFail fails the rename that installs an artifact:
	// a full disk or permission flap at the worst moment.
	ArtifactRenameFail = "artifact/write/rename"
	// ArtifactBitFlip flips one bit of a loaded artifact before
	// validation: silent media corruption.
	ArtifactBitFlip = "artifact/read/bitflip"
	// ArtifactSlowRead sleeps before returning a loaded artifact: a
	// degraded disk or a cold network filesystem.
	ArtifactSlowRead = "artifact/read/slow"
	// BuildPanic panics while building an analyzer configuration: a
	// latent analysis bug tripped by one module.
	BuildPanic = "analyzer/build/panic"
	// QueryPanic panics while answering a query on a built analyzer.
	QueryPanic = "analyzer/query/panic"
	// EditSlow sleeps inside the edit handler, holding the request in
	// flight: how drain tests overlap shutdown with an active edit.
	EditSlow = "server/edit/slow"
	// MemPressure makes a memory-watermark check see heap use over the
	// limit: the OOM killer's footsteps without the footprint.
	MemPressure = "server/mem/pressure"
)

// points maps every known injection point to its one-line description;
// NewInjector rejects rules naming anything else, so a typo in a chaos
// spec fails loudly instead of silently injecting nothing.
var points = map[string]string{
	ArtifactShortWrite: "truncate the artifact temp file before rename",
	ArtifactRenameFail: "fail the rename that installs an artifact",
	ArtifactBitFlip:    "flip one bit of a loaded artifact",
	ArtifactSlowRead:   "sleep before returning a loaded artifact",
	BuildPanic:         "panic while building an analyzer configuration",
	QueryPanic:         "panic while answering a query",
	EditSlow:           "sleep inside the edit handler",
	MemPressure:        "report heap use over the memory watermark",
}

// Points returns every known injection point, sorted.
func Points() []string {
	out := make([]string, 0, len(points))
	for p := range points {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of a known point, or "".
func Describe(point string) string { return points[point] }

// Rule arms one injection point. The zero value of each trigger field
// is the permissive default: fire on every hit (P=0 means 1.0), from
// the first hit (After=0), with no budget (Count=0 means unlimited).
type Rule struct {
	// Point is the injection point the rule arms; it must be one of
	// the package's named points.
	Point string
	// P is the probability one hit fires, in (0, 1]. 0 means 1.
	P float64
	// After skips the first After hits before the rule can fire:
	// how a scenario sequences "the third build panics".
	After uint64
	// Count caps the total fires; once spent the point goes quiet.
	// 0 means unlimited.
	Count uint64
	// Sleep is how long Sleep-style points stall when they fire.
	Sleep time.Duration
}

// Injector holds armed rules and the seeded randomness that decides
// probabilistic fires. All methods are safe for concurrent use; a nil
// *Injector never fires.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string]Rule
	hits  map[string]uint64
	fires map[string]uint64
}

// NewInjector builds an injector from rules, validating every point
// name. The seed fixes the probabilistic decisions: the same seed and
// the same hit sequence fire the same faults.
func NewInjector(seed int64, rules ...Rule) (*Injector, error) {
	in := &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string]Rule, len(rules)),
		hits:  make(map[string]uint64),
		fires: make(map[string]uint64),
	}
	for _, r := range rules {
		if _, ok := points[r.Point]; !ok {
			return nil, fmt.Errorf("fault: unknown injection point %q (known: %s)", r.Point, strings.Join(Points(), ", "))
		}
		if r.P < 0 || r.P > 1 {
			return nil, fmt.Errorf("fault: %s: probability %g outside (0, 1]", r.Point, r.P)
		}
		if r.P == 0 {
			r.P = 1
		}
		if _, dup := in.rules[r.Point]; dup {
			return nil, fmt.Errorf("fault: duplicate rule for %q", r.Point)
		}
		in.rules[r.Point] = r
	}
	return in, nil
}

// ParseSpec builds an injector from a spec string: comma-separated
// rules, each a point name followed by colon-separated key=value
// triggers — p=0.5 (fire probability), after=3 (skip the first three
// hits), count=2 (fire budget), sleep=100ms (stall duration).
//
//	artifact/read/bitflip:p=0.5,analyzer/build/panic:after=1:count=3
func ParseSpec(spec string, seed int64) (*Injector, error) {
	var rules []Rule
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		fields := strings.Split(clause, ":")
		r := Rule{Point: fields[0]}
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("fault: %s: trigger %q is not key=value", r.Point, f)
			}
			var err error
			switch k {
			case "p":
				r.P, err = strconv.ParseFloat(v, 64)
			case "after":
				r.After, err = strconv.ParseUint(v, 10, 64)
			case "count":
				r.Count, err = strconv.ParseUint(v, 10, 64)
			case "sleep":
				r.Sleep, err = time.ParseDuration(v)
			default:
				return nil, fmt.Errorf("fault: %s: unknown trigger %q (want p, after, count, or sleep)", r.Point, k)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: %s: bad %s value %q: %v", r.Point, k, v, err)
			}
		}
		rules = append(rules, r)
	}
	return NewInjector(seed, rules...)
}

// String renders the armed rules, one per line, for startup logs.
func (in *Injector) String() string {
	if in == nil {
		return "fault injection disabled"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	names := make([]string, 0, len(in.rules))
	for p := range in.rules {
		names = append(names, p)
	}
	sort.Strings(names)
	var sb strings.Builder
	for i, p := range names {
		if i > 0 {
			sb.WriteString("; ")
		}
		r := in.rules[p]
		fmt.Fprintf(&sb, "%s p=%g", p, r.P)
		if r.After > 0 {
			fmt.Fprintf(&sb, " after=%d", r.After)
		}
		if r.Count > 0 {
			fmt.Fprintf(&sb, " count=%d", r.Count)
		}
		if r.Sleep > 0 {
			fmt.Fprintf(&sb, " sleep=%s", r.Sleep)
		}
	}
	return sb.String()
}

// hitLocked runs one trigger evaluation under in.mu: count the hit,
// honor the After skip and the Count budget, roll the probability.
func (in *Injector) hitLocked(point string) (Rule, bool) {
	r, ok := in.rules[point]
	if !ok {
		return Rule{}, false
	}
	in.hits[point]++
	if in.hits[point] <= r.After {
		return Rule{}, false
	}
	if r.Count > 0 && in.fires[point] >= r.Count {
		return Rule{}, false
	}
	if r.P < 1 && in.rng.Float64() >= r.P {
		return Rule{}, false
	}
	in.fires[point]++
	return r, true
}

// Hit reports whether the point fires this time.
func (in *Injector) Hit(point string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	_, ok := in.hitLocked(point)
	return ok
}

// HitN is Hit plus a deterministic pick in [0, n): which byte to
// truncate at, which bit to flip. It reports (0, false) when the point
// does not fire or n is not positive.
func (in *Injector) HitN(point string, n int) (int, bool) {
	if in == nil || n <= 0 {
		return 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, ok := in.hitLocked(point); !ok {
		return 0, false
	}
	return in.rng.Intn(n), true
}

// SleepFor reports whether the point fires and, if so, the rule's
// configured stall. The caller sleeps; the injector never blocks under
// its own lock.
func (in *Injector) SleepFor(point string) (time.Duration, bool) {
	if in == nil {
		return 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	r, ok := in.hitLocked(point)
	if !ok {
		return 0, false
	}
	return r.Sleep, true
}

// Fires returns how many times the point has fired.
func (in *Injector) Fires(point string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fires[point]
}

// Stats snapshots fires per point, for end-of-run chaos reports.
func (in *Injector) Stats() map[string]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.fires))
	for p, n := range in.fires {
		out[p] = n
	}
	return out
}

// The process-global injector the package-level hooks consult. enabled
// is the fast path: the one atomic load every disabled hook costs.
var (
	enabled atomic.Bool
	global  atomic.Pointer[Injector]
)

// Configure installs in as the process-global injector and returns the
// previous one (nil disables injection; tests restore with a deferred
// Configure of the return value).
func Configure(in *Injector) *Injector {
	prev := global.Swap(in)
	enabled.Store(in != nil)
	return prev
}

// Enabled reports whether a global injector is armed.
func Enabled() bool { return enabled.Load() }

// Hit reports whether the named point fires on the global injector.
// With injection disabled it is one atomic load and a not-taken
// branch — the zero cost the perf gates rely on.
func Hit(point string) bool {
	if !enabled.Load() {
		return false
	}
	return global.Load().Hit(point)
}

// HitN is Injector.HitN on the global injector.
func HitN(point string, n int) (int, bool) {
	if !enabled.Load() {
		return 0, false
	}
	return global.Load().HitN(point, n)
}

// Sleep stalls for the point's configured duration if it fires,
// reporting whether it did.
func Sleep(point string) bool {
	if !enabled.Load() {
		return false
	}
	d, ok := global.Load().SleepFor(point)
	if ok && d > 0 {
		time.Sleep(d)
	}
	return ok
}

// Fires returns the global injector's fire count for the point.
func Fires(point string) uint64 {
	if !enabled.Load() {
		return 0
	}
	return global.Load().Fires(point)
}
