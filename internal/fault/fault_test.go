package fault

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func mustInjector(t *testing.T, seed int64, rules ...Rule) *Injector {
	t.Helper()
	in, err := NewInjector(seed, rules...)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestTriggerSemantics pins After (skip), Count (budget), and the
// always-fire default against a deterministic hit sequence.
func TestTriggerSemantics(t *testing.T) {
	in := mustInjector(t, 1, Rule{Point: BuildPanic, After: 2, Count: 3})
	var fired []bool
	for i := 0; i < 8; i++ {
		fired = append(fired, in.Hit(BuildPanic))
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("hit %d fired=%v, want %v (after=2 count=3)", i, fired[i], want[i])
		}
	}
	if got := in.Fires(BuildPanic); got != 3 {
		t.Fatalf("Fires = %d, want 3", got)
	}
	// An unarmed point never fires, and never counts.
	if in.Hit(QueryPanic) {
		t.Fatal("unarmed point fired")
	}
	if got := in.Fires(QueryPanic); got != 0 {
		t.Fatalf("unarmed point recorded %d fires", got)
	}
}

// TestDeterminism pins that the same seed and hit sequence reproduce
// the same probabilistic fires — the property that makes a chaos
// failure replayable.
func TestDeterminism(t *testing.T) {
	run := func() []bool {
		in := mustInjector(t, 42, Rule{Point: ArtifactBitFlip, P: 0.5})
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, in.Hit(ArtifactBitFlip))
		}
		return out
	}
	a, b := run(), run()
	var fires int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs across identically seeded runs", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == 64 {
		t.Fatalf("p=0.5 fired %d/64 times; probability not applied", fires)
	}
}

func TestHitNBounds(t *testing.T) {
	in := mustInjector(t, 7, Rule{Point: ArtifactShortWrite})
	for i := 0; i < 32; i++ {
		n, ok := in.HitN(ArtifactShortWrite, 10)
		if !ok {
			t.Fatal("always-fire rule did not fire")
		}
		if n < 0 || n >= 10 {
			t.Fatalf("HitN pick %d outside [0, 10)", n)
		}
	}
	if _, ok := in.HitN(ArtifactShortWrite, 0); ok {
		t.Fatal("HitN fired with n=0")
	}
}

func TestSleepFor(t *testing.T) {
	in := mustInjector(t, 1, Rule{Point: EditSlow, Sleep: 5 * time.Millisecond, Count: 1})
	d, ok := in.SleepFor(EditSlow)
	if !ok || d != 5*time.Millisecond {
		t.Fatalf("SleepFor = (%v, %v), want (5ms, true)", d, ok)
	}
	if _, ok := in.SleepFor(EditSlow); ok {
		t.Fatal("budget of 1 fired twice")
	}
}

func TestParseSpec(t *testing.T) {
	in, err := ParseSpec("artifact/read/bitflip:p=0.5, analyzer/build/panic:after=1:count=3,server/edit/slow:sleep=100ms", 9)
	if err != nil {
		t.Fatal(err)
	}
	s := in.String()
	for _, want := range []string{"artifact/read/bitflip p=0.5", "analyzer/build/panic p=1 after=1 count=3", "server/edit/slow p=1 sleep=100ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	for _, bad := range []string{
		"no/such/point",
		"analyzer/build/panic:p=2",
		"analyzer/build/panic:count",
		"analyzer/build/panic:bogus=1",
		"analyzer/build/panic:after=x",
		"analyzer/build/panic,analyzer/build/panic",
	} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Errorf("ParseSpec(%q) accepted a bad spec", bad)
		}
	}
	// The empty spec is a valid, quiet injector.
	if in, err := ParseSpec("", 1); err != nil || in.Hit(BuildPanic) {
		t.Fatalf("empty spec: err=%v", err)
	}
}

// TestGlobalDisabledIsInert pins the production default: with no
// injector configured, every hook answers false/zero.
func TestGlobalDisabledIsInert(t *testing.T) {
	prev := Configure(nil)
	defer Configure(prev)
	if Enabled() || Hit(BuildPanic) || Sleep(EditSlow) || Fires(BuildPanic) != 0 {
		t.Fatal("disabled global injector fired")
	}
	if _, ok := HitN(ArtifactBitFlip, 8); ok {
		t.Fatal("disabled HitN fired")
	}
	// A nil injector's methods are safe too (the Configure(nil) race
	// window loads nil directly).
	var nilIn *Injector
	if nilIn.Hit(BuildPanic) || nilIn.Fires(BuildPanic) != 0 || nilIn.Stats() != nil {
		t.Fatal("nil injector fired")
	}
}

func TestGlobalConfigureRestore(t *testing.T) {
	in := mustInjector(t, 3, Rule{Point: MemPressure})
	prev := Configure(in)
	if !Enabled() || !Hit(MemPressure) {
		t.Fatal("configured global injector did not fire")
	}
	if got := Fires(MemPressure); got != 1 {
		t.Fatalf("global Fires = %d, want 1", got)
	}
	if restored := Configure(prev); restored != in {
		t.Fatal("Configure did not return the injector it replaced")
	}
	if Hit(MemPressure) {
		t.Fatal("restored (disabled) injector fired")
	}
}

// TestConcurrentHits drives one injector from many goroutines under
// -race and checks the budget holds exactly.
func TestConcurrentHits(t *testing.T) {
	in := mustInjector(t, 5, Rule{Point: QueryPanic, Count: 100})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				in.Hit(QueryPanic)
			}
		}()
	}
	wg.Wait()
	if got := in.Fires(QueryPanic); got != 100 {
		t.Fatalf("budget of 100 fired %d times", got)
	}
	if got := in.Stats()[QueryPanic]; got != 100 {
		t.Fatalf("Stats reports %d fires, want 100", got)
	}
}

func TestPointsRegistry(t *testing.T) {
	ps := Points()
	if len(ps) == 0 {
		t.Fatal("no registered points")
	}
	for _, p := range ps {
		if Describe(p) == "" {
			t.Errorf("point %s has no description", p)
		}
	}
	if Describe("no/such/point") != "" {
		t.Fatal("unknown point has a description")
	}
}
