package modref

import (
	"testing"

	"tbaa/internal/ir"
	"tbaa/internal/lower"
	"tbaa/internal/parser"
	"tbaa/internal/sema"
)

// In-package tests pinning Update's reuse behavior: summaries and
// direct effects of procedures a mutation cannot influence must carry
// over as the identical objects, and procedures whose callee summaries
// changed must be reported as consumers.

const incrSrc = `
MODULE MIncr;
TYPE
  T = OBJECT f, g: INTEGER; END;
VAR t: T; x: INTEGER;
PROCEDURE Leaf() =
BEGIN
  t.f := 1;
END Leaf;
PROCEDURE Caller() =
BEGIN
  Leaf();
  x := t.g;
END Caller;
PROCEDURE Far() =
BEGIN
  x := t.f;
END Far;
BEGIN
  Caller();
  Far();
END MIncr.
`

func compileIncr(t *testing.T) *ir.Program {
	t.Helper()
	m, err := parser.Parse("mincr.m3", incrSrc)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sema.Check(m)
	if err != nil {
		t.Fatal(err)
	}
	sp.Universe.Precompute()
	return lower.Lower(sp)
}

func TestUpdateSharesCleanSummaries(t *testing.T) {
	prog := compileIncr(t)
	for _, cfg := range []Config{{}, {RTA: true}} {
		old := ComputeWith(prog, cfg)
		caller := prog.ProcByName["Caller"]
		far := prog.ProcByName["Far"]
		leaf := prog.ProcByName["Leaf"]
		prog.MarkMutated(caller)

		mr, consumers := Update(old, cfg, []*ir.Proc{caller})
		if mr == nil {
			t.Fatalf("cfg %+v: Update returned nil for a well-formed delta", cfg)
		}
		// Far neither calls nor is called by Caller: everything about it
		// is reused by pointer.
		if mr.direct[far] != old.direct[far] {
			t.Errorf("cfg %+v: Far's direct effects rescanned", cfg)
		}
		if mr.byProc[far] != old.byProc[far] {
			t.Errorf("cfg %+v: Far's summary rebuilt", cfg)
		}
		// Leaf is below Caller in the call graph; its summary cannot
		// change when only Caller's body did.
		if mr.byProc[leaf] != old.byProc[leaf] {
			t.Errorf("cfg %+v: Leaf's summary rebuilt", cfg)
		}
		// Caller's direct effects were rescanned (its body is dirty).
		if mr.direct[caller] == old.direct[caller] {
			t.Errorf("cfg %+v: dirty Caller's direct effects not rescanned", cfg)
		}
		// The body did not actually change, so the recomputed summary
		// content matches and the old object is reinstalled — no
		// consumer invalidation cascades.
		if mr.byProc[caller] != old.byProc[caller] {
			t.Errorf("cfg %+v: content-equal summary not reinstalled", cfg)
		}
		if len(consumers) != 0 {
			t.Errorf("cfg %+v: unexpected consumers %v", cfg, consumers)
		}
	}
}

func TestUpdateReportsConsumers(t *testing.T) {
	prog := compileIncr(t)
	cfg := Config{RTA: true}
	old := ComputeWith(prog, cfg)
	leaf := prog.ProcByName["Leaf"]
	// Genuinely change Leaf's effects: make it also write t.g.
	var store ir.Instr
	found := false
	for _, b := range leaf.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpStore {
				store = b.Instrs[i]
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no store in Leaf")
	}
	// Duplicate the store with a different field by reusing another
	// proc's AP (interned program-wide, so any existing AP is valid).
	var gAP *ir.AP
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			for i := range b.Instrs {
				ap := b.Instrs[i].AP
				if ap != nil && ap.String() == "t.g" {
					gAP = ap
				}
			}
		}
	}
	if gAP == nil {
		t.Fatal("no t.g access path in program")
	}
	store.AP = gAP
	leaf.Blocks[0].Instrs = append([]ir.Instr{store}, leaf.Blocks[0].Instrs...)
	prog.MarkMutated(leaf)

	mr, consumers := Update(old, cfg, []*ir.Proc{leaf})
	if mr == nil {
		t.Fatal("Update returned nil for a well-formed delta")
	}
	if mr.byProc[leaf] == old.byProc[leaf] {
		t.Fatal("Leaf's summary unchanged despite a new store")
	}
	// Caller absorbs Leaf's summary, so Caller is a consumer: a clean
	// procedure one of whose callees' summaries changed.
	wantConsumer := map[string]bool{"Caller": true}
	// Main calls Caller and Far; Caller's summary changed, so Main is a
	// consumer as well.
	wantConsumer[prog.Main.Name] = true
	got := map[string]bool{}
	for _, p := range consumers {
		got[p.Name] = true
	}
	for name := range wantConsumer {
		if !got[name] {
			t.Errorf("missing consumer %s (got %v)", name, got)
		}
	}
	if got["Far"] {
		t.Error("Far reported as a consumer; none of its callees changed")
	}
	// Fresh comparison: the delta summaries answer like a from-scratch
	// build. Shape IDs differ between the two tables (interning order),
	// so compare the materialized paths by shape key.
	fresh := ComputeWith(prog, cfg)
	for _, p := range prog.Procs {
		de, fe := mr.byProc[p], fresh.byProc[p]
		if (de == nil) != (fe == nil) {
			t.Fatalf("%s: summary presence differs", p.Name)
		}
		if de == nil {
			continue
		}
		if got, want := shapeSet(de.Mods), shapeSet(fe.Mods); !sameSet(got, want) {
			t.Errorf("%s: delta Mods %v, scratch %v", p.Name, got, want)
		}
		if got, want := shapeSet(de.Refs), shapeSet(fe.Refs); !sameSet(got, want) {
			t.Errorf("%s: delta Refs %v, scratch %v", p.Name, got, want)
		}
		if de.Top != fe.Top || de.WritesThroughLocs != fe.WritesThroughLocs || len(de.ModGlobals) != len(fe.ModGlobals) {
			t.Errorf("%s: delta flags differ from scratch", p.Name)
		}
	}
}

func shapeSet(aps []*ir.AP) map[string]bool {
	out := make(map[string]bool, len(aps))
	for _, ap := range aps {
		out[shapeKey(ap)] = true
	}
	return out
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
