// Rapid Type Analysis call-graph construction and the interprocedural
// summary builder layered on it.
//
// The paper resolves method invocations with the type hierarchy before
// computing mod-ref (Sections 3.4.1 and 3.7); plain Compute reproduces
// that with the CHA cone — every implementation in the static receiver
// type's subtype cone is a possible callee. ComputeWith additionally
// offers the RTA refinement: only types the program actually
// instantiates can be dynamic receiver types, so dispatch sets (and
// with them every transitive summary) shrink to the implementations of
// instantiated subtypes, optionally narrowed further by the alias
// analysis' TypeRefsTable through the Refine callback.
//
// Summaries are computed bottom-up over the strongly connected
// components of the call graph: Tarjan emits callee SCCs before their
// callers, and every member of an SCC transitively reaches the others,
// so one merged summary per SCC — its members' direct effects plus the
// final summaries of callees outside the SCC — is the exact fixpoint
// for recursion. Escapes the analysis cannot bound stay sound via
// Effects.Top: calls to procedures the program does not define and
// stores with no recorded access path summarize as "may modify
// anything", and an open world disables the instantiated-type filter
// entirely (unavailable code may instantiate any type).
package modref

import (
	"tbaa/internal/ir"
	"tbaa/internal/types"
)

// Config selects how summaries are built.
type Config struct {
	// RTA builds the call graph by rapid type analysis: a worklist walk
	// from the module body collects instantiated types and resolves
	// method calls only to implementations those types can select, to a
	// fixpoint. Summaries are then computed bottom-up over call-graph
	// SCCs. False reproduces Compute's CHA behavior exactly.
	RTA bool
	// OpenWorld disables the instantiated-type dispatch filter:
	// unavailable code may instantiate any subtype, so the CHA cone is
	// the sound top for dispatch. Direct effects and SCC summaries are
	// still computed (all callees are visible in the closed module).
	OpenWorld bool
	// Refine optionally narrows a method call's possible receiver types
	// to the given type's TypeRefsTable row (the devirtualization
	// refinement of Section 3.7); nil IDs mean "no information".
	Refine func(recv *types.Object) []int
}

// ComputeWith builds mod-ref summaries under cfg. The zero Config is
// Compute.
func ComputeWith(prog *ir.Program, cfg Config) *ModRef {
	mr := &ModRef{
		prog:    prog,
		cfg:     cfg,
		byProc:  make(map[*ir.Proc]*Effects, len(prog.Procs)),
		direct:  make(map[*ir.Proc]*Effects, len(prog.Procs)),
		callees: make(map[*ir.Proc][]*ir.Proc, len(prog.Procs)),
		effMemo: make(map[*ir.Instr]*Effects),
		shapes:  newShapeTab(),
		fp:      modrefFPOf(prog),
	}
	if cfg.RTA && !cfg.OpenWorld && prog.Main != nil {
		mr.rta()
	}
	// Both modes summarize bottom-up over call-graph SCCs: one pass in
	// Tarjan emission order computes the same transitive closure the old
	// CHA iterate-until-stable fixpoint did, in linear passes instead of
	// quadratic re-scans.
	mr.collectEdges()
	sccs := mr.tarjanSCCs()
	mr.recordSCCs(sccs)
	if cfg.RTA {
		mr.computeFreshness(sccs)
	}
	mr.collectDirect()
	mr.summarizeSCCs(sccs)
	mr.materializeSummaries()
	return mr
}

// recordSCCs remembers the SCC decomposition the summaries were built
// under, so an incremental Update can prove a component's membership
// unchanged before reusing its results (see incremental.go).
func (mr *ModRef) recordSCCs(sccs [][]*ir.Proc) {
	mr.sccOf = make(map[*ir.Proc]int32, len(mr.prog.Procs))
	mr.sccSize = make([]int32, len(sccs))
	for i, scc := range sccs {
		mr.sccSize[i] = int32(len(scc))
		for _, p := range scc {
			mr.sccOf[p] = int32(i)
		}
	}
}

// materializeSummaries converts every distinct summary's shape bitsets
// into the public Mods/Refs slices, once, after summarization.
func (mr *ModRef) materializeSummaries() {
	done := make(map[*Effects]bool, len(mr.byProc))
	for _, p := range mr.prog.Procs {
		if eff := mr.byProc[p]; !done[eff] {
			done[eff] = true
			eff.materialize(mr.shapes)
		}
	}
}

// Interprocedural reports whether this ModRef was built with the RTA
// interprocedural configuration.
func (mr *ModRef) Interprocedural() bool { return mr.cfg.RTA }

// Instantiated returns the sorted type IDs the RTA walk found
// instantiated, or nil when no instantiated-type filter is active
// (CHA mode, open world, or a program without a module body).
func (mr *ModRef) Instantiated() []int {
	if mr.inst == nil {
		return nil
	}
	return mr.inst.IDs()
}

// Reachable reports whether the RTA walk reached p from the module
// body. Without an RTA walk every procedure counts as reachable.
func (mr *ModRef) Reachable(p *ir.Proc) bool {
	if mr.reachable == nil {
		return true
	}
	return mr.reachable[p]
}

// Callees returns p's call-graph successors (one entry per call edge,
// in instruction order; method calls contribute their dispatch set).
func (mr *ModRef) Callees(p *ir.Proc) []*ir.Proc { return mr.callees[p] }

// rta runs the rapid type analysis fixpoint: starting from the module
// body, scan reachable procedures for allocations and calls; method
// calls dispatch only to implementations selectable by an instantiated
// receiver type, so newly instantiated types can make more procedures
// reachable, which can instantiate more types — iterate until stable.
func (mr *ModRef) rta() {
	mr.inst = types.NewBitset(mr.prog.Universe.NumTypes())
	mr.reachable = make(map[*ir.Proc]bool)
	var sites []*ir.Instr // method-call sites in reachable code
	var queue []*ir.Proc
	enqueue := func(p *ir.Proc) {
		if p != nil && !mr.reachable[p] {
			mr.reachable[p] = true
			queue = append(queue, p)
		}
	}
	enqueue(mr.prog.Main)
	for {
		for len(queue) > 0 {
			p := queue[0]
			queue = queue[1:]
			for _, b := range p.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					switch in.Op {
					case ir.OpNew, ir.OpNewArray:
						if in.Type != nil {
							mr.inst.Add(in.Type.ID())
						}
					case ir.OpCall:
						enqueue(mr.prog.ProcByName[in.Callee])
					case ir.OpMethodCall:
						sites = append(sites, in)
					}
				}
			}
		}
		// Re-dispatch every reachable method site under the grown
		// instantiated set. No fallback here: an empty dispatch set just
		// means no possible receiver is instantiated yet (or ever).
		for _, in := range sites {
			for _, callee := range mr.dispatch(in, true) {
				enqueue(callee)
			}
		}
		if len(queue) == 0 {
			return
		}
	}
}

// tarjanSCCs returns the call graph's strongly connected components in
// Tarjan emission order: each SCC appears after every SCC it can
// reach, so iterating the result is a bottom-up (callees-first) walk
// of the condensation.
func (mr *ModRef) tarjanSCCs() [][]*ir.Proc {
	index := make(map[*ir.Proc]int, len(mr.prog.Procs))
	low := make(map[*ir.Proc]int, len(mr.prog.Procs))
	onStack := make(map[*ir.Proc]bool)
	var stack []*ir.Proc
	next := 0
	var sccs [][]*ir.Proc
	var strong func(p *ir.Proc)
	strong = func(p *ir.Proc) {
		index[p] = next
		low[p] = next
		next++
		stack = append(stack, p)
		onStack[p] = true
		for _, c := range mr.callees[p] {
			if _, seen := index[c]; !seen {
				strong(c)
				if low[c] < low[p] {
					low[p] = low[c]
				}
			} else if onStack[c] && index[c] < low[p] {
				low[p] = index[c]
			}
		}
		if low[p] == index[p] {
			var scc []*ir.Proc
			for {
				q := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[q] = false
				scc = append(scc, q)
				if q == p {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, p := range mr.prog.Procs {
		if _, seen := index[p]; !seen {
			strong(p)
		}
	}
	return sccs
}

// summarizeSCCs computes transitive summaries bottom-up over the
// SCCs. A single pass in Tarjan emission order sees final callee
// summaries; members of one SCC share one summary, which is exact
// because strong connectivity makes their transitive effects coincide
// — the sound fixpoint for recursion, without iteration.
func (mr *ModRef) summarizeSCCs(sccs [][]*ir.Proc) {
	for _, scc := range sccs {
		member := make(map[*ir.Proc]bool, len(scc))
		for _, p := range scc {
			member[p] = true
		}
		sum := &Effects{ModGlobals: make(map[*ir.Var]bool)}
		absorbed := make(map[*Effects]bool)
		for _, p := range scc {
			sum.absorb(mr.direct[p])
			for _, c := range mr.callees[p] {
				if cs := mr.byProc[c]; !member[c] && !absorbed[cs] {
					absorbed[cs] = true
					sum.absorb(cs)
				}
			}
		}
		for _, p := range scc {
			mr.byProc[p] = sum
		}
	}
}
