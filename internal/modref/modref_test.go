package modref_test

import (
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/driver"
	"tbaa/internal/ir"
	"tbaa/internal/modref"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, _, err := driver.Compile("t.m3", src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

const effectsSrc = `
MODULE M;
TYPE
  T = OBJECT f, g: INTEGER; END;
  A = ARRAY OF INTEGER;
VAR
  t: T;
  arr: A;
  gcount: INTEGER;

PROCEDURE Leaf() =
BEGIN
  t.f := 1;
END Leaf;

PROCEDURE Mid() =
BEGIN
  Leaf();
  arr[0] := 2;
END Mid;

PROCEDURE Top() =
BEGIN
  Mid();
  gcount := gcount + 1;
END Top;

PROCEDURE Pure(x: INTEGER): INTEGER =
BEGIN
  RETURN x * 2;
END Pure;

PROCEDURE Reader(): INTEGER =
BEGIN
  RETURN t.g;
END Reader;

BEGIN
  Top();
  gcount := Pure(Reader());
END M.
`

func TestTransitiveMods(t *testing.T) {
	prog := compile(t, effectsSrc)
	mr := modref.Compute(prog)
	top := mr.Effects(prog.ProcByName["Top"])
	// Top transitively modifies t.f (via Leaf), arr elements (via Mid),
	// and gcount directly.
	if len(top.Mods) < 2 {
		t.Errorf("Top should accumulate transitive mod APs, got %d", len(top.Mods))
	}
	var hasGlobal bool
	for g := range top.ModGlobals {
		if g.Name == "gcount" {
			hasGlobal = true
		}
	}
	if !hasGlobal {
		t.Error("Top modifies global gcount")
	}
	pure := mr.Effects(prog.ProcByName["Pure"])
	if len(pure.Mods) != 0 || len(pure.ModGlobals) != 0 {
		t.Errorf("Pure must have no mods: %+v", pure)
	}
	reader := mr.Effects(prog.ProcByName["Reader"])
	if len(reader.Refs) == 0 {
		t.Error("Reader must record a ref")
	}
	if len(reader.Mods) != 0 {
		t.Error("Reader must not record mods")
	}
}

func TestMayModify(t *testing.T) {
	prog := compile(t, effectsSrc)
	mr := modref.Compute(prog)
	o := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
	// Find the t.g load in Reader and the t.f store AP.
	var tg *ir.AP
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.AP != nil && in.AP.String() == "t.g" {
					tg = in.AP
				}
			}
		}
	}
	if tg == nil {
		t.Fatal("t.g not found")
	}
	leaf := mr.Effects(prog.ProcByName["Leaf"])
	// Leaf writes t.f only: it cannot modify t.g under a field-sensitive
	// oracle.
	if modref.MayModify(leaf, tg, alias.Site{}, o, prog.AddressTakenVars) {
		t.Error("Leaf (writes t.f) must not modify t.g under SMFieldTypeRefs")
	}
	// Under TypeDecl the fields are indistinguishable.
	td := alias.New(prog, alias.Options{Level: alias.LevelTypeDecl})
	if !modref.MayModify(leaf, tg, alias.Site{}, td, prog.AddressTakenVars) {
		t.Error("Leaf must modify t.g under TypeDecl (no field sensitivity)")
	}
}

func TestVarWriteKills(t *testing.T) {
	intT := compile(t, "MODULE X; BEGIN END X.").Universe.IntT
	v := &ir.Var{Name: "v", Type: intT}
	w := &ir.Var{Name: "w", Type: intT}
	byref := &ir.Var{Name: "p", Type: intT, ByRef: true}
	at := map[*ir.Var]bool{}

	apV := &ir.AP{Root: v, Sels: []ir.APSel{{Kind: ir.SelField, Field: "f", Type: intT}}}
	if !modref.VarWriteKills(apV, v, at) {
		t.Error("writing the root var kills the path")
	}
	if modref.VarWriteKills(apV, w, at) {
		t.Error("writing an unrelated var must not kill")
	}
	// Deref path through a by-ref formal: killed only when the written
	// var's address was taken and types match.
	apDeref := &ir.AP{Root: byref, Sels: []ir.APSel{{Kind: ir.SelDeref, Type: intT}}}
	if modref.VarWriteKills(apDeref, w, at) {
		t.Error("address not taken: deref cannot point at w")
	}
	at[w] = true
	if !modref.VarWriteKills(apDeref, w, at) {
		t.Error("address-taken same-type var must kill deref paths")
	}
}

func TestLocStoreKills(t *testing.T) {
	u := compile(t, "MODULE X; BEGIN END X.").Universe
	intT := u.IntT
	arrV := &ir.Var{Name: "a", Type: u.NewArray("", intT)}
	idxV := &ir.Var{Name: "i", Type: intT}
	at := map[*ir.Var]bool{idxV: true}
	ap := &ir.AP{Root: arrV, Sels: []ir.APSel{
		{Kind: ir.SelIndex, Index: ir.V(idxV), Type: intT},
	}}
	// A store through an INTEGER location may write the subscript var i.
	if !modref.LocStoreKills(ap, intT.ID(), at) {
		t.Error("loc store to INTEGER must kill paths subscripted by address-taken i")
	}
	// A store through a CHAR location cannot.
	if modref.LocStoreKills(ap, u.CharT.ID(), at) {
		t.Error("loc store to CHAR cannot write i")
	}
}

func TestDispatchViaRegistry(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE
  B = OBJECT METHODS m() := BM; END;
  C = B OBJECT OVERRIDES m := CM; END;
  D = C OBJECT END; (* inherits CM *)
PROCEDURE BM(self: B) = BEGIN END BM;
PROCEDURE CM(self: C) = BEGIN END CM;
VAR c: C;
BEGIN
  c := NEW(D);
  c.m();
END M.
`)
	mr := modref.Compute(prog)
	var call *ir.Instr
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpMethodCall {
					call = &b.Instrs[i]
				}
			}
		}
	}
	if call == nil {
		t.Fatal("no method call")
	}
	targets := mr.Dispatch(call)
	// Static type C: subtypes {C, D} both implemented by CM.
	if len(targets) != 1 || targets[0].Name != "CM" {
		var names []string
		for _, p := range targets {
			names = append(names, p.Name)
		}
		t.Errorf("dispatch set = %v, want [CM]", names)
	}
}

func TestRecursionTerminates(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
VAR t: T;
PROCEDURE Odd(n: INTEGER) =
BEGIN
  t.f := n;
  IF n > 0 THEN Even(n - 1); END;
END Odd;
PROCEDURE Even(n: INTEGER) =
BEGIN
  IF n > 0 THEN Odd(n - 1); END;
END Even;
BEGIN
  t := NEW(T);
  Odd(9);
END M.
`)
	mr := modref.Compute(prog)
	even := mr.Effects(prog.ProcByName["Even"])
	// Even transitively modifies t.f through the mutual recursion.
	if len(even.Mods) == 0 {
		t.Error("mutual recursion: Even must inherit Odd's mods")
	}
}
