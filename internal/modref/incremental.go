package modref

import (
	"tbaa/internal/ir"
	"tbaa/internal/types"
)

// This file implements the incremental counterpart of ComputeWith:
// rebuilding a ModRef after a known set of procedures was mutated, at a
// cost proportional to the mutated bodies' components of the call graph
// instead of the whole program.
//
// Like the alias layer's delta (internal/alias/incremental.go), this
// path is exact, not merely conservative: every reused freshness fact,
// direct-effects scan, and SCC summary is justified by an invariant
// below, and whenever an invariant cannot be established Update either
// recomputes the piece or returns nil so the caller falls back to
// ComputeWith — which is always exact. A dirty-set bug therefore only
// costs performance, never soundness.
//
// The reuse invariants, bottom-up:
//
//   - Call edges of a clean procedure are unchanged: direct calls
//     resolve through ProcByName (no procedure added, removed, or
//     renamed — guarded by the fingerprint's proc count; edited bodies
//     keep their *ir.Proc identity) and method-call dispatch depends on
//     the body's sites, the universe, the RTA instantiated set, and the
//     Refine narrowing, all of which the fingerprint and the explicit
//     instantiated-set comparison pin.
//   - Freshness facts of an SCC are unchanged when its membership is the
//     same as in the old decomposition, no member was mutated, and every
//     outside callee's returnsFresh fact is unchanged — those are the
//     only inputs of freshnessSCC's fixpoint besides AddressTakenVars
//     (fingerprint-guarded).
//   - Direct effects of a clean procedure whose freshStores marks were
//     carried over are unchanged; shape IDs stay valid because the new
//     generation interns into a clone of the old shape table, which
//     preserves every existing ID and only appends.
//   - An SCC summary is reusable when its membership is unchanged, no
//     member's direct effects changed, and every outside callee's
//     summary is the identical *Effects. When a summary must be rebuilt
//     but its content comes out equal to the old one, the old object is
//     installed instead, so pointer equality keeps meaning content
//     equality upstream and a local change cannot cascade into
//     whole-graph resummarization.
//
// Update never writes old: shared substructures (callee slices, direct
// and summary Effects, the old shape table) are immutable once their
// construction finished, so queries in flight against the old ModRef
// remain correct while and after the new generation is built.

// modrefFP witnesses the global fact tables the mod-ref construction
// consults beyond procedure bodies. Every component is append-only
// under pass pipelines and server edits, so equal values imply the
// tables are identical to what the old build saw: the universe feeds
// dispatch cones, Merges feed the Refine narrowing's TypeRefsTable,
// AddressTakenVars feeds region candidacy in the freshness analysis,
// and the proc count pins ProcByName resolution.
type modrefFP struct {
	numTypes int
	merges   int
	addrVars int
	numProcs int
}

func modrefFPOf(prog *ir.Program) modrefFP {
	return modrefFP{
		numTypes: prog.Universe.NumTypes(),
		merges:   len(prog.Merges),
		addrVars: len(prog.AddressTakenVars),
		numProcs: len(prog.Procs),
	}
}

// Update builds a new ModRef over old's program after the given
// procedures' bodies were mutated, reusing the old call edges,
// freshness facts, direct effects, and SCC summaries of everything the
// mutation provably cannot have changed. cfg must request the same mode
// as old's (Refine may be a fresh closure; the fingerprint guarantees
// it answers identically).
//
// It returns the new ModRef plus the consumers: clean procedures for
// which some callee's summary object changed, whose cached flow facts
// (which consulted the old summary through CallEffects) the caller must
// invalidate. Dirty procedures are not listed — the caller already
// invalidates those. A nil ModRef means the delta preconditions do not
// hold (empty dirty set, mode mismatch, a global fact table grew, or
// the RTA instantiated set changed) and the caller must fall back to
// ComputeWith.
func Update(old *ModRef, cfg Config, dirty []*ir.Proc) (*ModRef, []*ir.Proc) {
	if old == nil || len(dirty) == 0 || old.direct == nil || old.sccOf == nil {
		return nil, nil
	}
	if cfg.RTA != old.cfg.RTA || cfg.OpenWorld != old.cfg.OpenWorld {
		return nil, nil
	}
	if modrefFPOf(old.prog) != old.fp {
		return nil, nil
	}
	prog := old.prog
	mr := &ModRef{
		prog:    prog,
		cfg:     cfg,
		byProc:  make(map[*ir.Proc]*Effects, len(prog.Procs)),
		direct:  make(map[*ir.Proc]*Effects, len(prog.Procs)),
		callees: make(map[*ir.Proc][]*ir.Proc, len(prog.Procs)),
		effMemo: make(map[*ir.Instr]*Effects),
		shapes:  old.shapes.clone(),
		fp:      old.fp,
	}
	if cfg.RTA && !cfg.OpenWorld && prog.Main != nil {
		mr.rta()
	}
	// Dispatch must agree with the old build everywhere, or clean
	// procedures' call edges (and every summary above them) could
	// differ: the instantiated-type filter is the only dispatch input
	// not pinned by the fingerprint.
	if !bitsetEqual(mr.inst, old.inst) {
		return nil, nil
	}

	isDirty := make(map[*ir.Proc]bool, len(dirty))
	for _, p := range dirty {
		isDirty[p] = true
	}
	for _, p := range prog.Procs {
		if isDirty[p] {
			mr.callees[p] = mr.collectProcEdges(p)
		} else {
			mr.callees[p] = old.callees[p]
		}
	}
	// The condensation is linear in the graph; recompute it whole. What
	// is reused per-SCC below is the expensive part: fixpoints, body
	// scans, and summary unions.
	sccs := mr.tarjanSCCs()
	mr.recordSCCs(sccs)

	// sccUnchanged: the SCC has exactly the membership it had in the old
	// decomposition. A dirty procedure's edge change can merge or split
	// components that contain clean procedures, and freshness and
	// summary fixpoints are per-component, so membership equality is a
	// precondition for reusing either.
	sccUnchanged := func(scc []*ir.Proc) bool {
		id, ok := old.sccOf[scc[0]]
		if !ok || old.sccSize[id] != int32(len(scc)) {
			return false
		}
		for _, p := range scc[1:] {
			if oid, ok := old.sccOf[p]; !ok || oid != id {
				return false
			}
		}
		return true
	}

	// Freshness, bottom-up. freshRecomputed marks procedures whose
	// freshStores marks may differ from the old build's, which forces
	// their direct effects to be rescanned.
	freshRecomputed := make(map[*ir.Proc]bool)
	if cfg.RTA {
		mr.freshStores = make(map[*ir.Instr]bool)
		mr.returnsFresh = make(map[*ir.Proc]bool, len(prog.Procs))
		for _, scc := range sccs {
			reuse := sccUnchanged(scc)
			if reuse {
				for _, p := range scc {
					if isDirty[p] {
						reuse = false
						break
					}
					for _, c := range mr.callees[p] {
						if oid := old.sccOf[c]; oid == old.sccOf[p] {
							continue // same-SCC edge: handled by the fixpoint itself
						}
						if mr.returnsFresh[c] != old.returnsFresh[c] {
							reuse = false
							break
						}
					}
					if !reuse {
						break
					}
				}
			}
			if reuse {
				for _, p := range scc {
					mr.returnsFresh[p] = old.returnsFresh[p]
					for _, b := range p.Blocks {
						for i := range b.Instrs {
							if in := &b.Instrs[i]; old.freshStores[in] {
								mr.freshStores[in] = true
							}
						}
					}
				}
				continue
			}
			mr.freshnessSCC(scc)
			for _, p := range scc {
				freshRecomputed[p] = true
			}
		}
	}

	// Direct effects: rescan dirty bodies and bodies whose freshness
	// marks were recomputed; share the old object for everything else.
	// A rescan that reproduces the old content installs the old object,
	// so the pointer comparison in the summary pass below keeps meaning
	// "content changed".
	for _, p := range prog.Procs {
		od := old.direct[p]
		if !isDirty[p] && !freshRecomputed[p] {
			mr.direct[p] = od
			continue
		}
		nd := mr.collectDirectProc(p)
		if od != nil && !isDirty[p] && effectsEqual(nd, od) {
			nd = od
		}
		mr.direct[p] = nd
	}

	// Summaries, bottom-up. Reuse the old summary object when nothing
	// feeding it changed; otherwise rebuild, but install the old object
	// if the rebuilt content matches, stopping the cascade there.
	for _, scc := range sccs {
		member := make(map[*ir.Proc]bool, len(scc))
		for _, p := range scc {
			member[p] = true
		}
		var oldSum *Effects
		same := sccUnchanged(scc)
		if same {
			oldSum = old.byProc[scc[0]]
		}
		reuse := same
		for _, p := range scc {
			if !reuse {
				break
			}
			if mr.direct[p] != old.direct[p] {
				reuse = false
				break
			}
			for _, c := range mr.callees[p] {
				if !member[c] && mr.byProc[c] != old.byProc[c] {
					reuse = false
					break
				}
			}
		}
		if reuse {
			for _, p := range scc {
				mr.byProc[p] = oldSum
			}
			continue
		}
		sum := &Effects{ModGlobals: make(map[*ir.Var]bool)}
		absorbed := make(map[*Effects]bool)
		for _, p := range scc {
			sum.absorb(mr.direct[p])
			for _, c := range mr.callees[p] {
				if cs := mr.byProc[c]; !member[c] && !absorbed[cs] {
					absorbed[cs] = true
					sum.absorb(cs)
				}
			}
		}
		if oldSum != nil && effectsEqual(sum, oldSum) {
			sum = oldSum // already materialized; never re-materialize a shared object
		} else {
			sum.materialize(mr.shapes)
		}
		for _, p := range scc {
			mr.byProc[p] = sum
		}
	}

	// Consumers: clean procedures one of whose callees' summary object
	// changed. Their flow facts consulted the old object (CallEffects)
	// and must be invalidated; pointer equality elsewhere guarantees
	// content equality, so everything unlisted saw identical effects.
	var consumers []*ir.Proc
	for _, p := range prog.Procs {
		if isDirty[p] {
			continue
		}
		for _, c := range mr.callees[p] {
			if mr.byProc[c] != old.byProc[c] {
				consumers = append(consumers, p)
				break
			}
		}
	}
	return mr, consumers
}

// clone copies the shape table so the new generation can intern fresh
// shapes without mutating the old one (whose bitset-indexed summaries
// stay live for in-flight queries). Existing IDs are preserved, so old
// bitvecs remain valid against the clone's reps.
func (st *shapeTab) clone() *shapeTab {
	c := &shapeTab{
		byAP:  make(map[*ir.AP]int32, len(st.byAP)),
		byKey: make(map[string]int32, len(st.byKey)),
		reps:  append([]*ir.AP(nil), st.reps...),
	}
	for k, v := range st.byAP {
		c.byAP[k] = v
	}
	for k, v := range st.byKey {
		c.byKey[k] = v
	}
	return c
}

// effectsEqual reports whether two summaries describe the same effects:
// equal shape sets (IDs are stable across the table clone, so bitvec
// equality is shape equality), equal rebound globals, and equal flags.
// Equal content means equal verdicts from MayModify and MayRebind.
func effectsEqual(a, b *Effects) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Top != b.Top || a.WritesThroughLocs != b.WritesThroughLocs {
		return false
	}
	if len(a.ModGlobals) != len(b.ModGlobals) {
		return false
	}
	for g := range a.ModGlobals {
		if !b.ModGlobals[g] {
			return false
		}
	}
	return bitvecEqual(a.mods, b.mods) && bitvecEqual(a.refs, b.refs)
}

// bitvecEqual compares two shape bitsets, ignoring trailing zero words
// (the vectors grow lazily, so equal sets may have different lengths).
func bitvecEqual(a, b bitvec) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for i, w := range a {
		if w != b[i] {
			return false
		}
	}
	for _, w := range b[len(a):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// bitsetEqual compares two instantiated-type bitsets; nil equals nil
// (no filter in either build).
func bitsetEqual(a, b types.Bitset) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if len(a) != len(b) {
		return false
	}
	for i, w := range a {
		if w != b[i] {
			return false
		}
	}
	return true
}
