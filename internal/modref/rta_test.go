package modref_test

import (
	"testing"

	"tbaa/internal/ir"
	"tbaa/internal/modref"
)

// rtaSrc has a two-implementation method where only one receiver type
// is ever instantiated, an uncalled procedure allocating a third type,
// and a mutually recursive pair — enough structure for the RTA walk,
// the dispatch filter, and the SCC summarizer to be observable.
const rtaSrc = `
MODULE R;
TYPE
  B  = OBJECT v: INTEGER; METHODS m() := BM; END;
  C1 = B OBJECT OVERRIDES m := C1M; END;
  C2 = B OBJECT OVERRIDES m := C2M; END;
  Dead = OBJECT z: INTEGER; END;
VAR
  b: B;
  g1, g2: INTEGER;

PROCEDURE BM(self: B) = BEGIN g1 := 1; END BM;
PROCEDURE C1M(self: B) = BEGIN self.v := 1; END C1M;
PROCEDURE C2M(self: B) = BEGIN g2 := 2; END C2M;

PROCEDURE Unreached() =
VAR d: Dead;
BEGIN
  d := NEW(Dead);
  d.z := 1;
END Unreached;

PROCEDURE Odd(n: INTEGER) =
BEGIN
  IF n > 0 THEN Even(n - 1); END;
END Odd;
PROCEDURE Even(n: INTEGER) =
BEGIN
  g1 := n;
  IF n > 0 THEN Odd(n - 1); END;
END Even;

BEGIN
  b := NEW(C1);
  b.m();
  Odd(5);
END R.
`

func findCall(t *testing.T, prog *ir.Program, op ir.Op) *ir.Instr {
	t.Helper()
	for _, p := range prog.Procs {
		for _, blk := range p.Blocks {
			for i := range blk.Instrs {
				if blk.Instrs[i].Op == op {
					return &blk.Instrs[i]
				}
			}
		}
	}
	t.Fatalf("no %v instruction", op)
	return nil
}

// TestRTAInstantiatedFilter: the CHA cone dispatches b.m() to both
// overrides; RTA sees only C1 instantiated and drops C2M.
func TestRTAInstantiatedFilter(t *testing.T) {
	prog := compile(t, rtaSrc)
	call := findCall(t, prog, ir.OpMethodCall)

	cha := modref.Compute(prog)
	if got := len(cha.Dispatch(call)); got != 3 {
		t.Fatalf("CHA dispatch set has %d targets, want 3 (BM, C1M, C2M)", got)
	}
	if cha.Interprocedural() {
		t.Error("Compute must report a CHA (non-interprocedural) build")
	}

	rta := modref.ComputeWith(prog, modref.Config{RTA: true})
	if !rta.Interprocedural() {
		t.Error("ComputeWith(RTA) must report an interprocedural build")
	}
	targets := rta.Dispatch(call)
	if len(targets) != 1 || targets[0].Name != "C1M" {
		var names []string
		for _, p := range targets {
			names = append(names, p.Name)
		}
		t.Errorf("RTA dispatch set = %v, want [C1M]", names)
	}
	// The call's combined effects drop C2M's global write.
	g2 := findGlobal(t, prog, "g2")
	eff := rta.CallEffects(call)
	if eff.ModGlobals[g2] {
		t.Error("RTA call effects include the uninstantiated override's g2 write")
	}
	if !cha.CallEffects(call).ModGlobals[g2] {
		t.Error("CHA call effects should include g2 (test premise)")
	}
}

func findGlobal(t *testing.T, prog *ir.Program, name string) *ir.Var {
	t.Helper()
	for _, v := range prog.Globals {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("no global %q", name)
	return nil
}

// TestRTAReachabilityAndInstantiated: the Dead type is only allocated
// in an uncalled procedure, so the RTA walk must neither reach the
// procedure nor count the type as instantiated.
func TestRTAReachabilityAndInstantiated(t *testing.T) {
	prog := compile(t, rtaSrc)
	rta := modref.ComputeWith(prog, modref.Config{RTA: true})
	if rta.Reachable(prog.ProcByName["Unreached"]) {
		t.Error("Unreached is not callable from the module body")
	}
	for _, name := range []string{"C1M", "Odd", "Even"} {
		if !rta.Reachable(prog.ProcByName[name]) {
			t.Errorf("%s should be reachable", name)
		}
	}
	inst := rta.Instantiated()
	if inst == nil {
		t.Fatal("closed-world RTA must produce an instantiated set")
	}
	ids := make(map[int]bool, len(inst))
	for _, id := range inst {
		ids[id] = true
	}
	for _, typ := range prog.Universe.All() {
		switch typ.String() {
		case "C1":
			if !ids[typ.ID()] {
				t.Error("C1 is instantiated in the module body")
			}
		case "C2", "Dead":
			if ids[typ.ID()] {
				t.Errorf("%s is never instantiated in reachable code", typ)
			}
		}
	}
}

// TestRTAOpenWorldDisablesFilter: open-world escapes get the sound
// top — unavailable code may instantiate anything, so dispatch falls
// back to the CHA cone.
func TestRTAOpenWorldDisablesFilter(t *testing.T) {
	prog := compile(t, rtaSrc)
	open := modref.ComputeWith(prog, modref.Config{RTA: true, OpenWorld: true})
	if open.Instantiated() != nil {
		t.Error("open-world RTA must not filter by instantiated types")
	}
	call := findCall(t, prog, ir.OpMethodCall)
	if got := len(open.Dispatch(call)); got != 3 {
		t.Errorf("open-world dispatch set has %d targets, want the CHA cone's 3", got)
	}
}

// TestSCCSharedSummary: mutually recursive procedures form one SCC and
// share their transitive effects — the bottom-up summarizer's sound
// fixpoint for recursion.
func TestSCCSharedSummary(t *testing.T) {
	prog := compile(t, rtaSrc)
	rta := modref.ComputeWith(prog, modref.Config{RTA: true})
	odd := rta.Effects(prog.ProcByName["Odd"])
	even := rta.Effects(prog.ProcByName["Even"])
	if odd != even {
		t.Error("Odd and Even are one SCC and must share a summary")
	}
	g1 := findGlobal(t, prog, "g1")
	if !odd.ModGlobals[g1] {
		t.Error("the recursive SCC transitively reassigns g1")
	}
}

// freshSrc is a constructor-style program: MakeNode allocates and
// initializes, Build recursively assembles a list out of fresh nodes,
// Smash writes a caller-visible field.
const freshSrc = `
MODULE F;
TYPE
  N = OBJECT val: INTEGER; next: N; END;
  A = ARRAY OF INTEGER;
VAR
  head: N;
  out: INTEGER;

PROCEDURE MakeNode(v: INTEGER): N =
VAR n: N;
BEGIN
  n := NEW(N);
  n.val := v;
  n.next := NIL;
  RETURN n;
END MakeNode;

PROCEDURE Build(k: INTEGER): N =
VAR n: N;
BEGIN
  n := MakeNode(k);
  IF k > 0 THEN
    n.next := Build(k - 1);
  END;
  RETURN n;
END Build;

PROCEDURE FillFresh(): A =
VAR a: A;
BEGIN
  a := NEW(A, 4);
  a[0] := 7;
  RETURN a;
END FillFresh;

PROCEDURE Smash(n: N) =
BEGIN
  n.val := 0;
END Smash;

BEGIN
  head := Build(3);
  Smash(head);
  out := FillFresh()[0];
  PutInt(out); PutLn();
END F.
`

// TestFreshnessSummaries: stores into invocation-fresh objects vanish
// from caller-visible summaries; stores into parameters stay.
func TestFreshnessSummaries(t *testing.T) {
	prog := compile(t, freshSrc)
	rta := modref.ComputeWith(prog, modref.Config{RTA: true})
	for _, name := range []string{"MakeNode", "Build", "FillFresh"} {
		p := prog.ProcByName[name]
		if !rta.ReturnsFresh(p) {
			t.Errorf("%s returns a freshly allocated object", name)
		}
		if eff := rta.Effects(p); len(eff.Mods) != 0 || eff.Top {
			t.Errorf("%s's summary should hide its fresh stores, has Mods=%v Top=%v",
				name, eff.Mods, eff.Top)
		}
	}
	smash := rta.Effects(prog.ProcByName["Smash"])
	if len(smash.Mods) != 1 {
		t.Errorf("Smash writes its parameter — a caller-visible mod; got %v", smash.Mods)
	}
	// The CHA build keeps every store visible.
	cha := modref.Compute(prog)
	if eff := cha.Effects(prog.ProcByName["Build"]); len(eff.Mods) == 0 {
		t.Error("CHA summaries must keep the constructor stores (test premise)")
	}
}

// TestFreshnessStopsAtEscapedBindings: a store through a parameter, a
// global, or a variable holding a loaded (pre-existing) object is
// never fresh.
func TestFreshnessStopsAtEscapedBindings(t *testing.T) {
	prog := compile(t, `
MODULE G;
TYPE N = OBJECT val: INTEGER; next: N; END;
VAR head: N;

PROCEDURE Rebind(): N =
VAR n: N;
BEGIN
  n := NEW(N);
  n := head;     (* n no longer provably fresh *)
  n.val := 1;
  RETURN n;
END Rebind;

PROCEDURE DeepWrite() =
VAR n: N;
BEGIN
  n := NEW(N);
  n.next := head;
  n.next.val := 2; (* writes a pre-existing object through a load *)
END DeepWrite;

BEGIN
  head := NEW(N);
  head.val := 9;
  head := Rebind();
  DeepWrite();
  PutInt(head.val); PutLn();
END G.
`)
	rta := modref.ComputeWith(prog, modref.Config{RTA: true})
	if rta.ReturnsFresh(prog.ProcByName["Rebind"]) {
		t.Error("Rebind can return the pre-existing head")
	}
	if eff := rta.Effects(prog.ProcByName["Rebind"]); len(eff.Mods) == 0 {
		t.Error("Rebind's store may hit head — it must stay in the summary")
	}
	deep := rta.Effects(prog.ProcByName["DeepWrite"])
	// n.next := head is fresh (n's own field), but n.next.val := 2 goes
	// through a load and must remain visible.
	found := false
	for _, m := range deep.Mods {
		if len(m.Sels) == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("DeepWrite's depth-2 store must stay in the summary, has %v", deep.Mods)
	}
}
