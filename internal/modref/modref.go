// Package modref computes interprocedural mod-ref summaries: for every
// procedure, the set of access paths it (transitively) may modify and
// reference, plus the global variables it may reassign. The paper's RLE
// "is preceded by a mod-ref analysis which summarizes the access paths
// that are referenced and modified by each call" (Section 3.4.1); this is
// that analysis.
package modref

import (
	"tbaa/internal/alias"
	"tbaa/internal/ir"
	"tbaa/internal/types"
)

// Effects summarizes what a procedure may do to memory, transitively
// through calls.
type Effects struct {
	// Mods are representative access paths of stores the procedure may
	// perform (deduplicated by shape). Their roots are callee-local, but
	// may-alias queries against them only consult types and selectors.
	Mods []*ir.AP
	// Refs are representative access paths of loads.
	Refs []*ir.AP
	// ModGlobals are global variables the procedure may reassign.
	ModGlobals map[*ir.Var]bool
	// WritesThroughLocs reports whether the procedure may store through a
	// location value (a by-ref formal or WITH alias); such stores can hit
	// caller variables whose address was taken.
	WritesThroughLocs bool
}

// ModRef holds summaries for a whole program.
type ModRef struct {
	prog    *ir.Program
	byProc  map[*ir.Proc]*Effects
	callees map[*ir.Proc][]*ir.Proc
}

// Compute builds transitive mod-ref summaries.
func Compute(prog *ir.Program) *ModRef {
	mr := &ModRef{
		prog:    prog,
		byProc:  make(map[*ir.Proc]*Effects, len(prog.Procs)),
		callees: make(map[*ir.Proc][]*ir.Proc, len(prog.Procs)),
	}
	// Direct effects and call edges.
	for _, p := range prog.Procs {
		eff := &Effects{ModGlobals: make(map[*ir.Var]bool)}
		mr.byProc[p] = eff
		for _, b := range p.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpStore:
					if in.AP != nil {
						eff.Mods = addAP(eff.Mods, in.AP)
						if in.Sel.Kind == ir.SelDeref {
							eff.WritesThroughLocs = true
						}
					}
				case ir.OpLoad:
					if in.AP != nil && !in.AP.IsDope() {
						eff.Refs = addAP(eff.Refs, in.AP)
					}
				case ir.OpSetVar:
					if in.Var.Kind == ir.GlobalVar {
						eff.ModGlobals[in.Var] = true
					}
				case ir.OpStoreVarField:
					if in.Var.Kind == ir.GlobalVar {
						eff.ModGlobals[in.Var] = true
					}
					if in.AP != nil {
						eff.Mods = addAP(eff.Mods, in.AP)
					}
				case ir.OpCall:
					if callee := prog.ProcByName[in.Callee]; callee != nil {
						mr.callees[p] = append(mr.callees[p], callee)
					}
				case ir.OpMethodCall:
					for _, callee := range mr.Dispatch(in) {
						mr.callees[p] = append(mr.callees[p], callee)
					}
				}
			}
		}
	}
	// Transitive closure (iterate to fixpoint; the lattice is finite
	// because representative APs are deduplicated by shape).
	changed := true
	for changed {
		changed = false
		for _, p := range prog.Procs {
			eff := mr.byProc[p]
			for _, c := range mr.callees[p] {
				ce := mr.byProc[c]
				if ce == nil {
					continue
				}
				for _, ap := range ce.Mods {
					n := len(eff.Mods)
					eff.Mods = addAP(eff.Mods, ap)
					if len(eff.Mods) != n {
						changed = true
					}
				}
				for _, ap := range ce.Refs {
					n := len(eff.Refs)
					eff.Refs = addAP(eff.Refs, ap)
					if len(eff.Refs) != n {
						changed = true
					}
				}
				for g := range ce.ModGlobals {
					if !eff.ModGlobals[g] {
						eff.ModGlobals[g] = true
						changed = true
					}
				}
				if ce.WritesThroughLocs && !eff.WritesThroughLocs {
					eff.WritesThroughLocs = true
					changed = true
				}
			}
		}
	}
	return mr
}

// addAP appends ap if no existing representative has the same shape
// (selector kinds, fields, and types along the path).
func addAP(list []*ir.AP, ap *ir.AP) []*ir.AP {
	for _, e := range list {
		if sameShape(e, ap) {
			return list
		}
	}
	return append(list, ap)
}

func sameShape(a, b *ir.AP) bool {
	if len(a.Sels) != len(b.Sels) {
		return false
	}
	if a.Root.Type.ID() != b.Root.Type.ID() {
		return false
	}
	for i := range a.Sels {
		x, y := &a.Sels[i], &b.Sels[i]
		if x.Kind != y.Kind || x.Field != y.Field {
			return false
		}
		if x.Type != nil && y.Type != nil && x.Type.ID() != y.Type.ID() {
			return false
		}
	}
	return true
}

// Effects returns the summary for a procedure.
func (mr *ModRef) Effects(p *ir.Proc) *Effects { return mr.byProc[p] }

// Dispatch returns the procedures a method call may invoke, bounded by
// the static receiver type's subtype cone.
func (mr *ModRef) Dispatch(in *ir.Instr) []*ir.Proc {
	var out []*ir.Proc
	if in.RecvType == nil {
		// Unknown receiver: any implementation of the method name.
		seen := map[string]bool{}
		for _, o := range mr.prog.Universe.ObjectTypes() {
			if impl := o.Implementation(in.Method); impl != "" && !seen[impl] {
				seen[impl] = true
				if p := mr.prog.ProcByName[impl]; p != nil {
					out = append(out, p)
				}
			}
		}
		return out
	}
	seen := map[string]bool{}
	for _, id := range mr.prog.Universe.Subtypes(in.RecvType) {
		o, ok := mr.prog.Universe.ByID(id).(*types.Object)
		if !ok {
			continue
		}
		impl := o.Implementation(in.Method)
		if impl == "" || seen[impl] {
			continue
		}
		seen[impl] = true
		if p := mr.prog.ProcByName[impl]; p != nil {
			out = append(out, p)
		}
	}
	return out
}

// CallEffects returns the combined effects of a call instruction
// (OpCall or OpMethodCall).
func (mr *ModRef) CallEffects(in *ir.Instr) *Effects {
	switch in.Op {
	case ir.OpCall:
		if callee := mr.prog.ProcByName[in.Callee]; callee != nil {
			return mr.byProc[callee]
		}
	case ir.OpMethodCall:
		combined := &Effects{ModGlobals: make(map[*ir.Var]bool)}
		for _, callee := range mr.Dispatch(in) {
			ce := mr.byProc[callee]
			if ce == nil {
				continue
			}
			for _, ap := range ce.Mods {
				combined.Mods = addAP(combined.Mods, ap)
			}
			for _, ap := range ce.Refs {
				combined.Refs = addAP(combined.Refs, ap)
			}
			for g := range ce.ModGlobals {
				combined.ModGlobals[g] = true
			}
			combined.WritesThroughLocs = combined.WritesThroughLocs || ce.WritesThroughLocs
		}
		return combined
	}
	return &Effects{ModGlobals: map[*ir.Var]bool{}}
}

// StoreKills reports whether a store to dst invalidates the value of
// access path ap: the store may overwrite the location ap denotes (a
// content change), or the location of one of ap's proper prefixes —
// rewriting which object the deeper path selects through, so ap no
// longer names the location the cached value came from (a denotation
// change; VarWriteKills handles the root variable). Prefix-blind
// matching miscompiled `x.q := t` between a store and a load of x.q.p:
// the final fields differ, so MayAlias(x.q.p, x.q) is false, yet the
// reload must see t's object. Analysis implements the rule itself
// (alias.StoreKiller, with prefix caching); the fallback serves the
// trivial oracles.
func StoreKills(o alias.Oracle, ap *ir.AP, apSite alias.Site, dst *ir.AP, dstSite alias.Site) bool {
	if sk, ok := o.(alias.StoreKiller); ok {
		return sk.StoreKills(ap, apSite, dst, dstSite)
	}
	if alias.MayAliasAt(o, ap, apSite, dst, dstSite) {
		return true
	}
	for k := 1; k < len(ap.Sels); k++ {
		prefix := &ir.AP{Root: ap.Root, Sels: ap.Sels[:k]}
		if alias.MayAliasAt(o, prefix, apSite, dst, dstSite) {
			return true
		}
	}
	return false
}

// VarWriteKills reports whether writing variable v may change the value
// or meaning of path ap: either ap mentions v (root or subscript), or ap
// dereferences a location (its root is a by-ref formal or WITH alias)
// that may point at v because v's address was taken. Location targets
// have exactly their declared type in Modula-3 (VAR actuals must match
// formals exactly), so type-ID equality is sound here.
func VarWriteKills(ap *ir.AP, v *ir.Var, addrTakenVars map[*ir.Var]bool) bool {
	if ap.UsesVar(v) {
		return true
	}
	if addrTakenVars[v] && ap.Root.ByRef && v.Type.ID() == ap.Root.Type.ID() {
		return true
	}
	return false
}

// LocStoreKills reports whether a store through a location with the given
// target type may write a variable that ap depends on: the root (if its
// address was taken, the store can redirect what ap's prefix denotes) or
// a subscript variable (changing which element ap names).
func LocStoreKills(ap *ir.AP, targetTypeID int, addrTakenVars map[*ir.Var]bool) bool {
	if addrTakenVars[ap.Root] && ap.Root.Type.ID() == targetTypeID {
		return true
	}
	for i := range ap.Sels {
		s := &ap.Sels[i]
		if s.Kind == ir.SelIndex && s.Index.Kind == ir.VarOp {
			v := s.Index.Var
			if addrTakenVars[v] && v.Type.ID() == targetTypeID {
				return true
			}
		}
	}
	return false
}

// MayModify reports whether a call with the given effects may overwrite
// the location denoted by ap — or a variable ap depends on — under the
// given alias oracle. site is the statement ap is being evaluated at
// (normally the call site); site-aware oracles use it to narrow ap's
// root, while the callee's representative paths carry no statement
// context (a zero Site) and are judged by their declared types.
func MayModify(eff *Effects, ap *ir.AP, site alias.Site, o alias.Oracle, addrTakenVars map[*ir.Var]bool) bool {
	if eff == nil {
		return true
	}
	for g := range eff.ModGlobals {
		if VarWriteKills(ap, g, addrTakenVars) {
			return true
		}
	}
	for _, m := range eff.Mods {
		if StoreKills(o, ap, site, m, alias.Site{}) {
			return true
		}
		if last := m.Last(); last != nil && last.Kind == ir.SelDeref {
			if LocStoreKills(ap, m.Type().ID(), addrTakenVars) {
				return true
			}
		}
	}
	return false
}
