// Package modref computes interprocedural mod-ref summaries: for every
// procedure, the set of access paths it (transitively) may modify and
// reference, plus the global variables it may reassign. The paper's RLE
// "is preceded by a mod-ref analysis which summarizes the access paths
// that are referenced and modified by each call" (Section 3.4.1); this is
// that analysis.
package modref

import (
	"math/bits"
	"strconv"
	"sync"

	"tbaa/internal/alias"
	"tbaa/internal/ir"
	"tbaa/internal/types"
)

// Effects summarizes what a procedure may do to memory, transitively
// through calls.
type Effects struct {
	// Mods are representative access paths of stores the procedure may
	// perform (deduplicated by shape). Their roots are callee-local, but
	// may-alias queries against them only consult types and selectors.
	Mods []*ir.AP
	// Refs are representative access paths of loads.
	Refs []*ir.AP
	// ModGlobals are global variables the procedure may reassign.
	ModGlobals map[*ir.Var]bool
	// WritesThroughLocs reports whether the procedure may store through a
	// location value (a by-ref formal or WITH alias); such stores can hit
	// caller variables whose address was taken.
	WritesThroughLocs bool
	// Top marks a summary about which nothing is known — the sound
	// lattice top the interprocedural builder uses for escapes it cannot
	// bound (a call to a procedure the program does not define, or a
	// store whose access path was not recorded). MayModify and MayRebind
	// answer true for everything under a Top summary.
	Top bool

	// mods and refs are the construction-time representation: bitsets
	// over interned shape IDs (see shapeTab). Absorbing a callee summary
	// is then a word-wise union instead of an O(n·m) scan-based slice
	// merge, which kept the old builder quadratic on deep call graphs.
	// materialize turns them into the public Mods/Refs slices once the
	// bottom-up summarization is complete.
	mods, refs bitvec
}

// bitvec is a growable bitset over shape IDs.
type bitvec []uint64

func (b *bitvec) add(id int32) {
	w := int(id >> 6)
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << uint(id&63)
}

func (b *bitvec) union(src bitvec) {
	if len(src) > len(*b) {
		*b = append(*b, make([]uint64, len(src)-len(*b))...)
	}
	for i, w := range src {
		(*b)[i] |= w
	}
}

// absorb unions src into eff.
func (eff *Effects) absorb(src *Effects) {
	if src == nil {
		return
	}
	eff.mods.union(src.mods)
	eff.refs.union(src.refs)
	for g := range src.ModGlobals {
		eff.ModGlobals[g] = true
	}
	if src.WritesThroughLocs {
		eff.WritesThroughLocs = true
	}
	if src.Top {
		eff.Top = true
	}
}

// materialize fills the public Mods/Refs slices from the shape bitsets,
// in shape-ID (first-interning) order — deterministic across runs.
func (eff *Effects) materialize(st *shapeTab) {
	eff.Mods = st.paths(eff.mods)
	eff.Refs = st.paths(eff.refs)
}

// shapeTab interns access paths by shape (root type plus the selector
// kinds, fields, and types along the path) to dense IDs, so summaries
// can hold shape sets as bitsets. The per-pointer memo is effective
// because the compiler interns APs program-wide. Keying on the type ID
// (nil as its own bucket) refines the old scan's nil-type wildcard at
// worst into an extra representative with identical shape otherwise —
// a superset of representatives, so verdicts stay sound.
type shapeTab struct {
	byAP  map[*ir.AP]int32
	byKey map[string]int32
	reps  []*ir.AP
}

func newShapeTab() *shapeTab {
	return &shapeTab{byAP: make(map[*ir.AP]int32), byKey: make(map[string]int32)}
}

func (st *shapeTab) id(ap *ir.AP) int32 {
	if id, ok := st.byAP[ap]; ok {
		return id
	}
	key := shapeKey(ap)
	id, ok := st.byKey[key]
	if !ok {
		id = int32(len(st.reps))
		st.byKey[key] = id
		st.reps = append(st.reps, ap)
	}
	st.byAP[ap] = id
	return id
}

// paths returns the representative APs of the shapes in b.
func (st *shapeTab) paths(b bitvec) []*ir.AP {
	var out []*ir.AP
	for w, word := range b {
		for ; word != 0; word &= word - 1 {
			out = append(out, st.reps[w<<6+bits.TrailingZeros64(word)])
		}
	}
	return out
}

func shapeKey(ap *ir.AP) string {
	var b []byte
	b = strconv.AppendInt(b, int64(ap.Root.Type.ID()), 10)
	for i := range ap.Sels {
		s := &ap.Sels[i]
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(s.Kind), 10)
		b = append(b, ':')
		b = append(b, s.Field...)
		b = append(b, ':')
		tid := -1
		if s.Type != nil {
			tid = s.Type.ID()
		}
		b = strconv.AppendInt(b, int64(tid), 10)
	}
	return string(b)
}

// ModRef holds summaries for a whole program.
type ModRef struct {
	prog   *ir.Program
	cfg    Config
	byProc map[*ir.Proc]*Effects
	// direct holds each procedure's own (non-transitive) effects, kept
	// separately from the byProc summaries so an incremental rebuild can
	// re-absorb untouched procedures without rescanning their bodies
	// (see incremental.go).
	direct  map[*ir.Proc]*Effects
	callees map[*ir.Proc][]*ir.Proc
	// shapes interns every Mod/Ref access-path shape to a dense ID;
	// read-only once construction finishes (CallEffects only unions
	// bitsets of finished summaries and reads reps).
	shapes *shapeTab
	// inst is the RTA instantiated-type set; a nil bitset disables the
	// dispatch filter (the CHA cone).
	inst types.Bitset
	// reachable marks procedures the RTA walk reached from the module
	// body; nil when no RTA ran.
	reachable map[*ir.Proc]bool
	// effMu guards effMemo: CallEffects is reached from the analyzer's
	// lock-free query path (the flow layer's interprocedural call-kill
	// rule consults it while procedure facts solve concurrently).
	effMu sync.Mutex
	// effMemo caches CallEffects per call instruction (method calls
	// combine their dispatch targets' summaries; RLE's dataflow re-asks
	// per iteration).
	effMemo map[*ir.Instr]*Effects
	// freshStores marks store instructions whose target object is
	// provably allocated during the enclosing procedure's own
	// invocation (see freshness.go); they are invisible to callers.
	// Nil outside RTA mode.
	freshStores map[*ir.Instr]bool
	// returnsFresh marks procedures whose every return value is an
	// invocation-fresh object. Nil outside RTA mode.
	returnsFresh map[*ir.Proc]bool
	// fp witnesses the global fact tables dispatch and freshness
	// consult; Update bails to a full rebuild when any grew (see
	// incremental.go).
	fp modrefFP
	// sccOf and sccSize record the call-graph SCC decomposition the
	// summaries were built under, so Update can prove a component's
	// membership unchanged before reusing its freshness facts and
	// summary (see incremental.go).
	sccOf   map[*ir.Proc]int32
	sccSize []int32
}

// Compute builds transitive mod-ref summaries over the CHA call graph —
// every method call dispatches to each implementation in its static
// receiver type's subtype cone.
func Compute(prog *ir.Program) *ModRef {
	return ComputeWith(prog, Config{})
}

// collectEdges records every procedure's call-graph successors
// (method-call edges bounded by the current dispatch filter).
func (mr *ModRef) collectEdges() {
	for _, p := range mr.prog.Procs {
		mr.callees[p] = mr.collectProcEdges(p)
	}
}

// collectProcEdges returns one procedure's call-graph successors.
func (mr *ModRef) collectProcEdges(p *ir.Proc) []*ir.Proc {
	var out []*ir.Proc
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpCall:
				if callee := mr.prog.ProcByName[in.Callee]; callee != nil {
					out = append(out, callee)
				}
			case ir.OpMethodCall:
				out = append(out, mr.Dispatch(in)...)
			}
		}
	}
	return out
}

// collectDirect scans every procedure for its direct effects. In RTA
// mode, stores the freshness analysis proved local to one invocation
// (mr.freshStores) are omitted — they cannot overwrite any location a
// caller knew before the call — and escapes that cannot be bounded (a
// store with no recorded path, a call to an undefined procedure)
// poison the summary with the sound Top.
func (mr *ModRef) collectDirect() {
	for _, p := range mr.prog.Procs {
		mr.direct[p] = mr.collectDirectProc(p)
	}
}

// collectDirectProc scans one procedure's body for its direct effects.
func (mr *ModRef) collectDirectProc(p *ir.Proc) *Effects {
	eff := &Effects{ModGlobals: make(map[*ir.Var]bool)}
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpStore:
				if in.AP != nil {
					if !mr.freshStores[in] {
						eff.mods.add(mr.shapes.id(in.AP))
					}
					if in.Sel.Kind == ir.SelDeref {
						eff.WritesThroughLocs = true
					}
				} else if mr.cfg.RTA {
					// A store with no recorded path could hit anything.
					eff.Top = true
				}
			case ir.OpLoad:
				if in.AP != nil && !in.AP.IsDope() {
					eff.refs.add(mr.shapes.id(in.AP))
				}
			case ir.OpSetVar:
				if in.Var.Kind == ir.GlobalVar {
					eff.ModGlobals[in.Var] = true
				}
			case ir.OpStoreVarField:
				if in.Var.Kind == ir.GlobalVar {
					eff.ModGlobals[in.Var] = true
				}
				if in.AP != nil {
					eff.mods.add(mr.shapes.id(in.AP))
				}
			case ir.OpCall:
				if mr.cfg.RTA && mr.prog.ProcByName[in.Callee] == nil {
					// The callee is outside the program: sound top.
					eff.Top = true
				}
			}
		}
	}
	return eff
}

// Effects returns the summary for a procedure.
func (mr *ModRef) Effects(p *ir.Proc) *Effects { return mr.byProc[p] }

// Dispatch returns the procedures a method call may invoke: the
// implementations in the static receiver type's subtype cone, narrowed
// (when this ModRef was built interprocedurally) to RTA-instantiated
// receiver types and the Refine callback's TypeRefsTable row. When the
// filters leave nothing — the call is dead or can only trap — the full
// cone is returned, mirroring devirtualization's conservative fallback.
func (mr *ModRef) Dispatch(in *ir.Instr) []*ir.Proc {
	out := mr.dispatch(in, true)
	if len(out) == 0 && (mr.inst != nil || mr.cfg.Refine != nil) {
		out = mr.dispatch(in, false)
	}
	return out
}

func (mr *ModRef) dispatch(in *ir.Instr, filtered bool) []*ir.Proc {
	seen := map[string]bool{}
	var out []*ir.Proc
	add := func(o *types.Object) {
		if filtered && mr.inst != nil && !mr.inst.Has(o.ID()) {
			return // the dynamic receiver type must be instantiated
		}
		impl := o.Implementation(in.Method)
		if impl == "" || seen[impl] {
			return
		}
		seen[impl] = true
		if p := mr.prog.ProcByName[impl]; p != nil {
			out = append(out, p)
		}
	}
	if in.RecvType == nil {
		// Unknown receiver: any implementation of the method name.
		for _, o := range mr.prog.Universe.ObjectTypes() {
			add(o)
		}
		return out
	}
	var ids []int
	if filtered && mr.cfg.Refine != nil {
		ids = mr.cfg.Refine(in.RecvType) // TypeRefsTable row ⊆ the cone
	}
	if ids == nil {
		ids = mr.prog.Universe.Subtypes(in.RecvType)
	}
	for _, id := range ids {
		if o, ok := mr.prog.Universe.ByID(id).(*types.Object); ok {
			add(o)
		}
	}
	return out
}

// CallEffects returns the combined effects of a call instruction
// (OpCall or OpMethodCall), memoized per instruction. Safe for
// concurrent callers: the summaries themselves are immutable once
// computed, so only the memo map needs the lock.
func (mr *ModRef) CallEffects(in *ir.Instr) *Effects {
	mr.effMu.Lock()
	if eff, ok := mr.effMemo[in]; ok {
		mr.effMu.Unlock()
		return eff
	}
	mr.effMu.Unlock()
	eff := mr.callEffects(in)
	mr.effMu.Lock()
	if prior, ok := mr.effMemo[in]; ok {
		eff = prior // keep one canonical summary per call
	} else {
		mr.effMemo[in] = eff
	}
	mr.effMu.Unlock()
	return eff
}

func (mr *ModRef) callEffects(in *ir.Instr) *Effects {
	switch in.Op {
	case ir.OpCall:
		if callee := mr.prog.ProcByName[in.Callee]; callee != nil {
			return mr.byProc[callee]
		}
		if mr.cfg.RTA {
			// An undefined callee could do anything: sound top.
			return &Effects{ModGlobals: map[*ir.Var]bool{}, Top: true}
		}
	case ir.OpMethodCall:
		combined := &Effects{ModGlobals: make(map[*ir.Var]bool)}
		seen := make(map[*Effects]bool)
		for _, callee := range mr.Dispatch(in) {
			if sum := mr.byProc[callee]; !seen[sum] {
				seen[sum] = true
				combined.absorb(sum)
			}
		}
		combined.materialize(mr.shapes)
		return combined
	}
	return &Effects{ModGlobals: map[*ir.Var]bool{}}
}

// StoreKills reports whether a store to dst invalidates the value of
// access path ap: the store may overwrite the location ap denotes (a
// content change), or the location of one of ap's proper prefixes —
// rewriting which object the deeper path selects through, so ap no
// longer names the location the cached value came from (a denotation
// change; VarWriteKills handles the root variable). Prefix-blind
// matching miscompiled `x.q := t` between a store and a load of x.q.p:
// the final fields differ, so MayAlias(x.q.p, x.q) is false, yet the
// reload must see t's object. Analysis implements the rule itself
// (alias.StoreKiller, with prefix caching); the fallback serves the
// trivial oracles.
func StoreKills(o alias.Oracle, ap *ir.AP, apSite alias.Site, dst *ir.AP, dstSite alias.Site) bool {
	if sk, ok := o.(alias.StoreKiller); ok {
		return sk.StoreKills(ap, apSite, dst, dstSite)
	}
	if alias.MayAliasAt(o, ap, apSite, dst, dstSite) {
		return true
	}
	for k := 1; k < len(ap.Sels); k++ {
		prefix := &ir.AP{Root: ap.Root, Sels: ap.Sels[:k]}
		if alias.MayAliasAt(o, prefix, apSite, dst, dstSite) {
			return true
		}
	}
	return false
}

// VarWriteKills reports whether writing variable v may change the value
// or meaning of path ap: either ap mentions v (root or subscript), or ap
// dereferences a location (its root is a by-ref formal or WITH alias)
// that may point at v because v's address was taken. Location targets
// have exactly their declared type in Modula-3 (VAR actuals must match
// formals exactly), so type-ID equality is sound here.
func VarWriteKills(ap *ir.AP, v *ir.Var, addrTakenVars map[*ir.Var]bool) bool {
	if ap.UsesVar(v) {
		return true
	}
	if addrTakenVars[v] && ap.Root.ByRef && v.Type.ID() == ap.Root.Type.ID() {
		return true
	}
	return false
}

// LocStoreKills reports whether a store through a location with the given
// target type may write a variable that ap depends on: the root (if its
// address was taken, the store can redirect what ap's prefix denotes) or
// a subscript variable (changing which element ap names).
func LocStoreKills(ap *ir.AP, targetTypeID int, addrTakenVars map[*ir.Var]bool) bool {
	if addrTakenVars[ap.Root] && ap.Root.Type.ID() == targetTypeID {
		return true
	}
	for i := range ap.Sels {
		s := &ap.Sels[i]
		if s.Kind == ir.SelIndex && s.Index.Kind == ir.VarOp {
			v := s.Index.Var
			if addrTakenVars[v] && v.Type.ID() == targetTypeID {
				return true
			}
		}
	}
	return false
}

// MayModify reports whether a call with the given effects may overwrite
// the location denoted by ap — or a variable ap depends on — under the
// given alias oracle. site is the statement ap is being evaluated at
// (normally the call site); site-aware oracles use it to narrow ap's
// root, while the callee's representative paths carry no statement
// context (a zero Site) and are judged by their declared types.
func MayModify(eff *Effects, ap *ir.AP, site alias.Site, o alias.Oracle, addrTakenVars map[*ir.Var]bool) bool {
	if eff == nil || eff.Top {
		return true
	}
	for g := range eff.ModGlobals {
		if VarWriteKills(ap, g, addrTakenVars) {
			return true
		}
	}
	for _, m := range eff.Mods {
		if StoreKills(o, ap, site, m, alias.Site{}) {
			return true
		}
		if last := m.Last(); last != nil && last.Kind == ir.SelDeref {
			if LocStoreKills(ap, m.Type().ID(), addrTakenVars) {
				return true
			}
		}
	}
	return false
}

// MayRebind reports whether a call with these effects may reassign
// variable v in the caller: the callee (transitively) reassigns the
// global v, or v's address was taken and the callee stores through a
// location whose target type is v's (location targets carry exactly
// their declared type, as in VarWriteKills). This is the variable half
// of MayModify, used by the flow-sensitive layer's call-kill rule on
// its per-variable facts.
func (eff *Effects) MayRebind(v *ir.Var, addrTakenVars map[*ir.Var]bool) bool {
	if eff == nil || eff.Top {
		return true
	}
	if eff.ModGlobals[v] {
		return true
	}
	if eff.WritesThroughLocs && addrTakenVars[v] {
		for _, m := range eff.Mods {
			if last := m.Last(); last != nil && last.Kind == ir.SelDeref && m.Type().ID() == v.Type.ID() {
				return true
			}
		}
	}
	return false
}
