package modref_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"tbaa/internal/ir"
	"tbaa/internal/modref"
)

// effectsSig renders one summary in a comparable form: Mods/Refs come
// out of materialize in ascending shape-ID order on both the fresh and
// the decoded side, so a plain join is order-stable.
func effectsSig(eff *modref.Effects) string {
	var parts []string
	for _, m := range eff.Mods {
		parts = append(parts, "m:"+m.String())
	}
	for _, r := range eff.Refs {
		parts = append(parts, "r:"+r.String())
	}
	var gs []string
	for g := range eff.ModGlobals {
		gs = append(gs, g.Name)
	}
	sort.Strings(gs)
	parts = append(parts, "g:"+strings.Join(gs, ","))
	parts = append(parts, fmt.Sprintf("locs=%v top=%v", eff.WritesThroughLocs, eff.Top))
	return strings.Join(parts, ";")
}

// TestSnapshotRoundTrip pins the persistable form end to end inside the
// package: a ModRef built over an interned program snapshots, the
// snapshot rebuilds over an independently compiled (and re-interned)
// copy of the same source, and every observable — per-procedure
// summaries, call edges, RTA reachability, the instantiated set,
// freshness, and MayRebind verdicts — matches the fresh build.
func TestSnapshotRoundTrip(t *testing.T) {
	prog := compile(t, rtaSrc)
	ir.InternAPs(prog)
	mr := modref.ComputeWith(prog, modref.Config{RTA: true})
	snap := mr.Snapshot()
	if snap == nil {
		t.Fatal("interned build refused to snapshot")
	}
	if !snap.RTA || snap.OpenWorld {
		t.Fatalf("snapshot mode rta=%v open=%v, want rta=true open=false", snap.RTA, snap.OpenWorld)
	}

	prog2 := compile(t, rtaSrc)
	idx2 := ir.InternAPs(prog2)
	mr2, err := modref.FromSnapshot(prog2, modref.Config{RTA: true}, idx2, snap)
	if err != nil {
		t.Fatal(err)
	}
	if !mr2.Interprocedural() {
		t.Error("decoded ModRef must report an interprocedural build")
	}

	i1, i2 := mr.Instantiated(), mr2.Instantiated()
	if fmt.Sprint(i1) != fmt.Sprint(i2) {
		t.Errorf("instantiated sets differ: fresh %v, decoded %v", i1, i2)
	}

	addrTaken := map[*ir.Var]bool{}
	for _, v := range prog2.Globals {
		addrTaken[v] = true
	}
	for _, p := range prog.Procs {
		q := prog2.ProcByName[p.Name]
		if q == nil {
			t.Fatalf("procedure %s missing from the re-compiled program", p.Name)
		}
		if w, g := effectsSig(mr.Effects(p)), effectsSig(mr2.Effects(q)); w != g {
			t.Errorf("%s: summary drifted\nfresh:   %s\ndecoded: %s", p.Name, w, g)
		}
		var c1, c2 []string
		for _, c := range mr.Callees(p) {
			c1 = append(c1, c.Name)
		}
		for _, c := range mr2.Callees(q) {
			c2 = append(c2, c.Name)
		}
		if strings.Join(c1, ",") != strings.Join(c2, ",") {
			t.Errorf("%s: callees drifted: fresh %v, decoded %v", p.Name, c1, c2)
		}
		if w, g := mr.Reachable(p), mr2.Reachable(q); w != g {
			t.Errorf("%s: reachability drifted: fresh %v, decoded %v", p.Name, w, g)
		}
		if w, g := mr.ReturnsFresh(p), mr2.ReturnsFresh(q); w != g {
			t.Errorf("%s: freshness drifted: fresh %v, decoded %v", p.Name, w, g)
		}
		for i, v := range prog.Globals {
			w := mr.Effects(p).MayRebind(v, nil)
			g := mr2.Effects(q).MayRebind(prog2.Globals[i], nil)
			if w != g {
				t.Errorf("%s rebinds %s: fresh %v, decoded %v", p.Name, v.Name, w, g)
			}
			if w, g := mr.Effects(p).MayRebind(v, addrTaken), mr2.Effects(q).MayRebind(prog2.Globals[i], addrTaken); w != g {
				t.Errorf("%s rebinds %s (addr-taken): fresh %v, decoded %v", p.Name, v.Name, w, g)
			}
		}
	}
}

// TestSnapshotRequiresInterning: a ModRef over a program whose paths
// were never interned has no stable identities to persist and must
// refuse to snapshot rather than emit zero IIDs.
func TestSnapshotRequiresInterning(t *testing.T) {
	prog := compile(t, rtaSrc)
	mr := modref.ComputeWith(prog, modref.Config{RTA: true})
	if mr.Snapshot() != nil {
		t.Fatal("snapshot over an uninterned program must refuse")
	}
}

// TestSnapshotRejects drives FromSnapshot's validation: every corrupted
// or mismatched snapshot must be rejected with an error, never decoded
// into a ModRef that could answer unsoundly.
func TestSnapshotRejects(t *testing.T) {
	prog := compile(t, rtaSrc)
	ir.InternAPs(prog)
	snap := modref.ComputeWith(prog, modref.Config{RTA: true}).Snapshot()
	if snap == nil {
		t.Fatal("interned build refused to snapshot")
	}
	if len(snap.ShapeIIDs) == 0 || len(snap.Effects) == 0 {
		t.Fatal("test premise: rtaSrc must produce shapes and summaries")
	}

	prog2 := compile(t, rtaSrc)
	idx2 := ir.InternAPs(prog2)

	// mutate deep-copies the snapshot's slices so each case corrupts its
	// own copy.
	mutate := func(f func(*modref.Snapshot)) *modref.Snapshot {
		c := *snap
		c.ShapeIIDs = append([]int32(nil), snap.ShapeIIDs...)
		c.Effects = append([]modref.EffectsSnap(nil), snap.Effects...)
		for i := range c.Effects {
			c.Effects[i].Mods = append([]int32(nil), snap.Effects[i].Mods...)
		}
		c.ByProc = append([]int32(nil), snap.ByProc...)
		c.Callees = append([][]int32(nil), snap.Callees...)
		for i := range c.Callees {
			c.Callees[i] = append([]int32(nil), snap.Callees[i]...)
		}
		f(&c)
		return &c
	}

	cases := []struct {
		name string
		cfg  modref.Config
		snap *modref.Snapshot
	}{
		{"nil snapshot", modref.Config{RTA: true}, nil},
		{"mode mismatch", modref.Config{RTA: false}, snap},
		{"world mismatch", modref.Config{RTA: true, OpenWorld: true}, snap},
		{"unknown shape identity", modref.Config{RTA: true},
			mutate(func(s *modref.Snapshot) { s.ShapeIIDs[0] = 1 << 28 })},
		{"truncated procedure map", modref.Config{RTA: true},
			mutate(func(s *modref.Snapshot) { s.ByProc = s.ByProc[:1] })},
		{"out-of-range summary", modref.Config{RTA: true},
			mutate(func(s *modref.Snapshot) { s.ByProc[0] = int32(len(s.Effects)) })},
		{"out-of-range mod shape", modref.Config{RTA: true},
			mutate(func(s *modref.Snapshot) { s.Effects[0].Mods = []int32{int32(len(s.ShapeIIDs))} })},
		{"out-of-range callee", modref.Config{RTA: true},
			mutate(func(s *modref.Snapshot) { s.Callees[0] = []int32{int32(len(s.ByProc))} })},
		{"out-of-range global", modref.Config{RTA: true},
			mutate(func(s *modref.Snapshot) { s.Effects[0].ModGlobals = []int32{int32(len(prog2.Globals))} })},
		{"out-of-range reachable", modref.Config{RTA: true},
			mutate(func(s *modref.Snapshot) { s.HasReachable, s.Reachable = true, []int32{int32(len(s.ByProc))} })},
		{"out-of-range fresh", modref.Config{RTA: true},
			mutate(func(s *modref.Snapshot) { s.HasReturnsFresh, s.ReturnsFresh = true, []int32{int32(len(s.ByProc))} })},
	}
	for _, tc := range cases {
		if _, err := modref.FromSnapshot(prog2, tc.cfg, idx2, tc.snap); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
	if _, err := modref.FromSnapshot(prog2, modref.Config{RTA: true}, nil, snap); err == nil {
		t.Error("nil index: decoded without error")
	}
	if _, err := modref.FromSnapshot(prog2, modref.Config{RTA: true}, idx2, snap); err != nil {
		t.Errorf("pristine snapshot rejected: %v", err)
	}
}
