// Invocation-freshness analysis: which stores can only write objects
// allocated during the enclosing procedure's own invocation?
//
// A store into such an object is invisible to callers: every location
// a caller's availability dataflow (or flow-sensitive fact) describes
// at a call site existed before the call, and an object created during
// the call — by the callee or anything it invokes — cannot be one of
// them, no matter how far it escapes afterwards. Dropping these "fresh
// mods" from the caller-visible summary is what lets a call to a
// constructor-style callee (allocate, initialize, link, return) keep
// the caller's cached loads alive, including across recursion: a
// recursive tree builder's stores all target nodes of the subtree it
// is creating, never the nodes its caller already holds.
//
// The analysis is a per-procedure, flow-insensitive greatest fixpoint
// over a one-bit "region" lattice (region = allocated during this
// invocation), computed bottom-up over call-graph SCCs so that
// "returns a fresh object" facts flow from callees to callers, with
// the usual coinductive reading for recursion: a same-SCC call's
// result counts as region while the optimistic assumption survives,
// which is sound because any concrete returned object is allocated
// during some inner invocation — hence during the outer one.
//
//   - A register is region if defined by NEW, by a call whose every
//     possible callee returns fresh, or by a copy of a region operand.
//   - A local variable is region if its slot address never escapes
//     (not a formal, not by-ref, not in AddressTakenVars) and every
//     assignment to it in the procedure is region or NIL (a variable
//     that traps instead of storing writes nothing).
//   - Loads are never region: a value read back out of the heap may be
//     any object that ever flowed in, which this analysis does not
//     track (no load-closure).
//
// A store is then fresh when the object it writes is the one its
// region root directly references: root.f / root^ / root[i] (one
// selector), or the dope-expanded element block root{elems}[i] — the
// same root-owned shapes the flow-sensitive layer trusts. Deeper paths
// go through a load and stay caller-visible.
package modref

import (
	"tbaa/internal/ir"
)

// computeFreshness fills mr.freshStores, walking SCCs bottom-up.
func (mr *ModRef) computeFreshness(sccs [][]*ir.Proc) {
	mr.freshStores = make(map[*ir.Instr]bool)
	mr.returnsFresh = make(map[*ir.Proc]bool)
	for _, scc := range sccs {
		mr.freshnessSCC(scc)
	}
}

// freshnessSCC runs the freshness fixpoint for one SCC, assuming every
// callee SCC's returnsFresh facts are already final (bottom-up order).
func (mr *ModRef) freshnessSCC(scc []*ir.Proc) {
	// Optimistic: every member returns fresh until a return value
	// proves otherwise; iterate the SCC to its greatest fixpoint.
	// The last iteration (the one that changes nothing) leaves
	// every member's region state computed under the final flags,
	// so the store-marking pass below reuses it.
	for _, p := range scc {
		mr.returnsFresh[p] = true
	}
	region := make(map[*ir.Proc]regionState, len(scc))
	for changed := true; changed; {
		changed = false
		for _, p := range scc {
			st := mr.regionValues(p)
			region[p] = st
			if !mr.returnsFresh[p] {
				continue
			}
			for _, b := range p.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					if in.Op == ir.OpReturn && len(in.Args) > 0 && !st.operand(in.Args[0]) {
						mr.returnsFresh[p] = false
						changed = true
					}
				}
			}
		}
	}
	for _, p := range scc {
		st := region[p]
		for _, b := range p.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.OpStore && in.AP != nil && st.freshStore(in.AP) {
					mr.freshStores[in] = true
				}
			}
		}
	}
}

// ReturnsFresh reports whether every value p returns is provably
// allocated during p's own invocation. Always false outside RTA mode.
func (mr *ModRef) ReturnsFresh(p *ir.Proc) bool { return mr.returnsFresh[p] }

// regionState is the per-procedure fixpoint result: which variables
// and registers can only hold invocation-fresh objects (or NIL).
type regionState struct {
	vars map[*ir.Var]bool
	regs map[ir.Reg]bool
}

// regionValues computes p's region state to a greatest fixpoint:
// candidates start region and are downgraded by any assignment of a
// non-region value, until stable.
func (mr *ModRef) regionValues(p *ir.Proc) regionState {
	st := regionState{vars: make(map[*ir.Var]bool), regs: make(map[ir.Reg]bool)}
	at := mr.prog.AddressTakenVars
	for _, v := range p.Locals {
		if !v.ByRef && !at[v] {
			st.vars[v] = true
		}
	}
	for r := 0; r < p.NumRegs; r++ {
		st.regs[ir.Reg(r)] = true
	}
	for changed := true; changed; {
		changed = false
		for _, b := range p.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpNew, ir.OpNewArray:
					// Region by definition.
				case ir.OpCopy:
					if st.regs[in.Dst] && !st.operand(in.Args[0]) {
						st.regs[in.Dst] = false
						changed = true
					}
				case ir.OpCall, ir.OpMethodCall:
					if in.Dst != ir.NoReg && st.regs[in.Dst] && !mr.callReturnsFresh(in) {
						st.regs[in.Dst] = false
						changed = true
					}
				case ir.OpSetVar:
					if st.vars[in.Var] && !st.operand(in.Args[0]) {
						st.vars[in.Var] = false
						changed = true
					}
				default:
					// Loads, builtins, arithmetic, and constants other
					// than NIL produce non-region values.
					if d := in.DefinedReg(); d != ir.NoReg && st.regs[d] {
						st.regs[d] = false
						changed = true
					}
				}
			}
		}
	}
	return st
}

// callReturnsFresh reports whether every procedure the call can invoke
// returns a fresh object.
func (mr *ModRef) callReturnsFresh(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpCall:
		callee := mr.prog.ProcByName[in.Callee]
		return callee != nil && mr.returnsFresh[callee]
	case ir.OpMethodCall:
		targets := mr.Dispatch(in)
		if len(targets) == 0 {
			return false
		}
		for _, t := range targets {
			if !mr.returnsFresh[t] {
				return false
			}
		}
		return true
	}
	return false
}

// operand reports whether an operand can only be an invocation-fresh
// object or NIL. Scalar operands answer true vacuously — they are
// never the base object of a heap store and never weaken a reference
// variable (assignments are type-checked).
func (st regionState) operand(o ir.Operand) bool {
	switch o.Kind {
	case ir.ConstOp:
		return true // NIL writes nothing when stored through; scalars moot
	case ir.VarOp:
		return st.vars[o.Var]
	case ir.RegOp:
		return st.regs[o.Reg]
	}
	return false
}

// freshStore reports whether a store to ap writes an object its region
// root directly references: one selector off the root, or the
// root-owned open-array element block root{elems}[i]. Deeper prefixes
// travel through loads, which the region lattice does not track.
func (st regionState) freshStore(ap *ir.AP) bool {
	if !st.vars[ap.Root] {
		return false
	}
	switch len(ap.Sels) {
	case 1:
		return true
	case 2:
		return ap.Sels[0].Kind == ir.SelDopeElems && ap.Sels[1].Kind == ir.SelIndex
	}
	return false
}
