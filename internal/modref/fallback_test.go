package modref_test

import (
	"testing"

	"tbaa/internal/ir"
	"tbaa/internal/modref"
)

// A reachable call whose instantiated receiver set has no
// implementation must fall back to the cone conservatively rather
// than claim empty effects.
func TestDispatchFallbackOnEmptyFilteredSet(t *testing.T) {
	prog := compile(t, `
MODULE FB;
TYPE
  B = OBJECT v: INTEGER; METHODS m(); END;
  C = B OBJECT OVERRIDES m := CM; END;
VAR b: B; g: INTEGER;
PROCEDURE CM(self: B) = BEGIN g := 1; END CM;
PROCEDURE Mk(): B = BEGIN RETURN NEW(B); END Mk;
BEGIN
  b := Mk();
  b.m();  (* dynamic type B: abstract m — would trap; analysis must stay sound *)
  PutInt(g); PutLn();
END FB.
`)
	rta := modref.ComputeWith(prog, modref.Config{RTA: true})
	call := findCall(t, prog, ir.OpMethodCall)
	// Only B is instantiated and B has no implementation of m; the
	// fallback returns the cone's CM so the summary stays conservative.
	targets := rta.Dispatch(call)
	if len(targets) != 1 || targets[0].Name != "CM" {
		t.Fatalf("fallback dispatch = %v, want [CM]", targets)
	}
	g := findGlobal(t, prog, "g")
	if !rta.CallEffects(call).ModGlobals[g] {
		t.Error("fallback effects must include CM's global write")
	}
}
