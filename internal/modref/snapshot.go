package modref

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"

	"tbaa/internal/ir"
	"tbaa/internal/types"
)

// This file implements the serializable form of a ModRef — the per-SCC
// transitive summaries, the shape table, the RTA instantiated set, and
// the freshness facts — for the persistent artifact cache. Like the
// alias snapshot, everything is named by stable identities (intern IDs
// for paths, Procs/Globals positions for procedures and variables), so
// a snapshot survives a process boundary and resolves against a decoded
// program.
//
// FromSnapshot deliberately leaves the construction-only state (direct
// effects, SCC decomposition, per-store freshness marks) empty: Update
// refuses to run without them and the caller falls back to ComputeWith,
// so the first edit after a warm start pays a full mod-ref rebuild —
// a performance cost, never a soundness one.

// EffectsSnap is the persistable form of one Effects summary. Mods and
// Refs hold sorted shape IDs; ModGlobals holds sorted Program.Globals
// positions.
type EffectsSnap struct {
	Mods, Refs        []int32
	ModGlobals        []int32
	WritesThroughLocs bool
	Top               bool
}

// Snapshot is the persistable form of one ModRef.
type Snapshot struct {
	// RTA and OpenWorld record the mode the summaries were built under;
	// FromSnapshot rejects a mismatched Config.
	RTA, OpenWorld bool
	// ShapeIIDs names each shape representative by intern identity, in
	// shape-ID order.
	ShapeIIDs []int32
	// Effects lists the distinct summary objects; ByProc maps each
	// Program.Procs position to its summary. Pointer-distinct but
	// content-equal summaries stay distinct, preserving the fresh build's
	// sharing structure exactly.
	Effects []EffectsSnap
	ByProc  []int32
	// Callees holds each procedure's call-graph successors as
	// Program.Procs positions (one entry per call edge, in instruction
	// order).
	Callees [][]int32
	// Inst is the RTA instantiated-type bitset; nil (HasInst false) when
	// no dispatch filter was active.
	HasInst bool
	Inst    []uint64
	// Reachable lists the RTA-reachable procedures (Procs positions);
	// meaningful only when HasReachable.
	HasReachable bool
	Reachable    []int32
	// ReturnsFresh lists the procedures whose every return value is
	// invocation-fresh; meaningful only when HasReturnsFresh.
	HasReturnsFresh bool
	ReturnsFresh    []int32
}

// Snapshot captures the ModRef's query-time state. It returns nil when
// some path cannot be named by intern identity (a shape representative
// was never interned) — the caller then skips persisting the mod-ref
// section.
func (mr *ModRef) Snapshot() *Snapshot {
	prog := mr.prog
	procIdx := make(map[*ir.Proc]int32, len(prog.Procs))
	for i, p := range prog.Procs {
		procIdx[p] = int32(i)
	}
	globalIdx := make(map[*ir.Var]int32, len(prog.Globals))
	for i, v := range prog.Globals {
		globalIdx[v] = int32(i)
	}
	s := &Snapshot{RTA: mr.cfg.RTA, OpenWorld: mr.cfg.OpenWorld}
	for _, rep := range mr.shapes.reps {
		iid := atomic.LoadInt32(&rep.IID)
		if iid == 0 {
			return nil
		}
		s.ShapeIIDs = append(s.ShapeIIDs, iid)
	}
	effIdx := make(map[*Effects]int32)
	for _, p := range prog.Procs {
		eff := mr.byProc[p]
		if eff == nil {
			return nil
		}
		ei, ok := effIdx[eff]
		if !ok {
			es, err := snapEffects(eff, globalIdx)
			if err != nil {
				return nil
			}
			ei = int32(len(s.Effects))
			effIdx[eff] = ei
			s.Effects = append(s.Effects, es)
		}
		s.ByProc = append(s.ByProc, ei)
	}
	s.Callees = make([][]int32, len(prog.Procs))
	for i, p := range prog.Procs {
		for _, c := range mr.callees[p] {
			ci, ok := procIdx[c]
			if !ok {
				return nil
			}
			s.Callees[i] = append(s.Callees[i], ci)
		}
	}
	if mr.inst != nil {
		s.HasInst, s.Inst = true, mr.inst
	}
	if mr.reachable != nil {
		s.HasReachable = true
		for i, p := range prog.Procs {
			if mr.reachable[p] {
				s.Reachable = append(s.Reachable, int32(i))
			}
		}
	}
	if mr.returnsFresh != nil {
		s.HasReturnsFresh = true
		for i, p := range prog.Procs {
			if mr.returnsFresh[p] {
				s.ReturnsFresh = append(s.ReturnsFresh, int32(i))
			}
		}
	}
	return s
}

// snapEffects converts one summary to its persistable form. Shape IDs
// come out of the construction bitsets in ascending order — the same
// order materialize emits, so the decoded Mods/Refs slices match the
// fresh build's byte for byte.
func snapEffects(eff *Effects, globalIdx map[*ir.Var]int32) (EffectsSnap, error) {
	es := EffectsSnap{
		Mods:              bitvecIDs(eff.mods),
		Refs:              bitvecIDs(eff.refs),
		WritesThroughLocs: eff.WritesThroughLocs,
		Top:               eff.Top,
	}
	for g := range eff.ModGlobals {
		gi, ok := globalIdx[g]
		if !ok {
			return EffectsSnap{}, fmt.Errorf("modref: summary rebinds non-global %s", g.Name)
		}
		es.ModGlobals = append(es.ModGlobals, gi)
	}
	sort.Slice(es.ModGlobals, func(i, j int) bool { return es.ModGlobals[i] < es.ModGlobals[j] })
	return es, nil
}

func bitvecIDs(b bitvec) []int32 {
	var out []int32
	for w, word := range b {
		for ; word != 0; word &= word - 1 {
			out = append(out, int32(w<<6)+int32(bits.TrailingZeros64(word)))
		}
	}
	return out
}

// FromSnapshot builds a ModRef over prog from a decoded snapshot. idx
// must be the intern index of prog; shape representatives resolve
// against it, and the shape table is rebuilt so that every serialized
// shape ID maps to the identical representative the fresh build used.
// cfg must request the mode the snapshot was built under (Refine may be
// a fresh closure over the decoded oracle). The construction-only state
// stays empty, so a later Update bails to ComputeWith — exact, just not
// incremental.
func FromSnapshot(prog *ir.Program, cfg Config, idx *ir.APIndex, snap *Snapshot) (*ModRef, error) {
	if snap == nil || idx == nil {
		return nil, fmt.Errorf("modref: nil snapshot or index")
	}
	if cfg.RTA != snap.RTA || cfg.OpenWorld != snap.OpenWorld {
		return nil, fmt.Errorf("modref: snapshot mode (rta=%v open=%v) does not match config (rta=%v open=%v)",
			snap.RTA, snap.OpenWorld, cfg.RTA, cfg.OpenWorld)
	}
	mr := &ModRef{
		prog:    prog,
		cfg:     cfg,
		byProc:  make(map[*ir.Proc]*Effects, len(prog.Procs)),
		callees: make(map[*ir.Proc][]*ir.Proc, len(prog.Procs)),
		effMemo: make(map[*ir.Instr]*Effects),
		shapes:  newShapeTab(),
		fp:      modrefFPOf(prog),
	}
	for i, iid := range snap.ShapeIIDs {
		ap := idx.ByID(iid)
		if ap == nil {
			return nil, fmt.Errorf("modref: shape %d names unknown identity %d", i, iid)
		}
		if id := mr.shapes.id(ap); id != int32(i) {
			return nil, fmt.Errorf("modref: shape %d re-interned as %d (table drift)", i, id)
		}
	}
	nShapes := int32(len(mr.shapes.reps))
	nProcs := len(prog.Procs)
	if len(snap.ByProc) != nProcs || len(snap.Callees) != nProcs {
		return nil, fmt.Errorf("modref: snapshot covers %d/%d procedures, program has %d",
			len(snap.ByProc), len(snap.Callees), nProcs)
	}
	effects := make([]*Effects, len(snap.Effects))
	for i := range snap.Effects {
		es := &snap.Effects[i]
		eff := &Effects{
			ModGlobals:        make(map[*ir.Var]bool, len(es.ModGlobals)),
			WritesThroughLocs: es.WritesThroughLocs,
			Top:               es.Top,
		}
		for _, id := range es.Mods {
			if id < 0 || id >= nShapes {
				return nil, fmt.Errorf("modref: summary %d mods shape %d out of range", i, id)
			}
			eff.mods.add(id)
		}
		for _, id := range es.Refs {
			if id < 0 || id >= nShapes {
				return nil, fmt.Errorf("modref: summary %d refs shape %d out of range", i, id)
			}
			eff.refs.add(id)
		}
		for _, gi := range es.ModGlobals {
			if gi < 0 || int(gi) >= len(prog.Globals) {
				return nil, fmt.Errorf("modref: summary %d rebinds global %d out of range", i, gi)
			}
			eff.ModGlobals[prog.Globals[gi]] = true
		}
		eff.materialize(mr.shapes)
		effects[i] = eff
	}
	for pi, p := range prog.Procs {
		ei := snap.ByProc[pi]
		if ei < 0 || int(ei) >= len(effects) {
			return nil, fmt.Errorf("modref: procedure %s summarized by out-of-range summary %d", p.Name, ei)
		}
		mr.byProc[p] = effects[ei]
		var cs []*ir.Proc
		for _, ci := range snap.Callees[pi] {
			if ci < 0 || int(ci) >= nProcs {
				return nil, fmt.Errorf("modref: procedure %s calls out-of-range procedure %d", p.Name, ci)
			}
			cs = append(cs, prog.Procs[ci])
		}
		mr.callees[p] = cs
	}
	if snap.HasInst {
		mr.inst = types.Bitset(snap.Inst)
	}
	if snap.HasReachable {
		mr.reachable = make(map[*ir.Proc]bool, len(snap.Reachable))
		for _, pi := range snap.Reachable {
			if pi < 0 || int(pi) >= nProcs {
				return nil, fmt.Errorf("modref: reachable procedure %d out of range", pi)
			}
			mr.reachable[prog.Procs[pi]] = true
		}
	}
	if snap.HasReturnsFresh {
		mr.returnsFresh = make(map[*ir.Proc]bool, len(snap.ReturnsFresh))
		for _, pi := range snap.ReturnsFresh {
			if pi < 0 || int(pi) >= nProcs {
				return nil, fmt.Errorf("modref: fresh-returning procedure %d out of range", pi)
			}
			mr.returnsFresh[prog.Procs[pi]] = true
		}
	}
	return mr, nil
}
