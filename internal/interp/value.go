// Package interp executes IR programs on a synthetic heap with
// deterministic addresses. It counts instructions and loads, and streams
// memory events to listeners (the cache simulator and the limit study).
package interp

import (
	"fmt"

	"tbaa/internal/types"
)

// ValueKind discriminates Value.
type ValueKind int

// Value kinds.
const (
	VNil ValueKind = iota
	VInt
	VBool
	VChar
	VText
	VRef    // reference to a heap cell (object, array, or ref cell)
	VLoc    // location value (by-ref arguments, WITH aliases)
	VRecord // record composite held in a variable slot
)

// Value is a runtime value.
type Value struct {
	K    ValueKind
	Int  int64 // ints, bools (0/1), chars
	Text string
	Ref  *Cell
	Loc  Loc
	Rec  *Record
}

// Record is a record composite value stored in a variable slot.
type Record struct {
	Type   *types.Record
	Fields []Value
	Addr   uint64 // address of the underlying storage (stack or global)
}

// Cell is a heap allocation: an object, an open array, or a REF cell.
type Cell struct {
	Type  types.Type // allocation type: *types.Object, *types.Array, *types.Ref
	Obj   *types.Object
	Field []Value // object fields (AllFields order) or REF RECORD fields
	Elems []Value // open array elements
	Val   Value   // REF-to-scalar target
	Addr  uint64  // base address (dope vector base for arrays)
	EAddr uint64  // elements block base address for arrays
	fidx  map[string]int
}

// FieldIndex returns the slot of a named field in the cell.
func (c *Cell) FieldIndex(name string) int {
	if i, ok := c.fidx[name]; ok {
		return i
	}
	return -1
}

// LocKind discriminates Loc.
type LocKind int

// Location kinds.
const (
	LocNone     LocKind = iota
	LocSlot             // variable slot in a frame or the global area
	LocField            // field of a heap cell
	LocElem             // element of a heap array
	LocRefVal           // target of a REF-to-scalar cell
	LocRecField         // field of a record held in a slot
)

// Loc is a first-class location (what a by-ref argument denotes).
type Loc struct {
	Kind  LocKind
	Slots *[]Value // for LocSlot: the slot array (frame or globals)
	Index int      // slot index / field index / element index
	Cell  *Cell
	Rec   *Record
	Addr  uint64 // address of the denoted storage
}

func (v Value) String() string {
	switch v.K {
	case VNil:
		return "NIL"
	case VInt:
		return fmt.Sprintf("%d", v.Int)
	case VBool:
		if v.Int != 0 {
			return "TRUE"
		}
		return "FALSE"
	case VChar:
		return fmt.Sprintf("'%c'", byte(v.Int))
	case VText:
		return fmt.Sprintf("%q", v.Text)
	case VRef:
		return fmt.Sprintf("ref@%#x", v.Ref.Addr)
	case VLoc:
		return fmt.Sprintf("loc@%#x", v.Loc.Addr)
	case VRecord:
		return "record"
	}
	return "?"
}

// hashValue folds a value to a comparable word for the limit study's
// "same value" test.
func hashValue(v Value) uint64 {
	switch v.K {
	case VInt, VBool, VChar:
		return uint64(v.Int) ^ uint64(v.K)<<56
	case VText:
		var h uint64 = 14695981039346656037
		for i := 0; i < len(v.Text); i++ {
			h = (h ^ uint64(v.Text[i])) * 1099511628211
		}
		return h
	case VRef:
		return v.Ref.Addr
	case VLoc:
		return v.Loc.Addr ^ 0x10c
	case VNil:
		return 0
	}
	return uint64(v.K)
}
