package interp_test

import (
	"strings"
	"testing"

	"tbaa/internal/driver"
	"tbaa/internal/interp"
)

func run(t *testing.T, src string) (string, interp.Stats) {
	t.Helper()
	out, stats, err := driver.Run("test.m3", src)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out, stats
}

func runErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, _, err := driver.Run("test.m3", src)
	if err == nil {
		t.Fatalf("expected runtime error containing %q", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err, wantSubstr)
	}
}

func TestArithmetic(t *testing.T) {
	out, _ := run(t, `
MODULE M;
BEGIN
  PutInt(2 + 3 * 4); PutLn();
  PutInt(10 DIV 3); PutLn();
  PutInt((-7) DIV 2); PutLn();
  PutInt((-7) MOD 2); PutLn();
  PutInt(-7 DIV 2); PutLn();
  PutInt(ABS(-9) + MIN(1, 2) + MAX(1, 2)); PutLn();
END M.
`)
	// Unary minus binds the whole term in Modula-3, so -7 DIV 2 is -(7 DIV 2).
	want := "14\n3\n-4\n1\n-3\n12\n"
	if out != want {
		t.Errorf("got %q want %q", out, want)
	}
}

func TestControlFlow(t *testing.T) {
	out, _ := run(t, `
MODULE M;
VAR i, acc: INTEGER;
BEGIN
  acc := 0;
  FOR i := 1 TO 5 DO acc := acc + i; END;
  PutInt(acc); PutLn();
  acc := 0;
  FOR i := 10 TO 0 BY -2 DO acc := acc + 1; END;
  PutInt(acc); PutLn();
  i := 0;
  WHILE i < 3 DO INC(i); END;
  PutInt(i); PutLn();
  i := 10;
  REPEAT DEC(i, 3); UNTIL i < 0;
  PutInt(i); PutLn();
  i := 0;
  LOOP INC(i); IF i >= 7 THEN EXIT; END; END;
  PutInt(i); PutLn();
  IF (i = 7) AND (acc = 6) THEN PutText("ok"); ELSE PutText("no"); END;
  PutLn();
END M.
`)
	want := "15\n6\n3\n-2\n7\nok\n"
	if out != want {
		t.Errorf("got %q want %q", out, want)
	}
}

func TestShortCircuit(t *testing.T) {
	out, _ := run(t, `
MODULE M;
VAR calls: INTEGER;
PROCEDURE Tick(r: BOOLEAN): BOOLEAN =
BEGIN
  INC(calls);
  RETURN r;
END Tick;
BEGIN
  calls := 0;
  IF Tick(FALSE) AND Tick(TRUE) THEN END;
  PutInt(calls); PutLn();
  calls := 0;
  IF Tick(TRUE) OR Tick(TRUE) THEN END;
  PutInt(calls); PutLn();
END M.
`)
	if out != "1\n1\n" {
		t.Errorf("short circuit broken: %q", out)
	}
}

func TestObjectsAndDispatch(t *testing.T) {
	out, _ := run(t, `
MODULE M;
TYPE
  Shape = OBJECT name: TEXT; METHODS area(): INTEGER := BaseArea; END;
  Square = Shape OBJECT side: INTEGER; OVERRIDES area := SquareArea; END;
  Rect = Square OBJECT h: INTEGER; OVERRIDES area := RectArea; END;
PROCEDURE BaseArea(self: Shape): INTEGER = BEGIN RETURN 0; END BaseArea;
PROCEDURE SquareArea(self: Square): INTEGER = BEGIN RETURN self.side * self.side; END SquareArea;
PROCEDURE RectArea(self: Rect): INTEGER = BEGIN RETURN self.side * self.h; END RectArea;
VAR s: Shape; q: Square; r: Rect;
BEGIN
  s := NEW(Shape);
  PutInt(s.area()); PutLn();
  q := NEW(Square);
  q.side := 4;
  PutInt(q.area()); PutLn();
  r := NEW(Rect);
  r.side := 3; r.h := 5;
  q := r;
  PutInt(q.area()); PutLn();
END M.
`)
	if out != "0\n16\n15\n" {
		t.Errorf("dispatch: %q", out)
	}
}

func TestLinkedList(t *testing.T) {
	out, _ := run(t, `
MODULE M;
TYPE Node = OBJECT val: INTEGER; next: Node; END;
VAR head, n: Node; i, sum: INTEGER;
BEGIN
  head := NIL;
  FOR i := 1 TO 5 DO
    n := NEW(Node);
    n.val := i;
    n.next := head;
    head := n;
  END;
  sum := 0;
  n := head;
  WHILE n # NIL DO
    sum := sum + n.val;
    n := n.next;
  END;
  PutInt(sum); PutLn();
END M.
`)
	if out != "15\n" {
		t.Errorf("list sum: %q", out)
	}
}

func TestArrays(t *testing.T) {
	out, stats := run(t, `
MODULE M;
TYPE A = ARRAY OF INTEGER;
VAR a: A; i, s: INTEGER;
BEGIN
  a := NEW(A, 10);
  FOR i := 0 TO NUMBER(a) - 1 DO a[i] := i * i; END;
  s := 0;
  FOR i := 0 TO NUMBER(a) - 1 DO s := s + a[i]; END;
  PutInt(s); PutLn();
END M.
`)
	if out != "285\n" {
		t.Errorf("array sum: %q", out)
	}
	if stats.DopeLoads == 0 {
		t.Error("expected dope-vector loads to be counted")
	}
	if stats.HeapLoads <= stats.DopeLoads {
		t.Error("expected element loads in addition to dope loads")
	}
}

func TestRefScalarsAndRecords(t *testing.T) {
	out, _ := run(t, `
MODULE M;
TYPE
  PI = REF INTEGER;
  R = RECORD x, y: INTEGER; END;
  PR = REF R;
VAR p: PI; q: PR; r1, r2: R;
BEGIN
  p := NEW(PI);
  p^ := 42;
  PutInt(p^); PutLn();
  q := NEW(PR);
  q.x := 1; q^.y := 2;
  PutInt(q.x + q.y); PutLn();
  r1.x := 10; r1.y := 20;
  r2 := r1;
  r1.x := 99;
  PutInt(r2.x + r2.y); PutLn();
END M.
`)
	if out != "42\n3\n30\n" {
		t.Errorf("refs/records: %q", out)
	}
}

func TestByRefParams(t *testing.T) {
	out, _ := run(t, `
MODULE M;
TYPE Node = OBJECT v: INTEGER; END;
PROCEDURE Bump(VAR x: INTEGER) = BEGIN x := x + 1; END Bump;
PROCEDURE Swap(VAR a, b: INTEGER) =
VAR t: INTEGER;
BEGIN
  t := a; a := b; b := t;
END Swap;
VAR i, j: INTEGER; n: Node;
BEGIN
  i := 5; j := 9;
  Bump(i);
  PutInt(i); PutLn();
  Swap(i, j);
  PutInt(i); PutInt(j); PutLn();
  n := NEW(Node);
  n.v := 7;
  Bump(n.v);
  PutInt(n.v); PutLn();
END M.
`)
	if out != "6\n96\n8\n" {
		t.Errorf("byref: %q", out)
	}
}

func TestWithAlias(t *testing.T) {
	out, _ := run(t, `
MODULE M;
TYPE Node = OBJECT v: INTEGER; END;
VAR n: Node; x: INTEGER;
BEGIN
  n := NEW(Node);
  WITH w = n.v DO
    w := 3;
    w := w + 4;
  END;
  PutInt(n.v); PutLn();
  x := 10;
  WITH w = x DO w := w * 2; END;
  PutInt(x); PutLn();
  WITH v = x + 5 DO PutInt(v); END;
  PutLn();
END M.
`)
	if out != "7\n20\n25\n" {
		t.Errorf("with: %q", out)
	}
}

func TestTextOps(t *testing.T) {
	out, _ := run(t, `
MODULE M;
VAR s: TEXT;
BEGIN
  s := "ab" & "cd";
  PutText(s); PutLn();
  PutInt(TextLen(s)); PutLn();
  PutChar(TextChar(s, 2)); PutLn();
  PutText(IntToText(123) & "!"); PutLn();
  IF s = "abcd" THEN PutText("eq"); END;
  PutLn();
END M.
`)
	if out != "abcd\n4\nc\n123!\neq\n" {
		t.Errorf("text: %q", out)
	}
}

func TestRecursion(t *testing.T) {
	out, _ := run(t, `
MODULE M;
PROCEDURE Fib(n: INTEGER): INTEGER =
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN Fib(n - 1) + Fib(n - 2);
END Fib;
BEGIN
  PutInt(Fib(15)); PutLn();
END M.
`)
	if out != "610\n" {
		t.Errorf("fib: %q", out)
	}
}

func TestRuntimeTraps(t *testing.T) {
	runErr(t, `
MODULE M;
TYPE Node = OBJECT v: INTEGER; END;
VAR n: Node;
BEGIN
  PutInt(n.v);
END M.`, "NIL dereference")
	runErr(t, `
MODULE M;
TYPE A = ARRAY OF INTEGER;
VAR a: A;
BEGIN
  a := NEW(A, 3);
  a[5] := 1;
END M.`, "out of range")
	runErr(t, `
MODULE M;
VAR x: INTEGER;
BEGIN
  x := 0;
  PutInt(10 DIV x);
END M.`, "division by zero")
	runErr(t, `
MODULE M;
BEGIN
  Assert(1 = 2);
END M.`, "assertion failed")
	runErr(t, `
MODULE M;
TYPE A = ARRAY OF INTEGER;
VAR a: A;
BEGIN
  a := NEW(A, -1);
END M.`, "negative length")
}

func TestHalt(t *testing.T) {
	out, _ := run(t, `
MODULE M;
PROCEDURE P() =
BEGIN
  PutText("before");
  Halt();
  PutText("after");
END P;
BEGIN
  P();
  PutText("unreached");
END M.
`)
	if out != "before" {
		t.Errorf("halt: %q", out)
	}
}

func TestGlobalInitializers(t *testing.T) {
	out, _ := run(t, `
MODULE M;
TYPE Node = OBJECT v: INTEGER; END;
VAR g: INTEGER := 41;
VAR n: Node := NEW(Node);
BEGIN
  n.v := g + 1;
  PutInt(n.v); PutLn();
END M.
`)
	if out != "42\n" {
		t.Errorf("globals: %q", out)
	}
}

func TestAggregateThroughRef(t *testing.T) {
	out, _ := run(t, `
MODULE M;
TYPE R = RECORD x, y: INTEGER; END;
     PR = REF R;
VAR p, q: PR; r: R;
BEGIN
  p := NEW(PR); q := NEW(PR);
  p.x := 1; p.y := 2;
  q^ := p^;
  r := q^;
  p.x := 100;
  PutInt(r.x + q.x); PutLn();
END M.
`)
	if out != "2\n" {
		t.Errorf("aggregate: %q", out)
	}
}

func TestStatsCounted(t *testing.T) {
	_, stats := run(t, `
MODULE M;
TYPE Node = OBJECT v: INTEGER; next: Node; END;
VAR n: Node; i: INTEGER;
BEGIN
  n := NEW(Node);
  FOR i := 1 TO 10 DO
    n.v := n.v + 1;
  END;
END M.
`)
	if stats.Instructions == 0 || stats.HeapLoads < 10 || stats.HeapStores < 10 {
		t.Errorf("stats: %+v", stats)
	}
	if stats.Allocs != 1 {
		t.Errorf("allocs: %d", stats.Allocs)
	}
}

func TestMethodWithVarParam(t *testing.T) {
	out, _ := run(t, `
MODULE M;
TYPE
  Counter = OBJECT n: INTEGER; METHODS take(VAR dst: INTEGER) := Take; END;
PROCEDURE Take(self: Counter; VAR dst: INTEGER) =
BEGIN
  dst := self.n;
  self.n := 0;
END Take;
VAR c: Counter; got: INTEGER;
BEGIN
  c := NEW(Counter);
  c.n := 55;
  c.take(got);
  PutInt(got); PutInt(c.n); PutLn();
END M.
`)
	if out != "550\n" {
		t.Errorf("method var param: %q", out)
	}
}
