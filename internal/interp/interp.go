package interp

import (
	"fmt"
	"strconv"
	"strings"

	"tbaa/internal/ir"
	"tbaa/internal/types"
)

// MemEvent describes one dynamic memory access.
type MemEvent struct {
	Load       bool
	Addr       uint64
	ValueHash  uint64
	Instr      *ir.Instr
	Proc       *ir.Proc
	Activation uint64
	Heap       bool // heap access (vs stack/global storage)
}

// Listener observes execution. Any field may be nil.
type Listener struct {
	// Mem is called for every load and store.
	Mem func(ev *MemEvent)
	// Step is called once per executed instruction.
	Step func(in *ir.Instr, proc *ir.Proc)
}

// Stats are the dynamic counts the paper's Table 4 reports.
type Stats struct {
	Instructions uint64
	HeapLoads    uint64 // loads through pointers (incl. dope-vector loads)
	DopeLoads    uint64 // subset of HeapLoads: implicit dope accesses
	OtherLoads   uint64 // stack and global-area loads
	HeapStores   uint64
	OtherStores  uint64
	Calls        uint64
	Allocs       uint64
}

// RuntimeError is a trap during execution.
type RuntimeError struct {
	Msg  string
	Proc string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error in %s: %s", e.Proc, e.Msg)
}

// Interp executes an IR program.
type Interp struct {
	prog     *ir.Program
	globals  []Value
	out      strings.Builder
	stats    Stats
	listener Listener
	nextAddr uint64
	nextAct  uint64
	halted   bool
	depth    int
	// MaxSteps bounds execution (0 = unlimited); exceeding it traps.
	MaxSteps uint64
	// MaxDepth bounds call nesting; exceeding it traps (default 100000).
	MaxDepth int
	// globalAddrs maps global slot -> address.
	globalAddrs []uint64
	stackTop    uint64
}

// New creates an interpreter for the program.
func New(prog *ir.Program) *Interp {
	// The three storage areas start at different cache-set offsets so a
	// direct-mapped cache does not see pathological global/heap/stack
	// conflicts at address zero of each region.
	in := &Interp{
		prog:     prog,
		globals:  make([]Value, len(prog.Globals)),
		nextAddr: 0x1000_2000,
		stackTop: 0x7000_4000,
	}
	in.globalAddrs = make([]uint64, len(prog.Globals))
	for i, g := range prog.Globals {
		in.globalAddrs[i] = 0x0010_0000 + uint64(i)*8
		in.globals[i] = zeroValue(g.Type)
	}
	return in
}

// SetListener installs an execution observer.
func (in *Interp) SetListener(l Listener) { in.listener = l }

// Output returns everything the program printed.
func (in *Interp) Output() string { return in.out.String() }

// Stats returns the dynamic counters.
func (in *Interp) Stats() Stats { return in.stats }

// Run executes __main__. It returns the program output.
func (in *Interp) Run() (string, error) {
	main := in.prog.Main
	if main == nil {
		return "", &RuntimeError{Msg: "no main", Proc: "?"}
	}
	_, err := in.callProc(main, nil)
	return in.out.String(), err
}

func zeroValue(t types.Type) Value {
	switch t := t.(type) {
	case *types.Basic:
		switch t.Kind {
		case types.Integer:
			return Value{K: VInt}
		case types.Boolean:
			return Value{K: VBool}
		case types.Char:
			return Value{K: VChar}
		case types.Text:
			return Value{K: VText}
		}
		return Value{K: VNil}
	case *types.Record:
		r := &Record{Type: t, Fields: make([]Value, len(t.Fields))}
		for i, f := range t.Fields {
			r.Fields[i] = zeroValue(f.Type)
		}
		return Value{K: VRecord, Rec: r}
	default:
		return Value{K: VNil}
	}
}

type frame struct {
	proc  *ir.Proc
	regs  []Value
	slots []Value
	act   uint64
	base  uint64 // stack frame base address
}

func (in *Interp) trap(f *frame, format string, args ...any) error {
	name := "?"
	if f != nil {
		name = f.proc.Name
	}
	return &RuntimeError{Msg: fmt.Sprintf(format, args...), Proc: name}
}

// callProc runs a procedure with evaluated arguments.
func (in *Interp) callProc(p *ir.Proc, args []Value) (Value, error) {
	maxDepth := in.MaxDepth
	if maxDepth == 0 {
		maxDepth = 100000
	}
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > maxDepth {
		return Value{}, &RuntimeError{Msg: "call stack overflow", Proc: p.Name}
	}
	in.nextAct++
	nSlots := len(p.Params) + len(p.Locals)
	f := &frame{
		proc:  p,
		regs:  make([]Value, p.NumRegs),
		slots: make([]Value, nSlots),
		act:   in.nextAct,
		base:  in.stackTop,
	}
	in.stackTop -= uint64(nSlots+8) * 8
	defer func() { in.stackTop += uint64(nSlots+8) * 8 }()
	for i := range p.Params {
		if i < len(args) {
			f.slots[i] = args[i]
		}
	}
	for i, l := range p.Locals {
		f.slots[len(p.Params)+i] = zeroValue(l.Type)
	}
	b := p.Entry
	for {
		next, ret, retVal, err := in.execBlock(f, b)
		if err != nil {
			return Value{}, err
		}
		if ret {
			return retVal, nil
		}
		if next == nil {
			return Value{}, in.trap(f, "block b%d fell through", b.ID)
		}
		b = next
	}
}

func (in *Interp) slotAddr(f *frame, v *ir.Var) uint64 {
	if v.Kind == ir.GlobalVar {
		return in.globalAddrs[v.Slot]
	}
	return f.base - uint64(v.Slot)*8
}

// readVar reads a variable operand. Global reads count as "other loads".
func (in *Interp) readVar(f *frame, v *ir.Var, instr *ir.Instr) Value {
	if v.Kind == ir.GlobalVar {
		in.stats.OtherLoads++
		val := in.globals[v.Slot]
		in.memEvent(f, instr, true, in.globalAddrs[v.Slot], val, false)
		return val
	}
	return f.slots[v.Slot]
}

func (in *Interp) writeVar(f *frame, v *ir.Var, val Value, instr *ir.Instr) {
	if v.Kind == ir.GlobalVar {
		in.stats.OtherStores++
		in.globals[v.Slot] = val
		in.memEvent(f, instr, false, in.globalAddrs[v.Slot], val, false)
		return
	}
	f.slots[v.Slot] = val
}

func (in *Interp) memEvent(f *frame, instr *ir.Instr, load bool, addr uint64, val Value, heap bool) {
	if in.listener.Mem == nil {
		return
	}
	ev := MemEvent{Load: load, Addr: addr, ValueHash: hashValue(val),
		Instr: instr, Proc: f.proc, Activation: f.act, Heap: heap}
	in.listener.Mem(&ev)
}

func (in *Interp) operand(f *frame, o ir.Operand, instr *ir.Instr) Value {
	switch o.Kind {
	case ir.ConstOp:
		switch o.Const.Kind {
		case ir.IntConst:
			return Value{K: VInt, Int: o.Const.Int}
		case ir.BoolConst:
			return Value{K: VBool, Int: o.Const.Int}
		case ir.CharConst:
			return Value{K: VChar, Int: o.Const.Int}
		case ir.TextConst:
			return Value{K: VText, Text: o.Const.Text}
		case ir.NilConst:
			return Value{K: VNil}
		}
	case ir.RegOp:
		return f.regs[o.Reg]
	case ir.VarOp:
		return in.readVar(f, o.Var, instr)
	}
	return Value{K: VNil}
}

func (in *Interp) setReg(f *frame, r ir.Reg, v Value) {
	if r != ir.NoReg {
		f.regs[r] = v
	}
}

// execBlock executes one block; returns the successor or a return value.
func (in *Interp) execBlock(f *frame, b *ir.Block) (next *ir.Block, ret bool, retVal Value, err error) {
	for idx := range b.Instrs {
		instr := &b.Instrs[idx]
		in.stats.Instructions++
		if in.MaxSteps > 0 && in.stats.Instructions > in.MaxSteps {
			return nil, false, Value{}, in.trap(f, "step limit exceeded (%d)", in.MaxSteps)
		}
		if in.listener.Step != nil {
			in.listener.Step(instr, f.proc)
		}
		switch instr.Op {
		case ir.OpConst, ir.OpCopy:
			in.setReg(f, instr.Dst, in.operand(f, instr.Args[0], instr))
		case ir.OpBin:
			v, e := in.binop(f, instr)
			if e != nil {
				return nil, false, Value{}, e
			}
			in.setReg(f, instr.Dst, v)
		case ir.OpUn:
			x := in.operand(f, instr.Args[0], instr)
			if instr.UnOp == ir.Neg {
				in.setReg(f, instr.Dst, Value{K: VInt, Int: -x.Int})
			} else {
				in.setReg(f, instr.Dst, Value{K: VBool, Int: 1 - x.Int})
			}
		case ir.OpSetVar:
			in.writeVar(f, instr.Var, in.operand(f, instr.Args[0], instr), instr)
		case ir.OpLoad:
			v, e := in.load(f, instr)
			if e != nil {
				if instr.Speculative {
					// A load hoisted above its loop guard must not trap
					// when the loop body would never have executed.
					v = zeroValue(instr.Type)
				} else {
					return nil, false, Value{}, e
				}
			}
			in.setReg(f, instr.Dst, v)
		case ir.OpStore:
			if e := in.store(f, instr); e != nil {
				return nil, false, Value{}, e
			}
		case ir.OpLoadVarField:
			base := in.readVar(f, instr.Var, instr)
			if base.K != VRecord {
				return nil, false, Value{}, in.trap(f, "vload of non-record %s", instr.Var.Name)
			}
			i := fieldIndexOf(base.Rec.Type, instr.Field)
			val := base.Rec.Fields[i]
			in.stats.OtherLoads++
			in.memEvent(f, instr, true, in.slotAddr(f, instr.Var)+uint64(i)*8, val, false)
			in.setReg(f, instr.Dst, val)
		case ir.OpStoreVarField:
			base := in.readVar(f, instr.Var, instr)
			if base.K != VRecord {
				return nil, false, Value{}, in.trap(f, "vstore of non-record %s", instr.Var.Name)
			}
			i := fieldIndexOf(base.Rec.Type, instr.Field)
			val := in.operand(f, instr.Args[0], instr)
			base.Rec.Fields[i] = val
			in.stats.OtherStores++
			in.memEvent(f, instr, false, in.slotAddr(f, instr.Var)+uint64(i)*8, val, false)
		case ir.OpMkLoc:
			loc, e := in.mkLoc(f, instr)
			if e != nil {
				return nil, false, Value{}, e
			}
			in.setReg(f, instr.Dst, Value{K: VLoc, Loc: loc})
		case ir.OpMkLocVar:
			v := instr.Var
			var loc Loc
			if v.Kind == ir.GlobalVar {
				loc = Loc{Kind: LocSlot, Slots: &in.globals, Index: v.Slot, Addr: in.globalAddrs[v.Slot]}
			} else {
				loc = Loc{Kind: LocSlot, Slots: &f.slots, Index: v.Slot, Addr: in.slotAddr(f, v)}
			}
			in.setReg(f, instr.Dst, Value{K: VLoc, Loc: loc})
		case ir.OpNew:
			in.stats.Allocs++
			in.setReg(f, instr.Dst, in.alloc(instr.Type))
		case ir.OpNewArray:
			in.stats.Allocs++
			ln := in.operand(f, instr.Args[0], instr)
			if ln.Int < 0 {
				return nil, false, Value{}, in.trap(f, "NEW with negative length %d", ln.Int)
			}
			in.setReg(f, instr.Dst, in.allocArray(instr.Type.(*types.Array), int(ln.Int)))
		case ir.OpCall:
			callee := in.prog.ProcByName[instr.Callee]
			if callee == nil {
				return nil, false, Value{}, in.trap(f, "undefined procedure %s", instr.Callee)
			}
			args := make([]Value, len(instr.Args))
			for i, a := range instr.Args {
				args[i] = in.operand(f, a, instr)
			}
			in.stats.Calls++
			rv, e := in.callProc(callee, args)
			if e != nil {
				return nil, false, Value{}, e
			}
			if in.halted {
				return nil, true, Value{}, nil
			}
			in.setReg(f, instr.Dst, rv)
		case ir.OpMethodCall:
			recv := in.operand(f, instr.Args[0], instr)
			if recv.K != VRef || recv.Ref.Obj == nil {
				return nil, false, Value{}, in.trap(f, "method call %s on non-object", instr.Method)
			}
			implName := recv.Ref.Obj.Implementation(instr.Method)
			if implName == "" {
				return nil, false, Value{}, in.trap(f, "abstract method %s on %s", instr.Method, recv.Ref.Obj)
			}
			callee := in.prog.ProcByName[implName]
			if callee == nil {
				return nil, false, Value{}, in.trap(f, "method %s bound to missing procedure %s", instr.Method, implName)
			}
			args := make([]Value, len(instr.Args))
			for i, a := range instr.Args {
				args[i] = in.operand(f, a, instr)
			}
			in.stats.Calls++
			rv, e := in.callProc(callee, args)
			if e != nil {
				return nil, false, Value{}, e
			}
			if in.halted {
				return nil, true, Value{}, nil
			}
			in.setReg(f, instr.Dst, rv)
		case ir.OpBuiltin:
			v, stop, e := in.builtin(f, instr)
			if e != nil {
				return nil, false, Value{}, e
			}
			if stop {
				return nil, true, Value{}, nil
			}
			in.setReg(f, instr.Dst, v)
		case ir.OpJump:
			return instr.Target, false, Value{}, nil
		case ir.OpBranch:
			c := in.operand(f, instr.Args[0], instr)
			if c.Int != 0 {
				return instr.Then, false, Value{}, nil
			}
			return instr.Else, false, Value{}, nil
		case ir.OpReturn:
			if len(instr.Args) > 0 {
				return nil, true, in.operand(f, instr.Args[0], instr), nil
			}
			return nil, true, Value{}, nil
		}
	}
	return nil, false, Value{}, in.trap(f, "block b%d has no terminator", b.ID)
}

func fieldIndexOf(r *types.Record, name string) int {
	for i, f := range r.Fields {
		if f.Name == name {
			return i
		}
	}
	return 0
}

// alloc creates a heap cell for NEW(T).
func (in *Interp) alloc(t types.Type) Value {
	c := &Cell{Type: t, Addr: in.nextAddr}
	switch t := t.(type) {
	case *types.Object:
		c.Obj = t
		fs := t.AllFields()
		c.Field = make([]Value, len(fs))
		c.fidx = make(map[string]int, len(fs))
		for i, fd := range fs {
			c.Field[i] = zeroValue(fd.Type)
			c.fidx[fd.Name] = i
		}
		in.nextAddr += uint64(len(fs)+1) * 8
	case *types.Ref:
		if rt, ok := t.Elem.(*types.Record); ok {
			c.Field = make([]Value, len(rt.Fields))
			c.fidx = make(map[string]int, len(rt.Fields))
			for i, fd := range rt.Fields {
				c.Field[i] = zeroValue(fd.Type)
				c.fidx[fd.Name] = i
			}
			in.nextAddr += uint64(len(rt.Fields)+1) * 8
		} else {
			c.Val = zeroValue(t.Elem)
			in.nextAddr += 16
		}
	}
	// Round allocations to 16 bytes to spread cache sets realistically.
	in.nextAddr = (in.nextAddr + 15) &^ 15
	return Value{K: VRef, Ref: c}
}

func (in *Interp) allocArray(t *types.Array, n int) Value {
	c := &Cell{Type: t, Addr: in.nextAddr}
	in.nextAddr += 16 // dope vector: len + elems pointer
	c.EAddr = in.nextAddr
	in.nextAddr += uint64(n) * 8
	in.nextAddr = (in.nextAddr + 15) &^ 15
	c.Elems = make([]Value, n)
	for i := range c.Elems {
		c.Elems[i] = zeroValue(t.Elem)
	}
	return Value{K: VRef, Ref: c}
}

// load performs an OpLoad.
func (in *Interp) load(f *frame, instr *ir.Instr) (Value, error) {
	base := in.operand(f, instr.Base, instr)
	switch instr.Sel.Kind {
	case ir.SelField:
		switch base.K {
		case VRef:
			i := base.Ref.FieldIndex(instr.Sel.Field)
			if i < 0 {
				return Value{}, in.trap(f, "no field %s", instr.Sel.Field)
			}
			val := base.Ref.Field[i]
			in.noteLoad(f, instr, base.Ref.Addr+8+uint64(i)*8, val, true)
			return val, nil
		case VLoc:
			// Field of a record behind a location.
			tgt, addr, err := in.locTarget(f, base.Loc)
			if err != nil {
				return Value{}, err
			}
			if tgt.K == VRecord {
				i := fieldIndexOf(tgt.Rec.Type, instr.Sel.Field)
				val := tgt.Rec.Fields[i]
				in.noteLoad(f, instr, addr+uint64(i)*8, val, base.Loc.Kind != LocSlot)
				return val, nil
			}
			if tgt.K == VRef {
				i := tgt.Ref.FieldIndex(instr.Sel.Field)
				if i < 0 {
					return Value{}, in.trap(f, "no field %s", instr.Sel.Field)
				}
				val := tgt.Ref.Field[i]
				in.noteLoad(f, instr, tgt.Ref.Addr+8+uint64(i)*8, val, true)
				return val, nil
			}
			return Value{}, in.trap(f, "field %s of non-record location", instr.Sel.Field)
		case VNil:
			return Value{}, in.trap(f, "NIL dereference (.%s)", instr.Sel.Field)
		}
		return Value{}, in.trap(f, "field access on %s", base)
	case ir.SelDeref:
		switch base.K {
		case VRef:
			val := base.Ref.Val
			in.noteLoad(f, instr, base.Ref.Addr, val, true)
			return val, nil
		case VLoc:
			val, addr, err := in.locTarget(f, base.Loc)
			if err != nil {
				return Value{}, err
			}
			in.noteLoad(f, instr, addr, val, base.Loc.Kind != LocSlot)
			return val, nil
		case VNil:
			return Value{}, in.trap(f, "NIL dereference (^)")
		}
		return Value{}, in.trap(f, "dereference of %s", base)
	case ir.SelIndex:
		idx := in.operand(f, instr.Sel.Index, instr)
		if base.K == VNil {
			return Value{}, in.trap(f, "NIL array subscript")
		}
		if base.K != VRef || base.Ref.Elems == nil {
			return Value{}, in.trap(f, "subscript of non-array %s", base)
		}
		if idx.Int < 0 || idx.Int >= int64(len(base.Ref.Elems)) {
			return Value{}, in.trap(f, "subscript %d out of range [0..%d)", idx.Int, len(base.Ref.Elems))
		}
		val := base.Ref.Elems[idx.Int]
		in.noteLoad(f, instr, base.Ref.EAddr+uint64(idx.Int)*8, val, true)
		return val, nil
	case ir.SelDopeLen:
		if base.K == VNil {
			return Value{}, in.trap(f, "NUMBER of NIL array")
		}
		if base.K != VRef || base.Ref.Elems == nil {
			return Value{}, in.trap(f, "NUMBER of non-array %s", base)
		}
		val := Value{K: VInt, Int: int64(len(base.Ref.Elems))}
		in.stats.DopeLoads++
		in.noteLoad(f, instr, base.Ref.Addr, val, true)
		return val, nil
	case ir.SelDopeElems:
		if base.K == VNil {
			return Value{}, in.trap(f, "NIL array subscript")
		}
		if base.K != VRef || base.Ref.Elems == nil {
			return Value{}, in.trap(f, "subscript of non-array %s", base)
		}
		in.stats.DopeLoads++
		in.noteLoad(f, instr, base.Ref.Addr+8, base, true)
		return base, nil
	}
	return Value{}, in.trap(f, "bad selector")
}

func (in *Interp) noteLoad(f *frame, instr *ir.Instr, addr uint64, val Value, heap bool) {
	if heap {
		in.stats.HeapLoads++
	} else {
		in.stats.OtherLoads++
	}
	in.memEvent(f, instr, true, addr, val, heap)
}

func (in *Interp) noteStore(f *frame, instr *ir.Instr, addr uint64, val Value, heap bool) {
	if heap {
		in.stats.HeapStores++
	} else {
		in.stats.OtherStores++
	}
	in.memEvent(f, instr, false, addr, val, heap)
}

// locTarget reads the value a location denotes.
func (in *Interp) locTarget(f *frame, l Loc) (Value, uint64, error) {
	switch l.Kind {
	case LocSlot:
		return (*l.Slots)[l.Index], l.Addr, nil
	case LocField:
		return l.Cell.Field[l.Index], l.Addr, nil
	case LocElem:
		return l.Cell.Elems[l.Index], l.Addr, nil
	case LocRefVal:
		return l.Cell.Val, l.Addr, nil
	case LocRecField:
		return l.Rec.Fields[l.Index], l.Addr, nil
	}
	return Value{}, 0, in.trap(f, "bad location")
}

func (in *Interp) locWrite(f *frame, l Loc, v Value) error {
	switch l.Kind {
	case LocSlot:
		(*l.Slots)[l.Index] = v
	case LocField:
		l.Cell.Field[l.Index] = v
	case LocElem:
		l.Cell.Elems[l.Index] = v
	case LocRefVal:
		l.Cell.Val = v
	case LocRecField:
		l.Rec.Fields[l.Index] = v
	default:
		return in.trap(f, "bad location")
	}
	return nil
}

// store performs an OpStore.
func (in *Interp) store(f *frame, instr *ir.Instr) error {
	base := in.operand(f, instr.Base, instr)
	val := in.operand(f, instr.Args[0], instr)
	switch instr.Sel.Kind {
	case ir.SelField:
		switch base.K {
		case VRef:
			i := base.Ref.FieldIndex(instr.Sel.Field)
			if i < 0 {
				return in.trap(f, "no field %s", instr.Sel.Field)
			}
			base.Ref.Field[i] = val
			in.noteStore(f, instr, base.Ref.Addr+8+uint64(i)*8, val, true)
			return nil
		case VLoc:
			tgt, addr, err := in.locTarget(f, base.Loc)
			if err != nil {
				return err
			}
			if tgt.K == VRecord {
				i := fieldIndexOf(tgt.Rec.Type, instr.Sel.Field)
				tgt.Rec.Fields[i] = val
				in.noteStore(f, instr, addr+uint64(i)*8, val, base.Loc.Kind != LocSlot)
				return nil
			}
			if tgt.K == VRef {
				i := tgt.Ref.FieldIndex(instr.Sel.Field)
				if i < 0 {
					return in.trap(f, "no field %s", instr.Sel.Field)
				}
				tgt.Ref.Field[i] = val
				in.noteStore(f, instr, tgt.Ref.Addr+8+uint64(i)*8, val, true)
				return nil
			}
			return in.trap(f, "field store to non-record location")
		case VNil:
			return in.trap(f, "NIL dereference (store .%s)", instr.Sel.Field)
		}
		return in.trap(f, "field store on %s", base)
	case ir.SelDeref:
		switch base.K {
		case VRef:
			base.Ref.Val = val
			in.noteStore(f, instr, base.Ref.Addr, val, true)
			return nil
		case VLoc:
			_, addr, err := in.locTarget(f, base.Loc)
			if err != nil {
				return err
			}
			if err := in.locWrite(f, base.Loc, val); err != nil {
				return err
			}
			in.noteStore(f, instr, addr, val, base.Loc.Kind != LocSlot)
			return nil
		case VNil:
			return in.trap(f, "NIL dereference (store ^)")
		}
		return in.trap(f, "store through %s", base)
	case ir.SelIndex:
		idx := in.operand(f, instr.Sel.Index, instr)
		if base.K == VNil {
			return in.trap(f, "NIL array subscript")
		}
		if base.K != VRef || base.Ref.Elems == nil {
			return in.trap(f, "subscript store to non-array")
		}
		if idx.Int < 0 || idx.Int >= int64(len(base.Ref.Elems)) {
			return in.trap(f, "subscript %d out of range [0..%d)", idx.Int, len(base.Ref.Elems))
		}
		base.Ref.Elems[idx.Int] = val
		in.noteStore(f, instr, base.Ref.EAddr+uint64(idx.Int)*8, val, true)
		return nil
	}
	return in.trap(f, "bad store selector")
}

// mkLoc builds a location value for OpMkLoc.
func (in *Interp) mkLoc(f *frame, instr *ir.Instr) (Loc, error) {
	base := in.operand(f, instr.Base, instr)
	switch instr.Sel.Kind {
	case ir.SelField:
		switch base.K {
		case VRef:
			i := base.Ref.FieldIndex(instr.Sel.Field)
			if i < 0 {
				return Loc{}, in.trap(f, "no field %s", instr.Sel.Field)
			}
			return Loc{Kind: LocField, Cell: base.Ref, Index: i,
				Addr: base.Ref.Addr + 8 + uint64(i)*8}, nil
		case VLoc:
			tgt, addr, err := in.locTarget(f, base.Loc)
			if err != nil {
				return Loc{}, err
			}
			if tgt.K == VRecord {
				i := fieldIndexOf(tgt.Rec.Type, instr.Sel.Field)
				return Loc{Kind: LocRecField, Rec: tgt.Rec, Index: i,
					Addr: addr + uint64(i)*8}, nil
			}
			if tgt.K == VRef {
				i := tgt.Ref.FieldIndex(instr.Sel.Field)
				return Loc{Kind: LocField, Cell: tgt.Ref, Index: i,
					Addr: tgt.Ref.Addr + 8 + uint64(i)*8}, nil
			}
			return Loc{}, in.trap(f, "cannot take address of field of %s", tgt)
		case VNil:
			return Loc{}, in.trap(f, "NIL dereference (address of .%s)", instr.Sel.Field)
		}
		// Field of a record variable reached via VarOp base.
		if instr.Base.Kind == ir.VarOp {
			rv := in.readVar(f, instr.Base.Var, instr)
			if rv.K == VRecord {
				i := fieldIndexOf(rv.Rec.Type, instr.Sel.Field)
				return Loc{Kind: LocRecField, Rec: rv.Rec, Index: i,
					Addr: in.slotAddr(f, instr.Base.Var) + uint64(i)*8}, nil
			}
		}
		return Loc{}, in.trap(f, "cannot take address of field of %s", base)
	case ir.SelDeref:
		switch base.K {
		case VRef:
			return Loc{Kind: LocRefVal, Cell: base.Ref, Addr: base.Ref.Addr}, nil
		case VLoc:
			return base.Loc, nil
		case VNil:
			return Loc{}, in.trap(f, "NIL dereference (address of ^)")
		}
		return Loc{}, in.trap(f, "cannot take address through %s", base)
	case ir.SelIndex:
		idx := in.operand(f, instr.Sel.Index, instr)
		if base.K != VRef || base.Ref.Elems == nil {
			return Loc{}, in.trap(f, "cannot take address of element of %s", base)
		}
		if idx.Int < 0 || idx.Int >= int64(len(base.Ref.Elems)) {
			return Loc{}, in.trap(f, "subscript %d out of range", idx.Int)
		}
		return Loc{Kind: LocElem, Cell: base.Ref, Index: int(idx.Int),
			Addr: base.Ref.EAddr + uint64(idx.Int)*8}, nil
	}
	return Loc{}, in.trap(f, "bad address selector")
}

func (in *Interp) binop(f *frame, instr *ir.Instr) (Value, error) {
	l := in.operand(f, instr.Args[0], instr)
	r := in.operand(f, instr.Args[1], instr)
	b := func(ok bool) Value {
		if ok {
			return Value{K: VBool, Int: 1}
		}
		return Value{K: VBool}
	}
	switch instr.BinOp {
	case ir.Add:
		return Value{K: VInt, Int: l.Int + r.Int}, nil
	case ir.Sub:
		return Value{K: VInt, Int: l.Int - r.Int}, nil
	case ir.Mul:
		return Value{K: VInt, Int: l.Int * r.Int}, nil
	case ir.Div:
		if r.Int == 0 {
			return Value{}, in.trap(f, "division by zero")
		}
		return Value{K: VInt, Int: floorDiv(l.Int, r.Int)}, nil
	case ir.Mod:
		if r.Int == 0 {
			return Value{}, in.trap(f, "modulo by zero")
		}
		return Value{K: VInt, Int: floorMod(l.Int, r.Int)}, nil
	case ir.Concat:
		return Value{K: VText, Text: l.Text + r.Text}, nil
	case ir.Eq:
		return b(valueEq(l, r)), nil
	case ir.Ne:
		return b(!valueEq(l, r)), nil
	case ir.Lt:
		if l.K == VText {
			return b(l.Text < r.Text), nil
		}
		return b(l.Int < r.Int), nil
	case ir.Gt:
		if l.K == VText {
			return b(l.Text > r.Text), nil
		}
		return b(l.Int > r.Int), nil
	case ir.Le:
		if l.K == VText {
			return b(l.Text <= r.Text), nil
		}
		return b(l.Int <= r.Int), nil
	case ir.Ge:
		if l.K == VText {
			return b(l.Text >= r.Text), nil
		}
		return b(l.Int >= r.Int), nil
	}
	return Value{}, in.trap(f, "bad binop")
}

// floorDiv implements Modula-3 DIV (floor division).
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// floorMod implements Modula-3 MOD (result has the sign of the divisor).
func floorMod(a, b int64) int64 {
	return a - floorDiv(a, b)*b
}

func valueEq(l, r Value) bool {
	switch {
	case l.K == VNil && r.K == VNil:
		return true
	case l.K == VNil:
		return r.K == VRef && r.Ref == nil
	case r.K == VNil:
		return l.K == VRef && l.Ref == nil
	case l.K == VRef && r.K == VRef:
		return l.Ref == r.Ref
	case l.K == VText && r.K == VText:
		return l.Text == r.Text
	default:
		return l.Int == r.Int && l.K == r.K
	}
}

func (in *Interp) builtin(f *frame, instr *ir.Instr) (Value, bool, error) {
	arg := func(i int) Value { return in.operand(f, instr.Args[i], instr) }
	switch instr.Builtin {
	case ir.BPutInt:
		fmt.Fprintf(&in.out, "%d", arg(0).Int)
	case ir.BPutChar:
		in.out.WriteByte(byte(arg(0).Int))
	case ir.BPutText:
		in.out.WriteString(arg(0).Text)
	case ir.BPutLn:
		in.out.WriteByte('\n')
	case ir.BAssert:
		if arg(0).Int == 0 {
			return Value{}, false, in.trap(f, "assertion failed at %s", instr.Pos)
		}
	case ir.BHalt:
		in.halted = true
		return Value{}, true, nil
	case ir.BAbs:
		v := arg(0).Int
		if v < 0 {
			v = -v
		}
		return Value{K: VInt, Int: v}, false, nil
	case ir.BMin:
		a, bv := arg(0).Int, arg(1).Int
		if bv < a {
			a = bv
		}
		return Value{K: VInt, Int: a}, false, nil
	case ir.BMax:
		a, bv := arg(0).Int, arg(1).Int
		if bv > a {
			a = bv
		}
		return Value{K: VInt, Int: a}, false, nil
	case ir.BOrd:
		return Value{K: VInt, Int: arg(0).Int}, false, nil
	case ir.BChr:
		return Value{K: VChar, Int: arg(0).Int & 0xff}, false, nil
	case ir.BTextLen:
		return Value{K: VInt, Int: int64(len(arg(0).Text))}, false, nil
	case ir.BTextChar:
		s := arg(0).Text
		i := arg(1).Int
		if i < 0 || i >= int64(len(s)) {
			return Value{}, false, in.trap(f, "TextChar index %d out of range", i)
		}
		return Value{K: VChar, Int: int64(s[i])}, false, nil
	case ir.BIntToText:
		return Value{K: VText, Text: strconv.FormatInt(arg(0).Int, 10)}, false, nil
	}
	return Value{}, false, nil
}
