package ir

import (
	"fmt"
	"strings"
)

func (o Operand) String() string {
	switch o.Kind {
	case NoOperand:
		return "_"
	case ConstOp:
		switch o.Const.Kind {
		case IntConst:
			return fmt.Sprintf("%d", o.Const.Int)
		case BoolConst:
			if o.Const.Int != 0 {
				return "TRUE"
			}
			return "FALSE"
		case CharConst:
			return fmt.Sprintf("'%c'", byte(o.Const.Int))
		case TextConst:
			return fmt.Sprintf("%q", o.Const.Text)
		case NilConst:
			return "NIL"
		}
	case RegOp:
		return fmt.Sprintf("r%d", o.Reg)
	case VarOp:
		return o.Var.Name
	}
	return "?"
}

var binNames = [...]string{
	Add: "+", Sub: "-", Mul: "*", Div: "DIV", Mod: "MOD",
	Eq: "=", Ne: "#", Lt: "<", Gt: ">", Le: "<=", Ge: ">=", Concat: "&",
}

var builtinNames = [...]string{
	BPutInt: "PutInt", BPutChar: "PutChar", BPutText: "PutText",
	BPutLn: "PutLn", BAssert: "Assert", BTextLen: "TextLen",
	BTextChar: "TextChar", BIntToText: "IntToText", BHalt: "Halt",
	BAbs: "ABS", BMin: "MIN", BMax: "MAX", BOrd: "ORD", BChr: "CHR",
}

func (s Sel) String() string {
	switch s.Kind {
	case SelField:
		return "." + s.Field
	case SelDeref:
		return "^"
	case SelIndex:
		return "[" + s.Index.String() + "]"
	case SelDopeLen:
		return "{len}"
	case SelDopeElems:
		return "{elems}"
	}
	return "?sel"
}

// String renders one instruction.
func (i *Instr) String() string {
	dst := ""
	if i.Dst != NoReg {
		dst = fmt.Sprintf("r%d := ", i.Dst)
	}
	ap := ""
	if i.AP != nil {
		ap = fmt.Sprintf("  ; ap=%s", i.AP)
	}
	switch i.Op {
	case OpConst, OpCopy:
		return fmt.Sprintf("%s%s", dst, i.Args[0])
	case OpBin:
		return fmt.Sprintf("%s%s %s %s", dst, i.Args[0], binNames[i.BinOp], i.Args[1])
	case OpUn:
		op := "-"
		if i.UnOp == Not {
			op = "NOT "
		}
		return fmt.Sprintf("%s%s%s", dst, op, i.Args[0])
	case OpSetVar:
		return fmt.Sprintf("%s := %s", i.Var.Name, i.Args[0])
	case OpLoad:
		return fmt.Sprintf("%sload %s%s%s", dst, i.Base, i.Sel, ap)
	case OpStore:
		return fmt.Sprintf("store %s%s := %s%s", i.Base, i.Sel, i.Args[0], ap)
	case OpLoadVarField:
		return fmt.Sprintf("%svload %s.%s", dst, i.Var.Name, i.Field)
	case OpStoreVarField:
		return fmt.Sprintf("vstore %s.%s := %s", i.Var.Name, i.Field, i.Args[0])
	case OpMkLoc:
		return fmt.Sprintf("%sloc %s%s%s", dst, i.Base, i.Sel, ap)
	case OpMkLocVar:
		return fmt.Sprintf("%sloc &%s", dst, i.Var.Name)
	case OpNew:
		return fmt.Sprintf("%snew %s", dst, i.Type)
	case OpNewArray:
		return fmt.Sprintf("%snewarray %s, len=%s", dst, i.Type, i.Args[0])
	case OpCall:
		return fmt.Sprintf("%scall %s(%s)", dst, i.Callee, opList(i.Args))
	case OpMethodCall:
		return fmt.Sprintf("%sdispatch %s.%s(%s)", dst, i.Args[0], i.Method, opList(i.Args[1:]))
	case OpBuiltin:
		return fmt.Sprintf("%s%s(%s)", dst, builtinNames[i.Builtin], opList(i.Args))
	case OpJump:
		return fmt.Sprintf("jump b%d", i.Target.ID)
	case OpBranch:
		return fmt.Sprintf("branch %s ? b%d : b%d", i.Args[0], i.Then.ID, i.Else.ID)
	case OpReturn:
		if len(i.Args) > 0 {
			return fmt.Sprintf("return %s", i.Args[0])
		}
		return "return"
	}
	return fmt.Sprintf("op(%d)", i.Op)
}

func opList(args []Operand) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// String renders a whole procedure.
func (p *Proc) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "proc %s(", p.Name)
	for i, v := range p.Params {
		if i > 0 {
			b.WriteString("; ")
		}
		if v.ByRef {
			b.WriteString("VAR ")
		}
		fmt.Fprintf(&b, "%s: %s", v.Name, v.Type)
	}
	fmt.Fprintf(&b, "): %s\n", p.Result)
	for _, blk := range p.Blocks {
		fmt.Fprintf(&b, "b%d:", blk.ID)
		if blk.Name != "" {
			fmt.Fprintf(&b, " ; %s", blk.Name)
		}
		b.WriteByte('\n')
		for j := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", blk.Instrs[j].String())
		}
	}
	return b.String()
}

// String renders the whole program.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s\n", p.Name)
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "global %s: %s\n", g.Name, g.Type)
	}
	for _, proc := range p.Procs {
		b.WriteByte('\n')
		b.WriteString(proc.String())
	}
	return b.String()
}
