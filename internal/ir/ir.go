// Package ir defines the control-flow-graph intermediate representation
// that the alias analyses, the optimizer, and the interpreter share.
//
// Every heap memory access is an explicit Load or Store instruction that
// carries a symbolic access path (AP) — the source-level expression the
// paper's analyses reason about (Qualify p.f, Dereference p^, Subscript
// p[i]). Open-array subscripts additionally expand to explicit dope-vector
// loads, which are tagged so the limit study can classify them as the
// paper's "Encapsulation" category.
package ir

import (
	"tbaa/internal/token"
	"tbaa/internal/types"
)

// Reg is a virtual register index within a procedure.
type Reg int

// NoReg marks an absent destination.
const NoReg Reg = -1

// VarKind classifies IR variables.
type VarKind int

// Variable kinds.
const (
	GlobalVar VarKind = iota
	LocalVar
	ParamVar
)

// Var is a global or procedure-local variable with an addressable slot.
type Var struct {
	Name  string
	Type  types.Type
	Kind  VarKind
	ByRef bool // pass-by-reference formal: the slot holds a location
	Slot  int  // frame or global slot index
}

func (v *Var) String() string { return v.Name }

// ---------------------------------------------------------------------------
// Operands

// OperandKind discriminates Operand.
type OperandKind int

// Operand kinds.
const (
	NoOperand OperandKind = iota
	ConstOp
	RegOp
	VarOp
)

// ConstKind discriminates constant operands.
type ConstKind int

// Constant kinds.
const (
	IntConst ConstKind = iota
	BoolConst
	CharConst
	TextConst
	NilConst
)

// Const is a literal operand value.
type Const struct {
	Kind ConstKind
	Int  int64 // also holds bool (0/1) and char
	Text string
}

// Operand is an instruction input: a constant, a register, or a variable
// read (variables are directly readable; writes go through SetVar).
type Operand struct {
	Kind  OperandKind
	Reg   Reg
	Var   *Var
	Const Const
}

// R returns a register operand.
func R(r Reg) Operand { return Operand{Kind: RegOp, Reg: r} }

// V returns a variable operand.
func V(v *Var) Operand { return Operand{Kind: VarOp, Var: v} }

// CInt returns an integer constant operand.
func CInt(v int64) Operand {
	return Operand{Kind: ConstOp, Const: Const{Kind: IntConst, Int: v}}
}

// CBool returns a boolean constant operand.
func CBool(v bool) Operand {
	n := int64(0)
	if v {
		n = 1
	}
	return Operand{Kind: ConstOp, Const: Const{Kind: BoolConst, Int: n}}
}

// CChar returns a character constant operand.
func CChar(c byte) Operand {
	return Operand{Kind: ConstOp, Const: Const{Kind: CharConst, Int: int64(c)}}
}

// CText returns a text constant operand.
func CText(s string) Operand {
	return Operand{Kind: ConstOp, Const: Const{Kind: TextConst, Text: s}}
}

// CNil returns the NIL constant operand.
func CNil() Operand {
	return Operand{Kind: ConstOp, Const: Const{Kind: NilConst}}
}

// Equal reports operand equality (used by RLE's syntactic AP matching).
func (o Operand) Equal(p Operand) bool {
	if o.Kind != p.Kind {
		return false
	}
	switch o.Kind {
	case ConstOp:
		return o.Const == p.Const
	case RegOp:
		return o.Reg == p.Reg
	case VarOp:
		return o.Var == p.Var
	default:
		return true
	}
}

// UsesVar reports whether the operand reads v.
func (o Operand) UsesVar(v *Var) bool { return o.Kind == VarOp && o.Var == v }

// ---------------------------------------------------------------------------
// Selectors and access paths

// SelKind is the kind of the final selector of a memory access.
type SelKind int

// Selector kinds. DopeLen and DopeElems are the implicit dope-vector
// accesses of open-array subscripting; they exist in the machine but not
// in the source-level (AST) representation, exactly as in the paper.
const (
	SelField     SelKind = iota // Base.f      (Qualify)
	SelDeref                    // Base^       (Dereference; also by-ref formals, WITH aliases)
	SelIndex                    // Base[i]     (Subscript; Base is the elements block)
	SelDopeLen                  // implicit: number of elements
	SelDopeElems                // implicit: elements block pointer
)

// Sel is the final selector of a Load/Store: what the instruction actually
// reads or writes relative to the Base pointer operand.
type Sel struct {
	Kind  SelKind
	Field string  // for SelField
	Index Operand // for SelIndex
}

// APSel is one step of a symbolic access path.
type APSel struct {
	Kind  SelKind
	Field string
	Index Operand    // for SelIndex: the index operand (Var/Const match syntactically)
	Type  types.Type // static type of the path after this selector
}

// AP is a symbolic source-level access path rooted at a variable,
// e.g. a.b^[i].c. The alias analyses and RLE reason over these.
type AP struct {
	Root *Var
	Sels []APSel
	// IID is the path's dense intern identity, assigned by InternAPs
	// during analysis (re)construction; 0 means "not interned". Once
	// set it is never changed, and assignment uses atomic stores
	// because a rebuild over a pass-mutated program numbers the
	// inserted paths while readers of an earlier intern generation may
	// still load the field. An IID is only a hint: consumers validate
	// it against their own APIndex (the pointer behind the identity
	// must match) before trusting it.
	IID int32
}

// Type returns the static type of the full path.
func (p *AP) Type() types.Type {
	if len(p.Sels) == 0 {
		return p.Root.Type
	}
	return p.Sels[len(p.Sels)-1].Type
}

// Last returns the final selector, or nil for a bare variable.
func (p *AP) Last() *APSel {
	if len(p.Sels) == 0 {
		return nil
	}
	return &p.Sels[len(p.Sels)-1]
}

// Prefix returns the path with the final selector removed.
func (p *AP) Prefix() *AP {
	return &AP{Root: p.Root, Sels: p.Sels[:len(p.Sels)-1]}
}

// IsDope reports whether the path ends in an implicit dope-vector access.
func (p *AP) IsDope() bool {
	l := p.Last()
	return l != nil && (l.Kind == SelDopeLen || l.Kind == SelDopeElems)
}

// Extend returns a new path with one more selector.
func (p *AP) Extend(s APSel) *AP {
	sels := make([]APSel, len(p.Sels)+1)
	copy(sels, p.Sels)
	sels[len(p.Sels)] = s
	return &AP{Root: p.Root, Sels: sels}
}

// Equal reports syntactic equality of two paths: same root, same
// selectors, and syntactically identical subscript operands. This is the
// "same memory expression" test RLE uses for redundancy.
func (p *AP) Equal(q *AP) bool {
	if p.Root != q.Root || len(p.Sels) != len(q.Sels) {
		return false
	}
	for i := range p.Sels {
		a, b := &p.Sels[i], &q.Sels[i]
		if a.Kind != b.Kind || a.Field != b.Field {
			return false
		}
		if a.Kind == SelIndex && !a.Index.Equal(b.Index) {
			return false
		}
	}
	return true
}

// UsesVar reports whether the path mentions v (as root or subscript).
func (p *AP) UsesVar(v *Var) bool {
	if p.Root == v {
		return true
	}
	for i := range p.Sels {
		if p.Sels[i].Index.UsesVar(v) {
			return true
		}
	}
	return false
}

// UsesReg reports whether any subscript of the path reads register r.
func (p *AP) UsesReg(r Reg) bool {
	for i := range p.Sels {
		s := &p.Sels[i]
		if s.Kind == SelIndex && s.Index.Kind == RegOp && s.Index.Reg == r {
			return true
		}
	}
	return false
}

func (p *AP) String() string {
	s := p.Root.Name
	for i := range p.Sels {
		sel := &p.Sels[i]
		switch sel.Kind {
		case SelField:
			s += "." + sel.Field
		case SelDeref:
			s += "^"
		case SelIndex:
			s += "[" + sel.Index.String() + "]"
		case SelDopeLen:
			s += "{len}"
		case SelDopeElems:
			s += "{elems}"
		}
	}
	return s
}

// ---------------------------------------------------------------------------
// Instructions

// Op is an instruction opcode.
type Op int

// Instruction opcodes.
const (
	OpConst         Op = iota // Dst := Args[0] (a constant operand)
	OpCopy                    // Dst := Args[0]
	OpBin                     // Dst := Args[0] <BinOp> Args[1]
	OpUn                      // Dst := <UnOp> Args[0]
	OpSetVar                  // Var := Args[0]
	OpLoad                    // Dst := mem[Base.Sel]    (heap or via location)
	OpStore                   // mem[Base.Sel] := Args[0]
	OpLoadVarField            // Dst := Var.f            (record-typed variable; stack/global access)
	OpStoreVarField           // Var.f := Args[0]
	OpMkLoc                   // Dst := &(Base.Sel)      (location of a heap path, for by-ref)
	OpMkLocVar                // Dst := &Var             (location of a variable slot)
	OpNew                     // Dst := NEW(Type)
	OpNewArray                // Dst := NEW(Type, Args[0])
	OpCall                    // Dst? := Callee(Args...)
	OpMethodCall              // Dst? := Args[0].Method(Args[1:]...)
	OpBuiltin                 // Dst? := Builtin(Args...)
	OpJump                    // goto Target
	OpBranch                  // if Args[0] then Then else Else
	OpReturn                  // return Args[0]?
)

// BinOp is a binary operator.
type BinOp int

// Binary operators. And/Or do not appear in lowered code (short-circuit
// lowering turns them into control flow) but exist for IR construction in
// tests.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
	Eq
	Ne
	Lt
	Gt
	Le
	Ge
	Concat
)

// UnOp is a unary operator.
type UnOp int

// Unary operators.
const (
	Neg UnOp = iota
	Not
)

// Builtin identifies a builtin operation surviving to the IR.
type Builtin int

// IR-level builtins. NUMBER and INC/DEC are lowered away.
const (
	BPutInt Builtin = iota
	BPutChar
	BPutText
	BPutLn
	BAssert
	BTextLen
	BTextChar
	BIntToText
	BHalt
	BAbs
	BMin
	BMax
	BOrd
	BChr
)

// Instr is a single IR instruction. Fields are used according to Op.
type Instr struct {
	Op     Op
	Pos    token.Pos
	Dst    Reg
	Args   []Operand
	BinOp  BinOp
	UnOp   UnOp
	Var    *Var   // SetVar, LoadVarField, StoreVarField, MkLocVar
	Field  string // LoadVarField, StoreVarField
	Base   Operand
	Sel    Sel
	AP     *AP        // Load, Store, MkLoc, LoadVarField, StoreVarField
	Type   types.Type // result type; New/NewArray allocation type
	Callee string
	Method string
	// RecvType is the static receiver type of a MethodCall (bounds the
	// possible dynamic dispatch targets for mod-ref and devirtualization).
	RecvType *types.Object
	ByRef    []bool // per-arg: true if the operand is a location
	Builtin  Builtin
	// Speculative marks loads hoisted out of loops: they must not trap
	// when the loop would not have executed (NIL or out-of-range bases
	// yield a zero value instead).
	Speculative bool
	Target      *Block // Jump
	Then        *Block // Branch
	Else        *Block // Branch
}

// DefinedReg returns the register the instruction defines, or NoReg.
// Instructions that never produce a value report NoReg even if their Dst
// field holds the zero value (register 0).
func (i *Instr) DefinedReg() Reg {
	switch i.Op {
	case OpSetVar, OpStore, OpStoreVarField, OpJump, OpBranch, OpReturn:
		return NoReg
	}
	return i.Dst
}

// IsMemLoad reports whether the instruction reads memory through a pointer
// (the paper's "heap load" candidates, including dope-vector loads).
func (i *Instr) IsMemLoad() bool { return i.Op == OpLoad }

// IsMemStore reports whether the instruction writes memory through a pointer.
func (i *Instr) IsMemStore() bool { return i.Op == OpStore }

// IsTerminator reports whether the instruction ends a basic block.
func (i *Instr) IsTerminator() bool {
	switch i.Op {
	case OpJump, OpBranch, OpReturn:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Blocks and procedures

// Block is a basic block.
type Block struct {
	ID     int
	Name   string
	Instrs []Instr
	Preds  []*Block
	Succs  []*Block
}

// Proc is a lowered procedure.
type Proc struct {
	Name    string
	Params  []*Var
	Result  types.Type
	Locals  []*Var // includes compiler temps materialized as vars (WITH, FOR)
	Blocks  []*Block
	Entry   *Block
	NumRegs int
	// MethodOf is the object type whose method table names this procedure,
	// or nil.
	MethodOf *types.Object
	// MutGen is the program mutation-clock value at which this
	// procedure's body was last mutated (see Program.MarkMutated); zero
	// means "unchanged since lowering". Analyses compare it against a
	// clock value they captured at build time to find the dirty set.
	MutGen uint64
}

// AllVars returns params then locals.
func (p *Proc) AllVars() []*Var {
	vs := make([]*Var, 0, len(p.Params)+len(p.Locals))
	vs = append(vs, p.Params...)
	return append(vs, p.Locals...)
}

// NewReg allocates a fresh virtual register.
func (p *Proc) NewReg() Reg {
	r := Reg(p.NumRegs)
	p.NumRegs++
	return r
}

// Program is a whole lowered module.
type Program struct {
	Name     string
	Universe *types.Universe
	Globals  []*Var
	Procs    []*Proc
	// Main is the module body (global initializers plus BEGIN block),
	// lowered as a parameterless procedure named "__main__". It is also
	// present in Procs.
	Main *Proc
	// ProcByName indexes Procs.
	ProcByName map[string]*Proc
	// AddressTakenFields records (object/record type ID, field name) pairs
	// whose address the program takes (via WITH or by-ref actuals).
	AddressTakenFields map[FieldKey]bool
	// AddressTakenElems records array type IDs some element of which has
	// its address taken.
	AddressTakenElems map[int]bool
	// AddressTakenVars records variables whose slot address escapes (via
	// WITH aliasing or by-ref actuals rooted at the variable itself).
	AddressTakenVars map[*Var]bool
	// Merges records every implicit and explicit pointer assignment
	// (dst := src) by static type — the input to SMTypeRefs' selective
	// type merging (Figure 2 of the paper).
	Merges []Merge
	// ByRefFormalTypes records the type IDs of pass-by-reference formals;
	// open-world AddressTaken consults it (Section 4 of the paper).
	ByRefFormalTypes map[int]bool
	// mutClock is the monotonically increasing mutation clock advanced by
	// MarkMutated. It is touched only during single-threaded mutation
	// windows (pass pipelines, server edits), never on the query path.
	mutClock uint64
}

// MarkMutated advances the program's mutation clock and stamps the given
// procedures as mutated at the new value. Every site that rewrites a
// procedure body (optimization passes, server-side edits) must call it;
// an unstamped mutation is still sound — consumers that find an empty
// dirty set after an explicit invalidation fall back to a full rebuild —
// but forfeits incrementality. Not safe concurrently with itself or with
// analysis construction.
func (p *Program) MarkMutated(procs ...*Proc) {
	p.mutClock++
	for _, pr := range procs {
		pr.MutGen = p.mutClock
	}
}

// MutClock returns the current mutation-clock value. An analysis captures
// it at build time and later asks DirtySince(captured) for the
// procedures mutated after that build.
func (p *Program) MutClock() uint64 { return p.mutClock }

// DirtySince returns the procedures whose bodies were stamped mutated
// after the given clock value, in Procs order (deterministic).
func (p *Program) DirtySince(clock uint64) []*Proc {
	var dirty []*Proc
	for _, pr := range p.Procs {
		if pr.MutGen > clock {
			dirty = append(dirty, pr)
		}
	}
	return dirty
}

// Merge is one pointer assignment's (destination, source) static types.
type Merge struct {
	Dst, Src types.Type
}

// FieldKey identifies a field of a type for AddressTaken queries.
type FieldKey struct {
	TypeID int
	Field  string
}

// ComputeCFGEdges rebuilds Preds/Succs from terminators. Call after any
// structural edit.
func (p *Proc) ComputeCFGEdges() {
	for _, b := range p.Blocks {
		b.Preds = b.Preds[:0]
		b.Succs = b.Succs[:0]
	}
	for _, b := range p.Blocks {
		if len(b.Instrs) == 0 {
			continue
		}
		t := &b.Instrs[len(b.Instrs)-1]
		switch t.Op {
		case OpJump:
			b.Succs = append(b.Succs, t.Target)
		case OpBranch:
			b.Succs = append(b.Succs, t.Then, t.Else)
		}
	}
	for _, b := range p.Blocks {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}
