package ir_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tbaa/internal/ir"
	"tbaa/internal/types"
)

func mkVars() (*types.Universe, []*ir.Var) {
	u := types.NewUniverse()
	obj := u.NewObject("T", nil, false, "")
	obj.Fields = append(obj.Fields, &types.Field{Name: "f", Type: u.IntT})
	arr := u.NewArray("A", u.IntT)
	vars := []*ir.Var{
		{Name: "a", Type: obj},
		{Name: "b", Type: obj},
		{Name: "arr", Type: arr},
		{Name: "i", Type: u.IntT},
		{Name: "j", Type: u.IntT},
	}
	return u, vars
}

// randAP builds a random access path over the fixed universe.
func randAP(r *rand.Rand, vars []*ir.Var, u *types.Universe) *ir.AP {
	ap := &ir.AP{Root: vars[r.Intn(len(vars))]}
	n := r.Intn(3)
	for k := 0; k < n; k++ {
		switch r.Intn(3) {
		case 0:
			ap = ap.Extend(ir.APSel{Kind: ir.SelField, Field: []string{"f", "g"}[r.Intn(2)], Type: u.IntT})
		case 1:
			ap = ap.Extend(ir.APSel{Kind: ir.SelDeref, Type: u.IntT})
		default:
			idx := []ir.Operand{ir.CInt(int64(r.Intn(3))), ir.V(vars[3]), ir.V(vars[4])}[r.Intn(3)]
			ap = ap.Extend(ir.APSel{Kind: ir.SelIndex, Index: idx, Type: u.IntT})
		}
	}
	return ap
}

// TestAPEqualProperties: Equal is reflexive, symmetric, and consistent
// with String rendering.
func TestAPEqualProperties(t *testing.T) {
	u, vars := mkVars()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		p := randAP(r, vars, u)
		q := randAP(r, vars, u)
		if !p.Equal(p) {
			t.Fatalf("Equal not reflexive: %s", p)
		}
		if p.Equal(q) != q.Equal(p) {
			t.Fatalf("Equal not symmetric: %s vs %s", p, q)
		}
		if p.Equal(q) && p.String() != q.String() {
			t.Fatalf("equal paths render differently: %s vs %s", p, q)
		}
	}
}

// TestAPExtendPrefix: Prefix undoes Extend.
func TestAPExtendPrefix(t *testing.T) {
	u, vars := mkVars()
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		p := randAP(r, vars, u)
		ext := p.Extend(ir.APSel{Kind: ir.SelField, Field: "f", Type: u.IntT})
		if !ext.Prefix().Equal(p) {
			t.Fatalf("Prefix(Extend(p)) != p for %s", p)
		}
		if ext.Last().Field != "f" {
			t.Fatal("Last must see the extension")
		}
	}
}

// TestAPUsesVar matches a naive recomputation.
func TestAPUsesVar(t *testing.T) {
	u, vars := mkVars()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		p := randAP(r, vars, u)
		for _, v := range vars {
			want := p.Root == v
			for _, s := range p.Sels {
				if s.Kind == ir.SelIndex && s.Index.Kind == ir.VarOp && s.Index.Var == v {
					want = true
				}
			}
			if p.UsesVar(v) != want {
				t.Fatalf("UsesVar(%s, %s) = %v want %v", p, v.Name, p.UsesVar(v), want)
			}
		}
	}
}

func TestOperandEqual(t *testing.T) {
	u, vars := mkVars()
	_ = u
	cases := []struct {
		a, b ir.Operand
		want bool
	}{
		{ir.CInt(1), ir.CInt(1), true},
		{ir.CInt(1), ir.CInt(2), false},
		{ir.CBool(true), ir.CBool(true), true},
		{ir.CBool(true), ir.CInt(1), false},
		{ir.R(3), ir.R(3), true},
		{ir.R(3), ir.R(4), false},
		{ir.V(vars[0]), ir.V(vars[0]), true},
		{ir.V(vars[0]), ir.V(vars[1]), false},
		{ir.CText("x"), ir.CText("x"), true},
		{ir.CNil(), ir.CNil(), true},
		{ir.CNil(), ir.CInt(0), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%s, %s) = %v want %v", c.a, c.b, got, c.want)
		}
		if c.a.Equal(c.b) != c.b.Equal(c.a) {
			t.Errorf("Equal not symmetric for %s, %s", c.a, c.b)
		}
	}
}

func TestComputeCFGEdges(t *testing.T) {
	u, _ := mkVars()
	p := &ir.Proc{Name: "p", Result: u.VoidT}
	b0 := &ir.Block{ID: 0}
	b1 := &ir.Block{ID: 1}
	b2 := &ir.Block{ID: 2}
	p.Blocks = []*ir.Block{b0, b1, b2}
	p.Entry = b0
	r := p.NewReg()
	b0.Instrs = []ir.Instr{
		{Op: ir.OpConst, Dst: r, Args: []ir.Operand{ir.CBool(true)}},
		{Op: ir.OpBranch, Args: []ir.Operand{ir.R(r)}, Then: b1, Else: b2},
	}
	b1.Instrs = []ir.Instr{{Op: ir.OpJump, Target: b2}}
	b2.Instrs = []ir.Instr{{Op: ir.OpReturn}}
	p.ComputeCFGEdges()
	if len(b0.Succs) != 2 || len(b2.Preds) != 2 || len(b1.Preds) != 1 {
		t.Errorf("edges wrong: b0.Succs=%d b2.Preds=%d b1.Preds=%d",
			len(b0.Succs), len(b2.Preds), len(b1.Preds))
	}
	// Recomputing is idempotent.
	p.ComputeCFGEdges()
	if len(b2.Preds) != 2 {
		t.Error("ComputeCFGEdges not idempotent")
	}
}

func TestInstrStringTotal(t *testing.T) {
	// Every opcode renders without panicking.
	u, vars := mkVars()
	b := &ir.Block{ID: 7}
	ins := []ir.Instr{
		{Op: ir.OpConst, Dst: 0, Args: []ir.Operand{ir.CInt(4)}},
		{Op: ir.OpCopy, Dst: 1, Args: []ir.Operand{ir.R(0)}},
		{Op: ir.OpBin, Dst: 2, BinOp: ir.Add, Args: []ir.Operand{ir.R(0), ir.R(1)}},
		{Op: ir.OpUn, Dst: 3, UnOp: ir.Not, Args: []ir.Operand{ir.R(2)}},
		{Op: ir.OpSetVar, Var: vars[3], Args: []ir.Operand{ir.R(0)}},
		{Op: ir.OpLoad, Dst: 4, Base: ir.V(vars[0]), Sel: ir.Sel{Kind: ir.SelField, Field: "f"},
			AP: &ir.AP{Root: vars[0]}},
		{Op: ir.OpStore, Base: ir.V(vars[0]), Sel: ir.Sel{Kind: ir.SelDeref},
			Args: []ir.Operand{ir.CInt(1)}},
		{Op: ir.OpLoadVarField, Dst: 5, Var: vars[0], Field: "f"},
		{Op: ir.OpStoreVarField, Var: vars[0], Field: "f", Args: []ir.Operand{ir.CInt(2)}},
		{Op: ir.OpMkLoc, Dst: 6, Base: ir.V(vars[0]), Sel: ir.Sel{Kind: ir.SelIndex, Index: ir.CInt(0)}},
		{Op: ir.OpMkLocVar, Dst: 7, Var: vars[3]},
		{Op: ir.OpNew, Dst: 8, Type: u.IntT},
		{Op: ir.OpNewArray, Dst: 9, Type: u.IntT, Args: []ir.Operand{ir.CInt(3)}},
		{Op: ir.OpCall, Dst: 10, Callee: "F", Args: []ir.Operand{ir.CInt(1)}},
		{Op: ir.OpMethodCall, Dst: 11, Method: "m", Args: []ir.Operand{ir.V(vars[0])}},
		{Op: ir.OpBuiltin, Dst: 12, Builtin: ir.BAbs, Args: []ir.Operand{ir.CInt(-1)}},
		{Op: ir.OpJump, Target: b},
		{Op: ir.OpBranch, Args: []ir.Operand{ir.R(3)}, Then: b, Else: b},
		{Op: ir.OpReturn},
		{Op: ir.OpReturn, Args: []ir.Operand{ir.R(0)}},
	}
	for i := range ins {
		if s := ins[i].String(); s == "" {
			t.Errorf("instr %d renders empty", i)
		}
	}
}

// TestSelKindsCovered uses quick.Check to confirm Sel rendering is total
// over the kind space.
func TestSelKindsCovered(t *testing.T) {
	f := func(k uint8) bool {
		s := ir.Sel{Kind: ir.SelKind(int(k) % 5), Field: "x", Index: ir.CInt(1)}
		return s.String() != ""
	}
	cfg := &quick.Config{MaxCount: 50, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(uint8(r.Intn(255)))
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
