package ir_test

import (
	"testing"

	"tbaa/internal/ir"
	"tbaa/internal/types"
)

// internProgram builds a small program whose instruction paths exercise
// the interner: duplicate-content paths on distinct AP values, deep
// paths whose prefixes overlap, and a path whose prefix is itself an
// instruction path.
func internProgram() (*ir.Program, []*ir.AP) {
	u, vars := mkVars()
	a, b := vars[0], vars[1]
	deep := &ir.AP{Root: a, Sels: []ir.APSel{
		{Kind: ir.SelField, Field: "f", Type: u.IntT},
		{Kind: ir.SelDeref, Type: u.IntT},
		{Kind: ir.SelField, Field: "g", Type: u.IntT},
	}}
	shallow := &ir.AP{Root: a, Sels: deep.Sels[:1]} // content-equal to deep's first prefix
	dupA := &ir.AP{Root: b, Sels: []ir.APSel{{Kind: ir.SelField, Field: "f", Type: u.IntT}}}
	dupB := &ir.AP{Root: b, Sels: []ir.APSel{{Kind: ir.SelField, Field: "f", Type: u.IntT}}}
	aps := []*ir.AP{deep, shallow, dupA, dupB}
	blk := &ir.Block{ID: 0, Name: "entry"}
	for _, ap := range aps {
		blk.Instrs = append(blk.Instrs, ir.Instr{Op: ir.OpLoad, Dst: 0, AP: ap})
	}
	blk.Instrs = append(blk.Instrs, ir.Instr{Op: ir.OpReturn})
	proc := &ir.Proc{Name: "p", Blocks: []*ir.Block{blk}, Entry: blk}
	prog := &ir.Program{
		Name:       "intern",
		Universe:   u,
		Procs:      []*ir.Proc{proc},
		Main:       proc,
		ProcByName: map[string]*ir.Proc{"p": proc},
	}
	return prog, aps
}

func TestInternAPsAssignsDenseIDs(t *testing.T) {
	prog, aps := internProgram()
	x := ir.InternAPs(prog)
	seen := map[int32]bool{}
	for _, ap := range aps {
		if ap.IID == 0 {
			t.Fatalf("%s not interned", ap)
		}
		if seen[ap.IID] {
			t.Fatalf("%s shares an IID; distinct AP values must keep distinct identities", ap)
		}
		seen[ap.IID] = true
		if got := x.ByID(ap.IID); got != ap {
			t.Fatalf("ByID(%d) = %v, want %s", ap.IID, got, ap)
		}
	}
	if x.Len() < len(aps) {
		t.Fatalf("Len() = %d, want >= %d", x.Len(), len(aps))
	}
	if x.ByID(0) != nil || x.ByID(int32(x.Len()+1)) != nil {
		t.Fatal("out-of-range ByID must return nil")
	}
}

func TestInternAPsCanonicalPrefixes(t *testing.T) {
	prog, aps := internProgram()
	x := ir.InternAPs(prog)
	deep, shallow := aps[0], aps[1]
	pre := x.Prefixes(deep)
	if len(pre) != 2 {
		t.Fatalf("deep path has %d prefixes, want 2", len(pre))
	}
	// The depth-1 prefix is content-equal to the shallow instruction
	// path, so interning must canonicalize to that very AP.
	if pre[0] != shallow {
		t.Fatalf("prefix %s did not canonicalize to the instruction path", pre[0])
	}
	for i, p := range pre {
		if p.IID == 0 {
			t.Fatalf("prefix %s not interned", p)
		}
		if want := (&ir.AP{Root: deep.Root, Sels: deep.Sels[:i+1]}); !p.Equal(want) {
			t.Fatalf("prefix %d = %s, want %s", i, p, want)
		}
	}
	// Paths with fewer than two selectors have no proper prefixes.
	if got := x.Prefixes(shallow); got != nil {
		t.Fatalf("shallow path has prefixes %v, want none", got)
	}
}

func TestInternAPsRebuildIsStable(t *testing.T) {
	prog, aps := internProgram()
	x1 := ir.InternAPs(prog)
	ids := make([]int32, len(aps))
	for i, ap := range aps {
		ids[i] = ap.IID
	}
	x2 := ir.InternAPs(prog)
	for i, ap := range aps {
		if ap.IID != ids[i] {
			t.Fatalf("rebuild renumbered %s: %d -> %d", ap, ids[i], ap.IID)
		}
	}
	if x1.Len() != x2.Len() {
		t.Fatalf("rebuild changed table size: %d -> %d", x1.Len(), x2.Len())
	}
	// Rebuilt prefix chains are fresh APs (the original chain belongs to
	// the first index) but must keep identical numbering and content.
	p1, p2 := x1.Prefixes(aps[0]), x2.Prefixes(aps[0])
	if len(p1) != len(p2) {
		t.Fatalf("rebuild changed prefix count: %d -> %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i].IID != p2[i].IID || !p1[i].Equal(p2[i]) {
			t.Fatalf("rebuild changed prefix %d: %s(%d) -> %s(%d)",
				i, p1[i], p1[i].IID, p2[i], p2[i].IID)
		}
	}
}

// TestInternAPsVarShadowing pins that same-named roots in different
// procedures never canonicalize together: the intern key is the root's
// identity, not its rendering.
func TestInternAPsVarShadowing(t *testing.T) {
	u := types.NewUniverse()
	obj := u.NewObject("T", nil, false, "")
	mk := func(name string) (*ir.Proc, *ir.AP) {
		v := &ir.Var{Name: "x", Type: obj, Kind: ir.LocalVar}
		ap := &ir.AP{Root: v, Sels: []ir.APSel{
			{Kind: ir.SelField, Field: "f", Type: u.IntT},
			{Kind: ir.SelDeref, Type: u.IntT},
		}}
		blk := &ir.Block{Name: "entry", Instrs: []ir.Instr{
			{Op: ir.OpLoad, AP: ap}, {Op: ir.OpReturn},
		}}
		return &ir.Proc{Name: name, Locals: []*ir.Var{v}, Blocks: []*ir.Block{blk}, Entry: blk}, ap
	}
	p1, ap1 := mk("p1")
	p2, ap2 := mk("p2")
	prog := &ir.Program{
		Name:     "shadow",
		Universe: u,
		Procs:    []*ir.Proc{p1, p2},
		Main:     p1,
	}
	x := ir.InternAPs(prog)
	if ap1.IID == ap2.IID {
		t.Fatal("same-named roots in different procs interned together")
	}
	pre1, pre2 := x.Prefixes(ap1), x.Prefixes(ap2)
	if len(pre1) != 1 || len(pre2) != 1 {
		t.Fatalf("want one prefix each, got %d and %d", len(pre1), len(pre2))
	}
	if pre1[0] == pre2[0] || pre1[0].IID == pre2[0].IID {
		t.Fatal("prefixes of same-named roots canonicalized together")
	}
}
