package ir

import "sync/atomic"

// Canonical access-path interning. InternAPs assigns every access path
// occurring in a program a dense identity (AP.IID) so downstream
// analyses can replace pointer-keyed maps with array indexing — the
// foundation of the alias package's partition oracle, whose MayAlias is
// two ID loads and a bitset test.
//
// Interning happens during a single-threaded build window (analysis
// construction); instruction APs keep their IID for the lifetime of the
// program, so a rebuild over an unchanged program writes nothing and
// may run concurrently with readers of earlier intern generations.

// APKey canonicalizes an access path for content-based interning: the
// root variable's identity plus the rendered selector chain. Two APs
// with the same key are Equal (same root, same selectors, syntactically
// identical subscripts).
type APKey struct {
	Root *Var
	Sels string
}

// Key returns the canonical interning key of p. Only the selector chain
// is rendered; the root is kept as a pointer, so same-named variables
// of different procedures never collide.
func (p *AP) Key() APKey {
	if len(p.Sels) == 0 {
		return APKey{Root: p.Root}
	}
	n := 0
	for i := range p.Sels {
		n += 1 + len(p.Sels[i].Field) + 8
	}
	buf := make([]byte, 0, n)
	for i := range p.Sels {
		sel := &p.Sels[i]
		switch sel.Kind {
		case SelField:
			buf = append(buf, '.')
			buf = append(buf, sel.Field...)
		case SelDeref:
			buf = append(buf, '^')
		case SelIndex:
			buf = append(buf, '[')
			buf = append(buf, sel.Index.String()...)
			buf = append(buf, ']')
		case SelDopeLen:
			buf = append(buf, "{len}"...)
		case SelDopeElems:
			buf = append(buf, "{elems}"...)
		}
	}
	return APKey{Root: p.Root, Sels: string(buf)}
}

// APIndex is the result of interning one program's access paths: a
// dense table of every distinct path (instruction paths by pointer,
// plus one canonical AP per proper prefix), and the canonical prefix
// chains the store-kill rules walk.
type APIndex struct {
	// APs lists the interned paths; APs[i] has IID int32(i+1) (IID 0
	// means "not interned").
	APs []*AP
	// prefixes maps each interned instruction AP (by pointer) to its
	// proper prefixes of selector length >= 1, shallowest first, each an
	// interned canonical AP shared by every path extending it.
	prefixes map[*AP][]*AP
	// byKey canonicalizes prefix paths across builds. It is consulted and
	// mutated only inside the single-threaded intern window (InternAPs /
	// ExtendAPs) and is shared by extensions of this index, so canonical
	// prefix identities stay stable across incremental builds.
	byKey map[APKey]*AP
}

// InternAPs interns every access path carried by prog's instructions,
// and a canonical AP for each proper prefix (store kills query those).
// The walk order is deterministic, so re-interning an unchanged program
// reproduces the same numbering; instruction APs that already carry an
// IID keep it, and paths new to this build (structural passes clone
// and insert instructions) are numbered strictly above every
// previously assigned identity, so one identity never names two
// different paths across builds. Identities of paths the program no
// longer carries are left as nil holes in APs; consumers must treat a
// hole as "not this build's path". IIDs are written with atomic
// stores, so a rebuild may overlap readers of earlier intern
// generations (whose lookups validate the pointer behind the identity
// and fall back on mismatch). Not safe to run concurrently with itself
// over one program — callers intern during analysis (re)construction.
func InternAPs(prog *Program) *APIndex {
	x := &APIndex{prefixes: make(map[*AP][]*AP), byKey: make(map[APKey]*AP)}
	visit := func(fn func(*AP)) {
		for _, p := range prog.Procs {
			forEachProcAP(p, fn)
		}
	}
	x.intern(visit)
	return x
}

// InternAPList interns the given paths — a program's distinct
// instruction access paths in Procs → Blocks → Instrs first-visit
// order — and produces the index InternAPs would build by walking that
// program. The two are equivalent because intern consumes only the
// order of first visits: a repeated instruction path already carries
// its identity and re-interning it is a no-op, so the deduplicated
// first-visit list drives the protocol through the same states the
// full occurrence sequence would. The artifact decoder uses this to
// rebuild an index without touching instruction bodies, which lets
// interning overlap their decode. Same single-threaded contract as
// InternAPs.
func InternAPList(aps []*AP) *APIndex {
	x := &APIndex{prefixes: make(map[*AP][]*AP), byKey: make(map[APKey]*AP)}
	x.intern(func(fn func(*AP)) {
		for _, ap := range aps {
			fn(ap)
		}
	})
	return x
}

// ExtendAPs interns the access paths of the given (mutated) procedures
// into a copy of a previous build's index, leaving every other
// procedure's identities untouched — the incremental counterpart of
// InternAPs, costing O(table copy + dirty paths) instead of a full
// program walk. The returned index shares canonical prefix identities
// with old (via the retained byKey map, which it takes over and
// mutates); old's APs table and prefix map are never written, so
// readers of earlier analysis generations stay valid. Table slots whose
// paths the mutated bodies no longer carry keep their old entries; they
// are unreachable through any current instruction and classOf-style
// consumers validate the pointer behind an identity anyway. Same
// single-threaded contract as InternAPs.
func ExtendAPs(prog *Program, old *APIndex, dirty []*Proc) *APIndex {
	x := &APIndex{
		APs:      append([]*AP(nil), old.APs...),
		prefixes: make(map[*AP][]*AP, len(old.prefixes)),
		byKey:    old.byKey,
	}
	for k, v := range old.prefixes {
		x.prefixes[k] = v
	}
	visit := func(fn func(*AP)) {
		for _, p := range dirty {
			forEachProcAP(p, fn)
		}
	}
	x.intern(visit)
	return x
}

// intern runs the two-pass intern protocol over the paths produced by
// visit: pass 0 finds the highest identity any earlier build assigned
// (fresh paths number strictly above it), pass 1 interns instruction
// paths, pass 2 interns prefixes. Prefixes intern after every
// instruction path, so a prefix that is itself an instruction path
// canonicalizes to that instruction's AP and rebuilt indexes number
// fresh prefix APs deterministically.
func (x *APIndex) intern(visit func(fn func(*AP))) {
	next := int32(len(x.APs))
	visit(func(ap *AP) {
		if id := atomic.LoadInt32(&ap.IID); id > next {
			next = id
		}
	})
	intern := func(ap *AP) {
		id := atomic.LoadInt32(&ap.IID)
		if id == 0 {
			next++
			id = next
			atomic.StoreInt32(&ap.IID, id)
		}
		for int(id) > len(x.APs) {
			x.APs = append(x.APs, nil)
		}
		x.APs[id-1] = ap
		x.byKey[ap.Key()] = ap
	}
	internPrefixes := func(ap *AP) {
		if len(ap.Sels) < 2 {
			return
		}
		if _, done := x.prefixes[ap]; done {
			return
		}
		chain := make([]*AP, 0, len(ap.Sels)-1)
		for k := 1; k < len(ap.Sels); k++ {
			p := &AP{Root: ap.Root, Sels: ap.Sels[:k]}
			if c, ok := x.byKey[p.Key()]; ok {
				p = c
			} else {
				intern(p)
			}
			chain = append(chain, p)
		}
		x.prefixes[ap] = chain
	}
	visit(intern)
	visit(internPrefixes)
}

// forEachProcAP visits every instruction-carried access path of one
// procedure in deterministic order.
func forEachProcAP(p *Proc, fn func(*AP)) {
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			if ap := b.Instrs[i].AP; ap != nil {
				fn(ap)
			}
		}
	}
}

// Len returns the number of interned paths; valid IIDs are 1..Len.
func (x *APIndex) Len() int { return len(x.APs) }

// ByID returns the interned path with the given IID, or nil.
func (x *APIndex) ByID(id int32) *AP {
	if id < 1 || int(id) > len(x.APs) {
		return nil
	}
	return x.APs[id-1]
}

// Prefixes returns ap's proper prefixes of selector length >= 1
// (shallowest first) as interned canonical APs, or nil when ap was not
// an interned instruction path. The slice is shared: callers must not
// mutate it.
func (x *APIndex) Prefixes(ap *AP) []*AP { return x.prefixes[ap] }
