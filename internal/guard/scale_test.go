package guard

import (
	"math"
	"strings"
	"testing"
)

// synthRows builds a sweep where ns/op = c * lines^alpha exactly, so
// the fit must recover alpha.
func synthRows(level, op string, c, alpha float64, sizes ...int) []ScaleRow {
	var rows []ScaleRow
	for _, n := range sizes {
		rows = append(rows, ScaleRow{
			Benchmark: "randprog-x",
			Lines:     n,
			Level:     level,
			Op:        op,
			NsPerOp:   c * math.Pow(float64(n), alpha),
		})
	}
	return rows
}

func TestGrowthExponentsRecoverPowerLaw(t *testing.T) {
	rows := synthRows("TypeDecl", "MayAliasHot", 40, 0.0, 10000, 32000, 100000)
	rows = append(rows, synthRows("TypeDecl", "Compile", 3.5, 1.3, 10000, 32000, 100000)...)
	rows = append(rows, synthRows("TypeDecl", "SummaryCHA", 0.01, 2.0, 10000, 100000)...)
	exps := GrowthExponents(rows)
	if len(exps) != 3 {
		t.Fatalf("got %d series, want 3", len(exps))
	}
	want := map[string]float64{"MayAliasHot": 0.0, "Compile": 1.3, "SummaryCHA": 2.0}
	for _, e := range exps {
		if w, ok := want[e.Op]; !ok || math.Abs(e.Alpha-w) > 1e-9 {
			t.Errorf("%s: alpha = %g, want %g", e.Op, e.Alpha, w)
		}
	}
}

func TestGrowthExponentsFilters(t *testing.T) {
	rows := []ScaleRow{
		// Named program: no growth curve, excluded.
		{Benchmark: "lower-vm", Lines: 749, Level: "L", Op: "Compile", NsPerOp: 100},
		{Benchmark: "lower-vm", Lines: 800, Level: "L", Op: "Compile", NsPerOp: 200},
		// Single size: no slope.
		{Benchmark: "randprog-10000", Lines: 10000, Level: "L", Op: "Compile", NsPerOp: 100},
	}
	if exps := GrowthExponents(rows); len(exps) != 0 {
		t.Fatalf("got %d series, want 0", len(exps))
	}
}

func TestParseScaleErrors(t *testing.T) {
	if _, err := ParseScale(strings.NewReader("{not json"), "b.json"); err == nil ||
		!strings.Contains(err.Error(), "b.json") || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("want labeled malformed error, got %v", err)
	}
	if _, err := ParseScale(strings.NewReader("[]"), "b.json"); err == nil ||
		!strings.Contains(err.Error(), "empty") {
		t.Fatalf("want empty-artifact error, got %v", err)
	}
}

func TestCompareScale(t *testing.T) {
	pol := ScalePolicy{
		Caps:   map[string]float64{"MayAliasHot": 0.35, "Compile": 1.45},
		Margin: 0.25,
	}
	base := synthRows("L", "MayAliasHot", 40, 0.10, 10000, 100000)
	base = append(base, synthRows("L", "Compile", 3, 1.60, 10000, 100000)...)

	// Current: hot query still flat, Compile within baseline+margin but
	// over the hard cap, plus an untracked op.
	cur := synthRows("L", "MayAliasHot", 42, 0.12, 10000, 100000)
	cur = append(cur, synthRows("L", "Compile", 3, 1.80, 10000, 100000)...)
	cur = append(cur, synthRows("L", "CountPairs", 1, 1.5, 10000, 100000)...)

	rep, err := CompareScale(cur, base, pol)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("want pass: baseline 1.60 + margin 0.25 = 1.85 limit covers 1.80")
	}
	status := make(map[string]string)
	limit := make(map[string]float64)
	for _, r := range rep.Rows {
		status[r.Op] = r.Status
		limit[r.Op] = r.Limit
	}
	if status["MayAliasHot"] != "ok" || status["Compile"] != "ok" {
		t.Errorf("statuses = %v", status)
	}
	if status["CountPairs"] != "info" {
		t.Errorf("untracked op status = %q, want info", status["CountPairs"])
	}
	if math.Abs(limit["Compile"]-1.85) > 1e-9 {
		t.Errorf("Compile limit = %g, want baseline+margin 1.85", limit["Compile"])
	}
	if math.Abs(limit["MayAliasHot"]-0.35) > 1e-9 {
		t.Errorf("MayAliasHot limit = %g, want cap 0.35", limit["MayAliasHot"])
	}

	// Regressed current: hot queries now grow linearly.
	bad := synthRows("L", "MayAliasHot", 40, 1.0, 10000, 100000)
	rep, err = CompareScale(bad, base, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Fatal("want failure for linear hot-query growth")
	}
	var buf strings.Builder
	rep.Fprint(&buf)
	if !strings.Contains(buf.String(), "FAIL") {
		t.Errorf("report missing FAIL:\n%s", buf.String())
	}
}

func TestCompareScaleRatioGate(t *testing.T) {
	pol := ScalePolicy{
		Caps:   map[string]float64{"AnalyzerBuild": 1.60, "RebuildOneProc": 1.30},
		Margin: 0.25,
		Ratios: map[string]RatioGate{
			"RebuildOneProc": {Against: "AnalyzerBuild", Max: 0.10},
		},
	}
	// Build cost 100*n^1.2; rebuild a flat-ish 0.4*n^0.9. At the largest
	// module (100k lines) the ratio is well under a tenth.
	base := synthRows("L", "AnalyzerBuild", 100, 1.2, 10000, 100000)
	base = append(base, synthRows("L", "RebuildOneProc", 0.4, 0.9, 10000, 100000)...)
	rep, err := CompareScale(base, nil, pol)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed || len(rep.Ratios) != 1 {
		t.Fatalf("want one passing ratio row, got %+v", rep)
	}
	r := rep.Ratios[0]
	if r.Op != "RebuildOneProc" || r.Against != "AnalyzerBuild" || r.Lines != 100000 || r.Status != "ok" {
		t.Fatalf("ratio row = %+v", r)
	}
	wantRatio := (0.4 * math.Pow(100000, 0.9)) / (100 * math.Pow(100000, 1.2))
	if math.Abs(r.Ratio-wantRatio) > 1e-12 {
		t.Fatalf("ratio = %g, want %g", r.Ratio, wantRatio)
	}

	// A rebuild that crept to a third of the from-scratch build fails
	// even though its growth exponent is fine.
	bad := synthRows("L", "AnalyzerBuild", 100, 1.2, 10000, 100000)
	bad = append(bad, synthRows("L", "RebuildOneProc", 33, 1.2, 10000, 100000)...)
	rep, err = CompareScale(bad, nil, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Fatal("want failure for a rebuild costing a third of the build")
	}
	var buf strings.Builder
	rep.Fprint(&buf)
	if !strings.Contains(buf.String(), "FAIL") || !strings.Contains(buf.String(), "RebuildOneProc") {
		t.Errorf("report missing ratio FAIL:\n%s", buf.String())
	}

	// Artifacts predating the op carry no ratio rows and stay gateable.
	old := synthRows("L", "AnalyzerBuild", 100, 1.2, 10000, 100000)
	rep, err = CompareScale(old, nil, pol)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed || len(rep.Ratios) != 0 {
		t.Fatalf("want no ratio rows for an artifact without the op, got %+v", rep)
	}
}

func TestCompareScaleBootstrapAndErrors(t *testing.T) {
	pol := DefaultScalePolicy()
	cur := synthRows("L", "MayAliasHot", 40, 0.05, 10000, 100000)
	// nil baseline: hard caps only.
	rep, err := CompareScale(cur, nil, pol)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed || len(rep.Rows) != 1 || !math.IsNaN(rep.Rows[0].BaselineAlpha) {
		t.Fatalf("bootstrap rep = %+v", rep)
	}

	// No gateable series at all.
	_, err = CompareScale([]ScaleRow{{Benchmark: "lower-vm", Lines: 1, Op: "X", NsPerOp: 1}}, nil, pol)
	if err == nil || !strings.Contains(err.Error(), "no gateable series") {
		t.Fatalf("want no-gateable-series error, got %v", err)
	}
}
