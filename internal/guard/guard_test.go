package guard

import (
	"strings"
	"testing"
)

const benchOut = `goos: linux
goarch: amd64
pkg: tbaa
BenchmarkMayAlias/TypeDecl-8         	 5000000	        41.5 ns/op
BenchmarkMayAlias/TypeDecl-8         	 5000000	        43.0 ns/op
BenchmarkCountPairs/TypeDecl-8       	     300	    400000 ns/op	  120 B/op
BenchmarkOther-8                     	 1000000	      1000 ns/op
PASS
`

func TestParseBench(t *testing.T) {
	got, err := ParseBench(strings.NewReader(benchOut), "x")
	if err != nil {
		t.Fatal(err)
	}
	// -8 suffix stripped, repeated samples accumulate.
	if samples := got["BenchmarkMayAlias/TypeDecl"]; len(samples) != 2 || samples[0] != 41.5 {
		t.Fatalf("MayAlias samples = %v", samples)
	}
	if samples := got["BenchmarkCountPairs/TypeDecl"]; len(samples) != 1 || samples[0] != 400000 {
		t.Fatalf("CountPairs samples = %v", samples)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	_, err := ParseBench(strings.NewReader("PASS\nok  \ttbaa\t1.2s\n"), "baseline.txt")
	if err == nil || !strings.Contains(err.Error(), "baseline.txt") {
		t.Fatalf("want labeled no-benchmarks error, got %v", err)
	}
}

func TestParseBenchMalformedNsOp(t *testing.T) {
	_, err := ParseBench(strings.NewReader("BenchmarkX-8 10 zap ns/op\n"), "f")
	if err == nil || !strings.Contains(err.Error(), "bad ns/op") {
		t.Fatalf("want bad ns/op error, got %v", err)
	}
}

func TestCompareBench(t *testing.T) {
	base := map[string][]float64{
		"BenchmarkMayAlias/A": {100, 105},
		"BenchmarkMayAlias/B": {100},
		"BenchmarkMayAlias/C": {100},
		"BenchmarkUntracked":  {100},
	}
	cur := map[string][]float64{
		"BenchmarkMayAlias/A": {118, 130}, // min 118: within +20%
		"BenchmarkMayAlias/B": {200},      // regression
		// C missing from current run
		"BenchmarkMayAlias/D": {50}, // new, no baseline
		"BenchmarkUntracked":  {900},
	}
	rep, err := CompareBench(base, cur, []string{"BenchmarkMayAlias"}, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Fatal("want failure")
	}
	status := make(map[string]string)
	for _, r := range rep.Rows {
		status[r.Name] = r.Status
	}
	want := map[string]string{
		"BenchmarkMayAlias/A": "ok",
		"BenchmarkMayAlias/B": "FAIL",
		"BenchmarkMayAlias/C": "missing",
		"BenchmarkMayAlias/D": "new",
	}
	for name, ws := range want {
		if status[name] != ws {
			t.Errorf("%s: status = %q, want %q", name, status[name], ws)
		}
	}
	if _, ok := status["BenchmarkUntracked"]; ok {
		t.Error("untracked benchmark appeared in report")
	}

	var buf strings.Builder
	rep.Fprint(&buf)
	for _, want := range []string{"FAIL", "missing from current run", "new benchmark"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %q:\n%s", want, buf.String())
		}
	}
}

func TestCompareBenchNoTracked(t *testing.T) {
	base := map[string][]float64{"BenchmarkX": {1}}
	_, err := CompareBench(base, base, []string{"BenchmarkMayAlias"}, 0.2)
	if err == nil || !strings.Contains(err.Error(), "no tracked benchmarks") {
		t.Fatalf("want no-tracked error, got %v", err)
	}
}
