package guard

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// The scale gate turns BENCH_scale.json into growth exponents and
// fails when cost grows faster in module size than the per-op policy
// allows. Exponents (the log-log slope of ns/op against module lines,
// fitted over the generated randprog-* sweep points) are
// machine-independent: a slower CI runner shifts every point by a
// constant factor and leaves the slope untouched, so the committed
// baseline stays comparable across hardware — the property an absolute
// ns/op threshold lacks.

// ScaleRow mirrors the BENCH_scale.json schema (tbaa.ScaleRow); guard
// redeclares it so the package stays dependency-free and testable.
type ScaleRow struct {
	Benchmark string  `json:"benchmark"`
	Lines     int     `json:"lines"`
	Level     string  `json:"level"`
	Op        string  `json:"op"`
	NsPerOp   float64 `json:"ns_per_op"`
}

// ParseScale reads a BENCH_scale.json artifact, rejecting empty or
// malformed inputs with a diagnostic naming the label.
func ParseScale(r io.Reader, label string) ([]ScaleRow, error) {
	var rows []ScaleRow
	if err := json.NewDecoder(r).Decode(&rows); err != nil {
		return nil, fmt.Errorf("%s: malformed scale artifact: %w", label, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: empty scale artifact", label)
	}
	return rows, nil
}

// Exponent is a fitted growth exponent for one (level, op) series.
type Exponent struct {
	Level, Op string
	// Alpha is the least-squares slope of log(ns/op) vs log(lines):
	// 0 = flat, 1 = linear, 2 = quadratic.
	Alpha float64
	// Points is the number of sweep sizes fitted (>= 2).
	Points             int
	MinLines, MaxLines int
	// MinNs/MaxNs are the measurements at the smallest and largest size.
	MinNs, MaxNs float64
}

// seriesKey identifies one exponent series.
type seriesKey struct{ level, op string }

// GrowthExponents fits one exponent per (level, op) over the generated
// sweep modules (benchmark names starting "randprog-"); series with
// fewer than two distinct sizes are skipped — one point has no slope.
func GrowthExponents(rows []ScaleRow) []Exponent {
	series := make(map[seriesKey]map[int]float64)
	for _, r := range rows {
		if !strings.HasPrefix(r.Benchmark, "randprog-") || r.Lines <= 0 || r.NsPerOp <= 0 {
			continue
		}
		k := seriesKey{r.Level, r.Op}
		if series[k] == nil {
			series[k] = make(map[int]float64)
		}
		series[k][r.Lines] = r.NsPerOp
	}
	var out []Exponent
	for k, pts := range series {
		if len(pts) < 2 {
			continue
		}
		var xs, ys []float64
		minL, maxL := 0, 0
		for lines := range pts {
			if minL == 0 || lines < minL {
				minL = lines
			}
			if lines > maxL {
				maxL = lines
			}
		}
		var sizes []int
		for lines := range pts {
			sizes = append(sizes, lines)
		}
		sort.Ints(sizes)
		for _, lines := range sizes {
			xs = append(xs, math.Log(float64(lines)))
			ys = append(ys, math.Log(pts[lines]))
		}
		out = append(out, Exponent{
			Level: k.level, Op: k.op,
			Alpha:  slope(xs, ys),
			Points: len(pts), MinLines: minL, MaxLines: maxL,
			MinNs: pts[minL], MaxNs: pts[maxL],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Level < out[j].Level
	})
	return out
}

// slope is the least-squares slope of y against x.
func slope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// ScalePolicy sets the per-op exponent gate: a series fails when its
// alpha exceeds max(Caps[op], baseline alpha + Margin). The hard cap
// states the structural claim (queries ~flat, builds not superlinear);
// the baseline margin catches creep well under the cap. Ops without a
// cap entry are reported but not gated. Ratios adds absolute
// same-machine gates: Ratios[op] fails when op costs more than Max
// times its companion op on the same (module, level) at the largest
// generated module — the shape of a claim like "an incremental rebuild
// is at least 10x cheaper than a from-scratch build", which an
// exponent alone cannot state.
type ScalePolicy struct {
	Caps   map[string]float64
	Margin float64
	Ratios map[string]RatioGate
}

// RatioGate bounds one op's cost relative to a companion op measured
// in the same sweep cell.
type RatioGate struct {
	Against string
	Max     float64
}

// DefaultScalePolicy encodes the repo's scaling claims. Query cost
// must stay ~flat in module size: the partition answers MayAlias in
// O(1), so only cache effects may grow the hot number, and the
// random-pair number may grow sublinearly with working-set misses.
// CountPairs is gated per reference (the sweep output itself grows
// with the module). Build stages — frontend, partition+flow analyzer
// build, SCC mod-ref summaries — must stay below frank quadratic,
// with the margin holding them near the committed curve.
// RebuildOneProc — a one-procedure edit through the incremental
// invalidation path — may keep a linear component (the snapshot and
// partition extension scan the path table once), but must stay far
// below AnalyzerBuild's curve; the ratio gate pins it to a tenth of
// the from-scratch build at the largest module.
// AnalyzerWarmStart — decoding a persisted artifact instead of
// re-analyzing — is a single linear pass over the snapshot bytes, so
// its exponent is capped near Compile's, and the ratio gate states
// the tier's reason to exist: a warm start must cost at most a
// quarter of the from-scratch build it replaces.
func DefaultScalePolicy() ScalePolicy {
	return ScalePolicy{
		Caps: map[string]float64{
			"MayAliasHot":       0.35,
			"MayAliasRand":      0.90,
			"CountPairsPerRef":  0.80,
			"Compile":           1.45,
			"AnalyzerBuild":     1.60,
			"AnalyzerWarmStart": 1.45,
			"SummaryCHA":        1.60,
			"SummaryRTA":        1.60,
			"RebuildOneProc":    1.30,
		},
		Margin: 0.25,
		Ratios: map[string]RatioGate{
			"RebuildOneProc":    {Against: "AnalyzerBuild", Max: 0.10},
			"AnalyzerWarmStart": {Against: "AnalyzerBuild", Max: 0.25},
		},
	}
}

// ScaleRowResult is one gated series in a scale report.
type ScaleRowResult struct {
	Exponent
	// BaselineAlpha is NaN when the committed baseline lacks the series.
	BaselineAlpha float64
	// Limit is the alpha this series must not exceed; NaN when the op
	// is untracked (reported, never failed).
	Limit  float64
	Status string // "ok", "FAIL", or "info"
}

// RatioRowResult is one gated cost ratio in a scale report.
type RatioRowResult struct {
	Level, Op, Against string
	// Lines is the module size the ratio was taken at (the largest
	// generated module in the sweep).
	Lines      int
	Ratio, Max float64
	Status     string // "ok" or "FAIL"
}

// ScaleReport is the outcome of a scale-sweep gate run.
type ScaleReport struct {
	Rows   []ScaleRowResult
	Ratios []RatioRowResult
	Failed bool
}

// CompareScale gates the current sweep's growth exponents against the
// policy and the committed baseline sweep. base may be nil (bootstrap:
// hard caps only).
func CompareScale(cur, base []ScaleRow, pol ScalePolicy) (*ScaleReport, error) {
	exps := GrowthExponents(cur)
	if len(exps) == 0 {
		return nil, fmt.Errorf("current artifact has no gateable series: need randprog-* rows at >=2 module sizes")
	}
	baseAlpha := make(map[seriesKey]float64)
	for _, e := range GrowthExponents(base) {
		baseAlpha[seriesKey{e.Level, e.Op}] = e.Alpha
	}
	rep := &ScaleReport{}
	for _, e := range exps {
		row := ScaleRowResult{Exponent: e, BaselineAlpha: math.NaN(), Limit: math.NaN(), Status: "info"}
		if ba, ok := baseAlpha[seriesKey{e.Level, e.Op}]; ok {
			row.BaselineAlpha = ba
		}
		if cap, tracked := pol.Caps[e.Op]; tracked {
			row.Limit = cap
			if !math.IsNaN(row.BaselineAlpha) && row.BaselineAlpha+pol.Margin > cap {
				row.Limit = row.BaselineAlpha + pol.Margin
			}
			row.Status = "ok"
			if e.Alpha > row.Limit {
				row.Status = "FAIL"
				rep.Failed = true
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	for _, r := range ratioRows(cur, pol) {
		if r.Status == "FAIL" {
			rep.Failed = true
		}
		rep.Ratios = append(rep.Ratios, r)
	}
	return rep, nil
}

// ratioRows evaluates the policy's cost-ratio gates at the largest
// generated module of the current sweep — the size where an absolute
// claim like "10x cheaper than a from-scratch build" matters most and
// constant overheads matter least. Gates whose op or companion is
// absent from the sweep are skipped, so older artifacts without the op
// stay parseable.
func ratioRows(rows []ScaleRow, pol ScalePolicy) []RatioRowResult {
	if len(pol.Ratios) == 0 {
		return nil
	}
	maxLines := 0
	for _, r := range rows {
		if strings.HasPrefix(r.Benchmark, "randprog-") && r.Lines > maxLines {
			maxLines = r.Lines
		}
	}
	if maxLines == 0 {
		return nil
	}
	cell := make(map[seriesKey]float64)
	for _, r := range rows {
		if strings.HasPrefix(r.Benchmark, "randprog-") && r.Lines == maxLines && r.NsPerOp > 0 {
			cell[seriesKey{r.Level, r.Op}] = r.NsPerOp
		}
	}
	var keys []seriesKey
	for k := range cell {
		if _, gated := pol.Ratios[k.op]; gated {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].op != keys[j].op {
			return keys[i].op < keys[j].op
		}
		return keys[i].level < keys[j].level
	})
	var out []RatioRowResult
	for _, k := range keys {
		g := pol.Ratios[k.op]
		against, ok := cell[seriesKey{k.level, g.Against}]
		if !ok {
			continue
		}
		r := RatioRowResult{
			Level: k.level, Op: k.op, Against: g.Against,
			Lines: maxLines, Ratio: cell[k] / against, Max: g.Max,
			Status: "ok",
		}
		if r.Ratio > g.Max {
			r.Status = "FAIL"
		}
		out = append(out, r)
	}
	return out
}

// Fprint renders a scale report.
func (rep *ScaleReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%-4s %-16s %-18s %7s %9s %7s  %s\n",
		"", "Level", "Op", "alpha", "baseline", "limit", "sweep")
	for _, r := range rep.Rows {
		status := r.Status
		if status == "ok" {
			status = "ok  "
		}
		base, limit := "-", "-"
		if !math.IsNaN(r.BaselineAlpha) {
			base = fmt.Sprintf("%.2f", r.BaselineAlpha)
		}
		if !math.IsNaN(r.Limit) {
			limit = fmt.Sprintf("%.2f", r.Limit)
		}
		fmt.Fprintf(w, "%-4s %-16s %-18s %7.2f %9s %7s  %d..%d lines (%.0f -> %.0f ns)\n",
			status, r.Level, r.Op, r.Alpha, base, limit, r.MinLines, r.MaxLines, r.MinNs, r.MaxNs)
	}
	for _, r := range rep.Ratios {
		status := r.Status
		if status == "ok" {
			status = "ok  "
		}
		fmt.Fprintf(w, "%-4s %-16s %-18s %s = %.3f of %s (max %.2f) at %d lines\n",
			status, r.Level, r.Op, "cost", r.Ratio, r.Against, r.Max, r.Lines)
	}
}
