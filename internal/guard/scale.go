package guard

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// The scale gate turns BENCH_scale.json into growth exponents and
// fails when cost grows faster in module size than the per-op policy
// allows. Exponents (the log-log slope of ns/op against module lines,
// fitted over the generated randprog-* sweep points) are
// machine-independent: a slower CI runner shifts every point by a
// constant factor and leaves the slope untouched, so the committed
// baseline stays comparable across hardware — the property an absolute
// ns/op threshold lacks.

// ScaleRow mirrors the BENCH_scale.json schema (tbaa.ScaleRow); guard
// redeclares it so the package stays dependency-free and testable.
type ScaleRow struct {
	Benchmark string  `json:"benchmark"`
	Lines     int     `json:"lines"`
	Level     string  `json:"level"`
	Op        string  `json:"op"`
	NsPerOp   float64 `json:"ns_per_op"`
}

// ParseScale reads a BENCH_scale.json artifact, rejecting empty or
// malformed inputs with a diagnostic naming the label.
func ParseScale(r io.Reader, label string) ([]ScaleRow, error) {
	var rows []ScaleRow
	if err := json.NewDecoder(r).Decode(&rows); err != nil {
		return nil, fmt.Errorf("%s: malformed scale artifact: %w", label, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: empty scale artifact", label)
	}
	return rows, nil
}

// Exponent is a fitted growth exponent for one (level, op) series.
type Exponent struct {
	Level, Op string
	// Alpha is the least-squares slope of log(ns/op) vs log(lines):
	// 0 = flat, 1 = linear, 2 = quadratic.
	Alpha float64
	// Points is the number of sweep sizes fitted (>= 2).
	Points             int
	MinLines, MaxLines int
	// MinNs/MaxNs are the measurements at the smallest and largest size.
	MinNs, MaxNs float64
}

// seriesKey identifies one exponent series.
type seriesKey struct{ level, op string }

// GrowthExponents fits one exponent per (level, op) over the generated
// sweep modules (benchmark names starting "randprog-"); series with
// fewer than two distinct sizes are skipped — one point has no slope.
func GrowthExponents(rows []ScaleRow) []Exponent {
	series := make(map[seriesKey]map[int]float64)
	for _, r := range rows {
		if !strings.HasPrefix(r.Benchmark, "randprog-") || r.Lines <= 0 || r.NsPerOp <= 0 {
			continue
		}
		k := seriesKey{r.Level, r.Op}
		if series[k] == nil {
			series[k] = make(map[int]float64)
		}
		series[k][r.Lines] = r.NsPerOp
	}
	var out []Exponent
	for k, pts := range series {
		if len(pts) < 2 {
			continue
		}
		var xs, ys []float64
		minL, maxL := 0, 0
		for lines := range pts {
			if minL == 0 || lines < minL {
				minL = lines
			}
			if lines > maxL {
				maxL = lines
			}
		}
		var sizes []int
		for lines := range pts {
			sizes = append(sizes, lines)
		}
		sort.Ints(sizes)
		for _, lines := range sizes {
			xs = append(xs, math.Log(float64(lines)))
			ys = append(ys, math.Log(pts[lines]))
		}
		out = append(out, Exponent{
			Level: k.level, Op: k.op,
			Alpha:  slope(xs, ys),
			Points: len(pts), MinLines: minL, MaxLines: maxL,
			MinNs: pts[minL], MaxNs: pts[maxL],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Level < out[j].Level
	})
	return out
}

// slope is the least-squares slope of y against x.
func slope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// ScalePolicy sets the per-op exponent gate: a series fails when its
// alpha exceeds max(Caps[op], baseline alpha + Margin). The hard cap
// states the structural claim (queries ~flat, builds not superlinear);
// the baseline margin catches creep well under the cap. Ops without a
// cap entry are reported but not gated.
type ScalePolicy struct {
	Caps   map[string]float64
	Margin float64
}

// DefaultScalePolicy encodes the repo's scaling claims. Query cost
// must stay ~flat in module size: the partition answers MayAlias in
// O(1), so only cache effects may grow the hot number, and the
// random-pair number may grow sublinearly with working-set misses.
// CountPairs is gated per reference (the sweep output itself grows
// with the module). Build stages — frontend, partition+flow analyzer
// build, SCC mod-ref summaries — must stay below frank quadratic,
// with the margin holding them near the committed curve.
func DefaultScalePolicy() ScalePolicy {
	return ScalePolicy{
		Caps: map[string]float64{
			"MayAliasHot":      0.35,
			"MayAliasRand":     0.90,
			"CountPairsPerRef": 0.80,
			"Compile":          1.45,
			"AnalyzerBuild":    1.60,
			"SummaryCHA":       1.60,
			"SummaryRTA":       1.60,
		},
		Margin: 0.25,
	}
}

// ScaleRowResult is one gated series in a scale report.
type ScaleRowResult struct {
	Exponent
	// BaselineAlpha is NaN when the committed baseline lacks the series.
	BaselineAlpha float64
	// Limit is the alpha this series must not exceed; NaN when the op
	// is untracked (reported, never failed).
	Limit  float64
	Status string // "ok", "FAIL", or "info"
}

// ScaleReport is the outcome of a scale-sweep gate run.
type ScaleReport struct {
	Rows   []ScaleRowResult
	Failed bool
}

// CompareScale gates the current sweep's growth exponents against the
// policy and the committed baseline sweep. base may be nil (bootstrap:
// hard caps only).
func CompareScale(cur, base []ScaleRow, pol ScalePolicy) (*ScaleReport, error) {
	exps := GrowthExponents(cur)
	if len(exps) == 0 {
		return nil, fmt.Errorf("current artifact has no gateable series: need randprog-* rows at >=2 module sizes")
	}
	baseAlpha := make(map[seriesKey]float64)
	for _, e := range GrowthExponents(base) {
		baseAlpha[seriesKey{e.Level, e.Op}] = e.Alpha
	}
	rep := &ScaleReport{}
	for _, e := range exps {
		row := ScaleRowResult{Exponent: e, BaselineAlpha: math.NaN(), Limit: math.NaN(), Status: "info"}
		if ba, ok := baseAlpha[seriesKey{e.Level, e.Op}]; ok {
			row.BaselineAlpha = ba
		}
		if cap, tracked := pol.Caps[e.Op]; tracked {
			row.Limit = cap
			if !math.IsNaN(row.BaselineAlpha) && row.BaselineAlpha+pol.Margin > cap {
				row.Limit = row.BaselineAlpha + pol.Margin
			}
			row.Status = "ok"
			if e.Alpha > row.Limit {
				row.Status = "FAIL"
				rep.Failed = true
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Fprint renders a scale report.
func (rep *ScaleReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%-4s %-16s %-18s %7s %9s %7s  %s\n",
		"", "Level", "Op", "alpha", "baseline", "limit", "sweep")
	for _, r := range rep.Rows {
		status := r.Status
		if status == "ok" {
			status = "ok  "
		}
		base, limit := "-", "-"
		if !math.IsNaN(r.BaselineAlpha) {
			base = fmt.Sprintf("%.2f", r.BaselineAlpha)
		}
		if !math.IsNaN(r.Limit) {
			limit = fmt.Sprintf("%.2f", r.Limit)
		}
		fmt.Fprintf(w, "%-4s %-16s %-18s %7.2f %9s %7s  %d..%d lines (%.0f -> %.0f ns)\n",
			status, r.Level, r.Op, r.Alpha, base, limit, r.MinLines, r.MaxLines, r.MinNs, r.MaxNs)
	}
}
