// Package guard implements the comparison logic behind cmd/benchguard:
// the classic `go test -bench` regression gate (bench-perf CI job) and
// the scale-sweep growth-exponent gate (bench-scale CI job). Keeping
// the logic here, pure and file-free, makes both gates unit-testable;
// the command is a thin CLI that turns a Report into an exit code.
package guard

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseBench extracts ns/op samples per benchmark name from `go test
// -bench` output, stripping the -N GOMAXPROCS suffix. An input with no
// benchmark lines is an error: a gate that parses nothing must not
// silently pass.
func ParseBench(r io.Reader, label string) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("%s: bad ns/op in %q", label, sc.Text())
				}
				out[name] = append(out[name], v)
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", label, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found (is this `go test -bench` output?)", label)
	}
	return out, nil
}

// BenchRow is one gated benchmark in a comparison report.
type BenchRow struct {
	Name       string
	BaselineNs float64
	CurrentNs  float64
	Delta      float64 // (current-baseline)/baseline; 0 when not comparable
	// Status is "ok", "FAIL", "missing" (in baseline, absent from the
	// current run — also a failure), or "new" (no baseline; a note).
	Status string
}

// BenchReport is the outcome of a classic benchmark comparison.
type BenchReport struct {
	Rows      []BenchRow
	Threshold float64
	Failed    bool
}

// CompareBench gates current against baseline: every baseline
// benchmark matching one of the name prefixes must be present and
// within threshold (0.20 = +20% ns/op). Repeated samples of one
// benchmark compare by minimum — the noise-robust estimator, since
// interference only ever adds time.
func CompareBench(base, cur map[string][]float64, prefixes []string, threshold float64) (*BenchReport, error) {
	tracked := func(name string) bool {
		for _, p := range prefixes {
			if p = strings.TrimSpace(p); p != "" && strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	var names []string
	for name := range base {
		if tracked(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no tracked benchmarks in baseline (match %q)", strings.Join(prefixes, ","))
	}
	rep := &BenchReport{Threshold: threshold}
	for _, name := range names {
		b := minOf(base[name])
		row := BenchRow{Name: name, BaselineNs: b}
		if c, ok := cur[name]; ok {
			row.CurrentNs = minOf(c)
			row.Delta = (row.CurrentNs - b) / b
			row.Status = "ok"
			if row.Delta > threshold {
				row.Status = "FAIL"
				rep.Failed = true
			}
		} else {
			row.Status = "missing"
			rep.Failed = true
		}
		rep.Rows = append(rep.Rows, row)
	}
	var fresh []string
	for name := range cur {
		if tracked(name) {
			if _, ok := base[name]; !ok {
				fresh = append(fresh, name)
			}
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		rep.Rows = append(rep.Rows, BenchRow{Name: name, CurrentNs: minOf(cur[name]), Status: "new"})
	}
	return rep, nil
}

// Fprint renders a classic comparison report.
func (rep *BenchReport) Fprint(w io.Writer) {
	for _, r := range rep.Rows {
		switch r.Status {
		case "missing":
			fmt.Fprintf(w, "FAIL %-44s missing from current run\n", r.Name)
		case "new":
			fmt.Fprintf(w, "note %-44s new benchmark (no baseline)\n", r.Name)
		default:
			status := "ok  "
			if r.Status == "FAIL" {
				status = "FAIL"
			}
			fmt.Fprintf(w, "%s %-44s %10.1f ns/op -> %10.1f ns/op  (%+.1f%%, limit +%.0f%%)\n",
				status, r.Name, r.BaselineNs, r.CurrentNs, 100*r.Delta, 100*rep.Threshold)
		}
	}
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
