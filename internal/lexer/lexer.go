// Package lexer implements the MiniM3 scanner.
//
// MiniM3 uses Modula-3 lexical conventions: case-sensitive upper-case
// keywords, (* ... *) comments that nest, character literals in single
// quotes and text literals in double quotes.
package lexer

import (
	"fmt"
	"strings"

	"tbaa/internal/token"
)

// Error is a lexical error at a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans an input buffer into tokens.
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
	errs []*Error
}

// New returns a lexer over src; file is used in positions.
func New(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) errorf(p token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: p, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isLetter(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// skipSpace consumes whitespace and comments. Comments nest, as in Modula-3.
func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '(' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			depth := 1
			for depth > 0 {
				if l.off >= len(l.src) {
					l.errorf(start, "unterminated comment")
					return
				}
				if l.peek() == '(' && l.peek2() == '*' {
					l.advance()
					l.advance()
					depth++
				} else if l.peek() == '*' && l.peek2() == ')' {
					l.advance()
					l.advance()
					depth--
				} else {
					l.advance()
				}
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpace()
	p := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: p}
	}
	c := l.peek()
	switch {
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.off]
		kind := token.Lookup(lit)
		if kind == token.IDENT {
			return token.Token{Kind: token.IDENT, Lit: lit, Pos: p}
		}
		return token.Token{Kind: kind, Lit: lit, Pos: p}
	case isDigit(c):
		start := l.off
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		return token.Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: p}
	case c == '\'':
		return l.charLit(p)
	case c == '"':
		return l.stringLit(p)
	}
	l.advance()
	mk := func(k token.Kind) token.Token { return token.Token{Kind: k, Pos: p} }
	switch c {
	case '+':
		return mk(token.PLUS)
	case '-':
		return mk(token.MINUS)
	case '*':
		return mk(token.STAR)
	case '&':
		return mk(token.AMP)
	case '=':
		return mk(token.EQ)
	case '#':
		return mk(token.NEQ)
	case '^':
		return mk(token.CARET)
	case ',':
		return mk(token.COMMA)
	case ';':
		return mk(token.SEMICOLON)
	case '(':
		return mk(token.LPAREN)
	case ')':
		return mk(token.RPAREN)
	case '[':
		return mk(token.LBRACK)
	case ']':
		return mk(token.RBRACK)
	case '{':
		return mk(token.LBRACE)
	case '}':
		return mk(token.RBRACE)
	case '<':
		if l.peek() == '=' {
			l.advance()
			return mk(token.LE)
		}
		return mk(token.LT)
	case '>':
		if l.peek() == '=' {
			l.advance()
			return mk(token.GE)
		}
		return mk(token.GT)
	case ':':
		if l.peek() == '=' {
			l.advance()
			return mk(token.ASSIGN)
		}
		return mk(token.COLON)
	case '.':
		if l.peek() == '.' {
			l.advance()
			return mk(token.DOTDOT)
		}
		return mk(token.DOT)
	}
	l.errorf(p, "illegal character %q", string(c))
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: p}
}

func (l *Lexer) charLit(p token.Pos) token.Token {
	l.advance() // opening quote
	var b strings.Builder
	if l.off >= len(l.src) {
		l.errorf(p, "unterminated character literal")
		return token.Token{Kind: token.ILLEGAL, Pos: p}
	}
	c := l.advance()
	if c == '\\' {
		if l.off >= len(l.src) {
			l.errorf(p, "unterminated character literal")
			return token.Token{Kind: token.ILLEGAL, Pos: p}
		}
		b.WriteByte(unescape(l.advance()))
	} else {
		b.WriteByte(c)
	}
	if l.off >= len(l.src) || l.peek() != '\'' {
		l.errorf(p, "unterminated character literal")
		return token.Token{Kind: token.ILLEGAL, Pos: p, Lit: b.String()}
	}
	l.advance() // closing quote
	return token.Token{Kind: token.CHARLIT, Lit: b.String(), Pos: p}
}

func (l *Lexer) stringLit(p token.Pos) token.Token {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.off >= len(l.src) || l.peek() == '\n' {
			l.errorf(p, "unterminated text literal")
			return token.Token{Kind: token.ILLEGAL, Pos: p, Lit: b.String()}
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\\' && l.off < len(l.src) {
			b.WriteByte(unescape(l.advance()))
			continue
		}
		b.WriteByte(c)
	}
	return token.Token{Kind: token.STRING, Lit: b.String(), Pos: p}
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	default:
		return c
	}
}

// All scans the entire input and returns every token up to and including EOF.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}
