package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"tbaa/internal/token"
)

func kinds(src string) []token.Kind {
	l := New("test", src)
	var ks []token.Kind
	for {
		t := l.Next()
		ks = append(ks, t.Kind)
		if t.Kind == token.EOF {
			return ks
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	l := New("t", "MODULE Foo BEGIN END while While")
	want := []struct {
		k   token.Kind
		lit string
	}{
		{token.MODULE, "MODULE"}, {token.IDENT, "Foo"},
		{token.BEGIN, "BEGIN"}, {token.END, "END"},
		{token.IDENT, "while"}, {token.IDENT, "While"},
		{token.EOF, ""},
	}
	for i, w := range want {
		tok := l.Next()
		if tok.Kind != w.k {
			t.Fatalf("token %d: got %s want %s", i, tok.Kind, w.k)
		}
		if w.k == token.IDENT && tok.Lit != w.lit {
			t.Fatalf("token %d: got lit %q want %q", i, tok.Lit, w.lit)
		}
	}
}

func TestOperators(t *testing.T) {
	got := kinds(":= : = # <= >= < > .. . ^ & ( ) [ ] { } + - * , ;")
	want := []token.Kind{
		token.ASSIGN, token.COLON, token.EQ, token.NEQ, token.LE, token.GE,
		token.LT, token.GT, token.DOTDOT, token.DOT, token.CARET, token.AMP,
		token.LPAREN, token.RPAREN, token.LBRACK, token.RBRACK,
		token.LBRACE, token.RBRACE, token.PLUS, token.MINUS, token.STAR,
		token.COMMA, token.SEMICOLON, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens want %d: %v", len(got), len(want), got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s want %s", i, got[i], want[i])
		}
	}
}

func TestNestedComments(t *testing.T) {
	got := kinds("a (* outer (* inner *) still out *) b")
	want := []token.Kind{token.IDENT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestUnterminatedComment(t *testing.T) {
	l := New("t", "a (* never closed")
	for l.Next().Kind != token.EOF {
	}
	if len(l.Errors()) == 0 {
		t.Fatal("expected an error for unterminated comment")
	}
}

func TestCharAndTextLiterals(t *testing.T) {
	l := New("t", `'a' '\n' "hello\tworld" ""`)
	c1 := l.Next()
	if c1.Kind != token.CHARLIT || c1.Lit != "a" {
		t.Fatalf("got %v", c1)
	}
	c2 := l.Next()
	if c2.Kind != token.CHARLIT || c2.Lit != "\n" {
		t.Fatalf("got %v", c2)
	}
	s1 := l.Next()
	if s1.Kind != token.STRING || s1.Lit != "hello\tworld" {
		t.Fatalf("got %v %q", s1, s1.Lit)
	}
	s2 := l.Next()
	if s2.Kind != token.STRING || s2.Lit != "" {
		t.Fatalf("got %v", s2)
	}
}

func TestUnterminatedString(t *testing.T) {
	l := New("t", "\"abc\ndef")
	l.Next()
	if len(l.Errors()) == 0 {
		t.Fatal("expected error for string crossing newline")
	}
}

func TestIntegers(t *testing.T) {
	l := New("t", "0 42 123456789")
	for _, want := range []string{"0", "42", "123456789"} {
		tok := l.Next()
		if tok.Kind != token.INT || tok.Lit != want {
			t.Fatalf("got %v want INT(%s)", tok, want)
		}
	}
}

func TestPositions(t *testing.T) {
	l := New("f.m3", "a\n  bc")
	t1 := l.Next()
	if t1.Pos.Line != 1 || t1.Pos.Col != 1 {
		t.Errorf("a at %v", t1.Pos)
	}
	t2 := l.Next()
	if t2.Pos.Line != 2 || t2.Pos.Col != 3 {
		t.Errorf("bc at %v", t2.Pos)
	}
	if t2.Pos.File != "f.m3" {
		t.Errorf("file %q", t2.Pos.File)
	}
}

func TestIllegalChar(t *testing.T) {
	l := New("t", "a $ b")
	var sawIllegal bool
	for {
		tok := l.Next()
		if tok.Kind == token.ILLEGAL {
			sawIllegal = true
		}
		if tok.Kind == token.EOF {
			break
		}
	}
	if !sawIllegal || len(l.Errors()) == 0 {
		t.Fatal("expected ILLEGAL token and error")
	}
}

// TestLexerTotality checks the lexer terminates and never panics on
// arbitrary input — a basic robustness property.
func TestLexerTotality(t *testing.T) {
	f := func(src string) bool {
		l := New("q", src)
		for i := 0; ; i++ {
			tok := l.Next()
			if tok.Kind == token.EOF {
				return true
			}
			if i > len(src)+10 {
				return false // not making progress
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestIdentRoundTrip: any identifier-shaped string lexes to one token
// with the same spelling (keywords excluded).
func TestIdentRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		name := "v" + strings.Repeat("x", int(n%20))
		l := New("q", name)
		tok := l.Next()
		return tok.Kind == token.IDENT && tok.Lit == name && l.Next().Kind == token.EOF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
