package token_test

import (
	"testing"

	"tbaa/internal/token"
)

func TestLookupKeywords(t *testing.T) {
	for _, kw := range []string{"MODULE", "BEGIN", "END", "OBJECT", "METHODS",
		"OVERRIDES", "BRANDED", "VAR", "PROCEDURE", "WHILE", "REPEAT", "UNTIL",
		"LOOP", "EXIT", "WITH", "DIV", "MOD", "AND", "OR", "NOT", "NIL",
		"TRUE", "FALSE", "NEW", "ARRAY", "OF", "REF", "RECORD", "READONLY"} {
		k := token.Lookup(kw)
		if k == token.IDENT {
			t.Errorf("%s should be a keyword", kw)
		}
		if !k.IsKeyword() {
			t.Errorf("%s kind should report IsKeyword", kw)
		}
		if k.String() != kw {
			t.Errorf("keyword %s renders as %s", kw, k)
		}
	}
}

func TestLookupIdentifiers(t *testing.T) {
	for _, id := range []string{"module", "Begin", "x", "T0", "putInt", "_tmp"} {
		if token.Lookup(id) != token.IDENT {
			t.Errorf("%s should be an identifier", id)
		}
	}
}

func TestNonKeywordKinds(t *testing.T) {
	for _, k := range []token.Kind{token.IDENT, token.INT, token.PLUS,
		token.ASSIGN, token.EOF, token.ILLEGAL} {
		if k.IsKeyword() {
			t.Errorf("%s should not be a keyword", k)
		}
	}
}

func TestPosString(t *testing.T) {
	p := token.Pos{File: "a.m3", Line: 3, Col: 7}
	if p.String() != "a.m3:3:7" {
		t.Errorf("pos rendering: %s", p)
	}
	if !p.IsValid() {
		t.Error("positive line is valid")
	}
	anon := token.Pos{Line: 1, Col: 1}
	if anon.String() != "1:1" {
		t.Errorf("anonymous pos: %s", anon)
	}
	var zero token.Pos
	if zero.IsValid() {
		t.Error("zero pos is invalid")
	}
}

func TestTokenString(t *testing.T) {
	tok := token.Token{Kind: token.IDENT, Lit: "foo"}
	if tok.String() != "IDENT(foo)" {
		t.Errorf("token rendering: %s", tok)
	}
	kw := token.Token{Kind: token.MODULE}
	if kw.String() != "MODULE" {
		t.Errorf("keyword token rendering: %s", kw)
	}
}
