// Package token defines the lexical tokens of MiniM3, the Modula-3 subset
// compiled by this repository, together with source positions.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// The token kinds. Keyword kinds follow Modula-3 spelling.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT   // Foo
	INT     // 123
	CHARLIT // 'a'
	STRING  // "abc"

	// Operators and delimiters.
	PLUS      // +
	MINUS     // -
	STAR      // *
	AMP       // & (text concatenation; unused by most programs)
	ASSIGN    // :=
	EQ        // =
	NEQ       // #
	LT        // <
	GT        // >
	LE        // <=
	GE        // >=
	LPAREN    // (
	RPAREN    // )
	LBRACK    // [
	RBRACK    // ]
	LBRACE    // {
	RBRACE    // }
	CARET     // ^
	DOT       // .
	COMMA     // ,
	SEMICOLON // ;
	COLON     // :
	DOTDOT    // ..

	// Keywords.
	kwStart
	AND
	ARRAY
	BEGIN
	BRANDED
	BY
	CONST
	DIV
	DO
	ELSE
	ELSIF
	END
	EXIT
	FALSE
	FOR
	IF
	LOOP
	METHODS
	MOD
	MODULE
	NEW
	NIL
	NOT
	OBJECT
	OF
	OR
	OVERRIDES
	PROCEDURE
	READONLY
	RECORD
	REF
	REPEAT
	RETURN
	THEN
	TO
	TRUE
	TYPE
	UNTIL
	VAR
	WHILE
	WITH
	kwEnd
)

var names = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "IDENT", INT: "INT",
	CHARLIT: "CHARLIT", STRING: "STRING",
	PLUS: "+", MINUS: "-", STAR: "*", AMP: "&", ASSIGN: ":=",
	EQ: "=", NEQ: "#", LT: "<", GT: ">", LE: "<=", GE: ">=",
	LPAREN: "(", RPAREN: ")", LBRACK: "[", RBRACK: "]",
	LBRACE: "{", RBRACE: "}", CARET: "^", DOT: ".", COMMA: ",",
	SEMICOLON: ";", COLON: ":", DOTDOT: "..",
	AND: "AND", ARRAY: "ARRAY", BEGIN: "BEGIN", BRANDED: "BRANDED",
	BY: "BY", CONST: "CONST", DIV: "DIV", DO: "DO", ELSE: "ELSE",
	ELSIF: "ELSIF", END: "END", EXIT: "EXIT", FALSE: "FALSE", FOR: "FOR",
	IF: "IF", LOOP: "LOOP", METHODS: "METHODS", MOD: "MOD",
	MODULE: "MODULE", NEW: "NEW", NIL: "NIL", NOT: "NOT",
	OBJECT: "OBJECT", OF: "OF", OR: "OR", OVERRIDES: "OVERRIDES",
	PROCEDURE: "PROCEDURE", READONLY: "READONLY", RECORD: "RECORD",
	REF: "REF", REPEAT: "REPEAT", RETURN: "RETURN", THEN: "THEN",
	TO: "TO", TRUE: "TRUE", TYPE: "TYPE", UNTIL: "UNTIL", VAR: "VAR",
	WHILE: "WHILE", WITH: "WITH",
}

// String returns the human-readable spelling of the kind.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > kwStart && k < kwEnd }

var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := kwStart + 1; k < kwEnd; k++ {
		m[names[k]] = k
	}
	return m
}()

// Lookup maps an identifier spelling to its keyword kind, or IDENT.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Pos is a source position: 1-based line and column plus the file name.
type Pos struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT, INT, CHARLIT, STRING
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, CHARLIT, STRING:
		return fmt.Sprintf("%s(%s)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}
