package opt_test

import (
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/driver"
	"tbaa/internal/interp"
	"tbaa/internal/ir"
	"tbaa/internal/modref"
	"tbaa/internal/opt"
)

// runPlain executes a program without optimization.
func runPlain(t *testing.T, src string) (string, interp.Stats) {
	t.Helper()
	out, stats, err := driver.Run("test.m3", src)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out, stats
}

// runRLE compiles, applies RLE under the given level, executes, and
// returns output, stats, and the static removal counts.
func runRLE(t *testing.T, src string, level alias.Level) (string, interp.Stats, opt.RLEResult) {
	t.Helper()
	prog, _, err := driver.Compile("test.m3", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	o := alias.New(prog, alias.Options{Level: level})
	mr := modref.Compute(prog)
	res := opt.RLE(prog, o, mr)
	in := interp.New(prog)
	out, err := in.Run()
	if err != nil {
		t.Fatalf("run after RLE: %v", err)
	}
	return out, in.Stats(), res
}

// checkSame verifies RLE preserves output and reduces heap loads.
func checkSame(t *testing.T, src string, level alias.Level, wantFewerLoads bool) opt.RLEResult {
	t.Helper()
	out1, stats1 := runPlain(t, src)
	out2, stats2, res := runRLE(t, src, level)
	if out1 != out2 {
		t.Fatalf("RLE changed output:\n--- before\n%s\n--- after\n%s", out1, out2)
	}
	if wantFewerLoads && stats2.HeapLoads >= stats1.HeapLoads {
		t.Errorf("RLE did not reduce heap loads: before=%d after=%d (removed %d static)",
			stats1.HeapLoads, stats2.HeapLoads, res.Removed())
	}
	return res
}

// Figure 6 of the paper: loop-invariant load a.b^ hoisted out of a loop.
const fig6 = `
MODULE Fig6;
TYPE
  Inner = REF INTEGER;
  Outer = OBJECT b: Inner; END;
  A = ARRAY OF INTEGER;
VAR a: Outer; arr: A; i, x: INTEGER;
BEGIN
  a := NEW(Outer);
  a.b := NEW(Inner);
  a.b^ := 7;
  arr := NEW(A, 100);
  FOR i := 0 TO 99 DO
    arr[i] := a.b^;
  END;
  x := 0;
  FOR i := 0 TO 99 DO
    x := x + arr[i];
  END;
  PutInt(x); PutLn();
END Fig6.
`

func TestLoopInvariantHoisting(t *testing.T) {
	res := checkSame(t, fig6, alias.LevelSMFieldTypeRefs, true)
	if res.Hoisted < 2 {
		t.Errorf("expected at least 2 hoisted loads (a.b and a.b^), got %d", res.Hoisted)
	}
}

// Figure 7 of the paper: fully redundant load eliminated by CSE.
const fig7 = `
MODULE Fig7;
TYPE
  Inner = REF INTEGER;
  Outer = OBJECT b: Inner; END;
VAR a: Outer; x, y: INTEGER; cond: BOOLEAN;
BEGIN
  a := NEW(Outer);
  a.b := NEW(Inner);
  a.b^ := 3;
  cond := TRUE;
  IF cond THEN
    x := a.b^;
  ELSE
    x := a.b^ + 1;
  END;
  y := a.b^; (* redundant: available on both paths *)
  PutInt(x + y); PutLn();
END Fig7.
`

func TestRedundantLoadCSE(t *testing.T) {
	res := checkSame(t, fig7, alias.LevelSMFieldTypeRefs, true)
	if res.Eliminated < 1 {
		t.Errorf("expected CSE to eliminate the post-IF load, got %d", res.Eliminated)
	}
}

func TestStoreKillsAliasedLoad(t *testing.T) {
	// A store to t.f must kill availability of s.f when t and s may
	// alias, but not under an analysis that proves independence.
	src := `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
VAR t, s: T; x, y: INTEGER;
BEGIN
  t := NEW(T);
  s := t; (* t and s DO alias *)
  t.f := 1;
  x := s.f;
  t.f := 99;
  y := s.f;
  PutInt(x + y); PutLn();
END M.
`
	out1, _ := runPlain(t, src)
	out2, _, _ := runRLE(t, src, alias.LevelSMFieldTypeRefs)
	if out1 != out2 || out1 != "100\n" {
		t.Fatalf("aliased store handling broken: before=%q after=%q", out1, out2)
	}
}

func TestIndependentStoreDoesNotKill(t *testing.T) {
	// Stores to an unrelated type must not kill availability under
	// FieldTypeDecl (different fields).
	src := `
MODULE M;
TYPE T = OBJECT f, g: INTEGER; END;
VAR t: T; x, y, i: INTEGER;
BEGIN
  t := NEW(T);
  t.f := 5;
  x := 0;
  FOR i := 1 TO 10 DO
    t.g := i;      (* different field: must not kill t.f *)
    x := x + t.f;
  END;
  PutInt(x); PutLn();
END M.
`
	_, stats1 := runPlain(t, src)
	_, stats2, res := runRLE(t, src, alias.LevelFieldTypeDecl)
	if res.Removed() == 0 {
		t.Error("FieldTypeDecl should enable removing the t.f loop load")
	}
	if stats2.HeapLoads >= stats1.HeapLoads {
		t.Errorf("loads not reduced: %d -> %d", stats1.HeapLoads, stats2.HeapLoads)
	}
	// Under TypeDecl the store t.g := i kills t.f (same declared types,
	// fields invisible), so the in-loop load survives.
	_, _, resTD := runRLE(t, src, alias.LevelTypeDecl)
	if resTD.Removed() > res.Removed() {
		t.Errorf("TypeDecl removed more loads (%d) than FieldTypeDecl (%d)",
			resTD.Removed(), res.Removed())
	}
}

func TestCallKillsThroughModRef(t *testing.T) {
	src := `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
VAR t: T;
PROCEDURE Clobber() =
BEGIN
  t.f := t.f + 1;
END Clobber;
PROCEDURE Pure(x: INTEGER): INTEGER =
BEGIN
  RETURN x * 2;
END Pure;
VAR a, b, c: INTEGER;
BEGIN
  t := NEW(T);
  t.f := 10;
  a := t.f;
  Clobber();        (* must kill t.f *)
  b := t.f;
  c := Pure(b);     (* must NOT kill t.f *)
  c := c + t.f;
  PutInt(a); PutInt(b); PutInt(c); PutLn();
END M.
`
	out1, _ := runPlain(t, src)
	out2, _, _ := runRLE(t, src, alias.LevelSMFieldTypeRefs)
	if out1 != out2 {
		t.Fatalf("mod-ref kill broken: before=%q after=%q", out1, out2)
	}
	if out1 != "101133\n" {
		t.Fatalf("unexpected program output %q", out1)
	}
}

func TestByRefWriteKills(t *testing.T) {
	src := `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
PROCEDURE Set(VAR x: INTEGER; v: INTEGER) =
BEGIN
  x := v;
END Set;
VAR t: T; a, b: INTEGER;
BEGIN
  t := NEW(T);
  t.f := 1;
  a := t.f;
  Set(t.f, 42);  (* writes through the taken address *)
  b := t.f;
  PutInt(a); PutInt(b); PutLn();
END M.
`
	out1, _ := runPlain(t, src)
	out2, _, _ := runRLE(t, src, alias.LevelSMFieldTypeRefs)
	if out1 != out2 || out1 != "142\n" {
		t.Fatalf("by-ref kill broken: before=%q after=%q", out1, out2)
	}
}

func TestZeroTripLoopSafe(t *testing.T) {
	// Hoisted loads are speculative: a NIL pointer in a loop that never
	// runs must not trap.
	src := `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
VAR t: T; i, x: INTEGER; n: INTEGER;
BEGIN
  t := NIL;
  n := 0;
  x := 0;
  FOR i := 1 TO n DO
    x := x + t.f;
  END;
  PutInt(x); PutLn();
END M.
`
	out1, _ := runPlain(t, src)
	out2, _, _ := runRLE(t, src, alias.LevelSMFieldTypeRefs)
	if out1 != out2 {
		t.Fatalf("zero-trip loop broken: before=%q after=%q", out1, out2)
	}
}

func TestDopeLoadsRemainInVaryingSubscriptLoops(t *testing.T) {
	// The paper's "Encapsulation" category: with a varying subscript the
	// element load is genuinely needed, and the implicit dope-vector
	// loads stay in the loop (RLE operates on source-level expressions).
	src := `
MODULE M;
TYPE A = ARRAY OF INTEGER;
VAR a: A; i, x: INTEGER;
BEGIN
  a := NEW(A, 50);
  FOR i := 0 TO 49 DO a[i] := i; END;
  x := 0;
  FOR i := 0 TO 49 DO x := x + a[i]; END;
  PutInt(x); PutLn();
END M.
`
	_, stats2, _ := runRLE(t, src, alias.LevelSMFieldTypeRefs)
	if stats2.DopeLoads < 100 {
		t.Errorf("dope loads should remain in varying-subscript loops, got %d", stats2.DopeLoads)
	}
}

func TestAllLevelsPreserveSemantics(t *testing.T) {
	srcs := []string{fig6, fig7}
	for _, src := range srcs {
		for _, lvl := range []alias.Level{alias.LevelTypeDecl, alias.LevelFieldTypeDecl, alias.LevelSMFieldTypeRefs} {
			out1, _ := runPlain(t, src)
			out2, _, _ := runRLE(t, src, lvl)
			if out1 != out2 {
				t.Errorf("level %v changed output", lvl)
			}
		}
	}
}

func TestMethodCallKills(t *testing.T) {
	src := `
MODULE M;
TYPE
  Box = OBJECT v: INTEGER; METHODS poke() := Poke; nop() := Nop; END;
PROCEDURE Poke(self: Box) = BEGIN self.v := self.v + 1; END Poke;
PROCEDURE Nop(self: Box) = BEGIN END Nop;
VAR b: Box; x, y, z: INTEGER;
BEGIN
  b := NEW(Box);
  b.v := 5;
  x := b.v;
  b.poke();    (* kills b.v *)
  y := b.v;
  b.nop();     (* no effect; load may be reused *)
  z := b.v;
  PutInt(x); PutInt(y); PutInt(z); PutLn();
END M.
`
	out1, _ := runPlain(t, src)
	out2, _, res := runRLE(t, src, alias.LevelSMFieldTypeRefs)
	if out1 != out2 || out1 != "566\n" {
		t.Fatalf("method kill broken: before=%q after=%q", out1, out2)
	}
	if res.Eliminated < 1 {
		t.Errorf("load after nop() should be eliminated, removed=%d", res.Eliminated)
	}
}

func TestUpperBoundOracleRemovesMore(t *testing.T) {
	// AssumeNone (perfect-analysis stand-in) must remove at least as many
	// loads as any real analysis.
	src := fig7
	prog1, _, err := driver.Compile("a.m3", src)
	if err != nil {
		t.Fatal(err)
	}
	mr1 := modref.Compute(prog1)
	resSM := opt.RLE(prog1, alias.New(prog1, alias.Options{Level: alias.LevelSMFieldTypeRefs}), mr1)
	prog2, _, err := driver.Compile("b.m3", src)
	if err != nil {
		t.Fatal(err)
	}
	mr2 := modref.Compute(prog2)
	resNone := opt.RLE(prog2, alias.AssumeNone{}, mr2)
	if resNone.Removed() < resSM.Removed() {
		t.Errorf("upper bound removed %d < TBAA removed %d", resNone.Removed(), resSM.Removed())
	}
}

func TestRLEIdempotent(t *testing.T) {
	prog, _, err := driver.Compile("x.m3", fig6)
	if err != nil {
		t.Fatal(err)
	}
	o := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
	mr := modref.Compute(prog)
	opt.RLE(prog, o, mr)
	res2 := opt.RLE(prog, o, mr)
	if res2.Eliminated > 0 {
		t.Errorf("second RLE pass still eliminated %d loads", res2.Eliminated)
	}
	in := interp.New(prog)
	out, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out != "700\n" {
		t.Errorf("output after double RLE: %q", out)
	}
}

func TestModRefDispatchBounded(t *testing.T) {
	prog, _, err := driver.Compile("d.m3", `
MODULE M;
TYPE
  Base = OBJECT METHODS m() := BaseM; END;
  Kid = Base OBJECT OVERRIDES m := KidM; END;
  Other = OBJECT METHODS m() := OtherM; END;
PROCEDURE BaseM(self: Base) = BEGIN END BaseM;
PROCEDURE KidM(self: Kid) = BEGIN END KidM;
PROCEDURE OtherM(self: Other) = BEGIN END OtherM;
VAR b: Base; o: Other;
BEGIN
  b := NEW(Kid);
  b.m();
  o := NEW(Other);
  o.m();
END M.
`)
	if err != nil {
		t.Fatal(err)
	}
	mr := modref.Compute(prog)
	var dispatches [][]*ir.Proc
	for _, p := range prog.Procs {
		for _, blk := range p.Blocks {
			for i := range blk.Instrs {
				if blk.Instrs[i].Op == ir.OpMethodCall {
					dispatches = append(dispatches, mr.Dispatch(&blk.Instrs[i]))
				}
			}
		}
	}
	if len(dispatches) != 2 {
		t.Fatalf("expected 2 method calls, got %d", len(dispatches))
	}
	// b.m() may hit BaseM or KidM but never OtherM.
	if len(dispatches[0]) != 2 {
		t.Errorf("b.m() dispatch set: %v", names(dispatches[0]))
	}
	for _, p := range dispatches[0] {
		if p.Name == "OtherM" {
			t.Error("b.m() must not dispatch to OtherM")
		}
	}
	if len(dispatches[1]) != 1 || dispatches[1][0].Name != "OtherM" {
		t.Errorf("o.m() dispatch set: %v", names(dispatches[1]))
	}
}

func names(ps []*ir.Proc) []string {
	var out []string
	for _, p := range ps {
		out = append(out, p.Name)
	}
	return out
}
