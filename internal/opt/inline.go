package opt

import (
	"fmt"

	"tbaa/internal/ir"
)

// InlineBudget is the maximum number of instructions a callee may have to
// be inlined.
const InlineBudget = 24

// Inline expands small direct calls in place (one pass over every
// procedure). Method calls are not inlined — run Devirtualize first.
// It returns the number of call sites expanded.
func Inline(prog *ir.Program) int {
	count := 0
	for _, p := range prog.Procs {
		count += inlineProc(prog, p)
	}
	return count
}

func procSize(p *ir.Proc) int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// callsSelf reports whether p contains a direct call to itself.
func callsSelf(p *ir.Proc) bool {
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpCall && b.Instrs[i].Callee == p.Name {
				return true
			}
		}
	}
	return false
}

func inlineProc(prog *ir.Program, caller *ir.Proc) int {
	count := 0
	// Iterate over a snapshot of blocks: inlining appends new ones.
	for bi := 0; bi < len(caller.Blocks); bi++ {
		b := caller.Blocks[bi]
		for ii := 0; ii < len(b.Instrs); ii++ {
			in := &b.Instrs[ii]
			if in.Op != ir.OpCall {
				continue
			}
			callee := prog.ProcByName[in.Callee]
			if callee == nil || callee == caller || callee == prog.Main {
				continue
			}
			if procSize(callee) > InlineBudget || callsSelf(callee) {
				continue
			}
			expandCall(prog, caller, b, ii, callee)
			count++
			// The call instruction was replaced by a jump terminating
			// this block; continue with the next block.
			break
		}
	}
	caller.ComputeCFGEdges()
	if count > 0 {
		prog.MarkMutated(caller)
	}
	return count
}

// expandCall splices a clone of callee into caller at block b, index ii.
func expandCall(prog *ir.Program, caller *ir.Proc, b *ir.Block, ii int, callee *ir.Proc) {
	call := b.Instrs[ii]
	// Continuation block receives the instructions after the call.
	cont := &ir.Block{ID: len(caller.Blocks), Name: "inl.cont"}
	caller.Blocks = append(caller.Blocks, cont)
	cont.Instrs = append(cont.Instrs, b.Instrs[ii+1:]...)

	// Clone callee variables into the caller frame.
	varMap := make(map[*ir.Var]*ir.Var)
	cloneVar := func(v *ir.Var) *ir.Var {
		nv := &ir.Var{
			Name: fmt.Sprintf("%s$%s", callee.Name, v.Name),
			Type: v.Type, Kind: ir.LocalVar, ByRef: v.ByRef,
			Slot: len(caller.Params) + len(caller.Locals),
		}
		caller.Locals = append(caller.Locals, nv)
		varMap[v] = nv
		if prog.AddressTakenVars[v] {
			prog.AddressTakenVars[nv] = true
		}
		return nv
	}
	for _, v := range callee.Params {
		cloneVar(v)
	}
	for _, v := range callee.Locals {
		cloneVar(v)
	}
	// Result variable for RETURN values.
	var resVar *ir.Var
	if call.Dst != ir.NoReg {
		resVar = &ir.Var{
			Name: fmt.Sprintf("%s$ret", callee.Name),
			Type: callee.Result, Kind: ir.LocalVar,
			Slot: len(caller.Params) + len(caller.Locals),
		}
		caller.Locals = append(caller.Locals, resVar)
	}

	regOffset := caller.NumRegs
	caller.NumRegs += callee.NumRegs

	remapOperand := func(o ir.Operand) ir.Operand {
		switch o.Kind {
		case ir.RegOp:
			o.Reg += ir.Reg(regOffset)
		case ir.VarOp:
			if nv, ok := varMap[o.Var]; ok {
				o.Var = nv
			}
		}
		return o
	}
	remapAP := func(ap *ir.AP) *ir.AP {
		if ap == nil {
			return nil
		}
		root := ap.Root
		if nv, ok := varMap[root]; ok {
			root = nv
		}
		sels := make([]ir.APSel, len(ap.Sels))
		copy(sels, ap.Sels)
		for i := range sels {
			if sels[i].Kind == ir.SelIndex {
				sels[i].Index = remapOperand(sels[i].Index)
			}
		}
		return &ir.AP{Root: root, Sels: sels}
	}

	// Clone blocks.
	blockMap := make(map[*ir.Block]*ir.Block, len(callee.Blocks))
	for _, cb := range callee.Blocks {
		nb := &ir.Block{ID: len(caller.Blocks), Name: "inl." + callee.Name}
		caller.Blocks = append(caller.Blocks, nb)
		blockMap[cb] = nb
	}
	for _, cb := range callee.Blocks {
		nb := blockMap[cb]
		for i := range cb.Instrs {
			ci := cb.Instrs[i]
			ni := ci
			if ni.DefinedReg() != ir.NoReg {
				ni.Dst += ir.Reg(regOffset)
			}
			if len(ci.Args) > 0 {
				ni.Args = make([]ir.Operand, len(ci.Args))
				for k, a := range ci.Args {
					ni.Args[k] = remapOperand(a)
				}
			}
			ni.Base = remapOperand(ci.Base)
			if ci.Sel.Kind == ir.SelIndex {
				ni.Sel.Index = remapOperand(ci.Sel.Index)
			}
			ni.AP = remapAP(ci.AP)
			if nv, ok := varMap[ci.Var]; ok {
				ni.Var = nv
			}
			switch ci.Op {
			case ir.OpJump:
				ni.Target = blockMap[ci.Target]
			case ir.OpBranch:
				ni.Then = blockMap[ci.Then]
				ni.Else = blockMap[ci.Else]
			case ir.OpReturn:
				// RETURN becomes: result := value; jump cont.
				if resVar != nil && len(ni.Args) > 0 {
					nb.Instrs = append(nb.Instrs, ir.Instr{
						Op: ir.OpSetVar, Var: resVar, Args: ni.Args, Pos: ni.Pos,
					})
				}
				ni = ir.Instr{Op: ir.OpJump, Target: cont}
			}
			nb.Instrs = append(nb.Instrs, ni)
		}
	}

	// Rewrite the call site: bind arguments, then jump to the entry clone.
	pre := b.Instrs[:ii:ii]
	for k, v := range callee.Params {
		if k >= len(call.Args) {
			break
		}
		pre = append(pre, ir.Instr{
			Op: ir.OpSetVar, Var: varMap[v], Args: []ir.Operand{call.Args[k]}, Pos: call.Pos,
		})
	}
	pre = append(pre, ir.Instr{Op: ir.OpJump, Target: blockMap[callee.Entry]})
	b.Instrs = pre

	// The continuation starts by materializing the return value.
	if resVar != nil {
		cont.Instrs = append([]ir.Instr{{
			Op: ir.OpCopy, Dst: call.Dst, Args: []ir.Operand{ir.V(resVar)}, Type: call.Type, Pos: call.Pos,
		}}, cont.Instrs...)
	}
}
