package opt_test

import (
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/driver"
	"tbaa/internal/interp"
	"tbaa/internal/ir"
	"tbaa/internal/modref"
	"tbaa/internal/opt"
	"tbaa/internal/types"
)

const dispatchProg = `
MODULE M;
TYPE
  Shape = OBJECT s: INTEGER; METHODS area(): INTEGER := BaseArea; END;
  Square = Shape OBJECT OVERRIDES area := SquareArea; END;
PROCEDURE BaseArea(self: Shape): INTEGER = BEGIN RETURN 0; END BaseArea;
PROCEDURE SquareArea(self: Square): INTEGER = BEGIN RETURN self.s * self.s; END SquareArea;
VAR q: Square; total, i: INTEGER;
BEGIN
  q := NEW(Square);
  q.s := 3;
  total := 0;
  FOR i := 1 TO 4 DO
    total := total + q.area();
  END;
  PutInt(total); PutLn();
END M.
`

func countOps(prog *ir.Program, op ir.Op) int {
	n := 0
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == op {
					n++
				}
			}
		}
	}
	return n
}

func TestDevirtualizeResolvesMonomorphic(t *testing.T) {
	prog, _, err := driver.Compile("d.m3", dispatchProg)
	if err != nil {
		t.Fatal(err)
	}
	before := countOps(prog, ir.OpMethodCall)
	if before == 0 {
		t.Fatal("expected a method call")
	}
	resolved := opt.Devirtualize(prog, nil)
	// q has static type Square which has no subtypes: unique target.
	if resolved != before {
		t.Errorf("resolved %d of %d method calls", resolved, before)
	}
	if countOps(prog, ir.OpMethodCall) != 0 {
		t.Error("method calls remain after devirtualization")
	}
	in := interp.New(prog)
	out, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out != "36\n" {
		t.Errorf("output after devirt: %q", out)
	}
}

func TestDevirtualizeKeepsPolymorphic(t *testing.T) {
	prog, _, err := driver.Compile("p.m3", `
MODULE M;
TYPE
  Shape = OBJECT METHODS area(): INTEGER := BaseArea; END;
  Square = Shape OBJECT OVERRIDES area := SquareArea; END;
PROCEDURE BaseArea(self: Shape): INTEGER = BEGIN RETURN 1; END BaseArea;
PROCEDURE SquareArea(self: Square): INTEGER = BEGIN RETURN 2; END SquareArea;
VAR s: Shape; x: INTEGER;
BEGIN
  s := NEW(Square);
  x := s.area();
  PutInt(x); PutLn();
END M.
`)
	if err != nil {
		t.Fatal(err)
	}
	resolved := opt.Devirtualize(prog, nil)
	if resolved != 0 {
		t.Errorf("polymorphic call resolved without refinement: %d", resolved)
	}
	// With SMTypeRefs refinement the receiver can still be Square or
	// Shape (the declared-type cone includes both impls), so it stays.
	a := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
	refine := func(o *types.Object) []int {
		refs := a.TypeRefs(o)
		if refs == nil {
			return nil
		}
		return refs.IDs()
	}
	resolved = opt.Devirtualize(prog, refine)
	// s := NEW(Square) merges Shape with Square, so both types remain
	// possible and both impls are candidates; still unresolved.
	if countOps(prog, ir.OpMethodCall) == 0 && resolved == 0 {
		t.Error("inconsistent devirtualization state")
	}
	in := interp.New(prog)
	out, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out != "2\n" {
		t.Errorf("output: %q", out)
	}
}

func TestInlineSmallCalls(t *testing.T) {
	src := `
MODULE M;
PROCEDURE Add(a, b: INTEGER): INTEGER = BEGIN RETURN a + b; END Add;
PROCEDURE Twice(x: INTEGER): INTEGER = BEGIN RETURN Add(x, x); END Twice;
VAR r, i: INTEGER;
BEGIN
  r := 0;
  FOR i := 1 TO 5 DO
    r := Add(r, Twice(i));
  END;
  PutInt(r); PutLn();
END M.
`
	prog, _, err := driver.Compile("i.m3", src)
	if err != nil {
		t.Fatal(err)
	}
	out1, _, err := driver.Run("i.m3", src)
	if err != nil {
		t.Fatal(err)
	}
	n := opt.Inline(prog)
	if n == 0 {
		t.Fatal("nothing inlined")
	}
	in := interp.New(prog)
	out2, err := in.Run()
	if err != nil {
		t.Fatalf("run after inline: %v", err)
	}
	if out1 != out2 {
		t.Fatalf("inline changed output: %q vs %q", out1, out2)
	}
	if in.Stats().Calls >= 11 {
		t.Errorf("calls not reduced: %d", in.Stats().Calls)
	}
}

func TestInlineByRefAndHeap(t *testing.T) {
	src := `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
PROCEDURE Bump(VAR x: INTEGER) = BEGIN x := x + 1; END Bump;
PROCEDURE GetF(t: T): INTEGER = BEGIN RETURN t.f; END GetF;
VAR t: T; v: INTEGER;
BEGIN
  t := NEW(T);
  t.f := 10;
  Bump(t.f);
  v := GetF(t);
  PutInt(v); PutLn();
END M.
`
	prog, _, err := driver.Compile("b.m3", src)
	if err != nil {
		t.Fatal(err)
	}
	n := opt.Inline(prog)
	if n < 2 {
		t.Fatalf("expected 2 inlines, got %d", n)
	}
	in := interp.New(prog)
	out, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out != "11\n" {
		t.Errorf("output: %q", out)
	}
}

func TestDevirtInlineThenRLE(t *testing.T) {
	// The full Figure 11 pipeline: Minv + inlining then RLE.
	prog, _, err := driver.Compile("f11.m3", dispatchProg)
	if err != nil {
		t.Fatal(err)
	}
	opt.Devirtualize(prog, nil)
	opt.Inline(prog)
	o := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
	mr := modref.Compute(prog)
	opt.RLE(prog, o, mr)
	in := interp.New(prog)
	out, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out != "36\n" {
		t.Errorf("output after full pipeline: %q", out)
	}
}

func TestInlineRecursionGuard(t *testing.T) {
	src := `
MODULE M;
PROCEDURE Fact(n: INTEGER): INTEGER =
BEGIN
  IF n <= 1 THEN RETURN 1; END;
  RETURN n * Fact(n - 1);
END Fact;
BEGIN
  PutInt(Fact(6)); PutLn();
END M.
`
	prog, _, err := driver.Compile("r.m3", src)
	if err != nil {
		t.Fatal(err)
	}
	opt.Inline(prog) // must terminate and stay correct
	in := interp.New(prog)
	out, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out != "720\n" {
		t.Errorf("output: %q", out)
	}
}
