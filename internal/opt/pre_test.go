package opt_test

import (
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/driver"
	"tbaa/internal/interp"
	"tbaa/internal/limit"
	"tbaa/internal/modref"
	"tbaa/internal/opt"
	"tbaa/internal/randprog"
)

// The canonical partial-redundancy shape: t.f is available after the
// THEN branch but killed by the call on the ELSE branch, so the load
// after the join is redundant only on some paths — RLE (intersection
// meet, no insertions) must keep it, PRE can remove it.
const partialSrc = `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
VAR t: T; i, x, y: INTEGER;
PROCEDURE Clobber() =
BEGIN
  t.f := t.f + 1;
END Clobber;
BEGIN
  t := NEW(T);
  t.f := 2;
  x := 0;
  FOR i := 1 TO 60 DO
    IF i MOD 2 = 0 THEN
      x := x + t.f;   (* generates availability on the THEN path *)
    ELSE
      Clobber();      (* kills availability on the ELSE path *)
    END;
    y := t.f; (* partially redundant: available only after THEN *)
    x := x + y;
  END;
  PutInt(x); PutLn();
END M.
`

func TestPREEliminatesConditionalRedundancy(t *testing.T) {
	// Baseline with plain RLE.
	prog1, _, err := driver.Compile("a.m3", partialSrc)
	if err != nil {
		t.Fatal(err)
	}
	o1 := alias.New(prog1, alias.Options{Level: alias.LevelSMFieldTypeRefs})
	mr1 := modref.Compute(prog1)
	opt.RLE(prog1, o1, mr1)
	in1 := interp.New(prog1)
	out1, err := in1.Run()
	if err != nil {
		t.Fatal(err)
	}

	// RLE + PRE.
	prog2, _, err := driver.Compile("b.m3", partialSrc)
	if err != nil {
		t.Fatal(err)
	}
	o2 := alias.New(prog2, alias.Options{Level: alias.LevelSMFieldTypeRefs})
	mr2 := modref.Compute(prog2)
	opt.RLE(prog2, o2, mr2)
	res := opt.PRE(prog2, o2, mr2)
	if res.Inserted == 0 || res.Eliminated == 0 {
		t.Fatalf("PRE should insert and eliminate: %+v", res)
	}
	in2 := interp.New(prog2)
	out2, err := in2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Fatalf("PRE changed output: %q vs %q", out1, out2)
	}
	if in2.Stats().HeapLoads >= in1.Stats().HeapLoads {
		t.Errorf("PRE should reduce heap loads beyond RLE: %d vs %d",
			in2.Stats().HeapLoads, in1.Stats().HeapLoads)
	}
}

func TestPREShrinksConditionalCategory(t *testing.T) {
	measure := func(usePRE bool) limit.Report {
		prog, _, err := driver.Compile("m.m3", partialSrc)
		if err != nil {
			t.Fatal(err)
		}
		o := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
		mr := modref.Compute(prog)
		opt.RLE(prog, o, mr)
		if usePRE {
			opt.PRE(prog, o, mr)
		}
		rep, _, err := limit.Measure(prog, o, mr)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	without := measure(false)
	with := measure(true)
	if without.ByCategory[limit.CatConditional] == 0 {
		t.Fatal("expected Conditional redundancy before PRE")
	}
	if with.ByCategory[limit.CatConditional] >= without.ByCategory[limit.CatConditional] {
		t.Errorf("PRE should shrink Conditional: %d -> %d",
			without.ByCategory[limit.CatConditional], with.ByCategory[limit.CatConditional])
	}
}

func TestPREZeroTripSafety(t *testing.T) {
	// A compensation load may execute where the original did not; with a
	// NIL pointer on the compensated path it must not trap.
	src := `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
VAR t: T; x: INTEGER; go: BOOLEAN;
BEGIN
  t := NIL;
  go := FALSE;
  IF go THEN
    t := NEW(T);
    t.f := 1;
    x := t.f;
  END;
  IF go THEN
    x := x + t.f;
  END;
  PutInt(x); PutLn();
END M.
`
	prog, _, err := driver.Compile("z.m3", src)
	if err != nil {
		t.Fatal(err)
	}
	o := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
	mr := modref.Compute(prog)
	opt.RLE(prog, o, mr)
	opt.PRE(prog, o, mr)
	in := interp.New(prog)
	out, err := in.Run()
	if err != nil {
		t.Fatalf("PRE introduced a trap: %v", err)
	}
	if out != "0\n" {
		t.Errorf("output %q", out)
	}
}

func TestPREPreservesSemanticsOnRandomPrograms(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 15
	}
	for seed := int64(5000); seed < int64(5000+seeds); seed++ {
		src := randprog.Generate(seed, randprog.DefaultConfig())
		base, _, err := driver.Compile("r.m3", src)
		if err != nil {
			t.Fatal(err)
		}
		in1 := interp.New(base)
		in1.MaxSteps = 2_000_000
		want, err := in1.Run()
		if err != nil {
			continue
		}
		prog, _, err := driver.Compile("r.m3", src)
		if err != nil {
			t.Fatal(err)
		}
		o := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
		mr := modref.Compute(prog)
		opt.RLE(prog, o, mr)
		opt.PRE(prog, o, mr)
		in2 := interp.New(prog)
		in2.MaxSteps = 4_000_000
		got, err := in2.Run()
		if err != nil {
			t.Fatalf("seed %d: PRE trapped: %v\n%s", seed, err, src)
		}
		if got != want {
			t.Fatalf("seed %d: PRE diverged\nwant %q\ngot  %q\n%s", seed, want, got, src)
		}
	}
}
