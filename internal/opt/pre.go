package opt

import (
	"tbaa/internal/alias"
	"tbaa/internal/cfg"
	"tbaa/internal/ir"
	"tbaa/internal/modref"
)

// PREResult reports what partial redundancy elimination did.
type PREResult struct {
	// Inserted counts compensation loads placed on predecessor edges.
	Inserted int
	// Eliminated counts loads removed by the CSE pass that runs after
	// insertion (including ones the insertions made fully redundant).
	Eliminated int
}

// PRE implements the paper's "future work": partial redundancy
// elimination of memory expressions. A load that is available on some
// but not all paths (the Figure 10 "Conditional" category) becomes fully
// redundant after compensation loads are inserted on the unavailable
// predecessor edges; the regular available-load pass then removes it.
//
// Compensation loads are marked speculative (they may execute on paths
// the original did not take), so only access paths that can be safely
// re-materialized from variables are candidates: paths whose base
// operand is a variable and whose subscripts are variables or constants.
// Critical edges are split so insertions do not lengthen unrelated paths.
func PRE(prog *ir.Program, o alias.Oracle, mr *modref.ModRef) PREResult {
	var res PREResult
	for _, p := range prog.Procs {
		res.Inserted += preProc(prog, p, o, mr)
	}
	for _, p := range prog.Procs {
		res.Eliminated += cseLoads(prog, p, o, mr)
	}
	return res
}

func preProc(prog *ir.Program, p *ir.Proc, o alias.Oracle, mr *modref.ModRef) int {
	p.ComputeCFGEdges()
	// Collect classes exactly as CSE does.
	var classes []*ir.AP
	classOf := func(ap *ir.AP) int {
		for i, c := range classes {
			if c.Equal(ap) {
				return i
			}
		}
		classes = append(classes, ap)
		return len(classes) - 1
	}
	type site struct {
		b   *ir.Block
		idx int
	}
	gen := make(map[site]int)
	// materializable tracks whether a class's load can be re-created
	// from scratch at an arbitrary program point.
	materializable := map[int]bool{}
	var sampleLoad = map[int]*ir.Instr{}
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpLoad, ir.OpLoadVarField, ir.OpStore, ir.OpStoreVarField:
				if in.AP == nil || in.AP.IsDope() {
					continue
				}
				c := classOf(in.AP)
				gen[site{b, i}] = c
				if in.Op == ir.OpLoad && rematerializable(in) {
					materializable[c] = true
					if sampleLoad[c] == nil {
						sampleLoad[c] = in
					}
				}
			}
		}
	}
	n := len(classes)
	if n == 0 {
		return 0
	}
	at := prog.AddressTakenVars
	kills := func(avail []bool, in *ir.Instr) {
		site := alias.Site{Proc: p, Instr: in}
		switch in.Op {
		case ir.OpSetVar:
			for i, c := range classes {
				if avail[i] && modref.VarWriteKills(c, in.Var, at) {
					avail[i] = false
				}
			}
		case ir.OpStore, ir.OpStoreVarField:
			st := in.AP
			if st == nil {
				for i := range avail {
					avail[i] = false
				}
				return
			}
			isDeref := in.Op == ir.OpStore && in.Sel.Kind == ir.SelDeref
			for i, c := range classes {
				if !avail[i] {
					continue
				}
				if modref.StoreKills(o, c, site, st, site) {
					avail[i] = false
				} else if isDeref && modref.LocStoreKills(c, st.Type().ID(), at) {
					avail[i] = false
				}
			}
		case ir.OpCall, ir.OpMethodCall:
			eff := mr.CallEffects(in)
			for i, c := range classes {
				if avail[i] && modref.MayModify(eff, c, site, o, at) {
					avail[i] = false
				}
			}
		}
	}
	transfer := func(b *ir.Block, avail []bool) {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			c, isGen := gen[site{b, i}]
			if (in.Op == ir.OpLoad || in.Op == ir.OpLoadVarField) && isGen {
				avail[c] = true
				continue
			}
			kills(avail, in)
			if isGen {
				avail[c] = true
			}
		}
	}
	// Two dataflows: must (∩) and may (∪).
	solve := func(union bool) map[*ir.Block][]bool {
		rpo := cfg.ReversePostorder(p)
		out := make(map[*ir.Block][]bool, len(rpo))
		for _, b := range rpo {
			s := make([]bool, n)
			if b != p.Entry && !union {
				for i := range s {
					s[i] = true
				}
			}
			out[b] = s
		}
		meetIn := func(b *ir.Block) []bool {
			in := make([]bool, n)
			if b == p.Entry {
				return in
			}
			if union {
				for _, pred := range b.Preds {
					if po := out[pred]; po != nil {
						for i := 0; i < n; i++ {
							if po[i] {
								in[i] = true
							}
						}
					}
				}
			} else {
				for i := 0; i < n; i++ {
					in[i] = true
				}
				for _, pred := range b.Preds {
					if po := out[pred]; po != nil {
						for i := 0; i < n; i++ {
							if !po[i] {
								in[i] = false
							}
						}
					}
				}
			}
			return in
		}
		for changed := true; changed; {
			changed = false
			for _, b := range rpo {
				s := meetIn(b)
				transfer(b, s)
				if !boolsEqual(s, out[b]) {
					out[b] = s
					changed = true
				}
			}
		}
		// Convert outs to ins for the caller.
		ins := make(map[*ir.Block][]bool, len(rpo))
		for _, b := range rpo {
			ins[b] = meetIn(b)
		}
		return ins
	}
	mustIn := solve(false)
	mayIn := solve(true)
	mustOutOf := func(b *ir.Block) []bool {
		s := make([]bool, n)
		copy(s, mustIn[b])
		transfer(b, s)
		return s
	}

	// Find candidate (block, class) pairs: a load of c at the top of b
	// (no prior kill or gen of c in b) with mayIn && !mustIn.
	type want struct {
		b *ir.Block
		c int
	}
	var wants []want
	seen := map[want]bool{}
	for _, b := range p.Blocks {
		if mustIn[b] == nil {
			continue // unreachable
		}
		dirty := make([]bool, n)
		avail := make([]bool, n)
		copy(avail, mustIn[b])
		for i := range b.Instrs {
			in := &b.Instrs[i]
			c, isGen := gen[site{b, i}]
			if (in.Op == ir.OpLoad || in.Op == ir.OpLoadVarField) && isGen {
				if !dirty[c] && !avail[c] && mayIn[b][c] && materializable[c] {
					w := want{b, c}
					if !seen[w] {
						seen[w] = true
						wants = append(wants, w)
					}
				}
				avail[c] = true
				dirty[c] = true
				continue
			}
			before := make([]bool, n)
			copy(before, avail)
			kills(avail, in)
			for k := 0; k < n; k++ {
				if before[k] != avail[k] {
					dirty[k] = true
				}
			}
			if isGen {
				avail[c] = true
				dirty[c] = true
			}
		}
	}
	if len(wants) == 0 {
		return 0
	}

	inserted := 0
	for _, w := range wants {
		// Insert a compensation load on each predecessor lacking c.
		for _, pred := range append([]*ir.Block{}, w.b.Preds...) {
			if mustOutOf(pred)[w.c] {
				continue
			}
			target := pred
			if len(pred.Succs) > 1 {
				target = splitEdge(p, pred, w.b)
			}
			ld := *sampleLoad[w.c]
			ld.Dst = p.NewReg()
			ld.Speculative = true
			term := target.Instrs[len(target.Instrs)-1]
			target.Instrs = append(target.Instrs[:len(target.Instrs)-1], ld, term)
			inserted++
		}
	}
	p.ComputeCFGEdges()
	if inserted > 0 {
		prog.MarkMutated(p)
		alias.InvalidateFlow(o, p)
	}
	return inserted
}

// rematerializable reports whether the load can be re-emitted at another
// program point: its base and subscript are variables or constants
// (registers would not be available elsewhere).
func rematerializable(in *ir.Instr) bool {
	if in.Base.Kind == ir.RegOp {
		return false
	}
	if in.Sel.Kind == ir.SelIndex && in.Sel.Index.Kind == ir.RegOp {
		return false
	}
	return true
}

// splitEdge inserts a block on the pred→succ edge and returns it.
func splitEdge(p *ir.Proc, pred, succ *ir.Block) *ir.Block {
	nb := &ir.Block{ID: len(p.Blocks), Name: "pre.edge"}
	p.Blocks = append(p.Blocks, nb)
	nb.Instrs = []ir.Instr{{Op: ir.OpJump, Target: succ}}
	t := &pred.Instrs[len(pred.Instrs)-1]
	switch t.Op {
	case ir.OpJump:
		if t.Target == succ {
			t.Target = nb
		}
	case ir.OpBranch:
		if t.Then == succ {
			t.Then = nb
		}
		if t.Else == succ {
			t.Else = nb
		}
	}
	p.ComputeCFGEdges()
	return nb
}
