package opt

import (
	"tbaa/internal/ir"
	"tbaa/internal/modref"
	"tbaa/internal/types"
)

// Devirtualize replaces method calls that can only reach a single
// implementation with direct procedure calls (the paper's "method
// invocation resolution", Section 3.7). The dispatch set is bounded by
// the static receiver type's subtype cone; an optional refine function
// (from SMTypeRefs) can narrow the set of possible receiver types.
func Devirtualize(prog *ir.Program, refine func(recv *types.Object) []int) int {
	mr := modref.Compute(prog)
	resolved := 0
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpMethodCall {
					continue
				}
				targets := dispatchTargets(prog, mr, in, refine)
				if len(targets) != 1 {
					continue
				}
				in.Op = ir.OpCall
				in.Callee = targets[0].Name
				in.Method = ""
				in.RecvType = nil
				resolved++
			}
		}
	}
	return resolved
}

func dispatchTargets(prog *ir.Program, mr *modref.ModRef, in *ir.Instr, refine func(recv *types.Object) []int) []*ir.Proc {
	if in.RecvType == nil || refine == nil {
		return mr.Dispatch(in)
	}
	possible := refine(in.RecvType)
	if possible == nil {
		return mr.Dispatch(in)
	}
	seen := map[string]bool{}
	var out []*ir.Proc
	for _, id := range possible {
		o, ok := prog.Universe.ByID(id).(*types.Object)
		if !ok {
			continue
		}
		impl := o.Implementation(in.Method)
		if impl == "" || seen[impl] {
			continue
		}
		seen[impl] = true
		if p := prog.ProcByName[impl]; p != nil {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		// The refinement believes the receiver set is empty (dead call);
		// fall back to the full cone to stay conservative.
		return mr.Dispatch(in)
	}
	return out
}
