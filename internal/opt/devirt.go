package opt

import (
	"tbaa/internal/ir"
	"tbaa/internal/modref"
	"tbaa/internal/types"
)

// Devirtualize replaces method calls that can only reach a single
// implementation with direct procedure calls (the paper's "method
// invocation resolution", Section 3.7). The dispatch set is bounded by
// the static receiver type's subtype cone; an optional refine function
// (from SMTypeRefs) can narrow the set of possible receiver types.
// The narrowing — including the conservative fall-back to the full
// cone when the refined set is empty — lives in modref.Dispatch, the
// same rule the interprocedural summaries use.
func Devirtualize(prog *ir.Program, refine func(recv *types.Object) []int) int {
	mr := modref.ComputeWith(prog, modref.Config{Refine: refine})
	resolved := 0
	for _, p := range prog.Procs {
		inProc := 0
		for _, b := range p.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpMethodCall {
					continue
				}
				targets := mr.Dispatch(in)
				if len(targets) != 1 {
					continue
				}
				in.Op = ir.OpCall
				in.Callee = targets[0].Name
				in.Method = ""
				in.RecvType = nil
				inProc++
			}
		}
		if inProc > 0 {
			prog.MarkMutated(p)
			resolved += inProc
		}
	}
	return resolved
}
