// Package opt implements the optimizations the paper evaluates TBAA with:
// redundant load elimination (RLE — loop-invariant load motion plus
// common-subexpression elimination of memory references, Section 3.4.1),
// and method invocation resolution with inlining (Section 3.7).
package opt

import (
	"fmt"

	"tbaa/internal/alias"
	"tbaa/internal/cfg"
	"tbaa/internal/ir"
	"tbaa/internal/modref"
)

// RLEResult reports what RLE removed.
type RLEResult struct {
	// Hoisted counts loop-invariant source-level loads moved to preheaders.
	Hoisted int
	// Eliminated counts loads replaced by register references (CSE).
	Eliminated int
	// PerProc breaks the total down by procedure name.
	PerProc map[string]int
}

// Removed returns the total number of statically removed loads
// (the paper's Table 6 metric).
func (r RLEResult) Removed() int { return r.Hoisted + r.Eliminated }

// RLE runs redundant load elimination over every procedure, using the
// given alias oracle and mod-ref summaries to decide what stores and
// calls kill. It mutates the program.
func RLE(prog *ir.Program, o alias.Oracle, mr *modref.ModRef) RLEResult {
	res := RLEResult{PerProc: make(map[string]int)}
	for _, p := range prog.Procs {
		r := rleProc(prog, p, o, mr)
		res.Hoisted += r.Hoisted
		res.Eliminated += r.Eliminated
		if n := r.Hoisted + r.Eliminated; n > 0 {
			res.PerProc[p.Name] = n
		}
	}
	return res
}

func rleProc(prog *ir.Program, p *ir.Proc, o alias.Oracle, mr *modref.ModRef) RLEResult {
	var res RLEResult
	res.Hoisted = hoistLoads(prog, p, o, mr)
	res.Eliminated = cseLoads(prog, p, o, mr)
	return res
}

// ---------------------------------------------------------------------------
// Loop-invariant load motion

func hoistLoads(prog *ir.Program, p *ir.Proc, o alias.Oracle, mr *modref.ModRef) int {
	p.ComputeCFGEdges()
	dom := cfg.ComputeDominators(p)
	loops := cfg.FindLoops(p, dom)
	if len(loops) == 0 {
		return 0
	}
	nBlocks := len(p.Blocks)
	for _, l := range loops {
		cfg.EnsurePreheader(p, l)
	}
	if len(p.Blocks) != nBlocks {
		prog.MarkMutated(p)
		alias.InvalidateFlow(o, p)
	}
	// Preheader insertion changed the CFG; recompute.
	dom = cfg.ComputeDominators(p)
	loops = cfg.FindLoops(p, dom)
	// Innermost first so hoisted loads can cascade outward.
	ordered := make([]*cfg.Loop, len(loops))
	copy(ordered, loops)
	for i := 0; i < len(ordered); i++ {
		for j := i + 1; j < len(ordered); j++ {
			if ordered[j].Depth > ordered[i].Depth {
				ordered[i], ordered[j] = ordered[j], ordered[i]
			}
		}
	}
	total := 0
	for _, l := range ordered {
		nBlocks = len(p.Blocks)
		cfg.EnsurePreheader(p, l)
		if len(p.Blocks) != nBlocks {
			prog.MarkMutated(p)
			alias.InvalidateFlow(o, p)
		}
		total += hoistFromLoop(prog, p, l, dom, o, mr)
		// Moving instructions does not change block structure, but new
		// preheaders might have; recompute dominators defensively.
		dom = cfg.ComputeDominators(p)
	}
	return total
}

type loopEnv struct {
	prog *ir.Program
	p    *ir.Proc
	l    *cfg.Loop
	dom  *cfg.Dominators
	o    alias.Oracle
	mr   *modref.ModRef
	// defs maps registers to their defining instruction inside the loop.
	defs map[ir.Reg]*ir.Instr
	// defBlock maps in-loop defining instructions to their blocks.
	defBlock map[*ir.Instr]*ir.Block
	// varsWritten are variables assigned inside the loop.
	varsWritten map[*ir.Var]bool
	// locsWritten reports a store through a location or a call that may
	// write through locations inside the loop.
	locsWritten bool
	// callTop reports a call in the loop whose summary is the sound top
	// (Effects.Top): it may additionally rebind any global.
	callTop bool
	// stores are the store instructions inside the loop (kept as
	// instructions so kill queries carry their statement for
	// flow-sensitive oracles).
	stores []*ir.Instr
	// calls are the call instructions inside the loop.
	calls []*ir.Instr
	// hoistMemo caches hoistability per instruction.
	hoistMemo map[*ir.Instr]bool
}

func hoistFromLoop(prog *ir.Program, p *ir.Proc, l *cfg.Loop, dom *cfg.Dominators, o alias.Oracle, mr *modref.ModRef) int {
	env := &loopEnv{
		prog: prog, p: p, l: l, dom: dom, o: o, mr: mr,
		defs:        make(map[ir.Reg]*ir.Instr),
		defBlock:    make(map[*ir.Instr]*ir.Block),
		varsWritten: make(map[*ir.Var]bool),
		hoistMemo:   make(map[*ir.Instr]bool),
	}
	for b := range l.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if r := in.DefinedReg(); r != ir.NoReg {
				env.defs[r] = in
				env.defBlock[in] = b
			}
			switch in.Op {
			case ir.OpSetVar, ir.OpStoreVarField:
				env.varsWritten[in.Var] = true
				if in.Op == ir.OpStoreVarField && in.AP != nil {
					env.stores = append(env.stores, in)
				}
			case ir.OpStore:
				if in.AP != nil {
					env.stores = append(env.stores, in)
				}
				if in.Sel.Kind == ir.SelDeref {
					env.locsWritten = true
				}
			case ir.OpCall, ir.OpMethodCall:
				env.calls = append(env.calls, in)
				eff := mr.CallEffects(in)
				if eff != nil && eff.Top {
					// Nothing is known about the callee: it may rebind
					// any global and write through any location.
					env.callTop = true
					env.locsWritten = true
				}
				for g := range eff.ModGlobals {
					env.varsWritten[g] = true
				}
				if eff.WritesThroughLocs {
					env.locsWritten = true
				}
			}
		}
	}
	// Decide hoistability starting from source-level loads only; dope
	// loads ride along as dependencies (matching the paper's AST-level
	// expression granularity).
	var toMove []*ir.Instr
	moved := make(map[*ir.Instr]bool)
	sourceHoisted := 0
	for _, b := range orderedLoopBlocks(p, l) {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.OpLoad || in.AP == nil || in.AP.IsDope() {
				continue
			}
			if env.hoistable(in) {
				chain := env.collectChain(in, moved)
				toMove = append(toMove, chain...)
				sourceHoisted++
			}
		}
	}
	if len(toMove) == 0 {
		return 0
	}
	// Remove the moved instructions from their blocks.
	moveSet := make(map[*ir.Instr]bool, len(toMove))
	for _, in := range toMove {
		moveSet[in] = true
	}
	movedCopies := make(map[*ir.Instr]ir.Instr, len(toMove))
	for b := range l.Blocks {
		kept := b.Instrs[:0]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if moveSet[in] {
				cp := *in
				cp.Speculative = true
				movedCopies[in] = cp
				continue
			}
			kept = append(kept, *in)
		}
		// Rebuilding the slice invalidates interior pointers for this
		// block; that is fine because moveSet membership was by pointer
		// captured before the rebuild.
		b.Instrs = append([]ir.Instr{}, kept...)
	}
	// Insert at the end of the preheader, before its terminator, in
	// dependency order.
	ph := l.Preheader
	term := ph.Instrs[len(ph.Instrs)-1]
	body := ph.Instrs[:len(ph.Instrs)-1]
	for _, in := range toMove {
		body = append(body, movedCopies[in])
	}
	ph.Instrs = append(body, term)
	// The rebuilt instruction slices orphan any per-statement flow facts.
	env.prog.MarkMutated(p)
	alias.InvalidateFlow(env.o, p)
	return sourceHoisted
}

// orderedLoopBlocks returns the loop's blocks in procedure order for
// deterministic hoisting.
func orderedLoopBlocks(p *ir.Proc, l *cfg.Loop) []*ir.Block {
	var bs []*ir.Block
	for _, b := range p.Blocks {
		if l.Blocks[b] {
			bs = append(bs, b)
		}
	}
	return bs
}

// collectChain returns in (and its not-yet-collected load dependencies)
// in dependency-first order.
func (env *loopEnv) collectChain(in *ir.Instr, moved map[*ir.Instr]bool) []*ir.Instr {
	var chain []*ir.Instr
	var walk func(i *ir.Instr)
	walk = func(i *ir.Instr) {
		if moved[i] {
			return
		}
		moved[i] = true
		if i.Base.Kind == ir.RegOp {
			if def := env.defs[i.Base.Reg]; def != nil {
				walk(def)
			}
		}
		chain = append(chain, i)
	}
	walk(in)
	return chain
}

// hoistable decides whether a load can move to the preheader.
func (env *loopEnv) hoistable(in *ir.Instr) bool {
	if v, ok := env.hoistMemo[in]; ok {
		return v
	}
	env.hoistMemo[in] = false // cycle guard
	ok := env.hoistableUncached(in)
	env.hoistMemo[in] = ok
	return ok
}

func (env *loopEnv) hoistableUncached(in *ir.Instr) bool {
	if in.Op != ir.OpLoad || in.AP == nil {
		return false
	}
	// Must execute on every iteration (paper Section 3.4.1): its block
	// dominates every latch.
	b := env.defBlock[in]
	if b == nil {
		// Loads without destinations do not exist; defBlock covers all.
		return false
	}
	for _, latch := range env.l.Latches {
		if !env.dom.Dominates(b, latch) {
			return false
		}
	}
	// Nothing in the loop may overwrite the loaded location. Dope-vector
	// fields are immutable after allocation, so only source-level paths
	// need the store/call check.
	if !in.AP.IsDope() {
		if env.killedInLoop(in.AP) {
			return false
		}
	}
	// The base must be invariant: a constant, an unmodified variable, or
	// a register defined outside the loop or by a hoistable load.
	if !env.invariantOperand(in.Base, true) {
		return false
	}
	if in.Sel.Kind == ir.SelIndex && !env.invariantOperand(in.Sel.Index, false) {
		return false
	}
	return true
}

func (env *loopEnv) invariantOperand(o ir.Operand, allowLoadChain bool) bool {
	switch o.Kind {
	case ir.ConstOp, ir.NoOperand:
		return true
	case ir.VarOp:
		v := o.Var
		if env.varsWritten[v] {
			return false
		}
		if env.locsWritten && env.prog.AddressTakenVars[v] {
			return false
		}
		if env.callTop && v.Kind == ir.GlobalVar {
			return false
		}
		return true
	case ir.RegOp:
		def := env.defs[o.Reg]
		if def == nil {
			return true // defined outside the loop
		}
		if allowLoadChain && def.Op == ir.OpLoad {
			return env.hoistable(def)
		}
		return false
	}
	return false
}

// killedInLoop reports whether any store, variable write, or call in the
// loop may overwrite ap or a variable it depends on. ap's root is
// loop-invariant (hoistableUncached rejects written bases first), so
// evaluating it at each killing statement's site is exact.
func (env *loopEnv) killedInLoop(ap *ir.AP) bool {
	at := env.prog.AddressTakenVars
	for v := range env.varsWritten {
		if modref.VarWriteKills(ap, v, at) {
			return true
		}
	}
	for _, st := range env.stores {
		site := alias.Site{Proc: env.p, Instr: st}
		if modref.StoreKills(env.o, ap, site, st.AP, site) {
			return true
		}
		if last := st.AP.Last(); last != nil && last.Kind == ir.SelDeref {
			if modref.LocStoreKills(ap, st.AP.Type().ID(), at) {
				return true
			}
		}
	}
	for _, call := range env.calls {
		site := alias.Site{Proc: env.p, Instr: call}
		if modref.MayModify(env.mr.CallEffects(call), ap, site, env.o, at) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Available-load CSE

// apClass is one syntactic access-path equivalence class.
type apClass struct {
	ap     *ir.AP
	shadow *ir.Var // lazily allocated
}

func cseLoads(prog *ir.Program, p *ir.Proc, o alias.Oracle, mr *modref.ModRef) int {
	p.ComputeCFGEdges()
	// 1. Collect classes.
	var classes []*apClass
	classOf := func(ap *ir.AP) int {
		for i, c := range classes {
			if c.ap.Equal(ap) {
				return i
			}
		}
		classes = append(classes, &apClass{ap: ap})
		return len(classes) - 1
	}
	type siteKey struct {
		b   *ir.Block
		idx int
	}
	genClass := make(map[siteKey]int)
	isCandidate := func(in *ir.Instr) bool {
		switch in.Op {
		case ir.OpLoad:
			return in.AP != nil && !in.AP.IsDope()
		case ir.OpLoadVarField, ir.OpStore, ir.OpStoreVarField:
			return in.AP != nil
		}
		return false
	}
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if isCandidate(in) {
				genClass[siteKey{b, i}] = classOf(in.AP)
			}
		}
	}
	if len(classes) == 0 {
		return 0
	}
	n := len(classes)
	at := prog.AddressTakenVars
	kills := func(avail []bool, in *ir.Instr) {
		site := alias.Site{Proc: p, Instr: in}
		switch in.Op {
		case ir.OpSetVar:
			for i, c := range classes {
				if avail[i] && modref.VarWriteKills(c.ap, in.Var, at) {
					avail[i] = false
				}
			}
		case ir.OpStore, ir.OpStoreVarField:
			st := in.AP
			if st == nil {
				for i := range avail {
					avail[i] = false
				}
				return
			}
			isDerefStore := in.Op == ir.OpStore && in.Sel.Kind == ir.SelDeref
			for i, c := range classes {
				if !avail[i] {
					continue
				}
				// An available class's root is unchanged since its gen
				// (any write to it kills the class below), so evaluating
				// both paths at the killing statement is exact. StoreKills
				// also catches stores to the class path's prefixes, which
				// redirect what the path denotes.
				if modref.StoreKills(o, c.ap, site, st, site) {
					avail[i] = false
					continue
				}
				// A store through a location may write an address-taken
				// variable the path depends on (its root or a subscript).
				if isDerefStore && modref.LocStoreKills(c.ap, st.Type().ID(), at) {
					avail[i] = false
				}
			}
		case ir.OpCall, ir.OpMethodCall:
			eff := mr.CallEffects(in)
			for i, c := range classes {
				if avail[i] && modref.MayModify(eff, c.ap, site, o, at) {
					avail[i] = false
				}
			}
		}
	}
	// 2. Per-block gen/out sets via abstract execution.
	transfer := func(b *ir.Block, avail []bool, onRedundant func(idx int, cls int)) {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			cls, isGen := genClass[siteKey{b, i}]
			if (in.Op == ir.OpLoad || in.Op == ir.OpLoadVarField) && isGen {
				if avail[cls] && onRedundant != nil {
					onRedundant(i, cls)
				}
				avail[cls] = true
				continue
			}
			kills(avail, in)
			if isGen {
				// Stores make their own path available (store-to-load
				// forwarding).
				avail[cls] = true
			}
		}
	}
	rpo := cfg.ReversePostorder(p)
	availIn := make(map[*ir.Block][]bool, len(rpo))
	availOut := make(map[*ir.Block][]bool, len(rpo))
	for _, b := range rpo {
		availIn[b] = make([]bool, n)
		availOut[b] = make([]bool, n)
		top := b != p.Entry
		for i := 0; i < n; i++ {
			availOut[b][i] = top
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			in := availIn[b]
			if b == p.Entry {
				for i := range in {
					in[i] = false
				}
			} else {
				for i := 0; i < n; i++ {
					in[i] = true
				}
				for _, pred := range b.Preds {
					po := availOut[pred]
					if po == nil {
						continue
					}
					for i := 0; i < n; i++ {
						if !po[i] {
							in[i] = false
						}
					}
				}
			}
			out := make([]bool, n)
			copy(out, in)
			transfer(b, out, nil)
			if !boolsEqual(out, availOut[b]) {
				availOut[b] = out
				changed = true
			}
		}
	}
	// 3. Find redundant loads and the classes that need shadow variables.
	type redKey struct {
		b   *ir.Block
		idx int
	}
	redundant := make(map[redKey]int)
	needShadow := make(map[int]bool)
	for _, b := range rpo {
		avail := make([]bool, n)
		copy(avail, availIn[b])
		transfer(b, avail, func(idx, cls int) {
			redundant[redKey{b, idx}] = cls
			needShadow[cls] = true
		})
	}
	if len(redundant) == 0 {
		return 0
	}
	for cls := range needShadow {
		c := classes[cls]
		c.shadow = &ir.Var{
			Name: fmt.Sprintf("$rle%d", cls),
			Type: c.ap.Type(),
			Kind: ir.LocalVar,
			Slot: len(p.Params) + len(p.Locals),
		}
		p.Locals = append(p.Locals, c.shadow)
	}
	// 4. Rewrite.
	for _, b := range rpo {
		var out []ir.Instr
		for i := range b.Instrs {
			in := b.Instrs[i]
			key := siteKey{b, i}
			cls, isGen := genClass[key]
			if rcls, isRed := redundant[redKey{b, i}]; isRed {
				// Replace the load with a copy from the shadow variable.
				out = append(out, ir.Instr{
					Op: ir.OpCopy, Dst: in.Dst,
					Args: []ir.Operand{ir.V(classes[rcls].shadow)},
					Type: in.Type, Pos: in.Pos,
				})
				continue
			}
			out = append(out, in)
			if isGen && needShadow[cls] {
				sh := classes[cls].shadow
				switch in.Op {
				case ir.OpLoad, ir.OpLoadVarField:
					out = append(out, ir.Instr{Op: ir.OpSetVar, Var: sh,
						Args: []ir.Operand{ir.R(in.Dst)}, Pos: in.Pos})
				case ir.OpStore, ir.OpStoreVarField:
					out = append(out, ir.Instr{Op: ir.OpSetVar, Var: sh,
						Args: []ir.Operand{in.Args[0]}, Pos: in.Pos})
				}
			}
		}
		b.Instrs = out
	}
	prog.MarkMutated(p)
	alias.InvalidateFlow(o, p)
	return len(redundant)
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// HoistOnly runs just the loop-invariant motion phase (for debugging and
// ablation benches).
func HoistOnly(prog *ir.Program, o alias.Oracle, mr *modref.ModRef) int {
	n := 0
	for _, p := range prog.Procs {
		n += hoistLoads(prog, p, o, mr)
	}
	return n
}

// CSEOnly runs just the available-load elimination phase.
func CSEOnly(prog *ir.Program, o alias.Oracle, mr *modref.ModRef) int {
	n := 0
	for _, p := range prog.Procs {
		n += cseLoads(prog, p, o, mr)
	}
	return n
}

// HoistOnlyProc hoists within a single procedure (debugging helper).
func HoistOnlyProc(prog *ir.Program, p *ir.Proc, o alias.Oracle, mr *modref.ModRef) int {
	return hoistLoads(prog, p, o, mr)
}
