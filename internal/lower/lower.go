// Package lower translates checked MiniM3 ASTs into the CFG IR.
//
// Lowering makes every memory access explicit: open-array subscripts
// expand into dope-vector loads (tagged so analyses can tell implicit
// accesses from source-level ones), AND/OR become control flow, and
// aggregate record assignments are broken into per-field accesses — the
// same decomposition the paper's whole-program optimizer performs.
// It also records every address-taking construct (WITH aliases and
// pass-by-reference actuals) for the alias analyses' AddressTaken.
package lower

import (
	"fmt"

	"tbaa/internal/ast"
	"tbaa/internal/ir"
	"tbaa/internal/sema"
	"tbaa/internal/token"
	"tbaa/internal/types"
)

// Lower translates a checked program to IR.
func Lower(p *sema.Program) *ir.Program {
	lw := &lowerer{
		sp: p,
		prog: &ir.Program{
			Name:               p.Module.Name,
			Universe:           p.Universe,
			ProcByName:         make(map[string]*ir.Proc),
			AddressTakenFields: make(map[ir.FieldKey]bool),
			AddressTakenElems:  make(map[int]bool),
			AddressTakenVars:   make(map[*ir.Var]bool),
		},
		varMap: make(map[*sema.VarSym]*ir.Var),
	}
	lw.prog.ByRefFormalTypes = make(map[int]bool)
	for _, g := range p.Globals {
		v := &ir.Var{Name: g.Name, Type: g.Type, Kind: ir.GlobalVar, Slot: len(lw.prog.Globals)}
		lw.prog.Globals = append(lw.prog.Globals, v)
		lw.varMap[g] = v
	}
	// Declare all procedures first so calls resolve.
	for _, proc := range p.Procs {
		ip := &ir.Proc{Name: proc.Name, Result: proc.Result, MethodOf: proc.MethodOf}
		lw.prog.Procs = append(lw.prog.Procs, ip)
		lw.prog.ProcByName[proc.Name] = ip
	}
	for i, proc := range p.Procs {
		lw.lowerProc(proc, lw.prog.Procs[i])
	}
	lw.lowerMain()
	return lw.prog
}

type lowerer struct {
	sp     *sema.Program
	prog   *ir.Program
	varMap map[*sema.VarSym]*ir.Var

	// Per-procedure state.
	proc      *ir.Proc
	cur       *ir.Block
	exitStack []*ir.Block // EXIT targets
	tempCount int
}

func (lw *lowerer) newBlock(name string) *ir.Block {
	b := &ir.Block{ID: len(lw.proc.Blocks), Name: name}
	lw.proc.Blocks = append(lw.proc.Blocks, b)
	return b
}

func (lw *lowerer) emit(in ir.Instr) *ir.Instr {
	lw.cur.Instrs = append(lw.cur.Instrs, in)
	return &lw.cur.Instrs[len(lw.cur.Instrs)-1]
}

// sealJump ends the current block with a jump if it lacks a terminator.
func (lw *lowerer) sealJump(target *ir.Block) {
	if n := len(lw.cur.Instrs); n > 0 && lw.cur.Instrs[n-1].IsTerminator() {
		return
	}
	lw.emit(ir.Instr{Op: ir.OpJump, Target: target})
}

func (lw *lowerer) newTemp(t types.Type) *ir.Var {
	lw.tempCount++
	v := &ir.Var{Name: fmt.Sprintf("$t%d", lw.tempCount), Type: t, Kind: ir.LocalVar,
		Slot: len(lw.proc.Locals) + len(lw.proc.Params)}
	lw.proc.Locals = append(lw.proc.Locals, v)
	return v
}

func (lw *lowerer) addLocal(sym *sema.VarSym) *ir.Var {
	v := &ir.Var{Name: sym.Name, Type: sym.Type, Kind: ir.LocalVar,
		Slot: len(lw.proc.Locals) + len(lw.proc.Params)}
	lw.proc.Locals = append(lw.proc.Locals, v)
	lw.varMap[sym] = v
	return v
}

// ---------------------------------------------------------------------------
// Procedures

func (lw *lowerer) lowerProc(sp *sema.Procedure, ip *ir.Proc) {
	lw.proc = ip
	lw.tempCount = 0
	for _, p := range sp.Params {
		v := &ir.Var{Name: p.Name, Type: p.Type, Kind: ir.ParamVar,
			ByRef: p.ByRef(), Slot: len(ip.Params)}
		if v.ByRef {
			lw.prog.ByRefFormalTypes[p.Type.ID()] = true
		}
		ip.Params = append(ip.Params, v)
		lw.varMap[p] = v
	}
	entry := lw.newBlock("entry")
	ip.Entry = entry
	lw.cur = entry
	// Local declarations with initializers.
	for _, d := range sp.Decl.Locals {
		vd, ok := d.(*ast.VarDecl)
		if !ok {
			continue
		}
		t := lw.sp.TypeOf[vd.Init] // may be nil
		_ = t
		for _, sym := range sp.Locals {
			// match by name within this decl
			for _, n := range vd.Names {
				if sym.Name == n && lw.varMap[sym] == nil {
					lw.addLocal(sym)
				}
			}
		}
		if vd.Init != nil {
			for _, n := range vd.Names {
				sym := lw.findLocal(sp, n)
				if sym == nil {
					continue
				}
				lw.merge(sym.Type, lw.sp.TypeOf[vd.Init])
				val := lw.expr(vd.Init)
				lw.emit(ir.Instr{Op: ir.OpSetVar, Var: lw.varMap[sym], Args: []ir.Operand{val}, Pos: vd.NamePos})
			}
		}
	}
	// Remaining locals without initializers.
	for _, sym := range sp.Locals {
		if lw.varMap[sym] == nil {
			lw.addLocal(sym)
		}
	}
	lw.stmts(sp.Body)
	// Implicit return.
	if n := len(lw.cur.Instrs); n == 0 || !lw.cur.Instrs[n-1].IsTerminator() {
		lw.emit(ir.Instr{Op: ir.OpReturn})
	}
	ip.ComputeCFGEdges()
}

func (lw *lowerer) findLocal(sp *sema.Procedure, name string) *sema.VarSym {
	for _, sym := range sp.Locals {
		if sym.Name == name {
			return sym
		}
	}
	return nil
}

// lowerMain builds the __main__ procedure from global initializers plus
// the module body.
func (lw *lowerer) lowerMain() {
	ip := &ir.Proc{Name: "__main__", Result: lw.prog.Universe.VoidT}
	lw.prog.Procs = append(lw.prog.Procs, ip)
	lw.prog.ProcByName[ip.Name] = ip
	lw.prog.Main = ip
	lw.proc = ip
	lw.tempCount = 0
	entry := lw.newBlock("entry")
	ip.Entry = entry
	lw.cur = entry
	for _, gi := range lw.sp.GlobalInits {
		lw.merge(gi.Var.Type, lw.sp.TypeOf[gi.Expr])
		val := lw.expr(gi.Expr)
		lw.emit(ir.Instr{Op: ir.OpSetVar, Var: lw.varMap[gi.Var], Args: []ir.Operand{val}})
	}
	lw.stmts(lw.sp.Module.Body)
	if n := len(lw.cur.Instrs); n == 0 || !lw.cur.Instrs[n-1].IsTerminator() {
		lw.emit(ir.Instr{Op: ir.OpReturn})
	}
	ip.ComputeCFGEdges()
}

// ---------------------------------------------------------------------------
// Statements

func (lw *lowerer) stmts(ss []ast.Stmt) {
	for _, s := range ss {
		lw.stmt(s)
	}
}

func (lw *lowerer) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		lw.assign(s)
	case *ast.CallStmt:
		lw.call(s.Call, false)
	case *ast.IfStmt:
		thenB := lw.newBlock("then")
		elseB := lw.newBlock("else")
		doneB := lw.newBlock("endif")
		lw.cond(s.Cond, thenB, elseB)
		lw.cur = thenB
		lw.stmts(s.Then)
		lw.sealJump(doneB)
		lw.cur = elseB
		lw.stmts(s.Else)
		lw.sealJump(doneB)
		lw.cur = doneB
	case *ast.WhileStmt:
		headB := lw.newBlock("while.head")
		bodyB := lw.newBlock("while.body")
		doneB := lw.newBlock("while.done")
		lw.sealJump(headB)
		lw.cur = headB
		lw.cond(s.Cond, bodyB, doneB)
		lw.cur = bodyB
		lw.exitStack = append(lw.exitStack, doneB)
		lw.stmts(s.Body)
		lw.exitStack = lw.exitStack[:len(lw.exitStack)-1]
		lw.sealJump(headB)
		lw.cur = doneB
	case *ast.RepeatStmt:
		bodyB := lw.newBlock("repeat.body")
		doneB := lw.newBlock("repeat.done")
		lw.sealJump(bodyB)
		lw.cur = bodyB
		lw.exitStack = append(lw.exitStack, doneB)
		lw.stmts(s.Body)
		lw.exitStack = lw.exitStack[:len(lw.exitStack)-1]
		lw.cond(s.Cond, doneB, bodyB)
		lw.cur = doneB
	case *ast.LoopStmt:
		bodyB := lw.newBlock("loop.body")
		doneB := lw.newBlock("loop.done")
		lw.sealJump(bodyB)
		lw.cur = bodyB
		lw.exitStack = append(lw.exitStack, doneB)
		lw.stmts(s.Body)
		lw.exitStack = lw.exitStack[:len(lw.exitStack)-1]
		lw.sealJump(bodyB)
		lw.cur = doneB
	case *ast.ExitStmt:
		if len(lw.exitStack) > 0 {
			lw.sealJump(lw.exitStack[len(lw.exitStack)-1])
		}
		// Unreachable continuation.
		lw.cur = lw.newBlock("after.exit")
	case *ast.ForStmt:
		lw.forStmt(s)
	case *ast.ReturnStmt:
		var args []ir.Operand
		if s.Value != nil {
			lw.merge(lw.proc.Result, lw.sp.TypeOf[s.Value])
			args = []ir.Operand{lw.expr(s.Value)}
		}
		lw.emit(ir.Instr{Op: ir.OpReturn, Args: args, Pos: s.RetPos})
		lw.cur = lw.newBlock("after.return")
	case *ast.WithStmt:
		lw.withStmt(s)
	}
}

// merge records a pointer assignment dst := src for SMTypeRefs when both
// sides are reference types with distinct declared types (Figure 2,
// Step 2: "if Ta # Tb").
func (lw *lowerer) merge(dst, src types.Type) {
	if dst == nil || src == nil {
		return
	}
	if !dst.IsReference() || !src.IsReference() {
		return
	}
	if b, ok := src.(*types.Basic); ok && b.Kind == types.Null {
		return // NIL carries no type group
	}
	if dst.ID() == src.ID() {
		return
	}
	lw.prog.Merges = append(lw.prog.Merges, ir.Merge{Dst: dst, Src: src})
}

func (lw *lowerer) assign(s *ast.AssignStmt) {
	lt := lw.sp.TypeOf[s.LHS]
	lw.merge(lt, lw.sp.TypeOf[s.RHS])
	if rec, ok := lt.(*types.Record); ok {
		lw.recordAssign(s, rec)
		return
	}
	// Evaluate RHS first (Modula-3 evaluation order is unspecified between
	// the sides; RHS-first matches common compilers and keeps designator
	// side effects before the store).
	val := lw.expr(s.RHS)
	lv := lw.lval(s.LHS)
	lw.storeTo(lv, val, s.Pos())
}

// recordAssign expands r1 := r2 field-by-field ("aggregate accesses broken
// down into accesses of each component", paper Section 2.3).
func (lw *lowerer) recordAssign(s *ast.AssignStmt, rec *types.Record) {
	for _, f := range rec.Fields {
		fv := lw.loadRecordField(s.RHS, rec, f)
		lv := lw.recordFieldLval(s.LHS, rec, f)
		lw.storeTo(lv, fv, s.Pos())
	}
}

// ---------------------------------------------------------------------------
// FOR / WITH

func (lw *lowerer) forStmt(s *ast.ForStmt) {
	sym := lw.sp.ForSyms[s]
	iv := lw.addLocal(sym)
	lo := lw.expr(s.Lo)
	hi := lw.expr(s.Hi)
	// Bounds are evaluated once; stash hi in a temp var so the loop
	// condition re-reads a stable location.
	hiVar := lw.newTemp(lw.prog.Universe.IntT)
	lw.emit(ir.Instr{Op: ir.OpSetVar, Var: hiVar, Args: []ir.Operand{hi}})
	step := ir.CInt(1)
	descending := false
	if s.Step != nil {
		step = lw.expr(s.Step)
		if step.Kind == ir.ConstOp && step.Const.Int < 0 {
			descending = true
		}
	}
	lw.emit(ir.Instr{Op: ir.OpSetVar, Var: iv, Args: []ir.Operand{lo}})
	headB := lw.newBlock("for.head")
	bodyB := lw.newBlock("for.body")
	doneB := lw.newBlock("for.done")
	lw.sealJump(headB)
	lw.cur = headB
	cmp := lw.proc.NewReg()
	op := ir.Le
	if descending {
		op = ir.Ge
	}
	lw.emit(ir.Instr{Op: ir.OpBin, BinOp: op, Dst: cmp,
		Args: []ir.Operand{ir.V(iv), ir.V(hiVar)}})
	lw.emit(ir.Instr{Op: ir.OpBranch, Args: []ir.Operand{ir.R(cmp)}, Then: bodyB, Else: doneB})
	lw.cur = bodyB
	lw.exitStack = append(lw.exitStack, doneB)
	lw.stmts(s.Body)
	lw.exitStack = lw.exitStack[:len(lw.exitStack)-1]
	next := lw.proc.NewReg()
	lw.emit(ir.Instr{Op: ir.OpBin, BinOp: ir.Add, Dst: next,
		Args: []ir.Operand{ir.V(iv), step}})
	lw.emit(ir.Instr{Op: ir.OpSetVar, Var: iv, Args: []ir.Operand{ir.R(next)}})
	lw.sealJump(headB)
	lw.cur = doneB
}

func (lw *lowerer) withStmt(s *ast.WithStmt) {
	sym := lw.sp.WithSyms[s]
	wv := lw.addLocal(sym)
	if sym.WithExpr == nil {
		// Value binding.
		val := lw.expr(s.Expr)
		lw.emit(ir.Instr{Op: ir.OpSetVar, Var: wv, Args: []ir.Operand{val}})
	} else {
		// Alias binding: take the address of the designator.
		loc := lw.takeAddress(s.Expr, s.Pos())
		lw.emit(ir.Instr{Op: ir.OpSetVar, Var: wv, Args: []ir.Operand{loc}})
		wv.ByRef = true
	}
	lw.stmts(s.Body)
}

// takeAddress lowers a designator to a location value and records the
// address-taken fact the alias analyses consume.
func (lw *lowerer) takeAddress(e ast.Expr, pos token.Pos) ir.Operand {
	lv := lw.lval(e)
	switch lv.kind {
	case lvVar:
		lw.prog.AddressTakenVars[lv.v] = true
		r := lw.proc.NewReg()
		lw.emit(ir.Instr{Op: ir.OpMkLocVar, Dst: r, Var: lv.v, Pos: pos})
		return ir.R(r)
	case lvVarField:
		lw.prog.AddressTakenFields[ir.FieldKey{TypeID: lv.v.Type.ID(), Field: lv.field}] = true
		lw.prog.AddressTakenVars[lv.v] = true
		r := lw.proc.NewReg()
		lw.emit(ir.Instr{Op: ir.OpMkLoc, Dst: r, Base: ir.V(lv.v),
			Sel: ir.Sel{Kind: ir.SelField, Field: lv.field}, AP: lv.ap, Pos: pos})
		return ir.R(r)
	case lvMem:
		lw.recordAddressTaken(lv)
		r := lw.proc.NewReg()
		lw.emit(ir.Instr{Op: ir.OpMkLoc, Dst: r, Base: lv.base, Sel: lv.sel, AP: lv.ap, Pos: pos})
		return ir.R(r)
	}
	return ir.CNil()
}

func (lw *lowerer) recordAddressTaken(lv lval) {
	switch lv.sel.Kind {
	case ir.SelField:
		// Key by the static type of the path prefix (the object/record
		// that owns the field).
		prefix := lv.ap.Prefix()
		pt := prefix.Type()
		if rt, ok := pt.(*types.Ref); ok {
			pt = rt.Elem
		}
		lw.prog.AddressTakenFields[ir.FieldKey{TypeID: pt.ID(), Field: lv.sel.Field}] = true
	case ir.SelIndex:
		// The prefix of p[i] is the array-typed path p (source-level APs
		// do not include the implicit {elems} step).
		if n := len(lv.ap.Sels); n >= 1 {
			pre := &ir.AP{Root: lv.ap.Root, Sels: lv.ap.Sels[:n-1]}
			if at, ok := pre.Type().(*types.Array); ok {
				lw.prog.AddressTakenElems[at.ID()] = true
			}
		}
	case ir.SelDeref:
		// Address of p^ is just the value of p; nothing new escapes.
	}
}
