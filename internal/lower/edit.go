package lower

import (
	"tbaa/internal/ir"
	"tbaa/internal/sema"
)

// LowerProcInto re-lowers one checked procedure into an existing
// program, replacing the body of the ir.Proc with the same name in
// place. It is the lowering half of the incremental edit path: the
// *ir.Proc pointer is preserved (call instructions resolve callees by
// name, and the analyses key their per-procedure state by pointer), the
// rest of the program is untouched, and the procedure is stamped via
// MarkMutated so the next Invalidate rebuilds from a one-procedure
// dirty set.
//
// The program-wide fact tables stay append-only: Merges gains only
// pairs not already recorded (re-lowering an unchanged assignment must
// not grow the table, or the alias fingerprint would flip and force a
// full rebuild for nothing), and the address-taken tables are
// keyed maps, so re-recording an existing field or formal is a no-op.
// A genuinely new merge pair or address-taken local does grow its
// table — which flips the fingerprint and correctly forces the
// full-rebuild fallback, trading speed for soundness, never the
// reverse.
func LowerProcInto(prog *ir.Program, sp *sema.Program, proc *sema.Procedure) *ir.Proc {
	lw := &lowerer{sp: sp, prog: prog, varMap: make(map[*sema.VarSym]*ir.Var)}
	// Globals were lowered index-wise from sp.Globals; rebuild the
	// symbol map the expression lowerer resolves through.
	for i, g := range sp.Globals {
		lw.varMap[g] = prog.Globals[i]
	}
	ip := prog.ProcByName[proc.Name]
	ip.Params, ip.Locals, ip.Blocks, ip.Entry, ip.NumRegs = nil, nil, nil, nil, 0
	ip.Result = proc.Result
	ip.MethodOf = proc.MethodOf
	preMerges := len(prog.Merges)
	lw.lowerProc(proc, ip)
	prog.Merges = dedupMerges(prog.Merges, preMerges)
	prog.MarkMutated(ip)
	return ip
}

// dedupMerges drops entries appended after pre that duplicate an
// earlier pair. Merge feeds a set union (type-group merging), so
// duplicates are semantics-free; they are removed only to keep the
// table length stable across re-lowerings of an unchanged body.
func dedupMerges(merges []ir.Merge, pre int) []ir.Merge {
	type pair struct{ dst, src int }
	seen := make(map[pair]bool, len(merges))
	for _, m := range merges[:pre] {
		seen[pair{m.Dst.ID(), m.Src.ID()}] = true
	}
	out := merges[:pre]
	for _, m := range merges[pre:] {
		k := pair{m.Dst.ID(), m.Src.ID()}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, m)
	}
	return out
}
