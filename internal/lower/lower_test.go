package lower_test

import (
	"strings"
	"testing"

	"tbaa/internal/driver"
	"tbaa/internal/ir"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, _, err := driver.Compile("t.m3", src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// instrs flattens a procedure's instructions.
func instrs(p *ir.Proc) []*ir.Instr {
	var out []*ir.Instr
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			out = append(out, &b.Instrs[i])
		}
	}
	return out
}

func TestSubscriptExpandsDopeVector(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE A = ARRAY OF INTEGER;
VAR a: A; x: INTEGER;
BEGIN
  a := NEW(A, 4);
  x := a[2];
END M.
`)
	var dopeLoads, elemLoads int
	for _, in := range instrs(prog.Main) {
		if in.Op != ir.OpLoad {
			continue
		}
		if in.AP.IsDope() {
			dopeLoads++
			if in.Sel.Kind != ir.SelDopeElems && in.Sel.Kind != ir.SelDopeLen {
				t.Errorf("dope AP with selector %v", in.Sel.Kind)
			}
		} else if in.Sel.Kind == ir.SelIndex {
			elemLoads++
			// Source-level subscript APs do not mention the dope step.
			if strings.Contains(in.AP.String(), "{elems}") {
				t.Errorf("source AP leaked dope step: %s", in.AP)
			}
		}
	}
	if dopeLoads != 1 || elemLoads != 1 {
		t.Errorf("expected 1 dope + 1 element load, got %d + %d", dopeLoads, elemLoads)
	}
}

func TestNumberLowersToDopeLen(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE A = ARRAY OF INTEGER;
VAR a: A; n: INTEGER;
BEGIN
  a := NEW(A, 4);
  n := NUMBER(a);
END M.
`)
	found := false
	for _, in := range instrs(prog.Main) {
		if in.Op == ir.OpLoad && in.Sel.Kind == ir.SelDopeLen {
			found = true
		}
	}
	if !found {
		t.Error("NUMBER must lower to a dope-length load")
	}
}

func TestMergesRecorded(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE
  T = OBJECT f: T; END;
  S = T OBJECT a: INTEGER; END;
VAR t: T; s: S;
PROCEDURE P(x: T) = BEGIN END P;
PROCEDURE Q(): T =
BEGIN
  RETURN s;
END Q;
BEGIN
  s := NEW(S);
  t := s;      (* explicit assignment merge *)
  t.f := s;    (* field store merge *)
  P(s);        (* parameter binding merge *)
  t := Q();    (* return merge is S->T inside Q *)
END M.
`)
	if len(prog.Merges) < 4 {
		t.Errorf("expected at least 4 merges, got %d", len(prog.Merges))
	}
	// Every merge pairs distinct reference types.
	for _, m := range prog.Merges {
		if m.Dst.ID() == m.Src.ID() {
			t.Errorf("self-merge recorded: %s", m.Dst)
		}
		if !m.Dst.IsReference() || !m.Src.IsReference() {
			t.Errorf("non-reference merge: %s := %s", m.Dst, m.Src)
		}
	}
}

func TestAddressTakenRecording(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE
  T = OBJECT f, g: INTEGER; END;
  A = ARRAY OF INTEGER;
PROCEDURE P(VAR x: INTEGER) = BEGIN x := 1; END P;
VAR t: T; a: A; loc: INTEGER;
BEGIN
  t := NEW(T);
  a := NEW(A, 2);
  P(t.f);        (* field address taken *)
  P(a[0]);       (* element address taken *)
  P(loc);        (* variable address taken *)
  WITH w = t.g DO w := 2; END; (* WITH alias takes an address too *)
END M.
`)
	if len(prog.AddressTakenFields) != 2 {
		t.Errorf("expected 2 address-taken fields (f, g), got %v", prog.AddressTakenFields)
	}
	if len(prog.AddressTakenElems) != 1 {
		t.Errorf("expected 1 address-taken array, got %v", prog.AddressTakenElems)
	}
	var locTaken bool
	for v := range prog.AddressTakenVars {
		if v.Name == "loc" {
			locTaken = true
		}
	}
	if !locTaken {
		t.Error("variable loc's address should be recorded")
	}
	if prog.ByRefFormalTypes[prog.Universe.IntT.ID()] != true {
		t.Error("INTEGER should be a by-ref formal type")
	}
}

func TestShortCircuitLowersToBranches(t *testing.T) {
	prog := compile(t, `
MODULE M;
VAR a, b: BOOLEAN; x: INTEGER;
BEGIN
  a := TRUE;
  b := FALSE;
  IF a AND b THEN x := 1; END;
  IF a OR b THEN x := 2; END;
END M.
`)
	// No OpBin with And/Or must survive lowering.
	for _, in := range instrs(prog.Main) {
		if in.Op == ir.OpBin {
			s := in.String()
			if strings.Contains(s, " AND ") || strings.Contains(s, " OR ") {
				t.Errorf("short-circuit operator survived lowering: %s", s)
			}
		}
	}
}

func TestRecordAssignExpands(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE R = RECORD x, y, z: INTEGER; END;
VAR a, b: R;
BEGIN
  a.x := 1; a.y := 2; a.z := 3;
  b := a;
END M.
`)
	var fieldStores int
	for _, in := range instrs(prog.Main) {
		if in.Op == ir.OpStoreVarField {
			fieldStores++
		}
	}
	// 3 explicit stores + 3 from the aggregate expansion.
	if fieldStores != 6 {
		t.Errorf("aggregate assignment should expand to per-field stores: %d", fieldStores)
	}
}

func TestSSAFormOfRegisters(t *testing.T) {
	// Every register is assigned by at most one instruction (single
	// assignment by construction) — RLE's chain analysis depends on it.
	prog := compile(t, `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
VAR t: T; i, x: INTEGER;
BEGIN
  t := NEW(T);
  FOR i := 1 TO 10 DO
    IF i MOD 2 = 0 THEN
      x := x + t.f;
    ELSE
      x := x - t.f;
    END;
  END;
  PutInt(x);
END M.
`)
	for _, p := range prog.Procs {
		defs := map[ir.Reg]int{}
		for _, in := range instrs(p) {
			if r := in.DefinedReg(); r != ir.NoReg {
				defs[r]++
			}
		}
		for r, n := range defs {
			if n > 1 {
				t.Errorf("%s: register r%d defined %d times", p.Name, r, n)
			}
		}
	}
}

func TestEveryBlockTerminates(t *testing.T) {
	prog := compile(t, `
MODULE M;
PROCEDURE F(n: INTEGER): INTEGER =
BEGIN
  IF n > 0 THEN RETURN n; END;
  RETURN 0;
END F;
VAR x: INTEGER;
BEGIN
  x := F(3);
  WHILE x > 0 DO DEC(x); END;
END M.
`)
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			if len(b.Instrs) == 0 {
				continue // unreachable filler blocks are tolerated
			}
			if !b.Instrs[len(b.Instrs)-1].IsTerminator() {
				t.Errorf("%s b%d does not end in a terminator", p.Name, b.ID)
			}
			for i := 0; i < len(b.Instrs)-1; i++ {
				if b.Instrs[i].IsTerminator() {
					t.Errorf("%s b%d has a terminator mid-block", p.Name, b.ID)
				}
			}
		}
	}
}

func TestByRefFormalAccessIsDeref(t *testing.T) {
	prog := compile(t, `
MODULE M;
PROCEDURE P(VAR x: INTEGER) =
BEGIN
  x := x + 1;
END P;
VAR v: INTEGER;
BEGIN
  P(v);
END M.
`)
	p := prog.ProcByName["P"]
	var loads, stores int
	for _, in := range instrs(p) {
		switch in.Op {
		case ir.OpLoad:
			loads++
			if in.AP.String() != "x^" {
				t.Errorf("by-ref read AP = %s, want x^", in.AP)
			}
		case ir.OpStore:
			stores++
			if in.AP.String() != "x^" {
				t.Errorf("by-ref write AP = %s, want x^", in.AP)
			}
		}
	}
	if loads != 1 || stores != 1 {
		t.Errorf("expected 1 load + 1 store through the formal, got %d + %d", loads, stores)
	}
}

func TestMethodCallCarriesReceiverType(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE B = OBJECT METHODS m() := BM; END;
PROCEDURE BM(self: B) = BEGIN END BM;
VAR b: B;
BEGIN
  b := NEW(B);
  b.m();
END M.
`)
	var found bool
	for _, in := range instrs(prog.Main) {
		if in.Op == ir.OpMethodCall {
			found = true
			if in.RecvType == nil || in.RecvType.Name != "B" {
				t.Errorf("method call missing static receiver type: %v", in.RecvType)
			}
		}
	}
	if !found {
		t.Error("no method call lowered")
	}
}
