package lower

import (
	"tbaa/internal/ast"
	"tbaa/internal/ir"
	"tbaa/internal/sema"
	"tbaa/internal/token"
	"tbaa/internal/types"
)

// lvalKind discriminates lval.
type lvalKind int

const (
	lvVar      lvalKind = iota // a plain variable slot
	lvVarField                 // field of a record-typed variable (stack/global access)
	lvMem                      // memory through a pointer or location value
)

// lval describes a location a designator denotes.
type lval struct {
	kind  lvalKind
	v     *ir.Var // lvVar, lvVarField
	field string  // lvVarField
	base  ir.Operand
	sel   ir.Sel
	ap    *ir.AP
	typ   types.Type // type of the stored value
}

// loadFrom reads the value at an lval.
func (lw *lowerer) loadFrom(lv lval, pos token.Pos) ir.Operand {
	switch lv.kind {
	case lvVar:
		return ir.V(lv.v)
	case lvVarField:
		dst := lw.proc.NewReg()
		lw.emit(ir.Instr{Op: ir.OpLoadVarField, Dst: dst, Var: lv.v,
			Field: lv.field, AP: lv.ap, Type: lv.typ, Pos: pos})
		return ir.R(dst)
	default:
		dst := lw.proc.NewReg()
		lw.emit(ir.Instr{Op: ir.OpLoad, Dst: dst, Base: lv.base, Sel: lv.sel,
			AP: lv.ap, Type: lv.typ, Pos: pos})
		return ir.R(dst)
	}
}

// storeTo writes a value to an lval.
func (lw *lowerer) storeTo(lv lval, val ir.Operand, pos token.Pos) {
	switch lv.kind {
	case lvVar:
		lw.emit(ir.Instr{Op: ir.OpSetVar, Var: lv.v, Args: []ir.Operand{val}, Pos: pos})
	case lvVarField:
		lw.emit(ir.Instr{Op: ir.OpStoreVarField, Var: lv.v, Field: lv.field,
			Args: []ir.Operand{val}, AP: lv.ap, Type: lv.typ, Pos: pos})
	default:
		lw.emit(ir.Instr{Op: ir.OpStore, Base: lv.base, Sel: lv.sel,
			Args: []ir.Operand{val}, AP: lv.ap, Type: lv.typ, Pos: pos})
	}
}

// lval lowers a designator to a location description, emitting any loads
// the path prefix requires.
func (lw *lowerer) lval(e ast.Expr) lval {
	switch e := e.(type) {
	case *ast.Ident:
		sym := lw.sp.SymOf[e]
		v := lw.varMap[sym]
		if v == nil {
			// Should not happen for checked programs.
			v = lw.newTemp(lw.sp.TypeOf[e])
		}
		if v.ByRef {
			// A by-ref formal or WITH alias: the slot holds a location;
			// accesses are dereferences (the paper's f^ treatment).
			ap := &ir.AP{Root: v, Sels: []ir.APSel{{Kind: ir.SelDeref, Type: v.Type}}}
			return lval{kind: lvMem, base: ir.V(v),
				sel: ir.Sel{Kind: ir.SelDeref}, ap: ap, typ: v.Type}
		}
		return lval{kind: lvVar, v: v, ap: &ir.AP{Root: v}, typ: v.Type}

	case *ast.QualifyExpr:
		ft := lw.sp.TypeOf[e]
		xt := lw.sp.TypeOf[e.X]
		// p^.a over REF RECORD is the same location as p.a: unwrap.
		if dx, ok := e.X.(*ast.DerefExpr); ok {
			if _, isRec := xt.(*types.Record); isRec {
				base, ap := lw.evalWithAP(dx.X)
				return lval{kind: lvMem, base: base,
					sel: ir.Sel{Kind: ir.SelField, Field: e.Field},
					ap:  ap.Extend(ir.APSel{Kind: ir.SelField, Field: e.Field, Type: ft}),
					typ: ft}
			}
		}
		switch xt.(type) {
		case *types.Object, *types.Ref:
			base, ap := lw.evalWithAP(e.X)
			return lval{kind: lvMem, base: base,
				sel: ir.Sel{Kind: ir.SelField, Field: e.Field},
				ap:  ap.Extend(ir.APSel{Kind: ir.SelField, Field: e.Field, Type: ft}),
				typ: ft}
		case *types.Record:
			inner := lw.lval(e.X)
			switch inner.kind {
			case lvVar:
				return lval{kind: lvVarField, v: inner.v, field: e.Field,
					ap:  inner.ap.Extend(ir.APSel{Kind: ir.SelField, Field: e.Field, Type: ft}),
					typ: ft}
			case lvMem:
				// A record behind a location (by-ref formal or WITH alias):
				// replace the trailing deref with the field selector.
				ap := &ir.AP{Root: inner.ap.Root,
					Sels: append(append([]ir.APSel{}, inner.ap.Sels[:len(inner.ap.Sels)-1]...),
						ir.APSel{Kind: ir.SelField, Field: e.Field, Type: ft})}
				return lval{kind: lvMem, base: inner.base,
					sel: ir.Sel{Kind: ir.SelField, Field: e.Field}, ap: ap, typ: ft}
			}
		}
		// Fallback (checked programs do not reach here).
		base, ap := lw.evalWithAP(e.X)
		return lval{kind: lvMem, base: base,
			sel: ir.Sel{Kind: ir.SelField, Field: e.Field},
			ap:  ap.Extend(ir.APSel{Kind: ir.SelField, Field: e.Field, Type: ft}),
			typ: ft}

	case *ast.DerefExpr:
		t := lw.sp.TypeOf[e]
		base, ap := lw.evalWithAP(e.X)
		return lval{kind: lvMem, base: base, sel: ir.Sel{Kind: ir.SelDeref},
			ap:  ap.Extend(ir.APSel{Kind: ir.SelDeref, Type: t}),
			typ: t}

	case *ast.SubscriptExpr:
		t := lw.sp.TypeOf[e]
		arr, arrAP := lw.evalWithAP(e.X)
		at, _ := lw.sp.TypeOf[e.X].(*types.Array)
		elems := lw.proc.NewReg()
		elemsAP := arrAP.Extend(ir.APSel{Kind: ir.SelDopeElems, Type: at})
		lw.emit(ir.Instr{Op: ir.OpLoad, Dst: elems, Base: arr,
			Sel: ir.Sel{Kind: ir.SelDopeElems}, AP: elemsAP, Type: at, Pos: e.Pos()})
		idx := lw.expr(e.Index)
		return lval{kind: lvMem, base: ir.R(elems),
			sel: ir.Sel{Kind: ir.SelIndex, Index: idx},
			ap:  arrAP.Extend(ir.APSel{Kind: ir.SelIndex, Index: idx, Type: t}),
			typ: t}
	}
	// Non-designator: evaluate into a temp and treat as a variable.
	val := lw.expr(e)
	tv := lw.newTemp(lw.sp.TypeOf[e])
	lw.emit(ir.Instr{Op: ir.OpSetVar, Var: tv, Args: []ir.Operand{val}})
	return lval{kind: lvVar, v: tv, ap: &ir.AP{Root: tv}, typ: tv.Type}
}

// evalWithAP lowers e to a value operand plus the symbolic access path it
// denotes. Non-designators are stashed in a compiler temp so downstream
// selectors still root at a variable.
func (lw *lowerer) evalWithAP(e ast.Expr) (ir.Operand, *ir.AP) {
	switch e.(type) {
	case *ast.Ident, *ast.QualifyExpr, *ast.DerefExpr, *ast.SubscriptExpr:
		lv := lw.lval(e)
		return lw.loadFrom(lv, e.Pos()), lv.ap
	}
	val := lw.expr(e)
	tv := lw.newTemp(lw.sp.TypeOf[e])
	lw.emit(ir.Instr{Op: ir.OpSetVar, Var: tv, Args: []ir.Operand{val}})
	return ir.V(tv), &ir.AP{Root: tv}
}

// recordFieldLval produces the lval of field f of a record-typed
// designator (for aggregate assignment expansion).
func (lw *lowerer) recordFieldLval(e ast.Expr, rec *types.Record, f *types.Field) lval {
	inner := lw.lval(e)
	switch inner.kind {
	case lvVar:
		return lval{kind: lvVarField, v: inner.v, field: f.Name,
			ap:  inner.ap.Extend(ir.APSel{Kind: ir.SelField, Field: f.Name, Type: f.Type}),
			typ: f.Type}
	default:
		ap := &ir.AP{Root: inner.ap.Root,
			Sels: append(append([]ir.APSel{}, inner.ap.Sels[:len(inner.ap.Sels)-1]...),
				ir.APSel{Kind: ir.SelField, Field: f.Name, Type: f.Type})}
		return lval{kind: lvMem, base: inner.base,
			sel: ir.Sel{Kind: ir.SelField, Field: f.Name}, ap: ap, typ: f.Type}
	}
}

func (lw *lowerer) loadRecordField(e ast.Expr, rec *types.Record, f *types.Field) ir.Operand {
	lv := lw.recordFieldLval(e, rec, f)
	return lw.loadFrom(lv, e.Pos())
}

// ---------------------------------------------------------------------------
// Expressions

func (lw *lowerer) expr(e ast.Expr) ir.Operand {
	switch e := e.(type) {
	case *ast.IntLit:
		return ir.CInt(e.Value)
	case *ast.BoolLit:
		return ir.CBool(e.Value)
	case *ast.CharLit:
		return ir.CChar(e.Value)
	case *ast.TextLit:
		return ir.CText(e.Value)
	case *ast.NilLit:
		return ir.CNil()
	case *ast.Ident:
		if cs, ok := lw.sp.ConstOf[e]; ok {
			return lw.constOperand(cs)
		}
		v, _ := lw.evalWithAP(e)
		return v
	case *ast.QualifyExpr, *ast.DerefExpr, *ast.SubscriptExpr:
		v, _ := lw.evalWithAP(e)
		return v
	case *ast.UnaryExpr:
		x := lw.expr(e.X)
		if e.Op == token.MINUS && x.Kind == ir.ConstOp && x.Const.Kind == ir.IntConst {
			return ir.CInt(-x.Const.Int)
		}
		dst := lw.proc.NewReg()
		op := ir.Neg
		if e.Op == token.NOT {
			op = ir.Not
		}
		lw.emit(ir.Instr{Op: ir.OpUn, UnOp: op, Dst: dst, Args: []ir.Operand{x}, Pos: e.Pos()})
		return ir.R(dst)
	case *ast.BinaryExpr:
		if e.Op == token.AND || e.Op == token.OR {
			return lw.shortCircuitValue(e)
		}
		l := lw.expr(e.L)
		r := lw.expr(e.R)
		dst := lw.proc.NewReg()
		lw.emit(ir.Instr{Op: ir.OpBin, BinOp: binOp(e.Op), Dst: dst,
			Args: []ir.Operand{l, r}, Pos: e.Pos()})
		return ir.R(dst)
	case *ast.CallExpr:
		return lw.call(e, true)
	case *ast.NewExpr:
		t := lw.sp.TypeOf[e]
		dst := lw.proc.NewReg()
		if arr, ok := t.(*types.Array); ok {
			ln := lw.expr(e.Len)
			lw.emit(ir.Instr{Op: ir.OpNewArray, Dst: dst, Type: arr,
				Args: []ir.Operand{ln}, Pos: e.Pos()})
		} else {
			lw.emit(ir.Instr{Op: ir.OpNew, Dst: dst, Type: t, Pos: e.Pos()})
		}
		return ir.R(dst)
	}
	return ir.CInt(0)
}

func (lw *lowerer) constOperand(cs *sema.ConstSym) ir.Operand {
	switch {
	case cs.Type == nil:
		return ir.CInt(0)
	}
	if b, ok := cs.Type.(*types.Basic); ok {
		switch b.Kind {
		case types.Integer:
			return ir.CInt(cs.Int)
		case types.Boolean:
			return ir.CBool(cs.Bool)
		case types.Char:
			return ir.CChar(cs.Char)
		case types.Text:
			return ir.CText(cs.Text)
		}
	}
	return ir.CInt(0)
}

func binOp(k token.Kind) ir.BinOp {
	switch k {
	case token.PLUS:
		return ir.Add
	case token.MINUS:
		return ir.Sub
	case token.STAR:
		return ir.Mul
	case token.DIV:
		return ir.Div
	case token.MOD:
		return ir.Mod
	case token.EQ:
		return ir.Eq
	case token.NEQ:
		return ir.Ne
	case token.LT:
		return ir.Lt
	case token.GT:
		return ir.Gt
	case token.LE:
		return ir.Le
	case token.GE:
		return ir.Ge
	case token.AMP:
		return ir.Concat
	}
	return ir.Add
}

// shortCircuitValue materializes AND/OR into a temp via control flow.
func (lw *lowerer) shortCircuitValue(e *ast.BinaryExpr) ir.Operand {
	tv := lw.newTemp(lw.prog.Universe.BoolT)
	tB := lw.newBlock("sc.true")
	fB := lw.newBlock("sc.false")
	dB := lw.newBlock("sc.done")
	lw.cond(e, tB, fB)
	lw.cur = tB
	lw.emit(ir.Instr{Op: ir.OpSetVar, Var: tv, Args: []ir.Operand{ir.CBool(true)}})
	lw.sealJump(dB)
	lw.cur = fB
	lw.emit(ir.Instr{Op: ir.OpSetVar, Var: tv, Args: []ir.Operand{ir.CBool(false)}})
	lw.sealJump(dB)
	lw.cur = dB
	return ir.V(tv)
}

// cond lowers a boolean expression as control flow (short-circuit AND/OR).
func (lw *lowerer) cond(e ast.Expr, thenB, elseB *ir.Block) {
	switch ex := e.(type) {
	case *ast.BinaryExpr:
		switch ex.Op {
		case token.AND:
			mid := lw.newBlock("and.rhs")
			lw.cond(ex.L, mid, elseB)
			lw.cur = mid
			lw.cond(ex.R, thenB, elseB)
			return
		case token.OR:
			mid := lw.newBlock("or.rhs")
			lw.cond(ex.L, thenB, mid)
			lw.cur = mid
			lw.cond(ex.R, thenB, elseB)
			return
		}
	case *ast.UnaryExpr:
		if ex.Op == token.NOT {
			lw.cond(ex.X, elseB, thenB)
			return
		}
	case *ast.BoolLit:
		if ex.Value {
			lw.sealJump(thenB)
		} else {
			lw.sealJump(elseB)
		}
		return
	}
	v := lw.expr(e)
	lw.emit(ir.Instr{Op: ir.OpBranch, Args: []ir.Operand{v}, Then: thenB, Else: elseB, Pos: e.Pos()})
}

// ---------------------------------------------------------------------------
// Calls

func (lw *lowerer) call(e *ast.CallExpr, wantValue bool) ir.Operand {
	ci := lw.sp.Calls[e]
	if ci == nil {
		return ir.CInt(0)
	}
	switch ci.Kind {
	case sema.BuiltinCall:
		return lw.builtin(e, ci)
	case sema.ProcCall:
		target := lw.prog.ProcByName[ci.Proc.Name]
		args := make([]ir.Operand, len(e.Args))
		byref := make([]bool, len(e.Args))
		for i, a := range e.Args {
			if i < len(ci.Proc.Params) && ci.Proc.Params[i].ByRef() {
				args[i] = lw.takeAddress(a, a.Pos())
				byref[i] = true
			} else {
				if i < len(ci.Proc.Params) {
					lw.merge(ci.Proc.Params[i].Type, lw.sp.TypeOf[a])
				}
				args[i] = lw.expr(a)
			}
		}
		dst := ir.NoReg
		if !isVoid(target.Result) {
			dst = lw.proc.NewReg()
		}
		lw.emit(ir.Instr{Op: ir.OpCall, Dst: dst, Callee: target.Name,
			Args: args, ByRef: byref, Type: target.Result, Pos: e.Pos()})
		if dst == ir.NoReg {
			return ir.CInt(0)
		}
		return ir.R(dst)
	case sema.MethodCall:
		lw.mergeReceiver(ci)
		recv := lw.expr(ci.Recv)
		args := make([]ir.Operand, 0, len(e.Args)+1)
		byref := make([]bool, 0, len(e.Args)+1)
		args = append(args, recv)
		byref = append(byref, false)
		for i, a := range e.Args {
			if i < len(ci.Method.Modes) && ci.Method.Modes[i] == types.VarMode {
				args = append(args, lw.takeAddress(a, a.Pos()))
				byref = append(byref, true)
				lw.prog.ByRefFormalTypes[lw.sp.TypeOf[a].ID()] = true
			} else {
				if i < len(ci.Method.Params) {
					lw.merge(ci.Method.Params[i], lw.sp.TypeOf[a])
				}
				args = append(args, lw.expr(a))
				byref = append(byref, false)
			}
		}
		dst := ir.NoReg
		if !isVoid(ci.Method.Result) {
			dst = lw.proc.NewReg()
		}
		lw.emit(ir.Instr{Op: ir.OpMethodCall, Dst: dst, Method: ci.Method.Name,
			RecvType: ci.RecvType, Args: args, ByRef: byref,
			Type: ci.Method.Result, Pos: e.Pos()})
		if dst == ir.NoReg {
			return ir.CInt(0)
		}
		return ir.R(dst)
	}
	return ir.CInt(0)
}

func isVoid(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind == types.Void
}

// mergeReceiver records the implicit assignment of the receiver to the
// self formal of every implementation the dispatch may invoke.
func (lw *lowerer) mergeReceiver(ci *sema.CallInfo) {
	rt := lw.sp.TypeOf[ci.Recv]
	ro, ok := rt.(*types.Object)
	if !ok {
		return
	}
	seen := map[string]bool{}
	for _, id := range lw.prog.Universe.Subtypes(ro) {
		o, ok := lw.prog.Universe.ByID(id).(*types.Object)
		if !ok {
			continue
		}
		impl := o.Implementation(ci.Method.Name)
		if impl == "" || seen[impl] {
			continue
		}
		seen[impl] = true
		if sp := lw.sp.ProcByName[impl]; sp != nil && len(sp.Params) > 0 {
			lw.merge(sp.Params[0].Type, rt)
		}
	}
}

func (lw *lowerer) builtin(e *ast.CallExpr, ci *sema.CallInfo) ir.Operand {
	u := lw.prog.Universe
	switch ci.Builtin {
	case sema.BuiltinNumber:
		arr, arrAP := lw.evalWithAP(e.Args[0])
		dst := lw.proc.NewReg()
		lw.emit(ir.Instr{Op: ir.OpLoad, Dst: dst, Base: arr,
			Sel:  ir.Sel{Kind: ir.SelDopeLen},
			AP:   arrAP.Extend(ir.APSel{Kind: ir.SelDopeLen, Type: u.IntT}),
			Type: u.IntT, Pos: e.Pos()})
		return ir.R(dst)
	case sema.BuiltinInc, sema.BuiltinDec:
		lv := lw.lval(e.Args[0])
		cur := lw.loadFrom(lv, e.Pos())
		step := ir.Operand(ir.CInt(1))
		if len(e.Args) == 2 {
			step = lw.expr(e.Args[1])
		}
		op := ir.Add
		if ci.Builtin == sema.BuiltinDec {
			op = ir.Sub
		}
		dst := lw.proc.NewReg()
		lw.emit(ir.Instr{Op: ir.OpBin, BinOp: op, Dst: dst,
			Args: []ir.Operand{cur, step}, Pos: e.Pos()})
		lw.storeTo(lv, ir.R(dst), e.Pos())
		return ir.CInt(0)
	}
	// Plain builtins: evaluate args, emit one instruction.
	args := make([]ir.Operand, len(e.Args))
	for i, a := range e.Args {
		args[i] = lw.expr(a)
	}
	var bi ir.Builtin
	hasResult := true
	switch ci.Builtin {
	case sema.BuiltinAbs:
		bi = ir.BAbs
	case sema.BuiltinMin:
		bi = ir.BMin
	case sema.BuiltinMax:
		bi = ir.BMax
	case sema.BuiltinOrd:
		bi = ir.BOrd
	case sema.BuiltinChr:
		bi = ir.BChr
	case sema.BuiltinTextLen:
		bi = ir.BTextLen
	case sema.BuiltinTextChar:
		bi = ir.BTextChar
	case sema.BuiltinIntToText:
		bi = ir.BIntToText
	case sema.BuiltinPutInt:
		bi, hasResult = ir.BPutInt, false
	case sema.BuiltinPutChar:
		bi, hasResult = ir.BPutChar, false
	case sema.BuiltinPutText:
		bi, hasResult = ir.BPutText, false
	case sema.BuiltinPutLn:
		bi, hasResult = ir.BPutLn, false
	case sema.BuiltinAssert:
		bi, hasResult = ir.BAssert, false
	case sema.BuiltinHalt:
		bi, hasResult = ir.BHalt, false
	default:
		return ir.CInt(0)
	}
	dst := ir.NoReg
	if hasResult {
		dst = lw.proc.NewReg()
	}
	lw.emit(ir.Instr{Op: ir.OpBuiltin, Builtin: bi, Dst: dst, Args: args, Pos: e.Pos()})
	if dst == ir.NoReg {
		return ir.CInt(0)
	}
	return ir.R(dst)
}
