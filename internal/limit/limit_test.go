package limit_test

import (
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/driver"
	"tbaa/internal/ir"
	"tbaa/internal/limit"
	"tbaa/internal/modref"
	"tbaa/internal/opt"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, _, err := driver.Compile("t.m3", src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestDetectsRedundantLoads(t *testing.T) {
	// The original program loads t.f twice with no intervening store:
	// the second is dynamically redundant.
	prog := compile(t, `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
VAR t: T; a, b: INTEGER;
BEGIN
  t := NEW(T);
  t.f := 4;
  a := t.f;
  b := t.f;
  PutInt(a + b);
END M.
`)
	rep, _, err := limit.Measure(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Redundant < 1 {
		t.Errorf("expected a redundant load, got %d of %d", rep.Redundant, rep.HeapLoads)
	}
}

func TestSameAddressDifferentActivationNotRedundant(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
VAR t: T;
PROCEDURE Get(): INTEGER =
BEGIN
  RETURN t.f; (* one load per activation *)
END Get;
VAR s: INTEGER;
BEGIN
  t := NEW(T);
  t.f := 2;
  s := Get() + Get();
  PutInt(s);
END M.
`)
	rep, _, err := limit.Measure(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Redundant != 0 {
		t.Errorf("cross-activation loads must not count: %d", rep.Redundant)
	}
}

func TestValueChangeNotRedundant(t *testing.T) {
	prog := compile(t, `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
VAR t: T; a, b: INTEGER;
BEGIN
  t := NEW(T);
  t.f := 1;
  a := t.f;
  t.f := 2;
  b := t.f;
  PutInt(a + b);
END M.
`)
	rep, _, err := limit.Measure(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Redundant != 0 {
		t.Errorf("value-changing reloads must not count: %d", rep.Redundant)
	}
}

// runOptimized applies RLE and measures with classification.
func runOptimized(t *testing.T, src string) limit.Report {
	t.Helper()
	prog := compile(t, src)
	o := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
	mr := modref.Compute(prog)
	opt.RLE(prog, o, mr)
	rep, _, err := limit.Measure(prog, o, mr)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRLEReducesDynamicRedundancy(t *testing.T) {
	src := `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
VAR t: T; i, x: INTEGER;
BEGIN
  t := NEW(T);
  t.f := 3;
  x := 0;
  FOR i := 1 TO 100 DO
    x := x + t.f;
  END;
  PutInt(x);
END M.
`
	progBase := compile(t, src)
	before, _, err := limit.Measure(progBase, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := runOptimized(t, src)
	if before.Redundant < 99 {
		t.Errorf("baseline should have ~99 redundant loads, got %d", before.Redundant)
	}
	if after.Redundant >= before.Redundant {
		t.Errorf("RLE should eliminate dynamic redundancy: %d -> %d",
			before.Redundant, after.Redundant)
	}
}

func TestEncapsulationCategory(t *testing.T) {
	// Varying subscripts leave dope-vector loads redundant in the loop;
	// they must be classified as Encapsulated.
	rep := runOptimized(t, `
MODULE M;
TYPE A = ARRAY OF INTEGER;
VAR a: A; i, x: INTEGER;
BEGIN
  a := NEW(A, 64);
  FOR i := 0 TO 63 DO a[i] := i; END;
  x := 0;
  FOR i := 0 TO 63 DO x := x + a[i]; END;
  PutInt(x);
END M.
`)
	if rep.ByCategory[limit.CatEncapsulated] == 0 {
		t.Errorf("expected Encapsulated redundancy, got %+v", rep.ByCategory)
	}
	if rep.ByCategory[limit.CatAliasFailure] != 0 {
		t.Errorf("no alias failures expected, got %d", rep.ByCategory[limit.CatAliasFailure])
	}
}

func TestConditionalCategory(t *testing.T) {
	// t.f is loaded on one side of a branch inside a loop and then
	// unconditionally: partially redundant, RLE (no PRE) keeps it.
	rep := runOptimized(t, `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
VAR t: T; i, x: INTEGER;
BEGIN
  t := NEW(T);
  t.f := 2;
  x := 0;
  FOR i := 1 TO 50 DO
    IF i MOD 2 = 0 THEN
      x := x + t.f;
    END;
    x := x + t.f;
    t := t; (* kill nothing *)
  END;
  PutInt(x);
END M.
`)
	if rep.ByCategory[limit.CatConditional] == 0 {
		t.Errorf("expected Conditional redundancy, got %+v", rep.ByCategory)
	}
}

func TestAliasFailureCategory(t *testing.T) {
	// Two objects of the same type: stores through one kill loads of the
	// other under TBAA (same type and field), though they never alias
	// dynamically. TypeDecl-level imprecision shows as AliasFailure.
	src := `
MODULE M;
TYPE T = OBJECT f, g: INTEGER; END;
VAR t, s: T; i, x: INTEGER;
BEGIN
  t := NEW(T);
  s := NEW(T);
  t.f := 1;
  x := 0;
  FOR i := 1 TO 50 DO
    s.f := i;      (* may-aliases t.f statically, never dynamically *)
    x := x + t.f;  (* reloaded every iteration *)
  END;
  PutInt(x);
END M.
`
	prog := compile(t, src)
	o := alias.New(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
	mr := modref.Compute(prog)
	opt.RLE(prog, o, mr)
	rep, _, err := limit.Measure(prog, o, mr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByCategory[limit.CatAliasFailure] == 0 {
		t.Errorf("expected AliasFailure redundancy, got %+v", rep.ByCategory)
	}
}

func TestBreakupCategory(t *testing.T) {
	// The same heap location read through two different access paths
	// (t.f and u.f after u := t): value flows but RLE sees distinct
	// expressions — Breakup (copy propagation would connect them).
	rep := runOptimized(t, `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
VAR t, u: T; a, b: INTEGER;
PROCEDURE Init() =
BEGIN
  t := NEW(T);
  t.f := 9;
END Init;
BEGIN
  Init();
  a := t.f;
  u := t;
  b := u.f;
  PutInt(a + b);
END M.
`)
	if rep.ByCategory[limit.CatBreakup] == 0 {
		t.Errorf("expected Breakup redundancy, got %+v", rep.ByCategory)
	}
}

func TestPerfectOracleLeavesOnlyNonAliasCategories(t *testing.T) {
	// Under the AssumeNone upper bound, no load survives because of
	// alias imprecision, mirroring the paper's "perfect alias analysis"
	// comparison.
	src := `
MODULE M;
TYPE T = OBJECT f, g: INTEGER; END;
VAR t, s: T; i, x: INTEGER;
BEGIN
  t := NEW(T);
  s := NEW(T);
  t.f := 1;
  x := 0;
  FOR i := 1 TO 50 DO
    s.f := i;
    x := x + t.f;
  END;
  PutInt(x);
END M.
`
	prog := compile(t, src)
	o := alias.AssumeNone{}
	mr := modref.Compute(prog)
	opt.RLE(prog, o, mr)
	rep, _, err := limit.Measure(prog, o, mr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByCategory[limit.CatAliasFailure] != 0 {
		t.Errorf("perfect oracle cannot have alias failures: %+v", rep.ByCategory)
	}
}
