// Package limit implements the paper's upper-bound study (Section 3.5):
// an ATOM-style dynamic analysis that finds loads that are redundant at
// run time — two consecutive loads of the same address that see the same
// value within the same procedure activation — and classifies the ones
// remaining after optimization into the paper's five categories
// (Figure 10): Encapsulation, Conditional, Breakup, AliasFailure, Rest.
package limit

import (
	"tbaa/internal/alias"
	"tbaa/internal/interp"
	"tbaa/internal/ir"
	"tbaa/internal/modref"
)

// Category classifies why a dynamically redundant load survived RLE.
type Category int

// The five categories of Section 3.5.
const (
	// CatEncapsulated: the load is implicit in the high-level
	// representation (open-array dope-vector accesses).
	CatEncapsulated Category = iota
	// CatConditional: the expression was only partially redundant
	// (available on some but not all paths); PRE would catch it.
	CatConditional
	// CatBreakup: the value flowed through a different access path
	// (no copy propagation in the optimizer).
	CatBreakup
	// CatAliasFailure: the analysis could not disambiguate two memory
	// references that never aliased dynamically.
	CatAliasFailure
	// CatRest: everything else (e.g. stores that rewrote the same value,
	// or kills that were dynamically real).
	CatRest
	numCategories
)

func (c Category) String() string {
	switch c {
	case CatEncapsulated:
		return "Encapsulated"
	case CatConditional:
		return "Conditional"
	case CatBreakup:
		return "Breakup"
	case CatAliasFailure:
		return "AliasFailure"
	case CatRest:
		return "Rest"
	}
	return "?"
}

// Report summarizes one measured execution.
type Report struct {
	// HeapLoads is the number of dynamic heap loads (incl. dope loads).
	HeapLoads uint64
	// Redundant is the number of dynamically redundant heap loads.
	Redundant uint64
	// ByCategory splits Redundant by cause (meaningful after RLE).
	ByCategory [numCategories]uint64
}

// Fraction returns Redundant as a fraction of the given baseline load
// count (the paper normalizes to the *original* program's heap loads).
func (r Report) Fraction(baselineLoads uint64) float64 {
	if baselineLoads == 0 {
		return 0
	}
	return float64(r.Redundant) / float64(baselineLoads)
}

// Analyzer observes one execution and produces a Report.
type Analyzer struct {
	rep   Report
	seq   uint64
	loads map[uint64]lastLoad
	store map[uint64]uint64 // addr -> seq of last store
	flags map[*ir.Instr]availFlags
}

type lastLoad struct {
	val   uint64
	act   uint64
	instr *ir.Instr
	seq   uint64
}

// NewAnalyzer builds an analyzer. The oracle and mod-ref summaries are
// used to precompute, for every remaining load, whether its access path
// was fully available (should not happen after RLE), partially available
// (Conditional), or killed — and whether the kill was a memory kill
// (candidate AliasFailure) or a variable kill (Rest). Pass a nil oracle
// to skip classification (e.g. when measuring the original program).
func NewAnalyzer(prog *ir.Program, o alias.Oracle, mr *modref.ModRef) *Analyzer {
	a := &Analyzer{
		loads: make(map[uint64]lastLoad),
		store: make(map[uint64]uint64),
	}
	if o != nil && mr != nil {
		a.flags = computeAvailFlags(prog, o, mr)
	}
	return a
}

// Listener returns interpreter callbacks feeding the analyzer.
func (a *Analyzer) Listener() interp.Listener {
	return interp.Listener{Mem: func(ev *interp.MemEvent) { a.observe(ev) }}
}

func (a *Analyzer) observe(ev *interp.MemEvent) {
	if !ev.Heap {
		return
	}
	a.seq++
	if !ev.Load {
		a.store[ev.Addr] = a.seq
		return
	}
	a.rep.HeapLoads++
	prev, ok := a.loads[ev.Addr]
	if ok && prev.val == ev.ValueHash && prev.act == ev.Activation {
		a.rep.Redundant++
		a.classify(ev, prev)
	}
	a.loads[ev.Addr] = lastLoad{val: ev.ValueHash, act: ev.Activation,
		instr: ev.Instr, seq: a.seq}
}

func (a *Analyzer) classify(ev *interp.MemEvent, prev lastLoad) {
	if a.flags == nil {
		return
	}
	cur := ev.Instr
	cat := CatRest
	switch {
	case cur.AP != nil && cur.AP.IsDope():
		cat = CatEncapsulated
	case prev.instr.AP == nil || cur.AP == nil:
		cat = CatRest
	case !prev.instr.AP.Equal(cur.AP):
		// The same address was reached through a different source
		// expression; copy propagation would be needed to connect them.
		cat = CatBreakup
	default:
		f := a.flags[cur]
		storedBetween := a.store[ev.Addr] > prev.seq
		switch {
		case f.may && !f.must:
			cat = CatConditional
		case !f.may && f.mustNoMemKills && !storedBetween:
			// Every static path killed the expression via a may-alias
			// store or call, yet no dynamic store touched the address:
			// the alias analysis failed to disambiguate.
			cat = CatAliasFailure
		default:
			cat = CatRest
		}
	}
	a.rep.ByCategory[cat]++
}

// Report returns the accumulated measurements.
func (a *Analyzer) Report() Report { return a.rep }

// Measure runs the program under the analyzer and returns the report.
// Classification is enabled when an oracle and summaries are supplied.
func Measure(prog *ir.Program, o alias.Oracle, mr *modref.ModRef) (Report, string, error) {
	a := NewAnalyzer(prog, o, mr)
	in := interp.New(prog)
	in.SetListener(a.Listener())
	out, err := in.Run()
	return a.Report(), out, err
}
