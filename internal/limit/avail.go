package limit

import (
	"tbaa/internal/alias"
	"tbaa/internal/cfg"
	"tbaa/internal/ir"
	"tbaa/internal/modref"
)

// availFlags records, for a load instruction, the static availability of
// its access path at that point under three dataflows:
//
//	must           — available on every path (intersection meet)
//	may            — available on at least one path (union meet)
//	mustNoMemKills — available on every path when ignoring store/call
//	                 kills (only variable-write kills applied); if this
//	                 holds but must does not, a memory kill was the cause.
type availFlags struct {
	must           bool
	may            bool
	mustNoMemKills bool
}

type availMode int

const (
	modeMust availMode = iota
	modeMay
	modeMustNoMemKills
)

// computeAvailFlags runs the three dataflows over every procedure.
func computeAvailFlags(prog *ir.Program, o alias.Oracle, mr *modref.ModRef) map[*ir.Instr]availFlags {
	flags := make(map[*ir.Instr]availFlags)
	for _, p := range prog.Procs {
		for mode := modeMust; mode <= modeMustNoMemKills; mode++ {
			runAvail(prog, p, o, mr, mode, flags)
		}
	}
	return flags
}

func runAvail(prog *ir.Program, p *ir.Proc, o alias.Oracle, mr *modref.ModRef, mode availMode, flags map[*ir.Instr]availFlags) {
	p.ComputeCFGEdges()
	var classes []*ir.AP
	classOf := func(ap *ir.AP) int {
		for i, c := range classes {
			if c.Equal(ap) {
				return i
			}
		}
		classes = append(classes, ap)
		return len(classes) - 1
	}
	type site struct {
		b   *ir.Block
		idx int
	}
	gen := make(map[site]int)
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpLoad, ir.OpLoadVarField, ir.OpStore, ir.OpStoreVarField:
				if in.AP != nil && !in.AP.IsDope() {
					gen[site{b, i}] = classOf(in.AP)
				}
			}
		}
	}
	n := len(classes)
	if n == 0 {
		return
	}
	at := prog.AddressTakenVars
	kills := func(avail []bool, in *ir.Instr) {
		switch in.Op {
		case ir.OpSetVar:
			for i, c := range classes {
				if avail[i] && modref.VarWriteKills(c, in.Var, at) {
					avail[i] = false
				}
			}
		case ir.OpStore, ir.OpStoreVarField:
			if mode == modeMustNoMemKills {
				// Memory kills ignored; but a store still changes which
				// variables hold what when it writes through a location.
				return
			}
			st := in.AP
			if st == nil {
				for i := range avail {
					avail[i] = false
				}
				return
			}
			isDeref := in.Op == ir.OpStore && in.Sel.Kind == ir.SelDeref
			for i, c := range classes {
				if !avail[i] {
					continue
				}
				if modref.StoreKills(o, c, alias.Site{}, st, alias.Site{}) {
					avail[i] = false
				} else if isDeref && modref.LocStoreKills(c, st.Type().ID(), at) {
					avail[i] = false
				}
			}
		case ir.OpCall, ir.OpMethodCall:
			if mode == modeMustNoMemKills {
				return
			}
			eff := mr.CallEffects(in)
			for i, c := range classes {
				// The limit study stays flow-insensitive (a zero Site):
				// it measures the dynamic upper bound, not the refinement.
				if avail[i] && modref.MayModify(eff, c, alias.Site{}, o, at) {
					avail[i] = false
				}
			}
		}
	}
	union := mode == modeMay
	transfer := func(b *ir.Block, avail []bool, record bool) {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			cls, isGen := gen[site{b, i}]
			if (in.Op == ir.OpLoad || in.Op == ir.OpLoadVarField) && isGen {
				if record {
					f := flags[in]
					switch mode {
					case modeMust:
						f.must = f.must || avail[cls]
					case modeMay:
						f.may = f.may || avail[cls]
					case modeMustNoMemKills:
						f.mustNoMemKills = f.mustNoMemKills || avail[cls]
					}
					flags[in] = f
				}
				avail[cls] = true
				continue
			}
			kills(avail, in)
			if isGen {
				avail[cls] = true
			}
		}
	}
	rpo := cfg.ReversePostorder(p)
	out := make(map[*ir.Block][]bool, len(rpo))
	for _, b := range rpo {
		s := make([]bool, n)
		if b != p.Entry && !union {
			for i := range s {
				s[i] = true
			}
		}
		out[b] = s
	}
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			in := make([]bool, n)
			if b != p.Entry {
				if union {
					for _, pred := range b.Preds {
						if po := out[pred]; po != nil {
							for i := 0; i < n; i++ {
								if po[i] {
									in[i] = true
								}
							}
						}
					}
				} else {
					for i := 0; i < n; i++ {
						in[i] = true
					}
					for _, pred := range b.Preds {
						if po := out[pred]; po != nil {
							for i := 0; i < n; i++ {
								if !po[i] {
									in[i] = false
								}
							}
						}
					}
				}
			}
			transfer(b, in, false)
			if !equalBools(in, out[b]) {
				out[b] = in
				changed = true
			}
		}
	}
	// Final recording pass with converged in-sets.
	for _, b := range rpo {
		in := make([]bool, n)
		if b != p.Entry {
			if union {
				for _, pred := range b.Preds {
					if po := out[pred]; po != nil {
						for i := 0; i < n; i++ {
							if po[i] {
								in[i] = true
							}
						}
					}
				}
			} else {
				for i := 0; i < n; i++ {
					in[i] = true
				}
				for _, pred := range b.Preds {
					if po := out[pred]; po != nil {
						for i := 0; i < n; i++ {
							if !po[i] {
								in[i] = false
							}
						}
					}
				}
			}
		}
		transfer(b, in, true)
	}
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
