package types_test

import (
	"math/rand"
	"testing"

	"tbaa/internal/types"
)

// buildHierarchy makes a random single-inheritance forest of n objects.
func buildHierarchy(r *rand.Rand, u *types.Universe, n int) []*types.Object {
	objs := make([]*types.Object, 0, n)
	for i := 0; i < n; i++ {
		var super *types.Object
		if i > 0 && r.Intn(4) != 0 {
			super = objs[r.Intn(len(objs))]
		}
		o := u.NewObject("", super, r.Intn(5) == 0, "")
		objs = append(objs, o)
	}
	return objs
}

// TestSubtypesConsistentWithIsSubtypeOf: the set-based and chain-based
// subtype queries must agree on random hierarchies.
func TestSubtypesConsistentWithIsSubtypeOf(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		u := types.NewUniverse()
		objs := buildHierarchy(r, u, 12)
		for _, a := range objs {
			subs := map[int]bool{}
			for _, id := range u.Subtypes(a) {
				subs[id] = true
			}
			for _, b := range objs {
				if b.IsSubtypeOf(a) != subs[b.ID()] {
					t.Fatalf("Subtypes and IsSubtypeOf disagree: %d <= %d", b.ID(), a.ID())
				}
			}
		}
	}
}

// TestSubtypesIntersectSymmetric over random hierarchies.
func TestSubtypesIntersectSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		u := types.NewUniverse()
		objs := buildHierarchy(r, u, 10)
		for _, a := range objs {
			for _, b := range objs {
				if u.SubtypesIntersect(a, b) != u.SubtypesIntersect(b, a) {
					t.Fatalf("SubtypesIntersect not symmetric")
				}
			}
		}
	}
}

// TestSubtypesIntersectMeaning: intersection holds iff one is an
// ancestor of the other or they share a descendant — in a
// single-inheritance hierarchy, iff comparable by IsSubtypeOf.
func TestSubtypesIntersectMeaning(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		u := types.NewUniverse()
		objs := buildHierarchy(r, u, 10)
		for _, a := range objs {
			for _, b := range objs {
				want := a.IsSubtypeOf(b) || b.IsSubtypeOf(a)
				if got := u.SubtypesIntersect(a, b); got != want {
					t.Fatalf("SubtypesIntersect(%d,%d)=%v want %v", a.ID(), b.ID(), got, want)
				}
			}
		}
	}
}

func TestAssignableTo(t *testing.T) {
	u := types.NewUniverse()
	parent := u.NewObject("P", nil, false, "")
	child := u.NewObject("C", parent, false, "")
	other := u.NewObject("O", nil, false, "")
	if !u.AssignableTo(child, parent) {
		t.Error("child assignable to parent")
	}
	if u.AssignableTo(parent, child) {
		t.Error("parent not assignable to child (no NARROW)")
	}
	if u.AssignableTo(other, parent) {
		t.Error("unrelated objects not assignable")
	}
	if !u.AssignableTo(u.NullT, parent) || !u.AssignableTo(u.NullT, u.NewRef("", u.IntT)) {
		t.Error("NIL assignable to reference types")
	}
	if u.AssignableTo(u.NullT, u.IntT) {
		t.Error("NIL not assignable to INTEGER")
	}
	if !u.AssignableTo(u.IntT, u.IntT) {
		t.Error("identity assignability")
	}
}

func TestStructuralCanonicalization(t *testing.T) {
	u := types.NewUniverse()
	a1 := u.NewArray("A1", u.IntT)
	a2 := u.NewArray("A2", u.IntT)
	if a1 != a2 {
		t.Error("ARRAY OF INTEGER must canonicalize to one type")
	}
	r1 := u.NewRef("", u.IntT)
	r2 := u.NewRef("", u.IntT)
	if r1 != r2 {
		t.Error("REF INTEGER must canonicalize")
	}
	rc := u.NewRef("", u.CharT)
	if r1 == rc {
		t.Error("REF INTEGER and REF CHAR must differ")
	}
	// Nested: REF ARRAY OF INTEGER canonicalizes through the chain.
	ra1 := u.NewRef("", u.NewArray("", u.IntT))
	ra2 := u.NewRef("", u.NewArray("", u.IntT))
	if ra1 != ra2 {
		t.Error("nested structural types must canonicalize")
	}
}

func TestFieldAndMethodLookup(t *testing.T) {
	u := types.NewUniverse()
	base := u.NewObject("B", nil, false, "")
	base.Fields = append(base.Fields, &types.Field{Name: "x", Type: u.IntT})
	base.Methods = append(base.Methods, &types.Method{Name: "m", Default: "BM", Result: u.VoidT})
	kid := u.NewObject("K", base, false, "")
	kid.Fields = append(kid.Fields, &types.Field{Name: "y", Type: u.IntT})
	kid.Overrides["m"] = "KM"
	grand := u.NewObject("G", kid, false, "")

	if base.FieldNamed("x") == nil || kid.FieldNamed("x") == nil || grand.FieldNamed("y") == nil {
		t.Error("field lookup through the chain failed")
	}
	if base.FieldNamed("y") != nil {
		t.Error("supertype must not see subtype fields")
	}
	if got := len(grand.AllFields()); got != 2 {
		t.Errorf("AllFields(G) = %d, want 2", got)
	}
	if base.Implementation("m") != "BM" {
		t.Error("base impl")
	}
	if kid.Implementation("m") != "KM" || grand.Implementation("m") != "KM" {
		t.Error("override not inherited")
	}
	if grand.MethodNamed("m") == nil {
		t.Error("method slot lookup through chain")
	}
	if base.Implementation("nope") != "" {
		t.Error("unknown method has no impl")
	}
}

func TestIDsDense(t *testing.T) {
	u := types.NewUniverse()
	n0 := u.NumTypes()
	o := u.NewObject("X", nil, false, "")
	if o.ID() != n0 {
		t.Errorf("IDs must be dense: got %d want %d", o.ID(), n0)
	}
	if u.ByID(o.ID()) != o {
		t.Error("ByID roundtrip")
	}
	for i, typ := range u.All() {
		if typ.ID() != i {
			t.Errorf("All()[%d].ID() = %d", i, typ.ID())
		}
	}
}

func TestReferenceTypes(t *testing.T) {
	u := types.NewUniverse()
	u.NewObject("O", nil, false, "")
	u.NewArray("", u.IntT)
	u.NewRef("", u.IntT)
	u.NewRecord("R", nil)
	refs := u.ReferenceTypes()
	for _, r := range refs {
		if !r.IsReference() {
			t.Errorf("%s is not a reference", r)
		}
		if b, ok := r.(*types.Basic); ok && b.Kind == types.Null {
			t.Error("ReferenceTypes must exclude NULL")
		}
	}
	if len(refs) != 3 {
		t.Errorf("expected 3 reference types, got %d", len(refs))
	}
}

func TestComparable(t *testing.T) {
	u := types.NewUniverse()
	p := u.NewObject("P", nil, false, "")
	c := u.NewObject("C", p, false, "")
	o := u.NewObject("O", nil, false, "")
	if !u.Comparable(p, c) {
		t.Error("related objects comparable")
	}
	if u.Comparable(c, o) {
		t.Error("unrelated objects not comparable")
	}
	if !u.Comparable(u.IntT, u.IntT) {
		t.Error("scalars comparable with themselves")
	}
}

func TestStringRendering(t *testing.T) {
	u := types.NewUniverse()
	if u.IntT.String() != "INTEGER" || u.BoolT.String() != "BOOLEAN" ||
		u.CharT.String() != "CHAR" || u.NullT.String() != "NULL" {
		t.Error("basic type names")
	}
	a := u.NewArray("", u.IntT)
	if a.String() != "ARRAY OF INTEGER" {
		t.Errorf("array rendering: %q", a)
	}
	r := u.NewRef("", a)
	if r.String() != "REF ARRAY OF INTEGER" {
		t.Errorf("ref rendering: %q", r)
	}
	rec := u.NewRecord("", []*types.Field{{Name: "a", Type: u.IntT}})
	if rec.String() == "" {
		t.Error("record rendering")
	}
}
