package types

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	var b Bitset
	if b.Has(0) || b.Count() != 0 || len(b.IDs()) != 0 {
		t.Fatal("zero-value Bitset must be empty")
	}
	b.Add(3)
	b.Add(64)
	b.Add(200)
	b.Add(3) // idempotent
	if !b.Has(3) || !b.Has(64) || !b.Has(200) || b.Has(4) || b.Has(10_000) {
		t.Errorf("membership wrong: %v", b.IDs())
	}
	if got := b.IDs(); !reflect.DeepEqual(got, []int{3, 64, 200}) {
		t.Errorf("IDs() = %v", got)
	}
	if b.Count() != 3 {
		t.Errorf("Count() = %d", b.Count())
	}
}

func TestBitsetUnionIntersect(t *testing.T) {
	a := NewBitset(10)
	a.Add(1)
	a.Add(9)
	var c Bitset // shorter than a
	c.Add(1)
	if !a.Intersects(c) || !c.Intersects(a) {
		t.Error("Intersects must be symmetric across lengths")
	}
	d := NewBitset(300)
	d.Add(299)
	if a.Intersects(d) || d.Intersects(a) {
		t.Error("disjoint sets intersect")
	}
	u := a.Clone()
	u.Union(d)
	if got := u.IDs(); !reflect.DeepEqual(got, []int{1, 9, 299}) {
		t.Errorf("Union IDs = %v", got)
	}
	if got := a.IDs(); !reflect.DeepEqual(got, []int{1, 9}) {
		t.Errorf("Clone did not isolate the receiver: %v", got)
	}
	if got := u.Intersect(a).IDs(); !reflect.DeepEqual(got, []int{1, 9}) {
		t.Errorf("Intersect IDs = %v", got)
	}
	if got := a.Intersect(d).Count(); got != 0 {
		t.Errorf("Intersect of disjoint sets has %d elements", got)
	}
}

// TestBitsetAgainstMapModel cross-checks every operation against a
// map[int]bool reference model under random operations.
func TestBitsetAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var b Bitset
		m := map[int]bool{}
		for op := 0; op < 50; op++ {
			id := rng.Intn(400)
			b.Add(id)
			m[id] = true
		}
		if b.Count() != len(m) {
			t.Fatalf("Count %d != model %d", b.Count(), len(m))
		}
		for id := 0; id < 400; id++ {
			if b.Has(id) != m[id] {
				t.Fatalf("Has(%d) = %v, model %v", id, b.Has(id), m[id])
			}
		}
		var c Bitset
		mc := map[int]bool{}
		for op := 0; op < 10; op++ {
			id := rng.Intn(400)
			c.Add(id)
			mc[id] = true
		}
		wantInter := false
		for id := range mc {
			if m[id] {
				wantInter = true
			}
		}
		if b.Intersects(c) != wantInter {
			t.Fatalf("Intersects = %v, model %v", b.Intersects(c), wantInter)
		}
	}
}

func TestSubtypeBitsetMatchesSubtypes(t *testing.T) {
	u := NewUniverse()
	root := u.NewObject("Root", nil, false, "")
	mid := u.NewObject("Mid", root, false, "")
	leaf := u.NewObject("Leaf", mid, false, "")
	other := u.NewObject("Other", root, false, "")
	u.NewRef("RP", root)
	u.Precompute()
	for _, tt := range u.All() {
		bs := u.SubtypeBitset(tt)
		if got, want := bs.IDs(), u.Subtypes(tt); !reflect.DeepEqual(got, want) {
			t.Errorf("SubtypeBitset(%s) = %v, Subtypes = %v", tt, got, want)
		}
	}
	if !u.SubtypesIntersect(root, leaf) || !u.SubtypesIntersect(leaf, root) {
		t.Error("root and leaf cones must intersect")
	}
	if u.SubtypesIntersect(leaf, other) {
		t.Error("sibling cones must not intersect")
	}
	// Registering a new subtype must invalidate the cached cones.
	u.NewObject("Leaf2", other, false, "")
	if len(u.SubtypeBitset(other).IDs()) != 2 {
		t.Error("cone cache not invalidated by NewObject")
	}
}
