package types

import "math/bits"

// Bitset is a dense set of type IDs, one bit per ID. The zero value is
// the empty set. Sets over the same Universe may have different word
// lengths (a set built early never mentions later-registered types);
// every operation treats missing high words as zero.
type Bitset []uint64

// NewBitset returns an empty set with capacity for IDs in [0, n).
func NewBitset(n int) Bitset {
	return make(Bitset, (n+63)/64)
}

// Add inserts id, growing the set if needed.
func (b *Bitset) Add(id int) {
	w := id / 64
	for w >= len(*b) {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << (uint(id) % 64)
}

// Has reports whether id is in the set.
func (b Bitset) Has(id int) bool {
	w := id / 64
	return w < len(b) && b[w]&(1<<(uint(id)%64)) != 0
}

// Intersects reports whether b and c share an element — the hot
// operation behind every SMTypeRefs may-alias query.
func (b Bitset) Intersects(c Bitset) bool {
	n := len(b)
	if len(c) < n {
		n = len(c)
	}
	for i := 0; i < n; i++ {
		if b[i]&c[i] != 0 {
			return true
		}
	}
	return false
}

// Union adds every element of c to b, growing b if needed.
func (b *Bitset) Union(c Bitset) {
	for len(*b) < len(c) {
		*b = append(*b, 0)
	}
	for i, w := range c {
		(*b)[i] |= w
	}
}

// Intersect returns a new set holding b ∩ c.
func (b Bitset) Intersect(c Bitset) Bitset {
	n := len(b)
	if len(c) < n {
		n = len(c)
	}
	out := make(Bitset, n)
	for i := 0; i < n; i++ {
		out[i] = b[i] & c[i]
	}
	return out
}

// Clone returns an independent copy of b.
func (b Bitset) Clone() Bitset {
	out := make(Bitset, len(b))
	copy(out, b)
	return out
}

// Equal reports whether b and c hold the same elements. Missing high
// words count as zero, so sets of different word lengths compare by
// content.
func (b Bitset) Equal(c Bitset) bool {
	long, short := b, c
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of elements.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// IDs returns the elements in ascending order.
func (b Bitset) IDs() []int {
	ids := make([]int, 0, b.Count())
	for i, w := range b {
		for w != 0 {
			ids = append(ids, i*64+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return ids
}
