// Package types implements the MiniM3 type system: the builtin scalars,
// single-inheritance object types, traced references, open arrays with
// dope vectors, and records.
//
// The alias analyses in package alias consume exactly two things from
// here: the subtype relation over declared types (Subtypes) and
// assignability (AssignableTo), which determines where SMTypeRefs merges.
package types

import (
	"fmt"
	"sort"
	"strings"
)

// Type is a MiniM3 type.
type Type interface {
	// ID is the dense universe-assigned identifier, unique per canonical type.
	ID() int
	// String renders the type for diagnostics.
	String() string
	// IsReference reports whether values of the type are traced references
	// (objects, REF T, open arrays, NULL). Only reference-typed access
	// paths participate in alias analysis.
	IsReference() bool
	setID(int)
}

type typ struct{ id int }

func (t *typ) ID() int     { return t.id }
func (t *typ) setID(i int) { t.id = i }

// BasicKind enumerates the builtin scalar types.
type BasicKind int

// The builtin scalar kinds. Null is the type of NIL, a subtype of every
// reference type.
const (
	Integer BasicKind = iota
	Boolean
	Char
	Text
	Null
	Void // result "type" of proper procedures
)

// Basic is a builtin scalar type.
type Basic struct {
	typ
	Kind BasicKind
}

func (b *Basic) String() string {
	switch b.Kind {
	case Integer:
		return "INTEGER"
	case Boolean:
		return "BOOLEAN"
	case Char:
		return "CHAR"
	case Text:
		return "TEXT"
	case Null:
		return "NULL"
	case Void:
		return "VOID"
	}
	return fmt.Sprintf("BASIC(%d)", int(b.Kind))
}

// IsReference is true only for Null among the basics: MiniM3 TEXT is an
// immutable scalar (unlike Modula-3), so no stores flow through it and it
// stays out of the alias domain.
func (b *Basic) IsReference() bool { return b.Kind == Null }

// Field is a named field of an object or record.
type Field struct {
	Name string
	Type Type
}

// Method is a method slot of an object type. Default is the name of the
// procedure implementing it at this level ("" if abstract here).
type Method struct {
	Name    string
	Params  []Type
	Modes   []ParamMode
	Result  Type
	Default string
}

// ParamMode mirrors ast.ParamMode without importing it.
type ParamMode int

// Parameter passing modes.
const (
	ValueMode ParamMode = iota
	VarMode
	ReadonlyMode
)

// Object is a declared object type. Object values are implicit references.
type Object struct {
	typ
	Name      string
	Super     *Object // nil for root types
	Branded   bool
	Brand     string
	Fields    []*Field  // fields declared at this level
	Methods   []*Method // methods declared at this level
	Overrides map[string]string
}

func (o *Object) String() string    { return o.Name }
func (o *Object) IsReference() bool { return true }

// AllFields returns the fields of o including inherited ones, supertype
// fields first.
func (o *Object) AllFields() []*Field {
	var fs []*Field
	if o.Super != nil {
		fs = o.Super.AllFields()
	}
	return append(fs, o.Fields...)
}

// FieldNamed returns the field with the given name, searching supertypes,
// or nil.
func (o *Object) FieldNamed(name string) *Field {
	for t := o; t != nil; t = t.Super {
		for _, f := range t.Fields {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// MethodNamed returns the method slot with the given name, searching
// supertypes, or nil.
func (o *Object) MethodNamed(name string) *Method {
	for t := o; t != nil; t = t.Super {
		for _, m := range t.Methods {
			if m.Name == name {
				return m
			}
		}
	}
	return nil
}

// Implementation returns the name of the procedure implementing method m
// when the dynamic type is exactly o, following overrides up the chain.
// It returns "" if the method is abstract at o.
func (o *Object) Implementation(method string) string {
	for t := o; t != nil; t = t.Super {
		if t.Overrides != nil {
			if proc, ok := t.Overrides[method]; ok {
				return proc
			}
		}
		for _, m := range t.Methods {
			if m.Name == method && m.Default != "" {
				return m.Default
			}
		}
	}
	return ""
}

// IsSubtypeOf reports whether o <: p in the object hierarchy.
func (o *Object) IsSubtypeOf(p *Object) bool {
	for t := o; t != nil; t = t.Super {
		if t == p {
			return true
		}
	}
	return false
}

// Record is a record (value) type.
type Record struct {
	typ
	Name   string
	Fields []*Field
}

func (r *Record) String() string {
	if r.Name != "" {
		return r.Name
	}
	var b strings.Builder
	b.WriteString("RECORD ")
	for i, f := range r.Fields {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s: %s", f.Name, f.Type)
	}
	b.WriteString(" END")
	return b.String()
}

func (r *Record) IsReference() bool { return false }

// FieldNamed returns the record field with the given name, or nil.
func (r *Record) FieldNamed(name string) *Field {
	for _, f := range r.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Array is an open array type (ARRAY OF Elem). Values are references to a
// heap dope vector {length, elements}.
type Array struct {
	typ
	Name string
	Elem Type
}

func (a *Array) String() string {
	if a.Name != "" {
		return a.Name
	}
	return "ARRAY OF " + a.Elem.String()
}

func (a *Array) IsReference() bool { return true }

// Ref is REF Elem.
type Ref struct {
	typ
	Name string
	Elem Type
}

func (r *Ref) String() string {
	if r.Name != "" {
		return r.Name
	}
	return "REF " + r.Elem.String()
}

func (r *Ref) IsReference() bool { return true }

// Proc is a procedure type (used for signatures; not first-class in MiniM3).
type Proc struct {
	typ
	Params []Type
	Modes  []ParamMode
	Result Type // Void for proper procedures
}

func (p *Proc) String() string {
	var b strings.Builder
	b.WriteString("PROCEDURE(")
	for i, t := range p.Params {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(t.String())
	}
	b.WriteString(")")
	if p.Result != nil {
		if bk, ok := p.Result.(*Basic); !ok || bk.Kind != Void {
			b.WriteString(": " + p.Result.String())
		}
	}
	return b.String()
}

func (p *Proc) IsReference() bool { return false }

// ---------------------------------------------------------------------------
// Universe

// Universe owns every canonical type in a program. It assigns dense IDs,
// canonicalizes structurally equivalent REF/ARRAY types, and answers
// subtype queries.
type Universe struct {
	all      []Type
	IntT     *Basic
	BoolT    *Basic
	CharT    *Basic
	TextT    *Basic
	NullT    *Basic
	VoidT    *Basic
	refCanon map[string]Type // structural key -> canonical REF/ARRAY
	children map[*Object][]*Object
	subtypes map[int][]int  // type ID -> sorted IDs of subtypes incl. self
	subtBits map[int]Bitset // type ID -> subtype IDs as a dense bitset
}

// NewUniverse returns a universe populated with the builtin types.
func NewUniverse() *Universe {
	u := &Universe{
		refCanon: make(map[string]Type),
		children: make(map[*Object][]*Object),
		subtypes: make(map[int][]int),
		subtBits: make(map[int]Bitset),
	}
	u.IntT = &Basic{Kind: Integer}
	u.BoolT = &Basic{Kind: Boolean}
	u.CharT = &Basic{Kind: Char}
	u.TextT = &Basic{Kind: Text}
	u.NullT = &Basic{Kind: Null}
	u.VoidT = &Basic{Kind: Void}
	for _, t := range []Type{u.IntT, u.BoolT, u.CharT, u.TextT, u.NullT, u.VoidT} {
		u.register(t)
	}
	return u
}

func (u *Universe) register(t Type) Type {
	t.setID(len(u.all))
	u.all = append(u.all, t)
	return t
}

// NumTypes returns the number of canonical types registered.
func (u *Universe) NumTypes() int { return len(u.all) }

// ByID returns the type with the given dense ID.
func (u *Universe) ByID(id int) Type { return u.all[id] }

// All returns all canonical types in registration order. The slice is
// shared; callers must not modify it.
func (u *Universe) All() []Type { return u.all }

// NewObject registers a new object type with the given supertype (nil for
// a root object type).
func (u *Universe) NewObject(name string, super *Object, branded bool, brand string) *Object {
	o := &Object{Name: name, Super: super, Branded: branded, Brand: brand,
		Overrides: make(map[string]string)}
	u.register(o)
	if super != nil {
		u.children[super] = append(u.children[super], o)
	}
	u.invalidateSubtypes()
	return o
}

// invalidateSubtypes drops the cached subtype sets after a hierarchy
// change.
func (u *Universe) invalidateSubtypes() {
	u.subtypes = make(map[int][]int)
	u.subtBits = make(map[int]Bitset)
}

// AddChild records that child's supertype is parent. Used when the parent
// was unknown at NewObject time (forward references during checking).
func (u *Universe) AddChild(parent, child *Object) {
	for _, c := range u.children[parent] {
		if c == child {
			return
		}
	}
	u.children[parent] = append(u.children[parent], child)
	u.invalidateSubtypes()
}

// NewRecord registers a record type.
func (u *Universe) NewRecord(name string, fields []*Field) *Record {
	r := &Record{Name: name, Fields: fields}
	u.register(r)
	return r
}

// structuralKey builds a canonicalization key for REF/ARRAY types. Two
// REF T (or ARRAY OF T) type expressions denote the same type when their
// element types are the same canonical type — Modula-3 structural
// equivalence restricted to the type constructors MiniM3 has.
func structuralKey(kind string, elem Type) string {
	return fmt.Sprintf("%s|%d", kind, elem.ID())
}

// NewArray returns the canonical open array type over elem.
func (u *Universe) NewArray(name string, elem Type) *Array {
	key := structuralKey("array", elem)
	if t, ok := u.refCanon[key]; ok {
		a := t.(*Array)
		if a.Name == "" {
			a.Name = name
		}
		return a
	}
	a := &Array{Name: name, Elem: elem}
	u.register(a)
	u.refCanon[key] = a
	return a
}

// NewRef returns the canonical REF type over elem.
func (u *Universe) NewRef(name string, elem Type) *Ref {
	key := structuralKey("ref", elem)
	if t, ok := u.refCanon[key]; ok {
		r := t.(*Ref)
		if r.Name == "" {
			r.Name = name
		}
		return r
	}
	r := &Ref{Name: name, Elem: elem}
	u.register(r)
	u.refCanon[key] = r
	return r
}

// NewProc registers a procedure signature type.
func (u *Universe) NewProc(params []Type, modes []ParamMode, result Type) *Proc {
	p := &Proc{Params: params, Modes: modes, Result: result}
	u.register(p)
	return p
}

// Subtypes returns the IDs of all subtypes of t, including t itself,
// sorted ascending. For non-object types the set is {t}. For reference
// types it also includes Null (NIL inhabits every reference type).
func (u *Universe) Subtypes(t Type) []int {
	if s, ok := u.subtypes[t.ID()]; ok {
		return s
	}
	var ids []int
	switch t := t.(type) {
	case *Object:
		var walk func(o *Object)
		walk = func(o *Object) {
			ids = append(ids, o.ID())
			for _, c := range u.children[o] {
				walk(c)
			}
		}
		walk(t)
	default:
		ids = []int{t.ID()}
	}
	sort.Ints(ids)
	u.subtypes[t.ID()] = ids
	return ids
}

// SubtypeBitset returns Subtypes(t) as a dense bitset, cached per type.
func (u *Universe) SubtypeBitset(t Type) Bitset {
	if b, ok := u.subtBits[t.ID()]; ok {
		return b
	}
	b := NewBitset(len(u.all))
	for _, id := range u.Subtypes(t) {
		b.Add(id)
	}
	u.subtBits[t.ID()] = b
	return b
}

// SubtypesIntersect reports whether Subtypes(a) ∩ Subtypes(b) ≠ ∅ —
// the TypeDecl may-alias test of the paper. NIL compatibility is handled
// separately by callers because an AP never has static type NULL alone.
func (u *Universe) SubtypesIntersect(a, b Type) bool {
	if a.ID() == b.ID() {
		return true
	}
	return u.SubtypeBitset(a).Intersects(u.SubtypeBitset(b))
}

// Precompute fills the subtype caches for every registered type. Once it
// has run — and as long as no further types are registered — every query
// method on the Universe is a pure read, so a compile cache can share
// one Universe across concurrently-analyzed programs.
func (u *Universe) Precompute() {
	for _, t := range u.all {
		u.SubtypeBitset(t)
	}
}

// AssignableTo reports whether a value of type src may be assigned to a
// location of type dst. This drives both the type checker and the
// "implicit and explicit pointer assignments" SMTypeRefs merges over.
func (u *Universe) AssignableTo(src, dst Type) bool {
	if src.ID() == dst.ID() {
		return true
	}
	if sb, ok := src.(*Basic); ok && sb.Kind == Null {
		return dst.IsReference()
	}
	so, sok := src.(*Object)
	do, dok := dst.(*Object)
	if sok && dok {
		// Object assignment is legal both down (subtype to supertype,
		// always safe) and — in full Modula-3 with NARROW — up.
		// MiniM3 permits only widening assignment (src <: dst).
		return so.IsSubtypeOf(do)
	}
	return false
}

// Comparable reports whether = / # is defined between the two types.
func (u *Universe) Comparable(a, b Type) bool {
	if a.ID() == b.ID() {
		return true
	}
	if a.IsReference() && b.IsReference() {
		return u.AssignableTo(a, b) || u.AssignableTo(b, a)
	}
	return false
}

// ObjectTypes returns all object types in registration order.
func (u *Universe) ObjectTypes() []*Object {
	var os []*Object
	for _, t := range u.all {
		if o, ok := t.(*Object); ok {
			os = append(os, o)
		}
	}
	return os
}

// ReferenceTypes returns all reference types (objects, refs, arrays) in
// registration order; these are the types SMTypeRefs partitions.
func (u *Universe) ReferenceTypes() []Type {
	var ts []Type
	for _, t := range u.all {
		if t.IsReference() {
			if b, ok := t.(*Basic); ok && b.Kind == Null {
				continue
			}
			ts = append(ts, t)
		}
	}
	return ts
}
