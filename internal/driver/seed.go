package driver

import (
	"errors"

	"tbaa/internal/alias"
	"tbaa/internal/ir"
	"tbaa/internal/modref"
	"tbaa/internal/types"
)

// SeedPassEnv wraps prog with analyses decoded from a persisted
// artifact instead of building them: the warm-start counterpart of
// NewPassEnv + Oracle()/ModRef(). The oracle (and, interprocedurally,
// the summaries) are installed as already built, and the environment's
// build clock is pinned to the program's current mutation clock, so a
// later Invalidate + edit takes the ordinary incremental path — the
// decoded generation seeds alias.Update exactly as a built one would,
// while modref.Update (which needs construction-only state a snapshot
// does not carry) falls back to a full, always-exact ComputeWith.
//
// Under an interprocedural configuration mr must be non-nil; the
// oracle's flow-sensitive call-kill rule is wired to it before the
// environment is handed out, mirroring Oracle().
func SeedPassEnv(prog *ir.Program, opts alias.Options, oracle *alias.Analysis, mr *modref.ModRef) (*PassEnv, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if oracle == nil {
		return nil, errors.New("driver: seeding requires a decoded oracle")
	}
	e := &PassEnv{
		Prog:       prog,
		Opts:       opts.Normalize(),
		oracle:     oracle,
		mr:         mr,
		builtClock: prog.MutClock(),
	}
	if e.Opts.Interprocedural {
		if mr == nil {
			return nil, errors.New("driver: interprocedural seeding requires decoded mod-ref summaries")
		}
		oracle.SetCallSummaries(ipSummaries{mr: mr, o: oracle, at: prog.AddressTakenVars})
	}
	return e, nil
}

// RefineFromOracle adapts the oracle's TypeRefsTable to the mod-ref
// dispatch-narrowing callback — the exported form of refineFromOracle,
// for the artifact warm-start path, which must hand a decoded ModRef a
// Refine closure over the decoded oracle.
func RefineFromOracle(a *alias.Analysis) func(o *types.Object) []int {
	return refineFromOracle(a)
}
