package driver

import (
	"fmt"

	"tbaa/internal/alias"
	"tbaa/internal/ir"
	"tbaa/internal/modref"
	"tbaa/internal/opt"
	"tbaa/internal/types"
)

// PassResult reports what one optimization pass did. Fields irrelevant
// to a pass stay zero (e.g. RLE never devirtualizes).
type PassResult struct {
	// Pass is the name of the pass that produced this result.
	Pass string
	// Devirtualized and Inlined count method-invocation resolution work.
	Devirtualized int
	Inlined       int
	// Hoisted and Eliminated count loads removed by RLE (and, for PRE,
	// Eliminated counts the post-insertion CSE removals).
	Hoisted    int
	Eliminated int
	// Inserted counts PRE compensation loads.
	Inserted int
	// PerProc breaks load removals down by procedure name.
	PerProc map[string]int
}

// Removed returns the total statically removed loads (the Table 6 metric).
func (r PassResult) Removed() int { return r.Hoisted + r.Eliminated }

// Pass is one step of the optimization pipeline. Passes mutate the
// program in the PassEnv; passes that change program structure must
// call Invalidate so later passes see rebuilt analysis facts.
type Pass interface {
	Name() string
	Run(env *PassEnv) (PassResult, error)
}

// PassEnv carries the program being optimized plus lazily built,
// memoized analysis state shared by the passes: the alias oracle and
// the mod-ref summaries. Building both lazily keeps configurations that
// never query them (e.g. an unoptimized baseline) free of their cost.
type PassEnv struct {
	Prog   *ir.Program
	Opts   alias.Options
	oracle *alias.Analysis
	mr     *modref.ModRef

	// builtClock is the program mutation clock (ir.Program.MutClock) the
	// current handles are consistent with, advanced whenever a handle is
	// (re)built. Mutations that are not followed by Invalidate — RLE and
	// PRE splice instructions that reuse interned access paths and drop
	// their own flow facts — leave the handles exact by contract, so the
	// clock of the latest build stands for both.
	builtClock uint64
	// prevOracle/prevMR/prevClock stash the generation retired by the
	// last Invalidate: the seed of the incremental rebuild. prevClock is
	// the mutation clock that generation was consistent with, so
	// Prog.DirtySince(prevClock) is exactly the set of procedures it has
	// not seen.
	prevOracle *alias.Analysis
	prevMR     *modref.ModRef
	prevClock  uint64
}

// NewPassEnv validates opts and wraps prog for a pass pipeline. Options
// are normalized, so Opts reflects the effective level (FlowSensitive
// on SMFieldTypeRefs reads back as LevelFSTypeRefs).
func NewPassEnv(prog *ir.Program, opts alias.Options) (*PassEnv, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &PassEnv{Prog: prog, Opts: opts.Normalize()}, nil
}

// Oracle returns the alias analysis for the current program state,
// building it on first use. Under WithInterprocedural configurations
// the interprocedural mod-ref summaries are wired into the oracle's
// flow-sensitive call-kill rule before the oracle is handed out, so
// site-aware answers never depend on whether ModRef was forced first.
//
// After an Invalidate the build is incremental when it can be: the
// retired generation plus the set of procedures mutated since it was
// built seed alias.Update (and, interprocedurally, modref.Update), and
// only when the delta preconditions fail is the analysis rebuilt from
// scratch. Both roads produce identical verdicts.
func (e *PassEnv) Oracle() *alias.Analysis {
	if e.oracle == nil {
		if !e.updateAnalyses() {
			e.oracle = alias.New(e.Prog, e.Opts)
			if e.Opts.Interprocedural {
				e.oracle.SetCallSummaries(ipSummaries{
					mr: e.ModRef(),
					o:  e.oracle,
					at: e.Prog.AddressTakenVars,
				})
			}
		}
		e.builtClock = e.Prog.MutClock()
	}
	return e.oracle
}

// updateAnalyses attempts the incremental rebuild from the stashed
// generation. On success it installs the new oracle (and, under
// WithInterprocedural, the new summaries, invalidating the flow facts
// of every procedure whose callee summaries changed) and reports true.
// Any failed precondition reports false: the caller builds from
// scratch, which is always exact.
func (e *PassEnv) updateAnalyses() bool {
	if e.prevOracle == nil {
		return false
	}
	// An empty dirty set after an Invalidate means either nothing
	// changed or a mutation went unstamped; the full rebuild is the
	// only answer that is right in both cases.
	dirty := e.Prog.DirtySince(e.prevClock)
	if len(dirty) == 0 {
		return false
	}
	o := alias.Update(e.prevOracle, dirty)
	if o == nil {
		return false
	}
	if e.Opts.Interprocedural {
		cfg := modref.Config{
			RTA:       true,
			OpenWorld: e.Opts.OpenWorld,
			Refine:    refineFromOracle(o),
		}
		mr, consumers := modref.Update(e.prevMR, cfg, dirty)
		if mr == nil {
			// The alias delta stands — nothing in it depends on the
			// summaries — but the summaries must be rebuilt from scratch,
			// and every carried-over flow fact consulted the old ones
			// through CallEffects, so drop them all.
			mr = modref.ComputeWith(e.Prog, cfg)
			for _, p := range e.Prog.Procs {
				alias.InvalidateFlow(o, p)
			}
		} else {
			for _, p := range consumers {
				alias.InvalidateFlow(o, p)
			}
		}
		e.mr = mr
		o.SetCallSummaries(ipSummaries{mr: mr, o: o, at: e.Prog.AddressTakenVars})
	}
	e.oracle = o
	return true
}

// ModRef returns the mod-ref summaries, computing them on first use:
// CHA-cone summaries by default, RTA-call-graph SCC summaries (refined
// by the oracle's TypeRefsTable) under WithInterprocedural. Like
// Oracle, the build after an Invalidate is incremental when the delta
// preconditions hold.
func (e *PassEnv) ModRef() *modref.ModRef {
	if e.mr != nil {
		return e.mr
	}
	if e.Opts.Interprocedural {
		o := e.Oracle()
		// Building the oracle wires the summaries in, constructing them
		// as a side effect — don't compute a second, diverging instance.
		if e.mr != nil {
			return e.mr
		}
		e.mr = modref.ComputeWith(e.Prog, modref.Config{
			RTA:       true,
			OpenWorld: e.Opts.OpenWorld,
			Refine:    refineFromOracle(o),
		})
	} else {
		if e.prevMR != nil {
			if dirty := e.Prog.DirtySince(e.prevClock); len(dirty) > 0 {
				// CHA flow facts never consult the summaries (no call
				// summaries are wired at these levels), so the consumers
				// need no flow invalidation here.
				if mr, _ := modref.Update(e.prevMR, modref.Config{}, dirty); mr != nil {
					e.mr = mr
				}
			}
		}
		if e.mr == nil {
			e.mr = modref.Compute(e.Prog)
		}
	}
	e.builtClock = e.Prog.MutClock()
	return e.mr
}

// ipSummaries adapts the mod-ref summaries to the alias package's
// CallSummaries interface (alias cannot import modref — modref is its
// client). All queries are context-free (zero Sites): the flow layer
// consults them mid-solve, where a site-aware query would re-enter the
// solver.
type ipSummaries struct {
	mr *modref.ModRef
	o  alias.Oracle
	at map[*ir.Var]bool
}

func (s ipSummaries) CallKillsPath(call *ir.Instr, ap *ir.AP) bool {
	return modref.MayModify(s.mr.CallEffects(call), ap, alias.Site{}, s.o, s.at)
}

func (s ipSummaries) CallMayRebind(call *ir.Instr, v *ir.Var) bool {
	return s.mr.CallEffects(call).MayRebind(v, s.at)
}

// Invalidate retires the memoized analyses after a structural change
// (inlining creates new code); the next Oracle/ModRef call rebuilds.
//
// The retired generation is not discarded: it seeds an incremental
// rebuild. The next build asks the program which procedures were
// mutated since the generation was built (the per-procedure stamps
// written by ir.Program.MarkMutated) and re-analyzes only those — the
// alias layer re-interns and re-partitions only the dirty bodies'
// access paths and drops only their flow facts, the mod-ref layer
// re-summarizes only the call-graph components the dirty bodies can
// influence. When the delta preconditions fail — the dirty set is
// empty (a mutation may have gone unstamped), a global fact table
// grew, the RTA instantiated set changed — the rebuild is from
// scratch instead. Both roads yield byte-identical verdicts, so a bug
// in dirty tracking can only cost performance (an unnecessary full
// rebuild or an oversized delta), never soundness.
func (e *PassEnv) Invalidate() {
	if e.oracle != nil || e.mr != nil {
		e.prevOracle, e.prevMR, e.prevClock = e.oracle, e.mr, e.builtClock
	}
	e.oracle, e.mr = nil, nil
}

// RunPasses runs the pipeline in order and collects per-pass results.
// It stops at the first failing pass.
func RunPasses(env *PassEnv, passes ...Pass) ([]PassResult, error) {
	results := make([]PassResult, 0, len(passes))
	for _, p := range passes {
		r, err := p.Run(env)
		if err != nil {
			return results, fmt.Errorf("pass %s: %w", p.Name(), err)
		}
		r.Pass = p.Name()
		results = append(results, r)
	}
	return results, nil
}

// RLEPass is redundant load elimination (Section 3.4.1): loop-invariant
// load motion plus available-load CSE, killed by the alias oracle.
type RLEPass struct{}

// Name implements Pass.
func (RLEPass) Name() string { return "rle" }

// Run implements Pass.
func (RLEPass) Run(e *PassEnv) (PassResult, error) {
	res := opt.RLE(e.Prog, e.Oracle(), e.ModRef())
	return PassResult{Hoisted: res.Hoisted, Eliminated: res.Eliminated, PerProc: res.PerProc}, nil
}

// PREPass is partial redundancy elimination of memory expressions (the
// paper's future work); it normally runs after RLEPass.
type PREPass struct{}

// Name implements Pass.
func (PREPass) Name() string { return "pre" }

// Run implements Pass.
func (PREPass) Run(e *PassEnv) (PassResult, error) {
	res := opt.PRE(e.Prog, e.Oracle(), e.ModRef())
	return PassResult{Inserted: res.Inserted, Eliminated: res.Eliminated}, nil
}

// DevirtPass resolves method invocations alone: devirtualization
// refined by the oracle's TypeRefsTable (Section 3.7), without the
// inlining half of MinvInlinePass. It reports its work in Devirtualized
// and invalidates the analysis state — rewritten receivers change the
// dispatch sets mod-ref summaries are built from.
type DevirtPass struct{}

// Name implements Pass.
func (DevirtPass) Name() string { return "devirt" }

// Run implements Pass.
func (DevirtPass) Run(e *PassEnv) (PassResult, error) {
	nd := opt.Devirtualize(e.Prog, refineFromOracle(e.Oracle()))
	if nd > 0 {
		e.Invalidate() // zero resolutions leave the program untouched
	}
	return PassResult{Devirtualized: nd}, nil
}

// refineFromOracle adapts the oracle's TypeRefsTable to Devirtualize's
// receiver-narrowing callback.
func refineFromOracle(a *alias.Analysis) func(o *types.Object) []int {
	return func(o *types.Object) []int {
		refs := a.TypeRefs(o)
		if refs == nil {
			return nil
		}
		return refs.IDs()
	}
}

// MinvInlinePass resolves method invocations (devirtualization refined
// by the oracle's TypeRefsTable) and inlines small procedures (Section
// 3.7) as one fused pipeline step. It invalidates the analysis state:
// inlining creates new code (including freshly address-taken cloned
// locals), so the next Oracle() call rebuilds the whole Analysis — the
// MayAlias memo, the field-indexed AddressTaken owner tables, and the
// TypeRefsTable — and the next ModRef() recomputes summaries. Dropping
// just the handles is enough because both are built from Prog on first
// use and hold no state that survives Invalidate.
type MinvInlinePass struct{}

// Name implements Pass.
func (MinvInlinePass) Name() string { return "minv+inline" }

// Run implements Pass.
func (MinvInlinePass) Run(e *PassEnv) (PassResult, error) {
	nd := opt.Devirtualize(e.Prog, refineFromOracle(e.Oracle()))
	ni := opt.Inline(e.Prog)
	if nd > 0 || ni > 0 {
		e.Invalidate() // zero resolutions and expansions leave the program untouched
	}
	return PassResult{Devirtualized: nd, Inlined: ni}, nil
}
