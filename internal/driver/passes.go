package driver

import (
	"fmt"

	"tbaa/internal/alias"
	"tbaa/internal/ir"
	"tbaa/internal/modref"
	"tbaa/internal/opt"
	"tbaa/internal/types"
)

// PassResult reports what one optimization pass did. Fields irrelevant
// to a pass stay zero (e.g. RLE never devirtualizes).
type PassResult struct {
	// Pass is the name of the pass that produced this result.
	Pass string
	// Devirtualized and Inlined count method-invocation resolution work.
	Devirtualized int
	Inlined       int
	// Hoisted and Eliminated count loads removed by RLE (and, for PRE,
	// Eliminated counts the post-insertion CSE removals).
	Hoisted    int
	Eliminated int
	// Inserted counts PRE compensation loads.
	Inserted int
	// PerProc breaks load removals down by procedure name.
	PerProc map[string]int
}

// Removed returns the total statically removed loads (the Table 6 metric).
func (r PassResult) Removed() int { return r.Hoisted + r.Eliminated }

// Pass is one step of the optimization pipeline. Passes mutate the
// program in the PassEnv; passes that change program structure must
// call Invalidate so later passes see rebuilt analysis facts.
type Pass interface {
	Name() string
	Run(env *PassEnv) (PassResult, error)
}

// PassEnv carries the program being optimized plus lazily built,
// memoized analysis state shared by the passes: the alias oracle and
// the mod-ref summaries. Building both lazily keeps configurations that
// never query them (e.g. an unoptimized baseline) free of their cost.
type PassEnv struct {
	Prog   *ir.Program
	Opts   alias.Options
	oracle *alias.Analysis
	mr     *modref.ModRef
}

// NewPassEnv validates opts and wraps prog for a pass pipeline. Options
// are normalized, so Opts reflects the effective level (FlowSensitive
// on SMFieldTypeRefs reads back as LevelFSTypeRefs).
func NewPassEnv(prog *ir.Program, opts alias.Options) (*PassEnv, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &PassEnv{Prog: prog, Opts: opts.Normalize()}, nil
}

// Oracle returns the alias analysis for the current program state,
// building it on first use. Under WithInterprocedural configurations
// the interprocedural mod-ref summaries are wired into the oracle's
// flow-sensitive call-kill rule before the oracle is handed out, so
// site-aware answers never depend on whether ModRef was forced first.
func (e *PassEnv) Oracle() *alias.Analysis {
	if e.oracle == nil {
		e.oracle = alias.New(e.Prog, e.Opts)
		if e.Opts.Interprocedural {
			e.oracle.SetCallSummaries(ipSummaries{
				mr: e.ModRef(),
				o:  e.oracle,
				at: e.Prog.AddressTakenVars,
			})
		}
	}
	return e.oracle
}

// ModRef returns the mod-ref summaries, computing them on first use:
// CHA-cone summaries by default, RTA-call-graph SCC summaries (refined
// by the oracle's TypeRefsTable) under WithInterprocedural.
func (e *PassEnv) ModRef() *modref.ModRef {
	if e.mr != nil {
		return e.mr
	}
	if e.Opts.Interprocedural {
		o := e.Oracle()
		// Building the oracle wires the summaries in, constructing them
		// as a side effect — don't compute a second, diverging instance.
		if e.mr != nil {
			return e.mr
		}
		e.mr = modref.ComputeWith(e.Prog, modref.Config{
			RTA:       true,
			OpenWorld: e.Opts.OpenWorld,
			Refine:    refineFromOracle(o),
		})
	} else {
		e.mr = modref.Compute(e.Prog)
	}
	return e.mr
}

// ipSummaries adapts the mod-ref summaries to the alias package's
// CallSummaries interface (alias cannot import modref — modref is its
// client). All queries are context-free (zero Sites): the flow layer
// consults them mid-solve, where a site-aware query would re-enter the
// solver.
type ipSummaries struct {
	mr *modref.ModRef
	o  alias.Oracle
	at map[*ir.Var]bool
}

func (s ipSummaries) CallKillsPath(call *ir.Instr, ap *ir.AP) bool {
	return modref.MayModify(s.mr.CallEffects(call), ap, alias.Site{}, s.o, s.at)
}

func (s ipSummaries) CallMayRebind(call *ir.Instr, v *ir.Var) bool {
	return s.mr.CallEffects(call).MayRebind(v, s.at)
}

// Invalidate drops the memoized analyses after a structural change
// (inlining creates new code); the next Oracle/ModRef call rebuilds.
func (e *PassEnv) Invalidate() { e.oracle, e.mr = nil, nil }

// RunPasses runs the pipeline in order and collects per-pass results.
// It stops at the first failing pass.
func RunPasses(env *PassEnv, passes ...Pass) ([]PassResult, error) {
	results := make([]PassResult, 0, len(passes))
	for _, p := range passes {
		r, err := p.Run(env)
		if err != nil {
			return results, fmt.Errorf("pass %s: %w", p.Name(), err)
		}
		r.Pass = p.Name()
		results = append(results, r)
	}
	return results, nil
}

// RLEPass is redundant load elimination (Section 3.4.1): loop-invariant
// load motion plus available-load CSE, killed by the alias oracle.
type RLEPass struct{}

// Name implements Pass.
func (RLEPass) Name() string { return "rle" }

// Run implements Pass.
func (RLEPass) Run(e *PassEnv) (PassResult, error) {
	res := opt.RLE(e.Prog, e.Oracle(), e.ModRef())
	return PassResult{Hoisted: res.Hoisted, Eliminated: res.Eliminated, PerProc: res.PerProc}, nil
}

// PREPass is partial redundancy elimination of memory expressions (the
// paper's future work); it normally runs after RLEPass.
type PREPass struct{}

// Name implements Pass.
func (PREPass) Name() string { return "pre" }

// Run implements Pass.
func (PREPass) Run(e *PassEnv) (PassResult, error) {
	res := opt.PRE(e.Prog, e.Oracle(), e.ModRef())
	return PassResult{Inserted: res.Inserted, Eliminated: res.Eliminated}, nil
}

// DevirtPass resolves method invocations alone: devirtualization
// refined by the oracle's TypeRefsTable (Section 3.7), without the
// inlining half of MinvInlinePass. It reports its work in Devirtualized
// and invalidates the analysis state — rewritten receivers change the
// dispatch sets mod-ref summaries are built from.
type DevirtPass struct{}

// Name implements Pass.
func (DevirtPass) Name() string { return "devirt" }

// Run implements Pass.
func (DevirtPass) Run(e *PassEnv) (PassResult, error) {
	nd := opt.Devirtualize(e.Prog, refineFromOracle(e.Oracle()))
	if nd > 0 {
		e.Invalidate() // zero resolutions leave the program untouched
	}
	return PassResult{Devirtualized: nd}, nil
}

// refineFromOracle adapts the oracle's TypeRefsTable to Devirtualize's
// receiver-narrowing callback.
func refineFromOracle(a *alias.Analysis) func(o *types.Object) []int {
	return func(o *types.Object) []int {
		refs := a.TypeRefs(o)
		if refs == nil {
			return nil
		}
		return refs.IDs()
	}
}

// MinvInlinePass resolves method invocations (devirtualization refined
// by the oracle's TypeRefsTable) and inlines small procedures (Section
// 3.7) as one fused pipeline step. It invalidates the analysis state:
// inlining creates new code (including freshly address-taken cloned
// locals), so the next Oracle() call rebuilds the whole Analysis — the
// MayAlias memo, the field-indexed AddressTaken owner tables, and the
// TypeRefsTable — and the next ModRef() recomputes summaries. Dropping
// just the handles is enough because both are built from Prog on first
// use and hold no state that survives Invalidate.
type MinvInlinePass struct{}

// Name implements Pass.
func (MinvInlinePass) Name() string { return "minv+inline" }

// Run implements Pass.
func (MinvInlinePass) Run(e *PassEnv) (PassResult, error) {
	nd := opt.Devirtualize(e.Prog, refineFromOracle(e.Oracle()))
	ni := opt.Inline(e.Prog)
	if nd > 0 || ni > 0 {
		e.Invalidate() // zero resolutions and expansions leave the program untouched
	}
	return PassResult{Devirtualized: nd, Inlined: ni}, nil
}
