// Package driver orchestrates the compilation pipeline:
// source → parse → check → lower → (analyses, optimizations) → run.
package driver

import (
	"tbaa/internal/interp"
	"tbaa/internal/ir"
	"tbaa/internal/lower"
	"tbaa/internal/parser"
	"tbaa/internal/sema"
)

// Compiled is a parsed-and-checked module whose lowering can be replayed
// cheaply. The evaluation harness caches one Compiled per benchmark and
// lowers a fresh, independently-mutable ir.Program for every
// (level, options) configuration.
//
// After Frontend returns, the module's Universe is fully precomputed and
// no later phase registers types, so programs lowered from one Compiled
// may be analyzed, optimized, and executed concurrently.
type Compiled struct {
	File string
	Sema *sema.Program
}

// Frontend parses and checks a MiniM3 module and precomputes the
// type-universe caches.
func Frontend(file, src string) (*Compiled, error) {
	m, err := parser.Parse(file, src)
	if err != nil {
		return nil, err
	}
	sp, err := sema.Check(m)
	if err != nil {
		return nil, err
	}
	sp.Universe.Precompute()
	return &Compiled{File: file, Sema: sp}, nil
}

// Lower produces a fresh IR program. Each call returns an independent
// program; lowering reads but never mutates the checked module.
func (c *Compiled) Lower() *ir.Program {
	return lower.Lower(c.Sema)
}

// Compile parses, checks, and lowers a MiniM3 module.
func Compile(file, src string) (*ir.Program, *sema.Program, error) {
	c, err := Frontend(file, src)
	if err != nil {
		return nil, nil, err
	}
	return c.Lower(), c.Sema, nil
}

// Run compiles and executes a module, returning its output and stats.
func Run(file, src string) (string, interp.Stats, error) {
	prog, _, err := Compile(file, src)
	if err != nil {
		return "", interp.Stats{}, err
	}
	in := interp.New(prog)
	out, err := in.Run()
	return out, in.Stats(), err
}
