// Package driver orchestrates the compilation pipeline:
// source → parse → check → lower → (analyses, optimizations) → run.
package driver

import (
	"tbaa/internal/interp"
	"tbaa/internal/ir"
	"tbaa/internal/lower"
	"tbaa/internal/parser"
	"tbaa/internal/sema"
)

// Compile parses, checks, and lowers a MiniM3 module.
func Compile(file, src string) (*ir.Program, *sema.Program, error) {
	m, err := parser.Parse(file, src)
	if err != nil {
		return nil, nil, err
	}
	sp, err := sema.Check(m)
	if err != nil {
		return nil, nil, err
	}
	return lower.Lower(sp), sp, nil
}

// Run compiles and executes a module, returning its output and stats.
func Run(file, src string) (string, interp.Stats, error) {
	prog, _, err := Compile(file, src)
	if err != nil {
		return "", interp.Stats{}, err
	}
	in := interp.New(prog)
	out, err := in.Run()
	return out, in.Stats(), err
}
