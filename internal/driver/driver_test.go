package driver_test

import (
	"strings"
	"testing"

	"tbaa/internal/driver"
)

func TestCompileAndRun(t *testing.T) {
	out, stats, err := driver.Run("ok.m3", `
MODULE M;
BEGIN
  PutInt(6 * 7); PutLn();
END M.
`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "42\n" {
		t.Errorf("output %q", out)
	}
	if stats.Instructions == 0 {
		t.Error("stats must be populated")
	}
}

func TestCompileParseError(t *testing.T) {
	_, _, err := driver.Compile("bad.m3", "MODULE M BEGIN END M.")
	if err == nil || !strings.Contains(err.Error(), "syntax") {
		t.Errorf("expected syntax error, got %v", err)
	}
}

func TestCompileSemaError(t *testing.T) {
	_, _, err := driver.Compile("bad.m3", "MODULE M; BEGIN x := 1; END M.")
	if err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("expected sema error, got %v", err)
	}
}

func TestRunPropagatesTraps(t *testing.T) {
	_, _, err := driver.Run("trap.m3", `
MODULE M;
VAR x: INTEGER;
BEGIN
  x := 1 DIV 0;
END M.
`)
	if err == nil || !strings.Contains(err.Error(), "division") {
		t.Errorf("expected runtime trap, got %v", err)
	}
}

func TestFrontendLowerReplayable(t *testing.T) {
	c, err := driver.Frontend("p.m3", `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
     S = T OBJECT g: T; END;
     RI = REF INTEGER;
VAR a, b: T; s: S; r: RI;
BEGIN
  a := NEW(S); b := a; s := NEW(S); s.g := b; r := NEW(RI);
  r^ := s.g.f;
  PutInt(r^); PutLn();
END M.
`)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := c.Lower(), c.Lower()
	if p1 == p2 {
		t.Fatal("Lower must return a fresh program per call")
	}
	if p1.Universe != p2.Universe {
		t.Error("lowered programs must share the checked universe")
	}
	if n := p1.Universe.NumTypes(); n != p2.Universe.NumTypes() {
		t.Errorf("lowering registered types: %d", n)
	}
	if p1.String() != p2.String() {
		t.Errorf("replayed lowering differs:\n%s\nvs\n%s", p1, p2)
	}
	// Mutating one program must not leak into the other.
	p1.Procs[0].Blocks[0].Instrs = nil
	if p1.String() == p2.String() {
		t.Error("programs share instruction storage")
	}
}

func TestFrontendReportsErrors(t *testing.T) {
	if _, err := driver.Frontend("bad.m3", "MODULE M BEGIN END M."); err == nil {
		t.Error("expected parse error")
	}
	if _, err := driver.Frontend("bad.m3", "MODULE M; BEGIN x := 1; END M."); err == nil {
		t.Error("expected check error")
	}
}

func TestCompileProducesWholeProgram(t *testing.T) {
	prog, sp, err := driver.Compile("p.m3", `
MODULE M;
TYPE T = OBJECT f: INTEGER; END;
PROCEDURE P() = BEGIN END P;
VAR t: T;
BEGIN
  P();
END M.
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Main == nil || prog.ProcByName["P"] == nil || prog.ProcByName["__main__"] == nil {
		t.Error("program structure incomplete")
	}
	if sp.Universe != prog.Universe {
		t.Error("sema and IR must share the type universe")
	}
	if len(prog.Globals) != 1 || prog.Globals[0].Name != "t" {
		t.Errorf("globals: %v", prog.Globals)
	}
}
