package driver_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/driver"
	"tbaa/internal/ir"
	"tbaa/internal/modref"
	"tbaa/internal/randprog"
)

// This file is the differential gate for incremental re-analysis: on
// randomly generated programs, run the full pass pipeline one pass at a
// time, force an incremental rebuild after every pass, and require the
// rebuilt oracle and summaries to answer byte-identically to a
// from-scratch build over the same mutated program — MayAlias (site
// aware), StoreKills, MayModify under every procedure's summary, and
// the CountPairs metrics, at every level crossed with both world
// assumptions. Any divergence is a bug in a delta invariant
// (internal/alias/incremental.go, internal/modref/incremental.go) or a
// missing MarkMutated stamp at a pass mutation site.

// diffSeeds is the number of random programs the differential gate
// checks, spread round-robin over the level x world configurations.
// TBAA_DIFF_SEEDS overrides (the CI gate runs the full 500); -short
// trims to a smoke count.
func diffSeeds(t *testing.T) int {
	if s := os.Getenv("TBAA_DIFF_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad TBAA_DIFF_SEEDS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 60
	}
	return 500
}

// diffMaxRefs caps the quadratic pair sweep per rebuild check.
const diffMaxRefs = 40

func TestIncrementalRebuildDifferential(t *testing.T) {
	seeds := diffSeeds(t)
	levels := []alias.Level{
		alias.LevelTypeDecl,
		alias.LevelFieldTypeDecl,
		alias.LevelSMFieldTypeRefs,
		alias.LevelFSTypeRefs,
		alias.LevelIPTypeRefs,
	}
	type config struct {
		level alias.Level
		open  bool
	}
	var configs []config
	for _, lvl := range levels {
		configs = append(configs, config{lvl, false}, config{lvl, true})
	}
	// One parallel subtest per configuration; seed k goes to
	// configuration k mod len(configs), so every configuration sees
	// seeds/len(configs) distinct programs.
	for ci, cfg := range configs {
		name := fmt.Sprintf("%v", cfg.level)
		if cfg.open {
			name += "_open"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for k := ci; k < seeds; k += len(configs) {
				checkIncrementalSeed(t, int64(77000+k), alias.Options{Level: cfg.level, OpenWorld: cfg.open})
			}
		})
	}
}

// checkIncrementalSeed runs the pipeline over one generated program,
// invalidating and incrementally rebuilding after every pass, and
// compares each rebuilt generation against a from-scratch build.
func checkIncrementalSeed(t *testing.T, seed int64, opts alias.Options) {
	t.Helper()
	src := randprog.Generate(seed, randprog.DefaultConfig())
	c, err := driver.Frontend("r.m3", src)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	prog := c.Lower()
	env, err := driver.NewPassEnv(prog, opts)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	passes := []driver.Pass{
		driver.DevirtPass{},
		driver.MinvInlinePass{},
		driver.RLEPass{},
		driver.PREPass{},
	}
	for _, p := range passes {
		if _, err := p.Run(env); err != nil {
			t.Fatalf("seed %d: pass %s: %v", seed, p.Name(), err)
		}
		// Force a rebuild even after passes that do not invalidate
		// (RLE, PRE): their mutation stamps must make the delta exact.
		env.Invalidate()
		incrO, incrMR := env.Oracle(), env.ModRef()
		fresh, err := driver.NewPassEnv(prog, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		scratchO, scratchMR := fresh.Oracle(), fresh.ModRef()
		compareOracles(t, seed, p.Name(), prog, incrO, scratchO, incrMR, scratchMR)
		if t.Failed() {
			return
		}
	}
}

// compareOracles requires the incrementally rebuilt generation and the
// from-scratch build to agree on every verdict kind a client can
// observe.
func compareOracles(t *testing.T, seed int64, pass string, prog *ir.Program, incrO, scratchO *alias.Analysis, incrMR, scratchMR *modref.ModRef) {
	t.Helper()
	refs := alias.References(prog)
	if len(refs) > diffMaxRefs {
		refs = refs[:diffMaxRefs]
	}
	site := func(r alias.Ref) alias.Site { return alias.Site{Proc: r.Proc, Instr: r.Instr} }
	for i := range refs {
		for j := i; j < len(refs); j++ {
			ri, rj := refs[i], refs[j]
			si, sj := site(ri), site(rj)
			if got, want := alias.MayAliasAt(incrO, ri.AP, si, rj.AP, sj), alias.MayAliasAt(scratchO, ri.AP, si, rj.AP, sj); got != want {
				t.Fatalf("seed %d after %s: MayAlias(%s@%s, %s@%s) incremental=%v scratch=%v",
					seed, pass, ri.AP, ri.Proc.Name, rj.AP, rj.Proc.Name, got, want)
			}
			if got, want := modref.StoreKills(incrO, ri.AP, si, rj.AP, sj), modref.StoreKills(scratchO, ri.AP, si, rj.AP, sj); got != want {
				t.Fatalf("seed %d after %s: StoreKills(%s@%s, %s@%s) incremental=%v scratch=%v",
					seed, pass, ri.AP, ri.Proc.Name, rj.AP, rj.Proc.Name, got, want)
			}
		}
	}
	// Pin the summaries directly: every procedure's transitive effects
	// must kill exactly the same reference paths under both builds.
	at := prog.AddressTakenVars
	for _, p := range prog.Procs {
		ie, se := incrMR.Effects(p), scratchMR.Effects(p)
		for _, r := range refs {
			s := site(r)
			if got, want := modref.MayModify(ie, r.AP, s, incrO, at), modref.MayModify(se, r.AP, s, scratchO, at); got != want {
				t.Fatalf("seed %d after %s: MayModify(%s effects, %s@%s) incremental=%v scratch=%v",
					seed, pass, p.Name, r.AP, r.Proc.Name, got, want)
			}
		}
	}
	if got, want := alias.CountPairs(prog, incrO), alias.CountPairs(prog, scratchO); got != want {
		t.Fatalf("seed %d after %s: CountPairs incremental=%+v scratch=%+v", seed, pass, got, want)
	}
}
