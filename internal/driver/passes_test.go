package driver_test

import (
	"testing"

	"tbaa/internal/alias"
	"tbaa/internal/driver"
	"tbaa/internal/interp"
	"tbaa/internal/ir"
	"tbaa/internal/modref"
)

// passSrc has a monomorphic method call (devirtualizable), an inlinable
// callee that takes a field's address (WITH), and a loop with heap
// loads RLE cares about — enough structure for every pass to do work
// and for stale analysis state to be observable.
const passSrc = `
MODULE Passes;
TYPE
  T = OBJECT f, g: INTEGER; METHODS id(): INTEGER := TId; END;
VAR
  t: T;
  sum: INTEGER;

PROCEDURE TId(self: T): INTEGER =
BEGIN
  RETURN self.f;
END TId;

PROCEDURE Bump(o: T) =
BEGIN
  WITH w = o.f DO
    w := w + 1;
  END;
END Bump;

BEGIN
  t := NEW(T);
  t.f := 3;
  t.g := 0;
  Bump(t);
  FOR i := 1 TO 5 DO
    sum := sum + t.f + t.id();
  END;
  PutInt(sum); PutLn();
END Passes.
`

func lowerPasses(t *testing.T) *ir.Program {
	t.Helper()
	prog, _, err := driver.Compile("passes.m3", passSrc)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func mustEnv(t *testing.T, prog *ir.Program) *driver.PassEnv {
	t.Helper()
	env, err := driver.NewPassEnv(prog, alias.Options{Level: alias.LevelSMFieldTypeRefs})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestDevirtPassStandalone: Devirt is its own sealed pass now — it
// reports resolution work in its own result, without inlining.
func TestDevirtPassStandalone(t *testing.T) {
	env := mustEnv(t, lowerPasses(t))
	results, err := driver.RunPasses(env, driver.DevirtPass{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Pass != "devirt" {
		t.Fatalf("results = %+v, want one devirt result", results)
	}
	if results[0].Devirtualized == 0 {
		t.Error("the monomorphic t.id() call should devirtualize")
	}
	if results[0].Inlined != 0 {
		t.Errorf("standalone devirt must not inline, reported %d", results[0].Inlined)
	}
	// The fused pipeline still reports both counters in one result.
	env2 := mustEnv(t, lowerPasses(t))
	fused, err := driver.RunPasses(env2, driver.MinvInlinePass{})
	if err != nil {
		t.Fatal(err)
	}
	if fused[0].Devirtualized != results[0].Devirtualized {
		t.Errorf("fused Devirtualized = %d, standalone = %d", fused[0].Devirtualized, results[0].Devirtualized)
	}
	if fused[0].Inlined == 0 {
		t.Error("the fused pipeline should inline the small callees")
	}
}

// TestInvalidateRebuildsAnalyses pins the audit result: Invalidate must
// drop both memoized analyses so the next accessors rebuild from the
// (possibly rewritten) program — the alias memo and the field-indexed
// AddressTaken tables live inside the Analysis, so a fresh instance is
// the rebuild.
func TestInvalidateRebuildsAnalyses(t *testing.T) {
	env := mustEnv(t, lowerPasses(t))
	o1, mr1 := env.Oracle(), env.ModRef()
	if env.Oracle() != o1 || env.ModRef() != mr1 {
		t.Fatal("accessors must memoize between invalidations")
	}
	env.Invalidate()
	if env.Oracle() == o1 {
		t.Error("Invalidate left the stale alias analysis (memo + AddressTaken index) in place")
	}
	if env.ModRef() == mr1 {
		t.Error("Invalidate left the stale mod-ref summaries in place")
	}
}

// TestStaleMemoRegression is the satellite's regression scenario: warm
// the oracle's MayAlias memo and AddressTaken owner index, run the
// structural MinvInline pass, then RLE. If the pass manager handed RLE
// the pre-inline oracle (stale memo keyed by dead access paths, stale
// owner tables missing the cloned WITH-alias locals), its decisions
// could differ from a cold pipeline's. The two pipelines must agree on
// what RLE removed and on the program's behavior.
func TestStaleMemoRegression(t *testing.T) {
	runPipeline := func(warm bool) (driver.PassResult, string) {
		prog := lowerPasses(t)
		env := mustEnv(t, prog)
		if warm {
			// Populate the memo with every reference pair and exercise
			// the AddressTaken index before any pass runs.
			o := env.Oracle()
			refs := alias.References(prog)
			for i := range refs {
				for j := range refs {
					o.MayAlias(refs[i].AP, refs[j].AP)
				}
				o.AddressTaken(refs[i].AP)
			}
		}
		results, err := driver.RunPasses(env, driver.MinvInlinePass{}, driver.RLEPass{})
		if err != nil {
			t.Fatal(err)
		}
		in := interp.New(prog)
		in.MaxSteps = 1_000_000
		out, err := in.Run()
		if err != nil {
			t.Fatal(err)
		}
		return results[1], out
	}
	coldRLE, coldOut := runPipeline(false)
	warmRLE, warmOut := runPipeline(true)
	if warmRLE.Removed() != coldRLE.Removed() {
		t.Errorf("stale analysis state changed an RLE decision: warm removed %d, cold removed %d",
			warmRLE.Removed(), coldRLE.Removed())
	}
	if warmOut != coldOut {
		t.Errorf("pipeline output diverged: warm %q, cold %q", warmOut, coldOut)
	}
	if coldRLE.Removed() == 0 {
		t.Error("the loop's t.f load should be removable (test program too weak)")
	}
}

// devirtSrc has an abstract method with two overrides. Only S1 flows
// into a T-typed variable, so devirtualization (refined by the
// TypeRefsTable) resolves t.m() to S1M — shrinking the call graph the
// interprocedural summaries were built over: before the rewrite the
// call site is a method call whose CHA cone includes S2M, afterwards a
// direct call to S1M alone.
const devirtSrc = `
MODULE DV;
TYPE
  T  = OBJECT v: INTEGER; METHODS m(); END;
  S1 = T OBJECT OVERRIDES m := S1M; END;
  S2 = T OBJECT OVERRIDES m := S2M; END;
VAR
  t: T;
  s2: S2;
  g1, g2: INTEGER;

PROCEDURE S1M(self: T) =
BEGIN
  g1 := g1 + 1;
END S1M;

PROCEDURE S2M(self: T) =
BEGIN
  g2 := g2 + 1;
END S2M;

BEGIN
  t := NEW(S1);
  s2 := NEW(S2);
  t.m();
  PutInt(g1 + g2); PutLn();
END DV.
`

// TestDevirtShrinksStaleSummaries is the stale-summary regression
// test: when Devirt resolves method calls mid-pipeline, the pass
// manager must drop the interprocedural mod-ref summaries (and the
// oracle they are wired into), so the rebuilt summaries describe the
// rewritten call graph — a direct call's effects, not the dispatch
// cone's.
func TestDevirtShrinksStaleSummaries(t *testing.T) {
	prog := lowerSrc(t, devirtSrc)
	var g1, g2 *ir.Var
	for _, v := range prog.Globals {
		switch v.Name {
		case "g1":
			g1 = v
		case "g2":
			g2 = v
		}
	}
	var site *ir.Instr
	for _, b := range prog.Main.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpMethodCall {
				site = &b.Instrs[i]
			}
		}
	}
	if site == nil {
		t.Fatal("no method call in the module body")
	}
	// Premise: the CHA cone at the call site includes S2M's effects.
	if !modref.Compute(prog).CallEffects(site).ModGlobals[g2] {
		t.Fatal("pre-devirt CHA effects should include the S2M override's g2 write")
	}

	env, err := driver.NewPassEnv(prog, alias.Options{Level: alias.LevelIPTypeRefs})
	if err != nil {
		t.Fatal(err)
	}
	o1, mr1 := env.Oracle(), env.ModRef()
	results, err := driver.RunPasses(env, driver.DevirtPass{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Devirtualized == 0 {
		t.Fatal("t.m() should devirtualize to S1M (test premise)")
	}
	if env.Oracle() == o1 {
		t.Error("DevirtPass left the stale oracle (and its wired summaries) in place")
	}
	mr2 := env.ModRef()
	if mr2 == mr1 {
		t.Error("DevirtPass left the stale mod-ref summaries in place")
	}
	// The rewritten site is now a direct call to S1M; the rebuilt
	// summaries must describe S1M's effects alone.
	if site.Op != ir.OpCall || site.Callee != "S1M" {
		t.Fatalf("site after devirt = op %v callee %q, want a direct S1M call", site.Op, site.Callee)
	}
	eff := mr2.CallEffects(site)
	if !eff.ModGlobals[g1] || eff.ModGlobals[g2] {
		t.Errorf("rebuilt effects of the devirtualized call: g1=%v g2=%v, want g1 only",
			eff.ModGlobals[g1], eff.ModGlobals[g2])
	}
}

func lowerSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, _, err := driver.Compile("t.m3", src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestFlowSensitiveEnvNormalized: the pass env reports the effective
// level for the FlowSensitive spelling.
func TestFlowSensitiveEnvNormalized(t *testing.T) {
	env, err := driver.NewPassEnv(lowerPasses(t), alias.Options{
		Level: alias.LevelSMFieldTypeRefs, FlowSensitive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if env.Opts.Level != alias.LevelFSTypeRefs {
		t.Errorf("env level = %v, want FSTypeRefs", env.Opts.Level)
	}
	if got := env.Oracle().Name(); got != "FSTypeRefs" {
		t.Errorf("oracle name = %q, want FSTypeRefs", got)
	}
}
