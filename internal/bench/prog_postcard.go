package bench

func init() {
	register(Benchmark{
		Name:        "postcard",
		Description: "Mail reader model: folders, messages, filters, an event loop (paper: interactive; static metrics only)",
		Source:      postcardSrc,
		Interactive: true,
	})
}

const postcardSrc = `
MODULE Postcard;

(* The paper's postcard is a graphical mail reader; interactive, so only
   static metrics are reported. This model has its data shapes: folders
   of messages, header parsing into character arrays, filter rules, and
   a command loop dispatching user events. *)

TYPE
  CharArr = ARRAY OF CHAR;
  Msg = OBJECT
    subjHash: INTEGER;
    from: INTEGER;
    size: INTEGER;
    unread: BOOLEAN;
    body: CharArr;
    next: Msg;
  END;
  Folder = OBJECT
    id: INTEGER;
    msgs: Msg;
    count, unread: INTEGER;
    next: Folder;
  END;
  Rule = OBJECT
    fromKey: INTEGER;
    target: INTEGER; (* folder id *)
    hits: INTEGER;
    next: Rule;
  METHODS
    matches(m: Msg): BOOLEAN := RuleMatches;
  END;
  SizeRule = Rule OBJECT
    minSize: INTEGER;
  OVERRIDES
    matches := SizeRuleMatches;
  END;
  Event = OBJECT
    kind: INTEGER; (* 1 fetch, 2 read, 3 file, 4 expunge *)
    arg: INTEGER;
    next: Event;
  END;

VAR
  folders: Folder;
  rules: Rule;
  events, evTail: Event;
  seq: INTEGER;
  opened, filed, expunged: INTEGER;

PROCEDURE RuleMatches(self: Rule; m: Msg): BOOLEAN =
BEGIN
  RETURN m.from = self.fromKey;
END RuleMatches;

PROCEDURE SizeRuleMatches(self: SizeRule; m: Msg): BOOLEAN =
BEGIN
  RETURN (m.from = self.fromKey) AND (m.size >= self.minSize);
END SizeRuleMatches;

PROCEDURE FolderById(id: INTEGER): Folder =
VAR f: Folder;
BEGIN
  f := folders;
  WHILE f # NIL DO
    IF f.id = id THEN RETURN f; END;
    f := f.next;
  END;
  RETURN NIL;
END FolderById;

PROCEDURE AddFolder(id: INTEGER): Folder =
VAR f: Folder;
BEGIN
  f := NEW(Folder);
  f.id := id;
  f.next := folders;
  folders := f;
  RETURN f;
END AddFolder;

PROCEDURE Deliver(f: Folder; m: Msg) =
BEGIN
  m.next := f.msgs;
  f.msgs := m;
  INC(f.count);
  IF m.unread THEN INC(f.unread); END;
END Deliver;

PROCEDURE NewMsg(): Msg =
VAR m: Msg; i: INTEGER;
BEGIN
  seq := (seq * 137 + 29) MOD 10007;
  m := NEW(Msg);
  m.subjHash := seq MOD 997;
  m.from := seq MOD 17;
  m.size := 40 + seq MOD 400;
  m.unread := TRUE;
  m.body := NEW(CharArr, 16 + seq MOD 48);
  FOR i := 0 TO NUMBER(m.body) - 1 DO
    m.body[i] := CHR(ORD('a') + ((seq + i) MOD 26));
  END;
  RETURN m;
END NewMsg;

PROCEDURE ApplyRules(m: Msg): INTEGER =
VAR r: Rule;
BEGIN
  r := rules;
  WHILE r # NIL DO
    IF r.matches(m) THEN
      INC(r.hits);
      RETURN r.target;
    END;
    r := r.next;
  END;
  RETURN 0; (* inbox *)
END ApplyRules;

PROCEDURE PushEvent(kind, arg: INTEGER) =
VAR e: Event;
BEGIN
  e := NEW(Event);
  e.kind := kind;
  e.arg := arg;
  IF evTail = NIL THEN
    events := e;
  ELSE
    evTail.next := e;
  END;
  evTail := e;
END PushEvent;

PROCEDURE ReadBody(m: Msg): INTEGER =
VAR i, h: INTEGER;
BEGIN
  h := 0;
  FOR i := 0 TO NUMBER(m.body) - 1 DO
    h := (h * 2 + ORD(m.body[i])) MOD 65521;
  END;
  IF m.unread THEN
    m.unread := FALSE;
  END;
  RETURN h;
END ReadBody;

PROCEDURE DoFetch(n: INTEGER) =
VAR m: Msg; inbox: Folder; dst: INTEGER; i: INTEGER;
BEGIN
  inbox := FolderById(0);
  FOR i := 1 TO n DO
    m := NewMsg();
    dst := ApplyRules(m);
    IF dst = 0 THEN
      Deliver(inbox, m);
    ELSE
      Deliver(FolderById(dst), m);
      INC(filed);
    END;
  END;
END DoFetch;

PROCEDURE DoRead(folderId: INTEGER) =
VAR f: Folder; m: Msg; h: INTEGER;
BEGIN
  f := FolderById(folderId);
  IF f = NIL THEN RETURN; END;
  m := f.msgs;
  WHILE m # NIL DO
    IF m.unread THEN
      h := ReadBody(m);
      DEC(f.unread);
      INC(opened);
    END;
    m := m.next;
  END;
END DoRead;

PROCEDURE DoExpunge(folderId: INTEGER) =
VAR f: Folder; m, keep, nxt: Msg; kept: INTEGER;
BEGIN
  f := FolderById(folderId);
  IF f = NIL THEN RETURN; END;
  keep := NIL;
  kept := 0;
  m := f.msgs;
  WHILE m # NIL DO
    nxt := m.next;
    IF m.size > 100 THEN
      (* keep large messages (reverses order), drop the rest *)
      m.next := keep;
      keep := m;
      INC(kept);
    ELSE
      INC(expunged);
    END;
    m := nxt;
  END;
  f.msgs := keep;
  f.count := kept;
END DoExpunge;

PROCEDURE EventLoop() =
VAR e: Event;
BEGIN
  e := events;
  WHILE e # NIL DO
    IF e.kind = 1 THEN
      DoFetch(e.arg);
    ELSIF e.kind = 2 THEN
      DoRead(e.arg);
    ELSIF e.kind = 4 THEN
      DoExpunge(e.arg);
    END;
    e := e.next;
  END;
END EventLoop;

VAR r: Rule; sr: SizeRule; i: INTEGER; f: Folder; total: INTEGER;
BEGIN
  seq := 11;
  FOR i := 0 TO 3 DO
    f := AddFolder(i);
  END;
  r := NEW(Rule);
  r.fromKey := 5;
  r.target := 1;
  r.next := NIL;
  sr := NEW(SizeRule);
  sr.fromKey := 9;
  sr.minSize := 120;
  sr.target := 2;
  sr.next := r;
  rules := sr;
  PushEvent(1, 30);
  PushEvent(2, 0);
  PushEvent(1, 20);
  PushEvent(2, 1);
  PushEvent(4, 0);
  PushEvent(2, 0);
  EventLoop();
  total := 0;
  f := folders;
  WHILE f # NIL DO
    total := total + f.count;
    f := f.next;
  END;
  PutText("opened="); PutInt(opened);
  PutText(" filed="); PutInt(filed);
  PutText(" expunged="); PutInt(expunged);
  PutText(" kept="); PutInt(total); PutLn();
END Postcard.
`
